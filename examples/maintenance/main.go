// Maintenance demonstrates the paper's predictive-maintenance motivation
// (Section I, use case iii/iv): characterization under *relaxed* DRAM
// parameters exposes weak DIMMs in hours instead of the years a
// nominal-parameter field study needs. The screening ranks the server's
// DIMM/ranks by their error proneness and flags the outliers a data-center
// operator would schedule for replacement.
package main

import (
	"fmt"
	"log"
	"sort"

	"repro/internal/dram"
	"repro/internal/profile"
	"repro/internal/workload"
	"repro/internal/xgene"
)

func main() {
	// A stress screening: run a high-pressure workload under relaxed
	// refresh at elevated temperature and rank the DIMM/ranks.
	spec, err := workload.FindSpec("backprop(par)")
	if err != nil {
		log.Fatal(err)
	}
	prof, err := profile.BuildQuick(spec, 0)
	if err != nil {
		log.Fatal(err)
	}
	srv := xgene.MustNewServer(xgene.Config{Scale: 16})
	if err := srv.SetTREFP(2.283); err != nil {
		log.Fatal(err)
	}
	if err := srv.SetVDD(dram.MinVDD); err != nil {
		log.Fatal(err)
	}
	obs, err := srv.Run(prof.Access, xgene.Experiment{TempC: 60, RecordWER: true})
	if err != nil {
		log.Fatal(err)
	}

	type rankScore struct {
		rank int
		wer  float64
	}
	scores := make([]rankScore, dram.NumRanks)
	for r := 0; r < dram.NumRanks; r++ {
		scores[r] = rankScore{r, obs.WERByRank[r]}
	}
	sort.Slice(scores, func(i, j int) bool { return scores[i].wer > scores[j].wer })

	median := scores[dram.NumRanks/2].wer
	fmt.Println("accelerated screening: 2h under TREFP=2.283s, 1.428V, 60°C")
	fmt.Printf("%-12s %-12s %-10s %s\n", "rank", "WER", "vs median", "verdict")
	for _, s := range scores {
		rel := 0.0
		if median > 0 {
			rel = s.wer / median
		}
		verdict := "healthy"
		switch {
		case rel > 3:
			verdict = "REPLACE: weak-cell density far above population"
		case rel > 1.5:
			verdict = "watch: elevated error rate"
		}
		fmt.Printf("%-12s %-12.3g %-10.1f %s\n", dram.RankName(s.rank), s.wer, rel, verdict)
	}

	// The same screening also localizes the UE-prone ranks: repeat at the
	// crash point and attribute crashes.
	if err := srv.SetTREFP(2.283); err != nil {
		log.Fatal(err)
	}
	pue, rankHits, err := srv.MeasurePUE(prof.Access, 70, 10)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncrash screening at 70°C: PUE=%.2f; crash attribution:\n", pue)
	for r, h := range rankHits {
		if h > 0 {
			fmt.Printf("  %-12s %d/10 crashes (coupled weak-cell pairs)\n", dram.RankName(r), h)
		}
	}
	fmt.Println("\nthe paper's Fig. 9b: a small set of ranks causes nearly all")
	fmt.Println("uncorrectable errors — those are the maintenance targets.")
}
