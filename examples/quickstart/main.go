// Quickstart: the end-to-end pipeline of the paper in one page —
// profile a workload, characterize the DRAM under a relaxed refresh
// period, train the workload-aware error model, and predict the error
// rate of an unseen workload.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/dram"
	"repro/internal/workload"
	"repro/internal/xgene"
)

func main() {
	// 1. Profile the benchmarks (the paper's "Profiling phase": program
	// features from DynamoRIO-style instrumentation + perf counters).
	// SizeTest keeps this quickstart fast; use SizeProfile for the real
	// reproduction.
	specs := workload.ExtendedSet()
	profiles, err := core.BuildProfiles(specs, workload.SizeTest, 0, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("profiled %d workloads; e.g. memcached Treuse=%.3fs HDP=%.1f bits\n",
		len(profiles), profiles["memcached"].Treuse, profiles["memcached"].HDP)

	// 2. Boot the simulated X-Gene2 server and run the characterization
	// campaigns (the paper's 2-hour runs across TREFP x temperature,
	// fast-forwarded by the simulator).
	srv := xgene.MustNewServer(xgene.Config{Scale: 32})
	ds, err := core.BuildDataset(srv, profiles, specs, core.CampaignOptions{Reps: 5})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("campaign dataset: %d WER rows, %d PUE rows\n", len(ds.WER), len(ds.PUE))

	// 3. Train the paper's published model: KNN on input set 1
	// (TEMPDRAM, TREFP, wait cycles, memory access rate, HDP, Treuse).
	model, err := core.TrainWER(ds, core.ModelKNN, core.InputSet1, 0)
	if err != nil {
		log.Fatal(err)
	}

	// 4. Predict the WER of a workload at an operating point — no
	// characterization campaign needed, answers in milliseconds.
	feats := profiles["srad(par)"].Features
	for _, trefp := range []float64{1.173, 2.283} {
		wer := model.PredictMean(feats, trefp, dram.MinVDD, 60)
		fmt.Printf("predicted WER of srad(par) at TREFP=%.3fs, 60°C: %.3g\n", trefp, wer)
	}

	// 5. Crash-probability prediction from the PUE model.
	pueModel, err := core.TrainPUE(ds, core.ModelKNN, core.InputSet2, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("predicted crash probability of srad(par) at TREFP=2.283s, 70°C: %.2f\n",
		pueModel.Predict(feats, 2.283, dram.MinVDD, 70))
}
