// Quickstart: the end-to-end pipeline of the paper in one page —
// profile a workload, characterize the DRAM under a relaxed refresh
// period, train the workload-aware error model, and predict the error
// rate of an unseen workload.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/dram"
	"repro/internal/workload"
	"repro/internal/xgene"
)

func main() {
	// 1. Profile the benchmarks (the paper's "Profiling phase": program
	// features from DynamoRIO-style instrumentation + perf counters).
	// SizeTest keeps this quickstart fast; use SizeProfile for the real
	// reproduction.
	specs := workload.ExtendedSet()
	profiles, err := core.BuildProfiles(specs, workload.SizeTest, 0, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("profiled %d workloads; e.g. memcached Treuse=%.3fs HDP=%.1f bits\n",
		len(profiles), profiles["memcached"].Treuse, profiles["memcached"].HDP)

	// 2. Boot the simulated X-Gene2 server and run the characterization
	// campaigns (the paper's 2-hour runs across TREFP x temperature,
	// fast-forwarded by the simulator).
	srv := xgene.MustNewServer(xgene.Config{Scale: 32})
	ds, err := core.BuildDataset(srv, profiles, specs, core.CampaignOptions{Reps: 5})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("campaign dataset: %d WER rows, %d PUE rows\n", len(ds.WER), len(ds.PUE))

	// 3. Train the paper's published model through the unified factory:
	// KNN for the WER target on its default input set 1 (TEMPDRAM, TREFP,
	// wait cycles, memory access rate, HDP, Treuse).
	model, err := core.Train(ds, core.TargetWER, core.ModelKNN, 0, 0)
	if err != nil {
		log.Fatal(err)
	}

	// 4. Predict the WER of a workload at an operating point — no
	// characterization campaign needed, answers in milliseconds. A
	// RankDevice query returns the device mean plus per-rank breakdown.
	feats := profiles["srad(par)"].Features
	for _, trefp := range []float64{1.173, 2.283} {
		wer, err := model.Predict(core.Query{
			Features: feats, TREFP: trefp, VDD: dram.MinVDD, TempC: 60,
			Rank: core.RankDevice,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("predicted WER of srad(par) at TREFP=%.3fs, 60°C: %.3g\n", trefp, wer.Value)
	}

	// 5. Crash-probability prediction: same factory, same query shape,
	// different target.
	pueModel, err := core.Train(ds, core.TargetPUE, core.ModelKNN, 0, 0)
	if err != nil {
		log.Fatal(err)
	}
	pue, err := pueModel.Predict(core.Query{
		Features: feats, TREFP: 2.283, VDD: dram.MinVDD, TempC: 70,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("predicted crash probability of srad(par) at TREFP=2.283s, 70°C: %.2f\n", pue.Value)
}
