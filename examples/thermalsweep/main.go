// Thermalsweep drives the thermal testbed through the paper's temperature
// range while a workload runs, showing the exponential WER-temperature
// relationship (paper Fig. 7 across panels) and the testbed's PID settling
// behaviour (Section IV-A).
package main

import (
	"fmt"
	"log"

	"repro/internal/dram"
	"repro/internal/profile"
	"repro/internal/thermal"
	"repro/internal/workload"
	"repro/internal/xgene"
)

func main() {
	// Show the PID loop converging to each campaign setpoint.
	fmt.Println("thermal testbed settling (4 DIMMs, PID-controlled heaters):")
	for _, setpoint := range []float64{50, 60, 70} {
		tb := thermal.NewTestbed(25, 1)
		settle, err := tb.SettleAll(setpoint, 0.5, 3600)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %.0f°C reached in %.0fs (DIMM0 at %.2f°C)\n",
			setpoint, settle, tb.TempC(0))
	}

	// Characterize one workload across the temperature range.
	spec, err := workload.FindSpec("srad(par)")
	if err != nil {
		log.Fatal(err)
	}
	prof, err := profile.BuildQuick(spec, 0)
	if err != nil {
		log.Fatal(err)
	}
	srv := xgene.MustNewServer(xgene.Config{Scale: 16})
	if err := srv.SetTREFP(1.727); err != nil {
		log.Fatal(err)
	}
	if err := srv.SetVDD(dram.MinVDD); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\n%s at TREFP=1.727s, VDD=%.3fV:\n", spec.Label, dram.MinVDD)
	fmt.Printf("%-8s %-12s %-8s\n", "temp", "WER", "status")
	prev := 0.0
	for _, temp := range []float64{50, 55, 60, 65, 70} {
		obs, err := srv.Run(prof.Access, xgene.Experiment{TempC: temp, RecordWER: true})
		if err != nil {
			log.Fatal(err)
		}
		status := "ok"
		if obs.Crashed {
			status = fmt.Sprintf("CRASH (UE on %s)", dram.RankName(obs.UERank))
		}
		growth := ""
		if prev > 0 && obs.WER > 0 {
			growth = fmt.Sprintf("(x%.1f)", obs.WER/prev)
		}
		fmt.Printf("%-8.0f %-12.3g %s %s\n", temp, obs.WER, status, growth)
		prev = obs.WER
	}
	fmt.Println("\nretention halves roughly every 10.8°C: WER grows exponentially,")
	fmt.Println("and above ~70°C uncorrectable errors crash the machine (Fig. 9).")
}
