// Compileropt reproduces the paper's Fig. 13 scenario: compiler
// optimizations implicitly change a program's DRAM reliability, and the
// workload-aware model predicts the effect without re-characterizing —
// something a constant-rate (data-pattern micro-benchmark) model cannot do.
//
// Two builds of the lulesh hydrodynamics proxy are compared: -O2 (default
// optimizations) and -F (aggressive optimizations, fewer instructions per
// element, higher memory pressure per cycle).
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/dram"
	"repro/internal/workload"
	"repro/internal/xgene"
)

func main() {
	const (
		trefp = 0.618
		temp  = 70.0
	)
	// Train on everything except the lulesh builds: they are the unseen
	// programs whose reliability we want to predict.
	var trainSpecs []workload.Spec
	for _, s := range workload.ExtendedSet() {
		if s.Label == "lulesh(O2)" || s.Label == "lulesh(F)" {
			continue
		}
		trainSpecs = append(trainSpecs, s)
	}
	profiles, err := core.BuildProfiles(trainSpecs, workload.SizeTest, 0, 0)
	if err != nil {
		log.Fatal(err)
	}
	srv := xgene.MustNewServer(xgene.Config{Scale: 16})
	ds, err := core.BuildDataset(srv, profiles, trainSpecs, core.CampaignOptions{Reps: 5})
	if err != nil {
		log.Fatal(err)
	}
	model, err := core.Train(ds, core.TargetWER, core.ModelKNN, core.InputSet1, 0)
	if err != nil {
		log.Fatal(err)
	}
	conventional, err := core.NewConventionalModel(ds, "random")
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-12s %-12s %-12s %-12s\n", "build", "measured", "KNN model", "conventional")
	for _, label := range []string{"lulesh(O2)", "lulesh(F)"} {
		spec, err := workload.FindSpec(label)
		if err != nil {
			log.Fatal(err)
		}
		// Profile the new build (fast) and predict.
		p, err := core.BuildProfiles([]workload.Spec{spec}, workload.SizeTest, 0, 0)
		if err != nil {
			log.Fatal(err)
		}
		est, err := model.Predict(core.Query{
			Features: p[label].Features, TREFP: trefp, VDD: dram.MinVDD,
			TempC: temp, Rank: core.RankDevice,
		})
		if err != nil {
			log.Fatal(err)
		}
		predicted := est.Value

		// Ground truth: an actual characterization run of this build.
		if err := srv.SetTREFP(trefp); err != nil {
			log.Fatal(err)
		}
		if err := srv.SetVDD(dram.MinVDD); err != nil {
			log.Fatal(err)
		}
		obs, err := srv.Run(p[label].Access, xgene.Experiment{TempC: temp, RecordWER: true})
		if err != nil {
			log.Fatal(err)
		}
		constRate, _ := conventional.PredictMean(trefp, temp)
		fmt.Printf("%-12s %-12.3g %-12.3g %-12.3g\n", label, obs.WER, predicted, constRate)
	}
	fmt.Println("\nThe conventional model reports the same rate for both builds; the")
	fmt.Println("workload-aware model sees the optimization's effect on memory behaviour.")
}
