// Package ecc implements the SECDED (single-error-correct, double-error-
// detect) Hamming(72,64) code used by server-grade DRAM, in the Hsiao
// odd-weight-column construction.
//
// The paper's Table I classifies DRAM errors by what the ECC hardware does
// with them: 1 corrupted bit is corrected (CE), 2 corrupted bits are detected
// but not corrected (UE), and 3 or more corrupted bits may alias to a valid
// or single-error syndrome, producing silent data corruption (SDC). This
// package derives those classes from an actual code rather than a lookup
// table, so the simulator's UE/SDC behaviour is faithful to real hardware.
package ecc

import "math/bits"

// Width constants of the (72,64) code.
const (
	DataBits  = 64 // payload bits per ECC word
	CheckBits = 8  // check bits per ECC word
	TotalBits = DataBits + CheckBits
)

// Class is the outcome of decoding a (possibly corrupted) codeword.
type Class int

const (
	// NoError: the syndrome is zero and the data is intact.
	NoError Class = iota
	// CE: a correctable error; the decoder repaired a single flipped bit.
	CE
	// UE: an uncorrectable but detected error (SECDED "detected" case);
	// on the X-Gene2 an UE reported by SLIMpro crashes the system.
	UE
	// SDC: silent data corruption; the decoder believed the word was clean
	// or performed a miscorrection, but the returned data is wrong. Only
	// possible with 3 or more flipped bits.
	SDC
)

// String returns the conventional abbreviation for the class.
func (c Class) String() string {
	switch c {
	case NoError:
		return "OK"
	case CE:
		return "CE"
	case UE:
		return "UE"
	case SDC:
		return "SDC"
	}
	return "INVALID"
}

// columns holds the 8-bit H-matrix column for each of the 72 bit positions.
// Positions 0..63 are data bits, 64..71 are check bits. All columns are
// distinct and of odd weight (Hsiao construction): the 64 data columns are
// the 56 weight-3 vectors plus 8 weight-5 vectors; the 8 check columns are
// the weight-1 identity vectors.
var columns [TotalBits]uint8

func init() {
	idx := 0
	// Weight-3 columns: C(8,3) = 56 of them.
	for a := 0; a < 8 && idx < 56; a++ {
		for b := a + 1; b < 8 && idx < 56; b++ {
			for c := b + 1; c < 8 && idx < 56; c++ {
				columns[idx] = 1<<a | 1<<b | 1<<c
				idx++
			}
		}
	}
	// Weight-5 columns: take the first 8 (complements of weight-3 columns
	// are weight-5 and automatically distinct from the weight-3 set).
	for a := 0; a < 8 && idx < DataBits; a++ {
		columns[idx] = ^(uint8(1<<a | 1<<((a+1)%8) | 1<<((a+2)%8)))
		idx++
	}
	// Identity columns for the check bits.
	for j := 0; j < CheckBits; j++ {
		columns[DataBits+j] = 1 << j
	}
	// Sanity: all 72 columns must be distinct and odd weight. A violation
	// here is a programming error, not a runtime condition.
	seen := map[uint8]bool{}
	for _, c := range columns {
		if bits.OnesCount8(c)%2 == 0 || seen[c] {
			panic("ecc: invalid Hsiao column set")
		}
		seen[c] = true
	}
}

// syndromeToPos maps each single-bit-error syndrome to the bit position it
// identifies, with 0xFF marking syndromes that match no column.
var syndromeToPos [256]uint8

func init() {
	for i := range syndromeToPos {
		syndromeToPos[i] = 0xff
	}
	for pos, c := range columns {
		syndromeToPos[c] = uint8(pos)
	}
}

// Codeword is a 72-bit ECC word: 64 data bits plus 8 check bits.
type Codeword struct {
	Data  uint64
	Check uint8
}

// computeCheck returns the check bits for the given data under H = [A | I].
func computeCheck(data uint64) uint8 {
	var chk uint8
	for d := data; d != 0; d &= d - 1 {
		chk ^= columns[bits.TrailingZeros64(d)]
	}
	return chk
}

// Encode produces the codeword protecting data.
func Encode(data uint64) Codeword {
	return Codeword{Data: data, Check: computeCheck(data)}
}

// FlipBit returns cw with the bit at position pos (0..71) inverted.
// Positions 0..63 flip data bits; 64..71 flip check bits.
func FlipBit(cw Codeword, pos int) Codeword {
	if pos < 0 || pos >= TotalBits {
		panic("ecc: FlipBit position out of range")
	}
	if pos < DataBits {
		cw.Data ^= 1 << uint(pos)
	} else {
		cw.Check ^= 1 << uint(pos-DataBits)
	}
	return cw
}

// DecodeResult describes what the decoder did with a received word.
type DecodeResult struct {
	// Class is the decoder's verdict: NoError, CE or UE. The decoder can
	// never report SDC — silence is the defining property of SDC; use
	// Classify with ground truth to detect it.
	Class Class
	// CorrectedBit is the position repaired when Class == CE, else -1.
	CorrectedBit int
	// Syndrome is the raw 8-bit syndrome.
	Syndrome uint8
}

// Decode checks and (if possible) repairs a received codeword. It returns
// the best-effort data and the decode verdict. Its Class is what the memory
// controller would report to SLIMpro: OK, CE or UE.
func Decode(cw Codeword) (uint64, DecodeResult) {
	syn := computeCheck(cw.Data) ^ cw.Check
	if syn == 0 {
		return cw.Data, DecodeResult{Class: NoError, CorrectedBit: -1}
	}
	if bits.OnesCount8(syn)%2 == 1 {
		// Odd-weight syndrome: assume single-bit error if it matches a
		// column; otherwise it is a detected multi-bit error.
		if pos := syndromeToPos[syn]; pos != 0xff {
			fixed := FlipBit(cw, int(pos))
			return fixed.Data, DecodeResult{Class: CE, CorrectedBit: int(pos), Syndrome: syn}
		}
		return cw.Data, DecodeResult{Class: UE, CorrectedBit: -1, Syndrome: syn}
	}
	// Even-weight non-zero syndrome: detected double (or even-count) error.
	return cw.Data, DecodeResult{Class: UE, CorrectedBit: -1, Syndrome: syn}
}

// Classify injects the given bit flips into the codeword protecting data,
// decodes, and compares against ground truth. This is the oracle the DRAM
// simulator uses to classify a physical multi-bit upset: it returns CE when
// the decoder restored the data, UE when the decoder detected but could not
// correct, and SDC when the decoder's output is wrong without detection.
func Classify(data uint64, flips []int) Class {
	if len(flips) == 0 {
		return NoError
	}
	cw := Encode(data)
	for _, pos := range flips {
		cw = FlipBit(cw, pos)
	}
	decoded, res := Decode(cw)
	switch res.Class {
	case NoError:
		if decoded == data {
			return NoError // flips cancelled out exactly
		}
		return SDC
	case CE:
		if decoded == data {
			return CE
		}
		return SDC // miscorrection
	default:
		return UE
	}
}
