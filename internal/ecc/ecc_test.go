package ecc

import (
	"math/bits"
	"testing"
	"testing/quick"

	"repro/internal/stats"
)

func TestEncodeDecodeClean(t *testing.T) {
	for _, data := range []uint64{0, 1, 0xdeadbeefcafebabe, ^uint64(0)} {
		cw := Encode(data)
		got, res := Decode(cw)
		if res.Class != NoError || got != data {
			t.Fatalf("clean decode of %#x: class=%v data=%#x", data, res.Class, got)
		}
	}
}

func TestAllSingleBitErrorsCorrected(t *testing.T) {
	data := uint64(0x0123456789abcdef)
	for pos := 0; pos < TotalBits; pos++ {
		cw := FlipBit(Encode(data), pos)
		got, res := Decode(cw)
		if res.Class != CE {
			t.Fatalf("single flip at %d: class=%v, want CE", pos, res.Class)
		}
		if got != data {
			t.Fatalf("single flip at %d: data not restored", pos)
		}
		if res.CorrectedBit != pos {
			t.Fatalf("single flip at %d: corrected %d", pos, res.CorrectedBit)
		}
	}
}

func TestAllDoubleBitErrorsDetected(t *testing.T) {
	// Exhaustive over all C(72,2) = 2556 pairs: SECDED must flag every
	// double error as UE and never miscorrect.
	data := uint64(0xfedcba9876543210)
	for a := 0; a < TotalBits; a++ {
		for b := a + 1; b < TotalBits; b++ {
			cw := FlipBit(FlipBit(Encode(data), a), b)
			_, res := Decode(cw)
			if res.Class != UE {
				t.Fatalf("double flip (%d,%d): class=%v, want UE", a, b, res.Class)
			}
		}
	}
}

func TestTripleBitErrorsNeverSilentlyOK(t *testing.T) {
	// Triple errors must decode to either UE (detected) or a miscorrection.
	// Classify must label the miscorrections SDC — never NoError or CE.
	data := uint64(0xa5a5a5a55a5a5a5a)
	rng := stats.NewRNG(1)
	sdc, ue := 0, 0
	for trial := 0; trial < 5000; trial++ {
		perm := rng.Perm(TotalBits)
		flips := perm[:3]
		switch Classify(data, flips) {
		case SDC:
			sdc++
		case UE:
			ue++
		case CE, NoError:
			t.Fatalf("triple flip %v classified as CE/NoError", flips)
		}
	}
	if sdc == 0 {
		t.Fatal("expected some triple errors to alias to SDC")
	}
	if ue == 0 {
		t.Fatal("expected some triple errors to be detected as UE")
	}
}

func TestClassifyTable1(t *testing.T) {
	// Paper Table I: 1 bit -> corrected (CE); >1 -> uncorrected/detected
	// (UE); >2 -> possibly undetected (SDC).
	data := uint64(0x1122334455667788)
	if got := Classify(data, nil); got != NoError {
		t.Fatalf("0 flips: %v", got)
	}
	if got := Classify(data, []int{17}); got != CE {
		t.Fatalf("1 flip: %v", got)
	}
	if got := Classify(data, []int{3, 44}); got != UE {
		t.Fatalf("2 flips: %v", got)
	}
}

func TestClassifyDuplicateFlipsCancel(t *testing.T) {
	// Flipping the same bit twice restores the word.
	data := uint64(42)
	if got := Classify(data, []int{5, 5}); got != NoError {
		t.Fatalf("cancelled flips: %v, want NoError", got)
	}
}

func TestColumnsDistinctOddWeight(t *testing.T) {
	seen := map[uint8]bool{}
	for pos, c := range columns {
		if bits.OnesCount8(c)%2 != 1 {
			t.Fatalf("column %d has even weight %#x", pos, c)
		}
		if seen[c] {
			t.Fatalf("column %d duplicates %#x", pos, c)
		}
		seen[c] = true
	}
}

func TestCheckBitColumnsAreIdentity(t *testing.T) {
	for j := 0; j < CheckBits; j++ {
		if columns[DataBits+j] != 1<<j {
			t.Fatalf("check column %d = %#x", j, columns[DataBits+j])
		}
	}
}

func TestFlipBitRoundTrip(t *testing.T) {
	cw := Encode(0xffff0000ffff0000)
	for pos := 0; pos < TotalBits; pos++ {
		if FlipBit(FlipBit(cw, pos), pos) != cw {
			t.Fatalf("FlipBit not involutive at %d", pos)
		}
	}
}

func TestFlipBitPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	FlipBit(Encode(0), TotalBits)
}

// Property: encode/decode round-trips for arbitrary data.
func TestRoundTripProperty(t *testing.T) {
	f := func(data uint64) bool {
		got, res := Decode(Encode(data))
		return got == data && res.Class == NoError
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: any single-bit error on arbitrary data is corrected.
func TestSingleErrorProperty(t *testing.T) {
	f := func(data uint64, rawPos uint8) bool {
		pos := int(rawPos) % TotalBits
		got, res := Decode(FlipBit(Encode(data), pos))
		return got == data && res.Class == CE
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: any double-bit error on arbitrary data is detected, not
// miscorrected.
func TestDoubleErrorProperty(t *testing.T) {
	f := func(data uint64, rawA, rawB uint8) bool {
		a := int(rawA) % TotalBits
		b := int(rawB) % TotalBits
		if a == b {
			return true
		}
		_, res := Decode(FlipBit(FlipBit(Encode(data), a), b))
		return res.Class == UE
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestClassString(t *testing.T) {
	cases := map[Class]string{NoError: "OK", CE: "CE", UE: "UE", SDC: "SDC", Class(99): "INVALID"}
	for c, want := range cases {
		if c.String() != want {
			t.Fatalf("%d.String() = %q, want %q", c, c.String(), want)
		}
	}
}

func BenchmarkEncode(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Encode(uint64(i) * 0x9e3779b97f4a7c15)
	}
}

func BenchmarkDecodeClean(b *testing.B) {
	cw := Encode(0x0123456789abcdef)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Decode(cw)
	}
}

func BenchmarkDecodeSingleError(b *testing.B) {
	cw := FlipBit(Encode(0x0123456789abcdef), 13)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Decode(cw)
	}
}
