package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRanksSimple(t *testing.T) {
	got := Ranks([]float64{10, 30, 20})
	want := []float64{1, 3, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Ranks = %v, want %v", got, want)
		}
	}
}

func TestRanksTies(t *testing.T) {
	got := Ranks([]float64{1, 2, 2, 3})
	want := []float64{1, 2.5, 2.5, 4}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Ranks = %v, want %v", got, want)
		}
	}
}

func TestPearsonPerfect(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{2, 4, 6, 8, 10}
	if got := Pearson(xs, ys); !approx(got, 1, 1e-12) {
		t.Fatalf("Pearson = %v, want 1", got)
	}
	neg := []float64{10, 8, 6, 4, 2}
	if got := Pearson(xs, neg); !approx(got, -1, 1e-12) {
		t.Fatalf("Pearson = %v, want -1", got)
	}
}

func TestPearsonConstantInput(t *testing.T) {
	if got := Pearson([]float64{1, 1, 1}, []float64{1, 2, 3}); got != 0 {
		t.Fatalf("Pearson with constant x = %v, want 0", got)
	}
}

func TestSpearmanMonotoneNonLinear(t *testing.T) {
	// y = exp(x) is monotone but non-linear: Spearman must see a perfect
	// relationship where Pearson does not.
	xs := []float64{1, 2, 3, 4, 5, 6}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = math.Exp(x)
	}
	if got := Spearman(xs, ys); !approx(got, 1, 1e-12) {
		t.Fatalf("Spearman = %v, want 1", got)
	}
	if p := Pearson(xs, ys); p >= 0.999 {
		t.Fatalf("Pearson = %v, expected <1 for non-linear data", p)
	}
}

func TestSpearmanAntiMonotone(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{100, 10, 1, 0.1}
	if got := Spearman(xs, ys); !approx(got, -1, 1e-12) {
		t.Fatalf("Spearman = %v, want -1", got)
	}
}

func TestSpearmanUncorrelated(t *testing.T) {
	r := NewRNG(99)
	n := 5000
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := 0; i < n; i++ {
		xs[i] = r.Float64()
		ys[i] = r.Float64()
	}
	if got := Spearman(xs, ys); math.Abs(got) > 0.05 {
		t.Fatalf("Spearman of independent data = %v, want ~0", got)
	}
}

func TestSpearmanMismatchedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Spearman([]float64{1}, []float64{1, 2})
}

// Property: Spearman is invariant under any strictly monotone transform of
// either argument.
func TestSpearmanMonotoneInvarianceProperty(t *testing.T) {
	r := NewRNG(7)
	f := func(seed uint32) bool {
		rr := NewRNG(uint64(seed))
		n := 20 + rr.Intn(30)
		xs := make([]float64, n)
		ys := make([]float64, n)
		for i := range xs {
			xs[i] = rr.NormFloat64()
			ys[i] = xs[i] + 0.5*rr.NormFloat64()
		}
		base := Spearman(xs, ys)
		tx := make([]float64, n)
		for i, x := range xs {
			tx[i] = math.Atan(x) * 3 // strictly monotone
		}
		return approx(Spearman(tx, ys), base, 1e-9)
	}
	_ = r
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: |Spearman| <= 1.
func TestSpearmanBoundedProperty(t *testing.T) {
	f := func(seed uint32) bool {
		rr := NewRNG(uint64(seed))
		n := 3 + rr.Intn(50)
		xs := make([]float64, n)
		ys := make([]float64, n)
		for i := range xs {
			xs[i] = rr.Float64()
			ys[i] = rr.Float64()
		}
		s := Spearman(xs, ys)
		return s >= -1-1e-9 && s <= 1+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
