package stats

import "math"

// Sketch bin layout: quarter-octave logarithmic bins over positive
// magnitudes. Bin edges are data-independent (a pure function of the
// value, never of the stream), which is what makes two sketches built
// over different shards of the same stream merge into exactly the
// sketch of the whole stream: merging is integer addition of bin
// counts, with no re-binning and no order sensitivity. floor(4*log2 x)
// gives a relative bin width of 2^(1/4) ≈ 1.19, i.e. quantiles read
// back within ~9% relative error — ample for distribution-shift
// detection, where whole bins of probability mass move.
const (
	sketchBins   = 160 // exponents floor(4*log2 x) in [sketchMinExp, sketchMinExp+sketchBins)
	sketchMinExp = -80 // |x| below 2^-20 clamps into the first bin
)

// Sketch is a per-feature streaming summary: exact count, Welford
// mean/variance, min/max, and a deterministic quantile histogram. It is
// mergeable (Merge) and JSON-serializable, so a summary computed at
// training time can be persisted in the dataset artifact and compared
// against a live stream later. Non-finite inputs (NaN, ±Inf) are counted
// but excluded from every statistic — a single corrupt reading must not
// poison the mean or the JSON encoding.
type Sketch struct {
	// Count is the number of finite observations.
	Count int64 `json:"count"`
	// NonFinite counts NaN/±Inf observations, excluded from all moments.
	NonFinite int64 `json:"non_finite,omitempty"`
	// Mean and M2 are Welford running moments (M2 = sum of squared
	// deviations); Variance derives the population variance.
	Mean float64 `json:"mean"`
	M2   float64 `json:"m2"`
	// Min and Max are only meaningful when Count > 0.
	Min float64 `json:"min"`
	Max float64 `json:"max"`
	// Zeros and Negatives count exact zeros and negative observations;
	// together with Pos they form the discrete histogram Distance
	// compares. (The telemetry feature catalog is non-negative, so
	// negatives get a single lump bin rather than a mirrored histogram.)
	Zeros     int64 `json:"zeros,omitempty"`
	Negatives int64 `json:"negatives,omitempty"`
	// Pos holds the positive-magnitude histogram, sketchBins counts;
	// nil until the first positive observation.
	Pos []int64 `json:"pos,omitempty"`
}

// binIndex maps a positive finite value to its histogram bin, clamping
// the far tails into the edge bins.
func binIndex(x float64) int {
	e := int(math.Floor(4 * math.Log2(x)))
	if e < sketchMinExp {
		e = sketchMinExp
	}
	if e > sketchMinExp+sketchBins-1 {
		e = sketchMinExp + sketchBins - 1
	}
	return e - sketchMinExp
}

// Add folds one observation into the sketch.
func (s *Sketch) Add(x float64) {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		s.NonFinite++
		return
	}
	if s.Count == 0 {
		s.Min, s.Max = x, x
	} else {
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Count++
	d := x - s.Mean
	s.Mean += d / float64(s.Count)
	s.M2 += d * (x - s.Mean)
	switch {
	case x == 0:
		s.Zeros++
	case x < 0:
		s.Negatives++
	default:
		if s.Pos == nil {
			s.Pos = make([]int64, sketchBins)
		}
		s.Pos[binIndex(x)]++
	}
}

// Merge folds o into s, as if every observation o saw had been Added to
// s. Bin counts, Count, Zeros, Negatives, Min and Max merge exactly
// (order-independent integers and comparisons); Mean and M2 merge by the
// Chan et al. parallel-variance formula, exact up to floating-point
// rounding.
func (s *Sketch) Merge(o *Sketch) {
	s.NonFinite += o.NonFinite
	if o.Count == 0 {
		return
	}
	if s.Count == 0 {
		pos := s.Pos
		*s = *o
		if o.Pos != nil {
			if pos == nil {
				pos = make([]int64, sketchBins)
			}
			copy(pos, o.Pos)
			s.Pos = pos
		}
		return
	}
	n1, n2 := float64(s.Count), float64(o.Count)
	d := o.Mean - s.Mean
	s.M2 += o.M2 + d*d*n1*n2/(n1+n2)
	s.Mean += d * n2 / (n1 + n2)
	s.Count += o.Count
	if o.Min < s.Min {
		s.Min = o.Min
	}
	if o.Max > s.Max {
		s.Max = o.Max
	}
	s.Zeros += o.Zeros
	s.Negatives += o.Negatives
	if o.Pos != nil {
		if s.Pos == nil {
			s.Pos = make([]int64, sketchBins)
		}
		for i, c := range o.Pos {
			s.Pos[i] += c
		}
	}
}

// Variance is the population variance of the finite observations; zero
// below two observations.
func (s *Sketch) Variance() float64 {
	if s.Count < 2 {
		return 0
	}
	return s.M2 / float64(s.Count)
}

// Quantile reconstructs the q-quantile (q in [0, 1]) from the histogram:
// negatives are represented by Min, zeros by 0, and each positive bin by
// its geometric midpoint, so the answer carries the bin's ~9% relative
// error. Clamped into [Min, Max]; zero on an empty sketch.
func (s *Sketch) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(s.Count)))
	if rank < 1 {
		rank = 1
	}
	if rank > s.Count {
		rank = s.Count
	}
	v, seen := s.Min, s.Negatives
	if rank > seen {
		if rank <= seen+s.Zeros {
			v = 0
		}
		seen += s.Zeros
	}
	if rank > seen {
		v = s.Max
		for i, c := range s.Pos {
			seen += c
			if rank <= seen {
				// Geometric midpoint of bin i: 2^((e + 0.5)/4).
				v = math.Exp2((float64(i+sketchMinExp) + 0.5) / 4)
				break
			}
		}
	}
	if v < s.Min {
		v = s.Min
	}
	if v > s.Max {
		v = s.Max
	}
	return v
}

// Distance is the total-variation distance between the two sketches'
// observed distributions over the shared discrete support
// {negatives, zero, bin_0, …}: ½·Σ|p_a − p_b|, in [0, 1]. It depends
// only on integer bin counts, so it is bit-deterministic regardless of
// the order (or sharding) in which either sketch absorbed its stream.
// Two empty sketches are identical (0); exactly one empty is maximal
// drift (1) — no observations is itself a distribution shift.
func Distance(a, b *Sketch) float64 {
	na, nb := float64(a.Count), float64(b.Count)
	if na == 0 && nb == 0 {
		return 0
	}
	if na == 0 || nb == 0 {
		return 1
	}
	sum := math.Abs(float64(a.Negatives)/na - float64(b.Negatives)/nb)
	sum += math.Abs(float64(a.Zeros)/na - float64(b.Zeros)/nb)
	for i := 0; i < sketchBins; i++ {
		var ca, cb int64
		if a.Pos != nil {
			ca = a.Pos[i]
		}
		if b.Pos != nil {
			cb = b.Pos[i]
		}
		if ca == 0 && cb == 0 {
			continue
		}
		sum += math.Abs(float64(ca)/na - float64(cb)/nb)
	}
	return sum / 2
}
