package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the population variance of xs.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs))
}

// Stddev returns the population standard deviation of xs.
func Stddev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// GeoMean returns the geometric mean of strictly positive xs; zero or
// negative entries are skipped.
func GeoMean(xs []float64) float64 {
	s, n := 0.0, 0
	for _, x := range xs {
		if x > 0 {
			s += math.Log(x)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(s / float64(n))
}

// Min returns the minimum of xs, or +Inf for an empty slice.
func Min(xs []float64) float64 {
	m := math.Inf(1)
	for _, x := range xs {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs, or -Inf for an empty slice.
func Max(xs []float64) float64 {
	m := math.Inf(-1)
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

// Percentile returns the p-th percentile (0..100) of xs using linear
// interpolation between order statistics. xs is not modified.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	if p <= 0 {
		return cp[0]
	}
	if p >= 100 {
		return cp[len(cp)-1]
	}
	pos := p / 100 * float64(len(cp)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return cp[lo]
	}
	frac := pos - float64(lo)
	return cp[lo]*(1-frac) + cp[hi]*frac
}

// Median returns the 50th percentile of xs.
func Median(xs []float64) float64 { return Percentile(xs, 50) }

// Clamp limits x to the closed interval [lo, hi].
func Clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// Summary holds the usual descriptive statistics of a sample.
type Summary struct {
	N      int
	Mean   float64
	Stddev float64
	Min    float64
	P25    float64
	Median float64
	P75    float64
	Max    float64
}

// Summarize computes a Summary of xs.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	return Summary{
		N:      len(xs),
		Mean:   Mean(xs),
		Stddev: Stddev(xs),
		Min:    Min(xs),
		P25:    Percentile(xs, 25),
		Median: Median(xs),
		P75:    Percentile(xs, 75),
		Max:    Max(xs),
	}
}
