// Package stats provides the deterministic random-number generation,
// probability distributions and statistical estimators used throughout the
// DRAM characterization and modeling pipeline.
//
// Every stochastic component of the simulator (weak-cell sampling, VRT
// toggling, workload traffic, thermal noise) draws from an explicitly seeded
// RNG so that characterization campaigns are exactly reproducible: the same
// seed always yields the same DRAM, the same workload behaviour and the same
// error log.
package stats

import "math"

// RNG is a deterministic pseudo-random number generator based on
// xoshiro256** seeded via SplitMix64. It is not safe for concurrent use;
// derive per-goroutine generators with Split.
type RNG struct {
	s [4]uint64
	// cached second normal deviate from the polar method
	hasGauss bool
	gauss    float64
}

// NewRNG returns a generator seeded from the given seed. Distinct seeds give
// statistically independent streams.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	// SplitMix64 expansion of the seed into the xoshiro state, as
	// recommended by the xoshiro authors.
	sm := seed
	for i := 0; i < 4; i++ {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		r.s[i] = z ^ (z >> 31)
	}
	// xoshiro must not start from the all-zero state.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
	return r
}

// Split derives a new independent generator from this one. The parent
// advances by one draw.
func (r *RNG) Split() *RNG {
	return NewRNG(r.Uint64() ^ 0xd1342543de82ef95)
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("stats: Intn with non-positive n")
	}
	// Lemire's multiply-shift rejection method for unbiased bounded ints.
	bound := uint64(n)
	for {
		x := r.Uint64()
		hi, lo := mul64(x, bound)
		if lo >= bound || lo >= (-bound)%bound {
			return int(hi)
		}
	}
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask32 = 1<<32 - 1
	a0, a1 := a&mask32, a>>32
	b0, b1 := b&mask32, b>>32
	w0 := a0 * b0
	t := a1*b0 + w0>>32
	w1 := t&mask32 + a0*b1
	hi = a1*b1 + t>>32 + w1>>32
	lo = a * b
	return
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Float64Open returns a uniform float64 in (0, 1), never exactly zero, which
// is convenient for log transforms.
func (r *RNG) Float64Open() float64 {
	for {
		f := r.Float64()
		if f > 0 {
			return f
		}
	}
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// NormFloat64 returns a standard normal deviate (mean 0, stddev 1) using the
// Marsaglia polar method.
func (r *RNG) NormFloat64() float64 {
	if r.hasGauss {
		r.hasGauss = false
		return r.gauss
	}
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s >= 1 || s == 0 {
			continue
		}
		f := math.Sqrt(-2 * math.Log(s) / s)
		r.gauss = v * f
		r.hasGauss = true
		return u * f
	}
}

// LogNormal returns a deviate from the log-normal distribution whose
// underlying normal has the given mu and sigma.
func (r *RNG) LogNormal(mu, sigma float64) float64 {
	return math.Exp(mu + sigma*r.NormFloat64())
}

// Exp returns an exponential deviate with the given rate (mean 1/rate).
func (r *RNG) Exp(rate float64) float64 {
	if rate <= 0 {
		panic("stats: Exp with non-positive rate")
	}
	return -math.Log(r.Float64Open()) / rate
}

// Poisson returns a Poisson-distributed count with the given mean. For large
// means it uses a normal approximation, which is adequate for the weak-cell
// population sizes the simulator draws.
func (r *RNG) Poisson(mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean > 64 {
		// Normal approximation with continuity correction.
		n := int(math.Round(mean + math.Sqrt(mean)*r.NormFloat64()))
		if n < 0 {
			n = 0
		}
		return n
	}
	// Knuth's method.
	l := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= r.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle permutes the first n indices in place using swap.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Zipf draws ranks in [0, n) with probability proportional to
// 1/(rank+1)^s, using inverse-CDF sampling over a precomputed table.
// It models the skewed key popularity of caching workloads.
type Zipf struct {
	cdf []float64
	rng *RNG
}

// NewZipf builds a Zipf sampler over n items with exponent s (> 0).
func NewZipf(rng *RNG, s float64, n int) *Zipf {
	if n <= 0 {
		panic("stats: Zipf with non-positive n")
	}
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += 1 / math.Pow(float64(i+1), s)
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return &Zipf{cdf: cdf, rng: rng}
}

// Draw returns the next Zipf-distributed rank.
func (z *Zipf) Draw() int {
	u := z.rng.Float64()
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
