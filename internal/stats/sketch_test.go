package stats

import (
	"encoding/json"
	"math"
	"reflect"
	"testing"
)

func sketchOf(xs ...float64) *Sketch {
	var s Sketch
	for _, x := range xs {
		s.Add(x)
	}
	return &s
}

func TestSketchMoments(t *testing.T) {
	s := sketchOf(1, 2, 3, 4, 5)
	if s.Count != 5 {
		t.Fatalf("count = %d, want 5", s.Count)
	}
	if math.Abs(s.Mean-3) > 1e-12 {
		t.Errorf("mean = %g, want 3", s.Mean)
	}
	if math.Abs(s.Variance()-2) > 1e-12 {
		t.Errorf("variance = %g, want 2", s.Variance())
	}
	if s.Min != 1 || s.Max != 5 {
		t.Errorf("min/max = %g/%g, want 1/5", s.Min, s.Max)
	}
}

func TestSketchEmpty(t *testing.T) {
	var a, b Sketch
	if a.Variance() != 0 || a.Quantile(0.5) != 0 {
		t.Errorf("empty sketch: variance %g quantile %g, want zeros", a.Variance(), a.Quantile(0.5))
	}
	if d := Distance(&a, &b); d != 0 {
		t.Errorf("distance(empty, empty) = %g, want 0", d)
	}
	if d := Distance(&a, sketchOf(1, 2, 3)); d != 1 {
		t.Errorf("distance(empty, nonempty) = %g, want 1", d)
	}
}

func TestSketchConstantFeature(t *testing.T) {
	s := sketchOf(7, 7, 7, 7)
	if s.Variance() != 0 {
		t.Errorf("constant feature variance = %g, want exactly 0", s.Variance())
	}
	if q := s.Quantile(0.5); q != 7 {
		t.Errorf("constant feature median = %g, want 7 (min/max clamp)", q)
	}
	// Identical constant streams have zero drift; a shifted constant has
	// maximal drift (all mass moves bins).
	if d := Distance(s, sketchOf(7, 7)); d != 0 {
		t.Errorf("distance of identical constants = %g, want 0", d)
	}
	if d := Distance(s, sketchOf(7000, 7000)); d != 1 {
		t.Errorf("distance of disjoint constants = %g, want 1", d)
	}
	// An all-zero feature (the common case for sparse CE features) is
	// constant too and must not divide by zero anywhere.
	z := sketchOf(0, 0, 0)
	if z.Variance() != 0 || z.Quantile(0.9) != 0 {
		t.Errorf("all-zero feature: variance %g quantile %g", z.Variance(), z.Quantile(0.9))
	}
	if d := Distance(z, sketchOf(0, 0)); d != 0 {
		t.Errorf("distance of zero streams = %g, want 0", d)
	}
}

func TestSketchNonFiniteGuard(t *testing.T) {
	var s Sketch
	s.Add(math.NaN())
	s.Add(math.Inf(1))
	s.Add(math.Inf(-1))
	s.Add(2)
	if s.NonFinite != 3 || s.Count != 1 {
		t.Fatalf("non_finite/count = %d/%d, want 3/1", s.NonFinite, s.Count)
	}
	if s.Mean != 2 || s.Min != 2 || s.Max != 2 {
		t.Errorf("moments poisoned by non-finite input: mean %g min %g max %g", s.Mean, s.Min, s.Max)
	}
	// The guard is what keeps the sketch JSON-encodable: encoding/json
	// rejects NaN/Inf values outright.
	if _, err := json.Marshal(&s); err != nil {
		t.Errorf("sketch with non-finite inputs not marshalable: %v", err)
	}
}

func TestSketchQuantile(t *testing.T) {
	var s Sketch
	for i := 1; i <= 1000; i++ {
		s.Add(float64(i))
	}
	for _, tc := range []struct{ q, want float64 }{
		{0, 1}, {0.5, 500}, {0.9, 900}, {1, 1000},
	} {
		got := s.Quantile(tc.q)
		if math.Abs(got-tc.want) > 0.1*tc.want {
			t.Errorf("quantile(%g) = %g, want %g within 10%%", tc.q, got, tc.want)
		}
	}
}

// TestSketchMergeMatchesSequential: a merged pair of shard sketches
// carries the same integer state as the sequential sketch, and moments
// agree to floating-point tolerance.
func TestSketchMergeMatchesSequential(t *testing.T) {
	xs := []float64{0, 0.5, 1, 2, 4, -3, 0, 8, 16, 1e-30, 1e30, 7}
	whole := sketchOf(xs...)
	a, b := sketchOf(xs[:5]...), sketchOf(xs[5:]...)
	a.Merge(b)
	if a.Count != whole.Count || a.Zeros != whole.Zeros || a.Negatives != whole.Negatives {
		t.Fatalf("merged counts %d/%d/%d != sequential %d/%d/%d",
			a.Count, a.Zeros, a.Negatives, whole.Count, whole.Zeros, whole.Negatives)
	}
	if !reflect.DeepEqual(a.Pos, whole.Pos) {
		t.Fatalf("merged bins differ from sequential bins")
	}
	if a.Min != whole.Min || a.Max != whole.Max {
		t.Errorf("merged min/max %g/%g != %g/%g", a.Min, a.Max, whole.Min, whole.Max)
	}
	if math.Abs(a.Mean-whole.Mean) > 1e-12*math.Abs(whole.Mean) {
		t.Errorf("merged mean %g != sequential %g", a.Mean, whole.Mean)
	}
	relM2 := math.Abs(a.M2-whole.M2) / math.Max(1, math.Abs(whole.M2))
	if relM2 > 1e-9 {
		t.Errorf("merged M2 %g != sequential %g", a.M2, whole.M2)
	}
}

// TestSketchMergeDeterministicAcrossShards splits one stream across k
// shards for several k, merges the shard sketches, and requires the
// histogram state — and therefore the drift Distance, which depends only
// on it — to be bit-identical at every shard count. (The engine-workers
// variant of this property lives in internal/ingest, which sits above
// the engine in the import graph.)
func TestSketchMergeDeterministicAcrossShards(t *testing.T) {
	const n = 4096
	xs := make([]float64, n)
	for i := range xs {
		// Deterministic stream spanning zeros, magnitudes, negatives.
		switch i % 7 {
		case 0:
			xs[i] = 0
		case 1:
			xs[i] = -float64(i)
		default:
			xs[i] = math.Exp2(float64(i%61) - 30)
		}
	}
	baseline := sketchOf(xs[:n/2]...)

	build := func(shards int) *Sketch {
		merged := &Sketch{}
		for sh := 0; sh < shards; sh++ {
			var s Sketch
			for i := sh; i < n; i += shards {
				s.Add(xs[i])
			}
			merged.Merge(&s)
		}
		return merged
	}

	ref := build(1)
	refDist := Distance(baseline, ref)
	for _, shards := range []int{2, 4, 8, 16} {
		got := build(shards)
		if got.Count != ref.Count || !reflect.DeepEqual(got.Pos, ref.Pos) ||
			got.Zeros != ref.Zeros || got.Negatives != ref.Negatives {
			t.Fatalf("shards=%d: histogram state differs from shards=1", shards)
		}
		if got.Min != ref.Min || got.Max != ref.Max {
			t.Errorf("shards=%d: min/max %g/%g != %g/%g", shards, got.Min, got.Max, ref.Min, ref.Max)
		}
		if d := Distance(baseline, got); d != refDist {
			t.Errorf("shards=%d: drift distance %v != %v", shards, d, refDist)
		}
	}
}

func TestSketchMergeEmptySides(t *testing.T) {
	var empty Sketch
	s := sketchOf(1, 2, 3)
	s.Merge(&empty)
	if s.Count != 3 {
		t.Errorf("merge with empty changed count to %d", s.Count)
	}
	var dst Sketch
	dst.Merge(sketchOf(4, 5))
	if dst.Count != 2 || dst.Min != 4 || dst.Max != 5 {
		t.Errorf("merge into empty: count %d min %g max %g", dst.Count, dst.Min, dst.Max)
	}
	// The adopted histogram must be a copy, not an alias.
	src := sketchOf(8)
	var dst2 Sketch
	dst2.Merge(src)
	dst2.Add(8)
	if src.Pos[binIndex(8)] != 1 {
		t.Errorf("merge aliased the source histogram")
	}
}

func TestSketchJSONRoundTrip(t *testing.T) {
	s := sketchOf(0, 1, 2.5, -4, 1e6)
	s.Add(math.NaN())
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var back Sketch
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(*s, back) {
		t.Errorf("round trip mismatch:\n%+v\nvs\n%+v", *s, back)
	}
}
