package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMean(t *testing.T) {
	if got := Mean([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Fatalf("Mean = %v, want 2.5", got)
	}
	if got := Mean(nil); got != 0 {
		t.Fatalf("Mean(nil) = %v, want 0", got)
	}
}

func TestVarianceStddev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Variance(xs); !approx(got, 4, 1e-12) {
		t.Fatalf("Variance = %v, want 4", got)
	}
	if got := Stddev(xs); !approx(got, 2, 1e-12) {
		t.Fatalf("Stddev = %v, want 2", got)
	}
	if Variance([]float64{5}) != 0 {
		t.Fatal("Variance of singleton should be 0")
	}
}

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{1, 100}); !approx(got, 10, 1e-9) {
		t.Fatalf("GeoMean = %v, want 10", got)
	}
	if got := GeoMean([]float64{0, -2}); got != 0 {
		t.Fatalf("GeoMean of non-positive = %v, want 0", got)
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 2}
	if Min(xs) != -1 || Max(xs) != 7 {
		t.Fatalf("Min/Max = %v/%v", Min(xs), Max(xs))
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ p, want float64 }{
		{0, 1}, {25, 2}, {50, 3}, {75, 4}, {100, 5}, {10, 1.4},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); !approx(got, c.want, 1e-12) {
			t.Fatalf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if !math.IsNaN(Percentile(nil, 50)) {
		t.Fatal("Percentile of empty should be NaN")
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	xs := []float64{5, 1, 3}
	Percentile(xs, 50)
	if xs[0] != 5 || xs[1] != 1 || xs[2] != 3 {
		t.Fatal("Percentile mutated its input")
	}
}

func TestClamp(t *testing.T) {
	if Clamp(5, 0, 1) != 1 || Clamp(-5, 0, 1) != 0 || Clamp(0.5, 0, 1) != 0.5 {
		t.Fatal("Clamp misbehaved")
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Median != 3 || s.Min != 1 || s.Max != 5 {
		t.Fatalf("Summarize = %+v", s)
	}
	if z := Summarize(nil); z.N != 0 {
		t.Fatalf("Summarize(nil) = %+v", z)
	}
}

// Property: mean is always within [min, max].
func TestMeanWithinBoundsProperty(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e100 {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		m := Mean(xs)
		return m >= Min(xs)-1e-6 && m <= Max(xs)+1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: variance is non-negative.
func TestVarianceNonNegativeProperty(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e100 {
				xs = append(xs, x)
			}
		}
		return Variance(xs) >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
