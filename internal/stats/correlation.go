package stats

import (
	"math"
	"sort"
)

// Ranks returns the fractional ranks of xs (1-based), assigning tied values
// the average of the ranks they span. This is the tie handling required for
// Spearman's rank correlation coefficient.
func Ranks(xs []float64) []float64 {
	n := len(xs)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return xs[idx[a]] < xs[idx[b]] })
	ranks := make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j+1 < n && xs[idx[j+1]] == xs[idx[i]] {
			j++
		}
		// Average rank for the tie group [i, j].
		avg := float64(i+j)/2 + 1
		for k := i; k <= j; k++ {
			ranks[idx[k]] = avg
		}
		i = j + 1
	}
	return ranks
}

// Pearson returns the Pearson product-moment correlation of xs and ys.
// It returns 0 when either input is constant (undefined correlation).
func Pearson(xs, ys []float64) float64 {
	if len(xs) != len(ys) {
		panic("stats: Pearson with mismatched lengths")
	}
	n := len(xs)
	if n < 2 {
		return 0
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := 0; i < n; i++ {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}

// Spearman returns Spearman's rank correlation coefficient r_s of xs and ys,
// the statistic the paper uses for feature selection (Section VI-A). It
// captures both linear and monotonic non-linear relationships and lies in
// [-1, +1].
func Spearman(xs, ys []float64) float64 {
	if len(xs) != len(ys) {
		panic("stats: Spearman with mismatched lengths")
	}
	return Pearson(Ranks(xs), Ranks(ys))
}
