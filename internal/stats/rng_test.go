package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
}

func TestRNGDistinctSeeds(t *testing.T) {
	a := NewRNG(1)
	b := NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("distinct seeds produced %d/100 identical draws", same)
	}
}

func TestRNGZeroSeed(t *testing.T) {
	r := NewRNG(0)
	x := r.Uint64()
	y := r.Uint64()
	if x == 0 && y == 0 {
		t.Fatal("zero seed produced degenerate stream")
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 100000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := NewRNG(9)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.005 {
		t.Fatalf("uniform mean = %v, want ~0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := NewRNG(11)
	for _, n := range []int{1, 2, 3, 10, 1000} {
		for i := 0; i < 1000; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnUniformity(t *testing.T) {
	r := NewRNG(13)
	const buckets = 10
	const draws = 100000
	counts := make([]int, buckets)
	for i := 0; i < draws; i++ {
		counts[r.Intn(buckets)]++
	}
	want := float64(draws) / buckets
	for b, c := range counts {
		if math.Abs(float64(c)-want)/want > 0.05 {
			t.Fatalf("bucket %d count %d deviates >5%% from %v", b, c, want)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestNormFloat64Moments(t *testing.T) {
	r := NewRNG(17)
	const n = 200000
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		x := r.NormFloat64()
		sum += x
		sumsq += x * x
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean) > 0.01 {
		t.Fatalf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.02 {
		t.Fatalf("normal variance = %v, want ~1", variance)
	}
}

func TestLogNormalMedian(t *testing.T) {
	r := NewRNG(19)
	const n = 100001
	xs := make([]float64, n)
	mu, sigma := 2.0, 0.5
	for i := range xs {
		xs[i] = r.LogNormal(mu, sigma)
	}
	med := Median(xs)
	want := math.Exp(mu)
	if math.Abs(med-want)/want > 0.03 {
		t.Fatalf("lognormal median = %v, want ~%v", med, want)
	}
}

func TestExpMean(t *testing.T) {
	r := NewRNG(23)
	const n = 100000
	rate := 3.0
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Exp(rate)
	}
	mean := sum / n
	if math.Abs(mean-1/rate)/(1/rate) > 0.03 {
		t.Fatalf("exp mean = %v, want ~%v", mean, 1/rate)
	}
}

func TestPoissonMean(t *testing.T) {
	r := NewRNG(29)
	for _, mean := range []float64{0.5, 3, 20, 500} {
		const n = 20000
		sum := 0.0
		for i := 0; i < n; i++ {
			sum += float64(r.Poisson(mean))
		}
		got := sum / n
		tol := 4 * math.Sqrt(mean/float64(n)) // 4 sigma of the sample mean
		if math.Abs(got-mean) > tol {
			t.Fatalf("Poisson(%v) sample mean = %v (tol %v)", mean, got, tol)
		}
	}
}

func TestPoissonNonNegative(t *testing.T) {
	r := NewRNG(31)
	for i := 0; i < 10000; i++ {
		if r.Poisson(100) < 0 {
			t.Fatal("Poisson returned negative count")
		}
	}
	if r.Poisson(0) != 0 || r.Poisson(-1) != 0 {
		t.Fatal("Poisson of non-positive mean should be 0")
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := NewRNG(37)
	p := r.Perm(100)
	seen := make([]bool, 100)
	for _, v := range p {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatalf("Perm produced invalid/duplicate element %d", v)
		}
		seen[v] = true
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := NewRNG(41)
	child := parent.Split()
	same := 0
	for i := 0; i < 100; i++ {
		if parent.Uint64() == child.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("split streams overlap: %d/100 identical", same)
	}
}

func TestZipfSkew(t *testing.T) {
	r := NewRNG(43)
	z := NewZipf(r, 1.0, 1000)
	counts := make([]int, 1000)
	for i := 0; i < 100000; i++ {
		counts[z.Draw()]++
	}
	if counts[0] <= counts[10] || counts[10] <= counts[100] {
		t.Fatalf("Zipf counts not monotone: c0=%d c10=%d c100=%d",
			counts[0], counts[10], counts[100])
	}
}

func TestZipfRangeProperty(t *testing.T) {
	r := NewRNG(47)
	z := NewZipf(r, 0.8, 64)
	f := func(_ uint32) bool {
		v := z.Draw()
		return v >= 0 && v < 64
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestBoolEdges(t *testing.T) {
	r := NewRNG(53)
	for i := 0; i < 100; i++ {
		if r.Bool(0) {
			t.Fatal("Bool(0) returned true")
		}
		if !r.Bool(1) {
			t.Fatal("Bool(1) returned false")
		}
	}
}
