package ml

import (
	"fmt"
	"sort"

	"repro/internal/engine"
)

// LeaveOneGroupOut runs the paper's cross-validation protocol (Fig. 3):
// for each distinct group (benchmark), the group's samples form the test
// set and everything else the training set. It returns the out-of-group
// prediction for every sample, aligned with the input order.
//
// Folds are independent of one another, so they execute concurrently on
// the campaign engine with up to workers folds in flight (0 = GOMAXPROCS).
// Each fold writes predictions only at its own test indices, and fold
// training is deterministic, so the output is identical for every worker
// count.
//
// Scaling is fit on each training fold only — no leakage from the held-out
// workload.
func LeaveOneGroupOut(trainer Trainer, X [][]float64, y []float64, groups []string, workers int) ([]float64, error) {
	if len(X) != len(y) || len(X) != len(groups) {
		return nil, fmt.Errorf("ml: CV input lengths differ (%d/%d/%d)", len(X), len(y), len(groups))
	}
	distinct := map[string]bool{}
	for _, g := range groups {
		distinct[g] = true
	}
	if len(distinct) < 2 {
		return nil, fmt.Errorf("ml: need at least two groups, got %d", len(distinct))
	}
	folds := make([]string, 0, len(distinct))
	for g := range distinct {
		folds = append(folds, g)
	}
	sort.Strings(folds)

	preds := make([]float64, len(X))
	err := engine.ForEach(len(folds), func(f int) error {
		g := folds[f]
		var trX [][]float64
		var trY []float64
		var teIdx []int
		for i := range X {
			if groups[i] == g {
				teIdx = append(teIdx, i)
			} else {
				trX = append(trX, X[i])
				trY = append(trY, y[i])
			}
		}
		scaler, err := FitScaler(trX)
		if err != nil {
			return fmt.Errorf("ml: fold %q: %w", g, err)
		}
		model, err := trainer.Train(scaler.TransformAll(trX), trY)
		if err != nil {
			return fmt.Errorf("ml: fold %q: %w", g, err)
		}
		for _, i := range teIdx {
			preds[i] = model.Predict(scaler.Transform(X[i]))
		}
		return nil
	}, engine.Options{Workers: workers})
	if err != nil {
		return nil, err
	}
	return preds, nil
}
