package ml

import "fmt"

// LeaveOneGroupOut runs the paper's cross-validation protocol (Fig. 3):
// for each distinct group (benchmark), the group's samples form the test
// set and everything else the training set. It returns the out-of-group
// prediction for every sample, aligned with the input order.
//
// Scaling is fit on each training fold only — no leakage from the held-out
// workload.
func LeaveOneGroupOut(trainer Trainer, X [][]float64, y []float64, groups []string) ([]float64, error) {
	if len(X) != len(y) || len(X) != len(groups) {
		return nil, fmt.Errorf("ml: CV input lengths differ (%d/%d/%d)", len(X), len(y), len(groups))
	}
	distinct := map[string]bool{}
	for _, g := range groups {
		distinct[g] = true
	}
	if len(distinct) < 2 {
		return nil, fmt.Errorf("ml: need at least two groups, got %d", len(distinct))
	}
	preds := make([]float64, len(X))
	for g := range distinct {
		var trX [][]float64
		var trY []float64
		var teIdx []int
		for i := range X {
			if groups[i] == g {
				teIdx = append(teIdx, i)
			} else {
				trX = append(trX, X[i])
				trY = append(trY, y[i])
			}
		}
		scaler, err := FitScaler(trX)
		if err != nil {
			return nil, fmt.Errorf("ml: fold %q: %w", g, err)
		}
		model, err := trainer.Train(scaler.TransformAll(trX), trY)
		if err != nil {
			return nil, fmt.Errorf("ml: fold %q: %w", g, err)
		}
		for _, i := range teIdx {
			preds[i] = model.Predict(scaler.Transform(X[i]))
		}
	}
	return preds, nil
}
