package ml

import (
	"math"
	"sort"

	"repro/internal/engine"
	"repro/internal/stats"
)

// Forest is a random-decision-forest regressor: bootstrap-aggregated
// variance-reduction regression trees with random feature subsets at every
// split — the "RDF" of the paper's comparison. Its per-split feature
// selection is what makes it the most robust of the three models when fed
// all 249 features (Fig. 11c), while its axis-aligned rectangles make it
// the weakest on the small curated feature set (Fig. 11 a vs c).
type Forest struct {
	// Trees is the ensemble size; 0 means 60.
	Trees int
	// MaxDepth bounds tree depth; 0 means 12.
	MaxDepth int
	// MinLeaf is the smallest splittable node; 0 means 3.
	MinLeaf int
	// Seed drives bootstrap and feature sampling.
	Seed uint64
	// Workers bounds concurrent tree fits; 0 means GOMAXPROCS. The
	// trained model is identical for every worker count: bootstrap
	// samples and per-tree RNG streams are drawn sequentially from the
	// seed before the fits are dispatched.
	Workers int
}

// Name implements Trainer.
func (f Forest) Name() string { return "RDF" }

// treeNode is one node of a regression tree, stored in a flat arena.
type treeNode struct {
	feature int     // split feature, -1 for leaves
	thresh  float64 // split threshold
	left    int32   // arena index
	right   int32
	value   float64 // leaf prediction
}

type tree struct{ nodes []treeNode }

type forestModel struct{ trees []tree }

// Train implements Trainer.
func (f Forest) Train(X [][]float64, y []float64) (Regressor, error) {
	if err := validate(X, y); err != nil {
		return nil, err
	}
	nTrees := f.Trees
	if nTrees == 0 {
		nTrees = 60
	}
	maxDepth := f.MaxDepth
	if maxDepth == 0 {
		maxDepth = 12
	}
	minLeaf := f.MinLeaf
	if minLeaf == 0 {
		minLeaf = 3
	}
	n := len(X)
	d := len(X[0])
	mtry := int(math.Ceil(math.Sqrt(float64(d))))
	rng := stats.NewRNG(f.Seed ^ 0xF0E1D2C3B4A59687)

	// Draw every tree's bootstrap sample and RNG stream sequentially from
	// the shared generator, then fit the trees concurrently: the ensemble
	// is bit-identical to a sequential fit at any worker count.
	builders := make([]*treeBuilder, nTrees)
	bootstraps := make([][]int, nTrees)
	for t := 0; t < nTrees; t++ {
		idx := make([]int, n)
		for i := range idx {
			idx[i] = rng.Intn(n)
		}
		bootstraps[t] = idx
		builders[t] = &treeBuilder{
			X: X, y: y,
			maxDepth: maxDepth, minLeaf: minLeaf, mtry: mtry,
			rng: rng.Split(),
		}
	}
	trees, err := engine.Map(nTrees, func(t int) (tree, error) {
		builders[t].build(bootstraps[t], 0)
		return tree{nodes: builders[t].nodes}, nil
	}, engine.Options{Workers: f.Workers})
	if err != nil {
		return nil, err
	}
	return &forestModel{trees: trees}, nil
}

// treeBuilder grows one tree over index sets.
type treeBuilder struct {
	X        [][]float64
	y        []float64
	maxDepth int
	minLeaf  int
	mtry     int
	rng      *stats.RNG
	nodes    []treeNode
}

// build grows the subtree over idx and returns its arena index.
func (b *treeBuilder) build(idx []int, depth int) int32 {
	me := int32(len(b.nodes))
	b.nodes = append(b.nodes, treeNode{feature: -1})

	// Leaf value: mean target of the node.
	sum := 0.0
	for _, i := range idx {
		sum += b.y[i]
	}
	meanY := sum / float64(len(idx))
	b.nodes[me].value = meanY

	if depth >= b.maxDepth || len(idx) < 2*b.minLeaf {
		return me
	}
	// Node variance; pure nodes stop.
	varSum := 0.0
	for _, i := range idx {
		dv := b.y[i] - meanY
		varSum += dv * dv
	}
	if varSum < 1e-18 {
		return me
	}

	bestFeat, bestThresh, bestScore := -1, 0.0, varSum
	d := len(b.X[0])
	// Random feature subset (sample without replacement).
	feats := b.rng.Perm(d)[:b.mtry]
	vals := make([]float64, len(idx))
	order := make([]int, len(idx))
	for _, feat := range feats {
		for k, i := range idx {
			vals[k] = b.X[i][feat]
			order[k] = k
		}
		sort.Slice(order, func(a, c int) bool { return vals[order[a]] < vals[order[c]] })
		// Incremental split scan: left/right sums of y.
		var lSum, lSq float64
		rSum, rSq := 0.0, 0.0
		for _, i := range idx {
			rSum += b.y[i]
			rSq += b.y[i] * b.y[i]
		}
		nL, nR := 0, len(idx)
		for pos := 0; pos < len(idx)-1; pos++ {
			i := idx[order[pos]]
			yv := b.y[i]
			lSum += yv
			lSq += yv * yv
			rSum -= yv
			rSq -= yv * yv
			nL++
			nR--
			if nL < b.minLeaf || nR < b.minLeaf {
				continue
			}
			// Skip ties: can't split between equal values.
			if vals[order[pos]] == vals[order[pos+1]] {
				continue
			}
			score := (lSq - lSum*lSum/float64(nL)) + (rSq - rSum*rSum/float64(nR))
			if score < bestScore {
				bestScore = score
				bestFeat = feat
				bestThresh = (vals[order[pos]] + vals[order[pos+1]]) / 2
			}
		}
	}
	if bestFeat < 0 {
		return me
	}
	var left, right []int
	for _, i := range idx {
		if b.X[i][bestFeat] <= bestThresh {
			left = append(left, i)
		} else {
			right = append(right, i)
		}
	}
	if len(left) == 0 || len(right) == 0 {
		return me
	}
	b.nodes[me].feature = bestFeat
	b.nodes[me].thresh = bestThresh
	b.nodes[me].left = b.build(left, depth+1)
	b.nodes[me].right = b.build(right, depth+1)
	return me
}

// Predict implements Regressor: the ensemble mean.
func (m *forestModel) Predict(x []float64) float64 {
	sum := 0.0
	for _, t := range m.trees {
		sum += t.predict(x)
	}
	return sum / float64(len(m.trees))
}

func (t *tree) predict(x []float64) float64 {
	i := int32(0)
	for {
		n := &t.nodes[i]
		if n.feature < 0 {
			return n.value
		}
		if x[n.feature] <= n.thresh {
			i = n.left
		} else {
			i = n.right
		}
	}
}
