package ml

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/engine"
	"repro/internal/stats"
)

// Forest is a random-decision-forest regressor: bootstrap-aggregated
// variance-reduction regression trees with random feature subsets at every
// split — the "RDF" of the paper's comparison. Its per-split feature
// selection is what makes it the most robust of the three models when fed
// all 249 features (Fig. 11c), while its axis-aligned rectangles make it
// the weakest on the small curated feature set (Fig. 11 a vs c).
type Forest struct {
	// Trees is the ensemble size; 0 means 60.
	Trees int
	// MaxDepth bounds tree depth; 0 means 12.
	MaxDepth int
	// MinLeaf is the smallest splittable node; 0 means 3.
	MinLeaf int
	// Seed drives bootstrap and feature sampling.
	Seed uint64
	// Workers bounds concurrent tree fits; 0 means GOMAXPROCS. The
	// trained model is identical for every worker count: bootstrap
	// samples and per-tree RNG streams are drawn sequentially from the
	// seed before the fits are dispatched.
	Workers int
}

// Name implements Trainer.
func (f Forest) Name() string { return "RDF" }

// treeNode is one node of a regression tree during growth. Fitted trees do
// not keep this layout: fuseForest rewrites the per-tree arenas into the
// forestModel struct-of-arrays form the serving hot path traverses.
type treeNode struct {
	feature int     // split feature, -1 for leaves
	thresh  float64 // split threshold
	left    int32   // arena index
	right   int32
	value   float64 // leaf prediction
}

// forestModel is the fitted ensemble in fused struct-of-arrays form: every
// tree's nodes live in four shared parallel arrays, and roots holds each
// tree's offset into them. Traversal is pure index chasing over contiguous
// memory — no per-tree slice headers, no per-node structs:
//
//	feature[i] — split feature of node i, or -1 for a leaf
//	cut[i]     — split threshold for internal nodes, prediction for leaves
//	             (a node never needs both, so one array carries either)
//	left[i], right[i] — absolute child indices into the same arrays
//
// The layout is write-once at fuse time and immutable afterwards, so
// Predict is allocation-free and safe for unbounded concurrency.
type forestModel struct {
	feature []int32
	cut     []float64
	left    []int32
	right   []int32
	roots   []int32
	// nTrees is float64(len(roots)), hoisted at fuse time so Predict does
	// not convert on every call.
	nTrees float64
}

// Train implements Trainer.
func (f Forest) Train(X [][]float64, y []float64) (Regressor, error) {
	if err := validate(X, y); err != nil {
		return nil, err
	}
	arenas, err := f.fitTrees(X, y)
	if err != nil {
		return nil, err
	}
	return fuseForest(arenas)
}

// fitTrees grows the ensemble and returns one node arena per tree — the
// growth-time representation, kept separate from fusing so the equivalence
// tests can traverse the unfused arenas directly.
func (f Forest) fitTrees(X [][]float64, y []float64) ([][]treeNode, error) {
	nTrees := f.Trees
	if nTrees == 0 {
		nTrees = 60
	}
	maxDepth := f.MaxDepth
	if maxDepth == 0 {
		maxDepth = 12
	}
	minLeaf := f.MinLeaf
	if minLeaf == 0 {
		minLeaf = 3
	}
	n := len(X)
	d := len(X[0])
	mtry := int(math.Ceil(math.Sqrt(float64(d))))
	rng := stats.NewRNG(f.Seed ^ 0xF0E1D2C3B4A59687)

	// Draw every tree's bootstrap sample and RNG stream sequentially from
	// the shared generator, then fit the trees concurrently: the ensemble
	// is bit-identical to a sequential fit at any worker count.
	builders := make([]*treeBuilder, nTrees)
	bootstraps := make([][]int, nTrees)
	for t := 0; t < nTrees; t++ {
		idx := make([]int, n)
		for i := range idx {
			idx[i] = rng.Intn(n)
		}
		bootstraps[t] = idx
		builders[t] = &treeBuilder{
			X: X, y: y,
			maxDepth: maxDepth, minLeaf: minLeaf, mtry: mtry,
			rng: rng.Split(),
		}
	}
	return engine.Map(nTrees, func(t int) ([]treeNode, error) {
		builders[t].build(bootstraps[t], 0)
		return builders[t].nodes, nil
	}, engine.Options{Workers: f.Workers})
}

// fuseForest rewrites per-tree node arenas into one contiguous
// struct-of-arrays ensemble: child indices are rebased from tree-local to
// absolute offsets, internal nodes store their threshold in cut and leaves
// their prediction.
func fuseForest(arenas [][]treeNode) (*forestModel, error) {
	total := 0
	for _, nodes := range arenas {
		total += len(nodes)
	}
	m := &forestModel{
		feature: make([]int32, 0, total),
		cut:     make([]float64, 0, total),
		left:    make([]int32, 0, total),
		right:   make([]int32, 0, total),
		roots:   make([]int32, 0, len(arenas)),
		nTrees:  float64(len(arenas)),
	}
	for _, nodes := range arenas {
		base := int32(len(m.feature))
		m.roots = append(m.roots, base)
		for i, n := range nodes {
			if n.feature < 0 {
				m.feature = append(m.feature, -1)
				m.cut = append(m.cut, n.value)
				m.left = append(m.left, -1)
				m.right = append(m.right, -1)
				continue
			}
			if n.left <= int32(i) || n.right <= int32(i) ||
				int(n.left) >= len(nodes) || int(n.right) >= len(nodes) {
				return nil, fmt.Errorf("ml: tree arena node %d has out-of-arena children (%d, %d)", i, n.left, n.right)
			}
			m.feature = append(m.feature, int32(n.feature))
			m.cut = append(m.cut, n.thresh)
			m.left = append(m.left, base+n.left)
			m.right = append(m.right, base+n.right)
		}
	}
	return m, nil
}

// treeBuilder grows one tree over index sets.
type treeBuilder struct {
	X        [][]float64
	y        []float64
	maxDepth int
	minLeaf  int
	mtry     int
	rng      *stats.RNG
	nodes    []treeNode
}

// build grows the subtree over idx and returns its arena index.
func (b *treeBuilder) build(idx []int, depth int) int32 {
	me := int32(len(b.nodes))
	b.nodes = append(b.nodes, treeNode{feature: -1})

	// Leaf value: mean target of the node.
	sum := 0.0
	for _, i := range idx {
		sum += b.y[i]
	}
	meanY := sum / float64(len(idx))
	b.nodes[me].value = meanY

	if depth >= b.maxDepth || len(idx) < 2*b.minLeaf {
		return me
	}
	// Node variance; pure nodes stop.
	varSum := 0.0
	for _, i := range idx {
		dv := b.y[i] - meanY
		varSum += dv * dv
	}
	if varSum < 1e-18 {
		return me
	}

	bestFeat, bestThresh, bestScore := -1, 0.0, varSum
	d := len(b.X[0])
	// Random feature subset (sample without replacement).
	feats := b.rng.Perm(d)[:b.mtry]
	vals := make([]float64, len(idx))
	order := make([]int, len(idx))
	for _, feat := range feats {
		for k, i := range idx {
			vals[k] = b.X[i][feat]
			order[k] = k
		}
		sort.Slice(order, func(a, c int) bool { return vals[order[a]] < vals[order[c]] })
		// Incremental split scan: left/right sums of y.
		var lSum, lSq float64
		rSum, rSq := 0.0, 0.0
		for _, i := range idx {
			rSum += b.y[i]
			rSq += b.y[i] * b.y[i]
		}
		nL, nR := 0, len(idx)
		for pos := 0; pos < len(idx)-1; pos++ {
			i := idx[order[pos]]
			yv := b.y[i]
			lSum += yv
			lSq += yv * yv
			rSum -= yv
			rSq -= yv * yv
			nL++
			nR--
			if nL < b.minLeaf || nR < b.minLeaf {
				continue
			}
			// Skip ties: can't split between equal values.
			if vals[order[pos]] == vals[order[pos+1]] {
				continue
			}
			score := (lSq - lSum*lSum/float64(nL)) + (rSq - rSum*rSum/float64(nR))
			if score < bestScore {
				bestScore = score
				bestFeat = feat
				bestThresh = (vals[order[pos]] + vals[order[pos+1]]) / 2
			}
		}
	}
	if bestFeat < 0 {
		return me
	}
	var left, right []int
	for _, i := range idx {
		if b.X[i][bestFeat] <= bestThresh {
			left = append(left, i)
		} else {
			right = append(right, i)
		}
	}
	if len(left) == 0 || len(right) == 0 {
		return me
	}
	b.nodes[me].feature = bestFeat
	b.nodes[me].thresh = bestThresh
	b.nodes[me].left = b.build(left, depth+1)
	b.nodes[me].right = b.build(right, depth+1)
	return me
}

// Predict implements Regressor: the ensemble mean. The loop walks the
// fused arrays by index; the slice headers are hoisted into locals and
// resliced to a common length so the compiler drops the redundant bounds
// checks after the feature load (verified with -gcflags=-d=ssa/check_bce).
// The result stays sum/nTrees — a reciprocal multiply would be cheaper
// still but rounds differently, and predictions are pinned bit-identical
// across layout changes.
func (m *forestModel) Predict(x []float64) float64 {
	n := len(m.feature)
	feature := m.feature
	cut := m.cut[:n]
	left := m.left[:n]
	right := m.right[:n]
	sum := 0.0
	for _, root := range m.roots {
		i := int(root)
		for {
			f := feature[i]
			if f < 0 {
				sum += cut[i]
				break
			}
			if x[f] <= cut[i] {
				i = int(left[i])
			} else {
				i = int(right[i])
			}
		}
	}
	return sum / m.nTrees
}
