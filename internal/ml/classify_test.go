package ml

import (
	"math"
	"testing"
)

// classifyCorpus is a noiseless two-feature corpus: class 1 iff the first
// feature exceeds 0.5. Grid spacing keeps a margin around the boundary so
// a small forest separates it perfectly.
func classifyCorpus() (X [][]float64, y []float64) {
	for i := 0; i < 10; i++ {
		for j := 0; j < 10; j++ {
			a, b := float64(i)/10+0.05, float64(j)/10
			X = append(X, []float64{a, b})
			label := 0.0
			if a > 0.5 {
				label = 1
			}
			y = append(y, label)
		}
	}
	return X, y
}

func TestForestClassifierSeparable(t *testing.T) {
	X, y := classifyCorpus()
	model, err := ForestClassifier{Forest{Trees: 20, Seed: 7}}.Train(X, y)
	if err != nil {
		t.Fatal(err)
	}
	for i, x := range X {
		p := model.Predict(x)
		if p < 0 || p > 1 {
			t.Fatalf("probability %g outside [0,1]", p)
		}
		if (p > 0.5) != (y[i] > 0.5) {
			t.Fatalf("x=%v: probability %g misclassifies label %g", x, p, y[i])
		}
	}
}

func TestForestClassifierDeterministic(t *testing.T) {
	X, y := classifyCorpus()
	a, err := ForestClassifier{Forest{Trees: 15, Seed: 3, Workers: 1}}.Train(X, y)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ForestClassifier{Forest{Trees: 15, Seed: 3, Workers: 4}}.Train(X, y)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range X {
		pa, pb := a.Predict(x), b.Predict(x)
		if pa != pb {
			t.Fatalf("x=%v: workers=1 predicts %g, workers=4 predicts %g", x, pa, pb)
		}
	}
}

func TestForestClassifierName(t *testing.T) {
	// The classifier reports the same kind name as the regression forest:
	// it is the same model family, selected by target semantics.
	if got := (ForestClassifier{}).Name(); got != "RDF" {
		t.Fatalf("Name() = %q, want RDF", got)
	}
}

func TestPrecisionRecall(t *testing.T) {
	pred := []float64{0.9, 0.8, 0.6, 0.4, 0.2}
	actual := []float64{1, 0, 1, 1, 0}
	// Calls at 0.5: {1, 1, 1, 0, 0} → tp=2 fp=1 fn=1.
	p, r := PrecisionRecall(pred, actual, 0.5)
	if math.Abs(p-2.0/3) > 1e-12 || math.Abs(r-2.0/3) > 1e-12 {
		t.Fatalf("precision, recall = %g, %g, want 2/3, 2/3", p, r)
	}
	// No positive calls: precision 0 (no evidence), recall 0.
	p, r = PrecisionRecall([]float64{0.1, 0.2}, []float64{1, 1}, 0.5)
	if p != 0 || r != 0 {
		t.Fatalf("no-calls precision, recall = %g, %g, want 0, 0", p, r)
	}
	// No positive labels: recall 0, precision counts the false alarms.
	p, r = PrecisionRecall([]float64{0.9, 0.1}, []float64{0, 0}, 0.5)
	if p != 0 || r != 0 {
		t.Fatalf("no-positives precision, recall = %g, %g, want 0, 0", p, r)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch not rejected")
		}
	}()
	PrecisionRecall([]float64{1}, nil, 0.5)
}

func TestAUC(t *testing.T) {
	cases := []struct {
		name   string
		pred   []float64
		actual []float64
		want   float64
	}{
		{"perfect", []float64{0.1, 0.2, 0.8, 0.9}, []float64{0, 0, 1, 1}, 1},
		{"reversed", []float64{0.9, 0.8, 0.2, 0.1}, []float64{0, 0, 1, 1}, 0},
		{"all tied", []float64{0.5, 0.5, 0.5, 0.5}, []float64{0, 1, 0, 1}, 0.5},
		{"all positive", []float64{0.1, 0.9}, []float64{1, 1}, 0.5},
		{"all negative", []float64{0.1, 0.9}, []float64{0, 0}, 0.5},
		// One positive tied with one negative at 0.5: the tie contributes
		// half, the clean win contributes one → (1 + 0.5) / 2.
		{"midrank tie", []float64{0.2, 0.5, 0.5}, []float64{0, 0, 1}, 0.75},
	}
	for _, tc := range cases {
		if got := AUC(tc.pred, tc.actual); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("%s: AUC = %g, want %g", tc.name, got, tc.want)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch not rejected")
		}
	}()
	AUC([]float64{1}, nil)
}
