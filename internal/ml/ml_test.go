package ml

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/stats"
)

// synthRegression builds a noisy non-linear dataset y = f(x) + noise.
func synthRegression(n, d int, seed uint64, f func([]float64) float64, noise float64) ([][]float64, []float64) {
	rng := stats.NewRNG(seed)
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		row := make([]float64, d)
		for j := range row {
			row[j] = rng.Float64()*4 - 2
		}
		X[i] = row
		y[i] = f(row) + noise*rng.NormFloat64()
	}
	return X, y
}

func targetFn(x []float64) float64 {
	return 3*x[0] + math.Sin(2*x[1]) + 0.5*x[0]*x[1]
}

func trainEval(t *testing.T, tr Trainer, seed uint64) float64 {
	t.Helper()
	X, y := synthRegression(300, 4, seed, targetFn, 0.05)
	Xte, yte := synthRegression(100, 4, seed+1, targetFn, 0)
	sc, err := FitScaler(X)
	if err != nil {
		t.Fatal(err)
	}
	model, err := tr.Train(sc.TransformAll(X), y)
	if err != nil {
		t.Fatal(err)
	}
	preds := make([]float64, len(Xte))
	for i := range Xte {
		preds[i] = model.Predict(sc.Transform(Xte[i]))
	}
	return MeanAbsoluteError(preds, yte)
}

func TestKNNFitsNonLinearTarget(t *testing.T) {
	mae := trainEval(t, KNN{K: 5}, 1)
	if mae > 0.8 {
		t.Fatalf("KNN MAE = %v, too high", mae)
	}
}

func TestSVRFitsNonLinearTarget(t *testing.T) {
	mae := trainEval(t, SVR{}, 2)
	if mae > 0.7 {
		t.Fatalf("SVR MAE = %v, too high", mae)
	}
}

func TestForestFitsNonLinearTarget(t *testing.T) {
	mae := trainEval(t, Forest{Trees: 40, Seed: 3}, 3)
	if mae > 0.7 {
		t.Fatalf("Forest MAE = %v, too high", mae)
	}
}

func TestModelsBeatMeanBaseline(t *testing.T) {
	X, y := synthRegression(300, 4, 9, targetFn, 0.05)
	baseline := MeanAbsoluteError(constPreds(mean(y), len(y)), y)
	for _, tr := range []Trainer{KNN{}, SVR{}, Forest{Seed: 1}} {
		sc, _ := FitScaler(X)
		model, err := tr.Train(sc.TransformAll(X), y)
		if err != nil {
			t.Fatal(err)
		}
		preds := make([]float64, len(X))
		for i := range X {
			preds[i] = model.Predict(sc.Transform(X[i]))
		}
		mae := MeanAbsoluteError(preds, y)
		if mae > baseline*0.5 {
			t.Fatalf("%s in-sample MAE %v not well below baseline %v", tr.Name(), mae, baseline)
		}
	}
}

func TestKNNExactOnTrainingPoint(t *testing.T) {
	X := [][]float64{{0, 0}, {1, 1}, {2, 2}, {5, 5}}
	y := []float64{1, 2, 3, 10}
	m, err := KNN{K: 1}.Train(X, y)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Predict([]float64{5, 5}); math.Abs(got-10) > 1e-6 {
		t.Fatalf("1-NN on training point = %v, want 10", got)
	}
}

func TestKNNKLargerThanN(t *testing.T) {
	X := [][]float64{{0}, {1}}
	y := []float64{0, 1}
	m, err := KNN{K: 10}.Train(X, y)
	if err != nil {
		t.Fatal(err)
	}
	got := m.Predict([]float64{0.5})
	if got < 0 || got > 1 {
		t.Fatalf("prediction %v outside target hull", got)
	}
}

func TestTrainersRejectBadInput(t *testing.T) {
	for _, tr := range []Trainer{KNN{}, SVR{}, Forest{}} {
		if _, err := tr.Train(nil, nil); err == nil {
			t.Fatalf("%s accepted empty set", tr.Name())
		}
		if _, err := tr.Train([][]float64{{1}}, []float64{1, 2}); err == nil {
			t.Fatalf("%s accepted length mismatch", tr.Name())
		}
		if _, err := tr.Train([][]float64{{1}, {1, 2}}, []float64{1, 2}); err == nil {
			t.Fatalf("%s accepted ragged matrix", tr.Name())
		}
		if _, err := tr.Train([][]float64{{math.NaN()}}, []float64{1}); err == nil {
			t.Fatalf("%s accepted NaN feature", tr.Name())
		}
	}
}

func TestScalerStandardizes(t *testing.T) {
	X := [][]float64{{1, 100}, {2, 200}, {3, 300}}
	sc, err := FitScaler(X)
	if err != nil {
		t.Fatal(err)
	}
	Z := sc.TransformAll(X)
	for j := 0; j < 2; j++ {
		var m, v float64
		for i := range Z {
			m += Z[i][j]
		}
		m /= float64(len(Z))
		for i := range Z {
			v += (Z[i][j] - m) * (Z[i][j] - m)
		}
		v /= float64(len(Z))
		if math.Abs(m) > 1e-9 || math.Abs(v-1) > 1e-9 {
			t.Fatalf("feature %d: mean=%v var=%v", j, m, v)
		}
	}
}

func TestScalerConstantFeature(t *testing.T) {
	X := [][]float64{{7, 1}, {7, 2}, {7, 3}}
	sc, err := FitScaler(X)
	if err != nil {
		t.Fatal(err)
	}
	z := sc.Transform([]float64{7, 2})
	if z[0] != 0 {
		t.Fatalf("constant feature transformed to %v, want 0", z[0])
	}
}

func TestForestDeterministicWithSeed(t *testing.T) {
	X, y := synthRegression(100, 3, 5, targetFn, 0.1)
	m1, _ := Forest{Trees: 10, Seed: 7}.Train(X, y)
	m2, _ := Forest{Trees: 10, Seed: 7}.Train(X, y)
	probe := []float64{0.3, -0.2, 0.9}
	if m1.Predict(probe) != m2.Predict(probe) {
		t.Fatal("same-seed forests disagree")
	}
}

func TestForestPredictionWithinTargetHull(t *testing.T) {
	X, y := synthRegression(200, 3, 11, targetFn, 0)
	m, _ := Forest{Trees: 20, Seed: 2}.Train(X, y)
	lo, hi := stats.Min(y), stats.Max(y)
	f := func(a, b, c float64) bool {
		p := m.Predict([]float64{clip(a), clip(b), clip(c)})
		return p >= lo-1e-9 && p <= hi+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func clip(x float64) float64 {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return 0
	}
	return math.Mod(x, 2)
}

func TestLeaveOneGroupOut(t *testing.T) {
	// Three groups drawn from the same function: LOGO predictions should
	// generalize across groups.
	X, y := synthRegression(150, 3, 13, targetFn, 0.05)
	groups := make([]string, len(X))
	for i := range groups {
		groups[i] = []string{"a", "b", "c"}[i%3]
	}
	preds, err := LeaveOneGroupOut(KNN{K: 5}, X, y, groups, 4)
	if err != nil {
		t.Fatal(err)
	}
	if mae := MeanAbsoluteError(preds, y); mae > 0.8 {
		t.Fatalf("LOGO MAE = %v", mae)
	}
}

func TestLeaveOneGroupOutSingleGroupFails(t *testing.T) {
	X := [][]float64{{1}, {2}}
	y := []float64{1, 2}
	if _, err := LeaveOneGroupOut(KNN{}, X, y, []string{"g", "g"}, 1); err == nil {
		t.Fatal("single group accepted")
	}
}

func TestMeanPercentageError(t *testing.T) {
	got := MeanPercentageError([]float64{110, 90}, []float64{100, 100})
	if math.Abs(got-0.1) > 1e-12 {
		t.Fatalf("MPE = %v, want 0.1", got)
	}
	if MeanPercentageError([]float64{1}, []float64{0}) != 0 {
		t.Fatal("zero-actual sample should be skipped")
	}
}

func TestGeometricMeanError(t *testing.T) {
	got := GeometricMeanError([]float64{290}, []float64{100})
	if math.Abs(got-2.9) > 1e-9 {
		t.Fatalf("GME = %v, want 2.9", got)
	}
	// Symmetric: under-prediction by 2.9x scores the same.
	got2 := GeometricMeanError([]float64{100}, []float64{290})
	if math.Abs(got-got2) > 1e-9 {
		t.Fatalf("GME asymmetric: %v vs %v", got, got2)
	}
}

func TestIrrelevantFeaturesHurtKNNMoreThanForest(t *testing.T) {
	// The paper's input-set-3 finding: distance-based models degrade when
	// many irrelevant features are added; forests resist via per-split
	// feature selection.
	rng := stats.NewRNG(17)
	n := 240
	build := func(d int) ([][]float64, []float64) {
		X := make([][]float64, n)
		y := make([]float64, n)
		for i := 0; i < n; i++ {
			row := make([]float64, d)
			for j := range row {
				row[j] = rng.Float64()*4 - 2
			}
			X[i] = row
			y[i] = targetFn(row[:4])
		}
		return X, y
	}
	evalCV := func(tr Trainer, d int) float64 {
		X, y := build(d)
		groups := make([]string, n)
		for i := range groups {
			groups[i] = []string{"a", "b", "c", "d"}[i%4]
		}
		preds, err := LeaveOneGroupOut(tr, X, y, groups, 2)
		if err != nil {
			t.Fatal(err)
		}
		return MeanAbsoluteError(preds, y)
	}
	knnSmall := evalCV(KNN{K: 5}, 4)
	knnBig := evalCV(KNN{K: 5}, 60)
	rdfBig := evalCV(Forest{Trees: 40, Seed: 5}, 60)
	if knnBig <= knnSmall {
		t.Fatalf("KNN not hurt by irrelevant features: %v vs %v", knnBig, knnSmall)
	}
	if rdfBig >= knnBig {
		t.Fatalf("forest (%v) should beat KNN (%v) with many irrelevant features", rdfBig, knnBig)
	}
}

func constPreds(v float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = v
	}
	return out
}
