package ml

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"testing"
)

// lcg is a tiny deterministic generator for test fixtures (no global rand).
type lcg uint64

func (r *lcg) next() float64 {
	*r = *r*6364136223846793005 + 1442695040888963407
	return float64(*r>>11) / float64(1<<53)
}

func knnFixture(n, d int, seed uint64) ([][]float64, []float64) {
	r := lcg(seed)
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := range X {
		row := make([]float64, d)
		for j := range row {
			row[j] = r.next()*4 - 2
		}
		X[i] = row
		y[i] = math.Sin(row[0]) + 0.5*row[1%d] + r.next()*0.01
	}
	return X, y
}

func TestKNNPredictDimensionMismatchPanics(t *testing.T) {
	X, y := knnFixture(20, 8, 1)
	m, err := KNN{K: 3}.Train(X, y)
	if err != nil {
		t.Fatal(err)
	}
	for _, bad := range [][]float64{nil, make([]float64, 7), make([]float64, 9)} {
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatalf("query of %d features accepted against 8-dim model", len(bad))
				}
				if msg := fmt.Sprint(r); !strings.Contains(msg, "features") {
					t.Fatalf("panic message not diagnosable: %v", msg)
				}
			}()
			m.Predict(bad)
		}()
	}
	// The exact training dimensionality still works.
	if got := m.Predict(X[0]); math.IsNaN(got) {
		t.Fatalf("valid query returned %v", got)
	}
}

// TestSelectNearestMatchesSort proves the quickselect path picks exactly
// the same neighbourhood as a full sort, across sizes, k values and
// adversarial tie patterns.
func TestSelectNearestMatchesSort(t *testing.T) {
	for _, n := range []int{1, 2, 5, 12, 13, 64, 257} {
		for _, k := range []int{1, 2, 5, 12, 13} {
			if k > n {
				continue
			}
			for _, ties := range []bool{false, true} {
				r := lcg(uint64(n*1000 + k))
				cands := make([]neighbor, n)
				for i := range cands {
					d2 := r.next()
					if ties {
						// Quantize so many candidates collide exactly.
						d2 = math.Floor(d2*4) / 4
					}
					cands[i] = neighbor{d2: d2, y: float64(i)}
				}
				ref := append([]neighbor(nil), cands...)
				sort.Slice(ref, func(a, b int) bool { return ref[a].d2 < ref[b].d2 })

				got := append([]neighbor(nil), cands...)
				selectNearest(got, k)
				// The selected prefix must hold the same multiset of
				// distances as the sorted prefix (ties make the specific
				// members ambiguous, but the distances are pinned).
				gd := make([]float64, k)
				wd := make([]float64, k)
				for i := 0; i < k; i++ {
					gd[i], wd[i] = got[i].d2, ref[i].d2
				}
				sort.Float64s(gd)
				for i := range gd {
					if gd[i] != wd[i] {
						t.Fatalf("n=%d k=%d ties=%v: selected distances %v, want %v", n, k, ties, gd, wd)
					}
				}
				// And nothing outside the prefix may be strictly nearer
				// than the worst selected distance.
				worst := gd[k-1]
				for i := k; i < n; i++ {
					if got[i].d2 < worst {
						t.Fatalf("n=%d k=%d ties=%v: candidate %v outside prefix beats worst selected %v",
							n, k, ties, got[i].d2, worst)
					}
				}
			}
		}
	}
}

// TestKNNPredictDeterministic pins that repeated predictions are
// bit-identical (quickselect has no randomized pivoting).
func TestKNNPredictDeterministic(t *testing.T) {
	X, y := knnFixture(512, 16, 7)
	m, err := KNN{K: 5}.Train(X, y)
	if err != nil {
		t.Fatal(err)
	}
	q := make([]float64, 16)
	for j := range q {
		q[j] = 0.1 * float64(j)
	}
	first := m.Predict(q)
	for i := 0; i < 10; i++ {
		if got := m.Predict(q); got != first {
			t.Fatalf("prediction drifted: %v vs %v", got, first)
		}
	}
}

// knnPredictBySort is the pre-optimization reference: per-query candidate
// allocation and a full sort instead of the pooled arena and k-selection.
// The distance loop reads the same rows in the same element order as the
// original [][]float64 layout, so it still stands in for the historic
// implementation bit-for-bit. Kept for the benchmark comparison and the
// equivalence test below.
func knnPredictBySort(m *knnModel, x []float64) float64 {
	cands := make([]neighbor, len(m.y))
	for i := range cands {
		row := m.flat[i*m.dim : i*m.dim+m.dim]
		d2 := 0.0
		for j := range row {
			dv := row[j] - x[j]
			d2 += dv * dv
		}
		cands[i] = neighbor{d2: d2, y: m.y[i]}
	}
	sort.Slice(cands, func(a, b int) bool { return cands[a].d2 < cands[b].d2 })
	var num, den float64
	for i := 0; i < m.k; i++ {
		w := 1 / (math.Sqrt(cands[i].d2) + 1e-9)
		num += w * cands[i].y
		den += w
	}
	return num / den
}

func TestKNNPredictMatchesSortReference(t *testing.T) {
	X, y := knnFixture(800, 12, 3)
	reg, err := KNN{K: 5}.Train(X, y)
	if err != nil {
		t.Fatal(err)
	}
	m := reg.(*knnModel)
	r := lcg(99)
	for qi := 0; qi < 50; qi++ {
		q := make([]float64, 12)
		for j := range q {
			q[j] = r.next()*4 - 2
		}
		got, want := m.Predict(q), knnPredictBySort(m, q)
		if got != want {
			t.Fatalf("query %d: selection %v != sort reference %v", qi, got, want)
		}
	}
}

// BenchmarkKNNPredict measures the hot serving path: one Predict against a
// production-sized training set. The .../sort variant is the old full-sort
// implementation; the speedup is the win of O(n) k-selection.
func BenchmarkKNNPredict(b *testing.B) {
	X, y := knnFixture(8192, 32, 11)
	reg, err := KNN{K: 5}.Train(X, y)
	if err != nil {
		b.Fatal(err)
	}
	m := reg.(*knnModel)
	q := make([]float64, 32)
	for j := range q {
		q[j] = 0.05 * float64(j)
	}
	m.Predict(q) // warm the scratch pool before counting allocs
	b.Run("select", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			m.Predict(q)
		}
	})
	b.Run("sort", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			knnPredictBySort(m, q)
		}
	})
}
