package ml

import (
	"fmt"
	"math"
	"strings"
	"testing"
)

func TestSVRPredictDimensionMismatchPanics(t *testing.T) {
	X, y := knnFixture(40, 8, 2)
	m, err := SVR{}.Train(X, y)
	if err != nil {
		t.Fatal(err)
	}
	for _, bad := range [][]float64{nil, make([]float64, 7), make([]float64, 9)} {
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatalf("query of %d features accepted against 8-dim model", len(bad))
				}
				if msg := fmt.Sprint(r); !strings.Contains(msg, "features") {
					t.Fatalf("panic message not diagnosable: %v", msg)
				}
			}()
			m.Predict(bad)
		}()
	}
	// The exact training dimensionality still works.
	if got := m.Predict(X[0]); math.IsNaN(got) {
		t.Fatalf("valid query returned %v", got)
	}
}

// TestSVRDegenerateFitStillValidates pins the degenerate path: a constant
// target keeps every residual inside the ε tube, so the fit has no support
// vectors — but the model must still know its dimensionality and reject
// mismatched queries instead of silently predicting the bias for any shape.
func TestSVRDegenerateFitStillValidates(t *testing.T) {
	X, _ := knnFixture(20, 6, 3)
	y := make([]float64, len(X))
	for i := range y {
		y[i] = 7.5
	}
	reg, err := SVR{}.Train(X, y)
	if err != nil {
		t.Fatal(err)
	}
	m := reg.(*svrModel)
	if len(m.beta) != 0 {
		t.Fatalf("constant target fitted %d support vectors, want 0", len(m.beta))
	}
	if got := m.Predict(X[0]); got != 7.5 {
		t.Fatalf("degenerate fit predicted %v, want the bias 7.5", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("degenerate model accepted a mismatched query")
		}
	}()
	m.Predict(make([]float64, 5))
}

// svrPredictNested is the pre-flattening reference implementation: the
// kernel expansion over per-row support-vector slices, reconstructed from
// the flat matrix. The flattened hot path must match it bit for bit.
func svrPredictNested(m *svrModel, x []float64) float64 {
	out := m.b
	for i := range m.beta {
		sv := m.flat[i*m.dim : (i+1)*m.dim]
		out += m.beta[i] * rbf(sv, x, m.gamma)
	}
	return out
}

// TestSVRFlatMatchesNestedReference proves the row-major fused layout is a
// pure storage change: predictions are bit-identical to walking per-row
// slices through the original rbf helper.
func TestSVRFlatMatchesNestedReference(t *testing.T) {
	X, y := knnFixture(300, 16, 5)
	reg, err := SVR{}.Train(X, y)
	if err != nil {
		t.Fatal(err)
	}
	m := reg.(*svrModel)
	if len(m.beta) == 0 {
		t.Fatal("fixture fitted no support vectors; reference check is vacuous")
	}
	r := lcg(99)
	q := make([]float64, 16)
	for qi := 0; qi < 200; qi++ {
		for j := range q {
			q[j] = r.next()*4 - 2
		}
		got, want := m.Predict(q), svrPredictNested(m, q)
		if math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("query %d: flat %v != nested reference %v", qi, got, want)
		}
	}
}

// TestSVRPredictWarmAllocs pins the flattened predict path at zero
// allocations (the bench gate tracks the same number in CI).
func TestSVRPredictWarmAllocs(t *testing.T) {
	X, y := knnFixture(300, 16, 5)
	m, err := SVR{}.Train(X, y)
	if err != nil {
		t.Fatal(err)
	}
	q := make([]float64, 16)
	for j := range q {
		q[j] = 0.1 * float64(j)
	}
	if n := testing.AllocsPerRun(100, func() { m.Predict(q) }); n != 0 {
		t.Fatalf("warm SVR predict allocates %v per op, want 0", n)
	}
}

// BenchmarkSVRPredict measures one warm kernel expansion against a
// production-sized support-vector set — the SVM half of the paper's model
// comparison, now on the same fused-layout trajectory as kNN and the
// forest (scripts/bench.sh gates it).
func BenchmarkSVRPredict(b *testing.B) {
	X, y := knnFixture(1024, 32, 11)
	reg, err := SVR{}.Train(X, y)
	if err != nil {
		b.Fatal(err)
	}
	m := reg.(*svrModel)
	if len(m.beta) == 0 {
		b.Fatal("fixture fitted no support vectors")
	}
	q := make([]float64, 32)
	for j := range q {
		q[j] = 0.05 * float64(j)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Predict(q)
	}
}
