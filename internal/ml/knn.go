package ml

import (
	"fmt"
	"math"
	"sync"
)

// KNN is a K-nearest-neighbours regressor with inverse-distance weighting —
// the method the paper finds most accurate for WER and PUE prediction
// (Section VI-B), and fast enough to predict "within 300 ms".
type KNN struct {
	// K is the neighbourhood size; 0 means the default of 5.
	K int
}

// Name implements Trainer.
func (k KNN) Name() string { return "KNN" }

// knnModel stores the training set (KNN is instance-based). The rows are
// fused into one contiguous row-major matrix at train time, so the distance
// scan streams through memory instead of chasing one slice header per row,
// and each Predict borrows its candidate arena from a pool instead of
// allocating len(X) neighbors per query.
type knnModel struct {
	k    int
	dim  int
	flat []float64 // n×dim row-major training matrix
	y    []float64
	// scratch recycles *[]neighbor candidate arenas (always length n)
	// across Predict calls; the pool keeps concurrent predictions — the
	// serving layer fans batches out — from sharing a buffer.
	scratch sync.Pool
}

// Train implements Trainer.
func (k KNN) Train(X [][]float64, y []float64) (Regressor, error) {
	if err := validate(X, y); err != nil {
		return nil, err
	}
	kk := k.K
	if kk <= 0 {
		kk = 5
	}
	if kk > len(X) {
		kk = len(X)
	}
	dim := len(X[0])
	flat := make([]float64, 0, len(X)*dim)
	for _, row := range X {
		flat = append(flat, row...)
	}
	n := len(X)
	m := &knnModel{k: kk, dim: dim, flat: flat, y: y}
	m.scratch.New = func() any {
		s := make([]neighbor, n)
		return &s
	}
	return m, nil
}

// neighbor is one training sample's squared distance to the query.
type neighbor struct {
	d2 float64
	y  float64
}

// Predict implements Regressor: the inverse-distance-weighted mean of the k
// nearest training targets. The query must have the training
// dimensionality; a mismatched vector is a caller bug and panics with a
// diagnosable message rather than an index-out-of-range deep in the
// distance loop (or, worse, a silently truncated distance when the query is
// longer).
func (m *knnModel) Predict(x []float64) float64 {
	if len(x) != m.dim {
		panic(fmt.Sprintf("ml: knn query has %d features, model trained on %d", len(x), m.dim))
	}
	sp := m.scratch.Get().(*[]neighbor)
	cands := *sp
	for i := range cands {
		row := m.flat[i*m.dim : i*m.dim+m.dim]
		d2 := 0.0
		for j := range row {
			dv := row[j] - x[j]
			d2 += dv * dv
		}
		cands[i] = neighbor{d2: d2, y: m.y[i]}
	}
	// The weighting needs the k nearest candidates, not a total order:
	// partition-select them in O(n) instead of paying O(n log n) for a full
	// sort on every query of the hot serving path. The tiny selected prefix
	// is then ordered so the float summation below accumulates in the same
	// (ascending-distance) order the full sort produced, keeping predictions
	// bit-identical to the pre-selection implementation.
	selectNearest(cands, m.k)
	for i := 1; i < m.k; i++ {
		for j := i; j > 0 && cands[j].d2 < cands[j-1].d2; j-- {
			cands[j], cands[j-1] = cands[j-1], cands[j]
		}
	}

	var num, den float64
	for i := 0; i < m.k; i++ {
		w := 1 / (math.Sqrt(cands[i].d2) + 1e-9)
		num += w * cands[i].y
		den += w
	}
	m.scratch.Put(sp)
	return num / den
}

// selectNearest partially sorts cands so that cands[:k] holds the k
// smallest squared distances (in no particular internal order). It is the
// classic quickselect with median-of-three pivoting and an insertion-sort
// base case: expected O(n), deterministic for a given input order.
func selectNearest(cands []neighbor, k int) {
	lo, hi := 0, len(cands)
	for hi-lo > 12 {
		p := partition(cands, lo, hi)
		switch {
		case p == k:
			return
		case p < k:
			lo = p + 1
		default:
			hi = p
		}
	}
	// Small range: insertion sort finishes the job (also handles the exit
	// where lo..hi straddles k).
	for i := lo + 1; i < hi; i++ {
		for j := i; j > lo && cands[j].d2 < cands[j-1].d2; j-- {
			cands[j], cands[j-1] = cands[j-1], cands[j]
		}
	}
}

// partition picks a median-of-three pivot for [lo, hi), partitions around
// it, and returns the pivot's final index.
func partition(cands []neighbor, lo, hi int) int {
	mid := lo + (hi-lo)/2
	last := hi - 1
	// Order (lo, mid, last) so cands[mid] is the median of the three, then
	// park the pivot at last-1.
	if cands[mid].d2 < cands[lo].d2 {
		cands[mid], cands[lo] = cands[lo], cands[mid]
	}
	if cands[last].d2 < cands[lo].d2 {
		cands[last], cands[lo] = cands[lo], cands[last]
	}
	if cands[last].d2 < cands[mid].d2 {
		cands[last], cands[mid] = cands[mid], cands[last]
	}
	cands[mid], cands[last-1] = cands[last-1], cands[mid]
	pivot := cands[last-1].d2
	i := lo
	for j := lo; j < last-1; j++ {
		if cands[j].d2 < pivot {
			cands[i], cands[j] = cands[j], cands[i]
			i++
		}
	}
	cands[i], cands[last-1] = cands[last-1], cands[i]
	return i
}
