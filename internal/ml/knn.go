package ml

import (
	"math"
	"sort"
)

// KNN is a K-nearest-neighbours regressor with inverse-distance weighting —
// the method the paper finds most accurate for WER and PUE prediction
// (Section VI-B), and fast enough to predict "within 300 ms".
type KNN struct {
	// K is the neighbourhood size; 0 means the default of 5.
	K int
}

// Name implements Trainer.
func (k KNN) Name() string { return "KNN" }

// knnModel stores the training set (KNN is instance-based).
type knnModel struct {
	k int
	X [][]float64
	y []float64
}

// Train implements Trainer.
func (k KNN) Train(X [][]float64, y []float64) (Regressor, error) {
	if err := validate(X, y); err != nil {
		return nil, err
	}
	kk := k.K
	if kk <= 0 {
		kk = 5
	}
	if kk > len(X) {
		kk = len(X)
	}
	return &knnModel{k: kk, X: X, y: y}, nil
}

// Predict implements Regressor: the inverse-distance-weighted mean of the k
// nearest training targets.
func (m *knnModel) Predict(x []float64) float64 {
	type cand struct {
		d2 float64
		y  float64
	}
	cands := make([]cand, len(m.X))
	for i, row := range m.X {
		d2 := 0.0
		for j := range row {
			dv := row[j] - x[j]
			d2 += dv * dv
		}
		cands[i] = cand{d2: d2, y: m.y[i]}
	}
	sort.Slice(cands, func(a, b int) bool { return cands[a].d2 < cands[b].d2 })

	var num, den float64
	for i := 0; i < m.k; i++ {
		w := 1 / (math.Sqrt(cands[i].d2) + 1e-9)
		num += w * cands[i].y
		den += w
	}
	return num / den
}
