package ml

import "sort"

// Classification mode. The failure-prediction literature the repo follows
// ("Exploring Error Bits for Memory Failure Prediction", "DRAM Failure
// Prediction in AIOps") frames UE risk as binary classification over
// telemetry features. The forest is the natural classifier here: each tree
// votes on its leaf's majority class and the ensemble outputs the vote
// fraction as a probability. The fused struct-of-arrays arena is reused
// unchanged — a classification forest *is* a regression forest over 0/1
// labels; only the aggregation differs, and counting integer votes keeps
// the probability bit-deterministic at any worker count (a vote is
// leaf-mean > 1/2, and leaf means are already bit-identical).

// ForestClassifier adapts Forest to binary classification: Train expects
// labels in {0, 1} and the fitted model predicts the fraction of trees
// voting class 1 — a probability in [0, 1] in steps of 1/Trees.
type ForestClassifier struct {
	Forest
}

// Name implements Trainer.
func (f ForestClassifier) Name() string { return "RDF" }

// Train implements Trainer.
func (f ForestClassifier) Train(X [][]float64, y []float64) (Regressor, error) {
	if err := validate(X, y); err != nil {
		return nil, err
	}
	arenas, err := f.fitTrees(X, y)
	if err != nil {
		return nil, err
	}
	m, err := fuseForest(arenas)
	if err != nil {
		return nil, err
	}
	return &forestVoteModel{forestModel: m}, nil
}

// forestVoteModel aggregates the fused ensemble by majority vote instead of
// by mean: a tree votes 1 when its leaf mean exceeds 1/2. The traversal is
// the same bounds-check-free index chase as forestModel.Predict.
type forestVoteModel struct {
	*forestModel
}

// Predict returns the fraction of trees voting class 1.
func (m *forestVoteModel) Predict(x []float64) float64 {
	n := len(m.feature)
	feature := m.feature
	cut := m.cut[:n]
	left := m.left[:n]
	right := m.right[:n]
	votes := 0
	for _, root := range m.roots {
		i := int(root)
		for {
			f := feature[i]
			if f < 0 {
				if cut[i] > 0.5 {
					votes++
				}
				break
			}
			if x[f] <= cut[i] {
				i = int(left[i])
			} else {
				i = int(right[i])
			}
		}
	}
	return float64(votes) / m.nTrees
}

// PrecisionRecall scores probabilistic predictions against 0/1 labels at
// the given decision threshold (predictions > thresh are positive calls).
// With no positive calls precision is reported as 0; with no positive
// labels recall is reported as 0 — both mean "no evidence", not success.
func PrecisionRecall(pred, actual []float64, thresh float64) (precision, recall float64) {
	if len(pred) != len(actual) {
		panic("ml: PrecisionRecall length mismatch")
	}
	tp, fp, fn := 0, 0, 0
	for i := range pred {
		call := pred[i] > thresh
		pos := actual[i] > 0.5
		switch {
		case call && pos:
			tp++
		case call && !pos:
			fp++
		case !call && pos:
			fn++
		}
	}
	if tp+fp > 0 {
		precision = float64(tp) / float64(tp+fp)
	}
	if tp+fn > 0 {
		recall = float64(tp) / float64(tp+fn)
	}
	return precision, recall
}

// AUC returns the area under the ROC curve of probabilistic predictions
// against 0/1 labels, computed as the Mann–Whitney U statistic with
// midranks (ties contribute half), so it is exact under the heavily tied
// score distributions a vote-counting forest produces. Degenerate label
// sets (all positive or all negative) score 0.5: no ranking information.
func AUC(pred, actual []float64) float64 {
	if len(pred) != len(actual) {
		panic("ml: AUC length mismatch")
	}
	n := len(pred)
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return pred[order[a]] < pred[order[b]] })

	// Midrank sum over the positive class.
	nPos, nNeg := 0, 0
	rankSum := 0.0
	for i := 0; i < n; {
		j := i
		for j < n && pred[order[j]] == pred[order[i]] {
			j++
		}
		// 1-based midrank of the tie group [i, j).
		mid := float64(i+j+1) / 2
		for k := i; k < j; k++ {
			if actual[order[k]] > 0.5 {
				rankSum += mid
			}
		}
		i = j
	}
	for i := range actual {
		if actual[i] > 0.5 {
			nPos++
		} else {
			nNeg++
		}
	}
	if nPos == 0 || nNeg == 0 {
		return 0.5
	}
	u := rankSum - float64(nPos)*float64(nPos+1)/2
	return u / (float64(nPos) * float64(nNeg))
}
