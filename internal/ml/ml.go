// Package ml implements the three supervised learning methods the paper
// evaluates for DRAM error prediction — K-nearest neighbours (KNN), support
// vector machines (ε-SVR with an RBF kernel, trained by SMO) and random
// decision forests (RDF) — together with feature standardization,
// leave-one-group-out cross validation and the error metrics of Section VI.
//
// The paper uses scikit-learn; this package is a from-scratch stdlib-only
// replacement with the same algorithm families and evaluation protocol.
//
// Inference is the serving hot path, and its memory layout is deliberate:
// the trained forest is fused into one contiguous struct-of-arrays
// ensemble (see forest.go), kNN keeps a flat row-major training matrix
// and pools its candidate scratch (see knn.go), and a warm Predict on
// either model performs zero heap allocations — pinned by
// TestPredictZeroAlloc, with golden Float64bits tests keeping predictions
// bit-identical across layout changes.
package ml

import (
	"errors"
	"fmt"
	"math"
)

// Regressor is a trained model predicting a scalar target from a feature
// vector. Implementations are immutable after Train and safe for
// concurrent Predict calls.
type Regressor interface {
	// Predict returns the model output for one standardized sample. The
	// implementation only reads x during the call and never retains it, so
	// callers may recycle the vector's storage (the serving layer feeds
	// pooled buffers through here).
	Predict(x []float64) float64
}

// Trainer fits a Regressor on a standardized training set.
type Trainer interface {
	// Name identifies the method ("KNN", "SVM", "RDF").
	Name() string
	// Train fits the model; rows of X are samples.
	Train(X [][]float64, y []float64) (Regressor, error)
}

// validate checks the common preconditions of all trainers.
func validate(X [][]float64, y []float64) error {
	if len(X) == 0 {
		return errors.New("ml: empty training set")
	}
	if len(X) != len(y) {
		return fmt.Errorf("ml: %d samples but %d targets", len(X), len(y))
	}
	d := len(X[0])
	if d == 0 {
		return errors.New("ml: zero-dimensional samples")
	}
	for i, row := range X {
		if len(row) != d {
			return fmt.Errorf("ml: sample %d has %d features, want %d", i, len(row), d)
		}
		for j, v := range row {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("ml: sample %d feature %d is %v", i, j, v)
			}
		}
	}
	return nil
}

// Scaler standardizes features to zero mean and unit variance, the
// preprocessing the paper's distance- and kernel-based models require.
type Scaler struct {
	Mean  []float64
	Scale []float64
}

// FitScaler learns the per-feature statistics of X.
func FitScaler(X [][]float64) (*Scaler, error) {
	if err := validate(X, make([]float64, len(X))); err != nil {
		return nil, err
	}
	d := len(X[0])
	s := &Scaler{Mean: make([]float64, d), Scale: make([]float64, d)}
	n := float64(len(X))
	for _, row := range X {
		for j, v := range row {
			s.Mean[j] += v
		}
	}
	for j := range s.Mean {
		s.Mean[j] /= n
	}
	for _, row := range X {
		for j, v := range row {
			dv := v - s.Mean[j]
			s.Scale[j] += dv * dv
		}
	}
	for j := range s.Scale {
		s.Scale[j] = math.Sqrt(s.Scale[j] / n)
		if s.Scale[j] < 1e-12 {
			// Constant feature: map to 0 rather than exploding.
			s.Scale[j] = 1
		}
	}
	return s, nil
}

// Transform standardizes one sample (out of place).
func (s *Scaler) Transform(x []float64) []float64 {
	out := make([]float64, len(x))
	s.TransformInto(out, x)
	return out
}

// TransformInto standardizes x into dst (len(dst) must be len(x)); dst may
// alias x for an in-place transform. The arithmetic is element-wise
// identical to Transform, so callers reusing a pooled buffer get
// bit-identical results — the serving hot path standardizes query vectors
// this way without allocating.
func (s *Scaler) TransformInto(dst, x []float64) {
	if len(dst) != len(x) {
		panic(fmt.Sprintf("ml: TransformInto dst has %d entries, sample has %d", len(dst), len(x)))
	}
	for j, v := range x {
		dst[j] = (v - s.Mean[j]) / s.Scale[j]
	}
}

// TransformAll standardizes a whole matrix.
func (s *Scaler) TransformAll(X [][]float64) [][]float64 {
	out := make([][]float64, len(X))
	for i, row := range X {
		out[i] = s.Transform(row)
	}
	return out
}

// MeanPercentageError returns the mean of |pred-actual|/|actual| over the
// samples, as a fraction (multiply by 100 for the paper's %). Samples with
// zero actuals are skipped.
func MeanPercentageError(pred, actual []float64) float64 {
	if len(pred) != len(actual) {
		panic("ml: MPE length mismatch")
	}
	sum, n := 0.0, 0
	for i := range pred {
		if actual[i] == 0 {
			continue
		}
		sum += math.Abs(pred[i]-actual[i]) / math.Abs(actual[i])
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// MeanAbsoluteError returns the mean |pred-actual|.
func MeanAbsoluteError(pred, actual []float64) float64 {
	if len(pred) != len(actual) {
		panic("ml: MAE length mismatch")
	}
	if len(pred) == 0 {
		return 0
	}
	sum := 0.0
	for i := range pred {
		sum += math.Abs(pred[i] - actual[i])
	}
	return sum / float64(len(pred))
}

// GeometricMeanError returns exp(mean |ln(pred/actual)|), the multiplicative
// error factor (used for the paper's "2.9x" style comparisons). Pairs with
// non-positive values are skipped.
func GeometricMeanError(pred, actual []float64) float64 {
	sum, n := 0.0, 0
	for i := range pred {
		if pred[i] <= 0 || actual[i] <= 0 {
			continue
		}
		sum += math.Abs(math.Log(pred[i] / actual[i]))
		n++
	}
	if n == 0 {
		return 1
	}
	return math.Exp(sum / float64(n))
}
