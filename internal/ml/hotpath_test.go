package ml

import (
	"math"
	"sync"
	"testing"
)

// The hot-path contract of the two serving models: the fused
// struct-of-arrays forest and the scratch-reusing kNN must predict
// bit-identically to the historic layouts (golden bits recorded from the
// pre-fusion implementation), and a warm Predict must not allocate.

// hotpathQueries draws the fixed query set every equivalence test here
// shares: 25 vectors from the seed-77 stream.
func hotpathQueries() [][]float64 {
	r := lcg(77)
	qs := make([][]float64, 25)
	for qi := range qs {
		q := make([]float64, 12)
		for j := range q {
			q[j] = r.next()*4 - 2
		}
		qs[qi] = q
	}
	return qs
}

// The golden prediction bits, recorded by running the pre-fusion
// implementations (per-tree []treeNode arenas; per-query candidate
// allocation) on knnFixture(400, 12, 21) with the hotpathQueries stream.
// Any layout or traversal change that perturbs a single ULP fails here.
var goldenForestBits = []uint64{
	0x3fd358f7ae5fd25f, 0xbfbbc14c66f67cf6, 0x3fcda4d865ffa8ed, 0x3ff105516a4d639f,
	0x3fb6c299f3968e80, 0x3fe51ea59d83fd8c, 0x3fd15d68a87be7cf, 0x3fc75d78e71f8d03,
	0xbf9d7b6ecc6e68a4, 0x3fd7ea011b4d186f, 0xbfe4ae77c998c3cc, 0xbfbed1e58293576e,
	0x3fcb436b85f471dd, 0x3ff7b915bfef9797, 0xbfef9b688302c944, 0x3fe5c7d94fb3f36a,
	0xbff13d236e33bf54, 0xbfc8b0ae116729ad, 0x3fd8d06ef7a85769, 0x3ff12448f5592da3,
	0xbfbbbca653284453, 0x3fede70ffbab2f2a, 0x3fc6a91a9164cfbc, 0x3fec690bfd5260b9,
	0xbfbc2e661bc1fab2,
}

var goldenKNNBits = []uint64{
	0x3ff032d1490a2f29, 0xbfe5f0dfb1af332c, 0xbfd4256ae0f4b020, 0x3fef64798403104b,
	0xbfcdac5f1326289d, 0x3fd119321a92d19a, 0x3fda283f5422d62f, 0xbfc975205b43c4cb,
	0x3fc29830006a4aaa, 0x3fc44f7c16f66657, 0xbfe4316895bca369, 0x3faa119ba916f42f,
	0x3fb4705d6c1b372d, 0x3ffa9a363b7df8fa, 0xbfdfe1bc6f6e879e, 0x3fd211aab64e111f,
	0xbff18b25334fbc0a, 0xbfd5067f4b8c140f, 0xbfd804f48018568c, 0x3fe08902f3d24129,
	0x3fa83f9dc0dc72a1, 0xbfb6caca9cb652d6, 0x3fc145c33d15402d, 0x3fe2f4333a72bcd0,
	0x3fb550551ed36b29,
}

func TestForestPredictMatchesGoldenBits(t *testing.T) {
	X, y := knnFixture(400, 12, 21)
	m, err := Forest{Trees: 15, MaxDepth: 8, MinLeaf: 3, Seed: 7, Workers: 1}.Train(X, y)
	if err != nil {
		t.Fatal(err)
	}
	for qi, q := range hotpathQueries() {
		got := math.Float64bits(m.Predict(q))
		if got != goldenForestBits[qi] {
			t.Fatalf("query %d: fused forest predicted bits %016x, golden %016x (%v vs %v)",
				qi, got, goldenForestBits[qi], math.Float64frombits(got), math.Float64frombits(goldenForestBits[qi]))
		}
	}
}

func TestKNNPredictMatchesGoldenBits(t *testing.T) {
	X, y := knnFixture(400, 12, 21)
	m, err := KNN{K: 5}.Train(X, y)
	if err != nil {
		t.Fatal(err)
	}
	for qi, q := range hotpathQueries() {
		got := math.Float64bits(m.Predict(q))
		if got != goldenKNNBits[qi] {
			t.Fatalf("query %d: knn predicted bits %016x, golden %016x", qi, got, goldenKNNBits[qi])
		}
	}
}

// forestPredictByArenas is the historic per-tree layout's traversal: one
// []treeNode arena per tree, pointer to each node, division by the
// converted ensemble size. fitTrees still produces exactly these arenas,
// so comparing against the fused model proves the fusion's index rebasing
// and threshold/value packing preserve every prediction bit.
func forestPredictByArenas(arenas [][]treeNode, x []float64) float64 {
	sum := 0.0
	for _, nodes := range arenas {
		i := int32(0)
		for {
			n := &nodes[i]
			if n.feature < 0 {
				sum += n.value
				break
			}
			if x[n.feature] <= n.thresh {
				i = n.left
			} else {
				i = n.right
			}
		}
	}
	return sum / float64(len(arenas))
}

func TestFusedForestMatchesArenaReference(t *testing.T) {
	for _, cfg := range []Forest{
		{Trees: 1, MaxDepth: 3, MinLeaf: 3, Seed: 1, Workers: 1},
		{Trees: 15, MaxDepth: 8, MinLeaf: 3, Seed: 7, Workers: 2},
		{Trees: 40, MaxDepth: 12, MinLeaf: 2, Seed: 99, Workers: 4},
	} {
		X, y := knnFixture(300, 9, cfg.Seed)
		arenas, err := cfg.fitTrees(X, y)
		if err != nil {
			t.Fatal(err)
		}
		fused, err := fuseForest(arenas)
		if err != nil {
			t.Fatal(err)
		}
		r := lcg(cfg.Seed + 1000)
		for qi := 0; qi < 40; qi++ {
			q := make([]float64, 9)
			for j := range q {
				q[j] = r.next()*4 - 2
			}
			got, want := fused.Predict(q), forestPredictByArenas(arenas, q)
			if got != want {
				t.Fatalf("trees=%d query %d: fused %v != arena reference %v", cfg.Trees, qi, got, want)
			}
		}
	}
}

// TestPredictZeroAlloc pins the serving hot path's allocation contract:
// once warm, neither model allocates per prediction.
func TestPredictZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation defeats sync.Pool reuse; alloc counts unreliable")
	}
	X, y := knnFixture(600, 10, 5)
	q := make([]float64, 10)
	for j := range q {
		q[j] = 0.2 * float64(j)
	}
	models := []struct {
		name string
		m    Regressor
	}{}
	knn, err := KNN{K: 5}.Train(X, y)
	if err != nil {
		t.Fatal(err)
	}
	forest, err := Forest{Trees: 10, Seed: 3, Workers: 1}.Train(X, y)
	if err != nil {
		t.Fatal(err)
	}
	models = append(models,
		struct {
			name string
			m    Regressor
		}{"knn", knn},
		struct {
			name string
			m    Regressor
		}{"forest", forest},
	)
	for _, tc := range models {
		tc.m.Predict(q) // warm the scratch pool before counting
		if allocs := testing.AllocsPerRun(200, func() { tc.m.Predict(q) }); allocs != 0 {
			t.Errorf("%s: warm Predict allocates %.1f objects/op, want 0", tc.name, allocs)
		}
	}
}

// TestKNNPredictConcurrentScratch drives many concurrent predictions
// through the shared scratch pool: every goroutine must see the sequential
// answer (run under -race in CI).
func TestKNNPredictConcurrentScratch(t *testing.T) {
	X, y := knnFixture(500, 8, 13)
	m, err := KNN{K: 5}.Train(X, y)
	if err != nil {
		t.Fatal(err)
	}
	qs := make([][]float64, 16)
	want := make([]float64, len(qs))
	r := lcg(31)
	for i := range qs {
		q := make([]float64, 8)
		for j := range q {
			q[j] = r.next()*4 - 2
		}
		qs[i] = q
		want[i] = m.Predict(q)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for rep := 0; rep < 50; rep++ {
				for i, q := range qs {
					if got := m.Predict(q); got != want[i] {
						select {
						case errs <- errMismatch(i, got, want[i]):
						default:
						}
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	if err := <-errs; err != nil {
		t.Fatal(err)
	}
}

type mismatchError struct {
	i         int
	got, want float64
}

func (e *mismatchError) Error() string {
	return "concurrent prediction drifted"
}

func errMismatch(i int, got, want float64) error {
	return &mismatchError{i, got, want}
}

// BenchmarkForestPredict measures one warm ensemble evaluation on the
// fused struct-of-arrays layout — a canonical entry of the checked-in
// benchmark snapshot (scripts/bench.sh).
func BenchmarkForestPredict(b *testing.B) {
	X, y := knnFixture(2048, 16, 11)
	m, err := Forest{Trees: 60, Seed: 42}.Train(X, y)
	if err != nil {
		b.Fatal(err)
	}
	q := make([]float64, 16)
	for j := range q {
		q[j] = 0.05 * float64(j)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Predict(q)
	}
}
