package ml

import (
	"fmt"
	"math"
)

// SVR is an ε-insensitive support vector regressor with an RBF kernel,
// trained by a simplified SMO coordinate-ascent on the dual problem — the
// "SVM" of the paper's model comparison.
type SVR struct {
	// C is the regularization constant; 0 means 10.
	C float64
	// Epsilon is the insensitive-tube half-width; 0 means 0.05.
	Epsilon float64
	// Gamma is the RBF width (k(a,b) = exp(-Gamma*|a-b|^2)); 0 picks the
	// scikit-style default 1/d.
	Gamma float64
	// MaxPasses bounds SMO sweeps without progress; 0 means 8.
	MaxPasses int
}

// Name implements Trainer.
func (s SVR) Name() string { return "SVM" }

// svrModel stores the fitted support vectors. Like the kNN training
// matrix, the vectors are fused into one contiguous row-major slice at
// train time so the kernel scan of the hot predict path streams through
// memory instead of chasing one slice header per support vector.
type svrModel struct {
	gamma float64
	dim   int       // training dimensionality, validated on every query
	flat  []float64 // nSV×dim row-major support-vector matrix
	beta  []float64 // alpha_i - alpha_i^* for each support vector
	b     float64
}

// rbf computes the RBF kernel of rows a and b.
func rbf(a, b []float64, gamma float64) float64 {
	d2 := 0.0
	for j := range a {
		dv := a[j] - b[j]
		d2 += dv * dv
	}
	return math.Exp(-gamma * d2)
}

// Train implements Trainer: dual coordinate descent on the ε-SVR objective
// with box constraints beta_i in [-C, C].
func (s SVR) Train(X [][]float64, y []float64) (Regressor, error) {
	if err := validate(X, y); err != nil {
		return nil, err
	}
	n := len(X)
	d := len(X[0])
	c := s.C
	if c == 0 {
		c = 10
	}
	eps := s.Epsilon
	if eps == 0 {
		eps = 0.05
	}
	gamma := s.Gamma
	if gamma == 0 {
		gamma = 1 / float64(d)
	}
	passes := s.MaxPasses
	if passes == 0 {
		passes = 8
	}

	// Precompute the kernel matrix (training sets here are ~10^3).
	K := make([][]float64, n)
	for i := range K {
		K[i] = make([]float64, n)
		for j := 0; j <= i; j++ {
			v := rbf(X[i], X[j], gamma)
			K[i][j] = v
			K[j][i] = v
		}
	}

	beta := make([]float64, n)
	b := mean(y)
	// f caches the current prediction for every training sample.
	f := make([]float64, n)
	for i := range f {
		f[i] = b
	}

	for pass := 0; pass < passes; pass++ {
		changed := 0
		for i := 0; i < n; i++ {
			// Sub-gradient step on coordinate i with exact line search
			// for the squared-error-outside-tube surrogate.
			err := f[i] - y[i]
			var g float64
			switch {
			case err > eps:
				g = err - eps
			case err < -eps:
				g = err + eps
			default:
				continue
			}
			// Newton step: d(obj)/d(beta_i) ~ g, curvature K[i][i].
			delta := -g / (K[i][i] + 1e-9)
			old := beta[i]
			nb := clamp(old+delta, -c, c)
			if nb == old {
				continue
			}
			beta[i] = nb
			diff := nb - old
			for j := 0; j < n; j++ {
				f[j] += diff * K[i][j]
			}
			changed++
		}
		// Re-center the bias to the mean residual of the tube violators.
		var sum float64
		for i := range f {
			sum += y[i] - (f[i] - b)
		}
		newB := sum / float64(n)
		shift := newB - b
		if shift != 0 {
			b = newB
			for j := range f {
				f[j] += shift
			}
		}
		if changed == 0 {
			break
		}
	}

	// Keep only support vectors (non-zero beta) for prediction speed,
	// fused into one row-major matrix.
	var flat []float64
	var sb []float64
	for i, v := range beta {
		if math.Abs(v) > 1e-9 {
			flat = append(flat, X[i]...)
			sb = append(sb, v)
		}
	}
	// A degenerate fit (everything inside the tube) has no support vectors
	// and predicts the bias; it still records dim so queries stay checked.
	return &svrModel{gamma: gamma, dim: d, flat: flat, beta: sb, b: b}, nil
}

// Predict implements Regressor: the kernel expansion over the support
// vectors. The query must have the training dimensionality; a mismatched
// vector is a caller bug and panics with a diagnosable message rather than
// an index-out-of-range deep in the kernel loop (or, worse, a silently
// truncated distance when the query is longer — the bug class knnModel
// fixed first).
func (m *svrModel) Predict(x []float64) float64 {
	if len(x) != m.dim {
		panic(fmt.Sprintf("ml: svr query has %d features, model trained on %d", len(x), m.dim))
	}
	out := m.b
	for i, bv := range m.beta {
		row := m.flat[i*m.dim : i*m.dim+m.dim]
		d2 := 0.0
		for j := range row {
			dv := row[j] - x[j]
			d2 += dv * dv
		}
		out += bv * math.Exp(-m.gamma*d2)
	}
	return out
}

func mean(y []float64) float64 {
	if len(y) == 0 {
		return 0
	}
	s := 0.0
	for _, v := range y {
		s += v
	}
	return s / float64(len(y))
}

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
