// Package profile is the reproduction's substitute for the paper's
// profiling toolchain: DynamoRIO binary instrumentation (for the DRAM reuse
// time Treuse and the data-pattern entropy HDP) and the perf hardware
// counters (247 further program features). It converts an executed
// workload kernel into
//
//   - the 249-entry program feature vector used to train the ML models
//     (paper Section III-D and Table III), and
//   - a dram.AccessProfile: the workload's footprint partitioned into
//     regions with reuse, row-activation and data-pattern statistics,
//     scaled from the simulated working set to the paper's 8 GiB
//     allocation.
package profile

import (
	"fmt"
	"math"

	"repro/internal/dram"
	"repro/internal/memsys"
	"repro/internal/workload"
)

// VirtualFootprintWords is the allocation the paper gives every workload:
// 8 GiB = 2^30 64-bit words (Section IV-C).
const VirtualFootprintWords = 1 << 30

// neverReused stands in for the reuse time of data touched at most once.
const neverReused = 1e9

// Result is the complete profile of one benchmark configuration.
type Result struct {
	Label   string
	Threads int

	// Treuse is the average DRAM reuse time in seconds (paper Eq. 4,
	// Table II): the access-weighted mean over all memory accesses of
	// the time between touches of the same 64-bit word, scaled to the
	// 8 GiB footprint.
	Treuse float64
	// HDP is the data-pattern entropy in bits (paper Eq. 5).
	HDP float64
	// WallSeconds is the simulated execution time of the profiling run.
	WallSeconds float64

	// Features is the 249-entry feature vector (ordered as FeatureNames).
	Features []float64

	// Access is the DRAM-facing profile consumed by the reliability
	// simulator.
	Access *dram.AccessProfile
}

// Build executes the benchmark at profiling size and derives its profile.
// The run is deterministic in (label, seed).
func Build(spec workload.Spec, seed uint64) (*Result, error) {
	return build(spec, workload.SizeProfile, profileIters(spec.Label), seed)
}

// BuildQuick is Build at unit-test scale.
func BuildQuick(spec workload.Spec, seed uint64) (*Result, error) {
	return build(spec, workload.SizeTest, 3, seed)
}

// BuildAt dispatches to Build or BuildQuick by size: the one entry point
// for callers (campaign assembly, the serving layer's profile cache) that
// carry the size as data.
func BuildAt(spec workload.Spec, size workload.Size, seed uint64) (*Result, error) {
	if size == workload.SizeTest {
		return BuildQuick(spec, seed)
	}
	return Build(spec, seed)
}

// profileIters returns the number of outer iterations profiled per kernel:
// enough for every kernel to exhibit cross-iteration reuse.
func profileIters(label string) int {
	switch label {
	case "memcached": // each iteration is a large op batch already
		return 3
	default:
		return 3
	}
}

func build(spec workload.Spec, size workload.Size, iters int, seed uint64) (*Result, error) {
	eng := workload.Execute(spec, size, iters, seed)
	sys := eng.Sys

	wall := sys.WallSeconds()
	instr := eng.Instructions()
	if wall <= 0 || instr == 0 {
		return nil, fmt.Errorf("profile: %s executed no work", spec.Label)
	}
	secPerInstr := wall / float64(instr)

	// Partition the virtual 8 GiB footprint: resident structures keep
	// their absolute size, capacity structures share the rest in
	// proportion to their simulated size.
	var capWords, resWords uint64
	for _, a := range eng.Arrays() {
		if a.Class == workload.Capacity {
			capWords += a.Words()
		} else {
			resWords += a.Words()
		}
	}
	if capWords == 0 {
		return nil, fmt.Errorf("profile: %s has no capacity region", spec.Label)
	}
	if resWords >= VirtualFootprintWords/2 {
		return nil, fmt.Errorf("profile: %s resident set implausibly large", spec.Label)
	}
	capScale := float64(VirtualFootprintWords-resWords) / float64(capWords)

	var (
		regions     []dram.Region
		totalAcc    float64
		totalDRAM   float64
		treuseNum   float64
		treuseDenom float64
	)
	for _, a := range eng.Arrays() {
		totalAcc += float64(a.Accesses())
		totalDRAM += float64(a.DRAMAccesses())
	}
	if totalDRAM == 0 {
		totalDRAM = 1
	}
	for _, a := range eng.SortedArrays() {
		scale := 1.0
		frac := float64(a.Words()) / VirtualFootprintWords
		if a.Class == workload.Capacity {
			scale = capScale
			frac = float64(a.Words()) * capScale / VirtualFootprintWords
		}
		reuse := a.MeanWordGapInstr() * secPerInstr * scale
		if reuse <= 0 {
			reuse = neverReused
		}
		rowReuse := rescueRowReuse(a, secPerInstr*scale)
		rewrites := float64(a.Writes()) / wall / float64(a.Words()) / scale
		regions = append(regions, dram.Region{
			Name:            a.Name,
			FootprintFrac:   frac,
			AccessFrac:      float64(a.DRAMAccesses()) / totalDRAM,
			ReuseSeconds:    reuse,
			RowReuseSeconds: rowReuse,
			BitOneProb:      a.BitOneFraction(),
			RewritesPerSec:  rewrites,
		})
		// Treuse (Eq. 4) weights each region's reuse interval by its
		// rate of DRAM reuse *events*. Structures that stay cache-
		// resident refresh nothing in DRAM and are invisible to the
		// metric, just as they are invisible to the DIMM; capacity
		// regions scaled up by capScale yield events capScale x more
		// rarely in any fixed observation window.
		if reuse < neverReused {
			w := float64(a.DRAMAccesses()) / scale
			treuseNum += w * reuse
			treuseDenom += w
		}
	}
	normalizeFractions(regions)

	treuse := 0.0
	if treuseDenom > 0 {
		treuse = treuseNum / treuseDenom
	}
	hdp := eng.HDP()

	readFrac := 0.5
	if tot := sys.DRAMAccesses(); tot > 0 {
		var reads uint64
		for i := 0; i < memsys.NumMCUs; i++ {
			reads += sys.MCUOf(i).Stats.ReadCmds
		}
		readFrac = float64(reads) / float64(tot)
	}

	access := &dram.AccessProfile{
		Name:                 spec.Label,
		Threads:              spec.Threads,
		FootprintWords:       VirtualFootprintWords,
		Regions:              regions,
		DRAMAccessesPerSec:   float64(sys.DRAMAccesses()) / wall,
		RowActivationsPerSec: float64(sys.DRAMActivations()) / wall,
		ReadFrac:             readFrac,
		HDP:                  hdp,
		Seed:                 hashLabel(spec.Label),
	}
	if err := access.Validate(); err != nil {
		return nil, err
	}

	return &Result{
		Label:       spec.Label,
		Threads:     spec.Threads,
		Treuse:      treuse,
		HDP:         hdp,
		WallSeconds: wall,
		Features:    computeFeatures(eng, treuse, hdp),
		Access:      access,
	}, nil
}

// rescueRowReuse derives the region's effective row-activation interval
// from the gap histogram. Accesses to a row arrive in bursts (sequential
// sweeps keep a row open for hundreds of touches); only the long gaps
// between bursts leave the row unrefreshed. The effective interval is the
// mean of the scaled gaps longer than burstCutoffSec; if every gap is
// shorter, the row is effectively continuously refreshed and the overall
// mean (a tiny value) is returned.
func rescueRowReuse(a *workload.Array, secPerGapInstr float64) float64 {
	const burstCutoffSec = 1e-3
	hist := a.RowGapHistogram()
	var longSum, longN, shortSum, shortN float64
	for b, cnt := range hist {
		if cnt == 0 {
			continue
		}
		gapInstr := 1.5 * math.Pow(2, float64(b-1))
		if b == 0 {
			gapInstr = 1
		}
		sec := gapInstr * secPerGapInstr
		if sec > burstCutoffSec {
			longSum += float64(cnt) * sec
			longN += float64(cnt)
		} else {
			shortSum += float64(cnt) * sec
			shortN += float64(cnt)
		}
	}
	switch {
	case longN > 0:
		return longSum / longN
	case shortN > 0:
		return shortSum / shortN
	default:
		return neverReused
	}
}

// normalizeFractions rescales footprint and access fractions to sum to 1
// (they can drift by rounding and by untracked accesses).
func normalizeFractions(regions []dram.Region) {
	var fp, af float64
	for _, r := range regions {
		fp += r.FootprintFrac
		af += r.AccessFrac
	}
	for i := range regions {
		if fp > 0 {
			regions[i].FootprintFrac /= fp
		}
		if af > 0 {
			regions[i].AccessFrac /= af
		} else {
			regions[i].AccessFrac = 1 / float64(len(regions))
		}
	}
}

// hashLabel folds a benchmark label into a placement seed.
func hashLabel(s string) uint64 {
	h := uint64(0xcbf29ce484222325)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 0x100000001b3
	}
	return h
}
