package profile

import (
	"fmt"
	"math"
)

// The post-2019 failure-prediction literature ("Exploring Error Bits for
// Memory Failure Prediction", "DRAM Failure Prediction in AIOps") predicts
// field failures from the *spatial structure* of correctable-error
// telemetry rather than from characterization campaigns: errors that
// concentrate on a few rows or columns, arrive in bursts, or flip several
// bits per word are the dominant precursors of an uncorrectable error.
// This file derives that feature extraction: a CE event log in, a small
// fixed catalog of error-bit features out.

// CEEvent is one logged correctable-error observation: the moment it was
// scrubbed plus the DRAM coordinates of the corrected word. The same type
// travels the whole stack — the fleet simulator emits it, the serve layer
// decodes it from /v2 queries, and this package vectorizes it.
type CEEvent struct {
	// T is the event time in seconds from the start of the observation
	// window. Logs are time-ordered: consumers require non-decreasing T.
	T float64 `json:"t"`
	// Row, Col, Bank, Rank locate the corrected word.
	Row  int `json:"row"`
	Col  int `json:"col"`
	Bank int `json:"bank"`
	Rank int `json:"rank"`
	// Bits is the number of flipped bits in the corrected word; 0 is
	// treated as 1 (single-bit) so sparse logs stay terse.
	Bits int `json:"bits,omitempty"`
}

// bitCount returns the event's flipped-bit count with the sparse-log
// default applied.
func (e CEEvent) bitCount() int {
	if e.Bits <= 0 {
		return 1
	}
	return e.Bits
}

// CE feature indices into the vector produced by CEFeaturesInto. Indexes
// are stable, append-only catalog order — persisted artifacts depend on it
// exactly like the program-feature catalog above.
const (
	CEFeatEvents           = iota // total CE events in the window
	CEFeatDistinctRows            // distinct rows touched
	CEFeatDistinctCols            // distinct columns touched
	CEFeatDistinctBanks           // distinct banks touched
	CEFeatDistinctRanks           // distinct ranks touched
	CEFeatMaxRowShare             // fraction of events on the busiest row
	CEFeatMaxColShare             // fraction of events on the busiest column
	CEFeatMultibitFrac            // fraction of events with >1 flipped bit
	CEFeatMaxBits                 // max flipped bits in one event
	CEFeatMeanInterarrival        // mean seconds between consecutive events
	CEFeatMinInterarrival         // min seconds between consecutive events
	CEFeatBurstiness              // fraction of gaps under 1/4 of the mean gap

	// NumCEFeatures is the size of the error-bit feature vector.
	NumCEFeatures = iota
)

var ceFeatureNames = [NumCEFeatures]string{
	CEFeatEvents:           "ce_events",
	CEFeatDistinctRows:     "ce_distinct_rows",
	CEFeatDistinctCols:     "ce_distinct_cols",
	CEFeatDistinctBanks:    "ce_distinct_banks",
	CEFeatDistinctRanks:    "ce_distinct_ranks",
	CEFeatMaxRowShare:      "ce_max_row_share",
	CEFeatMaxColShare:      "ce_max_col_share",
	CEFeatMultibitFrac:     "ce_multibit_frac",
	CEFeatMaxBits:          "ce_max_bits",
	CEFeatMeanInterarrival: "ce_mean_interarrival",
	CEFeatMinInterarrival:  "ce_min_interarrival",
	CEFeatBurstiness:       "ce_burstiness",
}

// CEFeatureNames returns the error-bit feature catalog in vector order.
func CEFeatureNames() []string {
	out := make([]string, NumCEFeatures)
	copy(out, ceFeatureNames[:])
	return out
}

// ValidateCEEvents checks a CE log for the time-ordering contract and
// finite timestamps. Consumers never sort: an out-of-order log is a
// caller bug (or a malformed query) and is rejected, not repaired. A
// non-finite timestamp is rejected too — NaN defeats the ordering check
// (every comparison is false) and ±Inf turns the interarrival features
// into NaN arithmetic downstream.
func ValidateCEEvents(events []CEEvent) error {
	for i := range events {
		if math.IsNaN(events[i].T) || math.IsInf(events[i].T, 0) {
			return fmt.Errorf("profile: ce event %d has non-finite t=%g", i, events[i].T)
		}
	}
	for i := 1; i < len(events); i++ {
		if events[i].T < events[i-1].T {
			return fmt.Errorf("profile: ce event %d at t=%g precedes event %d at t=%g: log must be time-ordered",
				i, events[i].T, i-1, events[i-1].T)
		}
	}
	return nil
}

// CEFeaturesInto vectorizes a time-ordered CE event log into dst, which
// must have length NumCEFeatures. An empty log vectorizes to all zeros —
// a healthy DIMM is a valid observation, not an error. The computation is
// allocation-free for logs up to ceScratchSize events per distinct
// coordinate; beyond that it degrades to map-based counting.
func CEFeaturesInto(dst []float64, events []CEEvent) {
	_ = dst[NumCEFeatures-1] // bounds hint
	for i := range dst[:NumCEFeatures] {
		dst[i] = 0
	}
	n := len(events)
	if n == 0 {
		return
	}
	dst[CEFeatEvents] = float64(n)

	// Distinct-coordinate counts and busiest-coordinate concentration.
	var rows, cols coordCounter
	var banks, ranks smallSet
	maxBits, multibit := 0, 0
	for i := range events {
		e := &events[i]
		rows.add(e.Row)
		cols.add(e.Col)
		banks.add(e.Bank)
		ranks.add(e.Rank)
		b := e.bitCount()
		if b > maxBits {
			maxBits = b
		}
		if b > 1 {
			multibit++
		}
	}
	dst[CEFeatDistinctRows] = float64(rows.distinct())
	dst[CEFeatDistinctCols] = float64(cols.distinct())
	dst[CEFeatDistinctBanks] = float64(banks.distinct())
	dst[CEFeatDistinctRanks] = float64(ranks.distinct())
	dst[CEFeatMaxRowShare] = float64(rows.maxCount()) / float64(n)
	dst[CEFeatMaxColShare] = float64(cols.maxCount()) / float64(n)
	dst[CEFeatMultibitFrac] = float64(multibit) / float64(n)
	dst[CEFeatMaxBits] = float64(maxBits)

	// Inter-arrival statistics over the ordered log.
	if n >= 2 {
		sum, min := 0.0, events[1].T-events[0].T
		for i := 1; i < n; i++ {
			gap := events[i].T - events[i-1].T
			sum += gap
			if gap < min {
				min = gap
			}
		}
		mean := sum / float64(n-1)
		dst[CEFeatMeanInterarrival] = mean
		dst[CEFeatMinInterarrival] = min
		if mean > 0 {
			bursty := 0
			for i := 1; i < n; i++ {
				if events[i].T-events[i-1].T < mean/4 {
					bursty++
				}
			}
			dst[CEFeatBurstiness] = float64(bursty) / float64(n-1)
		}
	}
}

// CEFeatures is the allocating convenience form of CEFeaturesInto.
func CEFeatures(events []CEEvent) []float64 {
	dst := make([]float64, NumCEFeatures)
	CEFeaturesInto(dst, events)
	return dst
}

// ceScratchSize bounds the inline distinct-coordinate scratch; typical
// telemetry windows hold well under this many distinct rows or columns.
const ceScratchSize = 64

// coordCounter counts events per coordinate value, inline up to
// ceScratchSize distinct values and via a map beyond.
type coordCounter struct {
	keys     [ceScratchSize]int
	counts   [ceScratchSize]int
	n        int
	overflow map[int]int
}

func (c *coordCounter) add(key int) {
	if c.overflow != nil {
		c.overflow[key]++
		return
	}
	for i := 0; i < c.n; i++ {
		if c.keys[i] == key {
			c.counts[i]++
			return
		}
	}
	if c.n < ceScratchSize {
		c.keys[c.n] = key
		c.counts[c.n] = 1
		c.n++
		return
	}
	// Degrade to a map, carrying the inline tallies over.
	c.overflow = make(map[int]int, 2*ceScratchSize)
	for i := 0; i < c.n; i++ {
		c.overflow[c.keys[i]] = c.counts[i]
	}
	c.overflow[key]++
}

func (c *coordCounter) distinct() int {
	if c.overflow != nil {
		return len(c.overflow)
	}
	return c.n
}

func (c *coordCounter) maxCount() int {
	max := 0
	if c.overflow != nil {
		for _, v := range c.overflow {
			if v > max {
				max = v
			}
		}
		return max
	}
	for i := 0; i < c.n; i++ {
		if c.counts[i] > max {
			max = c.counts[i]
		}
	}
	return max
}

// smallSet tracks distinct small non-negative ints (banks, ranks) with the
// same inline-then-map degradation.
type smallSet struct {
	keys     [ceScratchSize]int
	n        int
	overflow map[int]struct{}
}

func (s *smallSet) add(key int) {
	if s.overflow != nil {
		s.overflow[key] = struct{}{}
		return
	}
	for i := 0; i < s.n; i++ {
		if s.keys[i] == key {
			return
		}
	}
	if s.n < ceScratchSize {
		s.keys[s.n] = key
		s.n++
		return
	}
	s.overflow = make(map[int]struct{}, 2*ceScratchSize)
	for i := 0; i < s.n; i++ {
		s.overflow[s.keys[i]] = struct{}{}
	}
	s.overflow[key] = struct{}{}
}

func (s *smallSet) distinct() int {
	if s.overflow != nil {
		return len(s.overflow)
	}
	return s.n
}
