package profile

import (
	"testing"

	"repro/internal/workload"
)

func TestTable2Probe(t *testing.T) {
	if testing.Short() {
		t.Skip()
	}
	for _, label := range []string{"nw", "nw(par)", "backprop", "backprop(par)", "memcached", "kmeans", "srad", "fmm", "pagerank", "random"} {
		spec, _ := workload.FindSpec(label)
		res, err := Build(spec, 1)
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("%-14s Treuse=%8.3fs HDP=%5.2f wall=%6.3fs dramAps=%.3g rowActs=%.3g memPKC=%.1f wait=%.3f",
			label, res.Treuse, res.HDP, res.WallSeconds, res.Access.DRAMAccessesPerSec, res.Access.RowActivationsPerSec,
			res.Features[FeatMemAccesses], res.Features[FeatWaitCycles])
	}
}
