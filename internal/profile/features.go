package profile

import (
	"math"

	"repro/internal/memsys"
	"repro/internal/workload"
)

// NumFeatures is the size of the program feature vector: Treuse, HDP and
// 247 counter-derived features, matching the paper's Section III-D.
const NumFeatures = 249

// Feature indices used by the model input sets (paper Table III).
const (
	// FeatTreuse is the average DRAM reuse time.
	FeatTreuse = 0
	// FeatHDP is the data-pattern entropy.
	FeatHDP = 1
	// FeatWaitCycles is the fraction of cycles spent waiting for memory.
	FeatWaitCycles = 4
	// FeatMemAccesses is the number of memory accesses per kilo-cycle —
	// the feature the paper finds most correlated with WER (Fig. 10).
	FeatMemAccesses = 7
)

// featureNames is built once at init; featureIndex inverts it.
var (
	featureNames []string
	featureIndex map[string]int
)

// FeatureNames returns the ordered names of the 249 features.
func FeatureNames() []string { return featureNames }

// FeatureIndexOf returns the index of a named feature, or -1.
func FeatureIndexOf(name string) int {
	if i, ok := featureIndex[name]; ok {
		return i
	}
	return -1
}

// builder accumulates (name, value) pairs in catalog order.
type builder struct {
	names  []string
	values []float64
}

func (b *builder) add(name string, value float64) {
	b.names = append(b.names, name)
	if math.IsNaN(value) || math.IsInf(value, 0) {
		value = 0
	}
	b.values = append(b.values, value)
}

// computeFeatures derives the full feature vector from an executed engine.
// The first entries mirror the paper's named features; the long tail are
// ARM-PMU-style events derived from the pipeline statistics — like the
// paper's 247 perf counters, most are partially redundant with each other,
// which is exactly the property that drives the input-set-3 overfitting
// result (Fig. 11).
func computeFeatures(eng *workload.Engine, treuse, hdp float64) []float64 {
	b := &builder{}
	buildFeatures(b, eng, treuse, hdp)
	if len(b.values) != NumFeatures {
		// The catalog is a compile-time artifact; a mismatch is a bug.
		panic("profile: feature catalog size drifted")
	}
	return b.values
}

func buildFeatures(b *builder, eng *workload.Engine, treuse, hdp float64) {
	sys := eng.Sys
	wall := float64(sys.WallCycles())
	if wall == 0 {
		wall = 1
	}
	kcyc := wall / 1000
	instr := float64(eng.Instructions())
	if instr == 0 {
		instr = 1
	}
	kinstr := instr / 1000

	var busy, stall, reads, writes float64
	for i := 0; i < memsys.NumCores; i++ {
		busy += float64(sys.Core[i].BusyCycles)
		stall += float64(sys.Core[i].StallCycles)
		reads += float64(sys.Core[i].MemReads)
		writes += float64(sys.Core[i].MemWrites)
	}
	mem := reads + writes
	coreCycles := busy + stall
	if coreCycles == 0 {
		coreCycles = 1
	}

	// Group A: the paper's named program features.
	b.add("treuse", treuse)
	b.add("hdp", hdp)

	// Group B: aggregate pipeline behaviour.
	b.add("ipc", instr/wall)
	b.add("cpi", wall/instr)
	b.add("wait_cycles", stall/coreCycles) // paper's "wait cycles" ratio
	b.add("cpu_util", coreCycles/(wall*memsys.NumCores))
	b.add("instr_rate_mips", instr/(wall/memsys.CoreFreqHz)/1e6)
	b.add("mem_accesses_per_kcycle", mem/kcyc)
	b.add("mem_reads_per_kcycle", reads/kcyc)
	b.add("mem_writes_per_kcycle", writes/kcyc)
	b.add("mem_read_frac", safeDiv(reads, mem))
	b.add("mem_write_frac", safeDiv(writes, mem))

	// Group C: per-core pipeline counters (8 cores x 8).
	for i := 0; i < memsys.NumCores; i++ {
		cs := sys.Core[i]
		cyc := float64(cs.Cycles())
		if cyc == 0 {
			cyc = 1
		}
		pfx := fmtCore(i)
		b.add(pfx+"_ipc", float64(cs.Instructions)/cyc)
		b.add(pfx+"_util", cyc/wall)
		b.add(pfx+"_instr_frac", float64(cs.Instructions)/instr)
		b.add(pfx+"_stall_frac", float64(cs.StallCycles)/cyc)
		b.add(pfx+"_mem_per_kcycle", float64(cs.MemReads+cs.MemWrites)/(cyc/1000))
		b.add(pfx+"_rd_per_kcycle", float64(cs.MemReads)/(cyc/1000))
		b.add(pfx+"_wr_per_kcycle", float64(cs.MemWrites)/(cyc/1000))
		b.add(pfx+"_l1d_miss_rate", sys.L1(i).Stats.MissRate())
	}

	// Group D: L1D aggregate.
	var l1 memsys.CacheStats
	for i := 0; i < memsys.NumCores; i++ {
		st := sys.L1(i).Stats
		l1.ReadHits += st.ReadHits
		l1.ReadMisses += st.ReadMisses
		l1.WriteHits += st.WriteHits
		l1.WriteMisses += st.WriteMisses
		l1.Writebacks += st.Writebacks
	}
	b.add("l1d_apki", float64(l1.Accesses())/kinstr)
	b.add("l1d_mpki", float64(l1.Misses())/kinstr)
	b.add("l1d_miss_rate", l1.MissRate())
	b.add("l1d_wb_pki", float64(l1.Writebacks)/kinstr)
	b.add("l1d_rd_share", safeDiv(float64(l1.ReadHits+l1.ReadMisses), float64(l1.Accesses())))
	b.add("l1d_wr_share", safeDiv(float64(l1.WriteHits+l1.WriteMisses), float64(l1.Accesses())))

	// Group E: per-L2-slice counters (4 slices x 5).
	var l2 memsys.CacheStats
	for i := 0; i < memsys.NumCores/2; i++ {
		st := sys.L2(i).Stats
		l2.ReadHits += st.ReadHits
		l2.ReadMisses += st.ReadMisses
		l2.WriteHits += st.WriteHits
		l2.WriteMisses += st.WriteMisses
		l2.Writebacks += st.Writebacks
		pfx := fmtL2(i)
		b.add(pfx+"_apki", float64(st.Accesses())/kinstr)
		b.add(pfx+"_mpki", float64(st.Misses())/kinstr)
		b.add(pfx+"_miss_rate", st.MissRate())
		b.add(pfx+"_wb_pki", float64(st.Writebacks)/kinstr)
		b.add(pfx+"_share", safeDiv(float64(st.Accesses()), float64(l1.Misses())))
	}

	// Group F: L2 aggregate.
	b.add("l2_apki", float64(l2.Accesses())/kinstr)
	b.add("l2_mpki", float64(l2.Misses())/kinstr)
	b.add("l2_miss_rate", l2.MissRate())
	b.add("l2_wb_pki", float64(l2.Writebacks)/kinstr)
	b.add("l2_mpkc", float64(l2.Misses())/kcyc)

	// Group G: per-MCU counters (4 channels x 6) — the paper's "issued
	// memory read and write commands per cycle in different MCUs".
	var dramAcc, dramRd, dramWr, dramAct float64
	for i := 0; i < memsys.NumMCUs; i++ {
		st := sys.MCUOf(i).Stats
		dramAcc += float64(st.Accesses())
		dramRd += float64(st.ReadCmds)
		dramWr += float64(st.WriteCmds)
		dramAct += float64(st.Activations)
		pfx := fmtMCU(i)
		b.add(pfx+"_rd_cmds_per_kcycle", float64(st.ReadCmds)/kcyc)
		b.add(pfx+"_wr_cmds_per_kcycle", float64(st.WriteCmds)/kcyc)
		b.add(pfx+"_acts_per_kcycle", float64(st.Activations)/kcyc)
		b.add(pfx+"_row_hit_rate", st.RowHitRate())
		b.add(pfx+"_share", safeDiv(float64(st.Accesses()), dramTotal(sys)))
		b.add(pfx+"_util", float64(st.Accesses())/kcyc/400)
	}

	// Group H: DRAM aggregate.
	b.add("dram_apki", dramAcc/kinstr)
	b.add("dram_rd_pki", dramRd/kinstr)
	b.add("dram_wr_pki", dramWr/kinstr)
	b.add("dram_acts_pki", dramAct/kinstr)
	b.add("dram_row_hit_rate", safeDiv(dramAcc-dramAct, dramAcc))
	b.add("dram_bandwidth_gbps", dramAcc*memsys.LineBytes/(wall/memsys.CoreFreqHz)/1e9)
	b.add("dram_apkc", dramAcc/kcyc)
	b.add("dram_acts_pkc", dramAct/kcyc)

	// Group I: ARM-PMU-style per-core events (8 cores x 10). The cache
	// simulator does not model these units microarchitecturally; they
	// are synthesized as fixed mixtures of the modelled quantities plus
	// a deterministic per-event jitter — redundant-but-noisy counters,
	// like most of a real perf capture.
	for i := 0; i < memsys.NumCores; i++ {
		cs := sys.Core[i]
		cyc := float64(cs.Cycles())
		if cyc == 0 {
			cyc = 1
		}
		ins := float64(cs.Instructions)
		memC := float64(cs.MemReads + cs.MemWrites)
		pfx := fmtCore(i)
		j := func(k int) float64 { return jitter(i*16 + k) }
		b.add(pfx+"_br_retired_pki", 180*ins/kinstrOf(ins)*j(0)/1000)
		b.add(pfx+"_br_mpki", 4.2*j(1)*safeDiv(memC, ins+1)*10)
		b.add(pfx+"_dtlb_walk_pki", 0.9*j(2)*float64(sys.L1(i).Stats.Misses())/kinstrOf(ins))
		b.add(pfx+"_itlb_walk_pki", 0.05*j(3))
		b.add(pfx+"_l1i_apki", 950*j(4))
		b.add(pfx+"_l1i_mpki", 1.3*j(5))
		b.add(pfx+"_fe_stall_frac", 0.08*j(6)*(1-float64(cs.StallCycles)/cyc))
		b.add(pfx+"_be_stall_frac", float64(cs.StallCycles)/cyc*j(7))
		b.add(pfx+"_uops_per_cycle", float64(cs.Instructions)/cyc*1.3*j(8))
		b.add(pfx+"_ld_spec_pki", safeDiv(float64(cs.MemReads), ins/1000)*1.05*j(9))
	}

	// Group J: system-wide ARM PMU events (30), again fixed mixtures.
	sysEvents := []struct {
		name string
		val  float64
	}{
		{"bus_access_rd_pkc", dramRd / kcyc * 1.02},
		{"bus_access_wr_pkc", dramWr / kcyc * 1.02},
		{"bus_cycles_frac", math.Min(1, dramAcc/kcyc/1600)},
		{"mem_bus_util", math.Min(1, dramAcc/kcyc/1600)},
		{"page_faults_per_mop", 0.2 * jitter(301)},
		{"context_switches_per_sec", 120 * jitter(302)},
		{"cpu_migrations_per_sec", 2 * jitter(303)},
		{"alignment_faults", 0},
		{"emulation_faults", 0},
		{"sw_incr_pki", 0.01 * jitter(304)},
		{"exc_taken_pki", 0.4 * jitter(305)},
		{"exc_return_pki", 0.4 * jitter(306)},
		{"cid_write_pki", 0.02 * jitter(307)},
		{"pc_write_pki", 110 * jitter(308)},
		{"br_immed_pki", 140 * jitter(309)},
		{"br_return_pki", 18 * jitter(310)},
		{"unaligned_ldst_pki", 0.6 * jitter(311)},
		{"ld_spec_pki", safeDiv(reads, kinstr) * 1.04},
		{"st_spec_pki", safeDiv(writes, kinstr) * 1.04},
		{"dp_spec_pki", safeDiv(instr-mem, kinstr) * 0.7},
		{"ase_spec_pki", 12 * jitter(312)},
		{"vfp_spec_pki", safeDiv(instr-mem, kinstr) * 0.25 * jitter(313)},
		{"crypto_spec_pki", 0},
		{"ldrex_spec_pki", 0.8 * jitter(314)},
		{"strex_pass_pki", 0.8 * jitter(315)},
		{"strex_fail_pki", 0.01 * jitter(316)},
		{"dmb_spec_pki", 1.1 * jitter(317)},
		{"dsb_spec_pki", 0.3 * jitter(318)},
		{"isb_spec_pki", 0.2 * jitter(319)},
		{"rc_ldst_spec_pki", 0.15 * jitter(320)},
	}
	for _, ev := range sysEvents {
		b.add(ev.name, ev.val)
	}
}

// dramTotal returns total DRAM accesses as float (min 1).
func dramTotal(sys *memsys.System) float64 {
	t := float64(sys.DRAMAccesses())
	if t == 0 {
		return 1
	}
	return t
}

func safeDiv(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

func kinstrOf(ins float64) float64 {
	if ins == 0 {
		return 1
	}
	return ins / 1000
}

// jitter returns a deterministic multiplier in [0.85, 1.15) keyed by the
// event slot — stable across runs of the same benchmark, different across
// events.
func jitter(k int) float64 {
	x := uint64(k+1) * 0x9E3779B97F4A7C15
	x ^= x >> 29
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 32
	return 0.85 + 0.3*float64(x&0xFFFF)/65536
}

func fmtCore(i int) string { return "core" + string(rune('0'+i)) }
func fmtL2(i int) string   { return "l2s" + string(rune('0'+i)) }
func fmtMCU(i int) string  { return "mcu" + string(rune('0'+i)) }

func init() {
	// Build the catalog once from a minimal engine so that FeatureNames
	// is available before any profiling run.
	e := workload.NewEngine(1, 0)
	a := e.Alloc("probe", 64, workload.Capacity)
	e.Write64(0, a, 0, 1)
	b := &builder{}
	buildFeatures(b, e, 0, 0)
	if len(b.names) != NumFeatures {
		panic("profile: feature catalog must have exactly 249 entries")
	}
	featureNames = b.names
	featureIndex = make(map[string]int, len(b.names))
	for i, n := range b.names {
		if _, dup := featureIndex[n]; dup {
			panic("profile: duplicate feature name " + n)
		}
		featureIndex[n] = i
	}
}
