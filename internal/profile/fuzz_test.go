package profile

import (
	"encoding/json"
	"math"
	"testing"
)

// FuzzCEFeatures drives arbitrary JSON-decoded CE logs through the
// telemetry vectorizer. For any log ValidateCEEvents accepts, the
// invariants the ue_risk training and serving paths both lean on must
// hold: CEFeaturesInto never panics, the vector is finite and
// non-negative (every feature is a count, a rate, a concentration ratio
// or a burstiness score), vectorization is deterministic, and the
// allocating CEFeatures wrapper agrees with CEFeaturesInto exactly.
func FuzzCEFeatures(f *testing.F) {
	f.Add([]byte(`[]`))
	f.Add([]byte(`[{"t":0,"rank":0,"bank":0,"row":0,"col":0}]`))
	f.Add([]byte(`[{"t":1,"rank":3,"bank":2,"row":70,"col":9,"bits":2},{"t":2,"rank":3,"bank":2,"row":70,"col":10}]`))
	f.Add([]byte(`[{"t":0.5,"rank":1,"row":4,"col":4},{"t":0.5,"rank":1,"row":4,"col":4},{"t":0.5,"rank":1,"row":4,"col":4}]`))
	f.Add([]byte(`[{"t":-1}]`))
	f.Add([]byte(`[{"t":2},{"t":1}]`))
	f.Add([]byte(`[{"t":1e308,"rank":2147483647,"row":-2147483648,"bits":-5}]`))

	f.Fuzz(func(t *testing.T, data []byte) {
		var events []CEEvent
		if err := json.Unmarshal(data, &events); err != nil {
			return
		}
		if err := ValidateCEEvents(events); err != nil {
			return
		}
		var a, b [NumCEFeatures]float64
		CEFeaturesInto(a[:], events)
		CEFeaturesInto(b[:], events)
		alloc := CEFeatures(events)
		if len(alloc) != NumCEFeatures {
			t.Fatalf("CEFeatures returned %d features, want %d", len(alloc), NumCEFeatures)
		}
		for i := 0; i < NumCEFeatures; i++ {
			// Counts, shares and fractions must be finite outright; the
			// interarrival features may overflow to +Inf for adversarial
			// (but validly ordered) timestamps spanning ±1e308, yet must
			// never be NaN — that is what ValidateCEEvents rejecting
			// non-finite timestamps guarantees.
			if math.IsNaN(a[i]) {
				t.Fatalf("feature %d (%s) = NaN for %d events", i, CEFeatureNames()[i], len(events))
			}
			if i < CEFeatMeanInterarrival && math.IsInf(a[i], 0) {
				t.Fatalf("feature %d (%s) = %v for %d events", i, CEFeatureNames()[i], a[i], len(events))
			}
			if a[i] < 0 {
				t.Fatalf("feature %d (%s) = %v negative", i, CEFeatureNames()[i], a[i])
			}
			if a[i] != b[i] {
				t.Fatalf("feature %d (%s) not deterministic: %v vs %v", i, CEFeatureNames()[i], a[i], b[i])
			}
			if alloc[i] != a[i] {
				t.Fatalf("feature %d (%s): CEFeatures %v != CEFeaturesInto %v", i, CEFeatureNames()[i], alloc[i], a[i])
			}
		}
		if len(events) == 0 {
			for i, v := range a {
				if v != 0 {
					t.Fatalf("empty log vectorized feature %d to %v, want 0", i, v)
				}
			}
		}
	})
}
