package profile

import (
	"math"
	"testing"
)

func TestCEFeatureCatalog(t *testing.T) {
	names := CEFeatureNames()
	if len(names) != NumCEFeatures {
		t.Fatalf("%d feature names for %d features", len(names), NumCEFeatures)
	}
	seen := map[string]bool{}
	for i, name := range names {
		if name == "" {
			t.Fatalf("feature %d unnamed", i)
		}
		if seen[name] {
			t.Fatalf("duplicate feature name %q", name)
		}
		seen[name] = true
	}
	// The returned slice is a copy; mutating it must not poison the catalog.
	names[0] = "corrupted"
	if CEFeatureNames()[0] != "ce_events" {
		t.Fatal("CEFeatureNames exposes the internal catalog array")
	}
}

func TestCEFeaturesEmptyWindow(t *testing.T) {
	// A quiet window is a healthy observation: the all-zero vector, not an
	// error — the serve layer depends on this for CE-less ue_risk queries.
	for _, v := range CEFeatures(nil) {
		if v != 0 {
			t.Fatalf("empty window vector = %v, want all zeros", CEFeatures(nil))
		}
	}
}

// TestCEFeaturesValues checks every feature against a hand-computed log:
// three tightly bunched events on row 5 (two sharing column 1) then a
// distant multi-bit straggler.
func TestCEFeaturesValues(t *testing.T) {
	events := []CEEvent{
		{T: 0, Row: 5, Col: 1, Bank: 0, Rank: 0},
		{T: 0.1, Row: 5, Col: 2, Bank: 0, Rank: 0, Bits: 2},
		{T: 0.2, Row: 5, Col: 1, Bank: 1, Rank: 0},
		{T: 10, Row: 9, Col: 3, Bank: 0, Rank: 1, Bits: 3},
	}
	got := CEFeatures(events)
	// Gaps are 0.1, 0.1, 9.8: mean 10/3, min 0.1, and the two 0.1s fall
	// under a quarter of the mean, so burstiness is 2/3.
	want := []float64{
		CEFeatEvents:           4,
		CEFeatDistinctRows:     2,
		CEFeatDistinctCols:     3,
		CEFeatDistinctBanks:    2,
		CEFeatDistinctRanks:    2,
		CEFeatMaxRowShare:      3.0 / 4,
		CEFeatMaxColShare:      2.0 / 4,
		CEFeatMultibitFrac:     2.0 / 4,
		CEFeatMaxBits:          3,
		CEFeatMeanInterarrival: 10.0 / 3,
		CEFeatMinInterarrival:  0.1,
		CEFeatBurstiness:       2.0 / 3,
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Errorf("%s = %g, want %g", CEFeatureNames()[i], got[i], want[i])
		}
	}
}

// TestCEFeaturesLargeLog pushes past the inline scratch so the map
// fallback path is exercised, and checks it agrees with a naive count.
func TestCEFeaturesLargeLog(t *testing.T) {
	var events []CEEvent
	for i := 0; i < 300; i++ {
		events = append(events, CEEvent{
			T:    float64(i),
			Row:  (i * 7) % 200, // > ceScratchSize distinct rows
			Col:  i % 30,
			Bank: i % 8,
			Rank: i % 4,
		})
	}
	rows := map[int]int{}
	for _, e := range events {
		rows[e.Row]++
	}
	maxRow := 0
	for _, n := range rows {
		if n > maxRow {
			maxRow = n
		}
	}
	got := CEFeatures(events)
	if got[CEFeatDistinctRows] != float64(len(rows)) {
		t.Fatalf("distinct rows = %g, want %d", got[CEFeatDistinctRows], len(rows))
	}
	if got[CEFeatMaxRowShare] != float64(maxRow)/300 {
		t.Fatalf("max row share = %g, want %g", got[CEFeatMaxRowShare], float64(maxRow)/300)
	}
}

func TestCEFeaturesIntoMatchesAllocatingForm(t *testing.T) {
	events := []CEEvent{
		{T: 1, Row: 42, Col: 3, Bank: 0, Rank: 1},
		{T: 2, Row: 42, Col: 9, Bank: 0, Rank: 1, Bits: 2},
	}
	dst := make([]float64, NumCEFeatures)
	for i := range dst {
		dst[i] = math.NaN() // Into must overwrite every slot
	}
	CEFeaturesInto(dst, events)
	for i, v := range CEFeatures(events) {
		if dst[i] != v {
			t.Fatalf("feature %d: Into %g, allocating %g", i, dst[i], v)
		}
	}
}

func TestValidateCEEvents(t *testing.T) {
	ok := []CEEvent{{T: 1}, {T: 1}, {T: 2.5}} // equal timestamps are fine
	if err := ValidateCEEvents(ok); err != nil {
		t.Fatalf("ordered log rejected: %v", err)
	}
	if err := ValidateCEEvents(nil); err != nil {
		t.Fatalf("empty log rejected: %v", err)
	}
	bad := []CEEvent{{T: 5}, {T: 4.9}}
	if err := ValidateCEEvents(bad); err == nil {
		t.Fatal("out-of-order log accepted")
	}
}
