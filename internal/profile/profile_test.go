package profile

import (
	"math"
	"testing"

	"repro/internal/dram"
	"repro/internal/workload"
)

func quickProfile(t *testing.T, label string) *Result {
	t.Helper()
	spec, err := workload.FindSpec(label)
	if err != nil {
		t.Fatal(err)
	}
	res, err := BuildQuick(spec, 11)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestFeatureCatalogSize(t *testing.T) {
	if len(FeatureNames()) != NumFeatures {
		t.Fatalf("catalog has %d features, want %d", len(FeatureNames()), NumFeatures)
	}
	if NumFeatures != 249 {
		t.Fatalf("the paper extracts 249 features, catalog says %d", NumFeatures)
	}
}

func TestFeatureNamesUniqueAndIndexed(t *testing.T) {
	seen := map[string]bool{}
	for i, n := range FeatureNames() {
		if seen[n] {
			t.Fatalf("duplicate feature %q", n)
		}
		seen[n] = true
		if FeatureIndexOf(n) != i {
			t.Fatalf("index mismatch for %q", n)
		}
	}
	if FeatureIndexOf("no_such_feature") != -1 {
		t.Fatal("unknown feature resolved")
	}
}

func TestNamedFeatureIndices(t *testing.T) {
	cases := map[int]string{
		FeatTreuse:      "treuse",
		FeatHDP:         "hdp",
		FeatWaitCycles:  "wait_cycles",
		FeatMemAccesses: "mem_accesses_per_kcycle",
	}
	names := FeatureNames()
	for idx, want := range cases {
		if names[idx] != want {
			t.Fatalf("feature[%d] = %q, want %q", idx, names[idx], want)
		}
	}
}

func TestBuildQuickProducesValidProfile(t *testing.T) {
	for _, label := range []string{"backprop", "memcached", "nw(par)", "random"} {
		res := quickProfile(t, label)
		if len(res.Features) != NumFeatures {
			t.Fatalf("%s: %d features", label, len(res.Features))
		}
		for i, v := range res.Features {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("%s: feature %s is %v", label, FeatureNames()[i], v)
			}
		}
		if err := res.Access.Validate(); err != nil {
			t.Fatalf("%s: invalid access profile: %v", label, err)
		}
		if res.Access.FootprintWords != VirtualFootprintWords {
			t.Fatalf("%s: footprint %d", label, res.Access.FootprintWords)
		}
		if res.Treuse <= 0 {
			t.Fatalf("%s: Treuse = %v", label, res.Treuse)
		}
	}
}

func TestProfileDeterministic(t *testing.T) {
	a := quickProfile(t, "srad")
	b := quickProfile(t, "srad")
	if a.Treuse != b.Treuse || a.HDP != b.HDP {
		t.Fatal("profiles differ between identical builds")
	}
	for i := range a.Features {
		if a.Features[i] != b.Features[i] {
			t.Fatalf("feature %s differs", FeatureNames()[i])
		}
	}
}

func TestRegionFractionsNormalized(t *testing.T) {
	res := quickProfile(t, "fmm(par)")
	var fp, af float64
	for _, r := range res.Access.Regions {
		fp += r.FootprintFrac
		af += r.AccessFrac
	}
	if math.Abs(fp-1) > 1e-9 || math.Abs(af-1) > 1e-9 {
		t.Fatalf("fractions not normalized: fp=%v af=%v", fp, af)
	}
}

func TestCapacityRegionsDominateFootprint(t *testing.T) {
	// Resident structures must be a sliver of the virtual 8 GiB.
	res := quickProfile(t, "kmeans")
	centroids := regionByName(res, "centroids")
	points := regionByName(res, "points")
	if centroids == nil || points == nil {
		t.Fatal("expected kmeans regions missing")
	}
	if centroids.FootprintFrac > 0.001 {
		t.Fatalf("resident centroids take %.4f of footprint", centroids.FootprintFrac)
	}
	if points.FootprintFrac < 0.3 {
		t.Fatalf("points take only %.4f of footprint", points.FootprintFrac)
	}
}

func TestMemcachedTreuseSmallest(t *testing.T) {
	// Table II: memcached has by far the smallest DRAM reuse time.
	mc := quickProfile(t, "memcached")
	nw := quickProfile(t, "nw")
	if mc.Treuse*2 > nw.Treuse {
		t.Fatalf("Treuse(memcached)=%v not << Treuse(nw)=%v", mc.Treuse, nw.Treuse)
	}
}

func TestRandomHasHighestEntropy(t *testing.T) {
	rnd := quickProfile(t, "random")
	for _, label := range []string{"nw", "memcached", "kmeans"} {
		other := quickProfile(t, label)
		if other.HDP >= rnd.HDP {
			t.Fatalf("HDP(%s)=%v >= HDP(random)=%v", label, other.HDP, rnd.HDP)
		}
	}
}

func TestWaitCyclesWithinUnit(t *testing.T) {
	res := quickProfile(t, "backprop(par)")
	w := res.Features[FeatWaitCycles]
	if w < 0 || w > 1 {
		t.Fatalf("wait_cycles = %v outside [0,1]", w)
	}
}

func regionByName(res *Result, name string) *dram.Region {
	for i := range res.Access.Regions {
		if res.Access.Regions[i].Name == name {
			return &res.Access.Regions[i]
		}
	}
	return nil
}
