package dram

import (
	"fmt"
	"math"
)

// AccessProfile describes how a workload uses DRAM: the partition of its
// footprint into regions with distinct reuse behaviour, its aggregate
// traffic, and its data-pattern statistics. Profiles are produced by
// internal/profile from simulated workload executions; the DRAM simulator
// consumes them to decide which weak cells are rescued by implicit refresh,
// which are hammered by neighbour-row activations, and which store
// vulnerable data.
type AccessProfile struct {
	// Name identifies the workload (used for seeding data placement, so
	// the same workload always lands on the same physical pages).
	Name string
	// Threads is the number of worker threads used for the run.
	Threads int
	// FootprintWords is the allocation size in 64-bit words at full
	// scale (the paper allocates 8 GiB = 2^30 words for every workload).
	FootprintWords uint64
	// Regions partitions the footprint; FootprintFrac must sum to ~1.
	Regions []Region
	// DRAMAccessesPerSec is the post-cache memory access rate.
	DRAMAccessesPerSec float64
	// RowActivationsPerSec is the rate of DRAM row activations (accesses
	// that miss the open row), which drives cell-to-cell disturbance.
	RowActivationsPerSec float64
	// ReadFrac is the fraction of DRAM accesses that are reads.
	ReadFrac float64
	// HDP is the data-pattern entropy of written values in bits per
	// 32-bit word (paper Eq. 5); 32 is a uniformly random pattern.
	HDP float64
	// Seed salts data placement.
	Seed uint64
}

// Region is a footprint partition with homogeneous reuse behaviour
// (typically one allocated array or data structure of the workload).
type Region struct {
	// Name identifies the data structure ("weights", "hash table", ...).
	Name string
	// FootprintFrac is the fraction of the footprint this region holds.
	FootprintFrac float64
	// AccessFrac is the fraction of DRAM accesses that touch the region.
	AccessFrac float64
	// ReuseSeconds is the mean interval between successive accesses to
	// the same 64-bit word of the region (the per-region DRAM reuse
	// time; Treuse is the access-weighted mean of these).
	ReuseSeconds float64
	// RowReuseSeconds is the mean interval between activations of the
	// same DRAM row of the region. Because an activation recharges the
	// whole row, this — not the word-level reuse — controls implicit
	// refresh. Random access patterns (memcached) activate each row far
	// more often than each word (RowReuseSeconds << ReuseSeconds);
	// streaming sweeps revisit rows and words together
	// (RowReuseSeconds ≈ ReuseSeconds).
	RowReuseSeconds float64
	// BitOneProb is the probability a stored bit is 1 in this region.
	BitOneProb float64
	// RewritesPerSec is the per-word rewrite rate; rewriting re-rolls
	// which cells hold vulnerable data.
	RewritesPerSec float64
}

// Validate checks profile invariants.
func (p *AccessProfile) Validate() error {
	if p.FootprintWords == 0 {
		return fmt.Errorf("dram: profile %q has zero footprint", p.Name)
	}
	if len(p.Regions) == 0 {
		return fmt.Errorf("dram: profile %q has no regions", p.Name)
	}
	var fp, af float64
	for _, r := range p.Regions {
		if r.FootprintFrac < 0 || r.AccessFrac < 0 || r.ReuseSeconds <= 0 || r.RowReuseSeconds <= 0 {
			return fmt.Errorf("dram: profile %q region %q has invalid fields", p.Name, r.Name)
		}
		if r.BitOneProb < 0 || r.BitOneProb > 1 {
			return fmt.Errorf("dram: profile %q region %q has invalid BitOneProb", p.Name, r.Name)
		}
		fp += r.FootprintFrac
		af += r.AccessFrac
	}
	if math.Abs(fp-1) > 0.01 {
		return fmt.Errorf("dram: profile %q footprint fractions sum to %.3f", p.Name, fp)
	}
	if math.Abs(af-1) > 0.01 {
		return fmt.Errorf("dram: profile %q access fractions sum to %.3f", p.Name, af)
	}
	return nil
}

// Treuse returns the access-weighted mean DRAM reuse time in seconds — the
// paper's Treuse metric (Section III-D): the average period between
// accesses to the same 64-bit word.
func (p *AccessProfile) Treuse() float64 {
	var t float64
	for _, r := range p.Regions {
		t += r.AccessFrac * r.ReuseSeconds
	}
	return t
}

// MeanBitOneProb returns the footprint-weighted probability of a stored 1.
func (p *AccessProfile) MeanBitOneProb() float64 {
	var b float64
	for _, r := range p.Regions {
		b += r.FootprintFrac * r.BitOneProb
	}
	return b
}

// disturbance summarizes the two-tier neighbour-row activation model for a
// run: every cell sees the background rate; cells that happen to neighbour
// the hottest region's rows see the hot rate.
type disturbance struct {
	backgroundRate float64 // activations/s seen by a typical row's neighbours
	hotRate        float64 // activations/s next to the hottest region
	hotFrac        float64 // fraction of footprint cells in the hot tier
}

// disturbanceModel derives the two-tier model from the profile.
func (p *AccessProfile) disturbanceModel() disturbance {
	totalRows := float64(p.FootprintWords) / WordsPerRow
	if totalRows < 1 {
		totalRows = 1
	}
	d := disturbance{
		backgroundRate: 2 * p.RowActivationsPerSec / totalRows,
	}
	// The hot tier is the region with the highest per-row activation
	// density; its row neighbours absorb concentrated hammering.
	for _, r := range p.Regions {
		if r.FootprintFrac <= 0 {
			continue
		}
		rows := r.FootprintFrac * totalRows
		rate := p.RowActivationsPerSec * r.AccessFrac / rows
		if rate > d.hotRate {
			d.hotRate = rate
			d.hotFrac = math.Min(1, 2*r.FootprintFrac)
		}
	}
	if d.hotRate > maxDisturbRate {
		d.hotRate = maxDisturbRate
	}
	if d.backgroundRate > maxDisturbRate {
		d.backgroundRate = maxDisturbRate
	}
	return d
}
