package dram

import (
	"math"
	"testing"
)

func TestNewDeviceDefaults(t *testing.T) {
	d, err := NewDevice(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if d.Scale() != 1 {
		t.Fatalf("default scale = %d", d.Scale())
	}
	if d.TotalWords() != NumRanks*WordsPerRank {
		t.Fatalf("total words = %d", d.TotalWords())
	}
}

func TestNewDeviceRejectsBadScale(t *testing.T) {
	if _, err := NewDevice(Config{Scale: -1}); err == nil {
		t.Fatal("negative scale accepted")
	}
	if _, err := NewDevice(Config{Scale: 1 << 30}); err == nil {
		t.Fatal("absurd scale accepted")
	}
}

func TestNewDeviceRejectsBadParams(t *testing.T) {
	p := DefaultParams()
	p.RetentionGamma = -1
	if _, err := NewDevice(Config{Params: &p}); err == nil {
		t.Fatal("invalid params accepted")
	}
}

func TestParamsValidateCatchesEachField(t *testing.T) {
	mutations := []func(*Params){
		func(p *Params) { p.RetentionK = 0 },
		func(p *Params) { p.RetentionGamma = 0 },
		func(p *Params) { p.RetentionHalvingC = -2 },
		func(p *Params) { p.GlobalCeiling = 1 },
		func(p *Params) { p.VRTFraction = 1.5 },
		func(p *Params) { p.TrueCellProb = -0.1 },
		func(p *Params) { p.PairRetMedian = 0 },
		func(p *Params) { p.TripleRetSigma = 0 },
		func(p *Params) { p.KernelBitOneProb = 2 },
		func(p *Params) { p.RankDensity[3] = -1 },
		func(p *Params) { p.PairRankWeight[0] = -1 },
	}
	for i, mut := range mutations {
		p := DefaultParams()
		mut(&p)
		if err := p.Validate(); err == nil {
			t.Fatalf("mutation %d not caught by Validate", i)
		}
	}
	if err := DefaultParams().Validate(); err != nil {
		t.Fatalf("default params invalid: %v", err)
	}
}

func TestWeakCellPopulationDeterministic(t *testing.T) {
	a := MustNewDevice(Config{Seed: 5, Scale: 256})
	b := MustNewDevice(Config{Seed: 5, Scale: 256})
	for r := 0; r < NumRanks; r++ {
		if a.WeakCellCount(r, 10) != b.WeakCellCount(r, 10) {
			t.Fatalf("rank %d populations differ between identical devices", r)
		}
	}
}

func TestWeakCellPopulationOrderIndependent(t *testing.T) {
	// Requesting a small ceiling first must not change the population
	// later materialized for a larger ceiling.
	a := MustNewDevice(Config{Seed: 9, Scale: 256})
	b := MustNewDevice(Config{Seed: 9, Scale: 256})
	_ = a.WeakCellCount(0, 1.0) // a materializes low tiers first
	ca := a.WeakCellCount(0, 12.0)
	cb := b.WeakCellCount(0, 12.0) // b materializes everything at once
	if ca != cb {
		t.Fatalf("population depends on request order: %d vs %d", ca, cb)
	}
}

func TestWeakCellCountMonotoneInCeiling(t *testing.T) {
	d := MustNewDevice(Config{Seed: 3, Scale: 256})
	prev := 0
	for _, ceil := range []float64{0.5, 1, 2, 4, 8, 13} {
		n := d.WeakCellCount(4, ceil)
		if n < prev {
			t.Fatalf("weak-cell count not monotone: %d < %d at ceiling %v", n, prev, ceil)
		}
		prev = n
	}
}

func TestWeakCellDensityScalesWithRank(t *testing.T) {
	// DIMM2/rank0 (density 3.5) must hold far more weak cells than
	// DIMM3/rank1 (density 0.0186) — the paper's 188x spread.
	d := MustNewDevice(Config{Seed: 1, Scale: 64})
	weak := d.WeakCellCount(4, 13)   // DIMM2/rank0
	strong := d.WeakCellCount(7, 13) // DIMM3/rank1
	if weak < 20*strong {
		t.Fatalf("rank density spread too small: %d vs %d", weak, strong)
	}
}

func TestDifferentSeedsDifferentPopulations(t *testing.T) {
	a := MustNewDevice(Config{Seed: 1, Scale: 256})
	b := MustNewDevice(Config{Seed: 2, Scale: 256})
	same := 0
	for r := 0; r < NumRanks; r++ {
		if a.WeakCellCount(r, 12) == b.WeakCellCount(r, 12) {
			same++
		}
	}
	if same == NumRanks {
		t.Fatal("different seeds produced identical populations in every rank")
	}
}

func TestPairPopulationMatchesRankWeights(t *testing.T) {
	d := MustNewDevice(Config{Seed: 0, Scale: 64})
	if n := len(d.pairsFor(7)); n != 0 {
		t.Fatalf("DIMM3/rank1 has weight 0 but %d pairs", n)
	}
	// DIMM2/rank0 carries the bulk of the pair budget.
	if n := len(d.pairsFor(4)); n < 20 {
		t.Fatalf("DIMM2/rank0 has only %d pairs", n)
	}
}

func TestTempFactorHalving(t *testing.T) {
	p := DefaultParams()
	f := p.TempFactor(p.ReferenceTempC + p.RetentionHalvingC)
	if math.Abs(f-0.5) > 1e-12 {
		t.Fatalf("TempFactor one halving step = %v, want 0.5", f)
	}
	if p.TempFactor(p.ReferenceTempC) != 1 {
		t.Fatal("TempFactor at reference != 1")
	}
}

func TestVDDFactorNegligibleAtMinVDD(t *testing.T) {
	// The paper found 1.5 V -> 1.428 V has a negligible effect: the
	// retention reduction must be under 10 %.
	p := DefaultParams()
	f := p.VDDFactor(MinVDD)
	if f < 0.9 || f >= 1 {
		t.Fatalf("VDDFactor(MinVDD) = %v, want slightly below 1", f)
	}
	if p.VDDFactor(NominalVDD) != 1 {
		t.Fatal("VDDFactor at nominal != 1")
	}
}

func TestWeakBitFractionPowerLaw(t *testing.T) {
	p := DefaultParams()
	r := p.WeakBitFraction(2) / p.WeakBitFraction(1)
	want := math.Pow(2, p.RetentionGamma)
	if math.Abs(r-want)/want > 1e-9 {
		t.Fatalf("power-law ratio = %v, want %v", r, want)
	}
	if p.WeakBitFraction(0) != 0 || p.WeakBitFraction(-1) != 0 {
		t.Fatal("WeakBitFraction of non-positive t should be 0")
	}
}

func TestRetentionQuantileInverts(t *testing.T) {
	p := DefaultParams()
	for _, u := range []float64{0.01, 0.5, 0.99} {
		q := p.RetentionQuantile(u, 10)
		// F(q)/F(10) should equal u.
		got := p.WeakBitFraction(q) / p.WeakBitFraction(10)
		if math.Abs(got-u) > 1e-9 {
			t.Fatalf("quantile inversion: u=%v got %v", u, got)
		}
	}
}
