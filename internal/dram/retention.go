package dram

import (
	"math"

	"repro/internal/stats"
)

// WeakBitFraction returns F(t): the fraction of bits whose base retention
// time (at the reference temperature, nominal VDD) is below t seconds.
func (p Params) WeakBitFraction(t float64) float64 {
	if t <= 0 {
		return 0
	}
	return p.RetentionK * math.Pow(t, p.RetentionGamma)
}

// RetentionQuantile inverts the conditional retention CDF: given a uniform
// u in (0,1], it returns the base retention time of a weak cell drawn from
// the population restricted to retention < ceiling. Because F is a power
// law, the conditional quantile is ceiling * u^(1/gamma).
func (p Params) RetentionQuantile(u, ceiling float64) float64 {
	return ceiling * math.Pow(u, 1/p.RetentionGamma)
}

// PairRetentionQuantile inverts the pair-retention CDF: bitline-coupled
// pairs occupy a narrow lognormal retention band (PairRetMedian,
// PairRetSigma), which produces the sharp UE onset between 60 °C (no UEs at
// any TREFP) and 70 °C at TREFP >= 1.45 s.
func (p Params) PairRetentionQuantile(u float64) float64 {
	return stats.LogNormQuantile(u, p.PairRetMedian, p.PairRetSigma)
}

// TripleRetentionQuantile is the 3-cell analogue.
func (p Params) TripleRetentionQuantile(u float64) float64 {
	return stats.LogNormQuantile(u, p.TripleRetMedian, p.TripleRetSigma)
}

// TempFactor returns the multiplicative retention scaling at temperature
// tempC: retention halves every RetentionHalvingC degrees above the
// reference (Hamamoto et al.'s exponential retention-temperature law).
func (p Params) TempFactor(tempC float64) float64 {
	return math.Exp2(-(tempC - p.ReferenceTempC) / p.RetentionHalvingC)
}

// VDDFactor returns the multiplicative retention scaling at supply voltage
// vdd. Lower voltage stores less charge, shortening retention slightly.
func (p Params) VDDFactor(vdd float64) float64 {
	if vdd <= 0 {
		return 0
	}
	return math.Pow(vdd/NominalVDD, p.VDDExponent)
}

// EffectiveCeiling returns the largest base retention time (reference
// conditions) that could leak in a run with refresh period trefp at tempC
// and vdd, given the worst-case disturbance and data-coupling factors.
// Cells above this ceiling can never err in such a run, so the simulator
// only materializes cells below it.
func (p Params) EffectiveCeiling(trefp, tempC, vdd float64) float64 {
	worstDisturb := 1 + p.DisturbCoeff*maxDisturbRate/(maxDisturbRate+p.ActRateNorm)
	worstCoupling := 1 / (1 - p.CouplingDelta)
	c := trefp / p.TempFactor(tempC) / p.VDDFactor(vdd) * worstDisturb * worstCoupling
	if c > p.GlobalCeiling {
		c = p.GlobalCeiling
	}
	return c
}

// maxDisturbRate caps the neighbour-row activation rate (acts/s) the
// disturbance model will credit; beyond this the row-buffer and MCU queues
// throttle further activations of a single row.
const maxDisturbRate = 4000
