package dram

import "repro/internal/engine"

// BatchJob is one run of a batch characterization campaign: a workload
// profile executed under one operating point.
type BatchJob struct {
	Profile *AccessProfile
	Config  RunConfig
}

// RunBatch executes the jobs concurrently on the campaign engine and
// returns the results in job order. Run derives all of its randomness from
// (device seed, profile, config), so a parallel batch is bit-identical to
// running the same jobs sequentially; the shared weak-cell populations are
// generated lazily under the device mutex from fixed per-tier seeds and
// are immutable afterwards, which is what makes concurrent Run calls safe.
func (d *Device) RunBatch(jobs []BatchJob, opts engine.Options) ([]*RunResult, error) {
	return engine.Map(len(jobs), func(i int) (*RunResult, error) {
		return d.Run(jobs[i].Profile, jobs[i].Config)
	}, opts)
}
