package dram

import (
	"math"
	"testing"
)

// testProfile returns a mid-intensity streaming profile for run tests.
func testProfile() *AccessProfile {
	return syntheticProfile("unit-stream", 2.0, 2e8)
}

// rescuedProfile returns a profile whose whole footprint is implicitly
// refreshed by dense random accesses (memcached-like).
func rescuedProfile() *AccessProfile {
	return &AccessProfile{
		Name:           "unit-rescued",
		Threads:        8,
		FootprintWords: 1 << 30,
		Regions: []Region{
			{Name: "hot", FootprintFrac: 0.95, AccessFrac: 0.98,
				ReuseSeconds: 0.1, RowReuseSeconds: 0.001,
				BitOneProb: 0.5, RewritesPerSec: 2},
			{Name: "cold", FootprintFrac: 0.05, AccessFrac: 0.02,
				ReuseSeconds: 30, RowReuseSeconds: 0.05,
				BitOneProb: 0.3, RewritesPerSec: 0.01},
		},
		DRAMAccessesPerSec:   2e8,
		RowActivationsPerSec: 6e7,
		ReadFrac:             0.9,
		HDP:                  20,
		Seed:                 2,
	}
}

func run(t *testing.T, d *Device, p *AccessProfile, cfg RunConfig) *RunResult {
	t.Helper()
	res, err := d.Run(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestRunDeterministic(t *testing.T) {
	d := MustNewDevice(Config{Scale: 64})
	cfg := RunConfig{TREFP: 2.283, TempC: 50, RecordWER: true}
	a := run(t, d, testProfile(), cfg)
	b := run(t, d, testProfile(), cfg)
	if a.WER != b.WER || a.UECount != b.UECount {
		t.Fatalf("identical runs differ: %v vs %v", a.WER, b.WER)
	}
}

func TestRunRepChangesOutcome(t *testing.T) {
	d := MustNewDevice(Config{Scale: 64})
	base := RunConfig{TREFP: 2.283, TempC: 50, RecordWER: true}
	a := run(t, d, testProfile(), base)
	base.Rep = 1
	b := run(t, d, testProfile(), base)
	// Same physical cells, different VRT/data randomness: totals may be
	// close but the series should not be bit-identical.
	identical := a.WER == b.WER
	for i := range a.WERSeries {
		if a.WERSeries[i] != b.WERSeries[i] {
			identical = false
		}
	}
	if identical {
		t.Fatal("different reps produced identical error sequences")
	}
}

func TestWERGrowsWithTREFP(t *testing.T) {
	d := MustNewDevice(Config{Scale: 16})
	prev := -1.0
	for _, trefp := range []float64{0.618, 1.173, 1.727, 2.283} {
		res := run(t, d, testProfile(), RunConfig{TREFP: trefp, TempC: 60, RecordWER: true})
		if res.WER < prev {
			t.Fatalf("WER not monotone in TREFP at %v: %v < %v", trefp, res.WER, prev)
		}
		prev = res.WER
	}
}

func TestWERGrowsWithTemperature(t *testing.T) {
	d := MustNewDevice(Config{Scale: 16})
	prev := -1.0
	for _, temp := range []float64{50, 60, 70} {
		res := run(t, d, testProfile(), RunConfig{TREFP: 1.173, TempC: temp,
			RecordWER: true, DisableCrash: true})
		if res.WER <= prev {
			t.Fatalf("WER not increasing in temperature at %v°C: %v <= %v", temp, res.WER, prev)
		}
		prev = res.WER
	}
}

func TestTemperatureJumpMagnitude(t *testing.T) {
	// Fig. 7: 50 -> 60 °C raises WER by roughly an order of magnitude
	// (the paper shows ~28x at 2.283 s). Accept a broad band.
	d := MustNewDevice(Config{Scale: 8})
	w50 := run(t, d, testProfile(), RunConfig{TREFP: 2.283, TempC: 50, RecordWER: true}).WER
	w60 := run(t, d, testProfile(), RunConfig{TREFP: 2.283, TempC: 60, RecordWER: true}).WER
	if w50 <= 0 {
		t.Skip("no errors at 50°C at this scale")
	}
	ratio := w60 / w50
	if ratio < 8 || ratio > 100 {
		t.Fatalf("50->60°C WER ratio = %v, want ~28x (8..100)", ratio)
	}
}

func TestVDDEffectNegligible(t *testing.T) {
	// Paper Section V: lowering VDD from 1.5 to 1.428 V has a small
	// effect compared to TREFP scaling.
	d := MustNewDevice(Config{Scale: 8})
	nom := run(t, d, testProfile(), RunConfig{TREFP: 2.283, TempC: 60, VDD: NominalVDD, RecordWER: true}).WER
	low := run(t, d, testProfile(), RunConfig{TREFP: 2.283, TempC: 60, VDD: MinVDD, RecordWER: true}).WER
	if nom <= 0 {
		t.Skip("no errors at this scale")
	}
	if low < nom {
		t.Fatalf("lower VDD should not reduce WER: %v < %v", low, nom)
	}
	if low > nom*2.5 {
		t.Fatalf("VDD effect too strong: %v vs %v", low, nom)
	}
}

func TestRescuedWorkloadHasFarFewerErrors(t *testing.T) {
	// A random-access workload that implicitly refreshes its rows must
	// show much lower WER than a streaming workload (paper Fig. 4:
	// memcached lowest, ~8x below the worst).
	d := MustNewDevice(Config{Scale: 8})
	cfg := RunConfig{TREFP: 2.283, TempC: 60, RecordWER: true}
	stream := run(t, d, testProfile(), cfg).WER
	rescued := run(t, d, rescuedProfile(), cfg).WER
	if rescued*3 > stream {
		t.Fatalf("implicit refresh not effective: rescued=%v stream=%v", rescued, stream)
	}
}

func TestWERSeriesCumulativeAndSaturating(t *testing.T) {
	d := MustNewDevice(Config{Scale: 8})
	res := run(t, d, testProfile(), RunConfig{TREFP: 2.283, TempC: 60, RecordWER: true})
	if len(res.WERSeries) != res.Epochs {
		t.Fatalf("series length %d != epochs %d", len(res.WERSeries), res.Epochs)
	}
	for i := 1; i < len(res.WERSeries); i++ {
		if res.WERSeries[i] < res.WERSeries[i-1] {
			t.Fatal("WER series not cumulative")
		}
	}
	if res.WERSeries[len(res.WERSeries)-1] != res.WER {
		t.Fatal("series end != final WER")
	}
	// Paper Section V-A: the last 10 minutes change WER by < 3 %... the
	// simulated curve must flatten too (allow 10 % at test scale).
	n := len(res.WERSeries)
	if res.WER > 0 {
		lastDelta := (res.WERSeries[n-1] - res.WERSeries[n-2]) / res.WERSeries[n-1]
		firstShare := res.WERSeries[0] / res.WER
		if lastDelta > 0.10 {
			t.Fatalf("curve not saturating: last-epoch delta %.3f", lastDelta)
		}
		if firstShare < 0.2 {
			t.Fatalf("first epoch share %.3f: curve should start steep", firstShare)
		}
	}
}

func TestWERByRankTracksDensity(t *testing.T) {
	d := MustNewDevice(Config{Scale: 4})
	res := run(t, d, testProfile(), RunConfig{TREFP: 2.283, TempC: 60, RecordWER: true})
	// DIMM2/rank0 (3.5) must beat DIMM3/rank1 (0.0186) by a wide margin.
	if res.WERByRank[4] <= res.WERByRank[7]*5 {
		t.Fatalf("rank WER spread missing: %v vs %v", res.WERByRank[4], res.WERByRank[7])
	}
	var sum float64
	for _, w := range res.WERByRank {
		sum += w
	}
	if math.Abs(sum/NumRanks-res.WER) > res.WER*0.01+1e-15 {
		t.Fatalf("per-rank WER inconsistent with total: mean %v vs %v", sum/NumRanks, res.WER)
	}
}

func TestNoUEsBelow70C(t *testing.T) {
	d := MustNewDevice(Config{Scale: 64})
	for _, temp := range []float64{50, 60} {
		for _, trefp := range []float64{0.618, 1.173, 1.727, 2.283} {
			for rep := 0; rep < 3; rep++ {
				res := run(t, d, testProfile(), RunConfig{TREFP: trefp, TempC: temp, Rep: rep})
				if res.UECount != 0 {
					t.Fatalf("UE at %v°C TREFP=%v (paper: none below 70°C)", temp, trefp)
				}
			}
		}
	}
}

func TestAllCrashAtMaxTREFP70C(t *testing.T) {
	// Paper: every benchmark triggers a UE in 100 % of runs at 2.283 s
	// and 70 °C.
	d := MustNewDevice(Config{Scale: 64})
	for rep := 0; rep < 5; rep++ {
		res := run(t, d, testProfile(), RunConfig{TREFP: 2.283, TempC: 70, Rep: rep})
		if !res.Crashed {
			t.Fatalf("rep %d did not crash at 2.283s/70°C", rep)
		}
	}
	// Even a fully rescued workload crashes: kernel memory is not
	// refreshed by the application.
	for rep := 0; rep < 5; rep++ {
		res := run(t, d, rescuedProfile(), RunConfig{TREFP: 2.283, TempC: 70, Rep: rep})
		if !res.Crashed {
			t.Fatalf("rescued workload rep %d did not crash at 2.283s/70°C", rep)
		}
	}
}

func TestDisableCrashReportsButContinues(t *testing.T) {
	d := MustNewDevice(Config{Scale: 64})
	res := run(t, d, testProfile(), RunConfig{TREFP: 2.283, TempC: 70,
		RecordWER: true, DisableCrash: true})
	if res.Crashed {
		t.Fatal("DisableCrash run reported Crashed")
	}
	if res.UECount == 0 {
		t.Fatal("expected UEs in report-only mode at 2.283s/70°C")
	}
	if !res.WERValid {
		t.Fatal("WER should be valid in report-only mode")
	}
}

func TestCrashTruncatesCEAccumulation(t *testing.T) {
	d := MustNewDevice(Config{Scale: 64})
	crashed := run(t, d, testProfile(), RunConfig{TREFP: 2.283, TempC: 70, RecordWER: true})
	full := run(t, d, testProfile(), RunConfig{TREFP: 2.283, TempC: 70, RecordWER: true, DisableCrash: true})
	if !crashed.Crashed {
		t.Skip("no crash at this seed")
	}
	if crashed.WERValid {
		t.Fatal("crashed run must not report valid WER")
	}
	if crashed.WER > full.WER {
		t.Fatalf("truncated run has more CEs than full run: %v > %v", crashed.WER, full.WER)
	}
}

func TestNoSDCsInStandardCampaign(t *testing.T) {
	// Paper Section V-B: no silent data corruptions observed anywhere.
	d := MustNewDevice(Config{Scale: 64})
	for _, temp := range []float64{50, 60, 70} {
		for _, trefp := range []float64{0.618, 2.283} {
			res := run(t, d, testProfile(), RunConfig{TREFP: trefp, TempC: temp, DisableCrash: true})
			if res.SDCCount != 0 {
				t.Fatalf("SDC observed at %v°C/%vs", temp, trefp)
			}
		}
	}
}

func TestRunValidation(t *testing.T) {
	d := MustNewDevice(Config{Scale: 64})
	if _, err := d.Run(testProfile(), RunConfig{TREFP: -1, TempC: 50}); err == nil {
		t.Fatal("negative TREFP accepted")
	}
	if _, err := d.Run(testProfile(), RunConfig{TREFP: 1, TempC: 300}); err == nil {
		t.Fatal("absurd temperature accepted")
	}
	bad := testProfile()
	bad.Regions = nil
	if _, err := d.Run(bad, RunConfig{TREFP: 1, TempC: 50}); err == nil {
		t.Fatal("empty-region profile accepted")
	}
	big := testProfile()
	big.FootprintWords = 1 << 40
	if _, err := d.Run(big, RunConfig{TREFP: 1, TempC: 50}); err == nil {
		t.Fatal("oversized footprint accepted")
	}
}

func TestProfileValidate(t *testing.T) {
	p := testProfile()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := *p
	bad.Regions = []Region{{Name: "x", FootprintFrac: 0.4, AccessFrac: 1,
		ReuseSeconds: 1, RowReuseSeconds: 1, BitOneProb: 0.5}}
	if err := bad.Validate(); err == nil {
		t.Fatal("footprint fractions not summing to 1 accepted")
	}
	bad2 := *p
	bad2.Regions = append([]Region(nil), p.Regions...)
	bad2.Regions[0].BitOneProb = 1.5
	if err := bad2.Validate(); err == nil {
		t.Fatal("invalid BitOneProb accepted")
	}
}

func TestTreuseWeighting(t *testing.T) {
	p := &AccessProfile{
		Name: "w", FootprintWords: 1 << 20,
		Regions: []Region{
			{Name: "a", FootprintFrac: 0.5, AccessFrac: 0.9, ReuseSeconds: 1,
				RowReuseSeconds: 1, BitOneProb: 0.5},
			{Name: "b", FootprintFrac: 0.5, AccessFrac: 0.1, ReuseSeconds: 11,
				RowReuseSeconds: 11, BitOneProb: 0.5},
		},
	}
	if got := p.Treuse(); math.Abs(got-2.0) > 1e-12 {
		t.Fatalf("Treuse = %v, want 2.0 (access-weighted)", got)
	}
}

func TestHigherEntropyMoreErrors(t *testing.T) {
	// The data-coupling channel: a high-entropy (random) data pattern
	// must produce more errors than the same access pattern with
	// low-entropy data (paper Fig. 13).
	d := MustNewDevice(Config{Scale: 8})
	lo := testProfile()
	lo.Name = "unit-entropy" // same name => same placement for both runs
	lo.HDP = 2
	hi := testProfile()
	hi.Name = "unit-entropy"
	hi.HDP = 32
	cfg := RunConfig{TREFP: 2.283, TempC: 60, RecordWER: true}
	wLo := run(t, d, lo, cfg).WER
	wHi := run(t, d, hi, cfg).WER
	if wHi <= wLo {
		t.Fatalf("entropy effect missing: high=%v low=%v", wHi, wLo)
	}
	if wLo > 0 && wHi/wLo > 15 {
		t.Fatalf("entropy effect too strong: %vx", wHi/wLo)
	}
}

func TestDisturbanceIncreasesWithAccessRate(t *testing.T) {
	// Same reuse structure, 8x the traffic: the busier profile must err
	// more (the access-rate channel, paper Fig. 10).
	d := MustNewDevice(Config{Scale: 8})
	slow := syntheticProfile("unit-rate", 2.0, 5e7)
	fast := syntheticProfile("unit-rate", 2.0, 4e8)
	cfg := RunConfig{TREFP: 2.283, TempC: 60, RecordWER: true}
	wSlow := run(t, d, slow, cfg).WER
	wFast := run(t, d, fast, cfg).WER
	if wFast <= wSlow {
		t.Fatalf("disturbance channel missing: fast=%v slow=%v", wFast, wSlow)
	}
}

func TestScaleInvarianceOfWER(t *testing.T) {
	// WER is a rate: its expectation must not depend on the capacity
	// divisor. Compare two scales within generous sampling tolerance.
	cfg := RunConfig{TREFP: 2.283, TempC: 60, RecordWER: true}
	w8 := run(t, MustNewDevice(Config{Scale: 8}), testProfile(), cfg).WER
	w32 := run(t, MustNewDevice(Config{Scale: 32}), testProfile(), cfg).WER
	if w8 == 0 || w32 == 0 {
		t.Skip("no errors at test scale")
	}
	ratio := w8 / w32
	if ratio < 0.4 || ratio > 2.5 {
		t.Fatalf("WER not scale-invariant: scale8=%v scale32=%v", w8, w32)
	}
}

func TestCERecordsWellFormed(t *testing.T) {
	d := MustNewDevice(Config{Scale: 8})
	res := run(t, d, testProfile(), RunConfig{TREFP: 2.283, TempC: 60, RecordWER: true})
	for _, rec := range res.CERecords {
		if rec.Addr.DIMM < 0 || rec.Addr.DIMM >= NumDIMMs ||
			rec.Addr.Bank < 0 || rec.Addr.Bank >= BanksPerRank ||
			rec.Addr.Row < 0 || rec.Addr.Row >= RowsPerBank ||
			rec.Addr.Col < 0 || rec.Addr.Col >= WordsPerRow {
			t.Fatalf("malformed CE address %+v", rec.Addr)
		}
		if rec.Bit < 0 || rec.Bit > 63 {
			t.Fatalf("malformed CE bit %d", rec.Bit)
		}
		if rec.Epoch < 0 || rec.Epoch >= res.Epochs {
			t.Fatalf("malformed CE epoch %d", rec.Epoch)
		}
	}
}

func TestPerDIMMTemperatureGradient(t *testing.T) {
	// The thermal testbed controls each DIMM independently (paper
	// Section IV-A): with one DIMM held 15 °C hotter, its two ranks must
	// err far more than at the uniform baseline, and the others must be
	// unaffected within noise.
	d := MustNewDevice(Config{Scale: 8})
	uniform := run(t, d, testProfile(), RunConfig{TREFP: 2.283, TempC: 50, RecordWER: true})
	temps := [NumDIMMs]float64{50, 65, 50, 50}
	gradient := run(t, d, testProfile(), RunConfig{
		TREFP: 2.283, TempC: 50, DIMMTempC: &temps, RecordWER: true,
	})
	// DIMM1's ranks (flat ids 2 and 3) get hot.
	hotBoost := (gradient.WERByRank[2] + gradient.WERByRank[3]) /
		(uniform.WERByRank[2] + uniform.WERByRank[3] + 1e-15)
	if hotBoost < 5 {
		t.Fatalf("hot DIMM boost = %vx, want large (15°C ~ x30)", hotBoost)
	}
	coldRatio := (gradient.WERByRank[0] + gradient.WERByRank[1] + 1e-15) /
		(uniform.WERByRank[0] + uniform.WERByRank[1] + 1e-15)
	if coldRatio < 0.3 || coldRatio > 3 {
		t.Fatalf("unheated DIMM changed by %vx", coldRatio)
	}
}

func TestPerDIMMTemperatureValidation(t *testing.T) {
	d := MustNewDevice(Config{Scale: 64})
	bad := [NumDIMMs]float64{50, 200, 50, 50}
	if _, err := d.Run(testProfile(), RunConfig{TREFP: 1, TempC: 50, DIMMTempC: &bad}); err == nil {
		t.Fatal("absurd per-DIMM temperature accepted")
	}
}
