package dram

import (
	"testing"

	"repro/internal/engine"
)

// batchJobs builds a campaign-shaped grid over TREFP, temperature and reps
// mixing WER and crash-study runs.
func batchJobs() []BatchJob {
	var jobs []BatchJob
	for _, trefp := range []float64{1.727, 2.283} {
		for _, temp := range []float64{50, 60} {
			for rep := 0; rep < 2; rep++ {
				jobs = append(jobs, BatchJob{
					Profile: testProfile(),
					Config:  RunConfig{TREFP: trefp, TempC: temp, Rep: rep, RecordWER: rep == 0},
				})
			}
		}
	}
	return jobs
}

// TestRunBatchWorkerInvariance verifies a parallel batch is bit-identical
// to the sequential execution of the same jobs, including lazily generated
// weak-cell populations being requested in a scheduling-dependent order.
func TestRunBatchWorkerInvariance(t *testing.T) {
	seqDev := MustNewDevice(Config{Scale: 64})
	seq, err := seqDev.RunBatch(batchJobs(), engine.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	parDev := MustNewDevice(Config{Scale: 64})
	par, err := parDev.RunBatch(batchJobs(), engine.Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := range seq {
		if seq[i].WER != par[i].WER || seq[i].UECount != par[i].UECount ||
			seq[i].CrashEpoch != par[i].CrashEpoch || seq[i].CEWords != par[i].CEWords {
			t.Fatalf("job %d diverged between worker counts", i)
		}
	}
}

// TestRunBatchPropagatesJobErrors verifies an invalid job config surfaces
// with its index and does not poison other jobs' results.
func TestRunBatchPropagatesJobErrors(t *testing.T) {
	d := MustNewDevice(Config{Scale: 64})
	jobs := batchJobs()
	jobs[1].Config.TREFP = -1
	if _, err := d.RunBatch(jobs, engine.Options{Workers: 2}); err == nil {
		t.Fatal("invalid TREFP accepted")
	}
}
