package dram

import (
	"fmt"
	"testing"
)

// syntheticProfile builds a simple streaming-style profile for calibration
// probes: one big swept region plus a small hot region.
func syntheticProfile(name string, rowReuse float64, acts float64) *AccessProfile {
	return &AccessProfile{
		Name:           name,
		Threads:        8,
		FootprintWords: 1 << 30,
		Regions: []Region{
			{Name: "bulk", FootprintFrac: 0.97, AccessFrac: 0.60,
				ReuseSeconds: rowReuse, RowReuseSeconds: rowReuse,
				BitOneProb: 0.5, RewritesPerSec: 1.0 / rowReuse},
			{Name: "hot", FootprintFrac: 0.03, AccessFrac: 0.40,
				ReuseSeconds: 0.02, RowReuseSeconds: 0.005,
				BitOneProb: 0.5, RewritesPerSec: 10},
		},
		DRAMAccessesPerSec:   acts,
		RowActivationsPerSec: acts * 0.3,
		ReadFrac:             0.7,
		HDP:                  16,
		Seed:                 1,
	}
}

// TestCalibrationProbePUE prints crash probabilities at 70 °C across the
// TREFP values of Fig. 9; run with -v to inspect.
func TestCalibrationProbePUE(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration probe")
	}
	d := MustNewDevice(Config{Scale: 16})
	profiles := []*AccessProfile{
		syntheticProfile("probe-stream", 1.5, 3e8),
		syntheticProfile("probe-slow", 6.0, 4e7),
	}
	for _, prof := range profiles {
		for _, trefp := range []float64{1.173, 1.450, 1.727, 2.283} {
			crashes := 0
			const reps = 20
			for rep := 0; rep < reps; rep++ {
				res, err := d.Run(prof, RunConfig{
					TREFP: trefp, VDD: MinVDD, TempC: 70, Rep: rep,
				})
				if err != nil {
					t.Fatal(err)
				}
				if res.Crashed {
					crashes++
				}
			}
			t.Logf("%s TREFP=%v: PUE=%.2f", prof.Name, trefp, float64(crashes)/reps)
		}
		// And at 60C / max TREFP there must be (almost) no UEs.
		crashes := 0
		for rep := 0; rep < 20; rep++ {
			res, _ := d.Run(prof, RunConfig{TREFP: 2.283, VDD: MinVDD, TempC: 60, Rep: rep})
			if res.Crashed {
				crashes++
			}
		}
		t.Logf("%s 60C TREFP=2.283: PUE=%.2f", prof.Name, float64(crashes)/20)
	}
}

// TestCalibrationProbe prints WER magnitudes across the paper's operating
// points; run with -v to inspect. It asserts only broad sanity so it can
// stay in the suite as a smoke test.
func TestCalibrationProbe(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration probe")
	}
	d := MustNewDevice(Config{Scale: 16})
	prof := syntheticProfile("probe-stream", 1.5, 3e8)
	for _, temp := range []float64{50, 60, 70} {
		for _, trefp := range []float64{0.618, 1.173, 1.727, 2.283} {
			res, err := d.Run(prof, RunConfig{
				TREFP: trefp, VDD: MinVDD, TempC: temp,
				RecordWER: true, DisableCrash: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			ue := 0
			if res.UECount > 0 {
				ue = 1
			}
			t.Logf("T=%v TREFP=%v: WER=%.3g UE=%d cells@ceil=%.2fs", temp, trefp, res.WER, ue, 0.0)
			_ = fmt.Sprintf("%v", res)
			if res.WER < 0 {
				t.Fatal("negative WER")
			}
		}
	}
}
