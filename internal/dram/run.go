package dram

import (
	"fmt"
	"math"

	"repro/internal/ecc"
	"repro/internal/stats"
)

// RunConfig describes one characterization experiment: a workload executing
// for DurationSec while the DRAM operates under the given refresh period,
// supply voltage and DIMM temperature (paper Section V protocol: 2-hour
// runs, error log sampled every 10 minutes).
type RunConfig struct {
	TREFP float64 // refresh period in seconds
	VDD   float64 // supply voltage in volts
	TempC float64 // DIMM temperature in °C (uniform across DIMMs)
	// DIMMTempC optionally overrides TempC per DIMM — the thermal
	// testbed has an independent heater and PID loop per module
	// (paper Section IV-A), so gradients across DIMMs are a supported
	// experiment.
	DIMMTempC   *[NumDIMMs]float64
	DurationSec float64 // experiment length; default 7200 s
	EpochSec    float64 // error-log sampling period; default 600 s
	// RecordWER enables per-cell CE simulation. Runs that only need UE
	// outcomes (the PUE campaigns) can disable it: crash probability is
	// determined by the pair population alone.
	RecordWER bool
	// DisableCrash puts the platform in ECC report-only mode: UEs are
	// logged but do not abort the run. The real X-Gene2 crashes on any
	// detected UE (paper Section V-B).
	DisableCrash bool
	// Rep distinguishes repetitions of the same experiment: VRT state
	// and data-placement randomness differ between repetitions of a
	// 2-hour run, which is why the paper repeats PUE experiments 10x.
	Rep int
}

func (c *RunConfig) setDefaults() {
	if c.DurationSec == 0 {
		c.DurationSec = 7200
	}
	if c.EpochSec == 0 {
		c.EpochSec = 600
	}
	if c.VDD == 0 {
		c.VDD = MinVDD
	}
}

// Validate reports configuration errors.
func (c RunConfig) Validate() error {
	c.setDefaults()
	switch {
	case c.TREFP <= 0:
		return fmt.Errorf("dram: TREFP must be positive, got %v", c.TREFP)
	case c.VDD <= 0:
		return fmt.Errorf("dram: VDD must be positive, got %v", c.VDD)
	case c.TempC < 0 || c.TempC > 125:
		return fmt.Errorf("dram: temperature %v°C outside device limits", c.TempC)
	case c.DIMMTempC != nil && (minOf(c.DIMMTempC[:]) < 0 || maxOf(c.DIMMTempC[:]) > 125):
		return fmt.Errorf("dram: per-DIMM temperatures %v outside device limits", *c.DIMMTempC)
	case c.EpochSec <= 0 || c.DurationSec < c.EpochSec:
		return fmt.Errorf("dram: invalid duration/epoch (%v/%v)", c.DurationSec, c.EpochSec)
	}
	return nil
}

// CERecord is one corrected-error location, as SLIMpro reports it.
type CERecord struct {
	Addr  Addr
	Bit   int
	Epoch int
}

// RunResult is the outcome of one characterization run.
type RunResult struct {
	Profile string
	Config  RunConfig
	Epochs  int
	// Crashed is true when a detected UE aborted the run (default
	// platform behaviour).
	Crashed    bool
	CrashEpoch int // epoch of the first UE, -1 if none
	UECount    int // UEs observed (>1 only in report-only mode)
	UERank     int // rank of the first UE, -1 if none
	SDCCount   int // silent corruptions (expected 0; see paper §V-B)

	// WERValid is true when the run completed and RecordWER was set;
	// WER figures below are meaningful only in that case.
	WERValid bool
	// WER is the rate of unique 64-bit words with at least one CE,
	// relative to the application's footprint (paper Eq. 2).
	WER float64
	// WERByRank gives the per-DIMM/rank breakdown (paper Fig. 8), with
	// the footprint share of each rank as the denominator.
	WERByRank [NumRanks]float64
	// WERSeries is the cumulative WER after each epoch (Figs. 2 and 4).
	WERSeries []float64
	// CEWords is the number of unique erroneous words per rank.
	CEWords [NumRanks]int
	// CERecords samples the first error locations (capped) for
	// error-log inspection tools.
	CERecords []CERecord
	// FootprintWords is the WER denominator actually used (scaled).
	FootprintWords uint64
}

// maxCERecordSamples caps the retained per-run error log.
const maxCERecordSamples = 256

// Run executes one characterization experiment of the given workload
// profile on this device.
func (d *Device) Run(profile *AccessProfile, cfg RunConfig) (*RunResult, error) {
	cfg.setDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := profile.Validate(); err != nil {
		return nil, err
	}
	footWords := profile.FootprintWords / uint64(d.scale)
	if footWords == 0 || footWords > d.TotalWords() {
		return nil, fmt.Errorf("dram: footprint %d words exceeds device capacity %d",
			footWords, d.TotalWords())
	}

	epochs := int(cfg.DurationSec / cfg.EpochSec)
	rng := stats.NewRNG(splitmix(d.seed ^ hashString(profile.Name) ^
		math.Float64bits(cfg.TREFP)*3 ^ math.Float64bits(cfg.TempC)*5 ^
		math.Float64bits(cfg.VDD)*7 ^ uint64(cfg.Rep)*0x9E3779B97F4A7C15))

	env := d.newRunEnv(profile, cfg, footWords)

	res := &RunResult{
		Profile:        profile.Name,
		Config:         cfg,
		Epochs:         epochs,
		CrashEpoch:     -1,
		UERank:         -1,
		FootprintWords: footWords,
	}

	// Phase 1: uncorrectable errors from bitline-coupled pairs (and the
	// rare triples). These determine whether and when the run crashes.
	crashEpoch := epochs // sentinel: no crash
	for r := 0; r < NumRanks; r++ {
		for _, pr := range d.pairsFor(r) {
			ep := env.pairManifestEpoch(&pr, r, epochs, rng)
			if ep < 0 {
				continue
			}
			res.UECount++
			if ep < crashEpoch {
				crashEpoch = ep
				res.UERank = r
			}
		}
		for _, tr := range d.triplesFor(r) {
			ep := env.tripleManifestEpoch(&tr, r, epochs, rng)
			if ep < 0 {
				continue
			}
			// Three flipped bits: let the real SECDED decide whether
			// this is a detected UE or silent corruption.
			flips := []int{int(tr.bits[0]), int(tr.bits[1]), int(tr.bits[2])}
			switch ecc.Classify(rng.Uint64(), flips) {
			case ecc.SDC:
				res.SDCCount++
			default:
				res.UECount++
				if ep < crashEpoch {
					crashEpoch = ep
					res.UERank = r
				}
			}
		}
	}
	if res.UECount > 0 {
		res.CrashEpoch = crashEpoch
		if !cfg.DisableCrash {
			res.Crashed = true
		}
	}
	lastEpoch := epochs
	if res.Crashed {
		lastEpoch = crashEpoch // CEs accumulate only until the crash
	}

	// Phase 2: correctable errors from the weak-cell population.
	if cfg.RecordWER {
		epochCounts := make([]int, epochs)
		for r := 0; r < NumRanks; r++ {
			seen := make(map[uint64]bool)
			for _, tier := range d.cellsBelow(r, env.ceiling) {
				for i := range tier {
					c := &tier[i]
					if float64(c.baseRet) >= env.ceiling {
						continue
					}
					ep := env.cellManifestEpoch(c, r, lastEpoch, rng)
					if ep < 0 {
						continue
					}
					if !seen[c.word] {
						seen[c.word] = true
						res.CEWords[r]++
						epochCounts[ep]++
						if len(res.CERecords) < maxCERecordSamples {
							res.CERecords = append(res.CERecords, CERecord{
								Addr:  AddrFromWordIndex(r/RanksPerDIMM, r%RanksPerDIMM, scramble(c.word, d.ranks[r].seed)),
								Bit:   int(c.bit),
								Epoch: ep,
							})
						}
					}
				}
			}
		}
		total := 0
		res.WERSeries = make([]float64, epochs)
		for e := 0; e < epochs; e++ {
			total += epochCounts[e]
			res.WERSeries[e] = float64(total) / float64(footWords)
		}
		res.WER = float64(total) / float64(footWords)
		perRankFoot := float64(footWords) / NumRanks
		for r := 0; r < NumRanks; r++ {
			res.WERByRank[r] = float64(res.CEWords[r]) / perRankFoot
		}
		res.WERValid = !res.Crashed
	}
	return res, nil
}

// runEnv caches the per-run derived quantities shared by all cells.
type runEnv struct {
	d       *Device
	profile *AccessProfile
	cfg     RunConfig
	ceiling float64 // base-retention ceiling relevant to this run
	// retScale is tempFactor * vddFactor * couplingFactor (isolated
	// cells), per DIMM: each module sits at its own testbed setpoint.
	retScale [NumDIMMs]float64
	// retScalePair omits the data-coupling term: pair defects couple
	// cell-to-cell, not through the data lines, so their retention does
	// not depend on the stored pattern's entropy. (Without this, worst-
	// case data patterns would crash the machine at 60 °C, which the
	// paper's campaigns rule out.)
	retScalePair [NumDIMMs]float64
	footFrac     float64
	dist         disturbance
	cumFoot      []float64 // cumulative region footprint fractions
	rerollP      []float64 // per-region per-epoch orientation re-roll probability
	windows      float64   // refresh windows per epoch
}

func (d *Device) newRunEnv(profile *AccessProfile, cfg RunConfig, footWords uint64) *runEnv {
	p := d.params
	entropyNorm := stats.Clamp(profile.HDP/32, 0, 1)
	coupling := 1 - p.CouplingDelta*entropyNorm
	env := &runEnv{
		d:        d,
		profile:  profile,
		cfg:      cfg,
		footFrac: float64(footWords) / float64(d.TotalWords()),
		dist:     profile.disturbanceModel(),
		windows:  cfg.EpochSec / cfg.TREFP,
	}
	minScale := math.Inf(1)
	for dimm := 0; dimm < NumDIMMs; dimm++ {
		base := p.TempFactor(cfg.tempOfDIMM(dimm)) * p.VDDFactor(cfg.VDD)
		env.retScale[dimm] = base * coupling
		env.retScalePair[dimm] = base
		if env.retScale[dimm] < minScale {
			minScale = env.retScale[dimm]
		}
	}
	// Only cells whose scaled retention can fall below TREFP under the
	// strongest disturbance seen this run (on the hottest DIMM) need to
	// be materialized.
	worst := 1 + p.DisturbCoeff*env.dist.hotRate/(env.dist.hotRate+p.ActRateNorm)
	env.ceiling = math.Min(p.GlobalCeiling, cfg.TREFP*worst/minScale)

	env.cumFoot = make([]float64, len(profile.Regions))
	env.rerollP = make([]float64, len(profile.Regions))
	acc := 0.0
	for i, r := range profile.Regions {
		acc += r.FootprintFrac
		env.cumFoot[i] = acc
		env.rerollP[i] = stats.Clamp(r.RewritesPerSec*cfg.EpochSec, 0, 1)
	}
	return env
}

// regionOf maps a hash fraction to a region index.
func (e *runEnv) regionOf(f float64) int {
	for i, c := range e.cumFoot {
		if f < c {
			return i
		}
	}
	return len(e.cumFoot) - 1
}

// leakProbPerEpoch returns the probability that a cell with effective
// retention effRet (seconds) in a region with mean row-activation interval
// rowReuse leaks at least once during one epoch. Auto-refresh recharges the
// cell every TREFP; a workload access to the cell's row also recharges it.
// The cell survives a refresh window only if some access arrives within
// effRet of the window start (memoryless inter-access approximation).
func (e *runEnv) leakProbPerEpoch(effRet, rowReuse float64) float64 {
	if effRet >= e.cfg.TREFP {
		return 0 // auto-refresh is always in time
	}
	q := math.Exp(-effRet / rowReuse) // P(no rescue access in time) per window
	if q <= 1e-12 {
		return 0
	}
	// P(leak in epoch) = 1 - P(survive all windows).
	return 1 - math.Exp(e.windows*math.Log1p(-q))
}

// cellManifestEpoch returns the epoch at which the cell's first error
// manifests, or -1 if it never errs before lastEpoch.
func (e *runEnv) cellManifestEpoch(c *weakCell, rank, lastEpoch int, rng *stats.RNG) int {
	p := e.d.params
	key := splitmix(c.word<<6 | uint64(c.bit) | uint64(rank)<<38 ^ e.profile.Seed)
	if hashFrac(key) >= e.footFrac {
		return -1 // word not in the application's footprint
	}
	key2 := splitmix(key)
	regionIdx := e.regionOf(hashFrac(key2))
	region := &e.profile.Regions[regionIdx]

	// Disturbance tier: neighbours of the hottest rows lose retention.
	key3 := splitmix(key2)
	rate := e.dist.backgroundRate
	if hashFrac(key3) < e.dist.hotFrac {
		rate = e.dist.hotRate
	}
	// Per-cell disturbance sensitivity (uniform) models the geometric
	// spread of cell-to-cell coupling strength; the rate response
	// saturates (row-buffer throttling).
	sens := hashFrac(splitmix(key3))
	disturb := 1 + p.DisturbCoeff*rate/(rate+p.ActRateNorm)*sens

	effRet := float64(c.baseRet) * e.retScale[rank/RanksPerDIMM] / disturb
	pLeak := e.leakProbPerEpoch(effRet, region.RowReuseSeconds)
	if pLeak <= 0 {
		return -1
	}

	pv := region.BitOneProb
	if !c.trueCell {
		pv = 1 - pv
	}
	duty := float64(c.vrtDuty)
	reroll := e.rerollP[regionIdx]

	if reroll < 0.5 {
		// Data effectively static for the whole run: the stored bit is
		// either vulnerable or not.
		if !rng.Bool(pv) {
			return -1
		}
		for ep := 0; ep < lastEpoch; ep++ {
			if rng.Bool(duty * pLeak) {
				return ep
			}
		}
		return -1
	}
	// Data rewritten every epoch: orientation re-rolls each time.
	for ep := 0; ep < lastEpoch; ep++ {
		if rng.Bool(pv * duty * pLeak) {
			return ep
		}
	}
	return -1
}

// pairManifestEpoch returns the epoch at which both bits of the pair have
// leaked (a UE), or -1. Pairs are materialized at full scale, so no
// footprint-fraction subsampling is applied beyond the paper's own
// footprint residency (PairBudget is defined footprint-resident).
func (e *runEnv) pairManifestEpoch(pr *weakPair, rank, epochs int, rng *stats.RNG) int {
	p := e.d.params
	key := splitmix(pr.word<<7 | uint64(pr.bitA) | uint64(rank)<<39 ^ e.profile.Seed)
	var (
		rowReuse float64
		pOne     float64
		reroll   float64
	)
	if pr.kernel {
		// Kernel/OS pages sit outside the workload's access pattern:
		// no implicit refresh, kernel data statistics, slow rewrite.
		rowReuse = 1e9
		pOne = p.KernelBitOneProb
		reroll = stats.Clamp(p.KernelRewritesPerSec*e.cfg.EpochSec, 0, 1)
	} else {
		regionIdx := e.regionOf(hashFrac(key))
		region := &e.profile.Regions[regionIdx]
		rowReuse = region.RowReuseSeconds
		pOne = region.BitOneProb
		reroll = e.rerollP[regionIdx]
	}

	// Pairs are coupling defects: the *aggregate* neighbour-row activity
	// of the whole run degrades them (every row is eventually hammered by
	// a high-traffic workload), and the effect saturates (the row buffer
	// throttles activation bursts). This makes the workload's memory
	// access rate the dominant driver of PUE (Fig. 9a / Fig. 10).
	disturb := 1 + p.PairDisturbCoeff*e.dist.backgroundRate/pairRateNorm
	if disturb > maxPairDisturb {
		disturb = maxPairDisturb
	}

	effRet := float64(pr.baseRet) * e.retScalePair[rank/RanksPerDIMM] / disturb
	pLeak := e.leakProbPerEpoch(effRet, rowReuse)
	if pLeak <= 0 {
		return -1
	}

	pvA := pOne
	if !pr.trueA {
		pvA = 1 - pvA
	}
	pvB := pOne
	if !pr.trueB {
		pvB = 1 - pvB
	}
	duty := float64(pr.vrtDuty)

	if reroll < 0.5 {
		if !rng.Bool(pvA * pvB) {
			return -1
		}
		for ep := 0; ep < epochs; ep++ {
			if rng.Bool(duty * pLeak) {
				return ep
			}
		}
		return -1
	}
	for ep := 0; ep < epochs; ep++ {
		if rng.Bool(pvA * pvB * duty * pLeak) {
			return ep
		}
	}
	return -1
}

// tripleManifestEpoch is the 3-cell analogue of pairManifestEpoch.
func (e *runEnv) tripleManifestEpoch(tr *weakTriple, rank, epochs int, rng *stats.RNG) int {
	key := splitmix(tr.word<<8 | uint64(tr.bits[0]) | uint64(rank)<<40 ^ e.profile.Seed)
	regionIdx := e.regionOf(hashFrac(key))
	region := &e.profile.Regions[regionIdx]
	effRet := float64(tr.baseRet) * e.retScalePair[rank/RanksPerDIMM]
	pLeak := e.leakProbPerEpoch(effRet, region.RowReuseSeconds)
	if pLeak <= 0 {
		return -1
	}
	// Three-way vulnerability: all bits must store leak-prone values.
	pv := 0.125
	for ep := 0; ep < epochs; ep++ {
		if rng.Bool(pv * pLeak) {
			return ep
		}
	}
	return -1
}

// tempOfDIMM returns the temperature of DIMM d under the config.
func (c RunConfig) tempOfDIMM(d int) float64 {
	if c.DIMMTempC != nil {
		return c.DIMMTempC[d]
	}
	return c.TempC
}

func minOf(xs []float64) float64 {
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

func maxOf(xs []float64) float64 {
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// maxPairDisturb caps the retention degradation of coupled pairs under
// neighbour-row hammering; pairRateNorm is the pair response's rate scale
// (pairs keep the pre-saturation linear response of the original model).
const (
	maxPairDisturb = 1.6
	pairRateNorm   = 2000
)

// hashString folds a string into a 64-bit seed (FNV-1a).
func hashString(s string) uint64 {
	h := uint64(0xcbf29ce484222325)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 0x100000001b3
	}
	return h
}
