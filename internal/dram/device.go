package dram

import (
	"fmt"
	"sync"
)

// Device is one simulated memory subsystem: 4 DIMMs / 8 ranks with fixed,
// device-specific weak-cell populations. Two Devices built from the same
// seed are physically identical parts; different seeds model different
// physical servers (DIMM-to-DIMM variation beyond the rank densities).
//
// A Device is safe for concurrent Run calls: population generation is
// guarded by a mutex and runs only read the populations.
type Device struct {
	params Params
	seed   uint64
	scale  int

	mu    sync.Mutex
	ranks [NumRanks]*rankState
	pairs [NumRanks][]weakPair
	trip  [NumRanks][]weakTriple
}

// Config configures device construction.
type Config struct {
	// Seed selects the physical part. The default (0) is the reference
	// server characterized in all paper reproductions.
	Seed uint64
	// Scale divides the simulated capacity: a Scale of n simulates
	// 1/n-th of every rank (and of the application footprint). WER is a
	// *rate*, so its expectation is scale-invariant; larger scales only
	// increase sampling noise. UE pairs are always materialized in full,
	// so PUE is calibrated at every scale. Scale 1 is the full 32 GiB
	// server; tests use large scales for speed.
	Scale int
	// Params overrides the physics; zero value means DefaultParams.
	Params *Params
}

// NewDevice builds a device. It returns an error for invalid configuration.
func NewDevice(cfg Config) (*Device, error) {
	p := DefaultParams()
	if cfg.Params != nil {
		p = *cfg.Params
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	scale := cfg.Scale
	if scale == 0 {
		scale = 1
	}
	if scale < 0 || WordsPerRank/scale < WordsPerRow {
		return nil, fmt.Errorf("dram: invalid scale %d", scale)
	}
	d := &Device{params: p, seed: cfg.Seed, scale: scale}
	for r := 0; r < NumRanks; r++ {
		d.ranks[r] = &rankState{
			rankID: r,
			seed:   splitmix(cfg.Seed ^ uint64(r+1)*0xA24BAED4963EE407),
		}
	}
	return d, nil
}

// MustNewDevice is NewDevice for known-good configs; it panics on error.
func MustNewDevice(cfg Config) *Device {
	d, err := NewDevice(cfg)
	if err != nil {
		panic(err)
	}
	return d
}

// Params returns the physics parameter set of the device.
func (d *Device) Params() Params { return d.params }

// Scale returns the capacity divisor.
func (d *Device) Scale() int { return d.scale }

// RankWords returns the simulated 64-bit-word capacity of one rank.
func (d *Device) RankWords() uint64 { return WordsPerRank / uint64(d.scale) }

// TotalWords returns the simulated capacity of the whole subsystem.
func (d *Device) TotalWords() uint64 { return d.RankWords() * NumRanks }

// cellsBelow returns the weak cells of rank r with base retention below
// ceiling, materializing population tiers on demand.
func (d *Device) cellsBelow(r int, ceiling float64) [][]weakCell {
	d.mu.Lock()
	defer d.mu.Unlock()
	rs := d.ranks[r]
	rs.ensureTiers(d, ceiling)
	out := make([][]weakCell, 0, len(rs.tiers))
	for i, tier := range rs.tiers {
		if tierBounds[i] >= ceiling {
			break
		}
		out = append(out, tier)
	}
	return out
}

// pairsFor returns the UE-pair population of rank r.
func (d *Device) pairsFor(r int) []weakPair {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.pairs[r] == nil {
		d.pairs[r] = d.generatePairs(d.ranks[r])
		if d.pairs[r] == nil {
			d.pairs[r] = []weakPair{}
		}
	}
	return d.pairs[r]
}

// triplesFor returns the SDC-candidate population of rank r.
func (d *Device) triplesFor(r int) []weakTriple {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.trip[r] == nil {
		d.trip[r] = d.generateTriples(d.ranks[r])
		if d.trip[r] == nil {
			d.trip[r] = []weakTriple{}
		}
	}
	return d.trip[r]
}

// WeakCellCount reports the number of materialized weak cells with base
// retention below ceiling in the given rank; used by inspection tools and
// tests.
func (d *Device) WeakCellCount(rank int, ceiling float64) int {
	n := 0
	for _, tier := range d.cellsBelow(rank, ceiling) {
		for _, c := range tier {
			if float64(c.baseRet) < ceiling {
				n++
			}
		}
	}
	return n
}

// splitmix is the 64-bit finalizer used for all address/placement hashing.
func splitmix(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// hashFrac maps a hash to a uniform fraction in [0,1).
func hashFrac(h uint64) float64 { return float64(h>>11) / (1 << 53) }
