package dram

// Params collects every physical constant of the reliability model. The
// default values are calibrated so the simulated campaigns land on the
// paper's reported orders of magnitude and orderings (each field's comment
// names the observation it reproduces; EXPERIMENTS.md maps them to the
// figures); they can be overridden to model other parts.
type Params struct {
	// RetentionK and RetentionGamma parameterize the weak-cell retention
	// tail: the fraction of bits whose retention time (at the 50 °C
	// reference temperature and nominal VDD) is below t seconds is
	//
	//	F(t) = RetentionK * t^RetentionGamma.
	//
	// Gamma ≈ 5.2 reproduces Fig. 7's growth: scaling TREFP by 3.7x
	// (0.618 s -> 2.283 s) raises WER by roughly three orders of
	// magnitude at fixed temperature.
	RetentionK     float64
	RetentionGamma float64

	// RetentionHalvingC is the temperature increase (°C) that halves a
	// cell's retention time. The retention literature the paper builds
	// on (Hamamoto et al., Liu et al.) reports retention halving roughly
	// every 10 °C; 10.8 °C reproduces the ~28x WER jump from 50 °C to
	// 60 °C in Fig. 7.
	RetentionHalvingC float64

	// ReferenceTempC is the temperature at which base retention times
	// are expressed.
	ReferenceTempC float64

	// VDDExponent scales retention with supply voltage:
	// retention *= (VDD/NominalVDD)^VDDExponent. A small exponent makes
	// the 1.5 V -> 1.428 V reduction nearly negligible, matching the
	// paper's Section V finding.
	VDDExponent float64

	// GlobalCeiling is the largest base retention time (seconds at the
	// reference temperature) for which weak cells are materialized. It
	// must exceed the largest effective refresh threshold any experiment
	// can reach (2.283 s at 70 °C with maximum disturbance).
	GlobalCeiling float64

	// RankDensity is the per-rank weak-cell density multiplier, indexed
	// by flat rank ID. The ~188x spread between DIMM2/rank0 and
	// DIMM3/rank1 matches Fig. 8; the ordering matches the paper's
	// DIMM-to-DIMM variation discussion.
	RankDensity [NumRanks]float64

	// TrueCellProb is the fraction of cells that are true cells (charged
	// state stores a 1, so a stored 1 leaks to 0). The remainder are
	// anti cells. The asymmetry — real parts are predominantly true-cell
	// arrays with anti-cell regions, one of the DIMM-internal design
	// traits the paper lists — makes data patterns matter: writing more
	// 1s exposes more cells.
	TrueCellProb float64

	// DisturbCoeff is the maximal fractional retention-time reduction
	// from neighbour-row activity: eff = base / (1 + DisturbCoeff *
	// r/(r+ActRateNorm) * s) with per-cell sensitivity s. The response
	// saturates with the activation rate r (the row buffer and MCU
	// queues throttle hammering), which keeps the serial/parallel WER
	// gap of the same kernel modest (paper Fig. 7: ~30 %) while still
	// ordering workloads by their memory access rate (Fig. 10).
	DisturbCoeff float64

	// ActRateNorm is the activation rate (acts/s) at which the
	// disturbance response reaches half of DisturbCoeff.
	ActRateNorm float64

	// CouplingDelta is the maximal fractional retention reduction caused
	// by worst-case (high-entropy) data patterns through bitline
	// coupling. With the steep retention tail, a ~20 % retention
	// reduction yields the ~2.9-3.5x WER gap between the random
	// data-pattern micro-benchmark and real workloads (Figs. 2 and 13).
	CouplingDelta float64

	// VRTFraction is the fraction of weak cells subject to variable
	// retention time: they toggle between a strong and a weak state with
	// a random duty cycle, which spreads error manifestation over the
	// 2-hour run (the saturating curves of Figs. 2 and 4).
	VRTFraction float64

	// PairBudget is the expected number of footprint-resident bitline-
	// coupled weak-cell pairs across the whole 8 GiB allocation. Pairs
	// produce 2-bit words, hence UEs.
	PairBudget float64

	// PairRetMedian/PairRetSigma give the lognormal distribution of pair
	// retention times (seconds at reference conditions). The narrow band
	// creates the cliff the paper reports: no UEs at 50/60 °C at any
	// TREFP, crashes from 1.45 s upward at 70 °C (Fig. 9a).
	PairRetMedian float64
	PairRetSigma  float64

	// PairDisturbCoeff is the disturbance sensitivity of coupled pairs.
	// Pairs are coupling defects, so neighbour-row activity degrades them
	// far more strongly than isolated cells; this makes the workload's
	// memory access rate the main driver of PUE differences (Fig. 9a:
	// parallel compute benchmarks crash, single-threaded ones mostly do
	// not; Fig. 10: rs(PUE, access rate) = 0.43).
	PairDisturbCoeff float64

	// PairRankWeight distributes the pairs over ranks; it matches
	// Fig. 9b: DIMM2/rank0 takes 0.67 of UEs, DIMM0/rank1 0.24,
	// DIMM3/rank1 none.
	PairRankWeight [NumRanks]float64

	// KernelPairBudget is the expected number of pairs resident in
	// kernel/OS memory. Kernel pages are outside the workload's access
	// pattern (auto-refresh only), so once TREFP and temperature are
	// high enough they crash the system regardless of the workload —
	// the paper's "all benchmarks trigger UEs in 100 % of experiments"
	// at 2.283 s / 70 °C.
	KernelPairBudget float64

	// KernelBitOneProb is the bit-value distribution of kernel memory
	// (mostly zeroed pages and small integers).
	KernelBitOneProb float64

	// KernelRewritesPerSec is the per-word rewrite rate of kernel pages.
	KernelRewritesPerSec float64

	// TripleRate is the expected number of 3-bit-coupled words per full
	// footprint. The paper observed no SDCs; a tiny non-zero rate keeps
	// the mechanism testable while making SDCs (which additionally
	// require syndrome aliasing) vanishingly rare.
	TripleRate float64

	// TripleRetMedian/TripleRetSigma distribute triple retention.
	TripleRetMedian float64
	TripleRetSigma  float64
}

// DefaultParams returns the calibrated parameter set used for all paper
// reproductions.
func DefaultParams() Params {
	return Params{
		RetentionK:        3.0e-11,
		RetentionGamma:    5.2,
		RetentionHalvingC: 10.8,
		ReferenceTempC:    50,
		VDDExponent:       1.5,
		GlobalCeiling:     14.0,
		RankDensity: [NumRanks]float64{
			1.00,   // DIMM0/rank0
			2.20,   // DIMM0/rank1 (UE-prone)
			0.60,   // DIMM1/rank0
			0.35,   // DIMM1/rank1
			3.50,   // DIMM2/rank0 (weakest rank, most UEs)
			0.80,   // DIMM2/rank1
			0.15,   // DIMM3/rank0
			0.0186, // DIMM3/rank1 (strongest: 188x below DIMM2/rank0)
		},
		TrueCellProb:     0.85,
		DisturbCoeff:     0.35,
		ActRateNorm:      100,
		CouplingDelta:    0.36,
		VRTFraction:      0.45,
		PairBudget:       60,
		PairRetMedian:    9.6,
		PairRetSigma:     0.14,
		PairDisturbCoeff: 2.0,
		PairRankWeight: [NumRanks]float64{
			0.02, // DIMM0/rank0
			0.24, // DIMM0/rank1
			0.01, // DIMM1/rank0
			0.01, // DIMM1/rank1
			0.67, // DIMM2/rank0
			0.03, // DIMM2/rank1
			0.02, // DIMM3/rank0
			0.00, // DIMM3/rank1
		},
		KernelPairBudget:     40,
		KernelBitOneProb:     0.50,
		KernelRewritesPerSec: 1.0 / 900,
		TripleRate:           0.05,
		TripleRetMedian:      10.5,
		TripleRetSigma:       0.18,
	}
}

// Validate reports whether the parameter set is physically meaningful.
func (p Params) Validate() error {
	switch {
	case p.RetentionK <= 0:
		return errParam("RetentionK must be positive")
	case p.RetentionGamma <= 0:
		return errParam("RetentionGamma must be positive")
	case p.RetentionHalvingC <= 0:
		return errParam("RetentionHalvingC must be positive")
	case p.GlobalCeiling <= MaxTREFP:
		return errParam("GlobalCeiling must exceed the maximum TREFP")
	case p.VRTFraction < 0 || p.VRTFraction > 1:
		return errParam("VRTFraction must be in [0,1]")
	case p.TrueCellProb < 0 || p.TrueCellProb > 1:
		return errParam("TrueCellProb must be in [0,1]")
	case p.PairRetMedian <= 0 || p.PairRetSigma <= 0:
		return errParam("pair retention distribution must be positive")
	case p.TripleRetMedian <= 0 || p.TripleRetSigma <= 0:
		return errParam("triple retention distribution must be positive")
	case p.KernelBitOneProb < 0 || p.KernelBitOneProb > 1:
		return errParam("KernelBitOneProb must be in [0,1]")
	}
	for r, d := range p.RankDensity {
		if d < 0 {
			return errParam("RankDensity must be non-negative: rank " + RankName(r))
		}
	}
	for r, w := range p.PairRankWeight {
		if w < 0 {
			return errParam("PairRankWeight must be non-negative: rank " + RankName(r))
		}
	}
	return nil
}

type errParam string

func (e errParam) Error() string { return "dram: invalid params: " + string(e) }
