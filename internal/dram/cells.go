package dram

import (
	"math"

	"repro/internal/stats"
)

// weakCell is one bit whose retention time falls below the global ceiling.
// Populations of weakCells are the only per-cell state the simulator
// materializes; healthy cells (the overwhelming majority) never err under
// any experiment and are represented implicitly.
type weakCell struct {
	word     uint64  // in-rank word index, scaled address space
	bit      uint8   // bit position 0..63 within the 64-bit word
	trueCell bool    // true-cell leaks stored 1s; anti-cell leaks stored 0s
	vrtDuty  float32 // fraction of time the cell is in its weak state (1 = stable weak)
	baseRet  float32 // retention seconds at reference temperature, nominal VDD
}

// weakPair is a bitline-coupled pair of weak cells sharing one 64-bit word;
// when both leak within a run the word carries a double-bit error, which
// SECDED detects but cannot correct (UE -> system crash).
type weakPair struct {
	word    uint64
	bitA    uint8
	bitB    uint8
	trueA   bool
	trueB   bool
	kernel  bool // resident in kernel/OS memory rather than the workload footprint
	vrtDuty float32
	baseRet float32 // pair retention: both cells leak once exceeded
}

// weakTriple is a rare 3-cell coupling; with three flipped bits SECDED may
// miscorrect (SDC). The paper observed none; the simulator keeps the
// mechanism so that "no SDC" is a measured outcome, not an assumption.
type weakTriple struct {
	word    uint64
	bits    [3]uint8
	baseRet float32
}

// tierBounds are the fixed retention boundaries (seconds at reference
// conditions) at which weak-cell populations are generated. Generating in
// fixed tiers makes the populations independent of the order in which
// experiments request them: tier i is always drawn from the same seed.
var tierBounds = []float64{0, 0.35, 0.7, 1.4, 2.8, 5.6, 9.0, 14.0}

// rankState holds the materialized weak-cell population of one rank.
type rankState struct {
	rankID int
	seed   uint64
	tiers  [][]weakCell // tiers[i] covers (tierBounds[i], tierBounds[i+1]]
}

// ensureTiers materializes all tiers whose lower bound is below ceiling.
func (r *rankState) ensureTiers(d *Device, ceiling float64) {
	for i := 0; i+1 < len(tierBounds); i++ {
		if tierBounds[i] >= ceiling {
			break
		}
		if i < len(r.tiers) {
			continue
		}
		r.tiers = append(r.tiers, d.generateTier(r, i))
	}
}

// generateTier draws the weak cells of one retention tier. The draw is
// seeded by (device seed, rank, tier) only, so populations are identical
// across runs and independent of experiment order.
func (d *Device) generateTier(r *rankState, tier int) []weakCell {
	lo, hi := tierBounds[tier], tierBounds[tier+1]
	p := d.params
	rng := stats.NewRNG(r.seed ^ (uint64(tier)+1)*0x9E3779B97F4A7C15)
	bits := float64(d.RankWords()) * 64
	mean := bits * p.RankDensity[r.rankID] * (p.WeakBitFraction(hi) - p.WeakBitFraction(lo))
	n := rng.Poisson(mean)
	cells := make([]weakCell, 0, n)
	loG := math.Pow(lo, p.RetentionGamma)
	hiG := math.Pow(hi, p.RetentionGamma)
	for i := 0; i < n; i++ {
		// Conditional power-law draw within (lo, hi].
		u := rng.Float64Open()
		ret := math.Pow(loG+u*(hiG-loG), 1/p.RetentionGamma)
		duty := float32(1.0)
		if rng.Bool(p.VRTFraction) {
			duty = float32(0.1 + 0.8*rng.Float64())
		}
		cells = append(cells, weakCell{
			word:     uint64(rng.Intn(int(d.RankWords()))),
			bit:      uint8(rng.Intn(64)),
			trueCell: rng.Bool(p.TrueCellProb),
			vrtDuty:  duty,
			baseRet:  float32(ret),
		})
	}
	return cells
}

// generatePairs draws the rank's bitline-coupled pair population once.
// Pair counts follow the paper's Fig. 9b rank distribution and are *not*
// scaled down with the device's capacity divisor: pairs are few enough to
// materialize in full, which keeps UE probabilities calibrated at any
// simulation scale.
func (d *Device) generatePairs(r *rankState) []weakPair {
	p := d.params
	rng := stats.NewRNG(r.seed ^ 0xC2B2AE3D27D4EB4F)
	nApp := rng.Poisson(p.PairBudget * p.PairRankWeight[r.rankID])
	nKern := rng.Poisson(p.KernelPairBudget * p.PairRankWeight[r.rankID])
	pairs := make([]weakPair, 0, nApp+nKern)
	for i := 0; i < nApp+nKern; i++ {
		u := rng.Float64Open()
		ret := p.PairRetentionQuantile(u)
		bitA := uint8(rng.Intn(64))
		bitB := uint8(rng.Intn(63))
		if bitB >= bitA {
			bitB++
		}
		// Coupled pairs are inherently intermittent defects: their leak
		// windows toggle like strong VRT cells, which is what spreads
		// crash outcomes across repetitions of the same experiment.
		duty := float32(0.05 + 0.3*rng.Float64())
		pairs = append(pairs, weakPair{
			word:    uint64(rng.Intn(int(d.RankWords()))),
			bitA:    bitA,
			bitB:    bitB,
			trueA:   rng.Bool(p.TrueCellProb),
			trueB:   rng.Bool(p.TrueCellProb),
			kernel:  i >= nApp,
			vrtDuty: duty,
			baseRet: float32(ret),
		})
	}
	return pairs
}

// generateTriples draws the (vanishingly rare) 3-cell couplings.
func (d *Device) generateTriples(r *rankState) []weakTriple {
	p := d.params
	rng := stats.NewRNG(r.seed ^ 0x165667B19E3779F9)
	mean := p.TripleRate * p.PairRankWeight[r.rankID]
	n := rng.Poisson(mean)
	triples := make([]weakTriple, 0, n)
	for i := 0; i < n; i++ {
		u := rng.Float64Open()
		ret := p.TripleRetentionQuantile(u)
		perm := rng.Perm(64)
		triples = append(triples, weakTriple{
			word:    uint64(rng.Intn(int(d.RankWords()))),
			bits:    [3]uint8{uint8(perm[0]), uint8(perm[1]), uint8(perm[2])},
			baseRet: float32(ret),
		})
	}
	return triples
}
