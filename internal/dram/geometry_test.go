package dram

import (
	"testing"
	"testing/quick"
)

func TestAddrWordIndexRoundTrip(t *testing.T) {
	f := func(rawBank, rawRow, rawCol uint32) bool {
		a := Addr{
			DIMM: 2, Rank: 1,
			Bank: int(rawBank % BanksPerRank),
			Row:  int(rawRow % RowsPerBank),
			Col:  int(rawCol % WordsPerRow),
		}
		back := AddrFromWordIndex(a.DIMM, a.Rank, a.WordIndex())
		return back == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWordIndexBounds(t *testing.T) {
	last := Addr{Bank: BanksPerRank - 1, Row: RowsPerBank - 1, Col: WordsPerRow - 1}
	if got := last.WordIndex(); got != WordsPerRank-1 {
		t.Fatalf("last word index = %d, want %d", got, uint64(WordsPerRank-1))
	}
	first := Addr{}
	if first.WordIndex() != 0 {
		t.Fatal("first word index != 0")
	}
}

func TestRankID(t *testing.T) {
	cases := []struct {
		dimm, rank, want int
	}{{0, 0, 0}, {0, 1, 1}, {1, 0, 2}, {3, 1, 7}}
	for _, c := range cases {
		a := Addr{DIMM: c.dimm, Rank: c.rank}
		if a.RankID() != c.want {
			t.Fatalf("RankID(%d,%d) = %d, want %d", c.dimm, c.rank, a.RankID(), c.want)
		}
	}
}

func TestRankName(t *testing.T) {
	if got := RankName(4); got != "DIMM2/rank0" {
		t.Fatalf("RankName(4) = %q", got)
	}
	if got := RankName(7); got != "DIMM3/rank1" {
		t.Fatalf("RankName(7) = %q", got)
	}
}

func TestAddrString(t *testing.T) {
	a := Addr{DIMM: 1, Rank: 0, Bank: 3, Row: 42, Col: 7}
	want := "DIMM1/rank0/bank3/row42/col7"
	if a.String() != want {
		t.Fatalf("String = %q, want %q", a.String(), want)
	}
}

func TestScrambleBijective(t *testing.T) {
	// The scrambler must be injective over a sample window (it is a
	// bijection over the full 2^29 space by construction; verify no
	// collisions on a large sample).
	const n = 1 << 16
	seen := make(map[uint64]bool, n)
	for i := uint64(0); i < n; i++ {
		s := scramble(i, 0xabcdef)
		if s >= WordsPerRank {
			t.Fatalf("scramble out of range: %d", s)
		}
		if seen[s] {
			t.Fatalf("scramble collision at input %d", i)
		}
		seen[s] = true
	}
}

func TestScrambleSpreadsNeighbours(t *testing.T) {
	// Consecutive inputs should not map to consecutive outputs (that is
	// the point of address scrambling).
	adjacent := 0
	for i := uint64(0); i < 1000; i++ {
		a, b := scramble(i, 7), scramble(i+1, 7)
		d := int64(a) - int64(b)
		if d < 0 {
			d = -d
		}
		if d == 1 {
			adjacent++
		}
	}
	if adjacent > 5 {
		t.Fatalf("scramble keeps %d/1000 neighbours adjacent", adjacent)
	}
}

func TestGeometryConstants(t *testing.T) {
	if WordsPerRank != 1<<29 {
		t.Fatalf("WordsPerRank = %d, want 2^29 (4 GiB per rank)", uint64(WordsPerRank))
	}
	if NumRanks != 8 {
		t.Fatalf("NumRanks = %d", NumRanks)
	}
}
