// Package dram implements a mechanistic reliability simulator for the
// server-grade DDR3 memory subsystem characterized in the paper: 4 Micron
// 8 GB DIMMs (one per memory-controller channel), two ranks per DIMM, 18
// x8 chips per DIMM (16 data + 2 ECC).
//
// The simulator does not store cell contents; it models the *error physics*
// the paper attributes its measurements to:
//
//   - a lognormal-tail population of weak cells per rank whose retention
//     times fall below the relaxed refresh period (TREFP);
//   - Arrhenius-style temperature acceleration of charge leakage;
//   - true-/anti-cell orientation, making vulnerability data-dependent;
//   - variable retention time (VRT) cells that toggle between strong and
//     weak states over minutes;
//   - cell-to-cell disturbance from neighbour-row activations (the
//     row-hammer mechanism), which couples the workload's memory access
//     rate to the error rate;
//   - implicit refresh by reads/writes, which couples the workload's DRAM
//     reuse time (Treuse) to the error rate;
//   - bitline-coupled weak-cell *pairs* concentrated in specific ranks,
//     which produce multi-bit words and therefore uncorrectable errors.
//
// Error words are classified with the real SECDED code in internal/ecc.
package dram

import "fmt"

// Organization of the simulated memory subsystem (matches the X-Gene2 setup
// in the paper: 4 DDR3 channels, 1 DIMM each, 2 ranks per DIMM).
const (
	NumDIMMs     = 4
	RanksPerDIMM = 2
	NumRanks     = NumDIMMs * RanksPerDIMM
	BanksPerRank = 8
	// RowsPerBank and WordsPerRow describe a rank built from 4 Gb x8
	// parts: 64Ki rows per bank, 8 KiB per row = 1024 64-bit words.
	RowsPerBank = 1 << 16
	WordsPerRow = 1 << 10
	// WordsPerRank is the addressable capacity of one rank in 64-bit
	// words: 8 banks x 64Ki rows x 1Ki words = 2^29 words (4 GiB).
	WordsPerRank = BanksPerRank * RowsPerBank * WordsPerRow
)

// Nominal DDR3 operating parameters (paper Section II-B and IV-B).
const (
	NominalTREFP = 0.064 // seconds (64 ms)
	MaxTREFP     = 2.283 // seconds, X-Gene2 maximum
	NominalVDD   = 1.500 // volts
	MinVDD       = 1.428 // volts, lowest operational point found in the paper
)

// Addr identifies one 64-bit word in the memory subsystem.
type Addr struct {
	DIMM int // 0..3 (= channel/MCU index: one DIMM per channel)
	Rank int // 0..1 within the DIMM
	Bank int // 0..7
	Row  int // 0..RowsPerBank-1
	Col  int // 0..WordsPerRow-1, in 64-bit word units
}

// RankID returns the flat rank index 0..7 used throughout the campaign
// reports ("DIMMd/rankr" in the paper's figures).
func (a Addr) RankID() int { return a.DIMM*RanksPerDIMM + a.Rank }

// String renders the address the way SLIMpro reports error locations.
func (a Addr) String() string {
	return fmt.Sprintf("DIMM%d/rank%d/bank%d/row%d/col%d", a.DIMM, a.Rank, a.Bank, a.Row, a.Col)
}

// RankName returns the paper's label for a flat rank index.
func RankName(rankID int) string {
	return fmt.Sprintf("DIMM%d/rank%d", rankID/RanksPerDIMM, rankID%RanksPerDIMM)
}

// WordIndex packs the word coordinates within a rank into a linear index.
func (a Addr) WordIndex() uint64 {
	return (uint64(a.Bank)*RowsPerBank+uint64(a.Row))*WordsPerRow + uint64(a.Col)
}

// AddrFromWordIndex reconstructs the in-rank coordinates of a linear index.
func AddrFromWordIndex(dimm, rank int, idx uint64) Addr {
	col := int(idx % WordsPerRow)
	idx /= WordsPerRow
	row := int(idx % RowsPerBank)
	bank := int(idx / RowsPerBank)
	return Addr{DIMM: dimm, Rank: rank, Bank: bank, Row: row, Col: col}
}

// scramble implements the vendor-internal address scrambling the paper cites
// as one source of DIMM-internal variation: consecutive physical word
// indices map to non-adjacent cell locations. It is a bijective mix of the
// in-rank word index (a xorshift-multiply permutation over 2^29).
func scramble(idx uint64, key uint64) uint64 {
	const mask = WordsPerRank - 1
	x := (idx ^ key) & mask
	x = (x*0x2545F4914F6CDD1D + key) & mask
	x ^= x >> 13
	x = (x * 0x9E3779B97F4A7C15) & mask
	x ^= x >> 17
	return x & mask
}
