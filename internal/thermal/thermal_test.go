package thermal

import (
	"math"
	"testing"
)

func TestPlantRelaxesToAmbient(t *testing.T) {
	p := NewPlant(25, 1)
	for i := 0; i < 1000; i++ {
		p.Step(0, 1)
	}
	if math.Abs(p.TempC()-25) > 1 {
		t.Fatalf("unpowered plant at %v°C, want ~25", p.TempC())
	}
}

func TestPlantSteadyStateGain(t *testing.T) {
	p := NewPlant(25, 2)
	for i := 0; i < 2000; i++ {
		p.Step(10, 1)
	}
	want := 25 + 3.2*10
	if math.Abs(p.TempC()-want) > 2 {
		t.Fatalf("steady state %v°C, want ~%v", p.TempC(), want)
	}
}

func TestPlantPowerClamped(t *testing.T) {
	p := NewPlant(25, 3)
	for i := 0; i < 2000; i++ {
		p.Step(10000, 1) // absurd power request
	}
	maxReachable := 25 + 3.2*p.MaxPowerW
	if p.TempC() > maxReachable+2 {
		t.Fatalf("plant exceeded power-limited maximum: %v", p.TempC())
	}
}

func TestPIDConvergesToSetpoints(t *testing.T) {
	// The paper's three campaign temperatures must all be reachable.
	for _, sp := range []float64{50, 60, 70} {
		tb := NewTestbed(25, 7)
		settle, err := tb.SettleAll(sp, 0.5, 3600)
		if err != nil {
			t.Fatalf("setpoint %v: %v", sp, err)
		}
		if settle <= 0 {
			t.Fatalf("setpoint %v: zero settle time", sp)
		}
		for d := 0; d < 4; d++ {
			if math.Abs(tb.TempC(d)-sp) > 1 {
				t.Fatalf("DIMM%d at %v°C after settling to %v", d, tb.TempC(d), sp)
			}
		}
	}
}

func TestPIDUnreachableSetpointErrors(t *testing.T) {
	tb := NewTestbed(25, 9)
	// 25 + 3.2*25W = 105 °C max; 200 °C is beyond the heater.
	if _, err := tb.SettleAll(200, 0.5, 600); err == nil {
		t.Fatal("unreachable setpoint reported success")
	}
}

func TestPIDAntiWindup(t *testing.T) {
	c := NewPID(25)
	// Long saturation period must not wind the integral up indefinitely.
	for i := 0; i < 10000; i++ {
		c.Update(500, 25, 1)
	}
	if c.integral > 25/c.Ki+1 {
		t.Fatalf("integral wound up to %v", c.integral)
	}
}

func TestPIDOutputBounded(t *testing.T) {
	c := NewPID(25)
	for _, m := range []float64{-100, 0, 50, 500} {
		out := c.Update(70, m, 1)
		if out < 0 || out > 25 {
			t.Fatalf("PID output %v outside actuator range", out)
		}
	}
}

func TestSettleEachIndependentSetpoints(t *testing.T) {
	tb := NewTestbed(25, 11)
	setpoints := [4]float64{50, 60, 70, 55}
	if _, err := tb.SettleEach(setpoints, 0.5, 3600); err != nil {
		t.Fatal(err)
	}
	for d, sp := range setpoints {
		if math.Abs(tb.TempC(d)-sp) > 1 {
			t.Fatalf("DIMM%d at %v°C, setpoint %v", d, tb.TempC(d), sp)
		}
	}
}

func TestSettleEachUnreachable(t *testing.T) {
	tb := NewTestbed(25, 12)
	if _, err := tb.SettleEach([4]float64{50, 50, 50, 300}, 0.5, 600); err == nil {
		t.Fatal("unreachable per-DIMM setpoint reported success")
	}
}
