// Package thermal simulates the paper's DRAM thermal testbed: a resistive
// heating element with thermally conductive tape on each DIMM, a
// thermocouple, and a closed-loop PID controller per channel (Section IV-A,
// Figs. 5 and 6). Characterization campaigns drive the testbed to each
// setpoint (50/60/70 °C) and wait for convergence before starting a run.
package thermal

import (
	"fmt"

	"repro/internal/stats"
)

// Plant is the first-order thermal model of one DIMM with its heating
// element: the temperature relaxes toward ambient plus a term proportional
// to heater power.
type Plant struct {
	AmbientC   float64 // ambient temperature
	GainCPerW  float64 // steady-state °C above ambient per watt
	TauSeconds float64 // thermal time constant
	MaxPowerW  float64 // heater power limit

	tempC float64
	noise *stats.RNG
}

// NewPlant returns a DIMM thermal plant at ambient temperature.
func NewPlant(ambientC float64, seed uint64) *Plant {
	return &Plant{
		AmbientC:   ambientC,
		GainCPerW:  3.2, // 3.2 °C per watt of heater power
		TauSeconds: 40,  // tape+chip thermal mass
		MaxPowerW:  25,  // resistive element limit
		tempC:      ambientC,
		noise:      stats.NewRNG(seed),
	}
}

// TempC returns the thermocouple reading.
func (p *Plant) TempC() float64 { return p.tempC }

// Step advances the plant by dt seconds under the given heater power.
func (p *Plant) Step(powerW, dt float64) {
	if powerW < 0 {
		powerW = 0
	}
	if powerW > p.MaxPowerW {
		powerW = p.MaxPowerW
	}
	target := p.AmbientC + p.GainCPerW*powerW
	p.tempC += (target - p.tempC) * dt / p.TauSeconds
	// Thermocouple measurement noise (~0.05 °C).
	p.tempC += 0.05 * p.noise.NormFloat64() * dt
}

// PID is a discrete proportional-integral-derivative controller, like the
// ir33 controllers on the testbed's controller board.
type PID struct {
	Kp, Ki, Kd float64
	OutMin     float64
	OutMax     float64

	integral float64
	prevErr  float64
	primed   bool
}

// NewPID returns a controller tuned for the DIMM plant.
func NewPID(maxPowerW float64) *PID {
	return &PID{Kp: 2.0, Ki: 0.08, Kd: 4.0, OutMin: 0, OutMax: maxPowerW}
}

// Update computes the next actuation for the measured value and setpoint.
func (c *PID) Update(setpoint, measured, dt float64) float64 {
	err := setpoint - measured
	c.integral += err * dt
	// Anti-windup: clamp the integral to what the actuator can express.
	if c.Ki > 0 {
		lim := c.OutMax / c.Ki
		if c.integral > lim {
			c.integral = lim
		}
		if c.integral < -lim {
			c.integral = -lim
		}
	}
	deriv := 0.0
	if c.primed && dt > 0 {
		deriv = (err - c.prevErr) / dt
	}
	c.prevErr = err
	c.primed = true
	out := c.Kp*err + c.Ki*c.integral + c.Kd*deriv
	if out < c.OutMin {
		out = c.OutMin
	}
	if out > c.OutMax {
		out = c.OutMax
	}
	return out
}

// Testbed couples one plant and controller per DIMM.
type Testbed struct {
	plants [4]*Plant
	pids   [4]*PID
}

// NewTestbed builds the 4-DIMM testbed at the given ambient temperature.
func NewTestbed(ambientC float64, seed uint64) *Testbed {
	tb := &Testbed{}
	for i := range tb.plants {
		tb.plants[i] = NewPlant(ambientC, seed^uint64(i+1)*0x9E3779B97F4A7C15)
		tb.pids[i] = NewPID(tb.plants[i].MaxPowerW)
	}
	return tb
}

// TempC returns DIMM i's current temperature.
func (tb *Testbed) TempC(dimm int) float64 { return tb.plants[dimm].TempC() }

// SettleEach drives every DIMM to its own setpoint (the testbed has an
// independent PID loop per module) and returns the settling time.
func (tb *Testbed) SettleEach(setpointsC [4]float64, tolC, maxSeconds float64) (float64, error) {
	const dt = 1.0
	for t := 0.0; t < maxSeconds; t += dt {
		allIn := true
		for i := range tb.plants {
			power := tb.pids[i].Update(setpointsC[i], tb.plants[i].TempC(), dt)
			tb.plants[i].Step(power, dt)
			if diff := tb.plants[i].TempC() - setpointsC[i]; diff > tolC || diff < -tolC {
				allIn = false
			}
		}
		if allIn && t > 5*dt {
			return t, nil
		}
	}
	return maxSeconds, fmt.Errorf("thermal: per-DIMM setpoints %v not reached within %.0fs",
		setpointsC, maxSeconds)
}

// SettleAll drives every DIMM to the setpoint and returns the settling time
// in seconds, or an error if the loop cannot converge within maxSeconds
// (e.g. a setpoint beyond the heater's reach).
func (tb *Testbed) SettleAll(setpointC, tolC, maxSeconds float64) (float64, error) {
	const dt = 1.0
	for t := 0.0; t < maxSeconds; t += dt {
		allIn := true
		for i := range tb.plants {
			power := tb.pids[i].Update(setpointC, tb.plants[i].TempC(), dt)
			tb.plants[i].Step(power, dt)
			if diff := tb.plants[i].TempC() - setpointC; diff > tolC || diff < -tolC {
				allIn = false
			}
		}
		if allIn && t > 5*dt {
			return t, nil
		}
	}
	return maxSeconds, fmt.Errorf("thermal: setpoint %.1f°C not reached within %.0fs", setpointC, maxSeconds)
}
