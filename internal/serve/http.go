package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"mime"
	"net/http"
	"sync"
)

// maxBodyBytes bounds one request body. The largest legitimate body — a
// maxBatchBody-query batch — is well under this.
const maxBodyBytes = 1 << 20

// The machine-readable error codes of the /v2 surface. Every error
// response carries exactly one, plus the offending field where one exists.
const (
	codeMalformedBody     = "malformed_body"
	codeBodyTooLarge      = "body_too_large"
	codeMethodNotAllowed  = "method_not_allowed"
	codeUnsupportedMedia  = "unsupported_media_type"
	codeUnknownWorkload   = "unknown_workload"
	codeUnknownModel      = "unknown_model"
	codeUnknownTarget     = "unknown_target"
	codeTargetUnavailable = "target_unavailable"
	codeBadTelemetry      = "bad_telemetry"
	codeOutOfRange        = "out_of_range"
	codeEmptyBatch        = "empty_batch"
	codeBatchTooLarge     = "batch_too_large"
	codeInternal          = "internal"
	codeUnavailable       = "unavailable"
	codeNotArtifactBacked = "not_artifact_backed"
	codeQueueFull         = "queue_full"
	codeRetrainInProgress = "retrain_in_progress"
	codeIngestDisabled    = "ingest_disabled"
)

// apiError is a validation or serving failure with everything both wire
// formats need: the HTTP status, the /v2 machine-readable code and field,
// and the human message (/v1 renders only the message, keeping its legacy
// string format).
type apiError struct {
	status int
	code   string
	field  string
	msg    string
}

func (e *apiError) Error() string { return e.msg }

// errf builds an apiError.
func errf(status int, code, field, format string, args ...any) *apiError {
	return &apiError{status: status, code: code, field: field, msg: fmt.Sprintf(format, args...)}
}

// at returns a copy locating the error at batch query i.
func (e *apiError) at(i int) *apiError {
	cp := *e
	cp.msg = fmt.Sprintf("query %d: %s", i, e.msg)
	return &cp
}

// servingErr maps a predict/profile/registry failure: server shutdown is
// 503, anything else 500.
func servingErr(err error) *apiError {
	if errors.Is(err, errClosed) {
		return errf(http.StatusServiceUnavailable, codeUnavailable, "", "%v", err)
	}
	return errf(http.StatusInternalServerError, codeInternal, "", "%v", err)
}

// errWriter renders an apiError in one wire format.
type errWriter func(w http.ResponseWriter, e *apiError)

// writeErrorV1 keeps the /v1 legacy error shape: {"error": "serve: ..."}.
func writeErrorV1(w http.ResponseWriter, e *apiError) {
	writeJSON(w, e.status, map[string]string{"error": "serve: " + e.msg})
}

// writeErrorV2 renders the structured /v2 shape:
// {"error": {"code": ..., "field": ..., "message": ...}}.
func writeErrorV2(w http.ResponseWriter, e *apiError) {
	writeJSON(w, e.status, map[string]any{"error": map[string]string{
		"code":    e.code,
		"field":   e.field,
		"message": e.msg,
	}})
}

// jsonWriter is a pooled response-encoding buffer: the encoder is bound to
// the buffer once, so a warm response reuses both instead of allocating an
// encoder and growing fresh buffer segments per request. Responses large
// enough to be pathological pool citizens are dropped rather than recycled.
type jsonWriter struct {
	buf bytes.Buffer
	enc *json.Encoder
}

const maxPooledResponse = 1 << 20

var jsonWriterPool = sync.Pool{New: func() any {
	jw := &jsonWriter{}
	jw.enc = json.NewEncoder(&jw.buf)
	return jw
}}

func writeJSON(w http.ResponseWriter, code int, v any) {
	jw := jsonWriterPool.Get().(*jsonWriter)
	jw.buf.Reset()
	// Encode first so a marshal failure cannot truncate an already-started
	// body; the bytes (including the encoder's trailing newline) match the
	// streaming encoder this replaced, keeping the golden wire fixtures
	// byte-identical.
	_ = jw.enc.Encode(v)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_, _ = w.Write(jw.buf.Bytes())
	if jw.buf.Cap() <= maxPooledResponse {
		jsonWriterPool.Put(jw)
	}
}

// jsonContentType accepts application/json with any parameters. An empty
// content type is allowed too (curl -XPOST sends none).
func jsonContentType(ct string) bool {
	if ct == "" {
		return true
	}
	mt, _, err := mime.ParseMediaType(ct)
	return err == nil && mt == "application/json"
}

// endpoint enforces the uniform method contract on every handler: a wrong
// method is always 405 with the Allow header set, a POST with a
// non-JSON content type is always 415, and POST bodies are capped at
// maxBodyBytes. werr picks the wire format of the error body, so /v1
// endpoints keep their legacy strings and /v2 gets structured codes.
func endpoint(method string, werr errWriter, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != method {
			w.Header().Set("Allow", method)
			werr(w, errf(http.StatusMethodNotAllowed, codeMethodNotAllowed, "",
				"%s not allowed", r.Method))
			return
		}
		if method == http.MethodPost {
			if ct := r.Header.Get("Content-Type"); !jsonContentType(ct) {
				werr(w, errf(http.StatusUnsupportedMediaType, codeUnsupportedMedia, "",
					"content type %q not supported (use application/json)", ct))
				return
			}
			r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
		}
		h(w, r)
	}
}

// decodeErr maps a JSON decode failure: a body past the size cap is 413,
// anything else 400.
func decodeErr(err error) *apiError {
	var mbe *http.MaxBytesError
	if errors.As(err, &mbe) {
		return errf(http.StatusRequestEntityTooLarge, codeBodyTooLarge, "",
			"request body exceeds %d bytes", mbe.Limit)
	}
	return errf(http.StatusBadRequest, codeMalformedBody, "", "malformed body: %v", err)
}

// decodeBody strictly decodes a JSON request body into v: unknown fields
// are rejected, a body past the size cap maps to 413, and trailing data
// after the document is rejected (trailing whitespace is fine).
func decodeBody(r *http.Request, v any) *apiError {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return decodeErr(err)
	}
	var extra struct{}
	if err := dec.Decode(&extra); err != io.EOF {
		return errf(http.StatusBadRequest, codeMalformedBody, "",
			"malformed body: trailing data after the JSON document")
	}
	return nil
}
