package serve

import (
	"os"
	"time"

	"repro/internal/core"
)

// ArtifactWatcher drives the -reload-interval poll: it decides, per tick,
// whether the artifact on disk warrants a full reload (decompress + parse
// + hash + generation build).
//
// The old poll skipped purely on an unchanged (mtime, size) stat, which is
// wrong: a rewrite can produce a byte-different artifact with the same
// size inside the filesystem's mtime granularity (coarse on some systems,
// and retrain pipelines that write-then-rename routinely land within it).
// The watcher therefore never lets stat alone veto a reload — an
// unchanged stat demotes the check to PeekFingerprint, a cheap scan of
// the artifact's recorded content hash, and only a hash matching the
// serving generation skips. Artifacts predating the fingerprint field
// peek as "" and always take the full reload path.
type ArtifactWatcher struct {
	srv  *Server
	path string

	seen     bool
	seenMod  time.Time
	seenSize int64
}

// NewArtifactWatcher watches path for srv.
func NewArtifactWatcher(srv *Server, path string) *ArtifactWatcher {
	return &ArtifactWatcher{srv: srv, path: path}
}

// Poll runs one poll tick. It returns (nil, nil) when the artifact
// provably matches the serving generation and the reload was skipped;
// otherwise it returns Reload's result. Stat state commits only on a
// successful reload, so a transient failure keeps the poll retrying.
func (aw *ArtifactWatcher) Poll() (*ReloadResult, error) {
	fi, statErr := os.Stat(aw.path)
	if statErr == nil && aw.seen && fi.ModTime().Equal(aw.seenMod) && fi.Size() == aw.seenSize {
		// Same stat — but the bytes may still differ. The peeked
		// fingerprint settles it; "" (pre-fingerprint artifact or peek
		// failure) falls through to the authoritative full reload.
		if fp, err := core.PeekFingerprint(aw.path); err == nil && fp != "" {
			if _, serving := aw.srv.Identity(); fp == serving {
				return nil, nil
			}
		}
	}
	return aw.reload(fi, statErr == nil)
}

// Force runs an unconditional reload (SIGHUP).
func (aw *ArtifactWatcher) Force() (*ReloadResult, error) {
	fi, statErr := os.Stat(aw.path)
	return aw.reload(fi, statErr == nil)
}

func (aw *ArtifactWatcher) reload(fi os.FileInfo, haveStat bool) (*ReloadResult, error) {
	res, err := aw.srv.Reload(aw.path)
	if err != nil {
		aw.seen = false // never let a failed attempt suppress retries
		return nil, err
	}
	if haveStat {
		// The stat predates the load, so a file replaced mid-reload is
		// re-checked next tick (with the fingerprint no-op as backstop).
		aw.seenMod, aw.seenSize, aw.seen = fi.ModTime(), fi.Size(), true
	}
	return res, nil
}
