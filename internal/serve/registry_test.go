package serve

import (
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/profile"
	"repro/internal/workload"
)

// These are the regression tests for the sticky-error bug: before the
// generation rework, a transient train() or profile.BuildAt failure was
// stored under a sync.Once and returned to every future request for the
// life of the process. Errors must not be cached: the entry clears, the
// next request retries the fill and counts as a miss.

func TestTrainFailureNotSticky(t *testing.T) {
	s := New(testDataset(t), Options{Quick: true, Seed: 3, Workers: 2})
	t.Cleanup(func() { s.Close() })
	var calls atomic.Int64
	realTrain := s.train
	s.train = func(ds *core.Dataset, target core.Target, kind core.ModelKind, set core.InputSet, workers int) (core.Predictor, error) {
		if target == core.TargetWER && calls.Add(1) == 1 {
			return nil, errors.New("injected one-shot fit failure")
		}
		return realTrain(ds, target, kind, set, workers)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	// First request hits the injected failure.
	resp, data := postPredict(t, ts, `{"workload":"nw","trefp":1.173,"temp_c":60}`)
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("first predict = %d: %s", resp.StatusCode, data)
	}
	if !strings.Contains(string(data), "one-shot fit failure") {
		t.Fatalf("train error not surfaced: %s", data)
	}
	m := scrapeMetrics(t, ts)
	if m["dramserve_model_registry_misses_total"] != 1 || m["dramserve_model_registry_hits_total"] != 0 {
		t.Fatalf("after failed fill: misses=%v hits=%v",
			m["dramserve_model_registry_misses_total"], m["dramserve_model_registry_hits_total"])
	}
	if m["dramserve_model_train_failures_total"] != 1 {
		t.Fatalf("train failures = %v", m["dramserve_model_train_failures_total"])
	}

	// The very next request must retry the fit and succeed — the failure
	// was not cached.
	resp, data = postPredict(t, ts, `{"workload":"nw","trefp":1.173,"temp_c":60}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("second predict = %d (sticky error?): %s", resp.StatusCode, data)
	}
	// Retry accounting: the re-fit is a miss (the fill really ran again),
	// never a hit.
	m = scrapeMetrics(t, ts)
	if m["dramserve_model_registry_misses_total"] != 3 || m["dramserve_model_registry_hits_total"] != 0 {
		t.Fatalf("after recovery: misses=%v hits=%v (wer retry + pue first fit should be misses)",
			m["dramserve_model_registry_misses_total"], m["dramserve_model_registry_hits_total"])
	}
	if calls.Load() != 2 {
		t.Fatalf("trainer ran %d times, want 2", calls.Load())
	}

	// Steady state: pure hits again.
	if resp, data := postPredict(t, ts, `{"workload":"nw","trefp":2.283,"temp_c":70}`); resp.StatusCode != http.StatusOK {
		t.Fatalf("third predict = %d: %s", resp.StatusCode, data)
	}
	m = scrapeMetrics(t, ts)
	if m["dramserve_model_registry_misses_total"] != 3 || m["dramserve_model_registry_hits_total"] != 2 {
		t.Fatalf("steady state: misses=%v hits=%v",
			m["dramserve_model_registry_misses_total"], m["dramserve_model_registry_hits_total"])
	}
}

func TestProfileFailureNotSticky(t *testing.T) {
	s := New(testDataset(t), Options{Quick: true, Seed: 3, Workers: 2})
	t.Cleanup(func() { s.Close() })
	var calls atomic.Int64
	realBuild := s.buildProfile
	s.buildProfile = func(spec workload.Spec, size workload.Size, seed uint64) (*profile.Result, error) {
		if calls.Add(1) == 1 {
			return nil, errors.New("injected one-shot profile failure")
		}
		return realBuild(spec, size, seed)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	resp, data := postPredict(t, ts, `{"workload":"backprop","trefp":1.173,"temp_c":60}`)
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("first predict = %d: %s", resp.StatusCode, data)
	}
	m := scrapeMetrics(t, ts)
	if m["dramserve_profile_cache_misses_total"] != 1 || m["dramserve_profile_cache_hits_total"] != 0 {
		t.Fatalf("after failed build: misses=%v hits=%v",
			m["dramserve_profile_cache_misses_total"], m["dramserve_profile_cache_hits_total"])
	}
	if m["dramserve_profile_build_failures_total"] != 1 {
		t.Fatalf("profile failures = %v", m["dramserve_profile_build_failures_total"])
	}

	// Next request rebuilds the profile (miss, not hit) and succeeds.
	resp, data = postPredict(t, ts, `{"workload":"backprop","trefp":1.173,"temp_c":60}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("second predict = %d (sticky profile error?): %s", resp.StatusCode, data)
	}
	m = scrapeMetrics(t, ts)
	if m["dramserve_profile_cache_misses_total"] != 2 || m["dramserve_profile_cache_hits_total"] != 0 {
		t.Fatalf("after recovery: misses=%v hits=%v",
			m["dramserve_profile_cache_misses_total"], m["dramserve_profile_cache_hits_total"])
	}
	// And the profile is now cached: a repeat query is a pure hit.
	if resp, data := postPredict(t, ts, `{"workload":"backprop","trefp":2.283,"temp_c":70}`); resp.StatusCode != http.StatusOK {
		t.Fatalf("third predict = %d: %s", resp.StatusCode, data)
	}
	m = scrapeMetrics(t, ts)
	if m["dramserve_profile_cache_misses_total"] != 2 || m["dramserve_profile_cache_hits_total"] != 1 {
		t.Fatalf("steady state: misses=%v hits=%v",
			m["dramserve_profile_cache_misses_total"], m["dramserve_profile_cache_hits_total"])
	}
}

// TestTrainFailureConcurrentWaitersRecover pins the bounded-retry path:
// requests that joined a fill which then fails must retry (one becomes the
// next creator) rather than inherit the error. With a one-shot failure,
// exactly the creator's request fails; every waiter recovers.
func TestTrainFailureConcurrentWaitersRecover(t *testing.T) {
	s := New(testDataset(t), Options{Quick: true, Seed: 3, Workers: 2})
	t.Cleanup(func() { s.Close() })
	var calls atomic.Int64
	gate := make(chan struct{})
	realTrain := s.train
	s.train = func(ds *core.Dataset, target core.Target, kind core.ModelKind, set core.InputSet, workers int) (core.Predictor, error) {
		if target == core.TargetWER && calls.Add(1) == 1 {
			// Hold the failing fill open until every concurrent request
			// has had a chance to join it as a waiter.
			<-gate
			return nil, errors.New("injected one-shot fit failure")
		}
		return realTrain(ds, target, kind, set, workers)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	const n = 8
	codes := make([]int, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/predict", "application/json",
				strings.NewReader(`{"workload":"nw","trefp":1.173,"temp_c":60}`))
			if err != nil {
				errs[i] = err
				return
			}
			defer resp.Body.Close()
			if _, err := io.ReadAll(resp.Body); err != nil {
				errs[i] = err
				return
			}
			codes[i] = resp.StatusCode
		}(i)
	}
	// Give the requests time to pile onto the held fill, then release it.
	waitForMetric(t, ts, "dramserve_model_registry_hits_total", 1)
	close(gate)
	wg.Wait()

	fails := 0
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("request %d transport error: %v", i, errs[i])
		}
		if codes[i] != http.StatusOK {
			fails++
		}
	}
	// Exactly the creator of the failing fill surfaces the error; all the
	// waiters retried into the recovered fill.
	if fails != 1 {
		t.Fatalf("%d/%d requests failed, want exactly 1 (the failing fill's creator)", fails, n)
	}
	if calls.Load() != 2 {
		t.Fatalf("trainer ran %d times, want 2 (failed fill + one recovery fit)", calls.Load())
	}
}

// waitForMetric polls /metrics until name reaches at least want (the test
// then knows concurrent requests really joined the in-flight fill).
func waitForMetric(t *testing.T, ts *httptest.Server, name string, want float64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if scrapeMetrics(t, ts)[name] >= want {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("metric %s never reached %v", name, want)
}
