package serve

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/workload"
)

// A generation is one immutable serving configuration: a dataset plus every
// piece of state derived from it (trained models, workload profiles, the
// micro-batchers hanging off the registry entries). The server holds the
// current generation behind an atomic pointer; a hot reload builds a fresh
// generation and swaps the pointer, so cross-dataset state can never leak —
// a model trained on the old rows is unreachable the moment the new
// generation is visible, and the sticky-error class of bugs (stale state
// surviving a refresh) is structurally impossible.
//
// Lifecycle: a generation is born with one "live" reference held by the
// server. Every request acquires a reference for its full duration, so
// in-flight queries finish on the generation they started with. Retiring
// (after a swap) releases the live reference, waits for in-flight requests
// to drain, and only then closes stop — which terminates the batcher
// dispatchers. A request can therefore never observe its own generation's
// batchers shutting down underneath it.
type generation struct {
	// id is the monotonically increasing generation number (1 at startup),
	// surfaced in /healthz and /metrics.
	id int64
	// fp is the dataset's content fingerprint; a reload whose artifact
	// hashes to the current fp is a no-op.
	fp string

	ds   *core.Dataset
	size workload.Size
	seed uint64

	registry *modelRegistry
	profiles *profileCache

	// Target availability, derived once from the dataset against the core
	// target registry. available gates explicit requests; defaults is the
	// selection an empty request answers (catalog order, non-telemetry);
	// telemetryTargets joins that selection only when the query carries CE
	// events — an old artifact without UE rows keeps answering exactly the
	// legacy pair.
	available        map[core.Target]bool
	defaults         []core.Target
	telemetryTargets []core.Target

	// stop, once closed, terminates this generation's batcher dispatchers
	// and fails fast any caller still blocked on them. It closes on server
	// shutdown, or after a retired generation has drained.
	stop     chan struct{}
	stopOnce sync.Once

	// refs counts the live reference (1, held until retire) plus every
	// in-flight request. drained closes when refs first returns to zero,
	// which can only happen after retire released the live reference.
	refs    atomic.Int64
	drained chan struct{}
}

// newGeneration derives a generation from a dataset. The profiling size and
// seed come from the artifact's recorded build settings when known (a
// reloaded artifact may have been rebuilt with different settings), falling
// back to the server's startup options.
func (s *Server) newGeneration(id int64, ds *core.Dataset) *generation {
	size, seed := s.optSize, s.optSeed
	if b := ds.Build; b.Known() {
		if b.Quick() {
			size = workload.SizeTest
		} else {
			size = workload.SizeProfile
		}
		seed = b.Seed
	}
	g := &generation{
		id:       id,
		fp:       ds.Fingerprint(),
		ds:       ds,
		size:     size,
		seed:     seed,
		registry: newModelRegistry(),
		profiles: newProfileCache(),
		stop:     make(chan struct{}),
		drained:  make(chan struct{}),
	}
	g.available = make(map[core.Target]bool, len(core.Targets()))
	for _, d := range core.Descriptors() {
		if !d.Available(ds) {
			continue
		}
		g.available[d.Name] = true
		if d.NeedsTelemetry {
			g.telemetryTargets = append(g.telemetryTargets, d.Name)
		} else {
			g.defaults = append(g.defaults, d.Name)
		}
	}
	g.refs.Store(1) // the live reference, released by retire
	return g
}

// acquire pins the current generation for one request. Every successful
// acquire must be paired with a release. The loop re-reads the pointer on
// the (rare) race where the loaded generation fully drained between the
// load and the reference grab; it terminates because the pointer is always
// swapped to the successor before the live reference is released.
func (s *Server) acquire() (*generation, error) {
	if err := s.closedErr(); err != nil {
		return nil, err
	}
	for {
		g := s.gen.Load()
		if g.tryRef() {
			return g, nil
		}
	}
}

// tryRef grabs a reference unless the generation has fully drained. It
// must CAS rather than blindly increment: a plain Add(1) on a drained
// generation would transiently resurrect refs to 1, let a concurrent
// tryRef observe a live-looking count and hand out a generation whose
// batchers are already stopped — and the back-out decrement would cross
// zero a second time, double-closing drained.
func (g *generation) tryRef() bool {
	for {
		n := g.refs.Load()
		if n == 0 {
			return false // fully drained: refs never leaves zero again
		}
		if g.refs.CompareAndSwap(n, n+1) {
			return true
		}
	}
}

// release drops one reference. The reference that returns the count to
// zero — necessarily after retire dropped the live one, and unrepeatable
// because tryRef refuses drained generations — signals drain.
func (g *generation) release() {
	if g.refs.Add(-1) == 0 {
		close(g.drained)
	}
}

// retire ends a generation that has been swapped out: it releases the live
// reference, waits for every in-flight request to finish, then stops the
// batchers. Blocked do() callers cannot be dropped: stop only closes once
// no request references this generation.
func (g *generation) retire() {
	g.release()
	<-g.drained
	g.closeStop()
}

// closeStop terminates the generation's batchers. Idempotent: both server
// shutdown and retirement converge here.
func (g *generation) closeStop() {
	g.stopOnce.Do(func() { close(g.stop) })
}

// ReloadResult reports the outcome of one reload request.
type ReloadResult struct {
	// Generation is the serving generation after the reload: bumped on a
	// swap, unchanged on a fingerprint no-op.
	Generation int64 `json:"generation"`
	// Fingerprint is the content hash of the artifact that is now serving.
	Fingerprint string `json:"fingerprint"`
	// Swapped is false when the artifact fingerprint matched the serving
	// generation and nothing changed.
	Swapped bool `json:"swapped"`
	// ElapsedMS is the wall time of the reload, including artifact load,
	// fingerprinting and (on a swap) the old generation's drain.
	ElapsedMS float64 `json:"elapsed_ms"`
}

// Reload loads the artifact at path and, unless its fingerprint matches the
// serving generation, swaps it in as a new generation: queries that arrive
// after the swap see the new dataset with fresh (lazily trained) models,
// queries already in flight finish on the generation they started with, and
// the old generation's batchers are drained and stopped — no request is
// dropped or blocked by a reload. Reloads are serialized; concurrent calls
// queue.
func (s *Server) Reload(path string) (*ReloadResult, error) {
	s.reloadMu.Lock()
	defer s.reloadMu.Unlock()
	if err := s.closedErr(); err != nil {
		return nil, err
	}
	start := time.Now()
	ds, err := core.LoadDataset(path)
	if err != nil {
		s.metrics.reloadErrors.inc()
		return nil, err
	}
	return s.swapDataset(ds, start), nil
}

// swapDataset is the artifact-independent half of Reload (reloadMu held).
func (s *Server) swapDataset(ds *core.Dataset, start time.Time) *ReloadResult {
	cur := s.gen.Load()
	fp := ds.Fingerprint()
	if fp == cur.fp {
		s.metrics.reloadNoops.inc()
		return &ReloadResult{
			Generation:  cur.id,
			Fingerprint: fp,
			ElapsedMS:   float64(time.Since(start).Microseconds()) / 1e3,
		}
	}
	g := s.newGeneration(cur.id+1, ds)
	s.gen.Store(g)
	s.metrics.generationID.Store(g.id)
	cur.retire()
	if s.closedErr() != nil {
		// Close raced with the swap and may have stopped the predecessor
		// instead; make sure the new current generation is stopped too.
		g.closeStop()
	}
	s.metrics.reloads.inc()
	s.metrics.reloadSeconds.observe(time.Since(start))
	return &ReloadResult{
		Generation:  g.id,
		Fingerprint: fp,
		Swapped:     true,
		ElapsedMS:   float64(time.Since(start).Microseconds()) / 1e3,
	}
}
