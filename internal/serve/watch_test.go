package serve

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/core"
)

// padTo grows the file at path to size bytes with trailing zeros. Readers
// stop at the end of the JSON document inside the gzip stream, so padding
// past the stream is invisible to LoadDataset and PeekFingerprint — which
// is exactly what makes two byte-different artifacts stat-identical.
func padTo(t *testing.T, path string, size int64) {
	t.Helper()
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() > size {
		t.Fatalf("artifact %d bytes, cannot pad down to %d", fi.Size(), size)
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := f.Write(make([]byte, size-fi.Size())); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestWatcherReloadsStatIdenticalArtifact is the regression test for the
// reload poll's stat-skip: a byte-different artifact landing with the
// same (mtime, size) — same-size rewrite inside the filesystem's mtime
// granularity — must still be picked up. The watcher demotes an
// unchanged stat to a fingerprint peek instead of skipping outright.
func TestWatcherReloadsStatIdenticalArtifact(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "dfault.json.gz")
	base := testDataset(t)

	// Artifact B: byte-different from A (the build seed is hashed into the
	// fingerprint and serialized) but row-shape identical, so both gzip to
	// nearly the same size and pad to exactly the same size.
	b := base.Append(nil, nil, nil)
	b.Build.Seed = base.Build.Seed + 1

	if err := base.SaveAtomic(path); err != nil {
		t.Fatal(err)
	}
	sizeA := fileSize(t, path)
	pathB := filepath.Join(dir, "b.json.gz")
	if err := b.SaveAtomic(pathB); err != nil {
		t.Fatal(err)
	}
	sizeB := fileSize(t, pathB)
	common := sizeA
	if sizeB > common {
		common = sizeB
	}
	common += 16
	stamp := time.Now().Add(-time.Minute).Truncate(time.Second)
	padTo(t, path, common)
	if err := os.Chtimes(path, stamp, stamp); err != nil {
		t.Fatal(err)
	}

	ds, err := core.LoadDataset(path)
	if err != nil {
		t.Fatal(err)
	}
	s := New(ds, Options{Quick: true, Seed: 3, Workers: 2, ArtifactPath: path})
	defer s.Close()
	aw := NewArtifactWatcher(s, path)

	// First poll: no stat state yet, full reload, fingerprint no-op.
	res, err := aw.Poll()
	if err != nil {
		t.Fatal(err)
	}
	if res == nil || res.Swapped {
		t.Fatalf("first poll = %+v, want an unswapped reload result", res)
	}

	// Second poll, nothing changed: the peeked fingerprint matches the
	// serving generation and the reload is skipped entirely.
	res, err = aw.Poll()
	if err != nil {
		t.Fatal(err)
	}
	if res != nil {
		t.Fatalf("unchanged poll = %+v, want a skip", res)
	}

	// Replace the artifact with the byte-different B at the SAME size and
	// mtime. A stat-skip poll would miss it forever.
	if err := os.Remove(path); err != nil {
		t.Fatal(err)
	}
	if err := os.Rename(pathB, path); err != nil {
		t.Fatal(err)
	}
	padTo(t, path, common)
	if err := os.Chtimes(path, stamp, stamp); err != nil {
		t.Fatal(err)
	}
	modOK, sizeOK := statPair(t, path, stamp, common)
	if !modOK || !sizeOK {
		t.Fatal("test setup failed to make the artifacts stat-identical")
	}

	res, err = aw.Poll()
	if err != nil {
		t.Fatal(err)
	}
	if res == nil || !res.Swapped {
		t.Fatalf("stat-identical rewrite poll = %+v, want a swap", res)
	}
	if res.Fingerprint != b.Fingerprint() {
		t.Fatalf("swapped to %q, want %q", res.Fingerprint, b.Fingerprint())
	}

	// And the skip path resumes against the new artifact.
	res, err = aw.Poll()
	if err != nil {
		t.Fatal(err)
	}
	if res != nil {
		t.Fatalf("post-swap poll = %+v, want a skip", res)
	}

	// Force (SIGHUP) never skips: it reloads even when nothing changed.
	res, err = aw.Force()
	if err != nil {
		t.Fatal(err)
	}
	if res == nil || res.Swapped {
		t.Fatalf("force = %+v, want an unswapped reload result", res)
	}
}

func fileSize(t *testing.T, path string) int64 {
	t.Helper()
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	return fi.Size()
}

// statPair confirms path carries exactly the expected stat.
func statPair(t *testing.T, path string, mod time.Time, size int64) (modOK, sizeOK bool) {
	t.Helper()
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	return fi.ModTime().Equal(mod), fi.Size() == size
}
