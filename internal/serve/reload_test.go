package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/workload"
)

// perturbedDataset deep-copies the corpus and nudges one above-floor WER
// row, so the result trains a different model and hashes to a different
// fingerprint while keeping the same workloads servable.
func perturbedDataset(t *testing.T, ds *core.Dataset) *core.Dataset {
	t.Helper()
	out := &core.Dataset{Build: ds.Build, PUE: ds.PUE, Profiles: ds.Profiles}
	out.WER = append([]core.WERSample(nil), ds.WER...)
	for i := range out.WER {
		if out.WER[i].WER > core.WERFloor {
			out.WER[i].WER *= 1.5
			return out
		}
	}
	t.Fatal("no above-floor WER row to perturb")
	return nil
}

func postReload(t testing.TB, ts *httptest.Server, body string) (*http.Response, []byte) {
	t.Helper()
	var rd io.Reader
	if body != "" {
		rd = strings.NewReader(body)
	}
	resp, err := http.Post(ts.URL+"/v1/reload", "application/json", rd)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

// TestHotReloadE2E is the acceptance test of the reload subsystem: under 32
// concurrent query goroutines, reloading a changed artifact swaps
// generations with zero failed or blocked requests, /metrics shows the
// generation bump, and reloading an identical artifact is a fingerprint
// no-op.
func TestHotReloadE2E(t *testing.T) {
	ds := testDataset(t)
	path := filepath.Join(t.TempDir(), "art.json.gz")
	if err := ds.Save(path); err != nil {
		t.Fatal(err)
	}
	s := New(ds, Options{Quick: true, Seed: 3, Workers: 2, ArtifactPath: path})
	t.Cleanup(func() { s.Close() })
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	// Warm the first generation so the hammer goroutines mostly exercise
	// the swap, not cold training.
	if resp, data := postPredict(t, ts, `{"workload":"nw","trefp":1.173,"temp_c":60}`); resp.StatusCode != http.StatusOK {
		t.Fatalf("warmup = %d: %s", resp.StatusCode, data)
	}

	// 32 goroutines hammer /v1/predict for the whole reload sequence.
	const goroutines = 32
	bodies := []string{
		`{"workload":"nw","trefp":1.173,"temp_c":60}`,
		`{"workload":"backprop","trefp":2.283,"temp_c":50}`,
		`{"workload":"srad(par)","trefp":0.618,"temp_c":70}`,
		`{"workload":"memcached","trefp":1.727,"temp_c":60}`,
	}
	var (
		stopHammer = make(chan struct{})
		hammerWG   sync.WaitGroup
		requests   atomic.Int64
		failures   atomic.Int64
		firstFail  atomic.Value
	)
	for g := 0; g < goroutines; g++ {
		hammerWG.Add(1)
		go func(g int) {
			defer hammerWG.Done()
			for i := 0; ; i++ {
				select {
				case <-stopHammer:
					return
				default:
				}
				resp, err := http.Post(ts.URL+"/v1/predict", "application/json",
					strings.NewReader(bodies[(g+i)%len(bodies)]))
				if err == nil {
					data, rerr := io.ReadAll(resp.Body)
					resp.Body.Close()
					if rerr != nil {
						err = rerr
					} else if resp.StatusCode != http.StatusOK {
						err = fmt.Errorf("status %d: %s", resp.StatusCode, data)
					}
				}
				requests.Add(1)
				if err != nil {
					failures.Add(1)
					firstFail.CompareAndSwap(nil, err)
				}
			}
		}(g)
	}

	decodeReload := func(data []byte) ReloadResult {
		var r ReloadResult
		if err := json.Unmarshal(data, &r); err != nil {
			t.Fatalf("reload body %s: %v", data, err)
		}
		return r
	}

	// 1. Reloading the identical artifact is a fingerprint no-op.
	gen1 := s.gen.Load()
	resp, data := postReload(t, ts, "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("noop reload = %d: %s", resp.StatusCode, data)
	}
	if r := decodeReload(data); r.Swapped || r.Generation != 1 {
		t.Fatalf("identical artifact swapped: %+v", r)
	}
	if s.gen.Load() != gen1 {
		t.Fatal("no-op reload replaced the generation")
	}

	// 2. Overwrite the artifact with changed rows and reload: the
	// generation must bump while the hammer sees zero failures.
	changed := perturbedDataset(t, ds)
	if err := changed.Save(path); err != nil {
		t.Fatal(err)
	}
	resp, data = postReload(t, ts, "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("swap reload = %d: %s", resp.StatusCode, data)
	}
	if r := decodeReload(data); !r.Swapped || r.Generation != 2 {
		t.Fatalf("changed artifact did not swap: %+v", r)
	}
	// Reload returns only after the old generation drained; its batchers
	// must be stopped by now.
	select {
	case <-gen1.stop:
	default:
		t.Fatal("retired generation's batchers still running")
	}

	// 3. Reloading the now-identical new artifact is again a no-op.
	resp, data = postReload(t, ts, "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("second noop reload = %d: %s", resp.StatusCode, data)
	}
	if r := decodeReload(data); r.Swapped || r.Generation != 2 {
		t.Fatalf("identical new artifact swapped: %+v", r)
	}

	// Let the hammer overlap the post-swap generation for a moment, then
	// stop it and audit: zero failed (or hung — hammerWG would block)
	// requests across the whole sequence.
	time.Sleep(50 * time.Millisecond)
	close(stopHammer)
	hammerWG.Wait()
	if n := failures.Load(); n != 0 {
		t.Fatalf("%d/%d hammer requests failed during reload; first: %v",
			n, requests.Load(), firstFail.Load())
	}
	if requests.Load() == 0 {
		t.Fatal("hammer made no requests")
	}

	// The new generation serves the new rows: a served prediction must
	// equal a model trained directly on the changed dataset.
	resp, data = postPredict(t, ts, `{"workload":"srad(par)","trefp":2.283,"temp_c":60}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-swap predict = %d: %s", resp.StatusCode, data)
	}
	var got PredictResponse
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	spec, err := workload.FindSpec("srad(par)")
	if err != nil {
		t.Fatal(err)
	}
	prof, err := s.profileFor(s.gen.Load(), spec)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := core.Train(changed, core.TargetWER, core.ModelKNN, core.InputSet1, 2)
	if err != nil {
		t.Fatal(err)
	}
	want, err := direct.Predict(core.Query{
		Features: prof.Features, TREFP: 2.283, VDD: got.VDD, TempC: 60,
		Rank: core.RankDevice,
	})
	if err != nil {
		t.Fatal(err)
	}
	for r := range got.WERByRank {
		if got.WERByRank[r] != want.ByRank[r] {
			t.Fatalf("rank %d: served %v != model trained on reloaded rows %v", r, got.WERByRank[r], want.ByRank[r])
		}
	}

	// /metrics and /healthz surface the reload observability.
	m := scrapeMetrics(t, ts)
	if m["dramserve_generation"] != 2 {
		t.Fatalf("dramserve_generation = %v, want 2", m["dramserve_generation"])
	}
	if m["dramserve_reloads_total"] != 1 {
		t.Fatalf("dramserve_reloads_total = %v, want 1", m["dramserve_reloads_total"])
	}
	if m["dramserve_reload_noops_total"] != 2 {
		t.Fatalf("dramserve_reload_noops_total = %v, want 2", m["dramserve_reload_noops_total"])
	}
	if m["dramserve_reload_seconds_count"] != 1 {
		t.Fatalf("dramserve_reload_seconds_count = %v, want 1", m["dramserve_reload_seconds_count"])
	}
	_, hz := get(t, ts, "/healthz")
	var health struct {
		Generation  int64  `json:"generation"`
		Fingerprint string `json:"fingerprint"`
	}
	if err := json.Unmarshal(hz, &health); err != nil {
		t.Fatal(err)
	}
	if health.Generation != 2 || health.Fingerprint != changed.Fingerprint() {
		t.Fatalf("healthz generation/fingerprint: %s", hz)
	}
}

func TestReloadErrors(t *testing.T) {
	ds := testDataset(t)
	// No artifact path configured anywhere: 400.
	s := New(ds, Options{Quick: true, Seed: 3, Workers: 2})
	t.Cleanup(func() { s.Close() })
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	if resp, data := postReload(t, ts, ""); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("pathless reload = %d: %s", resp.StatusCode, data)
	}
	// GET is not allowed.
	if resp, _ := get(t, ts, "/v1/reload"); resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/reload = %d", resp.StatusCode)
	}
	// A bad body is rejected.
	if resp, _ := postReload(t, ts, `{"bogus":1}`); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad reload body accepted")
	}
	// An oversized body hits the uniform cap: 413, like every endpoint.
	if resp, _ := postReload(t, ts, strings.Repeat(" ", maxBodyBytes+1)+"{}"); resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized reload body not 413")
	}
	// The endpoint must not let a client name an arbitrary server-side
	// file (filesystem probing / model substitution).
	if resp, _ := postReload(t, ts, `{"path":"/etc/passwd"}`); resp.StatusCode != http.StatusBadRequest {
		t.Fatal("client-supplied reload path accepted")
	}
	// A missing artifact fails the reload, keeps the generation, and is
	// counted.
	missing := filepath.Join(t.TempDir(), "missing.json.gz")
	if _, err := s.Reload(missing); err == nil {
		t.Fatal("missing artifact reloaded")
	}
	if got := s.gen.Load().id; got != 1 {
		t.Fatalf("failed reload bumped generation to %d", got)
	}
	m := scrapeMetrics(t, ts)
	if m["dramserve_reload_errors_total"] != 1 {
		t.Fatalf("dramserve_reload_errors_total = %v", m["dramserve_reload_errors_total"])
	}
	// A predict still works on the intact generation.
	if resp, data := postPredict(t, ts, `{"workload":"nw","trefp":1.173,"temp_c":60}`); resp.StatusCode != http.StatusOK {
		t.Fatalf("predict after failed reload = %d: %s", resp.StatusCode, data)
	}
	// Closed server: 503.
	s.Close()
	if _, err := s.Reload(missing); err != errClosed {
		t.Fatalf("Reload after close = %v, want errClosed", err)
	}
}

// TestReloadConcurrentWithQueriesUnderChurn swaps generations repeatedly
// while queries are in flight; -race plus the refcounted drain make this
// the stress test of the acquire/release/retire protocol.
func TestReloadConcurrentWithQueriesUnderChurn(t *testing.T) {
	ds := testDataset(t)
	pathA := filepath.Join(t.TempDir(), "a.json.gz")
	pathB := filepath.Join(t.TempDir(), "b.json.gz")
	if err := ds.Save(pathA); err != nil {
		t.Fatal(err)
	}
	if err := perturbedDataset(t, ds).Save(pathB); err != nil {
		t.Fatal(err)
	}
	s := New(ds, Options{Quick: true, Seed: 3, Workers: 2, ArtifactPath: pathA})
	t.Cleanup(func() { s.Close() })
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	var (
		stop     = make(chan struct{})
		wg       sync.WaitGroup
		failures atomic.Int64
		firstErr atomic.Value
	)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			body := `{"workload":"nw","trefp":1.173,"temp_c":60}`
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Post(ts.URL+"/v1/predict", "application/json", strings.NewReader(body))
				if err == nil {
					data, _ := io.ReadAll(resp.Body)
					resp.Body.Close()
					if resp.StatusCode != http.StatusOK {
						err = fmt.Errorf("status %d: %s", resp.StatusCode, data)
					}
				}
				if err != nil {
					failures.Add(1)
					firstErr.CompareAndSwap(nil, err)
				}
			}
		}(g)
	}
	// Ping-pong between the two artifacts: every reload is a real swap.
	paths := []string{pathB, pathA, pathB, pathA, pathB, pathA}
	for i, p := range paths {
		if _, err := s.Reload(p); err != nil {
			t.Fatalf("reload %d (%s): %v", i, p, err)
		}
	}
	close(stop)
	wg.Wait()
	if n := failures.Load(); n != 0 {
		t.Fatalf("%d queries failed during generation churn; first: %v", n, firstErr.Load())
	}
	if got := s.gen.Load().id; got != int64(1+len(paths)) {
		t.Fatalf("generation = %d after %d swaps", got, len(paths))
	}
	m := scrapeMetrics(t, ts)
	if m["dramserve_reloads_total"] != float64(len(paths)) {
		t.Fatalf("reloads_total = %v, want %d", m["dramserve_reloads_total"], len(paths))
	}
}

// TestReloadAdoptsArtifactBuildSettings covers the generation's size/seed
// derivation: an artifact that records its build settings wins over the
// server's startup options (a retrained artifact may have been rebuilt
// with a different seed or at full profiling size).
func TestReloadAdoptsArtifactBuildSettings(t *testing.T) {
	ds := testDataset(t)
	s := New(ds, Options{Quick: true, Seed: 3, Workers: 2})
	t.Cleanup(func() { s.Close() })
	if g := s.gen.Load(); g.size != workload.SizeTest || g.seed != 3 {
		t.Fatalf("startup generation (size=%v seed=%d) ignored options", g.size, g.seed)
	}

	quick := perturbedDataset(t, ds)
	quick.StampBuild(workload.SizeTest, 99)
	pathQuick := filepath.Join(t.TempDir(), "quick.json.gz")
	if err := quick.Save(pathQuick); err != nil {
		t.Fatal(err)
	}
	if res, err := s.Reload(pathQuick); err != nil || !res.Swapped {
		t.Fatalf("reload: %+v, %v", res, err)
	}
	if g := s.gen.Load(); g.size != workload.SizeTest || g.seed != 99 {
		t.Fatalf("generation (size=%v seed=%d) did not adopt artifact build settings", g.size, g.seed)
	}

	full := perturbedDataset(t, quick)
	full.StampBuild(workload.SizeProfile, 7)
	pathFull := filepath.Join(t.TempDir(), "full.json.gz")
	if err := full.Save(pathFull); err != nil {
		t.Fatal(err)
	}
	if res, err := s.Reload(pathFull); err != nil || !res.Swapped {
		t.Fatalf("reload: %+v, %v", res, err)
	}
	if g := s.gen.Load(); g.size != workload.SizeProfile || g.seed != 7 {
		t.Fatalf("generation (size=%v seed=%d) did not adopt full-size build settings", g.size, g.seed)
	}
}

// TestTryRefRefusesDrainedGeneration pins the reference protocol: a
// generation that is retiring but not drained still accepts references
// (those requests started on it), while a fully drained one never hands
// one out again — a plain increment here could transiently resurrect the
// refcount and double-close the drain signal.
func TestTryRefRefusesDrainedGeneration(t *testing.T) {
	ds := testDataset(t)
	s := New(ds, Options{Quick: true, Seed: 3, Workers: 2})
	t.Cleanup(func() { s.Close() })
	g := s.newGeneration(42, ds)
	if !g.tryRef() {
		t.Fatal("live generation refused a reference")
	}
	retired := make(chan struct{})
	go func() {
		defer close(retired)
		g.retire()
	}()
	// Retiring but held: joins are still legal, retire must not finish.
	if !g.tryRef() {
		t.Fatal("retiring-but-held generation refused a reference")
	}
	select {
	case <-retired:
		t.Fatal("retire finished while references were held")
	case <-time.After(20 * time.Millisecond):
	}
	g.release()
	g.release()
	<-retired
	select {
	case <-g.stop:
	default:
		t.Fatal("retired generation's stop not closed")
	}
	// Fully drained: no resurrection, ever.
	for i := 0; i < 3; i++ {
		if g.tryRef() {
			t.Fatal("drained generation handed out a reference")
		}
	}
	if n := g.refs.Load(); n != 0 {
		t.Fatalf("drained generation refs = %d", n)
	}
}
