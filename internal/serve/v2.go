package serve

import (
	"net/http"
	"sync"
	"time"

	"repro/internal/profile"
)

// The /v2 wire format: typed per-query target selection, per-target
// results with model metadata, artifact generation/fingerprint on every
// response, and structured {code, field, message} errors. See API.md for
// the full schema.

// PredictRequestV2 is one /v2 prediction query.
type PredictRequestV2 struct {
	Workload string  `json:"workload"`
	TREFP    float64 `json:"trefp"`
	TempC    float64 `json:"temp_c"`
	// VDD defaults to the campaign voltage (dram.MinVDD) when zero.
	VDD float64 `json:"vdd,omitempty"`
	// Model defaults to the paper's published KNN variant.
	Model string `json:"model,omitempty"`
	// InputSet (1–3) selects the feature set for every requested target;
	// zero means each target's published default.
	InputSet int `json:"input_set,omitempty"`
	// Targets selects which prediction targets to compute (see /v2/models
	// for the serving artifact's catalog); empty means the server's default
	// selection for the artifact. A query that omits a target never trains
	// or waits for that target's model.
	Targets []string `json:"targets,omitempty"`
	// CE is the query's correctable-error telemetry window, time-ordered.
	// Telemetry-driven targets (ue_risk) vectorize it; an absent or empty
	// log is a healthy window, not an error.
	CE []profile.CEEvent `json:"ce,omitempty"`
}

func (r PredictRequestV2) query() query {
	return query{
		Workload: r.Workload, TREFP: r.TREFP, TempC: r.TempC, VDD: r.VDD,
		Model: r.Model, InputSet: r.InputSet, Targets: r.Targets, CE: r.CE,
	}
}

// predictBodyV2 accepts either a single query or a batch.
type predictBodyV2 struct {
	PredictRequestV2
	Queries []PredictRequestV2 `json:"queries,omitempty"`
}

// v2BodyPool recycles decode targets for /v2/predict so the warm
// single-query path allocates no body struct and reuses the previous
// request's Targets and CE backing arrays (encoding/json decodes into
// existing capacity). The reset rules are subtle: fields absent from a
// document keep their pre-decode values, so everything must be cleared on
// put — and Queries must return to nil, not length zero, because the
// handler distinguishes a single query (no "queries" key) from an
// explicit empty batch by that nil.
var v2BodyPool = sync.Pool{New: func() any { return new(predictBodyV2) }}

// putV2Body returns a decode target to the pool. Callers must be done
// with every slice the body owns — resolved.ce aliases the body's CE
// until the prediction completes — so handlers defer this until after
// the response renders.
func putV2Body(b *predictBodyV2) {
	targets := b.Targets[:0]
	clear(targets[:cap(targets)]) // drop string refs pinned past the reslice
	ce := b.CE[:0]
	// Zero the CE elements, not just the length: encoding/json reuses
	// existing array elements when decoding into capacity and only
	// overwrites the fields present in the document, so a sparse event
	// like {"t":1} would otherwise inherit the previous request's DRAM
	// coordinates.
	clear(ce[:cap(ce)])
	clear(b.Queries) // batch elements own their own Targets/CE slices
	b.Queries = nil
	b.PredictRequestV2 = PredictRequestV2{Targets: targets, CE: ce}
	v2BodyPool.Put(b)
}

// TargetResultV2 is one target's prediction inside a /v2 response.
type TargetResultV2 struct {
	// Value is the prediction: device-mean WER, or crash probability.
	Value float64 `json:"value"`
	// ByRank is the per-rank WER breakdown; absent for PUE.
	ByRank []float64 `json:"by_rank,omitempty"`
	// InputSet is the feature set the answering model was trained on.
	InputSet int `json:"input_set"`
}

// PredictItemV2 is the answer to one /v2 query. ElapsedMS is per query:
// the wall time of that query's model resolution and prediction.
type PredictItemV2 struct {
	Workload    string                    `json:"workload"`
	TREFP       float64                   `json:"trefp"`
	TempC       float64                   `json:"temp_c"`
	VDD         float64                   `json:"vdd"`
	Model       string                    `json:"model"`
	Predictions map[string]TargetResultV2 `json:"predictions"`
	ElapsedMS   float64                   `json:"elapsed_ms"`
}

// PredictResponseV2 is the single-query /v2 response: the item plus the
// serving artifact's identity.
type PredictResponseV2 struct {
	PredictItemV2
	Generation  int64  `json:"generation"`
	Fingerprint string `json:"fingerprint"`
}

// PredictBatchResponseV2 is the batch /v2 response.
type PredictBatchResponseV2 struct {
	Results     []*PredictItemV2 `json:"results"`
	Generation  int64            `json:"generation"`
	Fingerprint string           `json:"fingerprint"`
}

// renderV2 adapts a unified prediction to the /v2 item shape.
func renderV2(r *resolved, p *predicted) *PredictItemV2 {
	out := &PredictItemV2{
		Workload:    r.workload,
		TREFP:       r.trefp,
		TempC:       r.tempC,
		VDD:         r.vdd,
		Model:       string(r.kind),
		Predictions: make(map[string]TargetResultV2, len(r.targets)),
		ElapsedMS:   ms(p.elapsed),
	}
	for i, t := range r.targets {
		pred := p.preds[i]
		out.Predictions[string(t)] = TargetResultV2{
			Value:    pred.Value,
			ByRank:   pred.ByRank,
			InputSet: int(pred.Set),
		}
	}
	return out
}

// handlePredictV2 serves POST /v2/predict over the same resolve/predict
// path as /v1, with per-query target selection and structured errors.
func (s *Server) handlePredictV2(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	body := v2BodyPool.Get().(*predictBodyV2)
	defer putV2Body(body)
	if e := decodeBody(r, body); e != nil {
		writeErrorV2(w, e)
		return
	}
	defer func() { s.metrics.predictSeconds.observe(time.Since(start)) }()

	g, err := s.acquire()
	if err != nil {
		writeErrorV2(w, servingErr(err))
		return
	}
	defer g.release()

	if body.Queries != nil {
		qs := make([]query, len(body.Queries))
		for i, q := range body.Queries {
			qs[i] = q.query()
		}
		rs, preds, e := s.predictMany(g, qs)
		if e != nil {
			writeErrorV2(w, e)
			return
		}
		resp := &PredictBatchResponseV2{
			Results:     make([]*PredictItemV2, len(rs)),
			Generation:  g.id,
			Fingerprint: g.fp,
		}
		for i := range rs {
			resp.Results[i] = renderV2(rs[i], preds[i])
		}
		writeJSON(w, http.StatusOK, resp)
		freeMany(rs, preds)
		return
	}

	rq, e := s.resolve(g, body.PredictRequestV2.query())
	if e != nil {
		writeErrorV2(w, e)
		return
	}
	p, e := s.predictOne(g, rq)
	if e != nil {
		putResolved(rq)
		writeErrorV2(w, e)
		return
	}
	writeJSON(w, http.StatusOK, &PredictResponseV2{
		PredictItemV2: *renderV2(rq, p),
		Generation:    g.id,
		Fingerprint:   g.fp,
	})
	putResolved(rq)
	putPredicted(p)
}
