package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/ingest"
	"repro/internal/profile"
	"repro/internal/workload"
)

// newIngestServer stands up an ingest-enabled Server over the shared test
// corpus. artifactPath "" skips persistence.
func newIngestServer(t testing.TB, cfg ingest.Config, artifactPath string) (*Server, *httptest.Server) {
	t.Helper()
	ds := testDataset(t)
	if artifactPath != "" {
		if err := ds.SaveAtomic(artifactPath); err != nil {
			t.Fatal(err)
		}
		loaded, err := core.LoadDataset(artifactPath)
		if err != nil {
			t.Fatal(err)
		}
		ds = loaded
	}
	s := New(ds, Options{Quick: true, Seed: 3, Workers: 2, ArtifactPath: artifactPath, Ingest: &cfg})
	t.Cleanup(func() { s.Close() })
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// ueRowJSON renders one valid UE-labeled telemetry row.
func ueRowJSON(i int) string {
	return fmt.Sprintf(
		`{"server":"server%02d","trefp":%g,"temp_c":%d,"ce":[{"t":0.1,"row":%d,"col":2,"bank":1,"bits":1}],"ue":%d}`,
		i%4, 1.8+float64(i%3)*0.4, 55+i%10, i%128, i%2)
}

func ueRowsJSON(n int) string {
	rows := make([]string, n)
	for i := range rows {
		rows[i] = ueRowJSON(i)
	}
	return `{"rows":[` + strings.Join(rows, ",") + `]}`
}

// errV2 decodes the structured /v2 error envelope.
func errV2(t testing.TB, body []byte) (code, field, msg string) {
	t.Helper()
	var out struct {
		Error struct {
			Code    string `json:"code"`
			Field   string `json:"field"`
			Message string `json:"message"`
		} `json:"error"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatalf("not a /v2 error envelope: %v (%s)", err, body)
	}
	return out.Error.Code, out.Error.Field, out.Error.Message
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t testing.TB, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestIngestDisabled(t *testing.T) {
	_, ts := newTestServer(t)
	for _, path := range []string{"/v2/ingest", "/v2/retrain"} {
		resp, body := post(t, ts, path, "application/json", `{}`)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s on a non-ingest server = %d, want 400", path, resp.StatusCode)
		}
		if code, _, _ := errV2(t, body); code != codeIngestDisabled {
			t.Fatalf("%s code %q, want %q", path, code, codeIngestDisabled)
		}
	}
}

func TestIngestValidation(t *testing.T) {
	_, ts := newIngestServer(t, ingest.Config{Capacity: 64}, "")
	cases := []struct {
		name   string
		body   string
		status int
		code   string
		field  string
	}{
		{"empty batch", `{"rows":[]}`, 400, codeEmptyBatch, "rows"},
		{"missing rows", `{}`, 400, codeEmptyBatch, "rows"},
		{"unknown field", `{"rows":[],"nope":1}`, 400, codeMalformedBody, ""},
		{"bad trefp", `{"rows":[{"trefp":0,"temp_c":60,"ue":1,"server":"s0"}]}`,
			400, codeOutOfRange, "trefp"},
		{"unordered ce", `{"rows":[{"trefp":1.8,"temp_c":60,"ue":0,"server":"s0","ce":[{"t":2},{"t":1}]}]}`,
			400, codeBadTelemetry, "ce"},
		{"no label", `{"rows":[{"trefp":1.8,"temp_c":60}]}`, 400, codeOutOfRange, ""},
		{"ue without server", `{"rows":[{"trefp":1.8,"temp_c":60,"ue":1}]}`,
			400, codeOutOfRange, "server"},
		{"wer without workload", `{"rows":[{"trefp":1.8,"temp_c":60,"wer":1e-9}]}`,
			400, codeOutOfRange, "workload"},
		{"unknown workload", `{"rows":[{"trefp":1.8,"temp_c":60,"workload":"nope","wer":1e-9}]}`,
			404, codeUnknownWorkload, "workload"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, body := post(t, ts, "/v2/ingest", "application/json", tc.body)
			if resp.StatusCode != tc.status {
				t.Fatalf("status %d, want %d (%s)", resp.StatusCode, tc.status, body)
			}
			code, field, msg := errV2(t, body)
			if code != tc.code || field != tc.field {
				t.Fatalf("error (%s, %s), want (%s, %s): %s", code, field, tc.code, tc.field, msg)
			}
			// Per-row failures must locate the row.
			if strings.HasPrefix(tc.body, `{"rows":[{`) && !strings.Contains(msg, "row 0") {
				t.Fatalf("message %q does not locate the failing row", msg)
			}
		})
	}
	// Oversized batch: one past the shared cap.
	big := make([]string, maxBatchBody+1)
	for i := range big {
		big[i] = `{"trefp":1.8,"temp_c":60,"ue":1,"server":"s0"}`
	}
	resp, body := post(t, ts, "/v2/ingest", "application/json",
		`{"rows":[`+strings.Join(big, ",")+`]}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("oversized batch = %d, want 400", resp.StatusCode)
	}
	if code, _, _ := errV2(t, body); code != codeBatchTooLarge {
		t.Fatalf("oversized batch code %q, want %q", code, codeBatchTooLarge)
	}
}

// gateProfiles replaces the server's profile-build seam with one that
// signals and then blocks until released — the deterministic way to hold
// a retrain (and therefore the pipeline consumer) mid-flight.
func gateProfiles(s *Server) (started <-chan struct{}, release func()) {
	ch := make(chan struct{}, 64)
	gate := make(chan struct{})
	var once sync.Once
	orig := s.buildProfile
	s.buildProfile = func(spec workload.Spec, size workload.Size, seed uint64) (*profile.Result, error) {
		ch <- struct{}{}
		<-gate
		return orig(spec, size, seed)
	}
	return ch, func() { once.Do(func() { close(gate) }) }
}

func TestIngestBackpressure(t *testing.T) {
	s, ts := newIngestServer(t, ingest.Config{Capacity: 4, RetrainRows: 1}, "")
	started, release := gateProfiles(s)
	defer release()

	// One WER-labeled row trips the row trigger; the retrain parks on the
	// gated profile build with the consumer inside it.
	resp, body := post(t, ts, "/v2/ingest", "application/json",
		`{"rows":[{"trefp":1.8,"temp_c":60,"workload":"nw","wer":1e-9}]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("seed row = %d: %s", resp.StatusCode, body)
	}
	<-started

	// The queue keeps absorbing up to capacity while the consumer is
	// parked; the overflow answers 429 with the accepted prefix.
	resp, body = post(t, ts, "/v2/ingest", "application/json", ueRowsJSON(5))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow = %d, want 429: %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get("Retry-After"); got == "" {
		t.Fatal("429 without Retry-After")
	}
	code, field, msg := errV2(t, body)
	if code != codeQueueFull || field != "rows" {
		t.Fatalf("overflow error (%s, %s): %s", code, field, msg)
	}
	if !strings.Contains(msg, "accepted 4 of 5") {
		t.Fatalf("overflow message %q does not report the accepted prefix", msg)
	}
	st := s.ingest.Snapshot()
	if st.Accepted != 5 || st.Dropped != 1 {
		t.Fatalf("accepted %d dropped %d, want 5/1", st.Accepted, st.Dropped)
	}

	release()
	// The retrain completes and swaps; the queued telemetry rows drain.
	waitFor(t, "retrain swap", func() bool {
		gen, _ := s.Identity()
		return gen >= 2 && s.ingest.Snapshot().QueueDepth == 0
	})
}

func TestRetrainInProgress(t *testing.T) {
	s, ts := newIngestServer(t, ingest.Config{Capacity: 16}, "")
	started, release := gateProfiles(s)
	defer release()

	resp, body := post(t, ts, "/v2/ingest", "application/json",
		`{"rows":[{"trefp":1.8,"temp_c":60,"workload":"nw","wer":1e-9}]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("seed row = %d: %s", resp.StatusCode, body)
	}
	waitFor(t, "row buffered", func() bool { return s.ingest.Snapshot().Buffered == 1 })

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		// Raw client call: test helpers may not Fatal off the test goroutine.
		resp, err := http.Post(ts.URL+"/v2/retrain", "application/json", strings.NewReader(""))
		if err != nil {
			t.Errorf("first retrain: %v", err)
			return
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("first retrain = %d", resp.StatusCode)
		}
	}()
	<-started // the manual retrain is parked inside the profile build

	resp, body = post(t, ts, "/v2/retrain", "application/json", "")
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("concurrent retrain = %d, want 409: %s", resp.StatusCode, body)
	}
	if code, _, _ := errV2(t, body); code != codeRetrainInProgress {
		t.Fatalf("concurrent retrain code %q, want %q", code, codeRetrainInProgress)
	}
	release()
	wg.Wait()
}

func TestManualRetrainPersistsAndPublishes(t *testing.T) {
	path := filepath.Join(t.TempDir(), "dfault.json.gz")
	s, ts := newIngestServer(t, ingest.Config{Capacity: 64}, path)
	_, fp0 := s.Identity()

	resp, body := post(t, ts, "/v2/ingest", "application/json", ueRowsJSON(6))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest = %d: %s", resp.StatusCode, body)
	}
	var ir IngestResponseV2
	if err := json.Unmarshal(body, &ir); err != nil {
		t.Fatal(err)
	}
	if ir.Accepted != 6 {
		t.Fatalf("accepted %d, want 6", ir.Accepted)
	}
	waitFor(t, "rows buffered", func() bool { return s.ingest.Snapshot().Buffered == 6 })

	resp, body = post(t, ts, "/v2/retrain", "application/json", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("retrain = %d: %s", resp.StatusCode, body)
	}
	var rr RetrainResponseV2
	if err := json.Unmarshal(body, &rr); err != nil {
		t.Fatal(err)
	}
	if !rr.Swapped || rr.Generation != 2 || rr.RowsFolded != 6 {
		t.Fatalf("retrain response %+v, want swapped generation 2 with 6 rows", rr)
	}
	if rr.Fingerprint == fp0 {
		t.Fatal("retrain kept the old fingerprint")
	}

	// The published artifact is on disk under the new fingerprint (written
	// before the swap: the serving identity always exists on disk).
	peeked, err := core.PeekFingerprint(path)
	if err != nil {
		t.Fatal(err)
	}
	if peeked != rr.Fingerprint {
		t.Fatalf("artifact fingerprint %q, serving %q", peeked, rr.Fingerprint)
	}
	// The persisted artifact carries the appended telemetry rows.
	reloaded, err := core.LoadDataset(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(reloaded.UER) != len(testDataset(t).UER)+6 {
		t.Fatalf("persisted artifact has %d UE rows", len(reloaded.UER))
	}

	// The ingest surfaces: /v2/stats section and /metrics counters.
	resp, body = get(t, ts, "/v2/stats")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/v2/stats = %d", resp.StatusCode)
	}
	var stats StatsResponseV2
	if err := json.Unmarshal(body, &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Ingest == nil {
		t.Fatal("/v2/stats has no ingest section on an ingest-enabled server")
	}
	if stats.Ingest.Accepted != 6 || stats.Ingest.Retrains != 1 || stats.Ingest.Buffered != 0 {
		t.Fatalf("ingest stats %+v", stats.Ingest)
	}
	_, body = get(t, ts, "/metrics")
	for _, want := range []string{
		"dramserve_ingest_accepted_total 6",
		"dramserve_ingest_dropped_total 0",
		"dramserve_ingest_queue_depth 0",
		"dramserve_retrain_total 1",
		"dramserve_retrain_failures_total 0",
		"dramserve_retrain_seconds_count 1",
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	// A retrain with nothing buffered republishes an identical dataset:
	// the fingerprint no-op keeps the generation.
	resp, body = post(t, ts, "/v2/retrain", "application/json", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("idle retrain = %d: %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &rr); err != nil {
		t.Fatal(err)
	}
	if rr.Swapped || rr.Generation != 2 || rr.RowsFolded != 0 {
		t.Fatalf("idle retrain %+v, want unswapped generation 2", rr)
	}

	// A non-ingest /v2/stats run has no ingest section (wire shape is
	// additive).
	_, ts2 := newTestServer(t)
	_, body = get(t, ts2, "/v2/stats")
	if strings.Contains(string(body), `"ingest"`) {
		t.Fatal("non-ingest /v2/stats carries an ingest section")
	}
}

// TestIngestRetrainUnderLoad is the closed-loop e2e: predicts hammer the
// server while ingested rows trip the row-count trigger and a retrain
// publishes a new fingerprinted generation mid-traffic. Run with -race
// this proves the publication seam drops or blocks no in-flight query.
func TestIngestRetrainUnderLoad(t *testing.T) {
	path := filepath.Join(t.TempDir(), "dfault.json.gz")
	s, ts := newIngestServer(t, ingest.Config{Capacity: 4096, RetrainRows: 48}, path)
	_, fp0 := s.Identity()

	// Warm the predict path so the load loop measures serving, not the
	// one-time profile build and model fit.
	predictBody := `{"workload":"nw","trefp":1.8,"temp_c":60,"targets":["wer","pue"]}`
	resp, body := post(t, ts, "/v2/predict", "application/json", predictBody)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("warmup predict = %d: %s", resp.StatusCode, body)
	}

	var (
		stopLoad  = make(chan struct{})
		predicts  atomic.Int64
		failures  atomic.Int64
		fpSwitch  atomic.Bool
		loadWG    sync.WaitGroup
		numLoader = 4
	)
	for w := 0; w < numLoader; w++ {
		loadWG.Add(1)
		go func() {
			defer loadWG.Done()
			for {
				select {
				case <-stopLoad:
					return
				default:
				}
				resp, err := http.Post(ts.URL+"/v2/predict", "application/json",
					strings.NewReader(predictBody))
				if err != nil {
					failures.Add(1)
					continue
				}
				var out PredictResponseV2
				decErr := json.NewDecoder(resp.Body).Decode(&out)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK || decErr != nil {
					failures.Add(1)
					continue
				}
				if out.Fingerprint != fp0 {
					fpSwitch.Store(true)
				}
				predicts.Add(1)
			}
		}()
	}

	// Feed telemetry until the row trigger fires and the swap lands.
	for i := 0; i < 8; i++ {
		resp, body := post(t, ts, "/v2/ingest", "application/json", ueRowsJSON(12))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("ingest burst %d = %d: %s", i, resp.StatusCode, body)
		}
	}
	waitFor(t, "ingest-triggered retrain", func() bool {
		gen, fp := s.Identity()
		return gen >= 2 && fp != fp0
	})
	// Keep predicting across the post-swap window, then stop.
	base := predicts.Load()
	waitFor(t, "post-swap predicts", func() bool { return predicts.Load() > base+50 })
	close(stopLoad)
	loadWG.Wait()

	if n := failures.Load(); n != 0 {
		t.Fatalf("%d predicts failed across the retrain (want 0 dropped/blocked)", n)
	}
	if predicts.Load() == 0 {
		t.Fatal("no predicts completed")
	}
	if !fpSwitch.Load() {
		t.Fatal("no predict observed the new fingerprint after the swap")
	}
	gen, fp := s.Identity()
	if gen < 2 || fp == fp0 {
		t.Fatalf("serving identity (%d, %s) did not advance", gen, fp)
	}
	// A second row-count retrain may still be mid-flight (disk written,
	// swap pending); wait for disk and serving identity to agree.
	waitFor(t, "artifact matches serving identity", func() bool {
		_, serving := s.Identity()
		peeked, err := core.PeekFingerprint(path)
		return err == nil && peeked == serving
	})
	if st := s.ingest.Snapshot(); st.Retrains == 0 {
		t.Fatalf("pipeline counted %d retrains", st.Retrains)
	}
}
