package serve

import (
	"errors"
	"fmt"
)

// errClosed reports a request caught by server shutdown.
var errClosed = errors.New("serve: server closed")

// maxBatchItems bounds how many in-flight requests one flush coalesces.
const maxBatchItems = 256

// batcher coalesces concurrent prediction calls into one PredictBatch
// invocation. Callers hand in their query slice and block; a dispatcher
// goroutine gathers every slice queued at that moment (up to
// maxBatchItems), runs them as a single batch on the engine's worker pool,
// and hands each caller back its window of the results. Because every
// query is independent and deterministic, coalescing never changes a
// result — it only amortizes dispatch overhead, which is what keeps warm
// tail latency flat under concurrent load.
type batcher[Q, R any] struct {
	run  func([]Q) ([]R, error)
	ch   chan batchItem[Q, R]
	stop <-chan struct{}
	m    *metrics
}

type batchItem[Q, R any] struct {
	qs  []Q
	out chan batchResult[R]
}

type batchResult[R any] struct {
	rs  []R
	err error
}

// newBatcher starts the dispatcher goroutine; it exits when stop closes.
func newBatcher[Q, R any](run func([]Q) ([]R, error), stop <-chan struct{}, m *metrics) *batcher[Q, R] {
	b := &batcher[Q, R]{
		run:  run,
		ch:   make(chan batchItem[Q, R], maxBatchItems),
		stop: stop,
		m:    m,
	}
	go b.loop()
	return b
}

func (b *batcher[Q, R]) loop() {
	for {
		var first batchItem[Q, R]
		select {
		case <-b.stop:
			return
		case first = <-b.ch:
		}
		items := []batchItem[Q, R]{first}
	gather:
		for len(items) < maxBatchItems {
			select {
			case it := <-b.ch:
				items = append(items, it)
			default:
				break gather
			}
		}
		var all []Q
		for _, it := range items {
			all = append(all, it.qs...)
		}
		rs, err := b.run(all)
		if err == nil && len(rs) != len(all) {
			err = fmt.Errorf("serve: batch returned %d results for %d queries", len(rs), len(all))
		}
		b.m.batches.inc()
		b.m.batchedQueries.add(int64(len(all)))
		off := 0
		for _, it := range items {
			if err != nil {
				it.out <- batchResult[R]{err: err}
				continue
			}
			it.out <- batchResult[R]{rs: rs[off : off+len(it.qs)]}
			off += len(it.qs)
		}
	}
}

// do submits qs and blocks until the batch containing them completes (or
// the server shuts down). The returned slice holds one result per query,
// in query order.
func (b *batcher[Q, R]) do(qs []Q) ([]R, error) {
	if len(qs) == 0 {
		return nil, nil
	}
	it := batchItem[Q, R]{qs: qs, out: make(chan batchResult[R], 1)}
	select {
	case b.ch <- it:
	case <-b.stop:
		return nil, errClosed
	}
	select {
	case res := <-it.out:
		return res.rs, res.err
	case <-b.stop:
		return nil, errClosed
	}
}
