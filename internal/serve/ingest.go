package serve

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/dram"
	"repro/internal/engine"
	"repro/internal/ingest"
	"repro/internal/profile"
	"repro/internal/workload"
)

// The streaming-ingest surface: POST /v2/ingest feeds telemetry rows into
// the bounded pipeline (internal/ingest), POST /v2/retrain forces the
// buffered rows into a retrain. The pipeline's retrain callback lands in
// retrainWith below: it rebuilds the dataset through the same trainer
// seams the registry uses, persists the artifact atomically, and publishes
// through the refcounted generation swap — in-flight queries finish on the
// generation they started with, exactly as a /v1/reload.

// IngestRequestV2 is the POST /v2/ingest body.
type IngestRequestV2 struct {
	Rows []ingest.Row `json:"rows"`
}

// IngestResponseV2 is the POST /v2/ingest success (and 429 partial) body.
type IngestResponseV2 struct {
	// Accepted counts the rows enqueued from this request.
	Accepted int `json:"accepted"`
	// QueueDepth is the intake queue's depth after the offer.
	QueueDepth int64 `json:"queue_depth"`
}

// RetrainResponseV2 is the POST /v2/retrain body: the resulting serving
// identity plus how many buffered rows the retrain folded in.
type RetrainResponseV2 struct {
	Generation  int64   `json:"generation"`
	Fingerprint string  `json:"fingerprint"`
	Swapped     bool    `json:"swapped"`
	RowsFolded  int     `json:"rows_folded"`
	ElapsedMS   float64 `json:"elapsed_ms"`
}

// ingestDisabled is the uniform answer on both ingest endpoints when the
// server runs without a pipeline.
func ingestDisabled() *apiError {
	return errf(http.StatusBadRequest, codeIngestDisabled, "",
		"ingest disabled: the server was started without -ingest")
}

// handleIngestV2 serves POST /v2/ingest: validate every row (all-or-
// nothing, like a predict batch), then offer the batch to the bounded
// queue. A full queue answers 429 with Retry-After and the accepted
// prefix count — the explicit backpressure contract.
func (s *Server) handleIngestV2(w http.ResponseWriter, r *http.Request) {
	if s.ingest == nil {
		writeErrorV2(w, ingestDisabled())
		return
	}
	var body IngestRequestV2
	if e := decodeBody(r, &body); e != nil {
		writeErrorV2(w, e)
		return
	}
	if len(body.Rows) == 0 {
		writeErrorV2(w, errf(http.StatusBadRequest, codeEmptyBatch, "rows", "empty batch"))
		return
	}
	if len(body.Rows) > maxBatchBody {
		writeErrorV2(w, errf(http.StatusBadRequest, codeBatchTooLarge, "rows",
			"batch of %d exceeds %d", len(body.Rows), maxBatchBody))
		return
	}
	for i := range body.Rows {
		row := &body.Rows[i]
		if field, err := row.Validate(); err != nil {
			code := codeOutOfRange
			if field == "ce" {
				code = codeBadTelemetry
			}
			writeErrorV2(w, errf(http.StatusBadRequest, code, field, "row %d: %v", i, err))
			return
		}
		// The workload label must resolve against the benchmark registry
		// here — the pipeline cannot, and a retrain must never discover an
		// unprofilable row it has already accepted.
		if row.Workload != "" {
			if _, err := workload.FindSpec(row.Workload); err != nil {
				writeErrorV2(w, errf(http.StatusNotFound, codeUnknownWorkload, "workload",
					"row %d: %v", i, err))
				return
			}
		}
	}
	n, err := s.ingest.Offer(body.Rows)
	if err != nil {
		if errors.Is(err, ingest.ErrQueueFull) {
			w.Header().Set("Retry-After", "1")
			writeErrorV2(w, errf(http.StatusTooManyRequests, codeQueueFull, "rows",
				"queue full: accepted %d of %d rows, retry the rest later", n, len(body.Rows)))
			return
		}
		writeErrorV2(w, servingErr(err))
		return
	}
	writeJSON(w, http.StatusOK, &IngestResponseV2{
		Accepted:   n,
		QueueDepth: s.ingest.Snapshot().QueueDepth,
	})
}

// handleRetrainV2 serves POST /v2/retrain: force the buffered rows into a
// retrain now. Same empty-body contract as /v1/reload; a retrain already
// running (a background trigger mid-rebuild) answers 409.
func (s *Server) handleRetrainV2(w http.ResponseWriter, r *http.Request) {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	var body struct{}
	if err := dec.Decode(&body); err != nil && err != io.EOF {
		writeErrorV2(w, decodeErr(err))
		return
	}
	if s.ingest == nil {
		writeErrorV2(w, ingestDisabled())
		return
	}
	n, err := s.ingest.RetrainNow()
	if err != nil {
		switch {
		case errors.Is(err, ingest.ErrRetrainInProgress):
			writeErrorV2(w, errf(http.StatusConflict, codeRetrainInProgress, "", "%v", err))
		case errors.Is(err, ingest.ErrClosed):
			writeErrorV2(w, errf(http.StatusServiceUnavailable, codeUnavailable, "", "%v", err))
		default:
			e := servingErr(err)
			e.msg = "retrain: " + e.msg
			writeErrorV2(w, e)
		}
		return
	}
	res := s.lastRetrain.Load()
	if res == nil {
		// RetrainNow succeeded without a stored result only if the callback
		// was never invoked, which cannot happen on a live pipeline.
		writeErrorV2(w, errf(http.StatusInternalServerError, codeInternal, "",
			"retrain completed without a result"))
		return
	}
	writeJSON(w, http.StatusOK, &RetrainResponseV2{
		Generation:  res.Generation,
		Fingerprint: res.Fingerprint,
		Swapped:     res.Swapped,
		RowsFolded:  n,
		ElapsedMS:   res.ElapsedMS,
	})
}

// retrainWith is the pipeline's RetrainFunc: append the drained rows to
// the serving dataset, persist the refreshed artifact atomically, and
// publish it as a new generation. The returned summary (the appended
// dataset's own telemetry distribution) becomes the pipeline's next drift
// baseline.
func (s *Server) retrainWith(rows []ingest.Row, reason string) (*core.TelemetrySummary, error) {
	_ = reason // uniform path; the trigger is visible in the pipeline counters
	start := time.Now()
	g, err := s.acquire()
	if err != nil {
		return nil, err
	}
	wer, pue, uer, err := s.convertRows(g, rows)
	g.release()
	if err != nil {
		return nil, err
	}

	s.reloadMu.Lock()
	defer s.reloadMu.Unlock()
	if err := s.closedErr(); err != nil {
		return nil, err
	}
	ds := s.gen.Load().ds.Append(wer, pue, uer)
	// Persist before publishing: a failed write must never leave the
	// server answering a fingerprint that exists nowhere on disk, and the
	// atomic rename keeps -reload-interval pollers (and sibling processes)
	// from ever reading a torn artifact.
	if s.artifactPath != "" && ds.Fingerprint() != s.gen.Load().fp {
		if err := ds.SaveAtomic(s.artifactPath); err != nil {
			return nil, err
		}
	}
	res := s.swapDataset(ds, start)
	s.lastRetrain.Store(res)
	s.metrics.retrainSeconds.observe(time.Since(start))
	return ds.TelemetrySummary(), nil
}

// convertRows turns validated ingest rows into dataset samples. WER/PUE
// rows need their workload's program features; the distinct workloads
// resolve through the generation's profile cache, fanned out on the
// engine's bounded worker pool (one cold build per workload, not per row).
func (s *Server) convertRows(g *generation, rows []ingest.Row) (
	wer []core.WERSample, pue []core.PUESample, uer []core.UESample, err error) {
	labelSet := map[string]bool{}
	for i := range rows {
		if rows[i].Workload != "" && (rows[i].WER != nil || rows[i].PUE != nil) {
			labelSet[rows[i].Workload] = true
		}
	}
	labels := make([]string, 0, len(labelSet))
	for l := range labelSet {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	type profiled struct {
		spec workload.Spec
		prof *profile.Result
	}
	profs := map[string]profiled{}
	if len(labels) > 0 {
		outs, mapErr := engine.Map(len(labels), func(i int) (profiled, error) {
			spec, err := workload.FindSpec(labels[i])
			if err != nil {
				return profiled{}, err
			}
			prof, err := s.profileFor(g, spec)
			if err != nil {
				return profiled{}, err
			}
			return profiled{spec, prof}, nil
		}, engine.Options{Workers: s.workers, Context: s.ctx})
		if mapErr != nil {
			return nil, nil, nil, mapErr
		}
		for i, o := range outs {
			profs[labels[i]] = o
		}
	}
	for i := range rows {
		row := &rows[i]
		vdd := row.VDD
		if vdd == 0 {
			vdd = dram.MinVDD
		}
		if row.UE != nil {
			uer = append(uer, core.UESample{
				Server:     row.Server,
				TREFP:      row.TREFP,
				VDD:        vdd,
				TempC:      row.TempC,
				CEFeatures: profile.CEFeatures(row.CE),
				UE:         *row.UE,
			})
		}
		if row.WER == nil && row.PUE == nil {
			continue
		}
		p := profs[row.Workload]
		if row.WER != nil {
			w := *row.WER
			if w < core.WERFloor {
				// Zero observed errors records at the campaign's resolution
				// limit, matching how BuildDataset floors its own rows.
				w = core.WERFloor
			}
			wer = append(wer, core.WERSample{
				Workload: p.spec.Label,
				Threads:  p.spec.Threads,
				TREFP:    row.TREFP,
				VDD:      vdd,
				TempC:    row.TempC,
				Rank:     row.Rank,
				Features: p.prof.Features,
				WER:      w,
			})
		}
		if row.PUE != nil {
			pue = append(pue, core.PUESample{
				Workload: p.spec.Label,
				Threads:  p.spec.Threads,
				TREFP:    row.TREFP,
				VDD:      vdd,
				TempC:    row.TempC,
				Features: p.prof.Features,
				PUE:      *row.PUE,
			})
		}
	}
	return wer, pue, uer, nil
}
