package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dram"
	"repro/internal/workload"
	"repro/internal/xgene"
)

// testDataset builds one small campaign corpus shared by every test in the
// package (the dataset is immutable; each test gets its own Server).
var (
	dsOnce sync.Once
	dsVal  *core.Dataset
	dsErr  error
)

func testDataset(t testing.TB) *core.Dataset {
	t.Helper()
	dsOnce.Do(func() {
		labels := []string{"backprop", "nw", "srad(par)", "memcached", "random"}
		var specs []workload.Spec
		for _, l := range labels {
			spec, err := workload.FindSpec(l)
			if err != nil {
				dsErr = err
				return
			}
			specs = append(specs, spec)
		}
		profiles, err := core.BuildProfiles(specs, workload.SizeTest, 3, 0)
		if err != nil {
			dsErr = err
			return
		}
		srv := xgene.MustNewServer(xgene.Config{Scale: 32})
		dsVal, dsErr = core.BuildDataset(srv, profiles, specs, core.CampaignOptions{Reps: 4})
	})
	if dsErr != nil {
		t.Fatal(dsErr)
	}
	return dsVal
}

// newTestServer stands up a Server plus its httptest front end. The
// profiling seed matches testDataset's so cached query profiles are the
// corpus profiles.
func newTestServer(t testing.TB) (*Server, *httptest.Server) {
	t.Helper()
	s := New(testDataset(t), Options{Quick: true, Seed: 3, Workers: 2})
	t.Cleanup(func() { s.Close() })
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// readBody drains and closes a response body.
func readBody(t testing.TB, resp *http.Response) []byte {
	t.Helper()
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func post(t testing.TB, ts *httptest.Server, path, contentType, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(ts.URL+path, contentType, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp, readBody(t, resp)
}

func postPredict(t testing.TB, ts *httptest.Server, body string) (*http.Response, []byte) {
	t.Helper()
	return post(t, ts, "/v1/predict", "application/json", body)
}

func mustSpec(t testing.TB, label string) workload.Spec {
	t.Helper()
	spec, err := workload.FindSpec(label)
	if err != nil {
		t.Fatal(err)
	}
	return spec
}

func get(t testing.TB, ts *httptest.Server, path string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t)
	resp, data := get(t, ts, "/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d: %s", resp.StatusCode, data)
	}
	var body struct {
		Status    string `json:"status"`
		WERRows   int    `json:"wer_rows"`
		PUERows   int    `json:"pue_rows"`
		Workloads int    `json:"workloads"`
	}
	if err := json.Unmarshal(data, &body); err != nil {
		t.Fatal(err)
	}
	if body.Status != "ok" || body.WERRows == 0 || body.PUERows == 0 || body.Workloads == 0 {
		t.Fatalf("healthz body: %s", data)
	}
}

func TestWorkloadsEndpoint(t *testing.T) {
	_, ts := newTestServer(t)
	resp, data := get(t, ts, "/v1/workloads")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("workloads = %d: %s", resp.StatusCode, data)
	}
	var body struct {
		Workloads []struct {
			Label    string `json:"label"`
			Threads  int    `json:"threads"`
			Profiled bool   `json:"profiled"`
			InCorpus bool   `json:"in_corpus"`
		} `json:"workloads"`
	}
	if err := json.Unmarshal(data, &body); err != nil {
		t.Fatal(err)
	}
	if len(body.Workloads) != len(workload.ExtendedSet()) {
		t.Fatalf("%d workloads listed", len(body.Workloads))
	}
	inCorpus := 0
	for _, w := range body.Workloads {
		if w.Profiled {
			t.Fatalf("%s profiled before any query", w.Label)
		}
		if w.InCorpus {
			inCorpus++
		}
	}
	if inCorpus == 0 {
		t.Fatal("no corpus workloads flagged")
	}
}

func TestModelsEndpoint(t *testing.T) {
	_, ts := newTestServer(t)
	resp, data := get(t, ts, "/v1/models")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("models = %d: %s", resp.StatusCode, data)
	}
	var body struct {
		Kinds     []string `json:"kinds"`
		InputSets []int    `json:"input_sets"`
		Trained   []struct {
			Kind     string  `json:"kind"`
			InputSet int     `json:"input_set"`
			Target   string  `json:"target"`
			TrainMS  float64 `json:"train_ms"`
		} `json:"trained"`
	}
	if err := json.Unmarshal(data, &body); err != nil {
		t.Fatal(err)
	}
	if len(body.Kinds) != 3 || len(body.InputSets) != 3 {
		t.Fatalf("models body: %s", data)
	}
	if len(body.Trained) != 0 {
		t.Fatal("models trained before any query")
	}

	// One prediction lazily trains the default WER and PUE predictors.
	if resp, data := postPredict(t, ts, `{"workload":"memcached","trefp":2.283,"temp_c":60}`); resp.StatusCode != http.StatusOK {
		t.Fatalf("predict = %d: %s", resp.StatusCode, data)
	}
	_, data = get(t, ts, "/v1/models")
	if err := json.Unmarshal(data, &body); err != nil {
		t.Fatal(err)
	}
	targets := map[string]bool{}
	for _, tr := range body.Trained {
		targets[tr.Target] = true
		if tr.Kind != string(core.ModelKNN) {
			t.Fatalf("unexpected trained kind %q", tr.Kind)
		}
	}
	if !targets["wer"] || !targets["pue"] {
		t.Fatalf("trained entries missing a target: %s", data)
	}
}

func TestPredictSingleMatchesDirectModel(t *testing.T) {
	s, ts := newTestServer(t)
	resp, data := postPredict(t, ts, `{"workload":"srad(par)","trefp":2.283,"temp_c":60}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("predict = %d: %s", resp.StatusCode, data)
	}
	var got PredictResponse
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	if len(got.WERByRank) != dram.NumRanks {
		t.Fatalf("%d rank predictions", len(got.WERByRank))
	}
	if got.WERMean <= 0 || got.PUE < 0 || got.PUE > 1 {
		t.Fatalf("implausible prediction: %s", data)
	}
	if got.Model != string(core.ModelKNN) || got.VDD != dram.MinVDD {
		t.Fatalf("defaults not applied: %s", data)
	}

	// The served numbers must equal a model trained directly on the same
	// corpus (training is deterministic), bit-for-bit.
	spec, err := workload.FindSpec("srad(par)")
	if err != nil {
		t.Fatal(err)
	}
	prof, err := s.profileFor(s.gen.Load(), spec)
	if err != nil {
		t.Fatal(err)
	}
	werModel, err := core.Train(testDataset(t), core.TargetWER, core.ModelKNN, core.InputSet1, 2)
	if err != nil {
		t.Fatal(err)
	}
	pueModel, err := core.Train(testDataset(t), core.TargetPUE, core.ModelKNN, core.InputSet2, 2)
	if err != nil {
		t.Fatal(err)
	}
	wantWER, err := werModel.Predict(core.Query{
		Features: prof.Features, TREFP: 2.283, VDD: dram.MinVDD, TempC: 60,
		Rank: core.RankDevice,
	})
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < dram.NumRanks; r++ {
		if got.WERByRank[r] != wantWER.ByRank[r] {
			t.Fatalf("rank %d: served %v != direct %v", r, got.WERByRank[r], wantWER.ByRank[r])
		}
	}
	wantPUE, err := pueModel.Predict(core.Query{
		Features: prof.Features, TREFP: 2.283, VDD: dram.MinVDD, TempC: 60,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got.PUE != wantPUE.Value {
		t.Fatalf("PUE: served %v != direct %v", got.PUE, wantPUE.Value)
	}
}

func TestPredictBatchBodyMatchesSingles(t *testing.T) {
	_, ts := newTestServer(t)
	queries := []PredictRequest{
		{Workload: "backprop", TREFP: 0.618, TempC: 50},
		{Workload: "nw", TREFP: 1.727, TempC: 60},
		{Workload: "memcached", TREFP: 2.283, TempC: 70, Model: "RDF"},
	}
	var singles []PredictResponse
	for _, q := range queries {
		b, _ := json.Marshal(q)
		resp, data := postPredict(t, ts, string(b))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("single %s = %d: %s", q.Workload, resp.StatusCode, data)
		}
		var r PredictResponse
		if err := json.Unmarshal(data, &r); err != nil {
			t.Fatal(err)
		}
		singles = append(singles, r)
	}
	b, _ := json.Marshal(map[string]any{"queries": queries})
	resp, data := postPredict(t, ts, string(b))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch = %d: %s", resp.StatusCode, data)
	}
	var batch struct {
		Results []PredictResponse `json:"results"`
	}
	if err := json.Unmarshal(data, &batch); err != nil {
		t.Fatal(err)
	}
	if len(batch.Results) != len(queries) {
		t.Fatalf("%d batch results for %d queries", len(batch.Results), len(queries))
	}
	for i, r := range batch.Results {
		if r.WERMean != singles[i].WERMean || r.PUE != singles[i].PUE {
			t.Fatalf("query %d: batch (%v, %v) != single (%v, %v)",
				i, r.WERMean, r.PUE, singles[i].WERMean, singles[i].PUE)
		}
		for k := range r.WERByRank {
			if r.WERByRank[k] != singles[i].WERByRank[k] {
				t.Fatalf("query %d rank %d differs between batch and single", i, k)
			}
		}
	}
}

func TestPredictErrorPaths(t *testing.T) {
	_, ts := newTestServer(t)
	cases := []struct {
		name string
		body string
		code int
	}{
		{"malformed json", `{"workload":`, http.StatusBadRequest},
		{"unknown field", `{"workload":"nw","trefp":1,"temp_c":60,"bogus":1}`, http.StatusBadRequest},
		{"unknown workload", `{"workload":"doom","trefp":1,"temp_c":60}`, http.StatusNotFound},
		{"zero trefp", `{"workload":"nw","temp_c":60}`, http.StatusBadRequest},
		{"negative trefp", `{"workload":"nw","trefp":-1,"temp_c":60}`, http.StatusBadRequest},
		{"bad model", `{"workload":"nw","trefp":1,"temp_c":60,"model":"GPT"}`, http.StatusBadRequest},
		{"bad input set", `{"workload":"nw","trefp":1,"temp_c":60,"input_set":7}`, http.StatusBadRequest},
		{"negative vdd", `{"workload":"nw","trefp":1,"temp_c":60,"vdd":-2}`, http.StatusBadRequest},
		{"empty batch", `{"queries":[]}`, http.StatusBadRequest},
		{"batch with unknown workload", `{"queries":[{"workload":"doom","trefp":1,"temp_c":60}]}`, http.StatusNotFound},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, data := postPredict(t, ts, tc.body)
			if resp.StatusCode != tc.code {
				t.Fatalf("code = %d, want %d: %s", resp.StatusCode, tc.code, data)
			}
			var e struct {
				Error string `json:"error"`
			}
			if err := json.Unmarshal(data, &e); err != nil || e.Error == "" {
				t.Fatalf("no error body: %s", data)
			}
		})
	}

	// Oversized batch.
	var sb strings.Builder
	sb.WriteString(`{"queries":[`)
	for i := 0; i <= maxBatchBody; i++ {
		if i > 0 {
			sb.WriteString(",")
		}
		sb.WriteString(`{"workload":"nw","trefp":1,"temp_c":60}`)
	}
	sb.WriteString(`]}`)
	if resp, _ := postPredict(t, ts, sb.String()); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("oversized batch = %d", resp.StatusCode)
	}
}

// TestMethodNotAllowed pins the uniform method contract across every
// endpoint: a wrong method is always 405 with the Allow header naming the
// one allowed method, and a POST with a non-JSON content type is 415.
func TestMethodNotAllowed(t *testing.T) {
	_, ts := newTestServer(t)
	for _, path := range []string{"/v1/predict", "/v2/predict", "/v1/reload"} {
		resp, _ := get(t, ts, path)
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Fatalf("GET %s = %d", path, resp.StatusCode)
		}
		if allow := resp.Header.Get("Allow"); allow != http.MethodPost {
			t.Fatalf("GET %s: Allow = %q, want POST", path, allow)
		}
		// Wrong content type on the right method: uniformly 415.
		if resp, _ := post(t, ts, path, "text/plain", "{}"); resp.StatusCode != http.StatusUnsupportedMediaType {
			t.Fatalf("text/plain POST %s = %d, want 415", path, resp.StatusCode)
		}
	}
	for _, path := range []string{"/v1/workloads", "/v1/models", "/healthz", "/metrics"} {
		resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(nil))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Fatalf("POST %s = %d", path, resp.StatusCode)
		}
		if allow := resp.Header.Get("Allow"); allow != http.MethodGet {
			t.Fatalf("POST %s: Allow = %q, want GET", path, allow)
		}
	}
}

// scrapeMetrics parses the plain-text exposition into name{labels} -> value.
func scrapeMetrics(t testing.TB, ts *httptest.Server) map[string]float64 {
	t.Helper()
	resp, data := get(t, ts, "/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics = %d", resp.StatusCode)
	}
	out := map[string]float64{}
	sc := bufio.NewScanner(bytes.NewReader(data))
	for sc.Scan() {
		line := sc.Text()
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			continue
		}
		v, err := strconv.ParseFloat(line[sp+1:], 64)
		if err != nil {
			t.Fatalf("unparseable metric line %q", line)
		}
		out[line[:sp]] = v
	}
	return out
}

func TestMetricsAccounting(t *testing.T) {
	_, ts := newTestServer(t)

	m := scrapeMetrics(t, ts)
	for _, k := range []string{
		"dramserve_profile_cache_hits_total",
		"dramserve_profile_cache_misses_total",
		"dramserve_model_registry_hits_total",
		"dramserve_model_registry_misses_total",
	} {
		if m[k] != 0 {
			t.Fatalf("%s = %v before any request", k, m[k])
		}
	}

	// First query: one profile miss, two model misses (WER + PUE).
	if resp, data := postPredict(t, ts, `{"workload":"nw","trefp":1.173,"temp_c":60}`); resp.StatusCode != http.StatusOK {
		t.Fatalf("predict = %d: %s", resp.StatusCode, data)
	}
	m = scrapeMetrics(t, ts)
	if m["dramserve_profile_cache_misses_total"] != 1 || m["dramserve_profile_cache_hits_total"] != 0 {
		t.Fatalf("profile cache after first query: misses=%v hits=%v",
			m["dramserve_profile_cache_misses_total"], m["dramserve_profile_cache_hits_total"])
	}
	if m["dramserve_model_registry_misses_total"] != 2 || m["dramserve_model_registry_hits_total"] != 0 {
		t.Fatalf("model registry after first query: misses=%v hits=%v",
			m["dramserve_model_registry_misses_total"], m["dramserve_model_registry_hits_total"])
	}

	// Repeat query: pure hits, no new misses.
	if resp, data := postPredict(t, ts, `{"workload":"nw","trefp":2.283,"temp_c":70}`); resp.StatusCode != http.StatusOK {
		t.Fatalf("predict = %d: %s", resp.StatusCode, data)
	}
	m = scrapeMetrics(t, ts)
	if m["dramserve_profile_cache_misses_total"] != 1 || m["dramserve_profile_cache_hits_total"] != 1 {
		t.Fatalf("profile cache after repeat query: misses=%v hits=%v",
			m["dramserve_profile_cache_misses_total"], m["dramserve_profile_cache_hits_total"])
	}
	if m["dramserve_model_registry_misses_total"] != 2 || m["dramserve_model_registry_hits_total"] != 2 {
		t.Fatalf("model registry after repeat query: misses=%v hits=%v",
			m["dramserve_model_registry_misses_total"], m["dramserve_model_registry_hits_total"])
	}

	// A different workload misses the profile cache but hits the registry.
	if resp, data := postPredict(t, ts, `{"workload":"backprop","trefp":1.173,"temp_c":60}`); resp.StatusCode != http.StatusOK {
		t.Fatalf("predict = %d: %s", resp.StatusCode, data)
	}
	m = scrapeMetrics(t, ts)
	if m["dramserve_profile_cache_misses_total"] != 2 {
		t.Fatalf("profile cache misses = %v after new workload", m["dramserve_profile_cache_misses_total"])
	}
	if m["dramserve_model_registry_misses_total"] != 2 || m["dramserve_model_registry_hits_total"] != 4 {
		t.Fatalf("model registry after new workload: misses=%v hits=%v",
			m["dramserve_model_registry_misses_total"], m["dramserve_model_registry_hits_total"])
	}

	// Request accounting and latency histograms moved too.
	if m[`dramserve_requests_total{endpoint="/v1/predict",code="200"}`] != 3 {
		t.Fatalf("predict request count = %v", m[`dramserve_requests_total{endpoint="/v1/predict",code="200"}`])
	}
	if m["dramserve_predict_seconds_count"] != 3 {
		t.Fatalf("predict histogram count = %v", m["dramserve_predict_seconds_count"])
	}
	if m["dramserve_train_seconds_count"] != 2 {
		t.Fatalf("train histogram count = %v", m["dramserve_train_seconds_count"])
	}
	if m["dramserve_predict_batches_total"] < 1 || m["dramserve_predict_batched_queries_total"] < 1 {
		t.Fatal("batcher accounting did not move")
	}
	if resp, _ := postPredict(t, ts, `{"workload":"doom","trefp":1,"temp_c":60}`); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("predict unknown = %d", resp.StatusCode)
	}
	m = scrapeMetrics(t, ts)
	if m[`dramserve_requests_total{endpoint="/v1/predict",code="404"}`] != 1 {
		t.Fatal("404 not counted")
	}
}

// TestConcurrentPredict hammers /v1/predict from 32 goroutines; run under
// -race this exercises the singleflight registry (every goroutine races to
// train the same models), the profile cache and the micro-batcher. All
// responses for the same query must be identical.
func TestConcurrentPredict(t *testing.T) {
	_, ts := newTestServer(t)
	const goroutines = 32
	const perG = 4
	bodies := []string{
		`{"workload":"nw","trefp":1.173,"temp_c":60}`,
		`{"workload":"backprop","trefp":2.283,"temp_c":50}`,
		`{"workload":"srad(par)","trefp":0.618,"temp_c":70}`,
		`{"workload":"memcached","trefp":1.727,"temp_c":60,"model":"RDF"}`,
	}
	results := make([][]PredictResponse, goroutines)
	errs := make([]error, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				body := bodies[(g+i)%len(bodies)]
				resp, err := http.Post(ts.URL+"/v1/predict", "application/json", strings.NewReader(body))
				if err != nil {
					errs[g] = err
					return
				}
				data, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err != nil {
					errs[g] = err
					return
				}
				if resp.StatusCode != http.StatusOK {
					errs[g] = fmt.Errorf("status %d: %s", resp.StatusCode, data)
					return
				}
				var r PredictResponse
				if err := json.Unmarshal(data, &r); err != nil {
					errs[g] = err
					return
				}
				results[g] = append(results[g], r)
			}
		}(g)
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Fatalf("goroutine %d: %v", g, err)
		}
	}
	// Same query => same answer, no matter which goroutine/batch ran it.
	byKey := map[string]PredictResponse{}
	for g := range results {
		for i, r := range results[g] {
			key := fmt.Sprintf("%s/%v/%v/%s", r.Workload, r.TREFP, r.TempC, r.Model)
			if prev, ok := byKey[key]; ok {
				if prev.WERMean != r.WERMean || prev.PUE != r.PUE {
					t.Fatalf("goroutine %d query %d: %s diverged: (%v,%v) vs (%v,%v)",
						g, i, key, r.WERMean, r.PUE, prev.WERMean, prev.PUE)
				}
			} else {
				byKey[key] = r
			}
		}
	}
	// The registry trained each needed model exactly once despite the race:
	// KNN wer/pue + RDF wer/pue.
	m := scrapeMetrics(t, ts)
	if m["dramserve_model_registry_misses_total"] != 4 {
		t.Fatalf("model registry misses = %v under concurrency, want 4",
			m["dramserve_model_registry_misses_total"])
	}
	if m["dramserve_profile_cache_misses_total"] != float64(len(bodies)) {
		t.Fatalf("profile cache misses = %v under concurrency, want %d",
			m["dramserve_profile_cache_misses_total"], len(bodies))
	}
}

// TestIntrospectionDuringColdPredict polls /v1/models and /v1/workloads
// while a cold predict is still profiling and training: the snapshot
// readers must stay race-free against the singleflight fills (this is the
// path -race guards).
func TestIntrospectionDuringColdPredict(t *testing.T) {
	_, ts := newTestServer(t)
	errCh := make(chan error, 1)
	go func() {
		resp, err := http.Post(ts.URL+"/v1/predict", "application/json",
			strings.NewReader(`{"workload":"random","trefp":1.173,"temp_c":60,"model":"RDF"}`))
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				err = fmt.Errorf("cold predict status %d", resp.StatusCode)
			}
		}
		errCh <- err
	}()
	for done := false; !done; {
		select {
		case err := <-errCh:
			if err != nil {
				t.Fatal(err)
			}
			done = true
		default:
			for _, path := range []string{"/v1/models", "/v1/workloads"} {
				if resp, _ := get(t, ts, path); resp.StatusCode != http.StatusOK {
					t.Fatalf("%s = %d during cold predict", path, resp.StatusCode)
				}
			}
		}
	}
}

func TestServerClose(t *testing.T) {
	s, ts := newTestServer(t)
	if resp, data := postPredict(t, ts, `{"workload":"nw","trefp":1.173,"temp_c":60}`); resp.StatusCode != http.StatusOK {
		t.Fatalf("predict = %d: %s", resp.StatusCode, data)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
	resp, data := postPredict(t, ts, `{"workload":"nw","trefp":1.173,"temp_c":60}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("predict after close = %d: %s", resp.StatusCode, data)
	}
	if !strings.Contains(string(data), "closed") && !strings.Contains(string(data), "cancel") {
		t.Fatalf("close error not surfaced: %s", data)
	}
	// A batch body after close must error too (the resolve fan-out is
	// cancelled), never crash the process on skipped entries.
	resp, data = postPredict(t, ts, `{"queries":[{"workload":"nw","trefp":1.173,"temp_c":60},{"workload":"backprop","trefp":1.173,"temp_c":60}]}`)
	if resp.StatusCode != http.StatusServiceUnavailable && resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("batch predict after close = %d: %s", resp.StatusCode, data)
	}
}

func TestContextCancellationStopsServer(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	s := New(testDataset(t), Options{Quick: true, Seed: 3, Workers: 2, Context: ctx})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	if resp, data := postPredict(t, ts, `{"workload":"nw","trefp":1.173,"temp_c":60}`); resp.StatusCode != http.StatusOK {
		t.Fatalf("predict = %d: %s", resp.StatusCode, data)
	}
	cancel()
	// Cancellation propagates asynchronously via context.AfterFunc; the
	// stop channel is what the batchers select on.
	select {
	case <-s.stop:
	case <-time.After(5 * time.Second):
		t.Fatal("context cancellation did not close the server")
	}
}
