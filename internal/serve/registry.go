package serve

import (
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/profile"
	"repro/internal/workload"
)

// The model registry and the profile cache share one protocol, implemented
// once in fillOnce: a map of lazily-filled entries scoped to one
// generation. The map lock is held only to find-or-create an entry, never
// across the expensive fill, so concurrent first requests for the same key
// block on one fill (singleflight) while requests for other keys proceed —
// and repeat requests are a lock, a map probe and a closed channel read.
//
// Errors are never cached. A failed fill publishes its error to the
// requests already waiting on it (they share the attempt's fate, as any
// singleflight does) and then CLEARS the entry, so the next request starts
// a fresh fill instead of inheriting a stale failure: one transient
// train/profile error must not poison a (target, kind, input set) model or
// a workload profile for the life of the generation. Waiters whose fill
// failed retry the find-or-create a bounded number of times — one of them
// becomes the next creator.

// maxFillAttempts bounds how many failed fills one request will chase
// (as creator or as waiter) before surfacing the error.
const maxFillAttempts = 3

// cacheEntry is one singleflight slot. done closes exactly once, after
// val/err are published under the owning map's lock; introspection
// endpoints read entries under that lock without waiting on done, which is
// why publication happens under it.
type cacheEntry[V any] struct {
	done chan struct{}
	val  V
	err  error
}

// fillOnce is the shared find-or-fill. A miss is counted by the request
// that creates the entry (including a retry after a cleared failure — the
// fill really runs again); requests arriving while a fill is in flight
// block on done and count as hits (they pay nothing). build runs outside
// the lock; stop aborts waiters when the generation shuts down.
func fillOnce[K comparable, V any](mu *sync.Mutex, entries map[K]*cacheEntry[V], k K,
	stop <-chan struct{}, hits, misses, failures *counter,
	build func() (V, error)) (V, error) {
	var zero V
	var lastErr error
	for attempt := 0; attempt < maxFillAttempts; attempt++ {
		mu.Lock()
		e, ok := entries[k]
		if !ok {
			e = &cacheEntry[V]{done: make(chan struct{})}
			entries[k] = e
			mu.Unlock()
			misses.inc()

			v, err := build()
			mu.Lock()
			e.val, e.err = v, err
			if err != nil {
				// Non-sticky: clear the failed entry so follow-up requests
				// re-attempt the fill (and count as misses, not hits).
				if entries[k] == e {
					delete(entries, k)
				}
			}
			mu.Unlock()
			close(e.done)
			if err != nil {
				failures.inc()
				return zero, err
			}
			return v, nil
		}
		mu.Unlock()
		hits.inc()
		select {
		case <-e.done:
		case <-stop:
			return zero, errClosed
		}
		if e.err == nil {
			return e.val, nil
		}
		// The fill we joined failed (and cleared itself); go around — this
		// request may become the next creator.
		lastErr = e.err
	}
	return zero, lastErr
}

// modelKey identifies one trained predictor: the registry is keyed on the
// full (target, kind, input set) triple, so a query that needs only one
// target never trains — or pays for — the other's model.
type modelKey struct {
	target core.Target
	kind   core.ModelKind
	set    core.InputSet
}

// modelVal is a trained predictor plus the micro-batcher coalescing its
// queries. The batcher is non-nil exactly when training succeeded.
type modelVal struct {
	pred     core.Predictor
	trainDur time.Duration
	batch    *batcher[core.Query, core.Prediction]
}

// modelRegistry trains and caches predictors per (target, kind, input set).
type modelRegistry struct {
	mu      sync.Mutex
	entries map[modelKey]*cacheEntry[modelVal]
}

func newModelRegistry() *modelRegistry {
	return &modelRegistry{entries: map[modelKey]*cacheEntry[modelVal]{}}
}

// model returns the trained predictor for (target, kind, set) on
// generation g, fitting it through the unified core.Train factory on the
// first request (singleflight; failures are cleared, not cached).
func (s *Server) model(g *generation, target core.Target, kind core.ModelKind, set core.InputSet) (modelVal, error) {
	if err := s.closedErr(); err != nil {
		return modelVal{}, err
	}
	return fillOnce(&g.registry.mu, g.registry.entries, modelKey{target, kind, set}, g.stop,
		&s.metrics.modelHits, &s.metrics.modelMisses, &s.metrics.trainFailures,
		func() (modelVal, error) {
			start := time.Now()
			pred, err := s.train(g.ds, target, kind, set, s.workers)
			dur := time.Since(start)
			s.metrics.trainSeconds.observe(dur)
			if err != nil {
				return modelVal{}, err
			}
			b := newBatcher(func(qs []core.Query) ([]core.Prediction, error) {
				return pred.PredictBatch(s.ctx, qs, s.workers)
			}, g.stop, s.metrics)
			return modelVal{pred: pred, trainDur: dur, batch: b}, nil
		})
}

// trainedModel describes one registry entry for /v1/models.
type trainedModel struct {
	Kind     core.ModelKind `json:"kind"`
	InputSet int            `json:"input_set"`
	Target   string         `json:"target"`
	TrainMS  float64        `json:"train_ms"`
}

// trained snapshots the generation's ready entries.
func (s *Server) trained(g *generation) []trainedModel {
	g.registry.mu.Lock()
	defer g.registry.mu.Unlock()
	var out []trainedModel
	for k, e := range g.registry.entries {
		if e.val.batch != nil {
			out = append(out, trainedModel{k.kind, int(k.set), string(k.target),
				float64(e.val.trainDur.Microseconds()) / 1e3})
		}
	}
	return out
}

// profileKey identifies one cached workload profile.
type profileKey struct {
	label string
	size  workload.Size
	seed  uint64
}

// profileCache caches profile builds so repeat queries for the same
// workload skip the profiling pass entirely.
type profileCache struct {
	mu      sync.Mutex
	entries map[profileKey]*cacheEntry[*profile.Result]
}

func newProfileCache() *profileCache {
	return &profileCache{entries: map[profileKey]*cacheEntry[*profile.Result]{}}
}

// profileFor resolves the features of a workload on generation g, building
// and caching the profile on first use.
func (s *Server) profileFor(g *generation, spec workload.Spec) (*profile.Result, error) {
	if err := s.closedErr(); err != nil {
		return nil, err
	}
	return fillOnce(&g.profiles.mu, g.profiles.entries, profileKey{spec.Label, g.size, g.seed}, g.stop,
		&s.metrics.profileHits, &s.metrics.profileMisses, &s.metrics.profileFailures,
		func() (*profile.Result, error) {
			start := time.Now()
			res, err := s.buildProfile(spec, g.size, g.seed)
			s.metrics.profileSeconds.observe(time.Since(start))
			return res, err
		})
}

// profiledLabels lists the labels with a ready profile on generation g.
func (s *Server) profiledLabels(g *generation) map[string]bool {
	g.profiles.mu.Lock()
	defer g.profiles.mu.Unlock()
	out := map[string]bool{}
	for k, e := range g.profiles.entries {
		if e.val != nil {
			out[k.label] = true
		}
	}
	return out
}
