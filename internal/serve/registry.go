package serve

import (
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/profile"
	"repro/internal/workload"
)

// The registry and cache below share one shape: a map of lazily-filled
// entries, each guarded by its own sync.Once. The map lock is held only to
// find-or-create an entry, never across the expensive fill, so concurrent
// first requests for the same key block on one fill (singleflight) while
// requests for other keys proceed — and repeat requests are a lock, a map
// probe and a closed Once. Entry fields are published under the map lock
// because the introspection endpoints read them without going through the
// Once.

// modelKey identifies one trained predictor.
type modelKey struct {
	kind core.ModelKind
	set  core.InputSet
}

// modelEntry is a lazily-trained predictor of type P plus the micro-batcher
// for its query type Q.
type modelEntry[P, Q any] struct {
	once     sync.Once
	pred     P
	err      error
	trainDur time.Duration
	batch    *batcher[Q, float64] // non-nil exactly when training succeeded
}

// modelRegistry trains and caches predictors per (kind, input set, target).
type modelRegistry struct {
	mu  sync.Mutex
	wer map[modelKey]*modelEntry[*core.WERPredictor, core.WERQuery]
	pue map[modelKey]*modelEntry[*core.PUEPredictor, core.PUEQuery]
}

func newModelRegistry() *modelRegistry {
	return &modelRegistry{
		wer: map[modelKey]*modelEntry[*core.WERPredictor, core.WERQuery]{},
		pue: map[modelKey]*modelEntry[*core.PUEPredictor, core.PUEQuery]{},
	}
}

// getModel is the singleflight find-or-train shared by both targets. A
// registry miss is counted only by the request that creates the entry;
// concurrent requests arriving while it trains block on the Once and count
// as hits (they pay no training).
func getModel[P, Q any](s *Server, entries map[modelKey]*modelEntry[P, Q], k modelKey,
	train func() (P, error),
	predictBatch func(P, []Q) ([]float64, error)) (*modelEntry[P, Q], error) {
	if err := s.closedErr(); err != nil {
		return nil, err
	}
	s.registry.mu.Lock()
	e, ok := entries[k]
	if !ok {
		e = &modelEntry[P, Q]{}
		entries[k] = e
		s.metrics.modelMisses.inc()
	} else {
		s.metrics.modelHits.inc()
	}
	s.registry.mu.Unlock()
	e.once.Do(func() {
		start := time.Now()
		pred, err := train()
		dur := time.Since(start)
		s.metrics.trainSeconds.observe(dur)
		var b *batcher[Q, float64]
		if err == nil {
			b = newBatcher(func(qs []Q) ([]float64, error) {
				return predictBatch(pred, qs)
			}, s.stop, s.metrics)
		}
		s.registry.mu.Lock()
		e.pred, e.err, e.trainDur, e.batch = pred, err, dur, b
		s.registry.mu.Unlock()
	})
	if e.err != nil {
		return nil, e.err
	}
	return e, nil
}

// werModel returns the trained WER predictor for (kind, set), fitting it on
// the first request.
func (s *Server) werModel(kind core.ModelKind, set core.InputSet) (*modelEntry[*core.WERPredictor, core.WERQuery], error) {
	return getModel(s, s.registry.wer, modelKey{kind, set},
		func() (*core.WERPredictor, error) { return core.TrainWER(s.ds, kind, set, s.workers) },
		func(p *core.WERPredictor, qs []core.WERQuery) ([]float64, error) {
			return p.PredictBatch(qs, engine.Options{Workers: s.workers, Context: s.ctx})
		})
}

// pueModel is werModel for the crash-probability target.
func (s *Server) pueModel(kind core.ModelKind, set core.InputSet) (*modelEntry[*core.PUEPredictor, core.PUEQuery], error) {
	return getModel(s, s.registry.pue, modelKey{kind, set},
		func() (*core.PUEPredictor, error) { return core.TrainPUE(s.ds, kind, set, s.workers) },
		func(p *core.PUEPredictor, qs []core.PUEQuery) ([]float64, error) {
			return p.PredictBatch(qs, engine.Options{Workers: s.workers, Context: s.ctx})
		})
}

// trainedModel describes one registry entry for /v1/models.
type trainedModel struct {
	Kind     core.ModelKind `json:"kind"`
	InputSet int            `json:"input_set"`
	Target   string         `json:"target"`
	TrainMS  float64        `json:"train_ms"`
}

// trained snapshots the registry's ready entries.
func (s *Server) trained() []trainedModel {
	s.registry.mu.Lock()
	defer s.registry.mu.Unlock()
	var out []trainedModel
	for k, e := range s.registry.wer {
		if e.batch != nil {
			out = append(out, trainedModel{k.kind, int(k.set), "wer", float64(e.trainDur.Microseconds()) / 1e3})
		}
	}
	for k, e := range s.registry.pue {
		if e.batch != nil {
			out = append(out, trainedModel{k.kind, int(k.set), "pue", float64(e.trainDur.Microseconds()) / 1e3})
		}
	}
	return out
}

// profileKey identifies one cached workload profile.
type profileKey struct {
	label string
	size  workload.Size
	seed  uint64
}

// profileEntry is a lazily-built workload profile.
type profileEntry struct {
	once sync.Once
	res  *profile.Result
	err  error
}

// profileCache caches profile.Build results so repeat queries for the same
// workload skip the profiling pass entirely.
type profileCache struct {
	mu      sync.Mutex
	entries map[profileKey]*profileEntry
}

func newProfileCache() *profileCache {
	return &profileCache{entries: map[profileKey]*profileEntry{}}
}

// profileFor resolves the features of a workload, building and caching the
// profile on first use.
func (s *Server) profileFor(spec workload.Spec) (*profile.Result, error) {
	if err := s.closedErr(); err != nil {
		return nil, err
	}
	k := profileKey{spec.Label, s.size, s.seed}
	s.profiles.mu.Lock()
	e, ok := s.profiles.entries[k]
	if !ok {
		e = &profileEntry{}
		s.profiles.entries[k] = e
		s.metrics.profileMisses.inc()
	} else {
		s.metrics.profileHits.inc()
	}
	s.profiles.mu.Unlock()
	e.once.Do(func() {
		start := time.Now()
		res, err := profile.BuildAt(spec, s.size, s.seed)
		s.metrics.profileSeconds.observe(time.Since(start))
		s.profiles.mu.Lock()
		e.res, e.err = res, err
		s.profiles.mu.Unlock()
	})
	return e.res, e.err
}

// profiledLabels lists the labels with a ready profile.
func (s *Server) profiledLabels() map[string]bool {
	s.profiles.mu.Lock()
	defer s.profiles.mu.Unlock()
	out := map[string]bool{}
	for k, e := range s.profiles.entries {
		if e.res != nil {
			out[k.label] = true
		}
	}
	return out
}
