package serve

import (
	"bytes"
	"net/http/httptest"
	"reflect"
	"testing"

	"repro/internal/profile"
	"repro/internal/workload"
)

// FuzzDecodePredictV2 drives arbitrary bytes through the strict /v2
// request decode and the pooled-body recycling path. The invariants are
// the ones the zero-allocation hot path depends on: decode never panics,
// and decoding into a recycled body — one that has already absorbed a
// different request and been reset by putV2Body — yields exactly the
// same document as decoding into a fresh body. A pool-reset bug (a field
// surviving put) shows up as a diff here long before it corrupts a
// production prediction.
func FuzzDecodePredictV2(f *testing.F) {
	f.Add([]byte(`{"workload":"backprop","trefp":1.173,"temp_c":45}`))
	f.Add([]byte(`{"workload":"kmeans","trefp":0.618,"temp_c":60,"vdd":1.428,"model":"KNN","input_set":2,"targets":["wer","pue"]}`))
	f.Add([]byte(`{"workload":"nw","trefp":2.283,"temp_c":55,"ce":[{"t":1,"rank":3,"bank":2,"row":7,"col":9}]}`))
	f.Add([]byte(`{"queries":[{"workload":"backprop","trefp":1.173,"temp_c":45},{"workload":"nn","trefp":1.727,"temp_c":50}]}`))
	f.Add([]byte(`{"queries":[]}`))
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"workload":"backprop","trefp":1e999}`))
	f.Add([]byte(`{"unknown_field":1}`))
	f.Add([]byte(`{"workload":"backprop"} trailing`))
	f.Add([]byte(`[1,2,3]`))

	// Sparse events after a fully-populated window: element reuse must
	// not leak the earlier coordinates (the putV2Body CE clear).
	f.Add([]byte(`{"workload":"backprop","trefp":1,"temp_c":1,"ce":[{"t":3}]}`))

	// A poison request: decoded into the body first so the pool reset has
	// real state to scrub (non-empty targets, a fully-populated top-level
	// CE window whose elements would leak into sparse follow-up events,
	// and a batch).
	poison := []byte(`{"workload":"srad","trefp":1.1,"temp_c":9,"targets":["wer","pue","ue_risk"],` +
		`"ce":[{"t":1,"rank":1,"bank":2,"row":3,"col":4,"bits":5},{"t":2,"rank":2}],` +
		`"queries":[{"workload":"nn","trefp":1.2,"temp_c":8,"ce":[{"t":1,"rank":7}]}]}`)

	f.Fuzz(func(t *testing.T, data []byte) {
		fresh := new(predictBodyV2)
		freshErr := decodeBody(httptest.NewRequest("POST", "/v2/predict", bytes.NewReader(data)), fresh)

		// Dirty a pooled body with the poison document, recycle it, then
		// decode the fuzz document into the recycled body.
		recycled := v2BodyPool.Get().(*predictBodyV2)
		_ = decodeBody(httptest.NewRequest("POST", "/v2/predict", bytes.NewReader(poison)), recycled)
		putV2Body(recycled)
		recycled = v2BodyPool.Get().(*predictBodyV2)
		defer putV2Body(recycled)
		recycledErr := decodeBody(httptest.NewRequest("POST", "/v2/predict", bytes.NewReader(data)), recycled)

		if (freshErr == nil) != (recycledErr == nil) {
			t.Fatalf("fresh decode err=%v, recycled decode err=%v", freshErr, recycledErr)
		}
		if freshErr != nil {
			return
		}
		// Normalize the empty-slice-vs-nil difference the pool reset
		// legitimately introduces for Targets and CE (len 0 either way);
		// Queries nil-ness is semantic and must match exactly.
		if len(fresh.Targets) == 0 && len(recycled.Targets) == 0 {
			fresh.Targets, recycled.Targets = nil, nil
		}
		if len(fresh.CE) == 0 && len(recycled.CE) == 0 {
			fresh.CE, recycled.CE = nil, nil
		}
		if !reflect.DeepEqual(fresh, recycled) {
			t.Fatalf("pool reset leaked state:\nfresh:    %+v\nrecycled: %+v", fresh, recycled)
		}
	})
}

// FuzzIngestRows drives arbitrary bytes through the /v2/ingest decode
// and the per-row validation gate. Invariants: neither step panics,
// validation is deterministic, and every row that passes the gate
// actually satisfies the contract the training pipeline assumes — a
// positive finite TREFP, finite temperature, a resolvable workload
// label, and a CE window profile.ValidateCEEvents accepts.
func FuzzIngestRows(f *testing.F) {
	f.Add([]byte(`{"rows":[{"server":"s0","workload":"backprop","trefp":1.173,"temp_c":45,"vdd":1.428,"ue":0,"wer":1e-9,"pue":0.01}]}`))
	f.Add([]byte(`{"rows":[{"server":"s1","workload":"nn","trefp":0.618,"temp_c":50,"ce":[{"t":1,"rank":2,"bank":1,"row":3,"col":4}],"ue":1}]}`))
	f.Add([]byte(`{"rows":[]}`))
	f.Add([]byte(`{"rows":[{"trefp":-1}]}`))
	f.Add([]byte(`{"rows":[{"workload":"doom","trefp":1,"temp_c":1}]}`))
	f.Add([]byte(`{"rows":[{"trefp":1,"temp_c":1,"ce":[{"t":2},{"t":1}]}]}`))
	f.Add([]byte(`null`))

	f.Fuzz(func(t *testing.T, data []byte) {
		var body IngestRequestV2
		if e := decodeBody(httptest.NewRequest("POST", "/v2/ingest", bytes.NewReader(data)), &body); e != nil {
			return
		}
		for i := range body.Rows {
			row := &body.Rows[i]
			field, err := row.Validate()
			field2, err2 := row.Validate()
			if field != field2 || (err == nil) != (err2 == nil) {
				t.Fatalf("row %d: Validate not deterministic: (%q, %v) vs (%q, %v)",
					i, field, err, field2, err2)
			}
			if err != nil {
				continue
			}
			if !(row.TREFP > 0) {
				t.Fatalf("row %d passed validation with trefp %v", i, row.TREFP)
			}
			if err := profile.ValidateCEEvents(row.CE); err != nil {
				t.Fatalf("row %d passed validation with bad CE window: %v", i, err)
			}
			if row.Workload != "" {
				// The handler's registry check, applied after Validate.
				_, _ = workload.FindSpec(row.Workload)
			}
		}
	})
}
