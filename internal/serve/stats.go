package serve

import (
	"net/http"
	"sort"
	"time"

	"repro/internal/core"
)

// GET /v2/stats: the server's own view of its serving traffic, broken down
// per (target, kind, input set) model — the counters a fleet load
// generator cross-checks its completed-query count against (cmd/dramfleet,
// scripts/smoke.sh). Counters are server-lifetime: they accumulate across
// generation swaps, so a hot reload never makes the server's view and the
// generator's view diverge.

// ModelStatsV2 is one model's serving traffic inside a /v2/stats response.
type ModelStatsV2 struct {
	// Target, Kind and InputSet identify the model.
	Target   string `json:"target"`
	Kind     string `json:"kind"`
	InputSet int    `json:"input_set"`
	// Queries counts the queries this model answered successfully;
	// Errors the failed model resolutions and predictions.
	Queries int64 `json:"queries"`
	Errors  int64 `json:"errors"`
	// Latency of this model's micro-batched predict round trips, in
	// fractional milliseconds. Percentiles are conservative upper-bound
	// estimates from the fixed metric buckets.
	LatencyMSSum  float64 `json:"latency_ms_sum"`
	LatencyMSMean float64 `json:"latency_ms_mean"`
	LatencyMSP50  float64 `json:"latency_ms_p50"`
	LatencyMSP95  float64 `json:"latency_ms_p95"`
	LatencyMSP99  float64 `json:"latency_ms_p99"`
}

// EndpointStatsV2 is one (endpoint, status code) request counter.
type EndpointStatsV2 struct {
	Endpoint string `json:"endpoint"`
	Code     int    `json:"code"`
	Requests int64  `json:"requests"`
}

// IngestStatsV2 is the streaming-ingest section of a /v2/stats response,
// present only when the server was started with ingest enabled.
type IngestStatsV2 struct {
	// Accepted and Dropped count rows offered to POST /v2/ingest that were
	// enqueued vs. rejected by backpressure; QueueDepth is the number
	// currently in the bounded queue and Buffered the rows absorbed but not
	// yet folded into a retrain.
	Accepted   int64 `json:"accepted"`
	Dropped    int64 `json:"dropped"`
	QueueDepth int64 `json:"queue_depth"`
	Buffered   int64 `json:"buffered_rows"`
	// TelemetryRows counts the UE-labeled rows feeding the live drift
	// sketch; DriftScore is the current max per-feature total-variation
	// distance against the serving artifact's training distribution, and
	// DriftFeature names the feature that attains it.
	TelemetryRows int64   `json:"telemetry_rows"`
	DriftScore    float64 `json:"drift_score"`
	DriftFeature  string  `json:"drift_feature,omitempty"`
	// Retrains and RetrainFailures count completed and failed
	// ingest-driven retrains.
	Retrains        int64 `json:"retrains"`
	RetrainFailures int64 `json:"retrain_failures"`
}

// StatsResponseV2 is the GET /v2/stats body.
type StatsResponseV2 struct {
	// Generation and Fingerprint identify the current serving artifact.
	Generation  int64  `json:"generation"`
	Fingerprint string `json:"fingerprint"`
	// UptimeSeconds is the server's age (wall-clock; everything else in
	// the response is a deterministic function of the traffic served).
	UptimeSeconds float64 `json:"uptime_seconds"`
	// Targets rolls Queries up per target across kinds and input sets —
	// for a load generator that always requests the same target set, each
	// requested target's entry equals its completed-query count.
	Targets map[string]int64 `json:"targets"`
	// Models lists every model that has seen traffic, ordered by
	// (target, kind, input set).
	Models []ModelStatsV2 `json:"models"`
	// Endpoints lists the per-(endpoint, code) request counters, ordered
	// by (endpoint, code).
	Endpoints []EndpointStatsV2 `json:"endpoints"`
	// Ingest reports the streaming-ingest pipeline; omitted when the
	// server runs without one (the field is additive, so consumers of the
	// pre-ingest response shape are unaffected).
	Ingest *IngestStatsV2 `json:"ingest,omitempty"`
}

// handleStatsV2 serves GET /v2/stats.
func (s *Server) handleStatsV2(w http.ResponseWriter, r *http.Request) {
	g := s.gen.Load()
	resp := &StatsResponseV2{
		Generation:    g.id,
		Fingerprint:   g.fp,
		UptimeSeconds: time.Since(s.start).Seconds(),
		Targets:       map[string]int64{},
	}
	for _, t := range core.Targets() {
		resp.Targets[string(t)] = 0
	}
	for _, k := range s.metrics.modelKeys() {
		st := s.metrics.modelStatFor(k)
		n, sum := st.latency.snapshot()
		m := ModelStatsV2{
			Target:       string(k.target),
			Kind:         string(k.kind),
			InputSet:     int(k.set),
			Queries:      st.queries.value(),
			Errors:       st.errors.value(),
			LatencyMSSum: sum * 1e3,
			LatencyMSP50: st.latency.quantile(0.50) * 1e3,
			LatencyMSP95: st.latency.quantile(0.95) * 1e3,
			LatencyMSP99: st.latency.quantile(0.99) * 1e3,
		}
		if n > 0 {
			m.LatencyMSMean = m.LatencyMSSum / float64(n)
		}
		resp.Targets[m.Target] += m.Queries
		resp.Models = append(resp.Models, m)
	}
	resp.Endpoints = s.metrics.endpointStats()
	if s.ingest != nil {
		st := s.ingest.Snapshot()
		resp.Ingest = &IngestStatsV2{
			Accepted:        st.Accepted,
			Dropped:         st.Dropped,
			QueueDepth:      st.QueueDepth,
			Buffered:        st.Buffered,
			TelemetryRows:   st.TelemetryRows,
			DriftScore:      st.DriftScore,
			DriftFeature:    st.DriftFeature,
			Retrains:        st.Retrains,
			RetrainFailures: st.RetrainFailures,
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// endpointStats snapshots the per-(endpoint, code) request counters in
// deterministic order.
func (m *metrics) endpointStats() []EndpointStatsV2 {
	m.mu.Lock()
	out := make([]EndpointStatsV2, 0, len(m.requests))
	for k, c := range m.requests {
		out = append(out, EndpointStatsV2{Endpoint: k.endpoint, Code: k.code, Requests: c.value()})
	}
	m.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Endpoint != out[j].Endpoint {
			return out[i].Endpoint < out[j].Endpoint
		}
		return out[i].Code < out[j].Code
	})
	return out
}
