package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/dram"
)

func postPredictV2(t testing.TB, ts *httptest.Server, body string) (*http.Response, []byte) {
	t.Helper()
	return post(t, ts, "/v2/predict", "application/json", body)
}

// errorV2 decodes the structured /v2 error envelope.
func errorV2(t testing.TB, data []byte) (code, field, message string) {
	t.Helper()
	var e struct {
		Error struct {
			Code    string `json:"code"`
			Field   string `json:"field"`
			Message string `json:"message"`
		} `json:"error"`
	}
	if err := json.Unmarshal(data, &e); err != nil {
		t.Fatalf("unparseable error body: %s", data)
	}
	if e.Error.Code == "" || e.Error.Message == "" {
		t.Fatalf("error body missing code or message: %s", data)
	}
	return e.Error.Code, e.Error.Field, e.Error.Message
}

func TestV2PredictSingleMatchesDirectModel(t *testing.T) {
	s, ts := newTestServer(t)
	resp, data := postPredictV2(t, ts, `{"workload":"srad(par)","trefp":2.283,"temp_c":60}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("v2 predict = %d: %s", resp.StatusCode, data)
	}
	var got PredictResponseV2
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	if got.Generation != 1 || got.Fingerprint != s.gen.Load().fp {
		t.Fatalf("artifact identity missing: generation=%d fingerprint=%q", got.Generation, got.Fingerprint)
	}
	if got.Model != string(core.ModelKNN) || got.VDD != dram.MinVDD {
		t.Fatalf("defaults not applied: %s", data)
	}
	wer, ok := got.Predictions["wer"]
	if !ok || len(wer.ByRank) != dram.NumRanks || wer.InputSet != 1 {
		t.Fatalf("wer result: %s", data)
	}
	pue, ok := got.Predictions["pue"]
	if !ok || pue.ByRank != nil || pue.InputSet != 2 {
		t.Fatalf("pue result: %s", data)
	}
	// The artifact has no UE telemetry rows and the query carries no CE
	// events, so the default selection is exactly the legacy pair.
	if len(got.Predictions) != 2 {
		t.Fatalf("default selection answered %d targets: %s", len(got.Predictions), data)
	}

	// Bit-for-bit against models trained directly through the factory.
	prof, err := s.profileFor(s.gen.Load(), mustSpec(t, "srad(par)"))
	if err != nil {
		t.Fatal(err)
	}
	for _, tgt := range []core.Target{core.TargetWER, core.TargetPUE} {
		direct, err := core.Train(testDataset(t), tgt, core.ModelKNN, 0, 2)
		if err != nil {
			t.Fatal(err)
		}
		want, err := direct.Predict(core.Query{
			Features: prof.Features, TREFP: 2.283, VDD: dram.MinVDD, TempC: 60,
			Rank: core.RankDevice,
		})
		if err != nil {
			t.Fatal(err)
		}
		if got.Predictions[string(tgt)].Value != want.Value {
			t.Fatalf("%s: served %v != direct %v", tgt, got.Predictions[string(tgt)].Value, want.Value)
		}
	}

	// And the same query through /v1 returns the same numbers: both
	// surfaces share the resolve/predict path.
	respV1, dataV1 := postPredict(t, ts, `{"workload":"srad(par)","trefp":2.283,"temp_c":60}`)
	if respV1.StatusCode != http.StatusOK {
		t.Fatalf("v1 predict = %d: %s", respV1.StatusCode, dataV1)
	}
	var v1 PredictResponse
	if err := json.Unmarshal(dataV1, &v1); err != nil {
		t.Fatal(err)
	}
	if v1.WERMean != wer.Value || v1.PUE != pue.Value {
		t.Fatalf("v1 (%v, %v) != v2 (%v, %v)", v1.WERMean, v1.PUE, wer.Value, pue.Value)
	}
}

// TestV2TargetSelection proves the registry re-keying: a PUE-only query
// must train exactly one model — no WER model is fitted or paid for.
func TestV2TargetSelection(t *testing.T) {
	_, ts := newTestServer(t)
	resp, data := postPredictV2(t, ts, `{"workload":"nw","trefp":1.173,"temp_c":60,"targets":["pue"]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pue-only predict = %d: %s", resp.StatusCode, data)
	}
	var got PredictResponseV2
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	if _, ok := got.Predictions["wer"]; ok {
		t.Fatalf("unrequested wer target answered: %s", data)
	}
	if _, ok := got.Predictions["pue"]; !ok {
		t.Fatalf("pue target missing: %s", data)
	}
	m := scrapeMetrics(t, ts)
	if m["dramserve_model_registry_misses_total"] != 1 {
		t.Fatalf("pue-only query trained %v models, want 1 (no WER fit)",
			m["dramserve_model_registry_misses_total"])
	}
	if m["dramserve_train_seconds_count"] != 1 {
		t.Fatalf("train histogram count = %v, want 1", m["dramserve_train_seconds_count"])
	}

	// Asking for the other target afterwards trains only that model.
	if resp, data := postPredictV2(t, ts, `{"workload":"nw","trefp":1.173,"temp_c":60,"targets":["wer"]}`); resp.StatusCode != http.StatusOK {
		t.Fatalf("wer predict = %d: %s", resp.StatusCode, data)
	}
	m = scrapeMetrics(t, ts)
	if m["dramserve_model_registry_misses_total"] != 2 {
		t.Fatalf("misses = %v after both targets", m["dramserve_model_registry_misses_total"])
	}

	// Duplicate target names collapse to one result.
	resp, data = postPredictV2(t, ts, `{"workload":"nw","trefp":1.173,"temp_c":60,"targets":["pue","PUE"]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("duplicate targets = %d: %s", resp.StatusCode, data)
	}
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	if len(got.Predictions) != 1 {
		t.Fatalf("duplicate targets produced %d results", len(got.Predictions))
	}
}

// TestV2BatchPerQueryElapsed pins the batch contract: one result per
// query, each carrying its own elapsed_ms, and the batch envelope carries
// the artifact identity.
func TestV2BatchPerQueryElapsed(t *testing.T) {
	s, ts := newTestServer(t)
	resp, data := postPredictV2(t, ts, `{"queries":[
		{"workload":"nw","trefp":1.173,"temp_c":60},
		{"workload":"backprop","trefp":2.283,"temp_c":50,"targets":["pue"]},
		{"workload":"nw","trefp":0.618,"temp_c":70,"targets":["wer"]}]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch = %d: %s", resp.StatusCode, data)
	}
	var got PredictBatchResponseV2
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	if len(got.Results) != 3 {
		t.Fatalf("%d results for 3 queries", len(got.Results))
	}
	if got.Generation != 1 || got.Fingerprint != s.gen.Load().fp {
		t.Fatalf("batch envelope identity: %s", data)
	}
	// Every item has the elapsed_ms key (raw-JSON check: a zero value must
	// still be present) and honours its target selection.
	var raw struct {
		Results []map[string]json.RawMessage `json:"results"`
	}
	if err := json.Unmarshal(data, &raw); err != nil {
		t.Fatal(err)
	}
	for i, item := range raw.Results {
		if _, ok := item["elapsed_ms"]; !ok {
			t.Fatalf("batch item %d missing elapsed_ms: %s", i, data)
		}
	}
	if len(got.Results[0].Predictions) != 2 {
		t.Fatalf("query 0 (default targets) got %d predictions", len(got.Results[0].Predictions))
	}
	if _, ok := got.Results[1].Predictions["wer"]; ok {
		t.Fatal("query 1 (pue-only) answered wer")
	}
	if _, ok := got.Results[2].Predictions["pue"]; ok {
		t.Fatal("query 2 (wer-only) answered pue")
	}
	// Per-query timing, not a shared wall-clock copy: the items' elapsed
	// values must each be no larger than the whole request's wall time —
	// trivially true — and crucially must be independently measured, which
	// the raw-key check plus the single-query equivalence below exercise.
	single, dataS := postPredictV2(t, ts, `{"workload":"nw","trefp":1.173,"temp_c":60}`)
	if single.StatusCode != http.StatusOK {
		t.Fatalf("single = %d: %s", single.StatusCode, dataS)
	}
	var sr PredictResponseV2
	if err := json.Unmarshal(dataS, &sr); err != nil {
		t.Fatal(err)
	}
	if sr.Predictions["wer"].Value != got.Results[0].Predictions["wer"].Value {
		t.Fatal("batch and single diverge for the same query")
	}
}

// TestV2ValidationErrors covers every {code, field} pair of the /v2
// error surface, table-driven.
func TestV2ValidationErrors(t *testing.T) {
	_, ts := newTestServer(t)
	cases := []struct {
		name   string
		body   string
		status int
		code   string
		field  string
	}{
		{"malformed json", `{"workload":`, http.StatusBadRequest, codeMalformedBody, ""},
		{"unknown field", `{"workload":"nw","trefp":1,"temp_c":60,"bogus":1}`, http.StatusBadRequest, codeMalformedBody, ""},
		{"trailing garbage", `{"workload":"nw","trefp":1,"temp_c":60} {"queries":[]}`, http.StatusBadRequest, codeMalformedBody, ""},
		{"unknown workload", `{"workload":"doom","trefp":1,"temp_c":60}`, http.StatusNotFound, codeUnknownWorkload, "workload"},
		{"zero trefp", `{"workload":"nw","temp_c":60}`, http.StatusBadRequest, codeOutOfRange, "trefp"},
		{"negative trefp", `{"workload":"nw","trefp":-1,"temp_c":60}`, http.StatusBadRequest, codeOutOfRange, "trefp"},
		{"negative vdd", `{"workload":"nw","trefp":1,"temp_c":60,"vdd":-2}`, http.StatusBadRequest, codeOutOfRange, "vdd"},
		{"bad input set", `{"workload":"nw","trefp":1,"temp_c":60,"input_set":7}`, http.StatusBadRequest, codeOutOfRange, "input_set"},
		{"bad model", `{"workload":"nw","trefp":1,"temp_c":60,"model":"GPT"}`, http.StatusBadRequest, codeUnknownModel, "model"},
		{"bad target", `{"workload":"nw","trefp":1,"temp_c":60,"targets":["mbe"]}`, http.StatusBadRequest, codeUnknownTarget, "targets"},
		{"empty batch", `{"queries":[]}`, http.StatusBadRequest, codeEmptyBatch, "queries"},
		{"batch item error", `{"queries":[{"workload":"nw","trefp":1,"temp_c":60},{"workload":"doom","trefp":1,"temp_c":60}]}`,
			http.StatusNotFound, codeUnknownWorkload, "workload"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, data := postPredictV2(t, ts, tc.body)
			if resp.StatusCode != tc.status {
				t.Fatalf("status = %d, want %d: %s", resp.StatusCode, tc.status, data)
			}
			code, field, _ := errorV2(t, data)
			if code != tc.code || field != tc.field {
				t.Fatalf("error = {%s, %s}, want {%s, %s}: %s", code, field, tc.code, tc.field, data)
			}
		})
	}

	t.Run("batch item error names the query", func(t *testing.T) {
		_, data := postPredictV2(t, ts, `{"queries":[{"workload":"nw","trefp":1,"temp_c":60},{"workload":"doom","trefp":1,"temp_c":60}]}`)
		if _, _, msg := errorV2(t, data); !strings.Contains(msg, "query 1") {
			t.Fatalf("batch error does not locate the query: %s", data)
		}
	})

	t.Run("batch too large", func(t *testing.T) {
		var sb strings.Builder
		sb.WriteString(`{"queries":[`)
		for i := 0; i <= maxBatchBody; i++ {
			if i > 0 {
				sb.WriteString(",")
			}
			sb.WriteString(`{"workload":"nw","trefp":1,"temp_c":60}`)
		}
		sb.WriteString(`]}`)
		resp, data := postPredictV2(t, ts, sb.String())
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("oversized batch = %d", resp.StatusCode)
		}
		if code, field, _ := errorV2(t, data); code != codeBatchTooLarge || field != "queries" {
			t.Fatalf("oversized batch error = {%s, %s}", code, field)
		}
	})

	t.Run("method not allowed", func(t *testing.T) {
		resp, err := http.Get(ts.URL + "/v2/predict")
		if err != nil {
			t.Fatal(err)
		}
		data := readBody(t, resp)
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Fatalf("GET /v2/predict = %d", resp.StatusCode)
		}
		if allow := resp.Header.Get("Allow"); allow != http.MethodPost {
			t.Fatalf("Allow = %q", allow)
		}
		if code, field, _ := errorV2(t, data); code != codeMethodNotAllowed || field != "" {
			t.Fatalf("405 error = {%s, %s}", code, field)
		}
	})

	t.Run("unsupported media type", func(t *testing.T) {
		resp, data := post(t, ts, "/v2/predict", "text/plain",
			`{"workload":"nw","trefp":1,"temp_c":60}`)
		if resp.StatusCode != http.StatusUnsupportedMediaType {
			t.Fatalf("text/plain POST = %d: %s", resp.StatusCode, data)
		}
		if code, field, _ := errorV2(t, data); code != codeUnsupportedMedia || field != "" {
			t.Fatalf("415 error = {%s, %s}", code, field)
		}
	})

	t.Run("body too large", func(t *testing.T) {
		// Leading whitespace, so the decoder must consume past the cap
		// before it ever reaches the value.
		pad := strings.Repeat(" ", maxBodyBytes+1)
		resp, data := postPredictV2(t, ts, pad+`{"workload":"nw","trefp":1,"temp_c":60}`)
		if resp.StatusCode != http.StatusRequestEntityTooLarge {
			t.Fatalf("oversized body = %d: %.200s", resp.StatusCode, data)
		}
		if code, field, _ := errorV2(t, data); code != codeBodyTooLarge || field != "" {
			t.Fatalf("413 error = {%s, %s}", code, field)
		}
	})
}
