package serve

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// replayBody is a resettable request body so the decode benchmark can
// replay the same document without re-wrapping a reader every op.
type replayBody struct{ strings.Reader }

func (*replayBody) Close() error { return nil }

// BenchmarkDecodePredictV2 isolates the pooled /v2 request-decode path:
// one op takes a decode target from v2BodyPool, decodes a single-query
// document carrying explicit targets and a CE telemetry window into it,
// and returns it to the pool. Tracked in BENCH_<machine-class>.json by
// scripts/bench.sh.
func BenchmarkDecodePredictV2(b *testing.B) {
	const doc = `{"workload":"nw","trefp":1.173,"temp_c":60,"targets":["ue_risk"],` +
		`"ce":[{"t":1,"row":42,"col":3,"bank":0,"rank":1},` +
		`{"t":2,"row":42,"col":9,"bank":0,"rank":1,"bits":2},` +
		`{"t":2.5,"row":42,"col":9,"bank":0,"rank":1,"bits":3}]}`
	body := &replayBody{}
	req := httptest.NewRequest(http.MethodPost, "/v2/predict", nil)
	req.Body = body
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		body.Reset(doc)
		v := v2BodyPool.Get().(*predictBodyV2)
		if e := decodeBody(req, v); e != nil {
			b.Fatalf("decode failed: %v", e)
		}
		putV2Body(v)
	}
}

// BenchmarkServePredictV2 is the canonical serving-layer benchmark: one op
// is a warm single-query POST /v2/predict straight into the handler (no
// network), exercising resolve, the pooled predict path and JSON response
// encoding. Tracked in BENCH_<machine-class>.json by scripts/bench.sh.
func BenchmarkServePredictV2(b *testing.B) {
	s := New(testDataset(b), Options{Quick: true, Seed: 3, Workers: 2})
	defer s.Close()
	h := s.Handler()

	const body = `{"workload":"backprop","trefp":2.283,"temp_c":60}`
	do := func() int {
		req := httptest.NewRequest(http.MethodPost, "/v2/predict", strings.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		return rec.Code
	}
	// Warm: first query trains and caches the models and primes the pools.
	if code := do(); code != http.StatusOK {
		b.Fatalf("warmup returned %d", code)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if code := do(); code != http.StatusOK {
			b.Fatalf("request %d returned %d", i, code)
		}
	}
}
