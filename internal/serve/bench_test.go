package serve

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// BenchmarkServePredictV2 is the canonical serving-layer benchmark: one op
// is a warm single-query POST /v2/predict straight into the handler (no
// network), exercising resolve, the pooled predict path and JSON response
// encoding. Tracked in BENCH_<machine-class>.json by scripts/bench.sh.
func BenchmarkServePredictV2(b *testing.B) {
	s := New(testDataset(b), Options{Quick: true, Seed: 3, Workers: 2})
	defer s.Close()
	h := s.Handler()

	const body = `{"workload":"backprop","trefp":2.283,"temp_c":60}`
	do := func() int {
		req := httptest.NewRequest(http.MethodPost, "/v2/predict", strings.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		return rec.Code
	}
	// Warm: first query trains and caches the models and primes the pools.
	if code := do(); code != http.StatusOK {
		b.Fatalf("warmup returned %d", code)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if code := do(); code != http.StatusOK {
			b.Fatalf("request %d returned %d", i, code)
		}
	}
}
