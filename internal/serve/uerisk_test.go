package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/profile"
)

// serveTestUESamples fabricates a deterministic UE-risk corpus for the
// serve tests (serve cannot import the fleet simulator — fleet drives a
// serve.Server): half the servers healthy, half with row-clustered
// multi-bit bursts, four servers for the leave-one-server-out minimum.
func serveTestUESamples() []core.UESample {
	var rows []core.UESample
	for s := 0; s < 4; s++ {
		faulty := s%2 == 1
		for w := 0; w < 5; w++ {
			n := 2 + (s+w)%3
			if faulty {
				n = 10 + w
			}
			events := make([]profile.CEEvent, n)
			for i := range events {
				e := profile.CEEvent{
					T:    float64(i) * (20 + float64(2*s+w)),
					Row:  (i*89 + w*17) % 256,
					Col:  (i*23 + s*5) % 64,
					Bank: i % 8,
					Rank: s % 4,
				}
				if faulty {
					e.Row = 7 + w%2
					if i%3 == 0 {
						e.Bits = 2
					}
					if i > 0 {
						e.T = events[i-1].T + 0.25
					}
				}
				events[i] = e
			}
			label := 0.0
			if faulty {
				label = 1
			}
			rows = append(rows, core.UESample{
				Server:     fmt.Sprintf("s%02d", s),
				TREFP:      0.6 + 0.1*float64(w%3),
				VDD:        1.428,
				TempC:      50 + float64(5*(w%2)),
				CEFeatures: profile.CEFeatures(events),
				UE:         label,
			})
		}
	}
	return rows
}

var (
	ueOnce sync.Once
	ueDS   *core.Dataset
)

// ueDataset is the shared test corpus extended with UE telemetry rows —
// a shallow copy, so the plain testDataset stays telemetry-free for the
// tests that pin the legacy two-target behavior.
func ueDataset(t testing.TB) *core.Dataset {
	base := testDataset(t)
	ueOnce.Do(func() {
		ds := *base
		ds.SetUER(serveTestUESamples())
		ueDS = &ds
	})
	return ueDS
}

func newUETestServer(t testing.TB) (*Server, *httptest.Server) {
	t.Helper()
	s := New(ueDataset(t), Options{Quick: true, Seed: 3, Workers: 2})
	t.Cleanup(func() { s.Close() })
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// ueGoldenBody is the pinned golden query: an explicit ue_risk request
// carrying a small row-clustered CE window.
const ueGoldenBody = `{"workload":"nw","trefp":1.173,"temp_c":60,"targets":["ue_risk"],` +
	`"ce":[{"t":1,"row":42,"col":3,"bank":0,"rank":1},` +
	`{"t":2,"row":42,"col":9,"bank":0,"rank":1,"bits":2},` +
	`{"t":2.5,"row":42,"col":9,"bank":0,"rank":1,"bits":3},` +
	`{"t":30,"row":17,"col":5,"bank":2,"rank":0}]}`

// TestV2UERiskGoldenWire pins the /v2 wire bytes of a ue_risk response the
// same way the /v1 fixtures pin the legacy surface: the corpus, training
// and prediction are fully deterministic, so everything except elapsed_ms
// must match the checked-in fixture byte for byte.
func TestV2UERiskGoldenWire(t *testing.T) {
	_, ts := newUETestServer(t)
	resp, data := postPredictV2(t, ts, ueGoldenBody)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ue_risk predict = %d: %s", resp.StatusCode, data)
	}
	got := canonicalWire(data)
	path := filepath.Join("testdata", "golden_v2_ue_risk.json")
	if *updateGolden {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update-golden to regenerate)", err)
	}
	if string(got) != string(want) {
		t.Fatalf("/v2 ue_risk wire format drifted:\n got: %s\nwant: %s\n(regenerate with -update-golden only for an intentional change)",
			got, want)
	}
}

// TestV2UERiskServing covers the registry-driven serving semantics around
// the telemetry target.
func TestV2UERiskServing(t *testing.T) {
	_, ts := newUETestServer(t)

	t.Run("explicit request", func(t *testing.T) {
		resp, data := postPredictV2(t, ts, ueGoldenBody)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status = %d: %s", resp.StatusCode, data)
		}
		var got PredictResponseV2
		if err := json.Unmarshal(data, &got); err != nil {
			t.Fatal(err)
		}
		ue, ok := got.Predictions["ue_risk"]
		if !ok {
			t.Fatalf("no ue_risk prediction: %s", data)
		}
		if ue.Value < 0 || ue.Value > 1 {
			t.Fatalf("ue_risk %v outside [0,1]", ue.Value)
		}
		if ue.ByRank != nil || ue.InputSet != 1 {
			t.Fatalf("ue_risk result shape: %s", data)
		}
		if len(got.Predictions) != 1 {
			t.Fatalf("explicit ue_risk answered %d targets: %s", len(got.Predictions), data)
		}
	})

	t.Run("deterministic", func(t *testing.T) {
		_, a := postPredictV2(t, ts, ueGoldenBody)
		_, b := postPredictV2(t, ts, ueGoldenBody)
		if string(canonicalWire(a)) != string(canonicalWire(b)) {
			t.Fatalf("same query, different bytes:\n%s\n%s", a, b)
		}
	})

	t.Run("default selection joins on telemetry", func(t *testing.T) {
		// A CE-bearing query with no explicit targets answers the full
		// available selection, ue_risk included.
		resp, data := postPredictV2(t, ts,
			`{"workload":"nw","trefp":1.173,"temp_c":60,"ce":[{"t":1,"row":3,"col":4,"bank":1,"rank":0}]}`)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status = %d: %s", resp.StatusCode, data)
		}
		var got PredictResponseV2
		if err := json.Unmarshal(data, &got); err != nil {
			t.Fatal(err)
		}
		for _, name := range []string{"wer", "pue", "ue_risk"} {
			if _, ok := got.Predictions[name]; !ok {
				t.Fatalf("default CE-bearing selection missing %s: %s", name, data)
			}
		}

		// The same query without telemetry answers exactly the legacy pair.
		resp, data = postPredictV2(t, ts, `{"workload":"nw","trefp":1.173,"temp_c":60}`)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status = %d: %s", resp.StatusCode, data)
		}
		got = PredictResponseV2{}
		if err := json.Unmarshal(data, &got); err != nil {
			t.Fatal(err)
		}
		if len(got.Predictions) != 2 {
			t.Fatalf("telemetry-free default answered %d targets: %s", len(got.Predictions), data)
		}
	})

	t.Run("empty window is healthy", func(t *testing.T) {
		// An explicit ue_risk request without CE events is a valid healthy
		// observation (fleet servers with quiet windows omit the field), not
		// an error.
		resp, data := postPredictV2(t, ts,
			`{"workload":"nw","trefp":1.173,"temp_c":60,"targets":["ue_risk"]}`)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status = %d: %s", resp.StatusCode, data)
		}
	})

	t.Run("out-of-order telemetry rejected", func(t *testing.T) {
		resp, data := postPredictV2(t, ts,
			`{"workload":"nw","trefp":1.173,"temp_c":60,"targets":["ue_risk"],"ce":[{"t":5,"row":1,"col":1,"bank":0,"rank":0},{"t":1,"row":2,"col":2,"bank":0,"rank":0}]}`)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("status = %d: %s", resp.StatusCode, data)
		}
		if code, field, _ := errorV2(t, data); code != codeBadTelemetry || field != "ce" {
			t.Fatalf("error = (%s, %s): %s", code, field, data)
		}
	})

	t.Run("stats count the triple", func(t *testing.T) {
		resp, data := get(t, ts, "/v2/stats")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("stats = %d: %s", resp.StatusCode, data)
		}
		var st StatsResponseV2
		if err := json.Unmarshal(data, &st); err != nil {
			t.Fatal(err)
		}
		if st.Targets["ue_risk"] < 1 {
			t.Fatalf("ue_risk target counter = %d: %s", st.Targets["ue_risk"], data)
		}
		found := false
		for _, m := range st.Models {
			if m.Target == "ue_risk" && m.Kind == string(core.ModelKNN) && m.InputSet == 1 {
				found = true
				if m.Queries < 1 {
					t.Fatalf("(ue_risk, KNN, 1) answered %d queries", m.Queries)
				}
			}
		}
		if !found {
			t.Fatalf("no (ue_risk, KNN, 1) model entry: %s", data)
		}
	})

	t.Run("healthz advertises targets", func(t *testing.T) {
		resp, data := get(t, ts, "/healthz")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("healthz = %d: %s", resp.StatusCode, data)
		}
		var hr HealthResponse
		if err := json.Unmarshal(data, &hr); err != nil {
			t.Fatal(err)
		}
		want := []string{"wer", "pue", "ue_risk"}
		if len(hr.Targets) != len(want) {
			t.Fatalf("advertised targets %v, want %v", hr.Targets, want)
		}
		for i, name := range want {
			if hr.Targets[i] != name {
				t.Fatalf("advertised targets %v, want %v (catalog order)", hr.Targets, want)
			}
		}
		if hr.UERows != len(serveTestUESamples()) {
			t.Fatalf("uer_rows = %d, want %d", hr.UERows, len(serveTestUESamples()))
		}
	})
}

// TestV2UERiskUnavailable: an artifact without UE telemetry rows refuses
// explicit ue_risk requests with a structured 400 — and never silently
// answers from a model that could not have been trained.
func TestV2UERiskUnavailable(t *testing.T) {
	_, ts := newTestServer(t)
	resp, data := postPredictV2(t, ts,
		`{"workload":"nw","trefp":1.173,"temp_c":60,"targets":["ue_risk"]}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d: %s", resp.StatusCode, data)
	}
	if code, field, _ := errorV2(t, data); code != codeTargetUnavailable || field != "targets" {
		t.Fatalf("error = (%s, %s): %s", code, field, data)
	}
}
