package serve

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"testing"
)

// The /v1 wire format is a published contract: the /v2 redesign routed it
// through the unified resolve/predict path, and these fixtures pin the
// adapter's output — every response byte (single, batch and the error
// shapes) must match the checked-in golden files, so any future serve or
// core change that drifts the v1 wire fails here, not at a client.
// (Success responses are byte-identical to the pre-/v2 service; error
// messages were normalized once, intentionally, when the fixtures were
// introduced — see API.md.) The test corpus is fully deterministic
// (seeded simulation, deterministic training), so the only
// nondeterministic byte range — elapsed_ms — is canonicalized to 0 on
// both sides before comparing.
//
// Regenerate after an *intentional* wire-format change:
//
//	go test ./internal/serve -run TestV1GoldenWire -update-golden

var updateGolden = flag.Bool("update-golden", false, "regenerate the golden /v1 wire fixtures")

var elapsedRe = regexp.MustCompile(`"elapsed_ms":[0-9.eE+-]+`)

// canonicalWire zeroes the timing field, the one legitimately varying
// byte range of a /v1 response.
func canonicalWire(b []byte) []byte {
	return elapsedRe.ReplaceAll(b, []byte(`"elapsed_ms":0`))
}

func TestV1GoldenWire(t *testing.T) {
	_, ts := newTestServer(t)
	cases := []struct {
		name   string
		method string
		body   string
		code   int
	}{
		{"single", http.MethodPost, `{"workload":"srad(par)","trefp":2.283,"temp_c":60}`, http.StatusOK},
		{"single_rdf_set3", http.MethodPost, `{"workload":"memcached","trefp":1.173,"temp_c":70,"model":"RDF","input_set":3}`, http.StatusOK},
		{"batch", http.MethodPost, `{"queries":[{"workload":"backprop","trefp":0.618,"temp_c":50},{"workload":"nw","trefp":1.727,"temp_c":60}]}`, http.StatusOK},
		{"error_unknown_workload", http.MethodPost, `{"workload":"doom","trefp":1,"temp_c":60}`, http.StatusNotFound},
		{"error_bad_trefp", http.MethodPost, `{"workload":"nw","trefp":-1,"temp_c":60}`, http.StatusBadRequest},
		{"error_bad_model", http.MethodPost, `{"workload":"nw","trefp":1,"temp_c":60,"model":"GPT"}`, http.StatusBadRequest},
		{"error_batch_item", http.MethodPost, `{"queries":[{"workload":"nw","trefp":1,"temp_c":60},{"workload":"doom","trefp":1,"temp_c":60}]}`, http.StatusNotFound},
		{"error_empty_batch", http.MethodPost, `{"queries":[]}`, http.StatusBadRequest},
		{"error_method", http.MethodGet, "", http.StatusMethodNotAllowed},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var resp *http.Response
			var data []byte
			if tc.method == http.MethodGet {
				resp, data = get(t, ts, "/v1/predict")
			} else {
				resp, data = postPredict(t, ts, tc.body)
			}
			if resp.StatusCode != tc.code {
				t.Fatalf("status = %d, want %d: %s", resp.StatusCode, tc.code, data)
			}
			got := canonicalWire(data)
			path := filepath.Join("testdata", fmt.Sprintf("golden_v1_%s.json", tc.name))
			if *updateGolden {
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("%v (run with -update-golden to regenerate)", err)
			}
			if string(got) != string(want) {
				t.Fatalf("/v1 wire format drifted for %s:\n got: %s\nwant: %s\n(regenerate with -update-golden only for an intentional change)",
					tc.name, got, want)
			}
		})
	}
}
