package serve

import (
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// counter is a monotonically increasing metric.
type counter struct{ v atomic.Int64 }

func (c *counter) inc()         { c.v.Add(1) }
func (c *counter) add(n int64)  { c.v.Add(n) }
func (c *counter) value() int64 { return c.v.Load() }

// latencyBuckets are the histogram upper bounds in seconds: a log scale
// from 100 µs to 10 s bracketing the paper's 300 ms budget.
var latencyBuckets = []float64{
	0.0001, 0.0003, 0.001, 0.003, 0.01, 0.03, 0.1, 0.3, 1, 3, 10,
}

// histogram is a fixed-bucket latency histogram.
type histogram struct {
	mu     sync.Mutex
	counts []int64 // one per bucket, plus +Inf at the end
	sum    float64
	n      int64
}

func newHistogram() *histogram {
	return &histogram{counts: make([]int64, len(latencyBuckets)+1)}
}

func (h *histogram) observe(d time.Duration) {
	sec := d.Seconds()
	i := sort.SearchFloat64s(latencyBuckets, sec)
	h.mu.Lock()
	h.counts[i]++
	h.sum += sec
	h.n++
	h.mu.Unlock()
}

// snapshot returns the histogram's totals: observation count and sum.
func (h *histogram) snapshot() (n int64, sum float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.n, h.sum
}

// quantile estimates the q-quantile (q in (0, 1]) from the bucket counts:
// the upper bound of the bucket holding the nearest-rank observation, a
// conservative estimate that is exact for the question the 300 ms budget
// asks ("is the tail under the bound?"). Observations past the last bucket
// report the largest bound. Zero when nothing was observed.
func (h *histogram) quantile(q float64) float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.n == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(h.n)))
	if rank < 1 {
		rank = 1
	}
	cum := int64(0)
	for i, le := range latencyBuckets {
		cum += h.counts[i]
		if cum >= rank {
			return le
		}
	}
	return latencyBuckets[len(latencyBuckets)-1]
}

// render writes the histogram in the Prometheus text exposition format.
func (h *histogram) render(w io.Writer, name string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	cum := int64(0)
	for i, le := range latencyBuckets {
		cum += h.counts[i]
		fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, fmt.Sprintf("%g", le), cum)
	}
	cum += h.counts[len(latencyBuckets)]
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, cum)
	fmt.Fprintf(w, "%s_sum %g\n", name, h.sum)
	fmt.Fprintf(w, "%s_count %d\n", name, h.n)
}

// modelStat aggregates the serving traffic of one (target, kind, input
// set) model: how many queries it answered (or failed), and the latency of
// its micro-batched predict calls. Counters are server-lifetime — they
// survive generation swaps, so a hot reload never resets the fleet's view
// of the service (the /v2/stats cross-check contract).
type modelStat struct {
	queries counter // successfully answered queries
	errors  counter // failed model resolutions or predictions
	latency *histogram
}

// metrics aggregates every observable of the serving layer. All fields are
// safe for concurrent use.
type metrics struct {
	mu       sync.Mutex
	requests map[requestKey]*counter // per (endpoint, status code)

	modelMu sync.Mutex
	models  map[modelKey]*modelStat // per (target, kind, input set)

	profileHits     counter
	profileMisses   counter
	profileFailures counter // profile builds that errored (entry cleared, not cached)
	modelHits       counter
	modelMisses     counter
	trainFailures   counter // model fits that errored (entry cleared, not cached)

	batches        counter // micro-batch flushes
	batchedQueries counter // queries carried by those flushes

	// generationID is the serving generation (a gauge, not a counter: it
	// reports the current value, bumped on every swap).
	generationID atomic.Int64
	reloads      counter // reloads that swapped in a new generation
	reloadNoops  counter // reloads skipped on a matching fingerprint
	reloadErrors counter // reloads that failed before any swap

	trainSeconds   *histogram // one observation per model fit
	predictSeconds *histogram // one observation per /v1/predict request
	profileSeconds *histogram // one observation per profile build
	reloadSeconds  *histogram // one observation per swapping reload
	retrainSeconds *histogram // one observation per ingest-driven retrain
}

type requestKey struct {
	endpoint string
	code     int
}

func newMetrics() *metrics {
	return &metrics{
		requests:       map[requestKey]*counter{},
		models:         map[modelKey]*modelStat{},
		trainSeconds:   newHistogram(),
		predictSeconds: newHistogram(),
		profileSeconds: newHistogram(),
		reloadSeconds:  newHistogram(),
		retrainSeconds: newHistogram(),
	}
}

// modelStatFor finds or creates the stat slot of one model key.
func (m *metrics) modelStatFor(k modelKey) *modelStat {
	m.modelMu.Lock()
	defer m.modelMu.Unlock()
	st, ok := m.models[k]
	if !ok {
		st = &modelStat{latency: newHistogram()}
		m.models[k] = st
	}
	return st
}

// modelKeys snapshots the known model keys in deterministic
// (target, kind, set) order.
func (m *metrics) modelKeys() []modelKey {
	m.modelMu.Lock()
	keys := make([]modelKey, 0, len(m.models))
	for k := range m.models {
		keys = append(keys, k)
	}
	m.modelMu.Unlock()
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].target != keys[j].target {
			return keys[i].target < keys[j].target
		}
		if keys[i].kind != keys[j].kind {
			return keys[i].kind < keys[j].kind
		}
		return keys[i].set < keys[j].set
	})
	return keys
}

func (m *metrics) countRequest(endpoint string, code int) {
	k := requestKey{endpoint, code}
	m.mu.Lock()
	c, ok := m.requests[k]
	if !ok {
		c = &counter{}
		m.requests[k] = c
	}
	m.mu.Unlock()
	c.inc()
}

// render writes the full exposition: request counts, cache accounting,
// batching totals and the latency histograms.
func (m *metrics) render(w io.Writer) {
	m.mu.Lock()
	keys := make([]requestKey, 0, len(m.requests))
	for k := range m.requests {
		keys = append(keys, k)
	}
	m.mu.Unlock()
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].endpoint != keys[j].endpoint {
			return keys[i].endpoint < keys[j].endpoint
		}
		return keys[i].code < keys[j].code
	})
	for _, k := range keys {
		m.mu.Lock()
		c := m.requests[k]
		m.mu.Unlock()
		fmt.Fprintf(w, "dramserve_requests_total{endpoint=%q,code=\"%d\"} %d\n",
			k.endpoint, k.code, c.value())
	}
	fmt.Fprintf(w, "dramserve_profile_cache_hits_total %d\n", m.profileHits.value())
	fmt.Fprintf(w, "dramserve_profile_cache_misses_total %d\n", m.profileMisses.value())
	fmt.Fprintf(w, "dramserve_profile_build_failures_total %d\n", m.profileFailures.value())
	fmt.Fprintf(w, "dramserve_model_registry_hits_total %d\n", m.modelHits.value())
	fmt.Fprintf(w, "dramserve_model_registry_misses_total %d\n", m.modelMisses.value())
	fmt.Fprintf(w, "dramserve_model_train_failures_total %d\n", m.trainFailures.value())
	fmt.Fprintf(w, "dramserve_predict_batches_total %d\n", m.batches.value())
	fmt.Fprintf(w, "dramserve_predict_batched_queries_total %d\n", m.batchedQueries.value())
	for _, k := range m.modelKeys() {
		st := m.modelStatFor(k)
		labels := fmt.Sprintf("{target=%q,kind=%q,set=\"%d\"}", k.target, k.kind, k.set)
		fmt.Fprintf(w, "dramserve_model_queries_total%s %d\n", labels, st.queries.value())
		fmt.Fprintf(w, "dramserve_model_errors_total%s %d\n", labels, st.errors.value())
	}
	fmt.Fprintf(w, "dramserve_generation %d\n", m.generationID.Load())
	fmt.Fprintf(w, "dramserve_reloads_total %d\n", m.reloads.value())
	fmt.Fprintf(w, "dramserve_reload_noops_total %d\n", m.reloadNoops.value())
	fmt.Fprintf(w, "dramserve_reload_errors_total %d\n", m.reloadErrors.value())
	m.trainSeconds.render(w, "dramserve_train_seconds")
	m.predictSeconds.render(w, "dramserve_predict_seconds")
	m.profileSeconds.render(w, "dramserve_profile_seconds")
	m.reloadSeconds.render(w, "dramserve_reload_seconds")
}
