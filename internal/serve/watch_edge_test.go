package serve

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
)

// watcherFixture boots a server on a fresh artifact and polls once so the
// watcher holds committed stat state.
func watcherFixture(t *testing.T) (*Server, *ArtifactWatcher, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "dfault.json.gz")
	ds := testDataset(t)
	if err := ds.SaveAtomic(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := core.LoadDataset(path)
	if err != nil {
		t.Fatal(err)
	}
	s := New(loaded, Options{Quick: true, Seed: 3, Workers: 2, ArtifactPath: path})
	t.Cleanup(func() { s.Close() })
	aw := NewArtifactWatcher(s, path)
	if _, err := aw.Poll(); err != nil {
		t.Fatal(err)
	}
	return s, aw, path
}

// TestWatcherStatErrorMidPoll: the artifact vanishing between polls must
// surface as a poll error — never a silent skip — while the serving
// generation stays up, and the watcher must keep retrying so the next
// successful stat recovers without a restart.
func TestWatcherStatErrorMidPoll(t *testing.T) {
	s, aw, path := watcherFixture(t)
	_, servingBefore := s.Identity()

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(path); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if res, err := aw.Poll(); err == nil {
			t.Fatalf("poll %d with no artifact = (%+v, nil), want an error", i, res)
		}
	}
	if _, serving := s.Identity(); serving != servingBefore {
		t.Fatalf("failed poll changed the serving fingerprint %q -> %q", servingBefore, serving)
	}

	// Restore the identical bytes: the poll recovers on its own. The
	// reload is a no-op swap (same fingerprint), not an error.
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	res, err := aw.Poll()
	if err != nil {
		t.Fatal(err)
	}
	if res == nil || res.Swapped {
		t.Fatalf("recovery poll = %+v, want an unswapped reload", res)
	}
}

// TestWatcherArtifactDeletedThenRecreated: a delete followed by a rewrite
// with different content must swap generations once the file is back,
// regardless of how many polls failed in between.
func TestWatcherArtifactDeletedThenRecreated(t *testing.T) {
	s, aw, path := watcherFixture(t)
	gen0, _ := s.Identity()

	if err := os.Remove(path); err != nil {
		t.Fatal(err)
	}
	if _, err := aw.Poll(); err == nil {
		t.Fatal("poll with no artifact succeeded")
	}

	// Recreate with a byte-different artifact (seed is hashed into the
	// fingerprint).
	next := testDataset(t).Append(nil, nil, nil)
	next.Build.Seed += 7
	if err := next.SaveAtomic(path); err != nil {
		t.Fatal(err)
	}
	res, err := aw.Poll()
	if err != nil {
		t.Fatal(err)
	}
	if res == nil || !res.Swapped {
		t.Fatalf("post-recreate poll = %+v, want a swap", res)
	}
	if res.Fingerprint != next.Fingerprint() {
		t.Fatalf("swapped to %q, want %q", res.Fingerprint, next.Fingerprint())
	}
	if gen, _ := s.Identity(); gen == gen0 {
		t.Fatal("generation did not advance across delete-then-recreate")
	}

	// And the fingerprint skip resumes against the recreated artifact.
	if res, err := aw.Poll(); err != nil || res != nil {
		t.Fatalf("settled poll = (%+v, %v), want a skip", res, err)
	}
}

// TestWatcherTruncatedGzip: a stat-identical truncation corrupts the gzip
// stream, so PeekFingerprint errors and cannot authorize a skip; the full
// reload must then fail loudly — the corrupt artifact is never promoted —
// and the previous generation keeps serving until the artifact heals.
func TestWatcherTruncatedGzip(t *testing.T) {
	s, aw, path := watcherFixture(t)
	genBefore, servingBefore := s.Identity()

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	stamp := fi.ModTime()

	// Act one: truncate the gzip stream in half, pad back to the original
	// size and restore the mtime — stat-identical, bytes garbage past the
	// midpoint. The fingerprint field sits early in the stream, so the
	// peek still reads it, finds it matching the serving generation, and
	// the poll skips: the corrupt tail is never parsed, never promoted.
	halfCorrupt := make([]byte, len(data))
	copy(halfCorrupt, data[:len(data)/2])
	if err := os.WriteFile(path, halfCorrupt, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Chtimes(path, stamp, stamp); err != nil {
		t.Fatal(err)
	}
	if modOK, sizeOK := statPair(t, path, stamp, fi.Size()); !modOK || !sizeOK {
		t.Fatal("test setup failed to keep the corrupt artifact stat-identical")
	}
	if res, err := aw.Poll(); err != nil || res != nil {
		t.Fatalf("half-truncated poll = (%+v, %v), want a fingerprint skip", res, err)
	}
	if gen, serving := s.Identity(); gen != genBefore || serving != servingBefore {
		t.Fatal("half-truncated artifact disturbed the serving identity")
	}

	// Act two: truncate into the gzip header itself (still stat-identical
	// via padding), so even the peek fails and cannot authorize a skip.
	corrupt := make([]byte, len(data))
	copy(corrupt, data[:16])
	if err := os.WriteFile(path, corrupt, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Chtimes(path, stamp, stamp); err != nil {
		t.Fatal(err)
	}
	if modOK, sizeOK := statPair(t, path, stamp, fi.Size()); !modOK || !sizeOK {
		t.Fatal("test setup failed to keep the corrupt artifact stat-identical")
	}
	if _, err := core.PeekFingerprint(path); err == nil {
		t.Fatal("PeekFingerprint read a fingerprint out of a headerless gzip stream")
	}

	if res, err := aw.Poll(); err == nil {
		t.Fatalf("poll on corrupt artifact = (%+v, nil), want an error", res)
	}
	if gen, serving := s.Identity(); gen != genBefore || serving != servingBefore {
		t.Fatalf("corrupt artifact disturbed the serving identity: (%d, %q) -> (%d, %q)",
			genBefore, servingBefore, gen, serving)
	}
	// Force (SIGHUP) must refuse it just the same.
	if res, err := aw.Force(); err == nil {
		t.Fatalf("force on corrupt artifact = (%+v, nil), want an error", res)
	}

	// Heal the artifact; the next poll reloads (the failed attempt
	// dropped the stat state, so no skip can shadow the recovery).
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Chtimes(path, stamp, stamp); err != nil {
		t.Fatal(err)
	}
	res, err := aw.Poll()
	if err != nil {
		t.Fatal(err)
	}
	if res == nil || res.Swapped {
		t.Fatalf("healed poll = %+v, want an unswapped reload", res)
	}
}
