package serve

import (
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/core"
)

// getStats fetches and decodes /v2/stats.
func getStats(t testing.TB, ts *httptest.Server) *StatsResponseV2 {
	t.Helper()
	resp, data := get(t, ts, "/v2/stats")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/v2/stats = %d: %s", resp.StatusCode, data)
	}
	var out StatsResponseV2
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatalf("decoding /v2/stats: %v: %s", err, data)
	}
	return &out
}

// findModel returns the stats entry for (target, kind, set), or nil.
func findModel(st *StatsResponseV2, target string, set int) *ModelStatsV2 {
	for i := range st.Models {
		if st.Models[i].Target == target && st.Models[i].InputSet == set {
			return &st.Models[i]
		}
	}
	return nil
}

// TestStatsV2Counters pins the cross-check contract the fleet load
// generator relies on: every successfully answered query increments
// exactly one counter per requested target, across both predict surfaces.
func TestStatsV2Counters(t *testing.T) {
	_, ts := newTestServer(t)

	// Traffic: 3 PUE-only /v2 queries, 2 both-target /v2 queries, and one
	// /v1 query (v1 always computes both targets).
	pueOnly := `{"workload":"nw","trefp":1.173,"temp_c":60,"targets":["pue"]}`
	both := `{"workload":"nw","trefp":1.173,"temp_c":60}`
	for i := 0; i < 3; i++ {
		if resp, data := post(t, ts, "/v2/predict", "application/json", pueOnly); resp.StatusCode != http.StatusOK {
			t.Fatalf("pue-only predict = %d: %s", resp.StatusCode, data)
		}
	}
	for i := 0; i < 2; i++ {
		if resp, data := post(t, ts, "/v2/predict", "application/json", both); resp.StatusCode != http.StatusOK {
			t.Fatalf("both-target predict = %d: %s", resp.StatusCode, data)
		}
	}
	if resp, data := postPredict(t, ts, both); resp.StatusCode != http.StatusOK {
		t.Fatalf("v1 predict = %d: %s", resp.StatusCode, data)
	}

	st := getStats(t, ts)
	if st.Generation != 1 || st.Fingerprint == "" {
		t.Fatalf("artifact identity missing: generation=%d fingerprint=%q",
			st.Generation, st.Fingerprint)
	}
	if st.Targets["pue"] != 6 || st.Targets["wer"] != 3 {
		t.Fatalf("target rollup = %v, want pue=6 wer=3", st.Targets)
	}

	// The per-model breakdown: each target's default input set.
	pue := findModel(st, "pue", int(core.InputSet2))
	wer := findModel(st, "wer", int(core.InputSet1))
	if pue == nil || wer == nil {
		t.Fatalf("model entries missing: %+v", st.Models)
	}
	if pue.Queries != 6 || wer.Queries != 3 {
		t.Fatalf("model queries pue=%d wer=%d, want 6/3", pue.Queries, wer.Queries)
	}
	if pue.Errors != 0 || wer.Errors != 0 {
		t.Fatalf("unexpected errors: pue=%d wer=%d", pue.Errors, wer.Errors)
	}
	if pue.Kind != string(core.ModelKNN) {
		t.Fatalf("model kind = %q", pue.Kind)
	}
	if pue.LatencyMSSum <= 0 || pue.LatencyMSMean <= 0 {
		t.Fatalf("latency accounting empty: %+v", pue)
	}
	if pue.LatencyMSP99 < pue.LatencyMSP50 {
		t.Fatalf("p99 %v < p50 %v", pue.LatencyMSP99, pue.LatencyMSP50)
	}

	// Request accounting: 5 /v2 and 1 /v1 successes plus this handler's
	// own /v2/stats hit are all visible per (endpoint, code).
	want := map[string]int64{"/v1/predict": 1, "/v2/predict": 5}
	for _, e := range st.Endpoints {
		if e.Code == http.StatusOK && want[e.Endpoint] != 0 && e.Requests != want[e.Endpoint] {
			t.Fatalf("endpoint %s = %d requests, want %d", e.Endpoint, e.Requests, want[e.Endpoint])
		}
	}
}

// TestStatsV2TrainFailureCounted proves a failed model fit lands in the
// model's error counter, not its query counter.
func TestStatsV2TrainFailureCounted(t *testing.T) {
	s := New(testDataset(t), Options{Quick: true, Seed: 3, Workers: 2})
	t.Cleanup(func() { s.Close() })
	var calls atomic.Int64
	realTrain := s.train
	s.train = func(ds *core.Dataset, target core.Target, kind core.ModelKind, set core.InputSet, workers int) (core.Predictor, error) {
		if target == core.TargetWER && calls.Add(1) == 1 {
			return nil, errors.New("injected one-shot fit failure")
		}
		return realTrain(ds, target, kind, set, workers)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	body := `{"workload":"nw","trefp":1.173,"temp_c":60,"targets":["wer"]}`
	if resp, _ := post(t, ts, "/v2/predict", "application/json", body); resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("first predict = %d, want 500", resp.StatusCode)
	}
	st := getStats(t, ts)
	wer := findModel(st, "wer", int(core.InputSet1))
	if wer == nil || wer.Errors != 1 || wer.Queries != 0 {
		t.Fatalf("after failed fit: %+v", wer)
	}

	// The retry succeeds (non-sticky registry) and counts as a query.
	if resp, data := post(t, ts, "/v2/predict", "application/json", body); resp.StatusCode != http.StatusOK {
		t.Fatalf("second predict = %d: %s", resp.StatusCode, data)
	}
	st = getStats(t, ts)
	wer = findModel(st, "wer", int(core.InputSet1))
	if wer == nil || wer.Errors != 1 || wer.Queries != 1 {
		t.Fatalf("after retry: %+v", wer)
	}
}

// TestStatsV2MethodContract: /v2/stats obeys the uniform method rule with
// the structured /v2 error shape.
func TestStatsV2MethodContract(t *testing.T) {
	_, ts := newTestServer(t)
	resp, data := post(t, ts, "/v2/stats", "application/json", `{}`)
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST /v2/stats = %d, want 405", resp.StatusCode)
	}
	if resp.Header.Get("Allow") != http.MethodGet {
		t.Fatalf("Allow = %q", resp.Header.Get("Allow"))
	}
	if !strings.Contains(string(data), `"code":"method_not_allowed"`) {
		t.Fatalf("error not structured: %s", data)
	}
}
