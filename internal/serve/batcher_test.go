package serve

import (
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// The batcher's shutdown contract: every do() caller that is blocked when
// stop closes — whether its items are queued, mid-flush, or not yet
// submitted — returns errClosed deterministically; the dispatcher goroutine
// exits; no reply is lost into a blocking send (out channels are buffered,
// so a caller that already gave up cannot wedge the dispatcher).

func TestBatcherStopUnblocksAllCallers(t *testing.T) {
	m := newMetrics()
	stop := make(chan struct{})
	inFlight := make(chan struct{}, 1)
	release := make(chan struct{})
	b := newBatcher(func(qs []int) ([]int, error) {
		inFlight <- struct{}{}
		<-release // strand the flush so callers pile up behind it
		return qs, nil
	}, stop, m)

	const callers = 64
	errs := make([]error, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = b.do([]int{i})
		}(i)
	}
	// Wait until a flush is actually stranded inside run, guaranteeing a
	// mix of caller states: some in the held flush, the rest queued.
	<-inFlight
	close(stop)
	wg.Wait() // every caller must return — a hang fails the test by timeout
	for i, err := range errs {
		if !errors.Is(err, errClosed) {
			t.Fatalf("caller %d returned %v, want errClosed", i, err)
		}
	}
	// A submission after stop fails fast without touching the dispatcher.
	if _, err := b.do([]int{1}); !errors.Is(err, errClosed) {
		t.Fatalf("post-stop do() = %v, want errClosed", err)
	}
	// Unblock the stranded flush: the dispatcher must deliver its replies
	// into the buffered out channels without blocking and exit.
	close(release)
}

// TestBatcherStopRaceNoLeak races many submitters against the stop close
// with a fast run function: every do() returns either a correct result or
// errClosed (never hangs, never a wrong-sized window), and the dispatcher
// goroutine exits afterwards.
func TestBatcherStopRaceNoLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	for round := 0; round < 20; round++ {
		m := newMetrics()
		stop := make(chan struct{})
		b := newBatcher(func(qs []int) ([]int, error) {
			out := make([]int, len(qs))
			for i, q := range qs {
				out[i] = q * 2
			}
			return out, nil
		}, stop, m)

		const callers = 32
		var wg sync.WaitGroup
		var closedErrs, results atomic.Int64
		for i := 0; i < callers; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				qs := []int{i, i + 100}
				rs, err := b.do(qs)
				switch {
				case errors.Is(err, errClosed):
					closedErrs.Add(1)
				case err != nil:
					t.Errorf("caller %d: %v", i, err)
				default:
					if len(rs) != len(qs) || rs[0] != 2*i || rs[1] != 2*(i+100) {
						t.Errorf("caller %d got wrong window %v", i, rs)
					}
					results.Add(1)
				}
			}(i)
		}
		if round%2 == 0 {
			runtime.Gosched() // let some flushes land before the close
		}
		close(stop)
		wg.Wait()
		if closedErrs.Load()+results.Load() != callers {
			t.Fatalf("round %d: %d closed + %d results != %d callers",
				round, closedErrs.Load(), results.Load(), callers)
		}
	}
	// Every dispatcher must have exited; allow the scheduler a moment.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("dispatcher goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
}
