// Package serve is the deployment layer of the reproduction: a long-running
// prediction service over the trained workload-aware DRAM error model. The
// paper's deliverable is a model that answers WER/PUE queries "within
// 300 ms" from a periodically-updated artifact (the DFault model); this
// package serves exactly that from a saved campaign dataset
// (core.LoadDataset) over an HTTP JSON API:
//
//	POST /v2/predict   typed targets, structured errors (see API.md)
//	GET  /v2/stats     per-(target, kind, input set) serving counters
//	POST /v1/predict   the legacy surface: always computes both targets
//	GET  /v1/workloads the servable benchmark catalog
//	GET  /v1/models    model kinds, input sets, targets, trained entries
//	POST /v1/reload    swap in a refreshed dataset artifact in place
//	GET  /healthz      liveness, dataset shape, serving generation
//	GET  /metrics      request/cache/batch/reload counters and histograms
//
// Both predict surfaces run the same resolve → model → predict path over
// the unified core.Predictor API; /v1 is a thin adapter that always
// requests every target and renders the legacy wire format (pinned
// byte-for-byte by golden tests), while /v2 takes a per-query target
// selection — a PUE-only query never trains or waits for a WER model,
// because the model registry is keyed on the full (target, kind, input
// set) triple — and reports failures as machine-readable
// {code, field, message} errors. Method and content-type enforcement is
// uniform across every endpoint: wrong method is 405 with Allow set,
// non-JSON POST content is 415.
//
// Three mechanisms keep the warm path far under the 300 ms budget while the
// cold path stays correct under concurrency:
//
//   - a model registry trains each (target, kind, input set) predictor
//     once through the core.Train factory, singleflight-style: concurrent
//     first requests block on one fit, and a failed fit is never cached —
//     the entry clears so the next request retries instead of inheriting a
//     transient error;
//   - a profile cache keyed by (workload, size, seed) makes repeat queries
//     skip the expensive profiling pass (same non-sticky error handling);
//   - a micro-batcher per predictor coalesces in-flight queries into
//     PredictBatch calls that fan out on the engine's bounded worker pool.
//
// The paper's model is "retrained periodically" from fresh characterization
// data, so the dataset and everything derived from it (registry, profile
// cache, batchers) live in a generation behind an atomic pointer: Reload
// builds a new generation from a refreshed artifact and swaps it in while
// in-flight queries finish on the generation they started with (see
// generation.go). A content fingerprint persisted in the artifact makes
// reloading an unchanged artifact a no-op.
//
// Shutdown is graceful: Close cancels the server's context (threaded into
// every engine dispatch), wakes all batcher waiters, and makes new
// requests fail fast before starting a cold profile build or model fit.
package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/dram"
	"repro/internal/engine"
	"repro/internal/ingest"
	"repro/internal/profile"
	"repro/internal/workload"
)

// maxBatchBody bounds the number of queries in one request body.
const maxBatchBody = 1024

// Options configures a Server.
type Options struct {
	// Quick profiles query workloads at test size instead of SizeProfile.
	// It must match how the dataset was built (dramtrain's -quick), so
	// query-time features are commensurate with the training rows.
	Quick bool
	// Seed keys the profiling passes.
	Seed uint64
	// Workers bounds the engine parallelism of training and batched
	// prediction; 0 means GOMAXPROCS.
	Workers int
	// ArtifactPath, when set, is the dataset artifact backing the server;
	// POST /v1/reload with an empty body (and cmd/dramserve's SIGHUP and
	// -reload-interval) reload from it.
	ArtifactPath string
	// Context, when set, is the base context; its cancellation stops the
	// server like Close does.
	Context context.Context
	// Ingest, when set, enables the streaming-ingest pipeline: POST
	// /v2/ingest accepts telemetry rows into a bounded queue, a drift
	// detector scores them against the serving artifact's training
	// distribution, and drift/row-count triggers (or POST /v2/retrain)
	// rebuild the dataset and swap a new generation in place. Nil leaves
	// the ingest endpoints registered but answering ingest_disabled.
	Ingest *ingest.Config
}

// Server answers prediction queries from the current serving generation: a
// loaded campaign dataset plus the models, profiles and batchers derived
// from it. Reload swaps generations atomically; see generation.go.
type Server struct {
	workers int
	// optSize/optSeed are the startup profiling settings, used for
	// datasets that do not record their own build settings.
	optSize workload.Size
	optSeed uint64

	metrics *metrics

	// gen is the current serving generation. reloadMu serializes swaps
	// (the pointer itself is safe to read lock-free).
	gen          atomic.Pointer[generation]
	reloadMu     sync.Mutex
	artifactPath string

	// ingest is the streaming-ingest pipeline, nil when the server runs
	// without one; lastRetrain records the most recent ingest-driven swap
	// for POST /v2/retrain responses.
	ingest      *ingest.Pipeline
	lastRetrain atomic.Pointer[ReloadResult]

	ctx       context.Context
	cancel    context.CancelFunc
	stop      chan struct{}
	closeOnce sync.Once
	start     time.Time

	// Fill seams, overridable in tests to inject failures: production
	// wiring is core.Train / profile.BuildAt.
	train        func(*core.Dataset, core.Target, core.ModelKind, core.InputSet, int) (core.Predictor, error)
	buildProfile func(workload.Spec, workload.Size, uint64) (*profile.Result, error)
}

// New builds a Server over the dataset (serving generation 1). The caller
// must Close it.
func New(ds *core.Dataset, opts Options) *Server {
	base := opts.Context
	if base == nil {
		base = context.Background()
	}
	ctx, cancel := context.WithCancel(base)
	size := workload.SizeProfile
	if opts.Quick {
		size = workload.SizeTest
	}
	s := &Server{
		workers:      opts.Workers,
		optSize:      size,
		optSeed:      opts.Seed,
		metrics:      newMetrics(),
		artifactPath: opts.ArtifactPath,
		ctx:          ctx,
		cancel:       cancel,
		stop:         make(chan struct{}),
		start:        time.Now(),
		train:        core.Train,
		buildProfile: profile.BuildAt,
	}
	g := s.newGeneration(1, ds)
	s.gen.Store(g)
	s.metrics.generationID.Store(g.id)
	if opts.Ingest != nil {
		// The drift baseline is the artifact's own training distribution;
		// retrains adopt the appended dataset's summary as the next one.
		s.ingest = ingest.New(*opts.Ingest, ds.TelemetrySummary(), s.retrainWith)
	}
	context.AfterFunc(ctx, func() { s.Close() })
	return s
}

// Close stops the server: batcher dispatchers exit, blocked requests
// return errClosed, in-flight engine dispatch is canceled, and new
// requests fail fast before paying for profiling or training (an
// already-running model fit completes, as an in-flight HTTP request
// would). Idempotent.
func (s *Server) Close() error {
	s.closeOnce.Do(func() {
		s.cancel()
		close(s.stop)
		// Stop the ingest consumer before the batchers so an in-flight
		// retrain's engine dispatch sees the cancellation promptly.
		if s.ingest != nil {
			s.ingest.Close()
		}
		// Stop the current generation's batchers. Retired generations
		// already stopped theirs; a reload racing with this close re-checks
		// closedErr after its swap and stops the new generation itself.
		s.gen.Load().closeStop()
	})
	return nil
}

// closedErr fails fast once the server is closed, so post-shutdown
// requests cannot start expensive cold fills.
func (s *Server) closedErr() error {
	select {
	case <-s.stop:
		return errClosed
	default:
		return nil
	}
}

// Handler returns the server's HTTP API. Every endpoint goes through the
// same method/content-type enforcement; only the error wire format differs
// between the /v1 and /v2 surfaces.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	route := func(path, method string, werr errWriter, h http.HandlerFunc) {
		mux.HandleFunc(path, s.counted(path, endpoint(method, werr, h)))
	}
	route("/v1/predict", http.MethodPost, writeErrorV1, s.handlePredictV1)
	route("/v2/predict", http.MethodPost, writeErrorV2, s.handlePredictV2)
	route("/v2/stats", http.MethodGet, writeErrorV2, s.handleStatsV2)
	route("/v2/ingest", http.MethodPost, writeErrorV2, s.handleIngestV2)
	route("/v2/retrain", http.MethodPost, writeErrorV2, s.handleRetrainV2)
	route("/v1/workloads", http.MethodGet, writeErrorV1, s.handleWorkloads)
	route("/v1/models", http.MethodGet, writeErrorV1, s.handleModels)
	route("/v1/reload", http.MethodPost, writeErrorV1, s.handleReload)
	route("/healthz", http.MethodGet, writeErrorV1, s.handleHealthz)
	route("/metrics", http.MethodGet, writeErrorV1, s.handleMetrics)
	return mux
}

// statusRecorder captures the response code for request accounting.
type statusRecorder struct {
	http.ResponseWriter
	code int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.code = code
	r.ResponseWriter.WriteHeader(code)
}

// counted wraps a handler with per-(endpoint, code) request counting.
func (s *Server) counted(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		rec := &statusRecorder{ResponseWriter: w, code: http.StatusOK}
		h(rec, r)
		s.metrics.countRequest(endpoint, rec.code)
	}
}

// query is the version-independent form of one prediction request, after
// JSON decoding and before validation.
type query struct {
	Workload string
	TREFP    float64
	TempC    float64
	VDD      float64
	Model    string
	InputSet int
	// Targets is the requested target selection; nil means the serving
	// generation's default selection (see generation.defaults).
	Targets []string
	// CE is the query's correctable-error telemetry window, consumed by
	// NeedsTelemetry targets.
	CE []profile.CEEvent
}

// numTargets is the registry size: the most targets one query can request
// (every registered target, deduplicated). The pooled per-query
// intermediates below size their reusable backing slices to it, so a warm
// query allocates nothing regardless of how many targets are registered.
var numTargets = len(core.Targets())

// resolved is a validated query bound to its feature vector and models.
// Instances are pooled: the handlers return them through putResolved once
// the response is rendered, so a warm query reuses the previous one's
// storage instead of allocating.
type resolved struct {
	workload string
	trefp    float64
	tempC    float64
	vdd      float64
	kind     core.ModelKind
	// set is the explicitly requested input set, 0 meaning each target's
	// published default.
	set core.InputSet
	// targets is the requested selection in request order, deduplicated.
	// Its backing array is pooled with the struct (cap numTargets).
	targets []core.Target
	feats   []float64
	// ce aliases the decoded request's telemetry window; the handler keeps
	// the request body alive until the response is rendered.
	ce []profile.CEEvent
}

var resolvedPool = sync.Pool{New: func() any {
	return &resolved{targets: make([]core.Target, 0, numTargets)}
}}

// putResolved recycles r. Reference fields are dropped so a pooled entry
// cannot pin a retired generation's profile features or a request body.
func putResolved(r *resolved) {
	if r == nil {
		return
	}
	r.feats = nil
	r.ce = nil
	r.targets = r.targets[:0]
	resolvedPool.Put(r)
}

// setFor resolves the input set serving one target.
func (r *resolved) setFor(t core.Target) core.InputSet {
	if r.set != 0 {
		return r.set
	}
	return t.DefaultInputSet()
}

// resolve validates one query and resolves its workload profile on
// generation g.
func (s *Server) resolve(g *generation, q query) (*resolved, *apiError) {
	spec, err := workload.FindSpec(q.Workload)
	if err != nil {
		return nil, errf(http.StatusNotFound, codeUnknownWorkload, "workload", "%v", err)
	}
	if q.TREFP <= 0 || math.IsNaN(q.TREFP) || math.IsInf(q.TREFP, 0) {
		return nil, errf(http.StatusBadRequest, codeOutOfRange, "trefp", "trefp %v out of range", q.TREFP)
	}
	if math.IsNaN(q.TempC) || math.IsInf(q.TempC, 0) {
		return nil, errf(http.StatusBadRequest, codeOutOfRange, "temp_c", "temp_c %v out of range", q.TempC)
	}
	if q.VDD == 0 {
		q.VDD = dram.MinVDD
	}
	if q.VDD < 0 || math.IsNaN(q.VDD) || math.IsInf(q.VDD, 0) {
		return nil, errf(http.StatusBadRequest, codeOutOfRange, "vdd", "vdd %v out of range", q.VDD)
	}
	if q.Model == "" {
		q.Model = string(core.ModelKNN)
	}
	kind, err := core.ParseModelKind(q.Model)
	if err != nil {
		return nil, errf(http.StatusBadRequest, codeUnknownModel, "model", "unknown model %q", q.Model)
	}
	var set core.InputSet
	switch q.InputSet {
	case 0:
		// Each target's published default (set 1 for WER, set 2 for PUE).
	case 1, 2, 3:
		set = core.InputSet(q.InputSet)
	default:
		return nil, errf(http.StatusBadRequest, codeOutOfRange, "input_set", "input_set %d out of range", q.InputSet)
	}
	if err := profile.ValidateCEEvents(q.CE); err != nil {
		return nil, errf(http.StatusBadRequest, codeBadTelemetry, "ce", "%v", err)
	}
	r2 := resolvedPool.Get().(*resolved)
	targets := r2.targets[:0]
	if len(q.Targets) == 0 {
		// The generation's default selection: every target its artifact can
		// serve, with telemetry targets joining only when the query actually
		// carries CE events — a plain operating-point query against a
		// telemetry-bearing artifact still answers exactly wer+pue.
		targets = append(targets, g.defaults...)
		if len(q.CE) > 0 {
			targets = append(targets, g.telemetryTargets...)
		}
	} else {
		for _, name := range q.Targets {
			t, err := core.ParseTarget(name)
			if err != nil {
				putResolved(r2)
				return nil, errf(http.StatusBadRequest, codeUnknownTarget, "targets", "unknown target %q", name)
			}
			if !g.available[t] {
				putResolved(r2)
				return nil, errf(http.StatusBadRequest, codeTargetUnavailable, "targets",
					"target %q has no training rows in the serving artifact", name)
			}
			dup := false
			for _, have := range targets {
				if have == t {
					dup = true
					break
				}
			}
			if !dup {
				targets = append(targets, t)
			}
		}
	}
	prof, err := s.profileFor(g, spec)
	if err != nil {
		putResolved(r2)
		return nil, servingErr(err)
	}
	r2.workload = spec.Label
	r2.trefp, r2.tempC, r2.vdd = q.TREFP, q.TempC, q.VDD
	r2.kind, r2.set = kind, set
	r2.targets = targets
	r2.feats = prof.Features
	r2.ce = q.CE
	return r2, nil
}

// predicted is one query's answers: preds[i] answers the resolved query's
// targets[i], plus the wall time of this query's model resolution and
// predict. Instances are pooled like resolved; every slice keeps a
// registry-sized backing array across reuses, so the per-target
// intermediates of a warm query live entirely in pooled storage whatever
// the catalog size.
type predicted struct {
	preds   []core.Prediction
	mvs     []modelVal
	stats   []*modelStat
	errs    []error
	elapsed time.Duration
}

var predictedPool = sync.Pool{New: func() any {
	return &predicted{
		preds: make([]core.Prediction, 0, numTargets),
		mvs:   make([]modelVal, 0, numTargets),
		stats: make([]*modelStat, 0, numTargets),
		errs:  make([]error, 0, numTargets),
	}
}}

// forTargets reslices the pooled backing arrays to one slot per requested
// target, zero-valued.
func (p *predicted) forTargets(n int) {
	p.preds = p.preds[:n]
	p.mvs = p.mvs[:n]
	p.stats = p.stats[:n]
	p.errs = p.errs[:n]
}

// putPredicted recycles p, clearing the backing arrays to full capacity so
// a pooled entry cannot pin ByRank result storage, model values or errors
// from a previous request.
func putPredicted(p *predicted) {
	if p == nil {
		return
	}
	clear(p.preds[:cap(p.preds)])
	clear(p.mvs[:cap(p.mvs)])
	clear(p.stats[:cap(p.stats)])
	clear(p.errs[:cap(p.errs)])
	p.preds = p.preds[:0]
	p.mvs = p.mvs[:0]
	p.stats = p.stats[:0]
	p.errs = p.errs[:0]
	predictedPool.Put(p)
}

// pred returns the answer for target t of the query resolved as r.
func (p *predicted) pred(r *resolved, t core.Target) core.Prediction {
	for i, tt := range r.targets {
		if tt == t {
			return p.preds[i]
		}
	}
	return core.Prediction{}
}

// predictOne answers one resolved query through generation g's
// micro-batchers. Only the requested targets' models are resolved — a
// PUE-only query never trains or waits for a WER model.
func (s *Server) predictOne(g *generation, r *resolved) (*predicted, *apiError) {
	start := time.Now()
	p := predictedPool.Get().(*predicted)
	p.forTargets(len(r.targets))
	for i, t := range r.targets {
		p.stats[i] = s.metrics.modelStatFor(modelKey{t, r.kind, r.setFor(t)})
		mv, err := s.model(g, t, r.kind, r.setFor(t))
		if err != nil {
			p.stats[i].errors.inc()
			putPredicted(p)
			return nil, servingErr(err)
		}
		p.mvs[i] = mv
	}
	// The targets are independent: submit every batcher at once so a query
	// pays one dispatch cycle, not one per target, and a wave of requests
	// lands in all batchers in the same flush. The first target runs on
	// this goroutine — the common single-target query spawns nothing.
	run := func(i int, t core.Target) {
		predStart := time.Now()
		ps, err := p.mvs[i].batch.do([]core.Query{{
			Target: t, Features: r.feats, TREFP: r.trefp, VDD: r.vdd,
			TempC: r.tempC, Rank: core.RankDevice, CE: r.ce,
		}})
		if err != nil {
			p.stats[i].errors.inc()
			p.errs[i] = err
			return
		}
		// Per-model serving accounting: one answered query per target,
		// with the micro-batched predict round trip it paid
		// (/v2/stats; the load generator cross-checks these).
		p.stats[i].queries.inc()
		p.stats[i].latency.observe(time.Since(predStart))
		p.preds[i] = ps[0]
	}
	var wg sync.WaitGroup
	for i := 1; i < len(r.targets); i++ {
		wg.Add(1)
		go func(i int, t core.Target) {
			defer wg.Done()
			run(i, t)
		}(i, r.targets[i])
	}
	run(0, r.targets[0])
	wg.Wait()
	for _, err := range p.errs {
		if err != nil {
			putPredicted(p)
			return nil, servingErr(err)
		}
	}
	p.elapsed = time.Since(start)
	return p, nil
}

// predictMany resolves and answers a batch. Resolution is all-or-nothing
// (the response always has one result per query) and fans out so a cold
// batch naming several unprofiled workloads pays for the slowest profile
// build, not their sum; predictions then run concurrently — their batcher
// submissions coalesce.
func (s *Server) predictMany(g *generation, qs []query) ([]*resolved, []*predicted, *apiError) {
	if len(qs) == 0 {
		return nil, nil, errf(http.StatusBadRequest, codeEmptyBatch, "queries", "empty batch")
	}
	if len(qs) > maxBatchBody {
		return nil, nil, errf(http.StatusBadRequest, codeBatchTooLarge, "queries",
			"batch of %d exceeds %d", len(qs), maxBatchBody)
	}
	type resolveOut struct {
		r *resolved
		e *apiError
	}
	outs, err := engine.Map(len(qs), func(i int) (resolveOut, error) {
		r, e := s.resolve(g, qs[i])
		return resolveOut{r, e}, nil
	}, engine.Options{Workers: s.workers, Context: s.ctx})
	if err != nil {
		// Only server shutdown cancels the resolve fan-out (per-query
		// failures travel inside resolveOut); outs may hold skipped
		// zero-valued entries, so bail before touching them.
		return nil, nil, servingErr(err)
	}
	rs := make([]*resolved, len(qs))
	for i, o := range outs {
		if o.e != nil {
			return nil, nil, o.e.at(i)
		}
		rs[i] = o.r
	}
	preds := make([]*predicted, len(rs))
	errs := make([]*apiError, len(rs))
	var wg sync.WaitGroup
	for i, rq := range rs {
		wg.Add(1)
		go func(i int, rq *resolved) {
			defer wg.Done()
			preds[i], errs[i] = s.predictOne(g, rq)
		}(i, rq)
	}
	wg.Wait()
	for i, e := range errs {
		if e != nil {
			return nil, nil, e.at(i)
		}
	}
	return rs, preds, nil
}

// ms renders a duration in the wire format's fractional milliseconds.
func ms(d time.Duration) float64 { return float64(d.Microseconds()) / 1e3 }

// PredictRequest is one /v1 prediction query.
type PredictRequest struct {
	Workload string  `json:"workload"`
	TREFP    float64 `json:"trefp"`
	TempC    float64 `json:"temp_c"`
	// VDD defaults to the campaign voltage (dram.MinVDD) when zero.
	VDD float64 `json:"vdd,omitempty"`
	// Model defaults to the paper's published KNN variant.
	Model string `json:"model,omitempty"`
	// InputSet (1–3) selects the feature set for both targets; zero means
	// the paper's best per target (set 1 for WER, set 2 for PUE).
	InputSet int `json:"input_set,omitempty"`
}

// query converts the v1 wire form to the shared query. The legacy surface
// pins the original target pair explicitly — its wire format has exactly
// the wer/pue fields, whatever else the registry has since grown.
func (r PredictRequest) query() query {
	return query{
		Workload: r.Workload, TREFP: r.TREFP, TempC: r.TempC, VDD: r.VDD,
		Model: r.Model, InputSet: r.InputSet,
		Targets: []string{string(core.TargetWER), string(core.TargetPUE)},
	}
}

// PredictResponse is the /v1 answer to one query. ElapsedMS is per query:
// the wall time of that query's model resolution and prediction.
type PredictResponse struct {
	Workload  string    `json:"workload"`
	TREFP     float64   `json:"trefp"`
	TempC     float64   `json:"temp_c"`
	VDD       float64   `json:"vdd"`
	Model     string    `json:"model"`
	WERMean   float64   `json:"wer_mean"`
	WERByRank []float64 `json:"wer_by_rank"`
	PUE       float64   `json:"pue"`
	ElapsedMS float64   `json:"elapsed_ms"`
}

// predictBody accepts either a single query or a batch.
type predictBody struct {
	PredictRequest
	Queries []PredictRequest `json:"queries,omitempty"`
}

// renderV1 adapts a unified prediction to the legacy wire format.
func renderV1(r *resolved, p *predicted) *PredictResponse {
	wer := p.pred(r, core.TargetWER)
	pue := p.pred(r, core.TargetPUE)
	return &PredictResponse{
		Workload:  r.workload,
		TREFP:     r.trefp,
		TempC:     r.tempC,
		VDD:       r.vdd,
		Model:     string(r.kind),
		WERMean:   wer.Value,
		WERByRank: wer.ByRank,
		PUE:       pue.Value,
		ElapsedMS: ms(p.elapsed),
	}
}

// handlePredictV1 is the legacy surface: a thin adapter over the shared
// resolve/predict path that always computes both targets and renders the
// pinned v1 wire format.
func (s *Server) handlePredictV1(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	var body predictBody
	if e := decodeBody(r, &body); e != nil {
		writeErrorV1(w, e)
		return
	}
	defer func() { s.metrics.predictSeconds.observe(time.Since(start)) }()

	// Pin the serving generation for the whole request: a reload swapping
	// in a new dataset mid-request must not mix state, and this reference
	// keeps the generation's batchers alive until we release it.
	g, err := s.acquire()
	if err != nil {
		writeErrorV1(w, servingErr(err))
		return
	}
	defer g.release()

	if body.Queries != nil {
		qs := make([]query, len(body.Queries))
		for i, q := range body.Queries {
			qs[i] = q.query()
		}
		rs, preds, e := s.predictMany(g, qs)
		if e != nil {
			writeErrorV1(w, e)
			return
		}
		results := make([]*PredictResponse, len(rs))
		for i := range rs {
			results[i] = renderV1(rs[i], preds[i])
		}
		writeJSON(w, http.StatusOK, map[string]any{"results": results})
		freeMany(rs, preds)
		return
	}

	rq, e := s.resolve(g, body.PredictRequest.query())
	if e != nil {
		writeErrorV1(w, e)
		return
	}
	p, e := s.predictOne(g, rq)
	if e != nil {
		putResolved(rq)
		writeErrorV1(w, e)
		return
	}
	writeJSON(w, http.StatusOK, renderV1(rq, p))
	putResolved(rq)
	putPredicted(p)
}

// freeMany recycles a batch's intermediates after its response is
// rendered.
func freeMany(rs []*resolved, preds []*predicted) {
	for _, r := range rs {
		putResolved(r)
	}
	for _, p := range preds {
		putPredicted(p)
	}
}

// handleReload reloads the server's configured artifact. The endpoint
// deliberately takes no path: letting an unauthenticated HTTP client name
// an arbitrary server-side file would allow filesystem probing and model
// substitution. Operators choose the artifact at startup (-load); the
// request body must be empty or an empty JSON object.
func (s *Server) handleReload(w http.ResponseWriter, r *http.Request) {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	var body struct{}
	if err := dec.Decode(&body); err != nil && err != io.EOF {
		// Same decode contract as everywhere else (413 past the body cap,
		// 400 otherwise), with an entirely empty body additionally allowed.
		writeErrorV1(w, decodeErr(err))
		return
	}
	if s.artifactPath == "" {
		writeErrorV1(w, errf(http.StatusBadRequest, codeNotArtifactBacked, "",
			"not artifact-backed: the server was started without -load"))
		return
	}
	res, err := s.Reload(s.artifactPath)
	if err != nil {
		e := servingErr(err)
		e.msg = "reload: " + e.msg
		writeErrorV1(w, e)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

func (s *Server) handleWorkloads(w http.ResponseWriter, r *http.Request) {
	type entry struct {
		Label    string `json:"label"`
		Threads  int    `json:"threads"`
		Profiled bool   `json:"profiled"`
		InCorpus bool   `json:"in_corpus"`
	}
	g := s.gen.Load()
	profiled := s.profiledLabels(g)
	inCorpus := map[string]bool{}
	for _, l := range g.ds.Workloads() {
		inCorpus[l] = true
	}
	var out []entry
	for _, spec := range workload.ExtendedSet() {
		out = append(out, entry{spec.Label, spec.Threads, profiled[spec.Label], inCorpus[spec.Label]})
	}
	writeJSON(w, http.StatusOK, map[string]any{"workloads": out})
}

func (s *Server) handleModels(w http.ResponseWriter, r *http.Request) {
	kinds := core.ModelKinds()
	sets := make([]int, 0, 3)
	for _, set := range core.InputSets() {
		sets = append(sets, int(set))
	}
	targets := make([]string, 0, numTargets)
	for _, t := range core.Targets() {
		targets = append(targets, string(t))
	}
	trained := s.trained(s.gen.Load())
	if trained == nil {
		trained = []trainedModel{}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"kinds":      kinds,
		"input_sets": sets,
		"targets":    targets,
		"trained":    trained,
	})
}

// HealthResponse is the GET /healthz body. It is exported because it is
// the cross-node probing contract: the cluster router (internal/cluster,
// cmd/dramrouter) decodes exactly this struct to health-check backends and
// to detect artifact-fingerprint skew across a sharded pool.
type HealthResponse struct {
	Status        string  `json:"status"`
	UptimeSeconds float64 `json:"uptime_seconds"`
	// Generation and Fingerprint identify the serving artifact; the
	// fingerprint is the authoritative cross-node identity (generation
	// counters are per-process).
	Generation  int64  `json:"generation"`
	Fingerprint string `json:"fingerprint"`
	WERRows     int    `json:"wer_rows"`
	PUERows     int    `json:"pue_rows"`
	UERows      int    `json:"uer_rows"`
	Workloads   int    `json:"workloads"`
	// Targets advertises the prediction targets this artifact can serve,
	// in catalog order. Clients (dramfleet's "all" selection) resolve
	// target availability from here instead of hardcoding the catalog.
	Targets []string `json:"targets"`
}

// Identity reports the current serving generation and artifact
// fingerprint — the same pair /healthz and every /v2 response surface.
func (s *Server) Identity() (generation int64, fingerprint string) {
	g := s.gen.Load()
	return g.id, g.fp
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	g := s.gen.Load()
	targets := make([]string, 0, len(g.available))
	for _, t := range core.Targets() {
		if g.available[t] {
			targets = append(targets, string(t))
		}
	}
	writeJSON(w, http.StatusOK, &HealthResponse{
		Status:        "ok",
		UptimeSeconds: time.Since(s.start).Seconds(),
		Generation:    g.id,
		Fingerprint:   g.fp,
		WERRows:       len(g.ds.WER),
		PUERows:       len(g.ds.PUE),
		UERows:        len(g.ds.UER),
		Workloads:     len(g.ds.Workloads()),
		Targets:       targets,
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.metrics.render(w)
	if s.ingest != nil {
		st := s.ingest.Snapshot()
		fmt.Fprintf(w, "dramserve_ingest_accepted_total %d\n", st.Accepted)
		fmt.Fprintf(w, "dramserve_ingest_dropped_total %d\n", st.Dropped)
		fmt.Fprintf(w, "dramserve_ingest_queue_depth %d\n", st.QueueDepth)
		fmt.Fprintf(w, "dramserve_ingest_buffered_rows %d\n", st.Buffered)
		fmt.Fprintf(w, "dramserve_ingest_drift_score %g\n", st.DriftScore)
		fmt.Fprintf(w, "dramserve_retrain_total %d\n", st.Retrains)
		fmt.Fprintf(w, "dramserve_retrain_failures_total %d\n", st.RetrainFailures)
		s.metrics.retrainSeconds.render(w, "dramserve_retrain_seconds")
	}
}
