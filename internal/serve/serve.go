// Package serve is the deployment layer of the reproduction: a long-running
// prediction service over the trained workload-aware DRAM error model. The
// paper's deliverable is a model that answers WER/PUE queries "within
// 300 ms" from a periodically-updated artifact (the DFault model); this
// package serves exactly that from a saved campaign dataset
// (core.LoadDataset) over an HTTP JSON API:
//
//	POST /v1/predict   one query or a {"queries": [...]} batch
//	GET  /v1/workloads the servable benchmark catalog
//	GET  /v1/models    model kinds, input sets, and trained entries
//	POST /v1/reload    swap in a refreshed dataset artifact in place
//	GET  /healthz      liveness, dataset shape, serving generation
//	GET  /metrics      request/cache/batch/reload counters and histograms
//
// Three mechanisms keep the warm path far under the 300 ms budget while the
// cold path stays correct under concurrency:
//
//   - a model registry trains each (kind, input set, target) predictor once,
//     singleflight-style: concurrent first requests block on one fit, and a
//     failed fit is never cached — the entry clears so the next request
//     retries instead of inheriting a transient error;
//   - a profile cache keyed by (workload, size, seed) makes repeat queries
//     skip the expensive profiling pass (same non-sticky error handling);
//   - a micro-batcher per predictor coalesces in-flight queries into
//     PredictBatch calls that fan out on the engine's bounded worker pool.
//
// The paper's model is "retrained periodically" from fresh characterization
// data, so the dataset and everything derived from it (registry, profile
// cache, batchers) live in a generation behind an atomic pointer: Reload
// builds a new generation from a refreshed artifact and swaps it in while
// in-flight queries finish on the generation they started with (see
// generation.go). A content fingerprint persisted in the artifact makes
// reloading an unchanged artifact a no-op.
//
// Shutdown is graceful: Close cancels the server's context (threaded into
// every engine dispatch), wakes all batcher waiters, and makes new
// requests fail fast before starting a cold profile build or model fit.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/dram"
	"repro/internal/engine"
	"repro/internal/profile"
	"repro/internal/workload"
)

// maxBatchBody bounds the number of queries in one request body.
const maxBatchBody = 1024

// Options configures a Server.
type Options struct {
	// Quick profiles query workloads at test size instead of SizeProfile.
	// It must match how the dataset was built (dramtrain's -quick), so
	// query-time features are commensurate with the training rows.
	Quick bool
	// Seed keys the profiling passes.
	Seed uint64
	// Workers bounds the engine parallelism of training and batched
	// prediction; 0 means GOMAXPROCS.
	Workers int
	// ArtifactPath, when set, is the dataset artifact backing the server;
	// POST /v1/reload with an empty body (and cmd/dramserve's SIGHUP and
	// -reload-interval) reload from it.
	ArtifactPath string
	// Context, when set, is the base context; its cancellation stops the
	// server like Close does.
	Context context.Context
}

// Server answers prediction queries from the current serving generation: a
// loaded campaign dataset plus the models, profiles and batchers derived
// from it. Reload swaps generations atomically; see generation.go.
type Server struct {
	workers int
	// optSize/optSeed are the startup profiling settings, used for
	// datasets that do not record their own build settings.
	optSize workload.Size
	optSeed uint64

	metrics *metrics

	// gen is the current serving generation. reloadMu serializes swaps
	// (the pointer itself is safe to read lock-free).
	gen          atomic.Pointer[generation]
	reloadMu     sync.Mutex
	artifactPath string

	ctx       context.Context
	cancel    context.CancelFunc
	stop      chan struct{}
	closeOnce sync.Once
	start     time.Time

	// Fill seams, overridable in tests to inject failures: production
	// wiring is core.TrainWER / core.TrainPUE / profile.BuildAt.
	trainWER     func(*core.Dataset, core.ModelKind, core.InputSet, int) (*core.WERPredictor, error)
	trainPUE     func(*core.Dataset, core.ModelKind, core.InputSet, int) (*core.PUEPredictor, error)
	buildProfile func(workload.Spec, workload.Size, uint64) (*profile.Result, error)
}

// New builds a Server over the dataset (serving generation 1). The caller
// must Close it.
func New(ds *core.Dataset, opts Options) *Server {
	base := opts.Context
	if base == nil {
		base = context.Background()
	}
	ctx, cancel := context.WithCancel(base)
	size := workload.SizeProfile
	if opts.Quick {
		size = workload.SizeTest
	}
	s := &Server{
		workers:      opts.Workers,
		optSize:      size,
		optSeed:      opts.Seed,
		metrics:      newMetrics(),
		artifactPath: opts.ArtifactPath,
		ctx:          ctx,
		cancel:       cancel,
		stop:         make(chan struct{}),
		start:        time.Now(),
		trainWER:     core.TrainWER,
		trainPUE:     core.TrainPUE,
		buildProfile: profile.BuildAt,
	}
	g := s.newGeneration(1, ds)
	s.gen.Store(g)
	s.metrics.generationID.Store(g.id)
	context.AfterFunc(ctx, func() { s.Close() })
	return s
}

// Close stops the server: batcher dispatchers exit, blocked requests
// return errClosed, in-flight engine dispatch is canceled, and new
// requests fail fast before paying for profiling or training (an
// already-running model fit completes, as an in-flight HTTP request
// would). Idempotent.
func (s *Server) Close() error {
	s.closeOnce.Do(func() {
		s.cancel()
		close(s.stop)
		// Stop the current generation's batchers. Retired generations
		// already stopped theirs; a reload racing with this close re-checks
		// closedErr after its swap and stops the new generation itself.
		s.gen.Load().closeStop()
	})
	return nil
}

// closedErr fails fast once the server is closed, so post-shutdown
// requests cannot start expensive cold fills.
func (s *Server) closedErr() error {
	select {
	case <-s.stop:
		return errClosed
	default:
		return nil
	}
}

// Handler returns the server's HTTP API.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/predict", s.counted("/v1/predict", s.handlePredict))
	mux.HandleFunc("/v1/workloads", s.counted("/v1/workloads", s.handleWorkloads))
	mux.HandleFunc("/v1/models", s.counted("/v1/models", s.handleModels))
	mux.HandleFunc("/v1/reload", s.counted("/v1/reload", s.handleReload))
	mux.HandleFunc("/healthz", s.counted("/healthz", s.handleHealthz))
	mux.HandleFunc("/metrics", s.counted("/metrics", s.handleMetrics))
	return mux
}

// statusRecorder captures the response code for request accounting.
type statusRecorder struct {
	http.ResponseWriter
	code int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.code = code
	r.ResponseWriter.WriteHeader(code)
}

// counted wraps a handler with per-(endpoint, code) request counting.
func (s *Server) counted(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		rec := &statusRecorder{ResponseWriter: w, code: http.StatusOK}
		h(rec, r)
		s.metrics.countRequest(endpoint, rec.code)
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// PredictRequest is one prediction query.
type PredictRequest struct {
	Workload string  `json:"workload"`
	TREFP    float64 `json:"trefp"`
	TempC    float64 `json:"temp_c"`
	// VDD defaults to the campaign voltage (dram.MinVDD) when zero.
	VDD float64 `json:"vdd,omitempty"`
	// Model defaults to the paper's published KNN variant.
	Model string `json:"model,omitempty"`
	// InputSet (1–3) selects the feature set for both targets; zero means
	// the paper's best per target (set 1 for WER, set 2 for PUE).
	InputSet int `json:"input_set,omitempty"`
}

// PredictResponse is the answer to one query.
type PredictResponse struct {
	Workload  string    `json:"workload"`
	TREFP     float64   `json:"trefp"`
	TempC     float64   `json:"temp_c"`
	VDD       float64   `json:"vdd"`
	Model     string    `json:"model"`
	WERMean   float64   `json:"wer_mean"`
	WERByRank []float64 `json:"wer_by_rank"`
	PUE       float64   `json:"pue"`
	ElapsedMS float64   `json:"elapsed_ms"`
}

// predictBody accepts either a single query or a batch.
type predictBody struct {
	PredictRequest
	Queries []PredictRequest `json:"queries,omitempty"`
}

// resolved is a validated query bound to its feature vector and models.
type resolved struct {
	req    PredictRequest
	feats  []float64
	kind   core.ModelKind
	werSet core.InputSet
	pueSet core.InputSet
}

// resolve validates one query and resolves its workload profile on
// generation g. The int is the HTTP status for the error case.
func (s *Server) resolve(g *generation, req PredictRequest) (*resolved, int, error) {
	spec, err := workload.FindSpec(req.Workload)
	if err != nil {
		return nil, http.StatusNotFound, err
	}
	if req.TREFP <= 0 || math.IsNaN(req.TREFP) || math.IsInf(req.TREFP, 0) {
		return nil, http.StatusBadRequest, fmt.Errorf("serve: trefp %v out of range", req.TREFP)
	}
	if math.IsNaN(req.TempC) || math.IsInf(req.TempC, 0) {
		return nil, http.StatusBadRequest, fmt.Errorf("serve: temp_c %v out of range", req.TempC)
	}
	if req.VDD == 0 {
		req.VDD = dram.MinVDD
	}
	if req.VDD < 0 || math.IsNaN(req.VDD) || math.IsInf(req.VDD, 0) {
		return nil, http.StatusBadRequest, fmt.Errorf("serve: vdd %v out of range", req.VDD)
	}
	if req.Model == "" {
		req.Model = string(core.ModelKNN)
	}
	kind := core.ModelKind(req.Model)
	valid := false
	for _, k := range core.ModelKinds() {
		if k == kind {
			valid = true
			break
		}
	}
	if !valid {
		return nil, http.StatusBadRequest, fmt.Errorf("serve: unknown model %q", req.Model)
	}
	werSet, pueSet := core.InputSet1, core.InputSet2
	switch req.InputSet {
	case 0:
	case 1, 2, 3:
		werSet = core.InputSet(req.InputSet)
		pueSet = core.InputSet(req.InputSet)
	default:
		return nil, http.StatusBadRequest, fmt.Errorf("serve: input_set %d out of range", req.InputSet)
	}
	prof, err := s.profileFor(g, spec)
	if err != nil {
		return nil, http.StatusInternalServerError, err
	}
	return &resolved{req: req, feats: prof.Features, kind: kind, werSet: werSet, pueSet: pueSet}, 0, nil
}

// predictOne answers one resolved query through generation g's
// micro-batchers.
func (s *Server) predictOne(g *generation, r *resolved) (*PredictResponse, error) {
	start := time.Now()
	we, err := s.werModel(g, r.kind, r.werSet)
	if err != nil {
		return nil, err
	}
	pe, err := s.pueModel(g, r.kind, r.pueSet)
	if err != nil {
		return nil, err
	}
	werQs := make([]core.WERQuery, dram.NumRanks)
	for rank := range werQs {
		werQs[rank] = core.WERQuery{
			Features: r.feats, TREFP: r.req.TREFP, VDD: r.req.VDD,
			TempC: r.req.TempC, Rank: rank,
		}
	}
	// The two targets are independent: submit both batchers at once so a
	// query pays one dispatch cycle, not two, and a wave of requests lands
	// in both batchers in the same flush.
	var (
		pue    []float64
		pueErr error
		done   = make(chan struct{})
	)
	go func() {
		defer close(done)
		pue, pueErr = pe.batch.do([]core.PUEQuery{{
			Features: r.feats, TREFP: r.req.TREFP, VDD: r.req.VDD, TempC: r.req.TempC,
		}})
	}()
	byRank, err := we.batch.do(werQs)
	<-done
	if err != nil {
		return nil, err
	}
	if pueErr != nil {
		return nil, pueErr
	}
	mean := 0.0
	for _, v := range byRank {
		mean += v
	}
	mean /= float64(len(byRank))
	return &PredictResponse{
		Workload:  r.req.Workload,
		TREFP:     r.req.TREFP,
		TempC:     r.req.TempC,
		VDD:       r.req.VDD,
		Model:     string(r.kind),
		WERMean:   mean,
		WERByRank: byRank,
		PUE:       pue[0],
		ElapsedMS: float64(time.Since(start).Microseconds()) / 1e3,
	}, nil
}

func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeError(w, http.StatusMethodNotAllowed, "serve: %s not allowed", r.Method)
		return
	}
	start := time.Now()
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	var body predictBody
	if err := dec.Decode(&body); err != nil {
		writeError(w, http.StatusBadRequest, "serve: malformed body: %v", err)
		return
	}
	defer func() { s.metrics.predictSeconds.observe(time.Since(start)) }()

	// Pin the serving generation for the whole request: a reload swapping
	// in a new dataset mid-request must not mix state, and this reference
	// keeps the generation's batchers alive until we release it.
	g, err := s.acquire()
	if err != nil {
		writeError(w, http.StatusServiceUnavailable, "serve: %v", err)
		return
	}
	defer g.release()

	// Batch body: resolve every query up front (all-or-nothing, so the
	// response always has one result per query), then fan the predictions
	// out concurrently — their batcher submissions coalesce.
	if body.Queries != nil {
		if len(body.Queries) == 0 {
			writeError(w, http.StatusBadRequest, "serve: empty batch")
			return
		}
		if len(body.Queries) > maxBatchBody {
			writeError(w, http.StatusBadRequest, "serve: batch of %d exceeds %d", len(body.Queries), maxBatchBody)
			return
		}
		// Resolve concurrently: a cold batch naming several unprofiled
		// workloads pays for the slowest profile build, not their sum.
		type resolveOut struct {
			r    *resolved
			code int
			err  error
		}
		outs, err := engine.Map(len(body.Queries), func(i int) (resolveOut, error) {
			r, code, err := s.resolve(g, body.Queries[i])
			return resolveOut{r, code, err}, nil
		}, engine.Options{Workers: s.workers, Context: s.ctx})
		if err != nil {
			// Only server shutdown cancels the resolve fan-out (per-query
			// failures travel inside resolveOut); outs may hold skipped
			// zero-valued entries, so bail before touching them.
			writeError(w, http.StatusServiceUnavailable, "serve: %v", err)
			return
		}
		rs := make([]*resolved, len(body.Queries))
		for i, o := range outs {
			if o.err != nil {
				writeError(w, o.code, "serve: query %d: %v", i, o.err)
				return
			}
			rs[i] = o.r
		}
		results := make([]*PredictResponse, len(rs))
		errs := make([]error, len(rs))
		var wg sync.WaitGroup
		for i, rq := range rs {
			wg.Add(1)
			go func(i int, rq *resolved) {
				defer wg.Done()
				results[i], errs[i] = s.predictOne(g, rq)
			}(i, rq)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				writeError(w, http.StatusInternalServerError, "serve: %v", err)
				return
			}
		}
		writeJSON(w, http.StatusOK, map[string]any{"results": results})
		return
	}

	rq, code, err := s.resolve(g, body.PredictRequest)
	if err != nil {
		writeError(w, code, "serve: %v", err)
		return
	}
	resp, err := s.predictOne(g, rq)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "serve: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleReload reloads the server's configured artifact. The endpoint
// deliberately takes no path: letting an unauthenticated HTTP client name
// an arbitrary server-side file would allow filesystem probing and model
// substitution. Operators choose the artifact at startup (-load); the
// request body must be empty or an empty JSON object.
func (s *Server) handleReload(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeError(w, http.StatusMethodNotAllowed, "serve: %s not allowed", r.Method)
		return
	}
	var body struct{}
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&body); err != nil && err != io.EOF {
		writeError(w, http.StatusBadRequest, "serve: malformed body: %v", err)
		return
	}
	if s.artifactPath == "" {
		writeError(w, http.StatusBadRequest,
			"serve: not artifact-backed: the server was started without -load")
		return
	}
	res, err := s.Reload(s.artifactPath)
	if err != nil {
		code := http.StatusInternalServerError
		if errors.Is(err, errClosed) {
			code = http.StatusServiceUnavailable
		}
		writeError(w, code, "serve: reload: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

func (s *Server) handleWorkloads(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		writeError(w, http.StatusMethodNotAllowed, "serve: %s not allowed", r.Method)
		return
	}
	type entry struct {
		Label    string `json:"label"`
		Threads  int    `json:"threads"`
		Profiled bool   `json:"profiled"`
		InCorpus bool   `json:"in_corpus"`
	}
	g := s.gen.Load()
	profiled := s.profiledLabels(g)
	inCorpus := map[string]bool{}
	for _, l := range g.ds.Workloads() {
		inCorpus[l] = true
	}
	var out []entry
	for _, spec := range workload.ExtendedSet() {
		out = append(out, entry{spec.Label, spec.Threads, profiled[spec.Label], inCorpus[spec.Label]})
	}
	writeJSON(w, http.StatusOK, map[string]any{"workloads": out})
}

func (s *Server) handleModels(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		writeError(w, http.StatusMethodNotAllowed, "serve: %s not allowed", r.Method)
		return
	}
	kinds := core.ModelKinds()
	sets := make([]int, 0, 3)
	for _, set := range core.InputSets() {
		sets = append(sets, int(set))
	}
	trained := s.trained(s.gen.Load())
	if trained == nil {
		trained = []trainedModel{}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"kinds":      kinds,
		"input_sets": sets,
		"trained":    trained,
	})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		writeError(w, http.StatusMethodNotAllowed, "serve: %s not allowed", r.Method)
		return
	}
	g := s.gen.Load()
	writeJSON(w, http.StatusOK, map[string]any{
		"status":         "ok",
		"uptime_seconds": time.Since(s.start).Seconds(),
		"generation":     g.id,
		"fingerprint":    g.fp,
		"wer_rows":       len(g.ds.WER),
		"pue_rows":       len(g.ds.PUE),
		"workloads":      len(g.ds.Workloads()),
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		writeError(w, http.StatusMethodNotAllowed, "serve: %s not allowed", r.Method)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.metrics.render(w)
}
