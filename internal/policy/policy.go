// Package policy closes the loop the rest of this repository opens: it
// consumes the serving layer's predictions (WER, crash probability,
// ue_risk) and turns them into mitigation actions on the simulated fleet
// — per-server refresh retuning, rank offlining with capacity cost, job
// migration with placement cost. "Reinforcement Learning-based Adaptive
// Mitigation of Uncorrected DRAM Errors in the Field" (PAPERS.md) shows
// prediction-driven mitigation beating static policies on avoided-crash
// cost; this package reproduces that comparison shape on the paper's
// TREFP operating-point model with three built-in policies (static,
// threshold, risk-budget) and a deterministic evaluation harness.
//
// The harness (Evaluate) is the point: it runs a policy against a primary
// fleet while an un-actuated shadow fleet replays the identical random
// draws alongside (the fleet actuation path guarantees RNG lockstep), so
// the scored Ledger — expected UEs avoided, refresh-energy overhead,
// offlined capacity, migration burden — is an exact same-seed A/B
// difference with zero sampling variance, bit-identical at any worker
// count. Policies are compared on byte-equal ledgers, not overlapping
// confidence intervals.
package policy

import (
	"fmt"
	"sort"

	"repro/internal/core"
)

// Prediction is what the serving layer answered for one query: the two
// regression targets plus the ue_risk classifier score when the artifact
// serves it (HasRisk distinguishes "risk 0" from "no classifier").
type Prediction struct {
	WER float64
	PUE float64
	// Risk is the ue_risk score in [0, 1]; valid only when HasRisk.
	Risk    float64
	HasRisk bool
}

// Observation is one server's state as the policy loop sees it at one
// tick: the operating point, the actuation already in force, the CE
// telemetry summary and the model's predictions. Deliberately absent is
// the simulator's ground truth — a policy sees exactly what a real fleet
// controller would.
type Observation struct {
	// Server is the fleet index.
	Server int
	// Workload is the label the server runs this tick.
	Workload string
	// TREFP is the effective refresh period; DeployedTREFP the original
	// policy (they differ when a retune is in force).
	TREFP         float64
	DeployedTREFP float64
	// TempC is the DIMM temperature this tick.
	TempC float64
	// OfflineRanks counts ranks already removed from service; Migrated is
	// the label the server was migrated to ("" when on schedule).
	OfflineRanks int
	Migrated     string
	// CECount is the number of correctable-error events in this tick's
	// telemetry window; BusiestRank the rank carrying the most of them
	// (-1 when the window is empty) — the spatial signal an offlining
	// policy acts on.
	CECount     int
	BusiestRank int
	// Pred is the serving layer's answer for this query.
	Pred Prediction
}

// ActionKind enumerates the mitigation levers.
type ActionKind string

const (
	// Retune sets the server's refresh period to Action.TREFP.
	Retune ActionKind = "retune"
	// Offline removes Action.Rank from service.
	Offline ActionKind = "offline"
	// Migrate replaces the server's workload with Action.Workload; empty
	// means "the coolest label in the fleet catalog" (resolved by the
	// harness, so policies stay catalog-agnostic).
	Migrate ActionKind = "migrate"
)

// Action is one mitigation decision. Actions issued at tick t take effect
// from tick t+1 — the policy loop observes, then actuates.
type Action struct {
	Server   int
	Kind     ActionKind
	TREFP    float64 // Retune
	Rank     int     // Offline
	Workload string  // Migrate ("" = coolest)
}

// Policy maps one tick's fleet observations to mitigation actions.
// Implementations must be deterministic pure functions of the observation
// sequence they have seen — the harness's bit-exactness contract extends
// through the policy.
type Policy interface {
	// Name identifies the policy in ledgers and reports.
	Name() string
	// Decide returns the actions to apply after this tick. The
	// observation slice is ordered by server index.
	Decide(tick int, obs []Observation) []Action
}

// Static is the do-nothing baseline: the fleet runs its deployed
// operating points untouched. Its ledger is exactly zero on every axis —
// the floor an adaptive policy must dominate.
type Static struct{}

// Name implements Policy.
func (Static) Name() string { return "static" }

// Decide implements Policy: no actions, ever.
func (Static) Decide(int, []Observation) []Action { return nil }

// Threshold is the classic reactive policy: when the ue_risk score
// crosses Risk and the CE window locates a culprit rank, offline that
// rank; when the predicted crash probability crosses PUE, retune the
// server to the tightest refresh period on the paper's campaign grid.
// Each server is mitigated at most once per lever (offlining is one-shot;
// a retune is never re-issued) so the action stream stays sparse.
type Threshold struct {
	// Risk is the ue_risk score above which the culprit rank is offlined
	// (default DefaultRiskThreshold).
	Risk float64
	// PUE is the predicted crash probability above which the server is
	// retuned to the grid-minimum TREFP (default DefaultPUEThreshold).
	PUE float64
}

// Defaults for the threshold policy's zero fields.
const (
	DefaultRiskThreshold = 0.5
	DefaultPUEThreshold  = 0.5
)

// Name implements Policy.
func (Threshold) Name() string { return "threshold" }

// Decide implements Policy.
func (p Threshold) Decide(_ int, obs []Observation) []Action {
	risk, pue := p.Risk, p.PUE
	if risk == 0 {
		risk = DefaultRiskThreshold
	}
	if pue == 0 {
		pue = DefaultPUEThreshold
	}
	var acts []Action
	for _, o := range obs {
		if o.Pred.HasRisk && o.Pred.Risk >= risk && o.BusiestRank >= 0 && o.OfflineRanks == 0 {
			acts = append(acts, Action{Server: o.Server, Kind: Offline, Rank: o.BusiestRank})
		}
		if o.Pred.PUE >= pue && o.TREFP > minGridTREFP() {
			acts = append(acts, Action{Server: o.Server, Kind: Retune, TREFP: minGridTREFP()})
		}
	}
	return acts
}

// RiskBudget is the budgeted adaptive policy: every tick it ranks the
// fleet by ue_risk and spends a bounded capacity budget on the riskiest
// servers first — offlining culprit ranks while under budget, then
// falling back to the cheaper levers (grid-minimum retune plus migration
// to the coolest catalog workload) for at-risk servers the budget cannot
// cover. The shape mirrors the RL paper's cost-bounded mitigation agent
// with the learning replaced by an explicit priority rule.
type RiskBudget struct {
	// Capacity is the maximum fraction of the fleet's ranks that may be
	// offline at once (default DefaultCapacityBudget).
	Capacity float64
	// Risk is the score above which a server is worth spending on
	// (default DefaultBudgetRisk).
	Risk float64
}

// Defaults for the risk-budget policy's zero fields.
const (
	DefaultCapacityBudget = 0.05
	DefaultBudgetRisk     = 0.4
)

// Name implements Policy.
func (RiskBudget) Name() string { return "risk-budget" }

// Decide implements Policy.
func (p RiskBudget) Decide(_ int, obs []Observation) []Action {
	capBudget, risk := p.Capacity, p.Risk
	if capBudget == 0 {
		capBudget = DefaultCapacityBudget
	}
	if risk == 0 {
		risk = DefaultBudgetRisk
	}
	// Candidates: at-risk servers with a locatable culprit, riskiest
	// first; ties break on server index so the ordering is total.
	var cand []Observation
	offline := 0
	for _, o := range obs {
		offline += o.OfflineRanks
		if o.Pred.HasRisk && o.Pred.Risk >= risk {
			cand = append(cand, o)
		}
	}
	sort.SliceStable(cand, func(i, j int) bool {
		if cand[i].Pred.Risk != cand[j].Pred.Risk {
			return cand[i].Pred.Risk > cand[j].Pred.Risk
		}
		return cand[i].Server < cand[j].Server
	})
	totalRanks := len(obs) * ranksPerServer
	var acts []Action
	for _, o := range cand {
		canOffline := o.BusiestRank >= 0 && o.OfflineRanks == 0 &&
			totalRanks > 0 && float64(offline+1)/float64(totalRanks) <= capBudget
		if canOffline {
			acts = append(acts, Action{Server: o.Server, Kind: Offline, Rank: o.BusiestRank})
			offline++
			continue
		}
		// Budget exhausted (or no culprit rank): fall back to the cheap
		// levers — tighten refresh and move the job somewhere gentle.
		if o.TREFP > minGridTREFP() {
			acts = append(acts, Action{Server: o.Server, Kind: Retune, TREFP: minGridTREFP()})
		}
		if o.Migrated == "" {
			acts = append(acts, Action{Server: o.Server, Kind: Migrate})
		}
	}
	return acts
}

// minGridTREFP is the tightest refresh period on the paper's campaign
// grid — the safest operating point a retune can reach.
func minGridTREFP() float64 {
	min := core.WERTrefps[0]
	for _, t := range core.WERTrefps[1:] {
		if t < min {
			min = t
		}
	}
	return min
}

// Names lists the built-in policies in the order ByName accepts them.
func Names() []string { return []string{"static", "threshold", "risk-budget"} }

// ByName returns a built-in policy with default parameters.
func ByName(name string) (Policy, error) {
	switch name {
	case "static":
		return Static{}, nil
	case "threshold":
		return Threshold{}, nil
	case "risk-budget":
		return RiskBudget{}, nil
	}
	return nil, fmt.Errorf("policy: unknown policy %q (have static, threshold, risk-budget)", name)
}
