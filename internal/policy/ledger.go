package policy

import (
	"fmt"
	"hash/fnv"
	"math"
	"strings"
)

// Cost weights combining the ledger axes into one net score. The scale
// follows the RL-mitigation paper's cost model: a crash-grade event is
// orders of magnitude more expensive than the energy or capacity spent
// avoiding it, offlined capacity costs more than extra refresh energy,
// and moving a job is the cheapest lever of all. Weights are per
// server-tick of the respective quantity.
const (
	// UECost prices one unit of avoided expected uncorrectable errors.
	UECost = 100.0
	// CrashCost prices one unit of avoided expected crash probability.
	CrashCost = 25.0
	// EnergyCost prices one server-tick of fractional refresh-rate
	// overhead (deployed/effective − 1).
	EnergyCost = 1.0
	// CapacityCost prices one server-tick of fully-offlined capacity.
	CapacityCost = 0.5
	// MigrationCost prices one migrated server-tick.
	MigrationCost = 0.05
)

// Ledger is the scored outcome of one policy evaluation: the exact
// same-seed difference between the actuated primary fleet and the
// un-actuated shadow fleet, plus the resources the policy spent. Every
// field is accumulated in fixed tick-then-server order, so two runs with
// equal (Config, policy, predictor) produce byte-identical ledgers.
type Ledger struct {
	// Policy is the evaluated policy's name; Seed and Ticks/Servers echo
	// the run configuration.
	Policy  string
	Seed    uint64
	Ticks   int
	Servers int

	// AvoidedUE is Σ(shadow TruthUE − primary TruthUE) over all
	// server-ticks: the expected uncorrectable errors the policy's
	// actions removed from the run. AvoidedCrash is the same sum over
	// the crash probability (TruthPUE).
	AvoidedUE    float64
	AvoidedCrash float64

	// RefreshOverhead is Σ max(0, deployed/effective − 1) per
	// server-tick: the extra refresh energy bought by retuning.
	RefreshOverhead float64
	// OfflineCapacity is Σ offlinedRanks/ranksPerServer per server-tick:
	// the capacity the fleet ran without.
	OfflineCapacity float64
	// MigratedTicks counts server-ticks spent on a migrated workload.
	MigratedTicks int

	// Retunes, Offlines and Migrations count the actions that actually
	// changed state (idempotent re-issues are free).
	Retunes    int
	Offlines   int
	Migrations int

	// PredictCalls counts predictor invocations; PredictErrors the ones
	// that failed (failed queries contribute a zero Prediction, so a
	// flaky live backend degrades the policy's vision, never the
	// harness's determinism contract over its own arithmetic).
	PredictCalls  int
	PredictErrors int
}

// Net combines the ledger into one score: value of harm avoided minus
// cost of resources spent. The static policy nets exactly zero by
// construction; an adaptive policy dominates it when Net > 0 with
// AvoidedUE > 0.
func (l *Ledger) Net() float64 {
	return UECost*l.AvoidedUE +
		CrashCost*l.AvoidedCrash -
		EnergyCost*l.RefreshOverhead -
		CapacityCost*l.OfflineCapacity -
		MigrationCost*float64(l.MigratedTicks)
}

// Render formats the ledger as a fixed-layout report block. The output is
// part of the determinism contract: same evaluation, same bytes (%.9g
// keeps the floats stable and diffable).
func (l *Ledger) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "mitigation ledger: policy=%s seed=%d ticks=%d servers=%d\n",
		l.Policy, l.Seed, l.Ticks, l.Servers)
	fmt.Fprintf(&b, "  avoided_ue        %.9g\n", l.AvoidedUE)
	fmt.Fprintf(&b, "  avoided_crash     %.9g\n", l.AvoidedCrash)
	fmt.Fprintf(&b, "  refresh_overhead  %.9g\n", l.RefreshOverhead)
	fmt.Fprintf(&b, "  offline_capacity  %.9g\n", l.OfflineCapacity)
	fmt.Fprintf(&b, "  migrated_ticks    %d\n", l.MigratedTicks)
	fmt.Fprintf(&b, "  actions           retune=%d offline=%d migrate=%d\n",
		l.Retunes, l.Offlines, l.Migrations)
	fmt.Fprintf(&b, "  predict           calls=%d errors=%d\n", l.PredictCalls, l.PredictErrors)
	fmt.Fprintf(&b, "  net               %.9g\n", l.Net())
	fmt.Fprintf(&b, "  checksum          %016x\n", l.Checksum())
	return b.String()
}

// Checksum is an FNV-1a hash over the ledger's canonical encoding — the
// one-line fingerprint replay tests compare.
func (l *Ledger) Checksum() uint64 {
	h := fnv.New64a()
	put := func(v uint64) {
		var buf [8]byte
		for i := 0; i < 8; i++ {
			buf[i] = byte(v >> (8 * i))
		}
		h.Write(buf[:])
	}
	h.Write([]byte(l.Policy))
	put(l.Seed)
	put(uint64(l.Ticks))
	put(uint64(l.Servers))
	put(math.Float64bits(l.AvoidedUE))
	put(math.Float64bits(l.AvoidedCrash))
	put(math.Float64bits(l.RefreshOverhead))
	put(math.Float64bits(l.OfflineCapacity))
	put(uint64(l.MigratedTicks))
	put(uint64(l.Retunes))
	put(uint64(l.Offlines))
	put(uint64(l.Migrations))
	put(uint64(l.PredictCalls))
	put(uint64(l.PredictErrors))
	return h.Sum64()
}
