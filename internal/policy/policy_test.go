package policy

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/fleet"
	"repro/internal/serve"
)

func TestByName(t *testing.T) {
	for _, name := range Names() {
		p, err := ByName(name)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		if p.Name() != name {
			t.Fatalf("ByName(%q).Name() = %q", name, p.Name())
		}
	}
	if _, err := ByName("doom"); err == nil {
		t.Fatal("unknown policy accepted")
	}
}

func TestStaticLedgerIsZero(t *testing.T) {
	led, err := Evaluate(EvalConfig{Fleet: fleet.Config{Servers: 8, Seed: 3}, Ticks: 8}, Static{})
	if err != nil {
		t.Fatal(err)
	}
	if led.AvoidedUE != 0 || led.AvoidedCrash != 0 || led.RefreshOverhead != 0 ||
		led.OfflineCapacity != 0 || led.MigratedTicks != 0 ||
		led.Retunes != 0 || led.Offlines != 0 || led.Migrations != 0 {
		t.Fatalf("static ledger not zero:\n%s", led.Render())
	}
	if led.Net() != 0 {
		t.Fatalf("static Net() = %g, want exactly 0", led.Net())
	}
	if led.PredictCalls != 8*8 {
		t.Fatalf("PredictCalls = %d, want 64", led.PredictCalls)
	}
}

// TestPolicyEvaluateDeterminism is the acceptance gate of the harness:
// the ledger — down to its rendered bytes — is identical across worker
// counts and across two same-seed runs, for every built-in policy.
func TestPolicyEvaluateDeterminism(t *testing.T) {
	for _, name := range Names() {
		pol, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		base := EvalConfig{Fleet: fleet.Config{Servers: 12, Seed: 7}, Ticks: 16}

		w1 := base
		w1.Workers = 1
		a, err := Evaluate(w1, pol)
		if err != nil {
			t.Fatal(err)
		}
		w4 := base
		w4.Workers = 4
		b, err := Evaluate(w4, pol)
		if err != nil {
			t.Fatal(err)
		}
		if a.Render() != b.Render() {
			t.Fatalf("%s: workers=1 vs workers=4 ledgers differ:\n%s\nvs\n%s",
				name, a.Render(), b.Render())
		}
		c, err := Evaluate(w4, pol)
		if err != nil {
			t.Fatal(err)
		}
		if b.Render() != c.Render() || b.Checksum() != c.Checksum() {
			t.Fatalf("%s: two same-seed runs differ:\n%s\nvs\n%s",
				name, b.Render(), c.Render())
		}
	}
}

// TestAdaptiveDominatesStatic: at equal seed, both adaptive policies must
// avoid real UE exposure and come out ahead on the net score, where the
// static baseline sits at exactly zero.
func TestAdaptiveDominatesStatic(t *testing.T) {
	cfg := EvalConfig{Fleet: fleet.Config{Servers: 16, Seed: 1}, Ticks: 24}
	static, err := Evaluate(cfg, Static{})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"threshold", "risk-budget"} {
		pol, _ := ByName(name)
		led, err := Evaluate(cfg, pol)
		if err != nil {
			t.Fatal(err)
		}
		if led.AvoidedUE <= static.AvoidedUE {
			t.Fatalf("%s avoided %g expected UEs, static %g — no domination:\n%s",
				name, led.AvoidedUE, static.AvoidedUE, led.Render())
		}
		if led.Net() <= static.Net() {
			t.Fatalf("%s Net() = %g <= static %g:\n%s", name, led.Net(), static.Net(), led.Render())
		}
		if led.Offlines == 0 {
			t.Fatalf("%s never offlined a rank:\n%s", name, led.Render())
		}
	}
}

func TestEvaluateRejectsBadConfig(t *testing.T) {
	if _, err := Evaluate(EvalConfig{Ticks: -1}, Static{}); err == nil {
		t.Fatal("negative ticks accepted")
	}
	if _, err := Evaluate(EvalConfig{Fleet: fleet.Config{Servers: -1}}, Static{}); err == nil {
		t.Fatal("invalid fleet config accepted")
	}
}

// badPolicy issues an out-of-range action to prove the harness fails
// loudly on policy bugs instead of silently skipping them.
type badPolicy struct{}

func (badPolicy) Name() string { return "bad" }
func (badPolicy) Decide(int, []Observation) []Action {
	return []Action{{Server: 10_000, Kind: Offline, Rank: 0}}
}

func TestEvaluateRejectsInvalidAction(t *testing.T) {
	_, err := Evaluate(EvalConfig{Fleet: fleet.Config{Servers: 2, Seed: 1}, Ticks: 2}, badPolicy{})
	if err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Fatalf("invalid action error = %v", err)
	}
}

// TestHTTPPredict exercises the live-loop predictor against a stub
// /v2/predict endpoint: target extraction, HasRisk detection, and error
// surfaces for non-200 responses.
func TestHTTPPredict(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("/v2/predict", func(w http.ResponseWriter, r *http.Request) {
		var req serve.PredictRequestV2
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		resp := serve.PredictResponseV2{Fingerprint: "stub"}
		resp.Predictions = map[string]serve.TargetResultV2{
			"wer": {Value: 1e-6},
			"pue": {Value: 0.25},
		}
		if len(req.CE) > 0 {
			resp.Predictions["ue_risk"] = serve.TargetResultV2{Value: 0.9}
		}
		json.NewEncoder(w).Encode(resp)
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()

	predict := HTTPPredict(srv.URL, "", nil, 0)
	f, err := fleet.New(fleet.Config{Servers: 16, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	qs := f.Tick()
	sawRisk, sawNoRisk := false, false
	for i := range qs {
		p, err := predict(&qs[i])
		if err != nil {
			t.Fatal(err)
		}
		if p.WER != 1e-6 || p.PUE != 0.25 {
			t.Fatalf("prediction = %+v", p)
		}
		if p.HasRisk {
			if p.Risk != 0.9 {
				t.Fatalf("risk = %v", p.Risk)
			}
			sawRisk = true
		} else {
			sawNoRisk = true
		}
	}
	if !sawRisk || !sawNoRisk {
		t.Fatalf("stream did not cover both risk cases (risk=%v, none=%v)", sawRisk, sawNoRisk)
	}

	broken := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "down", http.StatusServiceUnavailable)
	}))
	defer broken.Close()
	if _, err := HTTPPredict(broken.URL, "", nil, 0)(&qs[0]); err == nil {
		t.Fatal("503 response did not error")
	}
}

// TestEvaluateSurvivesPredictErrors: a predictor that fails on part of
// the stream is counted, not fatal, and the count is deterministic.
func TestEvaluateSurvivesPredictErrors(t *testing.T) {
	flaky := func(q *fleet.Query) (Prediction, error) {
		if q.Server%3 == 0 {
			return Prediction{}, errTest
		}
		return Prediction{WER: q.TruthWER, PUE: q.TruthPUE, Risk: q.TruthUE, HasRisk: true}, nil
	}
	cfg := EvalConfig{Fleet: fleet.Config{Servers: 9, Seed: 5}, Ticks: 4, Predict: flaky}
	led, err := Evaluate(cfg, Threshold{})
	if err != nil {
		t.Fatal(err)
	}
	if led.PredictErrors != 3*4 {
		t.Fatalf("PredictErrors = %d, want 12", led.PredictErrors)
	}
	again, err := Evaluate(cfg, Threshold{})
	if err != nil {
		t.Fatal(err)
	}
	if led.Render() != again.Render() {
		t.Fatal("flaky predictor broke ledger determinism")
	}
}

var errTest = &testErr{}

type testErr struct{}

func (*testErr) Error() string { return "test error" }
