package policy

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"repro/internal/core"
	"repro/internal/dram"
	"repro/internal/engine"
	"repro/internal/fleet"
	"repro/internal/serve"
)

// ranksPerServer is the capacity denominator: offlining one rank costs
// 1/ranksPerServer of a server.
const ranksPerServer = dram.NumRanks

// PredictFn answers one fleet query — the seam between the harness and
// the serving layer. Oracle answers from the simulator's ground truth
// (hermetic evaluation); HTTPPredict asks a live dramserve (the closed
// loop cmd/dramfleet -policy drives).
type PredictFn func(q *fleet.Query) (Prediction, error)

// Oracle is the perfect-information predictor: it answers every query
// with the simulator's own ground truth. It bounds what any model could
// achieve and keeps the evaluation harness hermetic — no artifact, no
// server, no model error folded into the policy comparison.
func Oracle() PredictFn {
	return func(q *fleet.Query) (Prediction, error) {
		return Prediction{WER: q.TruthWER, PUE: q.TruthPUE, Risk: q.TruthUE, HasRisk: true}, nil
	}
}

// HTTPPredict answers queries from a live dramserve /v2/predict endpoint.
// No explicit targets are requested, so the server's default selection
// answers: wer and pue always, ue_risk joining when the artifact carries
// the classifier and the query carries CE telemetry — HasRisk records
// whether it did. client may be nil (a shared client with a sane timeout
// is used); timeout bounds each request, 0 meaning the fleet driver's
// default.
func HTTPPredict(baseURL, model string, client *http.Client, timeout time.Duration) PredictFn {
	if client == nil {
		client = &http.Client{Timeout: fleet.DefaultRequestTimeout}
	}
	if timeout == 0 {
		timeout = fleet.DefaultRequestTimeout
	}
	return func(q *fleet.Query) (Prediction, error) {
		ctx, cancel := context.WithTimeout(context.Background(), timeout)
		defer cancel()
		body, err := json.Marshal(serve.PredictRequestV2{
			Workload: q.Workload,
			TREFP:    q.TREFP,
			TempC:    q.TempC,
			VDD:      q.VDD,
			Model:    model,
			CE:       q.CE,
		})
		if err != nil {
			return Prediction{}, err
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodPost,
			baseURL+"/v2/predict", bytes.NewReader(body))
		if err != nil {
			return Prediction{}, err
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := client.Do(req)
		if err != nil {
			return Prediction{}, err
		}
		defer resp.Body.Close()
		data, err := io.ReadAll(resp.Body)
		if err != nil {
			return Prediction{}, err
		}
		if resp.StatusCode != http.StatusOK {
			return Prediction{}, fmt.Errorf("policy: predict server %d: %s: %s",
				q.Server, resp.Status, data)
		}
		var out serve.PredictResponseV2
		if err := json.Unmarshal(data, &out); err != nil {
			return Prediction{}, err
		}
		var p Prediction
		if r, ok := out.Predictions[string(core.TargetWER)]; ok {
			p.WER = r.Value
		}
		if r, ok := out.Predictions[string(core.TargetPUE)]; ok {
			p.PUE = r.Value
		}
		if r, ok := out.Predictions[string(core.TargetUERisk)]; ok {
			p.Risk, p.HasRisk = r.Value, true
		}
		return p, nil
	}
}

// EvalConfig configures one policy evaluation.
type EvalConfig struct {
	// Fleet is the simulated fleet; its Seed keys the whole run.
	Fleet fleet.Config
	// Ticks is the number of simulation steps (default DefaultTicks).
	Ticks int
	// Workers bounds the concurrent predictor calls per tick (0 means
	// GOMAXPROCS). The ledger is worker-count invariant: predictions fan
	// out through engine.Map, which returns results in query order, and
	// all scoring arithmetic runs sequentially.
	Workers int
	// Predict answers the per-query predictions (default Oracle).
	Predict PredictFn
	// Context cancels a run between ticks and between predictor calls.
	Context context.Context
}

// DefaultTicks is the evaluation length when EvalConfig.Ticks is zero:
// four workload-rotation shifts at the default fleet configuration.
const DefaultTicks = 32

// predOut carries one predictor answer through engine.Map without
// aborting the fan-out on per-query failure.
type predOut struct {
	p   Prediction
	err error
}

// Evaluate runs pol in closed loop over a simulated fleet and scores it
// against an un-actuated shadow fleet replaying the identical random
// draws (the actuation path's RNG-lockstep contract). Per tick: both
// fleets emit their queries, the predictor answers the primary's (fanned
// out over Workers, results in query order), the scorer accumulates the
// shadow-minus-primary truth deltas and the resource costs, and the
// policy's actions are applied to take effect next tick. The returned
// Ledger is a pure function of (cfg.Fleet, pol, predictor behavior) —
// bit-identical across runs and worker counts.
func Evaluate(cfg EvalConfig, pol Policy) (*Ledger, error) {
	if cfg.Ticks == 0 {
		cfg.Ticks = DefaultTicks
	}
	if cfg.Ticks < 0 {
		return nil, fmt.Errorf("policy: %d ticks", cfg.Ticks)
	}
	predict := cfg.Predict
	if predict == nil {
		predict = Oracle()
	}
	ctx := cfg.Context
	if ctx == nil {
		ctx = context.Background()
	}
	primary, err := fleet.New(cfg.Fleet)
	if err != nil {
		return nil, err
	}
	shadow, err := fleet.New(cfg.Fleet)
	if err != nil {
		return nil, err
	}
	fcfg := primary.Config()
	cool := fleet.CoolestWorkload(fcfg.Workloads)

	led := &Ledger{
		Policy:  pol.Name(),
		Seed:    fcfg.Seed,
		Ticks:   cfg.Ticks,
		Servers: fcfg.Servers,
	}
	for tick := 0; tick < cfg.Ticks; tick++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		pq, sq := primary.Tick(), shadow.Tick()

		// Fan the predictor out; per-query failures degrade to a zero
		// Prediction rather than aborting the run (a live backend blip
		// blinds the policy for a tick, it does not invalidate the
		// ledger).
		preds, err := engine.Map(len(pq), func(i int) (predOut, error) {
			p, err := predict(&pq[i])
			return predOut{p: p, err: err}, nil
		}, engine.Options{Workers: cfg.Workers, Context: ctx})
		if err != nil {
			return nil, err
		}

		// Score this tick and assemble the policy's view, in server order.
		obs := make([]Observation, len(pq))
		for i := range pq {
			st, err := primary.State(pq[i].Server)
			if err != nil {
				return nil, err
			}
			led.AvoidedUE += sq[i].TruthUE - pq[i].TruthUE
			led.AvoidedCrash += sq[i].TruthPUE - pq[i].TruthPUE
			if st.TREFP < st.DeployedTREFP {
				led.RefreshOverhead += st.DeployedTREFP/st.TREFP - 1
			}
			led.OfflineCapacity += float64(st.OfflineRanks) / ranksPerServer
			if st.Migrated != "" {
				led.MigratedTicks++
			}
			led.PredictCalls++
			if preds[i].err != nil {
				led.PredictErrors++
			}
			obs[i] = Observation{
				Server:        pq[i].Server,
				Workload:      pq[i].Workload,
				TREFP:         st.TREFP,
				DeployedTREFP: st.DeployedTREFP,
				TempC:         pq[i].TempC,
				OfflineRanks:  st.OfflineRanks,
				Migrated:      st.Migrated,
				CECount:       len(pq[i].CE),
				BusiestRank:   busiestRank(&pq[i]),
				Pred:          preds[i].p,
			}
		}

		// Actuate for the next tick. An invalid action is a policy bug
		// and fails the evaluation loudly.
		for _, a := range pol.Decide(tick, obs) {
			changed, err := apply(primary, a, cool)
			if err != nil {
				return nil, fmt.Errorf("policy %s, tick %d: %w", pol.Name(), tick, err)
			}
			if !changed {
				continue
			}
			switch a.Kind {
			case Retune:
				led.Retunes++
			case Offline:
				led.Offlines++
			case Migrate:
				led.Migrations++
			}
		}
	}
	return led, nil
}

// apply executes one action on the fleet, resolving the empty migration
// label to the coolest catalog workload.
func apply(f *fleet.Fleet, a Action, cool string) (bool, error) {
	switch a.Kind {
	case Retune:
		return f.SetTREFP(a.Server, a.TREFP)
	case Offline:
		return f.OfflineRank(a.Server, a.Rank)
	case Migrate:
		label := a.Workload
		if label == "" {
			label = cool
		}
		return f.Migrate(a.Server, label)
	}
	return false, fmt.Errorf("unknown action kind %q", a.Kind)
}

// busiestRank extracts the offlining policies' spatial signal: the rank
// carrying the most CE events in the query's telemetry window, -1 when
// the window is empty.
func busiestRank(q *fleet.Query) int {
	if len(q.CE) == 0 {
		return -1
	}
	counts := make(map[int]int)
	best, bestN := -1, 0
	for _, e := range q.CE {
		counts[e.Rank]++
		if counts[e.Rank] > bestN || (counts[e.Rank] == bestN && e.Rank < best) {
			best, bestN = e.Rank, counts[e.Rank]
		}
	}
	return best
}
