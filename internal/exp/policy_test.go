package exp

import (
	"strings"
	"testing"
)

// TestPolicyStudyDomination pins the acceptance criterion of the
// mitigation work: at equal seed, at least one adaptive policy strictly
// dominates the static baseline on the avoided-UE-vs-overhead ledger,
// and the table says so.
func TestPolicyStudyDomination(t *testing.T) {
	tbl, err := PolicyStudy(16, 1, 24)
	if err != nil {
		t.Fatal(err)
	}
	out := tbl.Render()
	if !strings.Contains(out, "strictly dominates static") {
		t.Fatalf("no domination note in the policy study:\n%s", out)
	}
	for _, name := range []string{"static", "threshold", "risk-budget"} {
		if !strings.Contains(out, name) {
			t.Fatalf("policy %q missing from the study:\n%s", name, out)
		}
	}

	again, err := PolicyStudy(16, 1, 24)
	if err != nil {
		t.Fatal(err)
	}
	if again.Render() != out {
		t.Fatal("PolicyStudy is not a pure function of (servers, seed, ticks)")
	}
}
