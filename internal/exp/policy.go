package exp

import (
	"fmt"

	"repro/internal/fleet"
	"repro/internal/policy"
)

// PolicyStudy reproduces the static-vs-adaptive mitigation comparison
// from the RL-mitigation paper (PAPERS.md) on the simulated fleet: every
// built-in policy is evaluated by the same-seed harness (internal/policy)
// against its un-actuated shadow baseline, under the perfect-information
// oracle predictor, and the ledgers land side by side — expected UEs
// avoided versus the refresh-energy, capacity and migration overheads
// spent, collapsed into one net score. The static baseline nets exactly
// zero by construction; the table shows which adaptive policies beat it
// and by how much, with zero sampling variance (the comparison is
// byte-exact at equal seed). A pure function of (servers, seed, ticks).
func PolicyStudy(servers int, seed uint64, ticks int) (*Table, error) {
	tbl := &Table{
		ID:    "policy",
		Title: "Adaptive mitigation policy study (same-seed closed-loop A/B)",
		Header: []string{"policy", "avoided UE", "avoided crash", "refresh ovh",
			"offline cap", "migr ticks", "actions", "net"},
	}
	var static, bestAdaptive *policy.Ledger
	for _, name := range policy.Names() {
		pol, err := policy.ByName(name)
		if err != nil {
			return nil, err
		}
		led, err := policy.Evaluate(policy.EvalConfig{
			Fleet: fleet.Config{Servers: servers, Seed: seed},
			Ticks: ticks,
		}, pol)
		if err != nil {
			return nil, err
		}
		tbl.AddRow(name,
			fmt.Sprintf("%.3f", led.AvoidedUE),
			fmt.Sprintf("%.3f", led.AvoidedCrash),
			fmt.Sprintf("%.3f", led.RefreshOverhead),
			fmt.Sprintf("%.3f", led.OfflineCapacity),
			fmt.Sprintf("%d", led.MigratedTicks),
			fmt.Sprintf("%d/%d/%d", led.Retunes, led.Offlines, led.Migrations),
			fmt.Sprintf("%.2f", led.Net()),
		)
		tbl.AddNote("%s: ledger checksum %016x", name, led.Checksum())
		if name == "static" {
			static = led
		} else if led.AvoidedUE > 0 && (bestAdaptive == nil || led.Net() > bestAdaptive.Net()) {
			bestAdaptive = led
		}
	}
	if static != nil && bestAdaptive != nil &&
		bestAdaptive.AvoidedUE > static.AvoidedUE && bestAdaptive.Net() > static.Net() {
		tbl.AddNote("%s strictly dominates static at seed %d: +%.3f avoided UE at net %+.2f vs %+.2f",
			bestAdaptive.Policy, seed, bestAdaptive.AvoidedUE-static.AvoidedUE,
			bestAdaptive.Net(), static.Net())
	}
	tbl.AddNote("oracle predictor, %d servers × %d ticks; actions/column is retune/offline/migrate",
		servers, ticks)
	return tbl, nil
}
