package exp

import (
	"fmt"

	"repro/internal/dram"
	"repro/internal/xgene"
)

// Ablation quantifies how much each physical channel of the reliability
// model contributes to the paper's observations, by disabling one channel
// at a time and re-measuring three probes:
//
//   - the workload spread (busiest streaming kernel vs memcached) at
//     2.283 s / 60 °C — driven by implicit refresh;
//   - the random-pattern premium (random micro-benchmark vs nw) — driven
//     by data coupling and bit-density vulnerability;
//   - the serial/parallel gap of backprop — driven by disturbance.
//
// DESIGN.md commits to these attributions; the ablation makes them
// measurable instead of asserted.
func (s *Suite) Ablation() (*Table, error) {
	t := &Table{
		ID:    "ablation",
		Title: "Physics-channel ablations (2.283s, 60°C, fresh device per variant)",
		Header: []string{"variant", "stream/memcached", "random/nw",
			"backprop par/serial"},
	}
	base := dram.DefaultParams()
	variants := []struct {
		name string
		mut  func(*dram.Params)
	}{
		{"full model", func(p *dram.Params) {}},
		{"no disturbance", func(p *dram.Params) { p.DisturbCoeff = 0 }},
		{"no data coupling", func(p *dram.Params) { p.CouplingDelta = 0 }},
		{"uniform true/anti cells", func(p *dram.Params) { p.TrueCellProb = 0.5 }},
		{"no VRT", func(p *dram.Params) { p.VRTFraction = 0 }},
	}
	for _, v := range variants {
		params := base
		v.mut(&params)
		srv, err := xgene.NewServer(xgene.Config{
			Seed: s.Opts.Seed, Scale: s.Opts.Scale, Params: &params,
		})
		if err != nil {
			return nil, err
		}
		if err := srv.SetTREFP(2.283); err != nil {
			return nil, err
		}
		if err := srv.SetVDD(dram.MinVDD); err != nil {
			return nil, err
		}
		wer := map[string]float64{}
		for _, label := range []string{"backprop", "backprop(par)", "memcached", "nw", "random"} {
			obs, err := srv.Run(s.Profiles[label].Access, xgene.Experiment{
				TempC: 60, RecordWER: true,
			})
			if err != nil {
				return nil, err
			}
			wer[label] = obs.WER
		}
		t.AddRow(v.name,
			fmtRatio(wer["backprop(par)"], wer["memcached"]),
			fmtRatio(wer["random"], wer["nw"]),
			fmtRatio(wer["backprop(par)"], wer["backprop"]))
	}
	t.AddNote("each row re-measures three WER ratios with one channel disabled;")
	t.AddNote("a ratio collapsing toward 1.0 identifies the channel that produces it")
	return t, nil
}

// fmtRatio renders a WER ratio, guarding zero denominators.
func fmtRatio(num, den float64) string {
	if den <= 0 {
		if num <= 0 {
			return "-"
		}
		return "inf"
	}
	return fmt.Sprintf("%.2fx", num/den)
}
