package exp

import (
	"fmt"

	"repro/internal/dram"
	"repro/internal/engine"
	"repro/internal/xgene"
)

// Ablation quantifies how much each physical channel of the reliability
// model contributes to the paper's observations, by disabling one channel
// at a time and re-measuring three probes:
//
//   - the workload spread (busiest streaming kernel vs memcached) at
//     2.283 s / 60 °C — driven by implicit refresh;
//   - the random-pattern premium (random micro-benchmark vs nw) — driven
//     by data coupling and bit-density vulnerability;
//   - the serial/parallel gap of backprop — driven by disturbance.
//
// The dram.Params documentation commits to these attributions; the
// ablation makes them measurable instead of asserted.
func (s *Suite) Ablation() (*Table, error) {
	t := &Table{
		ID:    "ablation",
		Title: "Physics-channel ablations (2.283s, 60°C, fresh device per variant)",
		Header: []string{"variant", "stream/memcached", "random/nw",
			"backprop par/serial"},
	}
	base := dram.DefaultParams()
	variants := []struct {
		name string
		mut  func(*dram.Params)
	}{
		{"full model", func(p *dram.Params) {}},
		{"no disturbance", func(p *dram.Params) { p.DisturbCoeff = 0 }},
		{"no data coupling", func(p *dram.Params) { p.CouplingDelta = 0 }},
		{"uniform true/anti cells", func(p *dram.Params) { p.TrueCellProb = 0.5 }},
		{"no VRT", func(p *dram.Params) { p.VRTFraction = 0 }},
	}
	// One job per variant: each job builds a fresh server from the mutated
	// physics and runs the five probe workloads as one sequential campaign
	// (the variant fan-out already uses the worker budget, so the inner
	// campaign stays at one worker to bound total parallelism).
	labels := []string{"backprop", "backprop(par)", "memcached", "nw", "random"}
	variantWERs, err := engine.Map(len(variants), func(vi int) (map[string]float64, error) {
		params := base
		variants[vi].mut(&params)
		srv, err := xgene.NewServer(xgene.Config{
			Seed: s.Opts.Seed, Scale: s.Opts.Scale, Params: &params,
		})
		if err != nil {
			return nil, err
		}
		reqs := make([]xgene.Request, len(labels))
		for li, label := range labels {
			reqs[li] = xgene.Request{
				Profile: s.Profiles[label].Access,
				TREFP:   2.283,
				VDD:     dram.MinVDD,
				Exp:     xgene.Experiment{TempC: 60, RecordWER: true},
			}
		}
		obs, err := srv.Campaign(reqs, engine.Options{Workers: 1})
		if err != nil {
			return nil, err
		}
		wer := make(map[string]float64, len(labels))
		for li, label := range labels {
			wer[label] = obs[li].WER
		}
		return wer, nil
	}, engine.Options{Workers: s.Opts.Workers})
	if err != nil {
		return nil, err
	}
	for vi, v := range variants {
		wer := variantWERs[vi]
		t.AddRow(v.name,
			fmtRatio(wer["backprop(par)"], wer["memcached"]),
			fmtRatio(wer["random"], wer["nw"]),
			fmtRatio(wer["backprop(par)"], wer["backprop"]))
	}
	t.AddNote("each row re-measures three WER ratios with one channel disabled;")
	t.AddNote("a ratio collapsing toward 1.0 identifies the channel that produces it")
	return t, nil
}

// fmtRatio renders a WER ratio, guarding zero denominators.
func fmtRatio(num, den float64) string {
	if den <= 0 {
		if num <= 0 {
			return "-"
		}
		return "inf"
	}
	return fmt.Sprintf("%.2fx", num/den)
}
