package exp

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dram"
	"repro/internal/engine"
	"repro/internal/xgene"
)

// campaign fans a batch of characterization requests out over the engine
// with the suite's worker budget.
func (s *Suite) campaign(reqs []xgene.Request) ([]*xgene.Observation, error) {
	return s.Server.Campaign(reqs, engine.Options{Workers: s.Opts.Workers})
}

// werSeriesCampaign runs one 2-hour WER experiment per label concurrently
// and returns each label's cumulative WER series — the shape of the Fig. 2
// and Fig. 4 sweeps.
func (s *Suite) werSeriesCampaign(labels []string, trefp float64, exp xgene.Experiment) (map[string][]float64, error) {
	reqs := make([]xgene.Request, len(labels))
	for i, label := range labels {
		reqs[i] = xgene.Request{
			Profile: s.Profiles[label].Access,
			TREFP:   trefp,
			VDD:     dram.MinVDD,
			Exp:     exp,
		}
	}
	obs, err := s.campaign(reqs)
	if err != nil {
		return nil, err
	}
	series := make(map[string][]float64, len(labels))
	for i, label := range labels {
		series[label] = obs[i].WERSeries
	}
	return series, nil
}

// Fig2 reproduces Figure 2: the cumulative WER over a 2-hour run for
// memcached, backprop and the random data-pattern micro-benchmark at
// TREFP = 2.283 s, VDD = 1.428 V, 70 °C. The platform runs in ECC
// report-only mode (at this operating point the real machine would crash;
// the paper's Fig. 2 predates the crash study). The paper's observation:
// backprop exceeds the worst-case data-pattern micro-benchmark by ~3.5x.
func (s *Suite) Fig2() (*Table, error) {
	t := &Table{
		ID:    "fig2",
		Title: "WER over time (TREFP=2.283s, VDD=1.428V, 70°C, report-only)",
	}
	labels := []string{"memcached", "backprop(par)", "random"}
	series, err := s.werSeriesCampaign(labels, 2.283, xgene.Experiment{
		TempC: 70, RecordWER: true, ReportOnly: true,
	})
	if err != nil {
		return nil, err
	}
	t.Header = []string{"minutes"}
	t.Header = append(t.Header, labels...)
	n := len(series[labels[0]])
	for e := 0; e < n; e++ {
		row := []string{fmt.Sprintf("%d", (e+1)*10)}
		for _, l := range labels {
			row = append(row, fmtWER(series[l][e]))
		}
		t.AddRow(row...)
	}
	final := func(l string) float64 { return series[l][n-1] }
	if final("random") > 0 {
		t.AddNote("backprop(par) / random WER ratio = %.2fx (paper: ~3.5x)",
			final("backprop(par)")/final("random"))
	}
	if final("memcached") > 0 {
		t.AddNote("backprop(par) / memcached WER ratio = %.1fx",
			final("backprop(par)")/final("memcached"))
	}
	return t, nil
}

// Fig4 reproduces Figure 4: cumulative WER over time for all 13 benchmark
// configurations at TREFP = 2.283 s, 50 °C, showing saturation within the
// 2-hour window (< 3 % change in the last 10 minutes).
func (s *Suite) Fig4() (*Table, error) {
	t := &Table{
		ID:    "fig4",
		Title: "WER over time, all benchmarks (TREFP=2.283s, 50°C)",
	}
	labels := sortedLabels(s.Specs)
	series, err := s.werSeriesCampaign(labels, 2.283, xgene.Experiment{
		TempC: 50, RecordWER: true,
	})
	if err != nil {
		return nil, err
	}
	t.Header = append([]string{"minutes"}, labels...)
	n := len(series[labels[0]])
	for e := 0; e < n; e++ {
		row := []string{fmt.Sprintf("%d", (e+1)*10)}
		for _, l := range labels {
			row = append(row, fmtWER(series[l][e]))
		}
		t.AddRow(row...)
	}
	// Saturation check over benchmarks with enough errors.
	worstDelta := 0.0
	for _, l := range labels {
		sr := series[l]
		if sr[n-1] > 0 && sr[n-1] > 20.0/float64(1<<30) {
			delta := (sr[n-1] - sr[n-2]) / sr[n-1]
			if delta > worstDelta {
				worstDelta = delta
			}
		}
	}
	t.AddNote("worst last-epoch WER change = %.1f%% (paper: < 3%%)", 100*worstDelta)
	return t, nil
}

// Table2 reproduces Table II: the average DRAM reuse time per benchmark.
func (s *Suite) Table2() (*Table, error) {
	t := &Table{
		ID:     "tab2",
		Title:  "Average DRAM reuse time Treuse (seconds)",
		Header: []string{"benchmark", "Treuse(s)", "threads"},
	}
	for _, spec := range s.Specs {
		prof := s.Profiles[spec.Label]
		t.AddRow(spec.Label, fmt.Sprintf("%.3f", prof.Treuse), fmt.Sprintf("%d", spec.Threads))
	}
	mc := s.Profiles["memcached"].Treuse
	nw := s.Profiles["nw"].Treuse
	if mc > 0 {
		t.AddNote("nw / memcached Treuse ratio = %.0fx (paper: 10.93s vs 0.09s)", nw/mc)
	}
	return t, nil
}

// Fig7 reproduces Figure 7: WER for every benchmark under the four TREFP
// levels at 50, 60 and 70 °C (panels a-e), plus the benchmark-averaged
// WER-vs-TREFP curve (panel f).
func (s *Suite) Fig7() (*Table, error) {
	if err := s.EnsureDataset(); err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "fig7",
		Title:  "WER per benchmark vs TREFP and temperature",
		Header: []string{"benchmark", "temp(C)"},
	}
	for _, trefp := range core.WERTrefps {
		t.Header = append(t.Header, fmt.Sprintf("%.3fs", trefp))
	}
	for _, temp := range core.WERTemps {
		for _, spec := range s.Specs {
			row := []string{spec.Label, fmt.Sprintf("%.0f", temp)}
			for _, trefp := range core.WERTrefps {
				if w, ok := meanWEROverRanks(s.Dataset, spec.Label, trefp, temp); ok {
					row = append(row, fmtWER(w))
				} else {
					row = append(row, "crash")
				}
			}
			t.AddRow(row...)
		}
	}
	// Panel f: benchmark-mean WER vs TREFP at 50/60 °C.
	for _, temp := range []float64{50, 60} {
		for _, trefp := range core.WERTrefps {
			sum, n := 0.0, 0
			for _, spec := range s.Specs {
				if w, ok := meanWEROverRanks(s.Dataset, spec.Label, trefp, temp); ok {
					sum += w
					n++
				}
			}
			if n > 0 {
				t.AddNote("panel f: mean WER at %.0f°C TREFP=%.3fs = %s",
					temp, trefp, fmtWER(sum/float64(n)))
			}
		}
	}
	// The paper's spread observation.
	if hi, ok1 := meanWEROverRanks(s.Dataset, "backprop(par)", 0.618, 70); ok1 {
		if lo, ok2 := meanWEROverRanks(s.Dataset, "memcached", 0.618, 70); ok2 && lo > 0 {
			t.AddNote("backprop(par)/memcached at 0.618s/70°C = %.1fx (paper: ~8x)", hi/lo)
		}
	}
	return t, nil
}

// Fig8 reproduces Figure 8: WER per DIMM/rank for every benchmark at
// TREFP = 2.283 s, 50 °C — the 188x DIMM-to-DIMM variation.
func (s *Suite) Fig8() (*Table, error) {
	if err := s.EnsureDataset(); err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "fig8",
		Title:  "WER per DIMM/rank (TREFP=2.283s, 50°C)",
		Header: []string{"benchmark"},
	}
	for r := 0; r < dram.NumRanks; r++ {
		t.Header = append(t.Header, dram.RankName(r))
	}
	maxW, minW := 0.0, 0.0
	for _, spec := range s.Specs {
		row := []string{spec.Label}
		for r := 0; r < dram.NumRanks; r++ {
			w := 0.0
			for _, smp := range s.Dataset.WER {
				if smp.Workload == spec.Label && smp.TREFP == 2.283 &&
					smp.TempC == 50 && smp.Rank == r {
					w = smp.WER
				}
			}
			row = append(row, fmtWER(w))
			if w > core.WERFloor {
				if w > maxW {
					maxW = w
				}
				if minW == 0 || w < minW {
					minW = w
				}
			}
		}
		t.AddRow(row...)
	}
	if minW > 0 {
		t.AddNote("rank WER spread = %.0fx (paper: up to 188x)", maxW/minW)
	}
	return t, nil
}

// Fig9 reproduces Figure 9: (a) the probability of an uncorrectable error
// per benchmark at 1.450/1.727/2.283 s and 70 °C, and (b) the distribution
// of UE-crashes over DIMM/ranks.
func (s *Suite) Fig9() (*Table, error) {
	if err := s.EnsureDataset(); err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "fig9",
		Title:  "PUE per benchmark (70°C) and crash distribution per rank",
		Header: []string{"benchmark", "1.450s", "1.727s", "2.283s"},
	}
	pueOf := func(label string, trefp float64) float64 {
		for _, smp := range s.Dataset.PUE {
			if smp.Workload == label && smp.TREFP == trefp {
				return smp.PUE
			}
		}
		return -1
	}
	means := map[float64]float64{}
	for _, spec := range s.Specs {
		row := []string{spec.Label}
		for _, trefp := range core.PUETrefps {
			p := pueOf(spec.Label, trefp)
			row = append(row, fmt.Sprintf("%.2f", p))
			means[trefp] += p
		}
		t.AddRow(row...)
	}
	n := float64(len(s.Specs))
	t.AddNote("mean PUE: 1.450s=%.2f 1.727s=%.2f 2.283s=%.2f (paper: <0.4, 2.15x growth, 1.0)",
		means[1.450]/n, means[1.727]/n, means[2.283]/n)

	// Panel b: crash attribution per rank, aggregated over the campaign.
	rankHits := make([]int, dram.NumRanks)
	total := 0
	for _, smp := range s.Dataset.PUE {
		for r, h := range smp.RankHits {
			rankHits[r] += h
			total += h
		}
	}
	if total > 0 {
		for r := 0; r < dram.NumRanks; r++ {
			t.AddNote("panel b: %s takes %.2f of UEs (paper: D2/r0=0.67, D0/r1=0.24, D3/r1=0)",
				dram.RankName(r), float64(rankHits[r])/float64(total))
		}
	}
	return t, nil
}

// Fig10 reproduces Figure 10: the Spearman rank correlation of all 249
// program features with WER and PUE.
func (s *Suite) Fig10() (*Table, error) {
	if err := s.EnsureDataset(); err != nil {
		return nil, err
	}
	cors := core.CorrelateFeatures(s.Dataset)
	t := &Table{
		ID:     "fig10",
		Title:  "Spearman rs of program features vs WER and PUE (top 15 by |rs WER|)",
		Header: []string{"feature", "rs(WER)", "rs(PUE)"},
	}
	for _, c := range core.TopCorrelated(cors, 15) {
		t.AddRow(c.Name, fmt.Sprintf("%+.3f", c.RsWER), fmt.Sprintf("%+.3f", c.RsPUE))
	}
	for _, name := range []string{"mem_accesses_per_kcycle", "wait_cycles", "hdp", "treuse"} {
		if c, ok := core.CorrelationOf(cors, name); ok {
			t.AddNote("%s: rs(WER)=%+.3f rs(PUE)=%+.3f", name, c.RsWER, c.RsPUE)
		}
	}
	return t, nil
}

// Fig11 reproduces Figure 11: the mean percentage error of WER estimates
// per DIMM/rank (panels a-c) and per application (panels d-f) for the three
// models and three input sets.
func (s *Suite) Fig11() (*Table, error) {
	if err := s.EnsureDataset(); err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "fig11",
		Title:  "WER estimation error (%) per model and input set",
		Header: []string{"model", "input set", "avg", "worst rank", "worst app"},
	}
	ds := s.paperSetDataset()
	type result struct {
		kind core.ModelKind
		set  core.InputSet
		ev   *core.WEREval
	}
	var results []result
	for _, kind := range core.ModelKinds() {
		for _, set := range core.InputSets() {
			ev, err := core.EvaluateWER(ds, kind, set, s.Opts.Workers)
			if err != nil {
				return nil, err
			}
			results = append(results, result{kind, set, ev})
			worstRank := 0.0
			for _, r := range ev.MPEByRank {
				if r > worstRank {
					worstRank = r
				}
			}
			worstApp := 0.0
			for _, a := range ev.MPEByWorkload {
				if a > worstApp {
					worstApp = a
				}
			}
			t.AddRow(string(kind), set.String(),
				fmt.Sprintf("%.1f%%", 100*ev.MPE),
				fmt.Sprintf("%.1f%%", 100*worstRank),
				fmt.Sprintf("%.1f%%", 100*worstApp))
		}
	}
	best := results[0]
	for _, r := range results {
		if r.ev.MPE < best.ev.MPE {
			best = r
		}
	}
	t.AddNote("best: %s with %s at %.1f%% (paper: KNN with input set 1 at 10.1%%)",
		best.kind, best.set, 100*best.ev.MPE)
	return t, nil
}

// Fig12 reproduces Figure 12: the PUE estimation error per model and input
// set, in probability points.
func (s *Suite) Fig12() (*Table, error) {
	if err := s.EnsureDataset(); err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "fig12",
		Title:  "PUE estimation error (probability points) per model and input set",
		Header: []string{"model", "input set", "MAE"},
	}
	ds := s.paperSetDataset()
	bestKind, bestSet, bestMAE := core.ModelKind(""), core.InputSet(0), 1.0
	for _, kind := range core.ModelKinds() {
		for _, set := range core.InputSets() {
			ev, err := core.EvaluatePUE(ds, kind, set, s.Opts.Workers)
			if err != nil {
				return nil, err
			}
			t.AddRow(string(kind), set.String(), fmt.Sprintf("%.1f%%", 100*ev.MAE))
			if ev.MAE < bestMAE {
				bestKind, bestSet, bestMAE = kind, set, ev.MAE
			}
		}
	}
	t.AddNote("best: %s with %s at %.1f%% (paper: KNN with input set 2 at 4.1%%)",
		bestKind, bestSet, 100*bestMAE)
	return t, nil
}

// Fig13 reproduces Figure 13: measured vs KNN-predicted WER for the two
// lulesh compiler-optimization builds and the random data-pattern
// micro-benchmark at TREFP = 0.618 s and 70 °C. The workload-aware model
// must track the ~29 % difference between the builds; the conventional
// (random-pattern) model is off by ~2.9x.
func (s *Suite) Fig13() (*Table, error) {
	if err := s.EnsureDataset(); err != nil {
		return nil, err
	}
	const (
		trefp = 0.618
		temp  = 70.0
	)
	// Leave-the-target-out training set: drop both lulesh builds so the
	// prediction is for unseen workloads (the paper's validation style).
	train := &core.Dataset{Profiles: s.Dataset.Profiles}
	for _, smp := range s.Dataset.WER {
		if smp.Workload == "lulesh(O2)" || smp.Workload == "lulesh(F)" {
			continue
		}
		train.WER = append(train.WER, smp)
	}
	train.PUE = s.Dataset.PUE
	pred, err := core.Train(train, core.TargetWER, core.ModelKNN, core.InputSet1, s.Opts.Workers)
	if err != nil {
		return nil, err
	}
	conv, err := core.NewConventionalModel(s.Dataset, "random")
	if err != nil {
		return nil, err
	}

	t := &Table{
		ID:     "fig13",
		Title:  "Measured vs predicted WER, lulesh builds (TREFP=0.618s, 70°C)",
		Header: []string{"workload", "measured", "KNN predicted", "pred error"},
	}
	measured := map[string]float64{}
	for _, label := range []string{"lulesh(O2)", "lulesh(F)", "random"} {
		m, ok := meanWEROverRanks(s.Dataset, label, trefp, temp)
		if !ok {
			return nil, fmt.Errorf("exp: no measurement for %s at fig13 point", label)
		}
		measured[label] = m
		est, err := pred.Predict(core.Query{
			Features: s.Profiles[label].Features, TREFP: trefp,
			VDD: dram.MinVDD, TempC: temp, Rank: core.RankDevice,
		})
		if err != nil {
			return nil, err
		}
		p := est.Value
		errPct := "-"
		if m > 0 {
			errPct = fmt.Sprintf("%.0f%%", 100*absf(p-m)/m)
		}
		t.AddRow(label, fmtWER(m), fmtWER(p), errPct)
	}
	if measured["lulesh(O2)"] > 0 {
		t.AddNote("lulesh(F)/lulesh(O2) measured ratio = %.2f (paper: ~1.29)",
			measured["lulesh(F)"]/measured["lulesh(O2)"])
	}
	if base, err := conv.PredictMean(trefp, temp); err == nil && measured["lulesh(O2)"] > 0 {
		t.AddNote("conventional (random-pattern) model overestimates lulesh(O2) by %.1fx (paper: 2.9x)",
			base/measured["lulesh(O2)"])
	}
	return t, nil
}

// VddStudy reproduces the Section V finding that lowering VDD from 1.5 V
// to 1.428 V has a negligible effect compared to TREFP scaling.
func (s *Suite) VddStudy() (*Table, error) {
	t := &Table{
		ID:     "vdd",
		Title:  "VDD sensitivity (backprop(par), 60°C)",
		Header: []string{"TREFP", "WER @1.500V", "WER @1.428V", "ratio"},
	}
	prof := s.Profiles["backprop(par)"]
	trefps := []float64{1.173, 2.283}
	vdds := []float64{dram.NominalVDD, dram.MinVDD}
	var reqs []xgene.Request
	for _, trefp := range trefps {
		for _, vdd := range vdds {
			reqs = append(reqs, xgene.Request{
				Profile: prof.Access,
				TREFP:   trefp,
				VDD:     vdd,
				Exp:     xgene.Experiment{TempC: 60, RecordWER: true},
			})
		}
	}
	obs, err := s.campaign(reqs)
	if err != nil {
		return nil, err
	}
	for ti, trefp := range trefps {
		wer := [2]float64{obs[2*ti].WER, obs[2*ti+1].WER}
		ratio := "-"
		if wer[0] > 0 {
			ratio = fmt.Sprintf("%.2fx", wer[1]/wer[0])
		}
		t.AddRow(fmt.Sprintf("%.3fs", trefp), fmtWER(wer[0]), fmtWER(wer[1]), ratio)
	}
	t.AddNote("paper: the 5%% VDD reduction alone manifested almost no additional errors")
	return t, nil
}

// All runs every experiment in paper order.
func (s *Suite) All() ([]*Table, error) {
	type step struct {
		name string
		fn   func() (*Table, error)
	}
	steps := []step{
		{"fig2", s.Fig2}, {"fig4", s.Fig4}, {"tab2", s.Table2},
		{"fig7", s.Fig7}, {"fig8", s.Fig8}, {"fig9", s.Fig9},
		{"fig10", s.Fig10}, {"fig11", s.Fig11}, {"fig12", s.Fig12},
		{"fig13", s.Fig13}, {"vdd", s.VddStudy}, {"ablation", s.Ablation},
	}
	var out []*Table
	for _, st := range steps {
		tbl, err := st.fn()
		if err != nil {
			return out, fmt.Errorf("exp: %s: %w", st.name, err)
		}
		out = append(out, tbl)
	}
	return out, nil
}

// paperSetDataset filters the campaign dataset to the paper's 14-benchmark
// evaluation set (the Fig. 13 extras — lulesh builds and the random
// micro-benchmark — are not part of the cross-validation corpus).
func (s *Suite) paperSetDataset() *core.Dataset {
	in := map[string]bool{}
	for _, spec := range s.Specs {
		in[spec.Label] = true
	}
	out := &core.Dataset{Profiles: s.Dataset.Profiles}
	for _, smp := range s.Dataset.WER {
		if in[smp.Workload] {
			out.WER = append(out.WER, smp)
		}
	}
	for _, smp := range s.Dataset.PUE {
		if in[smp.Workload] {
			out.PUE = append(out.PUE, smp)
		}
	}
	return out
}

func absf(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
