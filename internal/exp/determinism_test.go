package exp

import (
	"testing"

	"repro/internal/workload"
)

// TestEndToEndDeterminism verifies the reproducibility contract stated in
// the README: two suites built from the same seed regenerate byte-identical
// figures, and a different seed models a different physical server.
func TestEndToEndDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end determinism (slow)")
	}
	build := func(seed uint64) string {
		s, err := NewSuite(Options{Size: workload.SizeTest, Scale: 32, Reps: 3, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		if err := s.EnsureDataset(); err != nil {
			t.Fatal(err)
		}
		fig8, err := s.Fig8()
		if err != nil {
			t.Fatal(err)
		}
		fig9, err := s.Fig9()
		if err != nil {
			t.Fatal(err)
		}
		return fig8.Render() + fig9.Render()
	}
	a := build(7)
	b := build(7)
	if a != b {
		t.Fatal("same seed produced different figures")
	}
	c := build(8)
	if a == c {
		t.Fatal("different seeds produced identical figures (no DIMM-to-DIMM variation)")
	}
}

// TestWorkerCountInvariance is the campaign engine's determinism contract
// end to end: a suite whose campaigns run on 4 workers regenerates byte-
// identical tables to the same suite on 1 worker. The probed figures cover
// every parallel path — profiling (NewSuite), the WER/PUE characterization
// campaigns (EnsureDataset → Fig8/Fig9), the figure-level sweeps (Fig4),
// cross-validation folds and forest training (Fig12), and the per-variant
// ablation fan-out.
func TestWorkerCountInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("worker-count invariance (slow)")
	}
	build := func(workers int) string {
		s, err := NewSuite(Options{
			Size: workload.SizeTest, Scale: 32, Reps: 3, Seed: 7, Workers: workers,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := s.EnsureDataset(); err != nil {
			t.Fatal(err)
		}
		var out string
		for _, fn := range []func() (*Table, error){s.Fig4, s.Fig8, s.Fig9, s.Fig12, s.Ablation} {
			tbl, err := fn()
			if err != nil {
				t.Fatal(err)
			}
			out += tbl.Render()
		}
		return out
	}
	sequential := build(1)
	parallel := build(4)
	if sequential != parallel {
		t.Fatal("workers=4 produced different tables than workers=1")
	}
}
