package exp

import (
	"testing"

	"repro/internal/workload"
)

// TestEndToEndDeterminism verifies the reproducibility contract stated in
// the README: two suites built from the same seed regenerate byte-identical
// figures, and a different seed models a different physical server.
func TestEndToEndDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end determinism (slow)")
	}
	build := func(seed uint64) string {
		s, err := NewSuite(Options{Size: workload.SizeTest, Scale: 32, Reps: 3, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		if err := s.EnsureDataset(); err != nil {
			t.Fatal(err)
		}
		fig8, err := s.Fig8()
		if err != nil {
			t.Fatal(err)
		}
		fig9, err := s.Fig9()
		if err != nil {
			t.Fatal(err)
		}
		return fig8.Render() + fig9.Render()
	}
	a := build(7)
	b := build(7)
	if a != b {
		t.Fatal("same seed produced different figures")
	}
	c := build(8)
	if a == c {
		t.Fatal("different seeds produced identical figures (no DIMM-to-DIMM variation)")
	}
}
