package exp

import (
	"fmt"
	"sort"

	"repro/internal/fleet"
)

// FleetSummary simulates a heterogeneous fleet offline (internal/fleet)
// and tabulates the scenario the serving layer faces at scale: which
// workloads dominate the query stream, the temperature band each one runs
// in, the refresh-relaxation policies deployed across servers, and the
// ground-truth error exposure — the fleet-wide view the related AIOps
// memory-failure work predicts over, where the paper characterizes one
// machine. The table is a pure function of (servers, seed, n); its
// checksum note pins the determinism contract cmd/dramfleet replays on.
func FleetSummary(servers int, seed uint64, n int) (*Table, error) {
	f, err := fleet.New(fleet.Config{Servers: servers, Seed: seed})
	if err != nil {
		return nil, err
	}
	qs := f.Take(n)

	type agg struct {
		queries            int
		tempMin, tempMax   float64
		tempSum            float64
		truthWER, truthPUE float64
		atRisk             int // queries with a material crash probability
	}
	rows := map[string]*agg{}
	trefps := map[float64]int{}
	serversSeen := map[int]bool{}
	for i := range qs {
		q := &qs[i]
		a, ok := rows[q.Workload]
		if !ok {
			a = &agg{tempMin: q.TempC, tempMax: q.TempC}
			rows[q.Workload] = a
		}
		a.queries++
		if q.TempC < a.tempMin {
			a.tempMin = q.TempC
		}
		if q.TempC > a.tempMax {
			a.tempMax = q.TempC
		}
		a.tempSum += q.TempC
		a.truthWER += q.TruthWER
		a.truthPUE += q.TruthPUE
		if q.TruthPUE > 0.1 {
			a.atRisk++
		}
		trefps[q.TREFP]++
		serversSeen[q.Server] = true
	}

	tbl := &Table{
		ID:    "fleet",
		Title: "Fleet telemetry stream composition (offline simulation)",
		Header: []string{"workload", "queries", "share", "temp range", "mean truth WER",
			"mean truth PUE", "at-risk"},
	}
	labels := make([]string, 0, len(rows))
	for l := range rows {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	for _, l := range labels {
		a := rows[l]
		q := float64(a.queries)
		tbl.AddRow(l,
			fmt.Sprintf("%d", a.queries),
			fmt.Sprintf("%.1f%%", 100*q/float64(len(qs))),
			fmt.Sprintf("%.1f-%.1f°C", a.tempMin, a.tempMax),
			fmtWER(a.truthWER/q),
			fmt.Sprintf("%.4f", a.truthPUE/q),
			fmt.Sprintf("%.1f%%", 100*float64(a.atRisk)/q),
		)
	}

	policies := make([]float64, 0, len(trefps))
	for tr := range trefps {
		policies = append(policies, tr)
	}
	sort.Float64s(policies)
	for _, tr := range policies {
		tbl.AddNote("TREFP %.3fs policy: %d queries (%.1f%% of the stream)",
			tr, trefps[tr], 100*float64(trefps[tr])/float64(len(qs)))
	}
	tbl.AddNote("%d servers emitted %d queries; stream %s (same seed ⇒ same table)",
		len(serversSeen), len(qs), fleet.Checksum(qs))
	return tbl, nil
}
