package exp

import (
	"strconv"
	"strings"
	"testing"
)

// TestFleetSummaryDeterminism: the fleet table is a pure function of
// (servers, seed, n) — no profiling, no campaign, so it renders in
// microseconds and byte-identically.
func TestFleetSummaryDeterminism(t *testing.T) {
	a, err := FleetSummary(16, 1, 640)
	if err != nil {
		t.Fatal(err)
	}
	b, err := FleetSummary(16, 1, 640)
	if err != nil {
		t.Fatal(err)
	}
	if a.Render() != b.Render() {
		t.Fatalf("same seed rendered different tables:\n%s\nvs\n%s", a.Render(), b.Render())
	}
	c, err := FleetSummary(16, 2, 640)
	if err != nil {
		t.Fatal(err)
	}
	if a.Render() == c.Render() {
		t.Fatal("different seeds rendered the same table")
	}
}

func TestFleetSummaryShape(t *testing.T) {
	tbl, err := FleetSummary(8, 3, 400)
	if err != nil {
		t.Fatal(err)
	}
	if tbl.ID != "fleet" || len(tbl.Rows) == 0 {
		t.Fatalf("table shape: id=%q rows=%d", tbl.ID, len(tbl.Rows))
	}
	total := 0
	for _, row := range tbl.Rows {
		if len(row) != len(tbl.Header) {
			t.Fatalf("row width %d, header width %d", len(row), len(tbl.Header))
		}
		n, err := strconv.Atoi(row[1])
		if err != nil {
			t.Fatalf("queries cell %q: %v", row[1], err)
		}
		total += n
	}
	if total != 400 {
		t.Fatalf("rows account for %d queries, want 400", total)
	}
	out := tbl.Render()
	if !strings.Contains(out, "same seed ⇒ same table") {
		t.Fatalf("determinism note missing:\n%s", out)
	}
	if !strings.Contains(out, "TREFP") {
		t.Fatalf("policy notes missing:\n%s", out)
	}
}
