// Package exp regenerates every table and figure of the paper's evaluation:
// the WER-over-time curves (Figs. 2 and 4), the DRAM reuse times
// (Table II), the WER sweeps over TREFP and temperature (Fig. 7), the
// per-DIMM/rank variation (Fig. 8), the crash-probability study (Fig. 9),
// the feature correlations (Fig. 10), the model-accuracy comparison
// (Figs. 11 and 12), the compiler-optimization case study (Fig. 13), and
// the VDD sensitivity finding of Section V.
//
// Each experiment returns a Table whose rows mirror the series the paper
// plots, so "regenerating a figure" means printing the numbers behind it.
package exp

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/profile"
	"repro/internal/workload"
	"repro/internal/xgene"
)

// Options configures a reproduction suite.
type Options struct {
	// Size selects kernel working sets: workload.SizeProfile for the
	// paper reproduction, workload.SizeTest for fast smoke runs.
	Size workload.Size
	// Scale is the DRAM simulation capacity divisor (1 = full 32 GiB;
	// larger is faster and noisier; WER is scale-invariant in
	// expectation).
	Scale int
	// Reps is the number of repetitions per PUE experiment (paper: 10).
	Reps int
	// Seed selects the physical server and profiling randomness.
	Seed uint64
	// Workers bounds the number of concurrent jobs (profiling passes,
	// characterization runs, CV folds) per campaign; 0 means GOMAXPROCS.
	// Every table is identical for every worker count.
	Workers int
}

func (o *Options) setDefaults() {
	if o.Scale == 0 {
		o.Scale = 8
	}
	if o.Reps == 0 {
		o.Reps = 10
	}
}

// Suite owns the expensive shared state of the reproduction: the workload
// profiles, the simulated server, and the characterization dataset.
type Suite struct {
	Opts     Options
	Specs    []workload.Spec // the paper's 14 benchmarks
	Extended []workload.Spec // + lulesh variants and random
	Profiles map[string]*profile.Result
	Server   *xgene.Server
	Dataset  *core.Dataset
}

// NewSuite profiles all workloads and boots the server. This is the slow
// step (tens of seconds at SizeProfile); everything downstream reuses it.
func NewSuite(opts Options) (*Suite, error) {
	opts.setDefaults()
	s := &Suite{
		Opts:     opts,
		Specs:    workload.PaperSet(),
		Extended: workload.ExtendedSet(),
	}
	profiles, err := core.BuildProfiles(s.Extended, opts.Size, opts.Seed, opts.Workers)
	if err != nil {
		return nil, err
	}
	s.Profiles = profiles
	s.Server, err = xgene.NewServer(xgene.Config{Seed: opts.Seed, Scale: opts.Scale})
	if err != nil {
		return nil, err
	}
	return s, nil
}

// EnsureDataset runs the characterization campaigns once (idempotent).
// The dataset covers the extended workload set so the Fig. 13 lulesh
// variants and the conventional baseline's micro-benchmark are included.
func (s *Suite) EnsureDataset() error {
	if s.Dataset != nil {
		return nil
	}
	ds, err := core.BuildDataset(s.Server, s.Profiles, s.Extended,
		core.CampaignOptions{Reps: s.Opts.Reps, Workers: s.Opts.Workers})
	if err != nil {
		return err
	}
	s.Dataset = ds
	return nil
}

// Table is the textual form of one figure or table.
type Table struct {
	ID     string // experiment id, e.g. "fig7"
	Title  string
	Header []string
	Rows   [][]string
	// Notes records observations the paper calls out (spread factors,
	// crossovers) computed from this run's data.
	Notes []string
}

// AddRow appends a row of already-formatted cells.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// AddNote appends an observation line.
func (t *Table) AddNote(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Render formats the table for terminal output.
func (t *Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// fmtWER renders an error rate the way the paper's axes do.
func fmtWER(w float64) string {
	if w <= 0 {
		return "0"
	}
	return fmt.Sprintf("%.3g", w)
}

// sortedLabels returns the workload labels of specs in campaign order.
func sortedLabels(specs []workload.Spec) []string {
	return workload.Labels(specs)
}

// meanWEROverRanks aggregates a dataset row group to a whole-device WER.
func meanWEROverRanks(ds *core.Dataset, label string, trefp, temp float64) (float64, bool) {
	sum, n := 0.0, 0
	for _, smp := range ds.WER {
		if smp.Workload == label && smp.TREFP == trefp && smp.TempC == temp {
			sum += smp.WER
			n++
		}
	}
	if n == 0 {
		return 0, false
	}
	return sum / float64(n), true
}

// sortByValue returns the keys of m ordered by descending value.
func sortByValue(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return m[keys[i]] > m[keys[j]] })
	return keys
}
