package exp

import (
	"strings"
	"sync"
	"testing"

	"repro/internal/workload"
)

var (
	suiteOnce sync.Once
	suiteVal  *Suite
	suiteErr  error
)

// testSuite builds one shared fast suite (test-size kernels, coarse scale).
func testSuite(t *testing.T) *Suite {
	t.Helper()
	suiteOnce.Do(func() {
		suiteVal, suiteErr = NewSuite(Options{
			Size: workload.SizeTest, Scale: 32, Reps: 4, Seed: 0,
		})
		if suiteErr == nil {
			suiteErr = suiteVal.EnsureDataset()
		}
	})
	if suiteErr != nil {
		t.Fatal(suiteErr)
	}
	return suiteVal
}

func TestSuiteCoversAllWorkloads(t *testing.T) {
	s := testSuite(t)
	if len(s.Specs) != 14 {
		t.Fatalf("paper set has %d workloads", len(s.Specs))
	}
	if len(s.Profiles) != 17 {
		t.Fatalf("profiles for %d workloads", len(s.Profiles))
	}
}

func TestAllExperimentsRun(t *testing.T) {
	s := testSuite(t)
	tables, err := s.All()
	if err != nil {
		t.Fatal(err)
	}
	wantIDs := []string{"fig2", "fig4", "tab2", "fig7", "fig8", "fig9",
		"fig10", "fig11", "fig12", "fig13", "vdd", "ablation"}
	if len(tables) != len(wantIDs) {
		t.Fatalf("%d tables, want %d", len(tables), len(wantIDs))
	}
	for i, tbl := range tables {
		if tbl.ID != wantIDs[i] {
			t.Fatalf("table %d is %q, want %q", i, tbl.ID, wantIDs[i])
		}
		if len(tbl.Rows) == 0 {
			t.Fatalf("%s has no rows", tbl.ID)
		}
		out := tbl.Render()
		if !strings.Contains(out, tbl.ID) {
			t.Fatalf("%s render missing id", tbl.ID)
		}
	}
}

func TestFig9ShapesMatchPaper(t *testing.T) {
	s := testSuite(t)
	tbl, err := s.Fig9()
	if err != nil {
		t.Fatal(err)
	}
	// Every benchmark's PUE at 2.283 s (last column) must be 1.00.
	for _, row := range tbl.Rows {
		if row[3] != "1.00" {
			t.Fatalf("%s PUE at 2.283s = %s, want 1.00", row[0], row[3])
		}
	}
}

func TestFig4Saturates(t *testing.T) {
	s := testSuite(t)
	tbl, err := s.Fig4()
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 12 {
		t.Fatalf("fig4 has %d epochs, want 12", len(tbl.Rows))
	}
}

func TestTable2Orderings(t *testing.T) {
	s := testSuite(t)
	// memcached must have the smallest Treuse; nw the largest serial one
	// (Table II's headline orderings).
	mc := s.Profiles["memcached"].Treuse
	nw := s.Profiles["nw"].Treuse
	bp := s.Profiles["backprop"].Treuse
	if mc >= nw || mc >= bp {
		t.Fatalf("memcached Treuse %v not smallest (nw %v, backprop %v)", mc, nw, bp)
	}
	// Parallel versions run faster: smaller reuse time.
	if s.Profiles["nw(par)"].Treuse >= nw {
		t.Fatalf("nw(par) Treuse not below nw")
	}
}

func TestRenderAlignment(t *testing.T) {
	tbl := &Table{ID: "x", Title: "t", Header: []string{"a", "bbbb"}}
	tbl.AddRow("1", "2")
	tbl.AddNote("n=%d", 1)
	out := tbl.Render()
	if !strings.Contains(out, "note: n=1") {
		t.Fatal("note missing")
	}
	lines := strings.Split(out, "\n")
	if len(lines) < 4 {
		t.Fatalf("render too short: %q", out)
	}
}
