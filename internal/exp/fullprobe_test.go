package exp

import (
	"testing"

	"repro/internal/workload"
)

// TestFullSuiteProbe exercises the complete reproduction at profiling scale
// and logs every regenerated figure; skipped in -short runs.
func TestFullSuiteProbe(t *testing.T) {
	if testing.Short() {
		t.Skip("full-suite probe (slow)")
	}
	s, err := NewSuite(Options{Size: workload.SizeProfile, Scale: 8, Reps: 10, Seed: 0})
	if err != nil {
		t.Fatal(err)
	}
	tables, err := s.All()
	for _, tbl := range tables {
		t.Logf("\n%s", tbl.Render())
	}
	if err != nil {
		t.Fatal(err)
	}
}
