package workload

import "math"

// SRAD is the Rodinia speckle-reducing anisotropic diffusion benchmark: an
// iterative 4-point stencil over an image. Unlike nw, srad *rewrites* its
// image every iteration with freshly computed floating-point values — the
// data-turnover behaviour that makes srad the one single-threaded benchmark
// with a non-zero crash probability in the paper's Fig. 9a.
type SRAD struct {
	rows, cols int
	lambda     float64

	image *Array // the image being diffused (capacity, rewritten per iter)
	coeff *Array // diffusion coefficients (capacity, rewritten per iter)

	img []float64
	c   []float64
}

// NewSRAD returns the benchmark.
func NewSRAD() *SRAD { return &SRAD{lambda: 0.5} }

// Name implements Kernel.
func (s *SRAD) Name() string { return "srad" }

// Setup implements Kernel.
func (s *SRAD) Setup(e *Engine, size Size) {
	switch size {
	case SizeTest:
		s.rows, s.cols = 256, 256
	default:
		s.rows, s.cols = 1024, 1024 // 1M-word image + 1M-word coefficients
	}
	n := s.rows * s.cols
	s.image = e.Alloc("image", uint64(n), Capacity)
	s.coeff = e.Alloc("coeff", uint64(n), Capacity)
	s.img = make([]float64, n)
	s.c = make([]float64, n)
	rng := e.RNG()
	for i := range s.img {
		s.img[i] = math.Exp(rng.Float64()) // speckled image
		if i%4 == 0 {
			e.Write64(i%e.Threads(), s.image, uint64(i), math.Float64bits(s.img[i]))
		}
	}
}

// RunIter implements Kernel: one diffusion step (coefficient pass + update
// pass), rows partitioned across threads.
func (s *SRAD) RunIter(e *Engine) {
	threads := e.Threads()
	rows, cols := s.rows, s.cols

	// Mean/variance of a window (Rodinia uses a fixed ROI).
	var sum, sum2 float64
	roi := 64
	if roi > rows {
		roi = rows
	}
	for i := 0; i < roi; i++ {
		idx := i*cols + i
		e.Read64(0, s.image, uint64(idx))
		sum += s.img[idx]
		sum2 += s.img[idx] * s.img[idx]
		e.Compute(0, 3)
	}
	mean := sum / float64(roi)
	variance := sum2/float64(roi) - mean*mean
	q0sqr := variance / (mean*mean + 1e-12)

	// Pass 1: diffusion coefficient from the 4-neighbour gradient.
	for tid := 0; tid < threads; tid++ {
		lo, hi := span(rows, threads, tid)
		for i := lo; i < hi; i++ {
			for j := 0; j < cols; j++ {
				idx := i*cols + j
				up := clampIdx(i-1, rows)*cols + j
				down := clampIdx(i+1, rows)*cols + j
				left := i*cols + clampIdx(j-1, cols)
				right := i*cols + clampIdx(j+1, cols)
				e.Read64(tid, s.image, uint64(idx))
				e.Read64(tid, s.image, uint64(up))
				e.Read64(tid, s.image, uint64(down))
				e.Read64(tid, s.image, uint64(left))
				e.Read64(tid, s.image, uint64(right))
				v := s.img[idx] + 1e-12
				dN := s.img[up] - s.img[idx]
				dS := s.img[down] - s.img[idx]
				dW := s.img[left] - s.img[idx]
				dE := s.img[right] - s.img[idx]
				g2 := (dN*dN + dS*dS + dW*dW + dE*dE) / (v * v)
				l := (dN + dS + dW + dE) / v
				num := 0.5*g2 - (1.0/16.0)*l*l
				den := 1 + 0.25*l
				qsqr := num / (den*den + 1e-12)
				cc := 1.0 / (1.0 + (qsqr-q0sqr)/(q0sqr*(1+q0sqr)+1e-12))
				cc = math.Max(0, math.Min(1, cc))
				s.c[idx] = cc
				e.Write64(tid, s.coeff, uint64(idx), math.Float64bits(cc))
				e.Compute(tid, 18)
			}
		}
	}
	// Pass 2: divergence update rewrites the image.
	for tid := 0; tid < threads; tid++ {
		lo, hi := span(rows, threads, tid)
		for i := lo; i < hi; i++ {
			for j := 0; j < cols; j++ {
				idx := i*cols + j
				down := clampIdx(i+1, rows)*cols + j
				right := i*cols + clampIdx(j+1, cols)
				e.Read64(tid, s.coeff, uint64(idx))
				e.Read64(tid, s.coeff, uint64(down))
				e.Read64(tid, s.coeff, uint64(right))
				e.Read64(tid, s.image, uint64(idx))
				div := s.c[down] + s.c[right] + 2*s.c[idx]
				s.img[idx] += 0.25 * s.lambda * div * (s.img[idx] * 0.01)
				e.Write64(tid, s.image, uint64(idx), math.Float64bits(s.img[idx]))
				e.Compute(tid, 8)
			}
		}
	}
}

// clampIdx clamps a stencil neighbour index to the grid.
func clampIdx(i, n int) int {
	if i < 0 {
		return 0
	}
	if i >= n {
		return n - 1
	}
	return i
}
