package workload

import "math"

// FMM is the Parsec fmm (fast multipole method) benchmark, modelled as a
// Barnes-Hut-style N-body step: a spatial tree is rebuilt every iteration
// and every body traverses it from the root. The tree's top levels are
// hammered by all threads concurrently — the concentrated row-activation
// pattern that makes fmm(par) the most crash-prone workload in the paper's
// Fig. 9a — while the body array is streamed (capacity traffic).
type FMM struct {
	nBodies int
	levels  int

	bodies *Array // x, y, mass, acc per body (capacity)
	tree   *Array // implicit quadtree nodes: mass + cx + cy + count (resident)

	bx, by, bm, ba []float64
	tm, tx, ty     []float64
	theta          float64
}

// NewFMM returns the benchmark.
func NewFMM() *FMM { return &FMM{theta: 0.7} }

// Name implements Kernel.
func (f *FMM) Name() string { return "fmm" }

// treeNodes returns the node count of a complete 4-ary tree with l levels.
func treeNodes(l int) int {
	n := 0
	for i, w := 0, 1; i < l; i, w = i+1, w*4 {
		n += w
	}
	return n
}

// Setup implements Kernel.
func (f *FMM) Setup(e *Engine, size Size) {
	switch size {
	case SizeTest:
		f.nBodies, f.levels = 1<<14, 5
	default:
		f.nBodies, f.levels = 1<<18, 7 // 1M-word body array, 5461-node tree
	}
	nodes := treeNodes(f.levels)
	f.bodies = e.Alloc("bodies", uint64(f.nBodies*4), Capacity)
	f.tree = e.Alloc("tree", uint64(nodes*4), Resident)

	f.bx = make([]float64, f.nBodies)
	f.by = make([]float64, f.nBodies)
	f.bm = make([]float64, f.nBodies)
	f.ba = make([]float64, f.nBodies)
	f.tm = make([]float64, nodes)
	f.tx = make([]float64, nodes)
	f.ty = make([]float64, nodes)

	rng := e.RNG()
	for i := 0; i < f.nBodies; i++ {
		f.bx[i] = rng.Float64()
		f.by[i] = rng.Float64()
		f.bm[i] = 0.5 + rng.Float64()
		if i%2 == 0 {
			e.Write64(i%e.Threads(), f.bodies, uint64(i*4), math.Float64bits(f.bx[i]))
			e.Write64(i%e.Threads(), f.bodies, uint64(i*4+1), math.Float64bits(f.by[i]))
		}
	}
}

// cellOf returns the node index of the quadtree cell containing (x,y) at
// the given level (level 0 is the root).
func cellOf(x, y float64, level int) int {
	// Offset of the level in the implicit layout plus the Morton index.
	off := treeNodes(level)
	side := 1 << level
	cx := int(x * float64(side))
	cy := int(y * float64(side))
	if cx >= side {
		cx = side - 1
	}
	if cy >= side {
		cy = side - 1
	}
	return off + cy*side + cx
}

// RunIter implements Kernel: rebuild the tree bottom-up, then compute
// far-field accelerations with a theta-criterion traversal.
func (f *FMM) RunIter(e *Engine) {
	threads := e.Threads()
	nodes := treeNodes(f.levels)

	// Clear tree accumulators (resident; cheap).
	for n := 0; n < nodes; n++ {
		f.tm[n], f.tx[n], f.ty[n] = 0, 0, 0
		if n%4 == 0 {
			e.Write64(0, f.tree, uint64(n*4), 0)
		}
	}
	// Insert bodies into leaf cells (every thread funnels into the tree:
	// the leaf level is wide, upper levels are shared and hot).
	for tid := 0; tid < threads; tid++ {
		lo, hi := span(f.nBodies, threads, tid)
		for i := lo; i < hi; i++ {
			e.Read64(tid, f.bodies, uint64(i*4))
			e.Read64(tid, f.bodies, uint64(i*4+1))
			leaf := cellOf(f.bx[i], f.by[i], f.levels-1)
			f.tm[leaf] += f.bm[i]
			f.tx[leaf] += f.bx[i] * f.bm[i]
			f.ty[leaf] += f.by[i] * f.bm[i]
			e.Read64(tid, f.tree, uint64(leaf*4))
			e.Write64(tid, f.tree, uint64(leaf*4), math.Float64bits(f.tm[leaf]))
			e.Compute(tid, 8)
		}
	}
	// Upward pass: aggregate each level into its parent.
	for level := f.levels - 1; level > 0; level-- {
		side := 1 << level
		off := treeNodes(level)
		pOff := treeNodes(level - 1)
		for cy := 0; cy < side; cy++ {
			for cx := 0; cx < side; cx++ {
				n := off + cy*side + cx
				p := pOff + (cy/2)*(side/2) + cx/2
				f.tm[p] += f.tm[n]
				f.tx[p] += f.tx[n]
				f.ty[p] += f.ty[n]
				e.Read64(0, f.tree, uint64(n*4))
				e.Write64(0, f.tree, uint64(p*4), math.Float64bits(f.tm[p]))
				e.Compute(0, 4)
			}
		}
	}
	// Force pass: the near field dominates — each body interacts with a
	// scattered set of neighbour bodies (random access over the body
	// array drives a high row-activation rate), plus a handful of
	// far-field cells from the shared tree top.
	for tid := 0; tid < threads; tid++ {
		lo, hi := span(f.nBodies, threads, tid)
		for i := lo; i < hi; i++ {
			e.Read64(tid, f.bodies, uint64(i*4))
			e.Read64(tid, f.bodies, uint64(i*4+1))
			acc := 0.0
			// Near field: 12 neighbours from the leaf cell's interaction
			// list. Bodies are stored in space-filling order, so the
			// interaction list is memory-local (±128 slots), with an
			// occasional far partner from an adjacent tree branch.
			h := uint64(i) * 0x9E3779B97F4A7C15
			for k := 0; k < 12; k++ {
				h ^= h >> 29
				h *= 0xBF58476D1CE4E5B9
				var j int
				if k == 0 && i%16 == 0 {
					j = int(h % uint64(f.nBodies)) // far partner
				} else {
					off := int(h%257) - 128
					j = i + off
					if j < 0 {
						j = -j
					}
					if j >= f.nBodies {
						j = 2*f.nBodies - 2 - j
					}
				}
				e.Read64(tid, f.bodies, uint64(j*4))
				e.Read64(tid, f.bodies, uint64(j*4+1))
				dx := f.bx[i] - f.bx[j]
				dy := f.by[i] - f.by[j]
				r2 := dx*dx + dy*dy + 1e-6
				acc += f.bm[j] / r2
				e.Compute(tid, 9)
			}
			// Far field: the body's cells on the top two levels.
			for level := 0; level < 2 && level < f.levels-1; level++ {
				n := cellOf(f.bx[i], f.by[i], level)
				e.Read64(tid, f.tree, uint64(n*4))
				dx := f.bx[i] - f.tx[n]/(f.tm[n]+1e-9)
				dy := f.by[i] - f.ty[n]/(f.tm[n]+1e-9)
				r2 := dx*dx + dy*dy + 1e-6
				acc += f.tm[n] / r2
				e.Compute(tid, 9)
			}
			f.ba[i] = acc
			e.Write64(tid, f.bodies, uint64(i*4+3), math.Float64bits(acc))
			e.Compute(tid, 2)
		}
	}
}
