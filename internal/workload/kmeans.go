package workload

import "math"

// KMeans is the Rodinia k-means clustering benchmark: points are streamed
// every iteration (capacity traffic), centroids are a small hot structure
// (resident). Membership assignments are small integers — a low-entropy
// data pattern.
type KMeans struct {
	n, k, dim int

	points     *Array // n x dim features (capacity)
	membership *Array // n cluster ids (capacity)
	centroids  *Array // k x dim (resident)
	accum      *Array // k x (dim+1) accumulators (resident)

	pts  []float64
	cent []float64
	memb []int
}

// NewKMeans returns the benchmark.
func NewKMeans() *KMeans { return &KMeans{} }

// Name implements Kernel.
func (k *KMeans) Name() string { return "kmeans" }

// Setup implements Kernel.
func (km *KMeans) Setup(e *Engine, size Size) {
	switch size {
	case SizeTest:
		km.n, km.k, km.dim = 1<<14, 4, 4
	default:
		km.n, km.k, km.dim = 1<<18, 16, 8 // 2M-word point set
	}
	km.points = e.Alloc("points", uint64(km.n*km.dim), Capacity)
	km.membership = e.Alloc("membership", uint64(km.n), Capacity)
	km.centroids = e.Alloc("centroids", uint64(km.k*km.dim), Resident)
	km.accum = e.Alloc("accum", uint64(km.k*(km.dim+1)), Resident)

	km.pts = make([]float64, km.n*km.dim)
	km.cent = make([]float64, km.k*km.dim)
	km.memb = make([]int, km.n)
	rng := e.RNG()
	for i := range km.pts {
		km.pts[i] = rng.Float64() * 100
		if i%4 == 0 {
			e.Write64(i%e.Threads(), km.points, uint64(i), math.Float64bits(km.pts[i]))
		}
	}
	for c := range km.cent {
		km.cent[c] = rng.Float64() * 100
		e.Write64(0, km.centroids, uint64(c), math.Float64bits(km.cent[c]))
	}
}

// RunIter implements Kernel: one outer iteration of the Rodinia kernel,
// which internally loops assignment + update until the membership deltas
// settle (three passes here).
func (km *KMeans) RunIter(e *Engine) {
	for pass := 0; pass < 3; pass++ {
		km.runPass(e)
	}
}

func (km *KMeans) runPass(e *Engine) {
	threads := e.Threads()
	// Per-thread private accumulators (the standard parallel k-means
	// optimization); only the final reduction touches the shared table.
	acc := make([]float64, threads*km.k*(km.dim+1))

	for tid := 0; tid < threads; tid++ {
		lo, hi := span(km.n, threads, tid)
		for i := lo; i < hi; i++ {
			// Load the point.
			for d := 0; d < km.dim; d++ {
				e.Read64(tid, km.points, uint64(i*km.dim+d))
			}
			// Distance to each centroid (centroids stay cache-hot).
			best, bestD := 0, math.Inf(1)
			for c := 0; c < km.k; c++ {
				dist := 0.0
				for d := 0; d < km.dim; d++ {
					e.Read64(tid, km.centroids, uint64(c*km.dim+d))
					diff := km.pts[i*km.dim+d] - km.cent[c*km.dim+d]
					dist += diff * diff
					e.Compute(tid, 2)
				}
				if dist < bestD {
					best, bestD = c, dist
				}
				e.Compute(tid, 1)
			}
			km.memb[i] = best
			e.Write64(tid, km.membership, uint64(i), uint64(best))
			base := tid*km.k*(km.dim+1) + best*(km.dim+1)
			for d := 0; d < km.dim; d++ {
				acc[base+d] += km.pts[i*km.dim+d]
			}
			acc[base+km.dim]++
			e.Compute(tid, km.dim+2)
		}
	}

	// Reduction and centroid update on thread 0.
	for c := 0; c < km.k; c++ {
		cnt := 0.0
		sums := make([]float64, km.dim)
		for t := 0; t < threads; t++ {
			base := t*km.k*(km.dim+1) + c*(km.dim+1)
			for d := 0; d < km.dim; d++ {
				sums[d] += acc[base+d]
			}
			cnt += acc[base+km.dim]
			e.Read64(0, km.accum, uint64(c*(km.dim+1)))
			e.Compute(0, km.dim+1)
		}
		if cnt > 0 {
			for d := 0; d < km.dim; d++ {
				km.cent[c*km.dim+d] = sums[d] / cnt
				e.Write64(0, km.centroids, uint64(c*km.dim+d),
					math.Float64bits(km.cent[c*km.dim+d]))
			}
		}
	}
}
