package workload

import (
	"math"
	"testing"
)

// runKernel executes a kernel at test size and returns the engine.
func runKernel(t *testing.T, label string, iters int) *Engine {
	t.Helper()
	spec, err := FindSpec(label)
	if err != nil {
		t.Fatal(err)
	}
	return Execute(spec, SizeTest, iters, 99)
}

func TestAllKernelsRun(t *testing.T) {
	for _, spec := range ExtendedSet() {
		spec := spec
		t.Run(spec.Label, func(t *testing.T) {
			e := Execute(spec, SizeTest, 2, 7)
			if e.Instructions() == 0 {
				t.Fatal("no instructions retired")
			}
			if e.Sys.TotalMemAccesses() == 0 {
				t.Fatal("no memory accesses")
			}
			if len(e.Arrays()) == 0 {
				t.Fatal("no allocations")
			}
			if e.Sys.WallSeconds() <= 0 {
				t.Fatal("no simulated time elapsed")
			}
		})
	}
}

func TestPaperSetHas14Benchmarks(t *testing.T) {
	if n := len(PaperSet()); n != 14 {
		t.Fatalf("paper set has %d entries, want 14", n)
	}
	if n := len(ExtendedSet()); n != 17 {
		t.Fatalf("extended set has %d entries, want 17", n)
	}
}

func TestFindSpecUnknown(t *testing.T) {
	if _, err := FindSpec("no-such-benchmark"); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}

func TestNWComputesAlignment(t *testing.T) {
	// Verify nw really runs Needleman-Wunsch: identical sequences score
	// n * match (5 per match with our toy matrix).
	e := NewEngine(1, 5)
	nw := NewNW()
	nw.Setup(e, SizeTest)
	// Force identical sequences and re-run.
	copy(nw.s2, nw.s1)
	nw.RunIter(e)
	want := int32(nw.n * 5)
	if nw.Score() != want {
		t.Fatalf("self-alignment score = %d, want %d", nw.Score(), want)
	}
}

func TestPageRankConverges(t *testing.T) {
	e := NewEngine(2, 5)
	pr := NewPageRank()
	pr.Setup(e, SizeTest)
	for i := 0; i < 10; i++ {
		pr.RunIter(e)
	}
	sum := 0.0
	for _, r := range pr.Ranks() {
		if r < 0 {
			t.Fatal("negative rank")
		}
		sum += r
	}
	// Push-style pagerank with damping 0.85 keeps total mass near 1.
	if math.Abs(sum-1) > 0.2 {
		t.Fatalf("rank mass = %v, want ~1", sum)
	}
}

func TestBFSReachesVertices(t *testing.T) {
	e := NewEngine(2, 5)
	b := NewBFS()
	b.Setup(e, SizeTest)
	b.RunIter(e)
	if b.Reached < 10 {
		t.Fatalf("BFS reached only %d vertices", b.Reached)
	}
}

func TestMemcachedSelfRefreshes(t *testing.T) {
	// The hot slab's row reuse must be far shorter than a streaming
	// kernel's: that is the mechanism behind memcached's low WER.
	mc := runKernel(t, "memcached", 8)
	hot := mc.ArrayByName("hot_slab")
	if hot == nil {
		t.Fatal("no hot slab")
	}
	bp := runKernel(t, "backprop(par)", 8)
	weights := bp.ArrayByName("weights")
	// Compare row gaps normalized by total instructions (the engines
	// retire different instruction counts).
	mcGap := hot.MeanRowGapInstr() / float64(mc.Instructions())
	bpGap := weights.MeanRowGapInstr() / float64(bp.Instructions())
	if mcGap*1.5 > bpGap {
		t.Fatalf("memcached hot rows (%.3g) not refreshed faster than backprop weights (%.3g)",
			mcGap, bpGap)
	}
}

func TestNWLowEntropyVsRandomHigh(t *testing.T) {
	nw := runKernel(t, "nw", 2)
	rnd := runKernel(t, "random", 1)
	if nw.HDP() >= rnd.HDP() {
		t.Fatalf("HDP(nw)=%v !< HDP(random)=%v", nw.HDP(), rnd.HDP())
	}
	if rnd.HDP() < 10 {
		t.Fatalf("random micro-benchmark entropy = %v, want near max", rnd.HDP())
	}
}

func TestParallelFasterWallClock(t *testing.T) {
	// 8 threads must finish the same work in less wall time than 1.
	one := Execute(Spec{"srad", 1, func() Kernel { return NewSRAD() }}, SizeTest, 2, 3)
	eight := Execute(Spec{"srad", 8, func() Kernel { return NewSRAD() }}, SizeTest, 2, 3)
	if eight.Sys.WallSeconds() >= one.Sys.WallSeconds() {
		t.Fatalf("8-thread wall %.4g not faster than 1-thread %.4g",
			eight.Sys.WallSeconds(), one.Sys.WallSeconds())
	}
}

func TestLuleshVariantsDiffer(t *testing.T) {
	o2 := Execute(Spec{"lulesh(O2)", 8, func() Kernel { return NewLulesh("O2") }}, SizeTest, 2, 3)
	f := Execute(Spec{"lulesh(F)", 8, func() Kernel { return NewLulesh("F") }}, SizeTest, 2, 3)
	// Same memory work, fewer instructions: -F has a higher memory
	// access rate per cycle.
	rateO2 := float64(o2.Sys.DRAMAccesses()) / o2.Sys.WallSeconds()
	rateF := float64(f.Sys.DRAMAccesses()) / f.Sys.WallSeconds()
	if rateF <= rateO2 {
		t.Fatalf("lulesh(F) DRAM rate %.3g not above lulesh(O2) %.3g", rateF, rateO2)
	}
}

func TestRandomPatternIsIdleHeavy(t *testing.T) {
	rnd := runKernel(t, "random", 2)
	// Memory instructions must be a small share of total instructions.
	memShare := float64(rnd.Sys.TotalMemAccesses()) / float64(rnd.Instructions())
	if memShare > 0.35 {
		t.Fatalf("random micro-benchmark memory share = %v, want low", memShare)
	}
}

func TestMemcachedComputeHeavy(t *testing.T) {
	mc := runKernel(t, "memcached", 2)
	memShare := float64(mc.Sys.TotalMemAccesses()) / float64(mc.Instructions())
	if memShare > 0.25 {
		t.Fatalf("memcached memory-instruction share = %v, want low (protocol-bound)", memShare)
	}
}

func TestKernelFootprintsClassified(t *testing.T) {
	// Every kernel must declare at least one capacity region (the paper
	// scales every workload to 8 GiB).
	for _, spec := range ExtendedSet() {
		e := Execute(spec, SizeTest, 1, 3)
		hasCapacity := false
		for _, a := range e.Arrays() {
			if a.Class == Capacity {
				hasCapacity = true
			}
		}
		if !hasCapacity {
			t.Fatalf("%s has no capacity region", spec.Label)
		}
	}
}
