package workload

import (
	"math"

	"repro/internal/stats"
)

// csrGraph is a compressed-sparse-row graph over a synthetic power-law
// degree distribution (the shape of the web/social graphs the paper's
// Ligra/GraphGrind workloads process).
type csrGraph struct {
	n      int
	rowPtr []int32
	colIdx []int32
}

// buildPowerLawGraph generates a graph with Zipf-distributed target
// popularity, deterministic in the RNG stream.
func buildPowerLawGraph(rng *stats.RNG, n, avgDeg int) *csrGraph {
	z := stats.NewZipf(rng, 0.8, n)
	deg := make([]int32, n)
	targets := make([][]int32, n)
	for u := 0; u < n; u++ {
		d := 1 + rng.Intn(2*avgDeg-1) // mean ~avgDeg
		targets[u] = make([]int32, d)
		for k := 0; k < d; k++ {
			targets[u][k] = int32(z.Draw())
		}
		deg[u] = int32(d)
	}
	g := &csrGraph{n: n, rowPtr: make([]int32, n+1)}
	for u := 0; u < n; u++ {
		g.rowPtr[u+1] = g.rowPtr[u] + deg[u]
	}
	g.colIdx = make([]int32, g.rowPtr[n])
	for u := 0; u < n; u++ {
		copy(g.colIdx[g.rowPtr[u]:], targets[u])
	}
	return g
}

// graphBase holds the shared simulated arrays of the graph workloads.
type graphBase struct {
	g      *csrGraph
	rowPtr *Array // CSR offsets (capacity)
	colIdx *Array // CSR targets, streamed every iteration (capacity)
	vprop  *Array // per-vertex property, randomly accessed (capacity)
	vaux   *Array // second per-vertex property (capacity)
}

// setupGraph allocates and writes the graph structures.
func (gb *graphBase) setupGraph(e *Engine, size Size, avgDeg int) {
	n := 1 << 18 // 256k vertices, ~2M edges at avgDeg 8
	if size == SizeTest {
		n = 1 << 13
	}
	gb.g = buildPowerLawGraph(e.RNG().Split(), n, avgDeg)
	gb.rowPtr = e.Alloc("row_ptr", uint64(n+1), Capacity)
	gb.colIdx = e.Alloc("col_idx", uint64(len(gb.g.colIdx)), Capacity)
	gb.vprop = e.Alloc("vertex_prop", uint64(n), Capacity)
	gb.vaux = e.Alloc("vertex_aux", uint64(n), Capacity)
	for u := 0; u <= n; u += 4 {
		e.Write64(0, gb.rowPtr, uint64(u), uint64(gb.g.rowPtr[u]))
	}
	for i := 0; i < len(gb.g.colIdx); i += 4 {
		e.Write64(0, gb.colIdx, uint64(i), uint64(gb.g.colIdx[i]))
	}
}

// PageRank is the pagerank analytics workload: every iteration streams the
// edge array and scatters rank mass to randomly-ordered targets. The
// random vertex access keeps DRAM rows implicitly refreshed (short row
// reuse), which is why the analytics workloads sit low in Fig. 4.
type PageRank struct {
	graphBase
	rank, next []float64
}

// NewPageRank returns the benchmark.
func NewPageRank() *PageRank { return &PageRank{} }

// Name implements Kernel.
func (p *PageRank) Name() string { return "pagerank" }

// Setup implements Kernel.
func (p *PageRank) Setup(e *Engine, size Size) {
	p.setupGraph(e, size, 8)
	n := p.g.n
	p.rank = make([]float64, n)
	p.next = make([]float64, n)
	for u := 0; u < n; u++ {
		p.rank[u] = 1 / float64(n)
		if u%4 == 0 {
			e.Write64(0, p.vprop, uint64(u), math.Float64bits(p.rank[u]))
		}
	}
}

// RunIter implements Kernel: one push-style pagerank sweep.
func (p *PageRank) RunIter(e *Engine) {
	threads := e.Threads()
	n := p.g.n
	for i := range p.next {
		p.next[i] = 0.15 / float64(n)
	}
	for tid := 0; tid < threads; tid++ {
		lo, hi := span(n, threads, tid)
		for u := lo; u < hi; u++ {
			e.Read64(tid, p.rowPtr, uint64(u))
			e.Read64(tid, p.vprop, uint64(u))
			start, end := p.g.rowPtr[u], p.g.rowPtr[u+1]
			if end == start {
				continue
			}
			share := 0.85 * p.rank[u] / float64(end-start)
			for k := start; k < end; k++ {
				e.Read64(tid, p.colIdx, uint64(k))
				v := p.g.colIdx[k]
				// Scatter: random-access read-modify-write.
				e.Read64(tid, p.vaux, uint64(v))
				p.next[v] += share
				e.Write64(tid, p.vaux, uint64(v), math.Float64bits(p.next[v]))
				e.Compute(tid, 4)
			}
		}
	}
	copy(p.rank, p.next)
	for u := 0; u < n; u += 4 {
		e.Read64(0, p.vaux, uint64(u))
		e.Write64(0, p.vprop, uint64(u), math.Float64bits(p.rank[u]))
	}
}

// Ranks exposes the rank vector for correctness tests.
func (p *PageRank) Ranks() []float64 { return p.rank }

// BFS is the breadth-first-search analytics workload (Ligra-style
// level-synchronous traversal from a set of sources).
type BFS struct {
	graphBase
	dist    []int32
	sources []int
	// Reached counts visited vertices in the last run (for tests).
	Reached int
}

// NewBFS returns the benchmark.
func NewBFS() *BFS { return &BFS{} }

// Name implements Kernel.
func (b *BFS) Name() string { return "bfs" }

// Setup implements Kernel.
func (b *BFS) Setup(e *Engine, size Size) {
	b.setupGraph(e, size, 8)
	b.dist = make([]int32, b.g.n)
	rng := e.RNG()
	for i := 0; i < 4; i++ {
		b.sources = append(b.sources, rng.Intn(b.g.n))
	}
}

// RunIter implements Kernel: full BFS from each source.
func (b *BFS) RunIter(e *Engine) {
	threads := e.Threads()
	for _, src := range b.sources {
		for i := range b.dist {
			b.dist[i] = -1
		}
		b.dist[src] = 0
		frontier := []int32{int32(src)}
		level := int32(0)
		b.Reached = 1
		for len(frontier) > 0 {
			level++
			var next []int32
			// Frontier partitioned across threads.
			for tid := 0; tid < threads; tid++ {
				lo, hi := span(len(frontier), threads, tid)
				for _, u := range frontier[lo:hi] {
					e.Read64(tid, b.rowPtr, uint64(u))
					for k := b.g.rowPtr[u]; k < b.g.rowPtr[u+1]; k++ {
						e.Read64(tid, b.colIdx, uint64(k))
						v := b.g.colIdx[k]
						e.Read64(tid, b.vprop, uint64(v)) // dist check
						if b.dist[v] == -1 {
							b.dist[v] = level
							b.Reached++
							e.Write64(tid, b.vprop, uint64(v), uint64(uint32(level)))
							next = append(next, v)
						}
						e.Compute(tid, 3)
					}
				}
			}
			frontier = next
		}
	}
}

// BC is the betweenness-centrality workload: a forward BFS that counts
// shortest paths followed by a backward dependency accumulation
// (Brandes' algorithm), as in the Ligra/GraphGrind suites.
type BC struct {
	graphBase
	sigma []float64
	delta []float64
	dist  []int32
	bcVal []float64
}

// NewBC returns the benchmark.
func NewBC() *BC { return &BC{} }

// Name implements Kernel.
func (b *BC) Name() string { return "bc" }

// Setup implements Kernel.
func (b *BC) Setup(e *Engine, size Size) {
	b.setupGraph(e, size, 8)
	n := b.g.n
	b.sigma = make([]float64, n)
	b.delta = make([]float64, n)
	b.dist = make([]int32, n)
	b.bcVal = make([]float64, n)
}

// RunIter implements Kernel: one Brandes source iteration.
func (b *BC) RunIter(e *Engine) {
	threads := e.Threads()
	n := b.g.n
	src := e.RNG().Intn(n)
	for i := 0; i < n; i++ {
		b.dist[i] = -1
		b.sigma[i] = 0
		b.delta[i] = 0
	}
	b.dist[src] = 0
	b.sigma[src] = 1

	// Forward: level-synchronous shortest-path counting.
	var levels [][]int32
	frontier := []int32{int32(src)}
	levels = append(levels, frontier)
	depth := int32(0)
	for len(frontier) > 0 {
		depth++
		var next []int32
		for tid := 0; tid < threads; tid++ {
			lo, hi := span(len(frontier), threads, tid)
			for _, u := range frontier[lo:hi] {
				e.Read64(tid, b.rowPtr, uint64(u))
				for k := b.g.rowPtr[u]; k < b.g.rowPtr[u+1]; k++ {
					e.Read64(tid, b.colIdx, uint64(k))
					v := b.g.colIdx[k]
					e.Read64(tid, b.vprop, uint64(v))
					if b.dist[v] == -1 {
						b.dist[v] = depth
						next = append(next, v)
						e.Write64(tid, b.vprop, uint64(v), uint64(uint32(depth)))
					}
					if b.dist[v] == depth {
						b.sigma[v] += b.sigma[u]
						e.Write64(tid, b.vaux, uint64(v), math.Float64bits(b.sigma[v]))
					}
					e.Compute(tid, 4)
				}
			}
		}
		if len(next) > 0 {
			levels = append(levels, next)
		}
		frontier = next
	}
	// Backward: dependency accumulation from the deepest level.
	for l := len(levels) - 1; l > 0; l-- {
		for tid := 0; tid < threads; tid++ {
			lo, hi := span(len(levels[l]), threads, tid)
			for _, u := range levels[l][lo:hi] {
				e.Read64(tid, b.rowPtr, uint64(u))
				for k := b.g.rowPtr[u]; k < b.g.rowPtr[u+1]; k++ {
					e.Read64(tid, b.colIdx, uint64(k))
					v := b.g.colIdx[k]
					if b.dist[v] == b.dist[u]+1 && b.sigma[v] > 0 {
						e.Read64(tid, b.vaux, uint64(v))
						b.delta[u] += b.sigma[u] / b.sigma[v] * (1 + b.delta[v])
						e.Compute(tid, 5)
					}
				}
				b.bcVal[u] += b.delta[u]
				e.Write64(tid, b.vaux, uint64(u), math.Float64bits(b.delta[u]))
			}
		}
	}
}
