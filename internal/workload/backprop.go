package workload

import "math"

// Backprop is the Rodinia backpropagation benchmark: training of a
// two-layer perceptron with a very wide input layer. The dominant traffic
// is the repeated forward/backward sweep of the input-to-hidden weight
// matrix — a capacity-bound streaming pattern whose reuse interval is the
// epoch time, which is why backprop shows one of the highest WERs in the
// paper's campaigns (Figs. 2 and 4).
type Backprop struct {
	nIn, nHid int

	weights *Array // nIn x nHid input->hidden weights (capacity)
	deltaW  *Array // momentum/previous-update matrix (capacity)
	input   *Array // input layer activations (capacity)
	hidden  *Array // hidden layer state (resident)
	outW    *Array // hidden->output weights (resident)

	// host-side mirrors for the real computation
	w     []float64
	dw    []float64
	in    []float64
	hid   []float64
	wOut  []float64
	seeds uint64
}

// NewBackprop returns the benchmark.
func NewBackprop() *Backprop { return &Backprop{} }

// Name implements Kernel.
func (b *Backprop) Name() string { return "backprop" }

// Setup implements Kernel.
func (b *Backprop) Setup(e *Engine, size Size) {
	switch size {
	case SizeTest:
		b.nIn, b.nHid = 1<<14, 8
	default:
		b.nIn, b.nHid = 1<<16, 16 // 1M-word weight matrix, Rodinia's 64k x 16 layout
	}
	n := b.nIn * b.nHid
	b.weights = e.Alloc("weights", uint64(n), Capacity)
	b.deltaW = e.Alloc("delta_w", uint64(n), Capacity)
	b.input = e.Alloc("input", uint64(b.nIn), Capacity)
	b.hidden = e.Alloc("hidden", uint64(b.nHid)*2, Resident)
	b.outW = e.Alloc("out_w", uint64(b.nHid)*2, Resident)

	b.w = make([]float64, n)
	b.dw = make([]float64, n)
	b.in = make([]float64, b.nIn)
	b.hid = make([]float64, b.nHid)
	b.wOut = make([]float64, b.nHid)

	rng := e.RNG()
	for i := 0; i < b.nIn; i++ {
		b.in[i] = rng.Float64()
		e.Write64(0, b.input, uint64(i), math.Float64bits(b.in[i]))
	}
	for i := 0; i < n; i++ {
		b.w[i] = rng.NormFloat64() * 0.1
		// Initialization sweeps are part of the program, but sample the
		// simulated traffic to keep setup fast: every 4th word stands in
		// for its neighbours (the cache line is touched either way).
		if i%4 == 0 {
			e.Write64(i%e.Threads(), b.weights, uint64(i), math.Float64bits(b.w[i]))
		}
	}
	for j := 0; j < b.nHid; j++ {
		b.wOut[j] = rng.NormFloat64() * 0.1
		e.Write64(0, b.outW, uint64(j), math.Float64bits(b.wOut[j]))
	}
}

// RunIter implements Kernel: one training epoch (forward pass, output
// error, backward weight update) partitioned across threads by input index.
func (b *Backprop) RunIter(e *Engine) {
	threads := e.Threads()
	target := 0.75

	// Forward: hidden[j] = sigmoid(sum_i in[i] * w[i][j]), with
	// per-thread partial sums reduced at the end.
	partial := make([]float64, threads*b.nHid)
	for tid := 0; tid < threads; tid++ {
		lo, hi := span(b.nIn, threads, tid)
		for i := lo; i < hi; i++ {
			e.Read64(tid, b.input, uint64(i))
			base := i * b.nHid
			for j := 0; j < b.nHid; j++ {
				e.Read64(tid, b.weights, uint64(base+j))
				partial[tid*b.nHid+j] += b.in[i] * b.w[base+j]
				e.Compute(tid, 2) // multiply-add + index arithmetic
			}
		}
	}
	out := 0.0
	for j := 0; j < b.nHid; j++ {
		sum := 0.0
		for t := 0; t < threads; t++ {
			sum += partial[t*b.nHid+j]
		}
		b.hid[j] = 1 / (1 + math.Exp(-sum/float64(b.nIn)))
		e.Write64(0, b.hidden, uint64(j), math.Float64bits(b.hid[j]))
		e.Read64(0, b.outW, uint64(j))
		out += b.hid[j] * b.wOut[j]
		e.Compute(0, 6)
	}
	outErr := (target - out) * out * (1 - out)

	// Backward: hidden deltas, then the weight-matrix update sweep.
	for j := 0; j < b.nHid; j++ {
		b.wOut[j] += 0.3 * outErr * b.hid[j]
		e.Write64(0, b.outW, uint64(j), math.Float64bits(b.wOut[j]))
		e.Compute(0, 3)
	}
	for tid := 0; tid < threads; tid++ {
		lo, hi := span(b.nIn, threads, tid)
		for i := lo; i < hi; i++ {
			e.Read64(tid, b.input, uint64(i))
			base := i * b.nHid
			for j := 0; j < b.nHid; j++ {
				hidDelta := outErr * b.wOut[j] * b.hid[j] * (1 - b.hid[j])
				idx := uint64(base + j)
				e.Read64(tid, b.deltaW, idx)
				upd := 0.3*hidDelta*b.in[i] + 0.3*b.dw[base+j]
				b.dw[base+j] = upd
				b.w[base+j] += upd
				e.Write64(tid, b.deltaW, idx, math.Float64bits(upd))
				e.Write64(tid, b.weights, idx, math.Float64bits(b.w[base+j]))
				e.Compute(tid, 5)
			}
		}
	}
}

// span partitions n items across threads, returning thread tid's range.
func span(n, threads, tid int) (lo, hi int) {
	lo = n * tid / threads
	hi = n * (tid + 1) / threads
	return
}
