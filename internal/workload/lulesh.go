package workload

import "math"

// Lulesh is the proxy for the LLNL LULESH shock-hydrodynamics benchmark
// used in the paper's Fig. 13 compiler-optimization study. It iterates a
// Lagrange leapfrog over a 3D grid: several element-field arrays are swept
// and rewritten every time step.
//
// The Opt field selects the compiler-optimization variant: "O2" (default
// optimizations) or "F" (aggressive optimizations). The aggressive build
// retires fewer instructions per element update, so the same memory sweep
// happens at a higher per-cycle access rate — the implicit reliability
// effect the paper demonstrates (29 % WER difference between the builds).
type Lulesh struct {
	// Opt is "O2" or "F".
	Opt string

	nx int // grid edge length

	energy   *Array // element energy (capacity, rewritten per step)
	pressure *Array // element pressure (capacity, rewritten per step)
	volume   *Array // element relative volume (capacity, rewritten per step)
	force    *Array // nodal force accumulators (capacity, rewritten per step)

	e, p, v, f []float64
}

// NewLulesh returns the benchmark variant for the given optimization level.
func NewLulesh(opt string) *Lulesh { return &Lulesh{Opt: opt} }

// Name implements Kernel.
func (l *Lulesh) Name() string {
	return "lulesh(" + l.Opt + ")"
}

// computePerElement returns the instruction overhead per element update for
// the optimization variant: -F eliminates redundant loads, fuses loops and
// vectorizes, retiring ~60 % fewer non-memory instructions.
func (l *Lulesh) computePerElement() int {
	if l.Opt == "F" {
		return 10
	}
	return 26
}

// Setup implements Kernel.
func (l *Lulesh) Setup(e *Engine, size Size) {
	switch size {
	case SizeTest:
		l.nx = 40
	default:
		l.nx = 96 // ~885k elements, 3.5M words over four fields
	}
	n := l.nx * l.nx * l.nx
	l.energy = e.Alloc("energy", uint64(n), Capacity)
	l.pressure = e.Alloc("pressure", uint64(n), Capacity)
	l.volume = e.Alloc("volume", uint64(n), Capacity)
	l.force = e.Alloc("force", uint64(n), Capacity)
	l.e = make([]float64, n)
	l.p = make([]float64, n)
	l.v = make([]float64, n)
	l.f = make([]float64, n)
	rng := e.RNG()
	for i := 0; i < n; i++ {
		// Background state plus the Sedov blast energy deposit at the
		// origin: every field holds real floating-point data.
		l.v[i] = 0.9 + 0.2*rng.Float64()
		l.e[i] = 0.1 + rng.Float64()
		l.p[i] = 0.4 * l.e[i] / l.v[i]
		if i == 0 {
			l.e[0] = 3.948746e+7
		}
		if i%4 == 0 {
			e.Write64(i%e.Threads(), l.volume, uint64(i), math.Float64bits(l.v[i]))
			e.Write64(i%e.Threads(), l.energy, uint64(i), math.Float64bits(l.e[i]))
			e.Write64(i%e.Threads(), l.pressure, uint64(i), math.Float64bits(l.p[i]))
		}
	}
}

// RunIter implements Kernel: one leapfrog time step (force, energy,
// pressure sweeps), elements partitioned across threads.
func (l *Lulesh) RunIter(e *Engine) {
	threads := e.Threads()
	n := l.nx * l.nx * l.nx
	stride := l.nx * l.nx
	comp := l.computePerElement()

	// Phase 1: nodal forces from pressure gradient (7-point stencil).
	for tid := 0; tid < threads; tid++ {
		lo, hi := span(n, threads, tid)
		for i := lo; i < hi; i++ {
			e.Read64(tid, l.pressure, uint64(i))
			up := i - stride
			if up < 0 {
				up = i
			}
			down := i + stride
			if down >= n {
				down = i
			}
			e.Read64(tid, l.pressure, uint64(up))
			e.Read64(tid, l.pressure, uint64(down))
			l.f[i] = l.p[up] - 2*l.p[i] + l.p[down]
			e.Write64(tid, l.force, uint64(i), math.Float64bits(l.f[i]))
			e.Compute(tid, comp)
		}
	}
	// Phase 2: energy and volume update.
	for tid := 0; tid < threads; tid++ {
		lo, hi := span(n, threads, tid)
		for i := lo; i < hi; i++ {
			e.Read64(tid, l.force, uint64(i))
			e.Read64(tid, l.energy, uint64(i))
			e.Read64(tid, l.volume, uint64(i))
			l.v[i] = math.Max(0.2, l.v[i]+1e-7*l.f[i])
			l.e[i] = math.Max(0, l.e[i]*0.9999+1e-4*math.Abs(l.f[i]))
			e.Write64(tid, l.volume, uint64(i), math.Float64bits(l.v[i]))
			e.Write64(tid, l.energy, uint64(i), math.Float64bits(l.e[i]))
			e.Compute(tid, comp)
		}
	}
	// Phase 3: equation of state updates pressure from energy/volume.
	for tid := 0; tid < threads; tid++ {
		lo, hi := span(n, threads, tid)
		for i := lo; i < hi; i++ {
			e.Read64(tid, l.energy, uint64(i))
			e.Read64(tid, l.volume, uint64(i))
			l.p[i] = (1.4 - 1.0) * l.e[i] / l.v[i]
			e.Write64(tid, l.pressure, uint64(i), math.Float64bits(l.p[i]))
			e.Compute(tid, comp)
		}
	}
}
