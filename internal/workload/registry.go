package workload

import (
	"fmt"
	"math"
	"sort"
)

// Spec names one benchmark configuration of the paper's campaign: a kernel
// and a thread count. The paper's labels use "(par)" for the 8-thread
// variants of the compute kernels; the caching/analytics workloads run
// with 8 threads only (Section IV-C).
type Spec struct {
	Label   string
	Threads int
	New     func() Kernel
}

// PaperSet returns the 14 benchmark configurations characterized in
// Figs. 4, 7, 8 and 9.
func PaperSet() []Spec {
	return []Spec{
		{"backprop", 1, func() Kernel { return NewBackprop() }},
		{"backprop(par)", 8, func() Kernel { return NewBackprop() }},
		{"kmeans", 1, func() Kernel { return NewKMeans() }},
		{"kmeans(par)", 8, func() Kernel { return NewKMeans() }},
		{"nw", 1, func() Kernel { return NewNW() }},
		{"nw(par)", 8, func() Kernel { return NewNW() }},
		{"srad", 1, func() Kernel { return NewSRAD() }},
		{"srad(par)", 8, func() Kernel { return NewSRAD() }},
		{"fmm", 1, func() Kernel { return NewFMM() }},
		{"fmm(par)", 8, func() Kernel { return NewFMM() }},
		{"pagerank", 8, func() Kernel { return NewPageRank() }},
		{"bfs", 8, func() Kernel { return NewBFS() }},
		{"bc", 8, func() Kernel { return NewBC() }},
		{"memcached", 8, func() Kernel { return NewMemcached() }},
	}
}

// ExtendedSet returns PaperSet plus the Fig. 13 workloads: the two lulesh
// compiler-optimization variants and the random data-pattern
// micro-benchmark.
func ExtendedSet() []Spec {
	return append(PaperSet(),
		Spec{"lulesh(O2)", 1, func() Kernel { return NewLulesh("O2") }},
		Spec{"lulesh(F)", 1, func() Kernel { return NewLulesh("F") }},
		Spec{"random", 1, func() Kernel { return NewRandomPattern() }},
	)
}

// FindSpec returns the spec with the given label.
func FindSpec(label string) (Spec, error) {
	for _, s := range ExtendedSet() {
		if s.Label == label {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("workload: unknown benchmark %q", label)
}

// Labels lists the labels of a spec set in order.
func Labels(specs []Spec) []string {
	out := make([]string, len(specs))
	for i, s := range specs {
		out[i] = s.Label
	}
	return out
}

// Execute runs the kernel for the given number of outer iterations on a
// fresh engine and returns the engine with all measurements accumulated.
func Execute(spec Spec, size Size, iters int, seed uint64) *Engine {
	e := NewEngine(spec.Threads, seed)
	k := spec.New()
	k.Setup(e, size)
	for i := 0; i < iters; i++ {
		k.RunIter(e)
	}
	return e
}

// HDP computes the data-pattern entropy of the sampled written values in
// bits (paper Eq. 5), expressed on the paper's 32-bit-value scale: the
// 16-bit chunk entropy is doubled, capped at 32.
func (e *Engine) HDP() float64 {
	total := e.entropyN
	if total == 0 {
		return 0
	}
	// Sum in sorted order: map iteration order varies between runs and
	// float addition is not associative, so an unordered sum would make
	// HDP non-deterministic in its last bits.
	counts := make([]uint32, 0, len(e.entropy))
	for _, cnt := range e.entropy {
		counts = append(counts, cnt)
	}
	sort.Slice(counts, func(i, j int) bool { return counts[i] < counts[j] })
	h := 0.0
	for _, cnt := range counts {
		p := float64(cnt) / float64(total)
		h -= p * math.Log2(p)
	}
	if e.entropyOver > 0 {
		// Values past the histogram cap are all distinct in the worst
		// case: each contributes -1/N log2(1/N).
		p := 1 / float64(total)
		h -= float64(e.entropyOver) * p * math.Log2(p)
	}
	if h = 2 * h; h > 32 {
		h = 32
	}
	return h
}

// ArrayByName returns the named allocation, or nil.
func (e *Engine) ArrayByName(name string) *Array {
	for _, a := range e.arrays {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// MeanWordGapInstr returns the measured mean instruction distance between
// accesses to the same word of the array (the Direuse of paper Eq. 4),
// or 0 when no reuse was observed.
func (a *Array) MeanWordGapInstr() float64 {
	if a.gapN == 0 {
		return 0
	}
	return a.gapSum / float64(a.gapN)
}

// RowGapHistogram returns the log2-bucketed distribution of instruction
// distances between accesses to the same DRAM-row-sized block.
func (a *Array) RowGapHistogram() [48]uint64 {
	return a.rowHist
}

// MeanRowGapInstr returns the mean instruction distance between accesses
// to the same DRAM-row-sized block of the array (all gaps, bucketed).
func (a *Array) MeanRowGapInstr() float64 {
	var sum, n float64
	for b, cnt := range a.rowHist {
		if cnt == 0 {
			continue
		}
		sum += float64(cnt) * bucketMidInstr(b)
		n += float64(cnt)
	}
	if n == 0 {
		return 0
	}
	return sum / n
}

// bucketMidInstr returns the representative gap length of log2 bucket b.
func bucketMidInstr(b int) float64 {
	if b <= 0 {
		return 1
	}
	return 1.5 * math.Pow(2, float64(b-1))
}

// ReuseEvents returns the number of sampled reuse events observed (word
// accesses with a prior reference).
func (a *Array) ReuseEvents() uint64 { return a.gapN }

// Accesses returns the array's load+store instruction count.
func (a *Array) Accesses() uint64 { return a.reads + a.writes }

// DRAMAccesses returns the array's post-cache access count.
func (a *Array) DRAMAccesses() uint64 { return a.dramReads + a.dramWrites }

// Writes returns the array's store count.
func (a *Array) Writes() uint64 { return a.writes }

// BitOneFraction returns the fraction of 1 bits in the values written to
// the array (0.5 when nothing was sampled, the uninformative prior).
func (a *Array) BitOneFraction() float64 {
	if a.bitsSample == 0 {
		return 0.5
	}
	return float64(a.onesSample) / float64(a.bitsSample)
}

// SortedArrays returns the engine's allocations ordered by descending
// footprint (a stable report order).
func (e *Engine) SortedArrays() []*Array {
	out := append([]*Array(nil), e.arrays...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].words != out[j].words {
			return out[i].words > out[j].words
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// TotalWords sums the allocation sizes.
func (e *Engine) TotalWords() uint64 {
	var n uint64
	for _, a := range e.arrays {
		n += a.words
	}
	return n
}
