package workload

import (
	"testing"
)

func TestAllocLayout(t *testing.T) {
	e := NewEngine(1, 1)
	a := e.Alloc("a", 100, Capacity)
	b := e.Alloc("b", 100, Resident)
	if a.base == b.base {
		t.Fatal("allocations overlap")
	}
	if b.base < a.base+100*8 {
		t.Fatal("allocation b inside a")
	}
	if a.base%0x10000 != 0 && a.base < 1<<20 {
		t.Fatal("allocation below guard page")
	}
}

func TestAllocZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero-size alloc accepted")
		}
	}()
	NewEngine(1, 1).Alloc("z", 0, Capacity)
}

func TestNewEngineThreadBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("9 threads accepted")
		}
	}()
	NewEngine(9, 1)
}

func TestOutOfBoundsAccessPanics(t *testing.T) {
	e := NewEngine(1, 1)
	a := e.Alloc("a", 10, Capacity)
	defer func() {
		if recover() == nil {
			t.Fatal("OOB read accepted")
		}
	}()
	e.Read64(0, a, 10)
}

func TestReuseTracking(t *testing.T) {
	e := NewEngine(1, 1)
	a := e.Alloc("a", 1024, Capacity)
	// Two sweeps: sampled words see a gap of ~2*n instructions... the
	// second sweep accesses each word once, so the measured gap equals
	// the sweep length in instructions.
	for sweep := 0; sweep < 3; sweep++ {
		for i := uint64(0); i < 1024; i++ {
			e.Read64(0, a, i)
		}
	}
	gap := a.MeanWordGapInstr()
	if gap < 900 || gap > 1100 {
		t.Fatalf("word gap = %v, want ~1024 (one sweep)", gap)
	}
	rowGap := a.MeanRowGapInstr()
	if rowGap <= 0 || rowGap > gap+1 {
		t.Fatalf("row gap = %v, want <= word gap %v", rowGap, gap)
	}
}

func TestRowReuseShorterForRandomAccess(t *testing.T) {
	// Random accesses within an array touch each row far more often than
	// each word: the row gap must be much smaller than the word gap.
	e := NewEngine(1, 7)
	const words = 1 << 16
	a := e.Alloc("a", words, Capacity)
	rng := e.RNG()
	for i := 0; i < 1_000_000; i++ {
		e.Read64(0, a, uint64(rng.Intn(words)))
	}
	wordGap := a.MeanWordGapInstr()
	rowGap := a.MeanRowGapInstr()
	if rowGap*20 > wordGap {
		t.Fatalf("random access: row gap %v not << word gap %v", rowGap, wordGap)
	}
}

func TestBitOneFraction(t *testing.T) {
	e := NewEngine(1, 1)
	a := e.Alloc("ones", 4096, Capacity)
	for i := uint64(0); i < 4096; i++ {
		e.Write64(0, a, i, ^uint64(0))
	}
	if got := a.BitOneFraction(); got != 1 {
		t.Fatalf("all-ones fraction = %v", got)
	}
	b := e.Alloc("zeros", 4096, Capacity)
	for i := uint64(0); i < 4096; i++ {
		e.Write64(0, b, i, 0)
	}
	if got := b.BitOneFraction(); got != 0 {
		t.Fatalf("all-zeros fraction = %v", got)
	}
	c := e.Alloc("untouched", 16, Capacity)
	if got := c.BitOneFraction(); got != 0.5 {
		t.Fatalf("unwritten prior = %v, want 0.5", got)
	}
}

func TestHDPExtremes(t *testing.T) {
	// Constant data: ~0 bits. Random data: close to log2(samples).
	low := NewEngine(1, 1)
	a := low.Alloc("const", 1<<14, Capacity)
	for i := uint64(0); i < 1<<14; i++ {
		low.Write64(0, a, i, 0x4141414141414141)
	}
	if h := low.HDP(); h > 0.01 {
		t.Fatalf("constant-data HDP = %v, want ~0", h)
	}
	hi := NewEngine(1, 2)
	b := hi.Alloc("rand", 1<<16, Capacity)
	rng := hi.RNG()
	for i := uint64(0); i < 1<<16; i++ {
		hi.Write64(0, b, i, rng.Uint64())
	}
	if h := hi.HDP(); h < 10 {
		t.Fatalf("random-data HDP = %v, want high", h)
	}
	if h := hi.HDP(); h > 32 {
		t.Fatalf("HDP = %v exceeds 32 bits", h)
	}
}

func TestHDPOrdersPatterns(t *testing.T) {
	// ASCII text < random binary in entropy.
	text := NewEngine(1, 3)
	a := text.Alloc("text", 1<<14, Capacity)
	rng := text.RNG()
	for i := uint64(0); i < 1<<14; i++ {
		text.Write64(0, a, i, asciiWord(rng))
	}
	random := NewEngine(1, 4)
	b := random.Alloc("rand", 1<<14, Capacity)
	rng2 := random.RNG()
	for i := uint64(0); i < 1<<14; i++ {
		random.Write64(0, b, i, rng2.Uint64())
	}
	if text.HDP() >= random.HDP() {
		t.Fatalf("HDP(text)=%v !< HDP(random)=%v", text.HDP(), random.HDP())
	}
}

func TestDRAMAttributionPerArray(t *testing.T) {
	e := NewEngine(1, 1)
	big := e.Alloc("big", 1<<18, Capacity) // 2 MiB: misses in L1/L2
	for i := uint64(0); i < 1<<18; i++ {
		e.Read64(0, big, i)
	}
	if big.DRAMAccesses() == 0 {
		t.Fatal("streaming array produced no DRAM traffic")
	}
	// A tiny array re-read in a loop stays cached.
	small := e.Alloc("small", 64, Resident)
	for r := 0; r < 100; r++ {
		for i := uint64(0); i < 64; i++ {
			e.Read64(0, small, i)
		}
	}
	if float64(small.DRAMAccesses()) > 0.05*float64(small.Accesses()) {
		t.Fatalf("resident array leaked to DRAM: %d/%d",
			small.DRAMAccesses(), small.Accesses())
	}
}

func TestEngineDeterminism(t *testing.T) {
	run := func() (uint64, float64) {
		e := Execute(Spec{"nw", 2, func() Kernel { return NewNW() }}, SizeTest, 2, 42)
		return e.Instructions(), e.HDP()
	}
	i1, h1 := run()
	i2, h2 := run()
	if i1 != i2 || h1 != h2 {
		t.Fatal("identical executions diverged")
	}
}

func TestSortedArraysOrder(t *testing.T) {
	e := NewEngine(1, 1)
	e.Alloc("small", 10, Capacity)
	e.Alloc("large", 1000, Capacity)
	got := e.SortedArrays()
	if got[0].Name != "large" {
		t.Fatalf("sorted order wrong: %v first", got[0].Name)
	}
	if e.TotalWords() != 1010 {
		t.Fatalf("TotalWords = %d", e.TotalWords())
	}
}
