// Package workload implements the paper's benchmark set as real algorithms
// executing against the simulated memory hierarchy: the Rodinia/Parsec
// compute kernels (backprop, kmeans, nw, srad, fmm), the caching and
// analytics workloads (memcached, pagerank, bfs, bc), the lulesh proxy used
// in Fig. 13, and the random data-pattern micro-benchmark.
//
// Kernels run at reduced footprint (tens of MiB instead of 8 GiB) but with
// the real algorithm, so their access and data patterns — reuse structure,
// read/write mix, row locality, value distributions — are produced by the
// computation itself. The profiler then scales capacity-bound regions to
// the paper's 8 GiB allocation (see internal/profile).
package workload

import (
	"fmt"
	"math/bits"

	"repro/internal/memsys"
	"repro/internal/stats"
)

// ScaleClass describes how a data structure grows when the kernel's
// footprint is scaled from the simulated size to the paper's 8 GiB.
type ScaleClass int

const (
	// Capacity structures grow with the footprint (matrices, graphs,
	// key-value stores): their reuse intervals stretch proportionally.
	Capacity ScaleClass = iota
	// Resident structures keep their size (centroid tables, hot keys,
	// tree tops, accumulators): their reuse intervals stay fixed.
	Resident
)

// Size selects a kernel's working-set scale.
type Size int

const (
	// SizeTest is a tiny configuration for unit tests.
	SizeTest Size = iota
	// SizeProfile is the configuration used to build the paper dataset:
	// large enough that capacity structures dwarf the caches (as the
	// 8 GiB originals dwarf them), small enough to simulate in seconds.
	SizeProfile
)

// Kernel is one benchmark program.
type Kernel interface {
	// Name returns the paper's benchmark label.
	Name() string
	// Setup allocates and initializes the kernel's data structures.
	Setup(e *Engine, size Size)
	// RunIter executes one outer iteration of the algorithm.
	RunIter(e *Engine)
}

// reuseSampleShift subsamples words for reuse tracking (1 in 64).
const reuseSampleShift = 6

// rowShift converts a word index to a DRAM-row-sized block (1024 words).
const rowShift = 10

// Array is one simulated allocation; kernels address it by word index.
type Array struct {
	Name  string
	Class ScaleClass
	base  uint64 // byte address of word 0
	words uint64

	reads      uint64 // load instructions touching this array
	writes     uint64 // store instructions touching this array
	dramReads  uint64 // loads that reached DRAM
	dramWrites uint64 // stores that reached DRAM
	onesSample uint64 // sampled 1-bits of written values
	bitsSample uint64 // sampled total bits

	lastWord []int64 // per sampled word: global instruction of last access
	gapSum   float64
	gapN     uint64
	lastRow  []int64 // per row block: global instruction of last access
	// rowHist buckets row-gap lengths by log2(instructions): accesses to
	// an open row arrive in bursts, and only the long gaps between bursts
	// leave a row unrefreshed, so the profiler needs the gap
	// *distribution*, not its mean.
	rowHist [48]uint64
}

// Words returns the allocation size in 64-bit words.
func (a *Array) Words() uint64 { return a.words }

// Engine executes kernels on the memory-system simulator and collects the
// raw measurements the profiler needs.
type Engine struct {
	Sys     *memsys.System
	threads int
	rng     *stats.RNG
	arrays  []*Array
	nextVA  uint64
	instr   uint64 // global retired-instruction counter (all cores)

	entropy     map[uint32]uint32
	entropyN    uint64
	entropyOver uint64 // samples beyond the histogram cap (treated as unique)
}

// entropyCap bounds the value histogram; values past the cap are counted as
// singletons, which under-estimates nothing for high-entropy streams.
const entropyCap = 1 << 20

// NewEngine builds an engine for a run with the given thread count.
func NewEngine(threads int, seed uint64) *Engine {
	if threads < 1 || threads > memsys.NumCores {
		panic(fmt.Sprintf("workload: thread count %d outside 1..%d", threads, memsys.NumCores))
	}
	return &Engine{
		Sys:     memsys.NewSystem(),
		threads: threads,
		rng:     stats.NewRNG(seed),
		nextVA:  1 << 20, // leave a guard page at the bottom
		entropy: make(map[uint32]uint32),
	}
}

// Threads returns the configured worker count.
func (e *Engine) Threads() int { return e.threads }

// RNG exposes the engine's deterministic random stream for kernels that
// need input data or traffic randomness.
func (e *Engine) RNG() *stats.RNG { return e.rng }

// Arrays lists the kernel's allocations.
func (e *Engine) Arrays() []*Array { return e.arrays }

// Instructions returns the global retired-instruction count.
func (e *Engine) Instructions() uint64 { return e.instr }

// Alloc reserves a words-long array. Allocations are page-aligned and laid
// out sequentially in the simulated address space.
func (e *Engine) Alloc(name string, words uint64, class ScaleClass) *Array {
	if words == 0 {
		panic("workload: zero-size allocation " + name)
	}
	a := &Array{
		Name:     name,
		Class:    class,
		base:     e.nextVA,
		words:    words,
		lastWord: make([]int64, (words>>reuseSampleShift)+1),
		lastRow:  make([]int64, (words>>rowShift)+1),
	}
	for i := range a.lastWord {
		a.lastWord[i] = -1
	}
	for i := range a.lastRow {
		a.lastRow[i] = -1
	}
	// 64 KiB pages on the platform; align and pad so arrays do not share
	// DRAM rows.
	e.nextVA += (words*8 + 0xFFFF) &^ 0xFFFF
	e.arrays = append(e.arrays, a)
	return a
}

// track records reuse statistics for one access.
func (a *Array) track(idx uint64, instr uint64) {
	if idx&(1<<reuseSampleShift-1) == 0 {
		slot := idx >> reuseSampleShift
		if last := a.lastWord[slot]; last >= 0 {
			a.gapSum += float64(int64(instr) - last)
			a.gapN++
		}
		a.lastWord[slot] = int64(instr)
	}
	row := idx >> rowShift
	if last := a.lastRow[row]; last >= 0 {
		gap := uint64(int64(instr) - last)
		a.rowHist[bits.Len64(gap)]++
	}
	a.lastRow[row] = int64(instr)
}

// Read64 simulates a load of a[idx] on thread tid.
func (e *Engine) Read64(tid int, a *Array, idx uint64) {
	if idx >= a.words {
		panic(fmt.Sprintf("workload: %s read out of bounds: %d >= %d", a.Name, idx, a.words))
	}
	e.instr++
	a.reads++
	a.track(idx, e.instr)
	if e.Sys.Access(tid, a.base+idx*8, false) {
		a.dramReads++
	}
}

// Write64 simulates a store of value into a[idx] on thread tid. The stored
// bits feed the data-pattern statistics (bit density and HDP entropy).
func (e *Engine) Write64(tid int, a *Array, idx uint64, value uint64) {
	if idx >= a.words {
		panic(fmt.Sprintf("workload: %s write out of bounds: %d >= %d", a.Name, idx, a.words))
	}
	e.instr++
	a.writes++
	a.track(idx, e.instr)
	// Sample data-pattern statistics on 1/8 of writes. Entropy is
	// estimated on 16-bit chunks (Eq. 5's 32-bit histogram needs more
	// samples than a scaled-down run produces; the 16-bit estimate is
	// doubled to the 32-bit-equivalent in HDP).
	if e.instr&7 == 0 {
		a.onesSample += uint64(bits.OnesCount64(value))
		a.bitsSample += 64
		e.sampleEntropy(uint32(value & 0xFFFF))
		e.sampleEntropy(uint32(value >> 24 & 0xFFFF))
		e.sampleEntropy(uint32(value >> 48))
	}
	if e.Sys.Access(tid, a.base+idx*8, true) {
		a.dramWrites++
	}
}

// Compute charges n ALU/branch/address instructions to thread tid.
func (e *Engine) Compute(tid int, n int) {
	e.instr += uint64(n)
	e.Sys.Compute(tid, n)
}

// sampleEntropy records one written 32-bit value (paper Eq. 5 sampling).
func (e *Engine) sampleEntropy(v uint32) {
	e.entropyN++
	if len(e.entropy) >= entropyCap {
		if _, ok := e.entropy[v]; !ok {
			e.entropyOver++
			return
		}
	}
	e.entropy[v]++
}
