package workload

// RandomPattern is the random data-pattern micro-benchmark used for
// conventional retention-time profiling (paper Section II-C and Fig. 13):
// it fills memory with uniformly random data — the worst-case coupling
// pattern — then idles between slow verification scans. Its memory access
// rate is minimal (almost all time is spent waiting), so it exercises pure
// retention behaviour: maximal data-pattern stress, no implicit refresh,
// no disturbance.
type RandomPattern struct {
	words  uint64
	buf    *Array // the pattern buffer (capacity)
	filled bool
}

// NewRandomPattern returns the micro-benchmark.
func NewRandomPattern() *RandomPattern { return &RandomPattern{} }

// Name implements Kernel. The paper labels this workload "random".
func (r *RandomPattern) Name() string { return "random" }

// Setup implements Kernel.
func (r *RandomPattern) Setup(e *Engine, size Size) {
	switch size {
	case SizeTest:
		r.words = 1 << 17
	default:
		r.words = 1 << 21 // 2M-word pattern buffer
	}
	r.buf = e.Alloc("pattern", r.words, Capacity)
}

// RunIter implements Kernel: one write-wait-verify cycle. The wait is a
// pure-CPU delay loop (the real micro-benchmark sleeps; a polling loop
// models the same absence of memory traffic).
func (r *RandomPattern) RunIter(e *Engine) {
	rng := e.RNG()
	if !r.filled {
		// Initial fill with uniformly random words: maximum entropy.
		for i := uint64(0); i < r.words; i++ {
			e.Write64(0, r.buf, i, rng.Uint64())
		}
		r.filled = true
	}
	// Idle wait: the dominant phase of a retention test.
	e.Compute(0, int(r.words)*8)
	// Verification scan (reads only; errors would be checked here).
	for i := uint64(0); i < r.words; i++ {
		e.Read64(0, r.buf, i)
		e.Compute(0, 2)
	}
}
