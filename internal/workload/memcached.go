package workload

import "repro/internal/stats"

// Memcached models the memcached caching benchmark driven by a Zipf-skewed
// GET/SET mix (as in the CloudSuite/Palit setup the paper cites). The hot
// head of the key popularity distribution stays resident and is re-touched
// every few microseconds — the self-refreshing access pattern that gives
// memcached both the smallest DRAM reuse time (Table II: 0.09 s) and the
// lowest WER of the benchmark set. Much of the CPU time is protocol
// processing, so its memory-access-per-cycle rate is low.
type Memcached struct {
	hotItems  int
	coldItems int
	itemWords int

	index *Array // hash index (resident)
	hot   *Array // hot slab: Zipf head (resident)
	cold  *Array // cold slab: Zipf tail (capacity)

	zipf *zipfSplit
}

// zipfSplit draws a key and classifies it hot (head) or cold (tail).
type zipfSplit struct {
	hotCut int
	draw   func() int
}

// NewMemcached returns the benchmark.
func NewMemcached() *Memcached { return &Memcached{} }

// Name implements Kernel.
func (m *Memcached) Name() string { return "memcached" }

// Setup implements Kernel.
func (m *Memcached) Setup(e *Engine, size Size) {
	switch size {
	case SizeTest:
		m.hotItems, m.coldItems, m.itemWords = 1<<11, 1<<14, 8
	default:
		m.hotItems, m.coldItems, m.itemWords = 1<<15, 1<<16, 8 // 256k hot + 512k cold words
	}
	total := m.hotItems + m.coldItems
	m.index = e.Alloc("hash_index", uint64(total), Resident)
	m.hot = e.Alloc("hot_slab", uint64(m.hotItems*m.itemWords), Resident)
	m.cold = e.Alloc("cold_slab", uint64(m.coldItems*m.itemWords), Capacity)

	rng := e.RNG()
	z := stats.NewZipf(rng.Split(), 1.0, total)
	m.zipf = &zipfSplit{hotCut: m.hotItems, draw: z.Draw}

	// Populate the store: ASCII-ish values (moderate-low entropy, like
	// real cached objects).
	for i := 0; i < total; i++ {
		e.Write64(0, m.index, uint64(i), uint64(i)*0x9E37+1)
		arr, base := m.slot(i)
		for w := 0; w < m.itemWords; w += 2 {
			e.Write64(0, arr, base+uint64(w), asciiWord(rng))
		}
	}
}

// slot maps a key to its slab and word offset.
func (m *Memcached) slot(key int) (*Array, uint64) {
	if key < m.hotItems {
		return m.hot, uint64(key * m.itemWords)
	}
	return m.cold, uint64((key - m.hotItems) * m.itemWords)
}

// RunIter implements Kernel: a batch of GET/SET operations per thread.
// Each op pays protocol-processing compute (network stack, parsing), which
// keeps the per-cycle memory rate low.
func (m *Memcached) RunIter(e *Engine) {
	threads := e.Threads()
	opsPerThread := (m.hotItems + m.coldItems) / 8
	rng := e.RNG()
	for tid := 0; tid < threads; tid++ {
		for op := 0; op < opsPerThread; op++ {
			key := m.zipf.draw()
			// Hash-index lookup.
			e.Read64(tid, m.index, uint64(key))
			e.Compute(tid, 150) // network stack, request parsing, hashing
			arr, base := m.slot(key)
			if rng.Bool(0.1) {
				// SET: rewrite the item.
				for w := 0; w < m.itemWords; w++ {
					e.Write64(tid, arr, base+uint64(w), asciiWord(rng))
				}
				e.Write64(tid, m.index, uint64(key), uint64(key)*0x9E37+1)
			} else {
				// GET: read the item.
				for w := 0; w < m.itemWords; w++ {
					e.Read64(tid, arr, base+uint64(w))
				}
			}
			e.Compute(tid, 220) // response serialization, socket send
		}
	}
}

// asciiWord packs eight printable bytes into one word: the low-entropy
// value pattern of cached text objects.
func asciiWord(rng *stats.RNG) uint64 {
	var w uint64
	for b := 0; b < 8; b++ {
		w = w<<8 | uint64(0x61+rng.Intn(26))
	}
	return w
}
