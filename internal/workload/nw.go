package workload

// NW is the Rodinia Needleman-Wunsch benchmark: global sequence alignment
// by dynamic programming over an (N+1)^2 score matrix. Every cell is
// written once per kernel run and read three times by its down/right
// neighbours; the whole matrix is revisited only on the next run, giving nw
// the longest DRAM reuse time of the benchmark set (Table II: 10.93 s
// single-threaded). Scores are small integers — the lowest-entropy data
// pattern of the suite.
type NW struct {
	n       int
	penalty int

	seq1   *Array // first sequence per thread block (capacity)
	seq2   *Array // second sequence per thread block (capacity)
	matrix *Array // DP score matrix (capacity)
	rowBuf *Array // previous-row working buffer, one per thread (resident)

	s1, s2 []int8
	score  []int32
}

// NewNW returns the benchmark.
func NewNW() *NW { return &NW{penalty: 10} }

// Name implements Kernel.
func (n *NW) Name() string { return "nw" }

// blosum is a toy similarity score for the 4-letter alphabet.
func blosum(a, b int8) int32 {
	if a == b {
		return 5
	}
	return -3
}

// Setup implements Kernel.
func (nw *NW) Setup(e *Engine, size Size) {
	switch size {
	case SizeTest:
		nw.n = 256
	default:
		nw.n = 1400 // ~2M-word DP matrix
	}
	dim := nw.n + 1
	nw.seq1 = e.Alloc("seq1", uint64(nw.n), Capacity)
	nw.seq2 = e.Alloc("seq2", uint64(nw.n), Capacity)
	nw.matrix = e.Alloc("dp_matrix", uint64(dim*dim), Capacity)
	nw.rowBuf = e.Alloc("row_buf", uint64(dim*8), Resident)

	nw.s1 = make([]int8, nw.n)
	nw.s2 = make([]int8, nw.n)
	nw.score = make([]int32, dim*dim)
	rng := e.RNG()
	for i := 0; i < nw.n; i++ {
		nw.s1[i] = int8(rng.Intn(4))
		nw.s2[i] = int8(rng.Intn(4))
		e.Write64(0, nw.seq1, uint64(i), uint64(nw.s1[i]))
		e.Write64(0, nw.seq2, uint64(i), uint64(nw.s2[i]))
	}
	// Boundary conditions.
	for i := 0; i <= nw.n; i++ {
		nw.score[i*dim] = int32(-i * nw.penalty)
		nw.score[i] = int32(-i * nw.penalty)
		if i%4 == 0 {
			e.Write64(0, nw.matrix, uint64(i*dim), uint64(uint32(nw.score[i*dim])))
			e.Write64(0, nw.matrix, uint64(i), uint64(uint32(nw.score[i])))
		}
	}
}

// RunIter implements Kernel: one full alignment. Threads process
// independent horizontal bands in a coarse wavefront (the Rodinia blocked
// decomposition): each band row depends only on the previous row, which the
// previous band has already produced by the time the next band starts in
// this sequential simulation.
func (nw *NW) RunIter(e *Engine) {
	threads := e.Threads()
	dim := nw.n + 1
	for tid := 0; tid < threads; tid++ {
		lo, hi := span(nw.n, threads, tid)
		rowBase := uint64(tid * dim)
		for i := lo + 1; i <= hi; i++ {
			if threads > 1 {
				// Wavefront dependency: each band row waits for the
				// previous band's row to clear the block boundary. The
				// spin-wait costs a large fraction of the row time,
				// which is why nw scales poorly with threads.
				e.Compute(tid, 2*dim)
			}
			e.Read64(tid, nw.seq1, uint64(i-1))
			for j := 1; j <= nw.n; j++ {
				e.Read64(tid, nw.seq2, uint64(j-1))
				// The blocked Rodinia kernel keeps the previous row in
				// a per-thread working buffer: up/diag dependencies are
				// served from it, left stays in a register. Only the
				// final score of each cell streams to the matrix.
				diagIdx := uint64((i-1)*dim + (j - 1))
				upIdx := uint64((i-1)*dim + j)
				leftIdx := uint64(i*dim + (j - 1))
				e.Read64(tid, nw.rowBuf, rowBase+uint64(j-1))
				e.Read64(tid, nw.rowBuf, rowBase+uint64(j))
				diag := nw.score[diagIdx] + blosum(nw.s1[i-1], nw.s2[j-1])
				up := nw.score[upIdx] - int32(nw.penalty)
				left := nw.score[leftIdx] - int32(nw.penalty)
				best := diag
				if up > best {
					best = up
				}
				if left > best {
					best = left
				}
				nw.score[i*dim+j] = best
				e.Write64(tid, nw.rowBuf, rowBase+uint64(j), uint64(uint32(best)))
				e.Write64(tid, nw.matrix, uint64(i*dim+j), uint64(uint32(best)))
				e.Compute(tid, 6)
			}
		}
	}
}

// Score returns the final alignment score (used by tests to check the
// algorithm actually computes the alignment).
func (nw *NW) Score() int32 {
	dim := nw.n + 1
	return nw.score[nw.n*dim+nw.n]
}
