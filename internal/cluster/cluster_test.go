package cluster

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/fleet"
	"repro/internal/serve"
	"repro/internal/workload"
	"repro/internal/xgene"
)

// testDataset builds one small campaign corpus shared by the e2e tests,
// the same fixture shape internal/serve and internal/fleet use.
var (
	dsOnce sync.Once
	dsVal  *core.Dataset
	dsErr  error
)

func testDataset(t testing.TB) *core.Dataset {
	t.Helper()
	dsOnce.Do(func() {
		var specs []workload.Spec
		for _, l := range []string{"backprop", "random"} {
			spec, err := workload.FindSpec(l)
			if err != nil {
				dsErr = err
				return
			}
			specs = append(specs, spec)
		}
		profiles, err := core.BuildProfiles(specs, workload.SizeTest, 3, 0)
		if err != nil {
			dsErr = err
			return
		}
		srv := xgene.MustNewServer(xgene.Config{Scale: 32})
		dsVal, dsErr = core.BuildDataset(srv, profiles, specs, core.CampaignOptions{Reps: 2})
	})
	if dsErr != nil {
		t.Fatal(dsErr)
	}
	return dsVal
}

// perturbedDataset deep-copies the corpus and nudges one above-floor WER
// row: same workloads, different artifact fingerprint — the shape of a
// half-rolled-out artifact update.
func perturbedDataset(t *testing.T, ds *core.Dataset) *core.Dataset {
	t.Helper()
	out := &core.Dataset{Build: ds.Build, PUE: ds.PUE, Profiles: ds.Profiles}
	out.WER = append([]core.WERSample(nil), ds.WER...)
	for i := range out.WER {
		if out.WER[i].WER > core.WERFloor {
			out.WER[i].WER *= 1.5
			return out
		}
	}
	t.Fatal("no above-floor WER row to perturb")
	return nil
}

// testBackend is one dramserve behind an httptest listener.
type testBackend struct {
	srv *serve.Server
	ts  *httptest.Server
	// predictDelayMS, when set, stalls /v2/predict handling — an
	// artificially slow shard for the hedging test.
	predictDelayMS atomic.Int64
}

func newBackend(t *testing.T, ds *core.Dataset, artifactPath string) *testBackend {
	t.Helper()
	b := &testBackend{}
	b.srv = serve.New(ds, serve.Options{Quick: true, Seed: 3, Workers: 2, ArtifactPath: artifactPath})
	t.Cleanup(func() { b.srv.Close() })
	h := b.srv.Handler()
	b.ts = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if d := b.predictDelayMS.Load(); d > 0 && r.URL.Path == "/v2/predict" {
			select {
			case <-time.After(time.Duration(d) * time.Millisecond):
			case <-r.Context().Done():
				return
			}
		}
		h.ServeHTTP(w, r)
	}))
	t.Cleanup(b.ts.Close)
	return b
}

func newTestRouter(t *testing.T, opts Options) (*Router, *httptest.Server) {
	t.Helper()
	rt, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { rt.Close() })
	ts := httptest.NewServer(rt.Handler())
	t.Cleanup(ts.Close)
	return rt, ts
}

func postPredict(t testing.TB, base, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(base+"/v2/predict", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

func getHealth(t testing.TB, base string) (*http.Response, HealthResponse) {
	t.Helper()
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var hr HealthResponse
	if err := json.NewDecoder(resp.Body).Decode(&hr); err != nil {
		t.Fatal(err)
	}
	return resp, hr
}

type wireError struct {
	Error struct {
		Code    string `json:"code"`
		Field   string `json:"field"`
		Message string `json:"message"`
	} `json:"error"`
}

func decodeErr(t testing.TB, data []byte) wireError {
	t.Helper()
	var we wireError
	if err := json.Unmarshal(data, &we); err != nil {
		t.Fatalf("error body %s: %v", data, err)
	}
	return we
}

// TestRouterEndToEnd: two backends on the same artifact behind a router
// answer /v2 exactly like one backend would — same predictions, same
// fingerprint, same structured errors — and the router's own /healthz and
// /metrics report an agreeing pool.
func TestRouterEndToEnd(t *testing.T) {
	ds := testDataset(t)
	bA := newBackend(t, ds, "")
	bB := newBackend(t, ds, "")
	rt, rts := newTestRouter(t, Options{
		Backends:      []string{bA.ts.URL, bB.ts.URL},
		ProbeInterval: -1, // probed by hand for determinism
		Logf:          t.Logf,
	})
	rt.probeAll()

	_, wantFP := bA.srv.Identity()
	if resp, hr := getHealth(t, rts.URL); resp.StatusCode != http.StatusOK ||
		hr.Status != "ok" || hr.Healthy != 2 || hr.Fingerprint != wantFP || hr.FingerprintSkew {
		t.Fatalf("healthz = %d %+v, want ok/2 backends on %s", resp.StatusCode, hr, wantFP)
	}

	// A multi-target query through the router answers bit-identically to
	// the same query against a backend directly: split-and-merge is
	// invisible to the client.
	const body = `{"workload":"backprop","trefp":2.283,"temp_c":50}`
	resp, data := postPredict(t, rts.URL, body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("predict via router = %d: %s", resp.StatusCode, data)
	}
	var routed serve.PredictResponseV2
	if err := json.Unmarshal(data, &routed); err != nil {
		t.Fatal(err)
	}
	if routed.Fingerprint != wantFP {
		t.Fatalf("routed fingerprint %s, want %s", routed.Fingerprint, wantFP)
	}
	dresp, ddata := postPredict(t, bA.ts.URL, body)
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("predict direct = %d: %s", dresp.StatusCode, ddata)
	}
	var direct serve.PredictResponseV2
	if err := json.Unmarshal(ddata, &direct); err != nil {
		t.Fatal(err)
	}
	if len(routed.Predictions) != 2 {
		t.Fatalf("routed predictions = %v, want both targets", routed.Predictions)
	}
	for name, want := range direct.Predictions {
		got, ok := routed.Predictions[name]
		if !ok || got.Value != want.Value {
			t.Fatalf("prediction %s: router %+v, direct %+v", name, got, want)
		}
	}

	// A batch fans out per item and reassembles in order.
	batch := `{"queries":[` + body + `,{"workload":"random","trefp":1.1,"temp_c":60,"targets":["wer"]}]}`
	resp, data = postPredict(t, rts.URL, batch)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch via router = %d: %s", resp.StatusCode, data)
	}
	var br serve.PredictBatchResponseV2
	if err := json.Unmarshal(data, &br); err != nil {
		t.Fatal(err)
	}
	if len(br.Results) != 2 || br.Results[0].Workload != "backprop" || br.Results[1].Workload != "random" {
		t.Fatalf("batch results out of order: %s", data)
	}
	if br.Fingerprint != wantFP {
		t.Fatalf("batch fingerprint %s, want %s", br.Fingerprint, wantFP)
	}

	// Backend validation errors pass through verbatim — field, code and
	// status — and are never retried onto another backend.
	resp, data = postPredict(t, rts.URL, `{"workload":"nope","trefp":1,"temp_c":50}`)
	if we := decodeErr(t, data); resp.StatusCode != http.StatusNotFound ||
		we.Error.Code != "unknown_workload" || we.Error.Field != "workload" {
		t.Fatalf("unknown workload via router = %d %s", resp.StatusCode, data)
	}
	if got := rt.metrics.retries.value(); got != 0 {
		t.Fatalf("a 4xx pass-through burned %d retries", got)
	}

	// Batch errors carry the dramserve "query %d:" locator.
	resp, data = postPredict(t, rts.URL, `{"queries":[`+body+`,{"workload":"nope","trefp":1,"temp_c":50}]}`)
	if we := decodeErr(t, data); resp.StatusCode != http.StatusNotFound ||
		!strings.HasPrefix(we.Error.Message, "query 1: ") {
		t.Fatalf("batch error via router = %d %s", resp.StatusCode, data)
	}

	// /metrics exposes the routing counters in Prometheus text format.
	mresp, err := http.Get(rts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mdata, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	for _, want := range []string{
		`dramrouter_requests_total{endpoint="/v2/predict",code="200"}`,
		"dramrouter_backends 2",
		"dramrouter_backends_healthy 2",
		"dramrouter_fingerprint_skew 0",
		"dramrouter_backend_up{backend=",
		"dramrouter_probes_total",
	} {
		if !strings.Contains(string(mdata), want) {
			t.Fatalf("/metrics missing %q:\n%s", want, mdata)
		}
	}
}

// TestRouterRequestContract: the router enforces dramserve's request
// hygiene itself — bad requests are rejected before any backend is
// contacted (the lone backend here is a dead address).
func TestRouterRequestContract(t *testing.T) {
	rt, rts := newTestRouter(t, Options{
		Backends:      []string{"127.0.0.1:9"}, // nothing listens here
		ProbeInterval: -1,
	})
	_ = rt

	resp, err := http.Get(rts.URL + "/v2/predict")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed || resp.Header.Get("Allow") != http.MethodPost {
		t.Fatalf("GET /v2/predict = %d Allow=%q", resp.StatusCode, resp.Header.Get("Allow"))
	}

	resp, err = http.Post(rts.URL+"/v2/predict", "text/plain", strings.NewReader("hi"))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnsupportedMediaType {
		t.Fatalf("text/plain POST = %d, want 415", resp.StatusCode)
	}

	for _, tc := range []struct {
		body, code string
		status     int
	}{
		{`{"workload":`, "malformed_body", http.StatusBadRequest},
		{`{"workload":"x","trefp":1,"temp_c":50} trailing`, "malformed_body", http.StatusBadRequest},
		{`{"bogus":1}`, "malformed_body", http.StatusBadRequest},
		{`{"queries":[]}`, "empty_batch", http.StatusBadRequest},
	} {
		resp, data := postPredict(t, rts.URL, tc.body)
		if we := decodeErr(t, data); resp.StatusCode != tc.status || we.Error.Code != tc.code {
			t.Fatalf("body %q = %d %s, want %d %s", tc.body, resp.StatusCode, data, tc.status, tc.code)
		}
	}

	big := `{"queries":[` + strings.Repeat(`{"workload":"x","trefp":1,"temp_c":5},`, maxBatch) +
		`{"workload":"x","trefp":1,"temp_c":5}]}`
	resp2, data := postPredict(t, rts.URL, big)
	if we := decodeErr(t, data); resp2.StatusCode != http.StatusBadRequest || we.Error.Code != "batch_too_large" {
		t.Fatalf("oversized batch = %d %s", resp2.StatusCode, data)
	}
}

// TestRouterProbeEjectionReadmission drives the pool-membership state
// machine with stub backends: FailAfter consecutive probe failures eject,
// the next good probe re-admits, and candidates() routes around the hole
// in between. Fingerprint skew between healthy stubs flips /healthz to 503.
func TestRouterProbeEjectionReadmission(t *testing.T) {
	type stub struct {
		ok atomic.Bool
		fp atomic.Value
	}
	mkStub := func(fp string) (*stub, *httptest.Server) {
		s := &stub{}
		s.ok.Store(true)
		s.fp.Store(fp)
		ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.URL.Path != "/healthz" {
				http.NotFound(w, r)
				return
			}
			if !s.ok.Load() {
				http.Error(w, "boom", http.StatusInternalServerError)
				return
			}
			json.NewEncoder(w).Encode(serve.HealthResponse{
				Status: "ok", Generation: 1, Fingerprint: s.fp.Load().(string),
			})
		}))
		t.Cleanup(ts.Close)
		return s, ts
	}
	sA, tsA := mkStub("fp-1")
	sB, tsB := mkStub("fp-1")
	_ = sA
	rt, rts := newTestRouter(t, Options{
		Backends:      []string{tsA.URL, tsB.URL},
		ProbeInterval: -1,
		FailAfter:     2,
		Logf:          t.Logf,
	})

	rt.probeAll()
	if resp, hr := getHealth(t, rts.URL); resp.StatusCode != http.StatusOK || hr.Status != "ok" || hr.Fingerprint != "fp-1" {
		t.Fatalf("initial healthz = %d %+v", resp.StatusCode, hr)
	}

	// One failed probe is a streak, not an ejection.
	sB.ok.Store(false)
	rt.probeAll()
	if _, hr := getHealth(t, rts.URL); hr.Healthy != 2 {
		t.Fatalf("ejected after a single failure: %+v", hr)
	}
	// The second consecutive failure crosses FailAfter.
	rt.probeAll()
	resp, hr := getHealth(t, rts.URL)
	if resp.StatusCode != http.StatusOK || hr.Status != "degraded" || hr.Healthy != 1 {
		t.Fatalf("post-ejection healthz = %d %+v", resp.StatusCode, hr)
	}
	if got := rt.metrics.ejections.value(); got != 1 {
		t.Fatalf("ejections = %d, want 1", got)
	}
	// Every key now routes to the survivor first.
	for i := 0; i < 50; i++ {
		cands := rt.candidates(routingKey("wer", "KNN", i))
		if cands[0].addr != tsA.URL {
			t.Fatalf("key %d owned by ejected backend %s", i, cands[0].addr)
		}
	}

	// Recovery: one good probe re-admits.
	sB.ok.Store(true)
	rt.probeAll()
	if _, hr := getHealth(t, rts.URL); hr.Status != "ok" || hr.Healthy != 2 {
		t.Fatalf("post-recovery healthz: %+v", hr)
	}
	if got := rt.metrics.readmissions.value(); got != 1 {
		t.Fatalf("readmissions = %d, want 1", got)
	}

	// Fingerprint skew between healthy backends: /healthz goes 503 "skew"
	// so an upstream load balancer stops sending traffic to this pool.
	sB.fp.Store("fp-2")
	rt.probeAll()
	resp, hr = getHealth(t, rts.URL)
	if resp.StatusCode != http.StatusServiceUnavailable || hr.Status != "skew" || !hr.FingerprintSkew {
		t.Fatalf("skewed healthz = %d %+v", resp.StatusCode, hr)
	}
}

// TestRouterFailoverMidDrive is the acceptance test for node loss: a fleet
// drive is running flat out when one of two backends dies. Every issued
// query must still complete — in-flight and subsequent requests fail over
// to the survivor — and the dead backend must be ejected from the pool.
func TestRouterFailoverMidDrive(t *testing.T) {
	ds := testDataset(t)
	bA := newBackend(t, ds, "")
	bB := newBackend(t, ds, "")
	rt, rts := newTestRouter(t, Options{
		Backends:      []string{bA.ts.URL, bB.ts.URL},
		ProbeInterval: 40 * time.Millisecond,
		FailAfter:     2,
		HedgeAfter:    -1, // isolate retry-based failover from hedging
		Logf:          t.Logf,
	})

	f, err := fleet.New(fleet.Config{Servers: 6, Seed: 11, Workloads: []string{"backprop", "random"}})
	if err != nil {
		t.Fatal(err)
	}
	qs := f.Take(240)

	type driveOut struct {
		outs []fleet.Outcome
		err  error
	}
	done := make(chan driveOut, 1)
	go func() {
		outs, err := fleet.Drive(qs, fleet.DriveOptions{
			BaseURL: rts.URL, QPS: 400, Workers: 8,
			Targets: []core.Target{core.TargetWER, core.TargetPUE},
		})
		done <- driveOut{outs, err}
	}()

	// Kill backend A mid-drive, abruptly: open connections are severed,
	// not drained, so requests in flight on it fail at the transport level
	// and must be retried by the router to count as completed.
	time.Sleep(150 * time.Millisecond)
	bA.ts.CloseClientConnections()
	bA.ts.Close()

	d := <-done
	if d.err != nil {
		t.Fatal(d.err)
	}
	completed := 0
	for i, o := range d.outs {
		if o.Err != nil {
			t.Errorf("query %d lost: %v", i, o.Err)
			continue
		}
		completed++
	}
	if completed != len(qs) {
		t.Fatalf("completed %d of %d issued queries across the backend kill", completed, len(qs))
	}
	if got := rt.metrics.ejections.value(); got < 1 {
		t.Fatalf("dead backend never ejected (ejections = %d)", got)
	}
	t.Logf("failover: %d/%d completed, retries=%d ejections=%d",
		completed, len(qs), rt.metrics.retries.value(), rt.metrics.ejections.value())
}

// TestRouterHedgingOnSlowShard: a shard that answers slowly (but is not
// down) costs one hedged duplicate, not a tail-latency spike. The owner of
// the test key is found via the router's own routing tables, made slow,
// and the hedge to the next candidate must win well under the stall.
func TestRouterHedgingOnSlowShard(t *testing.T) {
	ds := testDataset(t)
	bA := newBackend(t, ds, "")
	bB := newBackend(t, ds, "")
	rt, rts := newTestRouter(t, Options{
		Backends:      []string{bA.ts.URL, bB.ts.URL},
		ProbeInterval: -1,
		HedgeAfter:    25 * time.Millisecond,
		Logf:          t.Logf,
	})
	rt.probeAll()

	// Warm the model on both backends so the hedged attempt is a warm hit.
	const body = `{"workload":"backprop","trefp":2.283,"temp_c":50,"targets":["wer"]}`
	for _, b := range []*testBackend{bA, bB} {
		if resp, data := postPredict(t, b.ts.URL, body); resp.StatusCode != http.StatusOK {
			t.Fatalf("warmup = %d: %s", resp.StatusCode, data)
		}
	}

	// Find which backend owns the key this query routes by, and stall it.
	var q serve.PredictRequestV2
	if err := json.Unmarshal([]byte(body), &q); err != nil {
		t.Fatal(err)
	}
	gs := rt.groups(q)
	if len(gs) != 1 || len(gs[0].cands) != 2 {
		t.Fatalf("single-target query did not form one 2-candidate group: %+v", gs)
	}
	const stallMS = 2000
	owner := gs[0].cands[0].addr
	for _, b := range []*testBackend{bA, bB} {
		if b.ts.URL == owner {
			b.predictDelayMS.Store(stallMS)
		}
	}

	start := time.Now()
	resp, data := postPredict(t, rts.URL, body)
	elapsed := time.Since(start)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("hedged predict = %d: %s", resp.StatusCode, data)
	}
	if elapsed >= stallMS*time.Millisecond {
		t.Fatalf("response took %v: the hedge never rescued it from the %dms stall", elapsed, stallMS)
	}
	if got := rt.metrics.hedges.value(); got < 1 {
		t.Fatalf("hedges = %d, want at least 1", got)
	}
	t.Logf("hedged around a %dms stall in %v", stallMS, elapsed)
}

// TestRouterFingerprintSkewRejected: backends serving different artifacts
// must never have their answers blended into one response. A query (or
// batch) whose sub-answers span both backends is refused with a 502
// fingerprint_skew error rather than merged.
func TestRouterFingerprintSkewRejected(t *testing.T) {
	dsA := testDataset(t)
	dsB := perturbedDataset(t, dsA)
	bA := newBackend(t, dsA, "")
	bB := newBackend(t, dsB, "")
	rt, rts := newTestRouter(t, Options{
		Backends:      []string{bA.ts.URL, bB.ts.URL},
		ProbeInterval: -1,
		HedgeAfter:    -1, // a hedge re-homing a slow group could defeat the split
		Logf:          t.Logf,
	})
	rt.probeAll()

	if resp, hr := getHealth(t, rts.URL); resp.StatusCode != http.StatusServiceUnavailable ||
		hr.Status != "skew" || !hr.FingerprintSkew {
		t.Fatalf("skewed pool healthz = %d %+v, want 503 skew", resp.StatusCode, hr)
	}

	// Find a request whose sub-answers span both backends. Ownership
	// depends on the httptest ports hashed onto the ring, so scan the key
	// space: first for a single query whose two targets have different
	// owners (exercises the merge path), then for any two keys with
	// different owners to pair in a batch (exercises the cross-item path).
	mkQuery := func(kind string, set int, targets ...string) serve.PredictRequestV2 {
		return serve.PredictRequestV2{Workload: "backprop", TREFP: 2.283, TempC: 50,
			Model: kind, InputSet: set, Targets: targets}
	}
	var splitQ *serve.PredictRequestV2
	for _, kind := range []string{"KNN", "SVM"} {
		for set := 1; set <= 3 && splitQ == nil; set++ {
			q := mkQuery(kind, set, "wer", "pue")
			if len(rt.groups(q)) == 2 {
				splitQ = &q
			}
		}
	}
	if splitQ != nil {
		payload, _ := json.Marshal(splitQ)
		resp, data := postPredict(t, rts.URL, string(payload))
		if we := decodeErr(t, data); resp.StatusCode != http.StatusBadGateway ||
			we.Error.Code != codeFingerprintSkew {
			t.Fatalf("split query across skewed backends = %d %s, want 502 fingerprint_skew",
				resp.StatusCode, data)
		}
	} else {
		t.Log("no single query splits across owners on this ring; skipping the merge path")
	}

	// Batch path: two items owned by different backends.
	var pair []serve.PredictRequestV2
scan:
	for _, tgt := range []string{"wer", "pue"} {
		for _, kind := range []string{"KNN", "SVM", "RDF"} {
			for set := 1; set <= 3; set++ {
				q := mkQuery(kind, set, tgt)
				owner := rt.groups(q)[0].cands[0]
				if len(pair) == 0 {
					pair = append(pair, q)
					continue
				}
				if rt.groups(pair[0])[0].cands[0] != owner {
					pair = append(pair, q)
					break scan
				}
			}
		}
	}
	if len(pair) != 2 {
		t.Fatal("every model key landed on one backend; ring spread is broken")
	}
	payload, _ := json.Marshal(map[string]any{"queries": pair})
	resp, data := postPredict(t, rts.URL, string(payload))
	if we := decodeErr(t, data); resp.StatusCode != http.StatusBadGateway ||
		we.Error.Code != codeFingerprintSkew {
		t.Fatalf("skewed batch = %d %s, want 502 fingerprint_skew", resp.StatusCode, data)
	}
	if got := rt.metrics.skewRejects.value(); got < 1 {
		t.Fatalf("skew rejections counter = %d, want at least 1", got)
	}
}

// TestRouterReloadUnderLoad: both backends hot-reload to a new artifact
// while a fleet drive runs through the router. Per-key routing means a
// single-target query is answered wholly by one backend, so the rollout
// window loses no requests; afterwards the pool converges on the new
// fingerprint.
func TestRouterReloadUnderLoad(t *testing.T) {
	dsA := testDataset(t)
	path := filepath.Join(t.TempDir(), "art.json.gz")
	if err := dsA.Save(path); err != nil {
		t.Fatal(err)
	}
	bA := newBackend(t, dsA, path)
	bB := newBackend(t, dsA, path)
	rt, rts := newTestRouter(t, Options{
		Backends:      []string{bA.ts.URL, bB.ts.URL},
		ProbeInterval: -1,
		Logf:          t.Logf,
	})
	rt.probeAll()
	_, fpBefore := bA.srv.Identity()

	f, err := fleet.New(fleet.Config{Servers: 6, Seed: 23, Workloads: []string{"backprop", "random"}})
	if err != nil {
		t.Fatal(err)
	}
	qs := f.Take(160)
	type driveOut struct {
		outs []fleet.Outcome
		err  error
	}
	done := make(chan driveOut, 1)
	go func() {
		outs, err := fleet.Drive(qs, fleet.DriveOptions{
			BaseURL: rts.URL, QPS: 400, Workers: 8,
			Targets: []core.Target{core.TargetWER},
		})
		done <- driveOut{outs, err}
	}()

	// Mid-drive, roll the new artifact onto both backends.
	time.Sleep(120 * time.Millisecond)
	if err := perturbedDataset(t, dsA).Save(path); err != nil {
		t.Fatal(err)
	}
	var reloadWG sync.WaitGroup
	for _, b := range []*testBackend{bA, bB} {
		reloadWG.Add(1)
		go func(b *testBackend) {
			defer reloadWG.Done()
			res, err := b.srv.Reload(path)
			if err != nil {
				t.Errorf("reload: %v", err)
				return
			}
			if !res.Swapped {
				t.Error("reload did not swap generations")
			}
		}(b)
	}
	reloadWG.Wait()

	d := <-done
	if d.err != nil {
		t.Fatal(d.err)
	}
	for i, o := range d.outs {
		if o.Err != nil {
			t.Errorf("query %d failed across the rollout: %v", i, o.Err)
		}
	}

	// The pool converges on the new artifact identity.
	rt.probeAll()
	_, fpAfter := bA.srv.Identity()
	if fpAfter == fpBefore {
		t.Fatal("reload did not change the artifact fingerprint")
	}
	resp, hr := getHealth(t, rts.URL)
	if resp.StatusCode != http.StatusOK || hr.Status != "ok" || hr.Fingerprint != fpAfter {
		t.Fatalf("post-rollout healthz = %d %+v, want ok on %s", resp.StatusCode, hr, fpAfter)
	}
}

// TestRouterOptionValidation pins New's input hygiene.
func TestRouterOptionValidation(t *testing.T) {
	if _, err := New(Options{}); err == nil {
		t.Fatal("no backends accepted")
	}
	if _, err := New(Options{Backends: []string{"a", "a"}}); err == nil {
		t.Fatal("duplicate backends accepted")
	}
	if _, err := New(Options{Backends: []string{" "}}); err == nil {
		t.Fatal("blank backend accepted")
	}
	rt, err := New(Options{
		Backends:      []string{"10.0.0.1:8080", "http://10.0.0.2:8080/"},
		ProbeInterval: -1,
		Attempts:      10,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	if rt.backends[0].addr != "http://10.0.0.1:8080" || rt.backends[1].addr != "http://10.0.0.2:8080" {
		t.Fatalf("normalized addrs: %s, %s", rt.backends[0].addr, rt.backends[1].addr)
	}
	if rt.attempts != 2 {
		t.Fatalf("attempts = %d, want capped at pool size 2", rt.attempts)
	}
}
