package cluster

import (
	"hash/fnv"
	"sort"
	"strconv"
)

// ring is a consistent-hash ring over backend indices. Each backend owns
// `replicas` virtual points; a routing key is owned by the first point at
// or after its hash, walking clockwise. Consistent hashing keeps model
// ownership stable when the healthy set changes: ejecting one backend only
// moves the keys it owned, so the other backends keep their warm model
// registries and profile caches instead of reshuffling the whole keyspace.
type ring struct {
	points []ringPoint // sorted by hash
	n      int         // backend count
}

type ringPoint struct {
	hash    uint64
	backend int
}

// hash64 is FNV-1a with a 64-bit avalanche finalizer: deterministic across
// processes, so every router replica with the same backend list computes
// the same ownership. Raw FNV-1a clusters near-identical strings (keys
// differing in a trailing digit land a small multiple of the FNV prime
// apart), which starves backends of ring arcs; the finalizer spreads them
// uniformly.
func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	x := h.Sum64()
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

func newRing(addrs []string, replicas int) *ring {
	r := &ring{n: len(addrs)}
	r.points = make([]ringPoint, 0, len(addrs)*replicas)
	for i, a := range addrs {
		for v := 0; v < replicas; v++ {
			r.points = append(r.points, ringPoint{hash64(a + "#" + strconv.Itoa(v)), i})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Hash ties (astronomically rare) break deterministically.
		return r.points[i].backend < r.points[j].backend
	})
	return r
}

// walk returns up to max distinct backends in ring order starting at the
// key's owner: the owner first, then the failover successors a retry or
// hedge escalates through.
func (r *ring) walk(key string, max int) []int {
	if r.n == 0 || max <= 0 {
		return nil
	}
	if max > r.n {
		max = r.n
	}
	h := hash64(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	out := make([]int, 0, max)
	seen := make([]bool, r.n)
	for i := 0; i < len(r.points) && len(out) < max; i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.backend] {
			seen[p.backend] = true
			out = append(out, p.backend)
		}
	}
	return out
}
