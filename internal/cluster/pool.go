package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/serve"
)

// backendState is the router's live view of one dramserve backend: health,
// consecutive-failure count, and the artifact identity its last successful
// probe reported. Health transitions are driven by both the periodic
// prober and live traffic (a proxied attempt that fails at the transport
// level counts toward ejection; one that reaches the backend resets the
// streak), but re-admission of an ejected backend comes only from a
// successful probe — ejected backends receive no routed traffic to prove
// themselves with (except when the whole pool is ejected).
type backendState struct {
	addr string // normalized base URL

	healthy     atomic.Bool
	consecFails atomic.Int64

	// generation and fingerprint are the artifact identity of the last
	// successful probe; fingerprint "" means never probed yet.
	generation  atomic.Int64
	fingerprint atomic.Value // string
	lastErr     atomic.Value // string

	subOK  counter // proxied attempts answered (any HTTP status)
	subErr counter // proxied attempts failed in transport or with 5xx
}

func newBackendState(addr string) *backendState {
	b := &backendState{addr: addr}
	b.healthy.Store(true) // innocent until the prober proves otherwise
	b.fingerprint.Store("")
	b.lastErr.Store("")
	return b
}

func (b *backendState) fp() string { return b.fingerprint.Load().(string) }

// noteFailure records one failed probe or transport-failed attempt and
// ejects the backend once the consecutive streak reaches failAfter.
// Returns true on the healthy→ejected transition (counted once).
func (b *backendState) noteFailure(err error, failAfter int64) bool {
	b.lastErr.Store(err.Error())
	if b.consecFails.Add(1) >= failAfter {
		return b.healthy.CompareAndSwap(true, false)
	}
	return false
}

// noteSuccess resets the failure streak and re-admits the backend.
// Returns true on the ejected→healthy transition (counted once).
func (b *backendState) noteSuccess() bool {
	b.consecFails.Store(0)
	b.lastErr.Store("")
	return b.healthy.CompareAndSwap(false, true)
}

// probeLoop probes every backend each interval until the router closes.
// Rounds do not overlap: a slow pool is probed as fast as it answers, not
// piled onto.
func (rt *Router) probeLoop() {
	defer rt.proberWG.Done()
	// An immediate first round fills in fingerprints and catches
	// already-dead backends before the first tick.
	rt.probeAll()
	t := time.NewTicker(rt.probeEvery)
	defer t.Stop()
	for {
		select {
		case <-rt.ctx.Done():
			return
		case <-t.C:
			rt.probeAll()
		}
	}
}

// probeAll probes the whole pool concurrently and waits for the round.
func (rt *Router) probeAll() {
	var wg sync.WaitGroup
	for _, b := range rt.backends {
		wg.Add(1)
		go func(b *backendState) {
			defer wg.Done()
			rt.probe(b)
		}(b)
	}
	wg.Wait()
}

// probe health-checks one backend: GET /healthz decoded as the
// serve.HealthResponse probing contract, recording artifact identity on
// success and advancing the ejection streak on failure.
func (rt *Router) probe(b *backendState) {
	rt.metrics.probes.inc()
	err := rt.probeOnce(b)
	if err == nil {
		if b.noteSuccess() {
			rt.metrics.readmissions.inc()
			rt.logf("backend %s re-admitted", b.addr)
		}
		return
	}
	rt.metrics.probeFailures.inc()
	if b.noteFailure(err, rt.failAfter) {
		rt.metrics.ejections.inc()
		rt.logf("backend %s ejected: %v", b.addr, err)
	}
}

func (rt *Router) probeOnce(b *backendState) error {
	ctx, cancel := context.WithTimeout(rt.ctx, rt.probeLimit)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, b.addr+"/healthz", nil)
	if err != nil {
		return err
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxBodyBytes))
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("healthz %s", resp.Status)
	}
	var hr serve.HealthResponse
	if err := json.Unmarshal(data, &hr); err != nil {
		return fmt.Errorf("healthz body: %w", err)
	}
	if hr.Status != "ok" {
		return fmt.Errorf("healthz status %q", hr.Status)
	}
	b.generation.Store(hr.Generation)
	b.fingerprint.Store(hr.Fingerprint)
	return nil
}
