// Package cluster is the horizontal-scale tier of the serving layer: a
// front router that spreads prediction traffic across N dramserve
// backends. One dramserve answers a warm query in ~1 ms — far inside the
// paper's 300 ms budget — but a single process is a single point of
// failure and a single machine's worth of throughput; the ROADMAP's
// "millions of users" target and the post-2019 fleet-scale literature
// (DRAM failure prediction as an online AIOps service) both demand a tier
// that scales out and survives node loss.
//
// The router (cmd/dramrouter) serves the /v2 wire format unchanged, so
// any /v2 client — cmd/dramfleet included — uses it as a drop-in -addr:
//
//	POST /v2/predict   routed, retried and hedged across the pool
//	GET  /healthz      pool health, per-backend identity, fingerprint skew
//	GET  /metrics      routing counters (retries, hedges, ejections, skew)
//
// Four mechanisms make the pool act like one reliable server:
//
//   - Consistent-hash model ownership. Every backend loads the same
//     artifact, but models are trained lazily per (target, kind, input
//     set), and each trained model plus its micro-batcher and profile
//     cache occupies memory and warmup time. The router hashes that
//     triple — the same key the backend's model registry uses — onto a
//     virtual-node ring, so each model's traffic concentrates on one
//     owner: N backends hold ~1/N of the model set warm apiece instead of
//     N copies of everything. A multi-target query is split per owner and
//     the answers are merged; a batch fans out per item. Ownership is a
//     performance hint, not a partition: any backend can answer any key,
//     which is what makes failover below safe.
//
//   - Health-checked pool membership. A prober hits every backend's
//     /healthz on an interval, decoding the serve.HealthResponse probing
//     contract. FailAfter consecutive failures (probe or live traffic)
//     eject a backend from the ring walk; the next successful probe
//     re-admits it. Ejection only re-routes the ejected backend's keys —
//     consistent hashing keeps everyone else's caches warm.
//
//   - Bounded retry and hedging. A sub-request tries the key's owner
//     first, then escalates through ring successors: transport errors and
//     5xx responses retry immediately (Attempts distinct backends max),
//     and a response slower than HedgeAfter launches a duplicate to the
//     next candidate, first answer wins — a slow shard costs one hedge,
//     not a tail-latency spike. 4xx responses never retry: a validation
//     error is the query's fault and is passed through verbatim.
//
//   - Cross-node artifact consistency. Every /v2 response and /healthz
//     body carries the backend's artifact fingerprint (the content hash
//     introduced with the generation machinery). The router refuses to
//     merge sub-responses bearing different fingerprints — during a
//     rolling artifact rollout a query either gets all its answers from
//     the old artifact or all from the new one, never a mix — and
//     surfaces pool-wide skew in /healthz (status "skew", HTTP 503) and
//     /metrics long before a mixed response is ever attempted.
//
// The router holds no model state of its own: it is stateless above the
// pool, so multiple routers can front the same backends.
package cluster

import (
	"context"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"time"
)

// Defaults for the zero Options fields.
const (
	// DefaultProbeInterval is how often every backend's /healthz is probed.
	DefaultProbeInterval = 2 * time.Second
	// DefaultProbeTimeout bounds one health probe round trip.
	DefaultProbeTimeout = time.Second
	// DefaultFailAfter is how many consecutive failures eject a backend.
	DefaultFailAfter = 3
	// DefaultHedgeAfter is how long a sub-request may run before a hedged
	// duplicate is launched at the next candidate backend.
	DefaultHedgeAfter = 100 * time.Millisecond
	// DefaultAttempts is how many distinct backends one sub-request may
	// try (the owner plus retry/hedge successors).
	DefaultAttempts = 3
	// DefaultRequestTimeout bounds one proxied attempt round trip.
	DefaultRequestTimeout = 30 * time.Second
	// DefaultReplicas is the virtual-node count per backend on the ring.
	DefaultReplicas = 64
)

// Options configures a Router.
type Options struct {
	// Backends are the dramserve base URLs (e.g. "http://10.0.0.1:8080").
	// A bare host:port gets the http scheme; trailing slashes are
	// stripped. At least one is required.
	Backends []string
	// Client issues probes and proxied requests; default a transport tuned
	// for many keep-alive connections to few hosts. Deadlines come from
	// per-request contexts, so the client needs no global timeout.
	Client *http.Client
	// RequestTimeout bounds each proxied attempt (0 means
	// DefaultRequestTimeout; negative disables).
	RequestTimeout time.Duration
	// ProbeInterval and ProbeTimeout shape the health prober (0 means the
	// defaults; ProbeInterval < 0 disables active probing — tests drive
	// probes by hand).
	ProbeInterval time.Duration
	ProbeTimeout  time.Duration
	// FailAfter is the consecutive-failure threshold (probe or traffic)
	// that ejects a backend; 0 means DefaultFailAfter.
	FailAfter int
	// HedgeAfter is the hedging delay (0 means DefaultHedgeAfter;
	// negative disables hedging).
	HedgeAfter time.Duration
	// Attempts bounds the distinct backends one sub-request tries; 0 means
	// DefaultAttempts. Always capped at the pool size.
	Attempts int
	// Replicas is the virtual-node count per backend; 0 means
	// DefaultReplicas.
	Replicas int
	// Context, when set, is the base context; its cancellation stops the
	// router like Close does.
	Context context.Context
	// Logf reports pool transitions (ejections, re-admissions); nil
	// discards them.
	Logf func(format string, args ...any)
}

// Router routes /v2 prediction traffic across a health-checked pool of
// dramserve backends. The caller must Close it.
type Router struct {
	backends []*backendState
	ring     *ring
	client   *http.Client
	metrics  *metrics

	reqTimeout time.Duration
	hedgeAfter time.Duration
	attempts   int
	failAfter  int64
	probeEvery time.Duration
	probeLimit time.Duration
	logf       func(string, ...any)

	ctx       context.Context
	cancel    context.CancelFunc
	proberWG  sync.WaitGroup
	closeOnce sync.Once
	start     time.Time
}

// New builds a Router over the backend pool and starts its health prober.
func New(opts Options) (*Router, error) {
	if len(opts.Backends) == 0 {
		return nil, fmt.Errorf("cluster: no backends")
	}
	addrs := make([]string, len(opts.Backends))
	seen := map[string]bool{}
	for i, a := range opts.Backends {
		a = strings.TrimRight(strings.TrimSpace(a), "/")
		if a == "" {
			return nil, fmt.Errorf("cluster: empty backend address")
		}
		if !strings.Contains(a, "://") {
			a = "http://" + a
		}
		if seen[a] {
			return nil, fmt.Errorf("cluster: duplicate backend %s", a)
		}
		seen[a] = true
		addrs[i] = a
	}
	base := opts.Context
	if base == nil {
		base = context.Background()
	}
	ctx, cancel := context.WithCancel(base)
	client := opts.Client
	if client == nil {
		client = &http.Client{Transport: &http.Transport{
			// The router funnels the whole fleet's traffic onto a handful
			// of hosts; the transport default of 2 idle conns per host
			// would churn connections under any real load.
			MaxIdleConns:        0,
			MaxIdleConnsPerHost: 256,
			IdleConnTimeout:     90 * time.Second,
		}}
	}
	rt := &Router{
		client:     client,
		metrics:    newMetrics(),
		reqTimeout: defDur(opts.RequestTimeout, DefaultRequestTimeout),
		hedgeAfter: defDur(opts.HedgeAfter, DefaultHedgeAfter),
		attempts:   defInt(opts.Attempts, DefaultAttempts),
		failAfter:  int64(defInt(opts.FailAfter, DefaultFailAfter)),
		probeEvery: defDur(opts.ProbeInterval, DefaultProbeInterval),
		probeLimit: defDur(opts.ProbeTimeout, DefaultProbeTimeout),
		logf:       opts.Logf,
		ctx:        ctx,
		cancel:     cancel,
		start:      time.Now(),
	}
	if rt.logf == nil {
		rt.logf = func(string, ...any) {}
	}
	if rt.attempts > len(addrs) {
		rt.attempts = len(addrs)
	}
	rt.backends = make([]*backendState, len(addrs))
	for i, a := range addrs {
		rt.backends[i] = newBackendState(a)
	}
	rt.ring = newRing(addrs, defInt(opts.Replicas, DefaultReplicas))
	if rt.probeEvery > 0 {
		rt.proberWG.Add(1)
		go rt.probeLoop()
	}
	return rt, nil
}

func defDur(v, def time.Duration) time.Duration {
	if v == 0 {
		return def
	}
	return v
}

func defInt(v, def int) int {
	if v <= 0 {
		return def
	}
	return v
}

// Close stops the prober and cancels in-flight proxied requests.
func (rt *Router) Close() error {
	rt.closeOnce.Do(rt.cancel)
	rt.proberWG.Wait()
	return nil
}

// Handler returns the router's HTTP surface. The /v2 wire format —
// including the method contract (405 + Allow, 415 on non-JSON POSTs) and
// the structured error shape — matches dramserve, so clients cannot tell
// a router from a single backend.
func (rt *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	route := func(path, method string, h http.HandlerFunc) {
		mux.HandleFunc(path, rt.counted(path, endpoint(method, h)))
	}
	route("/v2/predict", http.MethodPost, rt.handlePredict)
	route("/healthz", http.MethodGet, rt.handleHealthz)
	route("/metrics", http.MethodGet, rt.handleMetrics)
	return mux
}

// candidates returns the backends a sub-request for key may try, in ring
// order starting at the owner: healthy backends only, falling back to the
// full ring walk when the prober has ejected everyone (trying a probably-
// dead backend beats refusing outright — the request-level retry still
// bounds the damage).
func (rt *Router) candidates(key string) []*backendState {
	walk := rt.ring.walk(key, rt.ring.n)
	out := make([]*backendState, 0, rt.attempts)
	for _, i := range walk {
		if b := rt.backends[i]; b.healthy.Load() {
			out = append(out, b)
			if len(out) == rt.attempts {
				return out
			}
		}
	}
	if len(out) > 0 {
		return out
	}
	for _, i := range walk {
		out = append(out, rt.backends[i])
		if len(out) == rt.attempts {
			break
		}
	}
	return out
}
