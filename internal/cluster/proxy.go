package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"mime"
	"net/http"
	"strconv"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/serve"
)

// Body and batch caps mirror dramserve's: the router enforces the same
// limits so a request rejected here would have been rejected there.
const (
	maxBodyBytes = 1 << 20
	maxBatch     = 1024
)

// The router's own /v2 error codes, alongside the backend codes it passes
// through verbatim.
const (
	codeMalformedBody    = "malformed_body"
	codeBodyTooLarge     = "body_too_large"
	codeMethodNotAllowed = "method_not_allowed"
	codeUnsupportedMedia = "unsupported_media_type"
	codeEmptyBatch       = "empty_batch"
	codeBatchTooLarge    = "batch_too_large"
	codeUpstream         = "upstream"         // every candidate backend failed
	codeFingerprintSkew  = "fingerprint_skew" // backends on different artifacts
	codeUnavailable      = "unavailable"
)

// apiErr is the structured /v2 error shape, either minted by the router or
// decoded from a backend response for pass-through.
type apiErr struct {
	status int
	code   string
	field  string
	msg    string
}

func (e *apiErr) Error() string { return e.msg }

func errf(status int, code, field, format string, args ...any) *apiErr {
	return &apiErr{status: status, code: code, field: field, msg: fmt.Sprintf(format, args...)}
}

// at returns a copy locating the error at batch query i — the same
// message prefix dramserve uses, so batch errors through the router read
// identically.
func (e *apiErr) at(i int) *apiErr {
	cp := *e
	cp.msg = fmt.Sprintf("query %d: %s", i, e.msg)
	return &cp
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	data, err := json.Marshal(v)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	w.Write(data)
	w.Write([]byte{'\n'})
}

func writeErr(w http.ResponseWriter, e *apiErr) {
	writeJSON(w, e.status, map[string]any{"error": map[string]string{
		"code":    e.code,
		"field":   e.field,
		"message": e.msg,
	}})
}

// endpoint enforces the uniform method contract (the same one dramserve's
// endpoint wrapper enforces): wrong method is 405 with Allow set, non-JSON
// POST content is 415, POST bodies are capped.
func endpoint(method string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != method {
			w.Header().Set("Allow", method)
			writeErr(w, errf(http.StatusMethodNotAllowed, codeMethodNotAllowed, "",
				"%s not allowed", r.Method))
			return
		}
		if method == http.MethodPost {
			if ct := r.Header.Get("Content-Type"); !jsonContentType(ct) {
				writeErr(w, errf(http.StatusUnsupportedMediaType, codeUnsupportedMedia, "",
					"content type %q not supported (use application/json)", ct))
				return
			}
			r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
		}
		h(w, r)
	}
}

func jsonContentType(ct string) bool {
	if ct == "" {
		return true
	}
	mt, _, err := mime.ParseMediaType(ct)
	return err == nil && mt == "application/json"
}

// decodeBody strictly decodes a JSON request body, mirroring dramserve's
// contract: unknown fields rejected, 413 past the cap, trailing data
// rejected.
func decodeBody(r *http.Request, v any) *apiErr {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			return errf(http.StatusRequestEntityTooLarge, codeBodyTooLarge, "",
				"request body exceeds %d bytes", mbe.Limit)
		}
		return errf(http.StatusBadRequest, codeMalformedBody, "", "malformed body: %v", err)
	}
	var extra struct{}
	if err := dec.Decode(&extra); err != io.EOF {
		return errf(http.StatusBadRequest, codeMalformedBody, "",
			"malformed body: trailing data after the JSON document")
	}
	return nil
}

// predictBody accepts either a single query or a batch (the /v2 shape).
type predictBody struct {
	serve.PredictRequestV2
	Queries []serve.PredictRequestV2 `json:"queries,omitempty"`
}

// handlePredict serves POST /v2/predict: split per model owner, proxy with
// retry and hedging, merge, and refuse fingerprint-skewed merges.
func (rt *Router) handlePredict(w http.ResponseWriter, r *http.Request) {
	var body predictBody
	if e := decodeBody(r, &body); e != nil {
		writeErr(w, e)
		return
	}
	if body.Queries != nil {
		rt.predictBatch(w, r.Context(), body.Queries)
		return
	}
	item, gen, fp, e := rt.routeOne(r.Context(), body.PredictRequestV2)
	if e != nil {
		writeErr(w, e)
		return
	}
	writeJSON(w, http.StatusOK, &serve.PredictResponseV2{
		PredictItemV2: *item,
		Generation:    gen,
		Fingerprint:   fp,
	})
}

func (rt *Router) predictBatch(w http.ResponseWriter, ctx context.Context, qs []serve.PredictRequestV2) {
	if len(qs) == 0 {
		writeErr(w, errf(http.StatusBadRequest, codeEmptyBatch, "queries", "empty batch"))
		return
	}
	if len(qs) > maxBatch {
		writeErr(w, errf(http.StatusBadRequest, codeBatchTooLarge, "queries",
			"batch of %d exceeds %d", len(qs), maxBatch))
		return
	}
	items := make([]*serve.PredictItemV2, len(qs))
	gens := make([]int64, len(qs))
	fps := make([]string, len(qs))
	errs := make([]*apiErr, len(qs))
	var wg sync.WaitGroup
	for i := range qs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			items[i], gens[i], fps[i], errs[i] = rt.routeOne(ctx, qs[i])
		}(i)
	}
	wg.Wait()
	for i, e := range errs {
		if e != nil {
			writeErr(w, e.at(i))
			return
		}
	}
	// Cross-item consistency: a batch answered while an artifact rollout
	// is mid-flight must not mix old- and new-artifact items.
	gen, fp := gens[0], fps[0]
	for i := 1; i < len(fps); i++ {
		if fps[i] != fp {
			rt.metrics.skewRejects.inc()
			writeErr(w, errf(http.StatusBadGateway, codeFingerprintSkew, "",
				"backends disagree on artifact fingerprint (%s vs %s): refusing to mix generations", fp, fps[i]))
			return
		}
		if gens[i] > gen {
			gen = gens[i]
		}
	}
	writeJSON(w, http.StatusOK, &serve.PredictBatchResponseV2{
		Results:     items,
		Generation:  gen,
		Fingerprint: fp,
	})
}

// group is the slice of one query's targets owned by the same backend.
type group struct {
	q     serve.PredictRequestV2 // the sub-query (Targets narrowed)
	cands []*backendState        // owner first, then failover successors
}

// routingKey is the model-ownership key: the same (target, kind, input
// set) triple the backend's model registry is keyed on. Raw strings pass
// through unparsed (the backend renders the proper validation error; the
// key just has to be deterministic).
func routingKey(target, kind string, set int) string {
	return "m/" + target + "/" + kind + "/" + strconv.Itoa(set)
}

// groups splits one query into per-owner sub-queries: each requested
// target routes by its model key, and targets landing on the same owner
// share one sub-request (the backend trains and answers them together,
// exactly as if the client had asked it directly).
func (rt *Router) groups(q serve.PredictRequestV2) []group {
	kind := q.Model
	if kind == "" {
		kind = string(core.ModelKNN)
	} else if k, err := core.ParseModelKind(kind); err == nil {
		kind = string(k) // canonical spelling so "knn" and "KNN" share an owner
	}
	if len(q.Targets) == 0 {
		// No explicit selection: forward the query whole so the backend
		// applies its own artifact-dependent default selection (the router
		// cannot know which targets a backend's artifact can serve, and
		// expanding to the full catalog here would turn a valid default
		// query into a target_unavailable error). The whole query routes as
		// one group keyed on the empty target, deterministically.
		key := routingKey("", kind, q.InputSet)
		if cands := rt.candidates(key); len(cands) > 0 {
			return []group{{q: q, cands: cands}}
		}
		return nil
	}
	names := q.Targets
	var out []group
	owners := map[*backendState]int{} // owner backend → index into out
	for _, name := range names {
		set := q.InputSet
		if t, err := core.ParseTarget(name); err == nil && set == 0 {
			set = int(t.DefaultInputSet())
		}
		cands := rt.candidates(routingKey(name, kind, set))
		if len(cands) == 0 {
			// Impossible with a non-empty pool, but keep the zero case sane.
			continue
		}
		owner := cands[0]
		if gi, ok := owners[owner]; ok {
			dup := false
			for _, have := range out[gi].q.Targets {
				if have == name {
					dup = true
					break
				}
			}
			if !dup {
				out[gi].q.Targets = append(out[gi].q.Targets, name)
			}
			continue
		}
		owners[owner] = len(out)
		sub := q
		sub.Targets = []string{name}
		out = append(out, group{q: sub, cands: cands})
	}
	return out
}

// subResult is one backend's answer to one group.
type subResult struct {
	item *serve.PredictItemV2
	gen  int64
	fp   string
}

// routeOne answers one query: fan out per owner group, merge the
// per-target answers, and refuse to merge across fingerprints.
func (rt *Router) routeOne(ctx context.Context, q serve.PredictRequestV2) (*serve.PredictItemV2, int64, string, *apiErr) {
	groups := rt.groups(q)
	if len(groups) == 0 {
		return nil, 0, "", errf(http.StatusServiceUnavailable, codeUnavailable, "", "no backends")
	}
	if len(groups) == 1 {
		res, e := rt.subCall(ctx, groups[0])
		if e != nil {
			return nil, 0, "", e
		}
		return res.item, res.gen, res.fp, nil
	}
	results := make([]subResult, len(groups))
	errs := make([]*apiErr, len(groups))
	var wg sync.WaitGroup
	for i := range groups {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = rt.subCall(ctx, groups[i])
		}(i)
	}
	wg.Wait()
	for _, e := range errs {
		if e != nil {
			return nil, 0, "", e
		}
	}
	// Merge the per-owner partial answers into one item. Fingerprints must
	// agree: a query split across backends mid-rollout would otherwise
	// blend predictions from two different artifacts into one response.
	merged := results[0]
	for _, res := range results[1:] {
		if res.fp != merged.fp {
			rt.metrics.skewRejects.inc()
			return nil, 0, "", errf(http.StatusBadGateway, codeFingerprintSkew, "",
				"backends disagree on artifact fingerprint (%s vs %s): refusing to mix generations",
				merged.fp, res.fp)
		}
		for name, pred := range res.item.Predictions {
			merged.item.Predictions[name] = pred
		}
		// The merged item's elapsed is the slowest sub-answer: the query's
		// critical path, matching what a single backend would report.
		if res.item.ElapsedMS > merged.item.ElapsedMS {
			merged.item.ElapsedMS = res.item.ElapsedMS
		}
		if res.gen > merged.gen {
			merged.gen = res.gen
		}
	}
	return merged.item, merged.gen, merged.fp, nil
}

// subCall proxies one group with bounded retry and hedging: the owner is
// tried first; a transport error or 5xx escalates to the next candidate
// immediately, a response slower than hedgeAfter launches a duplicate to
// the next candidate, and the first success wins. 4xx responses are
// terminal pass-throughs — retrying a validation error is pointless.
func (rt *Router) subCall(ctx context.Context, g group) (subResult, *apiErr) {
	payload, err := json.Marshal(g.q)
	if err != nil {
		return subResult{}, errf(http.StatusInternalServerError, "internal", "", "%v", err)
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel() // reap the losing hedge/straggler attempts

	type attemptOut struct {
		res       subResult
		e         *apiErr
		retryable bool
	}
	outs := make(chan attemptOut, len(g.cands))
	next := 0
	launch := func() bool {
		if next >= len(g.cands) {
			return false
		}
		b := g.cands[next]
		next++
		go func() {
			res, e, retryable := rt.attempt(ctx, b, payload)
			outs <- attemptOut{res, e, retryable}
		}()
		return true
	}
	launch()
	inflight := 1

	var hedgeC <-chan time.Time
	if rt.hedgeAfter > 0 {
		t := time.NewTimer(rt.hedgeAfter)
		defer t.Stop()
		hedgeC = t.C
	}
	var lastErr *apiErr
	for inflight > 0 {
		select {
		case out := <-outs:
			inflight--
			if out.e == nil {
				return out.res, nil
			}
			if !out.retryable {
				return subResult{}, out.e
			}
			lastErr = out.e
			if launch() {
				inflight++
				rt.metrics.retries.inc()
			}
		case <-hedgeC:
			hedgeC = nil // hedge once per sub-call
			if launch() {
				inflight++
				rt.metrics.hedges.inc()
			}
		case <-ctx.Done():
			return subResult{}, errf(http.StatusServiceUnavailable, codeUnavailable, "",
				"request canceled: %v", ctx.Err())
		}
	}
	if lastErr == nil {
		lastErr = errf(http.StatusBadGateway, codeUpstream, "", "all backends failed")
	}
	return subResult{}, lastErr
}

// attempt proxies one group to one backend. The bool reports whether a
// failure is retryable on another backend (transport errors and 5xx: the
// backend, not the query, is at fault).
func (rt *Router) attempt(parent context.Context, b *backendState, payload []byte) (subResult, *apiErr, bool) {
	ctx := parent
	if rt.reqTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(parent, rt.reqTimeout)
		defer cancel()
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		b.addr+"/v2/predict", bytes.NewReader(payload))
	if err != nil {
		return subResult{}, errf(http.StatusInternalServerError, "internal", "", "%v", err), false
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := rt.client.Do(req)
	if err != nil {
		if parent.Err() != nil {
			// The sub-call was canceled from above — a competing hedge won,
			// or the client went away. The backend is not at fault, so this
			// must not feed the ejection streak (a hedge-losing backend
			// would otherwise be ejected for the crime of being slower
			// once).
			return subResult{}, errf(http.StatusServiceUnavailable, codeUnavailable, "",
				"%s: %v", b.addr, err), false
		}
		// Transport failure: the backend never answered. Feed the ejection
		// streak so a dead backend stops being anyone's owner quickly, even
		// between probes.
		b.subErr.inc()
		if b.noteFailure(err, rt.failAfter) {
			rt.metrics.ejections.inc()
			rt.logf("backend %s ejected (traffic): %v", b.addr, err)
		}
		return subResult{}, errf(http.StatusBadGateway, codeUpstream, "", "%s: %v", b.addr, err), true
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxBodyBytes+1))
	if err != nil {
		b.subErr.inc()
		return subResult{}, errf(http.StatusBadGateway, codeUpstream, "", "%s: %v", b.addr, err), true
	}
	// The backend answered: whatever the status, it is alive.
	if b.noteSuccess() {
		rt.metrics.readmissions.inc()
		rt.logf("backend %s re-admitted (traffic)", b.addr)
	}
	if resp.StatusCode == http.StatusOK {
		var out serve.PredictResponseV2
		if err := json.Unmarshal(data, &out); err != nil {
			b.subErr.inc()
			return subResult{}, errf(http.StatusBadGateway, codeUpstream, "",
				"%s: malformed response: %v", b.addr, err), true
		}
		b.subOK.inc()
		return subResult{item: &out.PredictItemV2, gen: out.Generation, fp: out.Fingerprint}, nil, false
	}
	// Structured backend errors pass through verbatim; 5xx are retryable.
	var werr struct {
		Error struct {
			Code    string `json:"code"`
			Field   string `json:"field"`
			Message string `json:"message"`
		} `json:"error"`
	}
	retryable := resp.StatusCode >= 500
	if retryable {
		b.subErr.inc()
	} else {
		b.subOK.inc()
	}
	if err := json.Unmarshal(data, &werr); err == nil && werr.Error.Code != "" {
		return subResult{}, &apiErr{
			status: resp.StatusCode,
			code:   werr.Error.Code,
			field:  werr.Error.Field,
			msg:    werr.Error.Message,
		}, retryable
	}
	return subResult{}, errf(http.StatusBadGateway, codeUpstream, "",
		"%s: %s: %.200s", b.addr, resp.Status, data), retryable
}
