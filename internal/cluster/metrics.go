package cluster

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// counter is a monotonically increasing metric.
type counter struct{ v atomic.Int64 }

func (c *counter) inc()         { c.v.Add(1) }
func (c *counter) value() int64 { return c.v.Load() }

// metrics aggregates the router's observables. All fields are safe for
// concurrent use.
type metrics struct {
	mu       sync.Mutex
	requests map[requestKey]*counter // per (endpoint, status code)

	retries      counter // attempts escalated after a retryable failure
	hedges       counter // duplicate attempts launched on slow responses
	ejections    counter // healthy→ejected transitions (probe or traffic)
	readmissions counter // ejected→healthy transitions
	skewRejects  counter // responses refused over fingerprint disagreement

	probes        counter
	probeFailures counter
}

type requestKey struct {
	endpoint string
	code     int
}

func newMetrics() *metrics {
	return &metrics{requests: map[requestKey]*counter{}}
}

func (m *metrics) countRequest(endpoint string, code int) {
	k := requestKey{endpoint, code}
	m.mu.Lock()
	c, ok := m.requests[k]
	if !ok {
		c = &counter{}
		m.requests[k] = c
	}
	m.mu.Unlock()
	c.inc()
}

// statusRecorder captures the response code for request accounting.
type statusRecorder struct {
	http.ResponseWriter
	code int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.code = code
	r.ResponseWriter.WriteHeader(code)
}

// counted wraps a handler with per-(endpoint, code) request counting.
func (rt *Router) counted(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		rec := &statusRecorder{ResponseWriter: w, code: http.StatusOK}
		h(rec, r)
		rt.metrics.countRequest(endpoint, rec.code)
	}
}

// BackendHealth is one backend's entry in the router /healthz body.
type BackendHealth struct {
	Addr    string `json:"addr"`
	Healthy bool   `json:"healthy"`
	// ConsecutiveFailures is the current ejection streak (probe or
	// traffic); it resets on any success.
	ConsecutiveFailures int64 `json:"consecutive_failures"`
	// Generation and Fingerprint are the artifact identity of the last
	// successful probe; an empty fingerprint means not probed yet.
	Generation  int64  `json:"generation"`
	Fingerprint string `json:"fingerprint"`
	LastError   string `json:"last_error,omitempty"`
}

// HealthResponse is the router's GET /healthz body: pool membership,
// per-backend artifact identity, and whether the pool agrees on one
// artifact fingerprint.
type HealthResponse struct {
	// Status is "ok" (all healthy, fingerprints agree), "degraded" (some
	// backends ejected but the pool serves), "skew" (healthy backends on
	// different artifact fingerprints) or "down" (no healthy backends).
	Status        string          `json:"status"`
	UptimeSeconds float64         `json:"uptime_seconds"`
	Backends      []BackendHealth `json:"backends"`
	Healthy       int             `json:"healthy"`
	// Fingerprint is the pool's agreed artifact fingerprint ("" until a
	// probe succeeds, or while the pool disagrees).
	Fingerprint     string `json:"fingerprint,omitempty"`
	FingerprintSkew bool   `json:"fingerprint_skew"`
}

// poolHealth snapshots the pool for /healthz and /metrics.
func (rt *Router) poolHealth() *HealthResponse {
	hr := &HealthResponse{UptimeSeconds: time.Since(rt.start).Seconds()}
	var agreed string
	for _, b := range rt.backends {
		bh := BackendHealth{
			Addr:                b.addr,
			Healthy:             b.healthy.Load(),
			ConsecutiveFailures: b.consecFails.Load(),
			Generation:          b.generation.Load(),
			Fingerprint:         b.fp(),
			LastError:           b.lastErr.Load().(string),
		}
		hr.Backends = append(hr.Backends, bh)
		if bh.Healthy {
			hr.Healthy++
			// Skew is judged over healthy backends with a known
			// fingerprint: an ejected node or one not probed yet is not
			// serving traffic, so it cannot skew a response.
			if bh.Fingerprint != "" {
				switch {
				case agreed == "":
					agreed = bh.Fingerprint
				case agreed != bh.Fingerprint:
					hr.FingerprintSkew = true
				}
			}
		}
	}
	switch {
	case hr.Healthy == 0:
		hr.Status = "down"
	case hr.FingerprintSkew:
		hr.Status = "skew"
	case hr.Healthy < len(hr.Backends):
		hr.Status = "degraded"
		hr.Fingerprint = agreed
	default:
		hr.Status = "ok"
		hr.Fingerprint = agreed
	}
	return hr
}

// handleHealthz serves GET /healthz: 200 while the pool can serve
// consistently, 503 when it is down or fingerprint-skewed (a load balancer
// in front of several routers should stop sending traffic here).
func (rt *Router) handleHealthz(w http.ResponseWriter, r *http.Request) {
	hr := rt.poolHealth()
	code := http.StatusOK
	if hr.Status == "down" || hr.Status == "skew" {
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, hr)
}

// handleMetrics serves GET /metrics in the Prometheus text format.
func (rt *Router) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	rt.render(w)
}

func (rt *Router) render(w io.Writer) {
	m := rt.metrics
	m.mu.Lock()
	keys := make([]requestKey, 0, len(m.requests))
	for k := range m.requests {
		keys = append(keys, k)
	}
	m.mu.Unlock()
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].endpoint != keys[j].endpoint {
			return keys[i].endpoint < keys[j].endpoint
		}
		return keys[i].code < keys[j].code
	})
	for _, k := range keys {
		m.mu.Lock()
		c := m.requests[k]
		m.mu.Unlock()
		fmt.Fprintf(w, "dramrouter_requests_total{endpoint=%q,code=\"%d\"} %d\n",
			k.endpoint, k.code, c.value())
	}
	hr := rt.poolHealth()
	fmt.Fprintf(w, "dramrouter_backends %d\n", len(rt.backends))
	fmt.Fprintf(w, "dramrouter_backends_healthy %d\n", hr.Healthy)
	skew := 0
	if hr.FingerprintSkew {
		skew = 1
	}
	fmt.Fprintf(w, "dramrouter_fingerprint_skew %d\n", skew)
	for _, b := range rt.backends {
		up := 0
		if b.healthy.Load() {
			up = 1
		}
		labels := fmt.Sprintf("{backend=%q}", b.addr)
		fmt.Fprintf(w, "dramrouter_backend_up%s %d\n", labels, up)
		fmt.Fprintf(w, "dramrouter_backend_generation%s %d\n", labels, b.generation.Load())
		fmt.Fprintf(w, "dramrouter_backend_info{backend=%q,fingerprint=%q} 1\n", b.addr, b.fp())
		fmt.Fprintf(w, "dramrouter_backend_requests_total{backend=%q,outcome=\"ok\"} %d\n", b.addr, b.subOK.value())
		fmt.Fprintf(w, "dramrouter_backend_requests_total{backend=%q,outcome=\"error\"} %d\n", b.addr, b.subErr.value())
	}
	fmt.Fprintf(w, "dramrouter_retries_total %d\n", m.retries.value())
	fmt.Fprintf(w, "dramrouter_hedges_total %d\n", m.hedges.value())
	fmt.Fprintf(w, "dramrouter_ejections_total %d\n", m.ejections.value())
	fmt.Fprintf(w, "dramrouter_readmissions_total %d\n", m.readmissions.value())
	fmt.Fprintf(w, "dramrouter_fingerprint_skew_rejections_total %d\n", m.skewRejects.value())
	fmt.Fprintf(w, "dramrouter_probes_total %d\n", m.probes.value())
	fmt.Fprintf(w, "dramrouter_probe_failures_total %d\n", m.probeFailures.value())
}
