package cluster

import (
	"fmt"
	"testing"

	"repro/internal/core"
)

func ringAddrs(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("http://10.0.0.%d:8080", i+1)
	}
	return out
}

// TestRingDeterministic: two rings built from the same backend list agree
// on every key's full walk — the property that lets several router
// replicas front one pool without coordinating.
func TestRingDeterministic(t *testing.T) {
	addrs := ringAddrs(5)
	a, b := newRing(addrs, DefaultReplicas), newRing(addrs, DefaultReplicas)
	for i := 0; i < 500; i++ {
		key := routingKey("wer", "KNN", i)
		wa, wb := a.walk(key, 5), b.walk(key, 5)
		if len(wa) != len(wb) {
			t.Fatalf("walk lengths differ for %s: %v vs %v", key, wa, wb)
		}
		for j := range wa {
			if wa[j] != wb[j] {
				t.Fatalf("walks differ for %s: %v vs %v", key, wa, wb)
			}
		}
	}
}

// TestRingWalkDistinct: a walk lists each backend at most once, in owner-
// first order, capped at the pool size.
func TestRingWalkDistinct(t *testing.T) {
	r := newRing(ringAddrs(4), DefaultReplicas)
	for i := 0; i < 200; i++ {
		key := routingKey("pue", "SVM", i)
		w := r.walk(key, 10) // asks for more than exist
		if len(w) != 4 {
			t.Fatalf("walk(%s, 10) returned %d backends, want 4", key, len(w))
		}
		seen := map[int]bool{}
		for _, idx := range w {
			if idx < 0 || idx >= 4 {
				t.Fatalf("walk(%s) index %d out of range", key, idx)
			}
			if seen[idx] {
				t.Fatalf("walk(%s) repeats backend %d: %v", key, idx, w)
			}
			seen[idx] = true
		}
		// A shorter walk is a prefix of the longer one: retry escalation
		// follows the same successor order hedging does.
		w2 := r.walk(key, 2)
		if len(w2) != 2 || w2[0] != w[0] || w2[1] != w[1] {
			t.Fatalf("walk(%s, 2) = %v is not a prefix of %v", key, w2, w)
		}
	}
	if got := r.walk("k", 0); got != nil {
		t.Fatalf("walk(k, 0) = %v, want nil", got)
	}
	empty := newRing(nil, DefaultReplicas)
	if got := empty.walk("k", 3); got != nil {
		t.Fatalf("empty ring walk = %v, want nil", got)
	}
}

// TestRingSpread: with virtual nodes, every backend owns a non-trivial
// share of a large keyspace (no starved backend, no hot monopoly).
func TestRingSpread(t *testing.T) {
	const backends, keys = 8, 4000
	r := newRing(ringAddrs(backends), DefaultReplicas)
	owned := make([]int, backends)
	for i := 0; i < keys; i++ {
		owned[r.walk(fmt.Sprintf("m/wer/KNN/%d", i), 1)[0]]++
	}
	for i, n := range owned {
		// Fair share is keys/backends = 500; 64 virtual nodes keep every
		// backend within a loose band of it.
		if n < keys/backends/4 {
			t.Fatalf("backend %d owns only %d of %d keys: %v", i, n, keys, owned)
		}
	}
}

// TestRingModelKeyTriples pins routing over the real model-key space:
// every (target, kind, input set) triple the registry can produce —
// including the telemetry-driven ue_risk classification target — walks
// deterministically across independently built rings, shorter walks are
// prefixes of longer ones, and dropping one backend remaps only the
// triples it owned. The empty-target key (the default-selection group the
// router forwards whole) gets the same guarantees.
func TestRingModelKeyTriples(t *testing.T) {
	addrs := ringAddrs(5)
	a, b := newRing(addrs, DefaultReplicas), newRing(addrs, DefaultReplicas)
	reduced := newRing(addrs[:4], DefaultReplicas)

	var keys []string
	for _, tgt := range core.Targets() {
		for _, kind := range core.ModelKinds() {
			for _, set := range core.InputSets() {
				keys = append(keys, routingKey(string(tgt), string(kind), int(set)))
			}
		}
	}
	for _, kind := range core.ModelKinds() {
		keys = append(keys, routingKey("", string(kind), 0))
	}

	sawUERisk := false
	moved := 0
	for _, key := range keys {
		if key == routingKey(string(core.TargetUERisk), string(core.ModelKNN), int(core.InputSet1)) {
			sawUERisk = true
		}
		wa, wb := a.walk(key, 5), b.walk(key, 5)
		if len(wa) != 5 || len(wb) != 5 {
			t.Fatalf("walk(%s) lengths %d/%d, want 5", key, len(wa), len(wb))
		}
		for j := range wa {
			if wa[j] != wb[j] {
				t.Fatalf("independent rings disagree on %s: %v vs %v", key, wa, wb)
			}
		}
		w2 := a.walk(key, 2)
		if len(w2) != 2 || w2[0] != wa[0] || w2[1] != wa[1] {
			t.Fatalf("walk(%s, 2) = %v is not a prefix of %v", key, w2, wa)
		}
		was, now := wa[0], reduced.walk(key, 1)[0]
		if was != 4 {
			if now != was {
				t.Fatalf("key %s moved %d→%d though backend 4 was the one dropped", key, was, now)
			}
		} else {
			moved++
		}
	}
	if !sawUERisk {
		t.Fatal("registry catalog no longer includes the ue_risk triple")
	}
	t.Logf("%d model keys, %d remapped by dropping one backend", len(keys), moved)
}

// TestRingStability is the consistent-hashing contract: dropping one
// backend only remaps the keys it owned. Every other key keeps its owner,
// which is what keeps the surviving backends' model caches warm through an
// ejection.
func TestRingStability(t *testing.T) {
	addrs := ringAddrs(4)
	full := newRing(addrs, DefaultReplicas)
	reduced := newRing(addrs[:3], DefaultReplicas)
	moved := 0
	const keys = 2000
	for i := 0; i < keys; i++ {
		key := fmt.Sprintf("m/pue/KNN/%d", i)
		was := full.walk(key, 1)[0]
		now := reduced.walk(key, 1)[0]
		if was != 3 {
			if now != was {
				t.Fatalf("key %s moved %d→%d though backend 3 was the one dropped", key, was, now)
			}
		} else {
			moved++
		}
	}
	if moved == 0 {
		t.Fatal("backend 3 owned no keys at all; spread is broken")
	}
}
