package cliflag

import (
	"flag"
	"io"
	"net/http"
	"strings"
	"testing"
)

func TestPprofOffByDefault(t *testing.T) {
	var p Pprof
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	p.Register(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	addr, err := p.Start(nil)
	if err != nil || addr != "" {
		t.Fatalf("unset -pprof must be a no-op, got addr %q, err %v", addr, err)
	}
}

func TestPprofServesProfiles(t *testing.T) {
	var p Pprof
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	p.Register(fs)
	if err := fs.Parse([]string{"-pprof", "127.0.0.1:0"}); err != nil {
		t.Fatal(err)
	}
	var logged []string
	addr, err := p.Start(func(format string, args ...any) {
		logged = append(logged, format)
	})
	if err != nil {
		t.Fatal(err)
	}
	if addr == "" || strings.HasSuffix(addr, ":0") {
		t.Fatalf("Start did not return the bound address: %q", addr)
	}
	if len(logged) == 0 {
		t.Fatal("Start did not announce the listener")
	}
	resp, err := http.Get("http://" + addr + "/debug/pprof/heap?debug=1")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("heap profile returned %d: %s", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "heap profile") {
		t.Fatalf("response is not a heap profile:\n%.200s", body)
	}
}

func TestPprofBadAddressFailsLoudly(t *testing.T) {
	p := Pprof{Addr: "definitely:not:an:addr"}
	if _, err := p.Start(nil); err == nil {
		t.Fatal("bad -pprof address did not error")
	}
}
