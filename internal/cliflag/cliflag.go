// Package cliflag bundles the flags shared by the dram* commands. Every
// command that needs the campaign corpus either loads a saved artifact
// (-load) or builds profiles + characterization campaigns from scratch,
// and can persist the result (-save); registering one Campaign keeps the
// flag names, defaults and resolution logic identical across dramtrain,
// drampredict and dramserve. Targets is the shared -target flag selecting
// which regression targets of the unified core.Predictor API a command
// trains and reports. LoadGen is the shared load-volume flag pair
// (-qps/-duration/-n) of the closed-loop generators (dramfleet). Pprof is
// the shared -pprof side listener for profiling a live process.
package cliflag

import (
	"errors"
	"flag"
	"fmt"
	"math"
	"net"
	"net/http"
	"net/http/pprof"
	"runtime"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/ingest"
	"repro/internal/workload"
	"repro/internal/xgene"
)

// The connection-hygiene timeouts every HTTP listener in this repository
// shares. A listener with no read-side timeouts hangs forever on a client
// that opens a connection and trickles (or never sends) the request — the
// slowloris class — and never reclaims idle keep-alive connections; at
// fleet scale a few thousand such clients exhaust the file-descriptor
// budget. Write-side stays unbounded on purpose: a cold model fit can
// legitimately hold a response longer than any fixed cap, and the read
// timeouts are what the attack class needs.
const (
	// ReadHeaderTimeout bounds how long a client may take to send the
	// request line and headers.
	ReadHeaderTimeout = 10 * time.Second
	// ReadTimeout bounds the whole request read, including the body
	// (bodies are capped at ~1 MiB everywhere, so a minute is generous).
	ReadTimeout = time.Minute
	// IdleTimeout reclaims keep-alive connections with no next request.
	IdleTimeout = 2 * time.Minute
)

// HTTPServer builds an http.Server with the shared hygiene timeouts.
// Every listener — dramserve, dramrouter, the -pprof side listener — goes
// through here so none can regress to the hang-forever defaults.
func HTTPServer(addr string, h http.Handler) *http.Server {
	return &http.Server{
		Addr:              addr,
		Handler:           h,
		ReadHeaderTimeout: ReadHeaderTimeout,
		ReadTimeout:       ReadTimeout,
		IdleTimeout:       IdleTimeout,
	}
}

// Pprof is the shared -pprof flag: an optional side HTTP listener exposing
// the net/http/pprof endpoints. It is a separate listener on purpose — the
// serving mux stays exactly the pinned /v1 + /v2 surface, and the profile
// port can be bound to loopback while the service listens publicly.
type Pprof struct {
	Addr string
}

// Register installs the -pprof flag on fs.
func (p *Pprof) Register(fs *flag.FlagSet) {
	fs.StringVar(&p.Addr, "pprof", "",
		"expose net/http/pprof on this side `address` (e.g. 127.0.0.1:6060; empty = off)")
}

// Start binds the profiling listener if the flag was set, returning the
// bound address ("" when the flag is off — not an error). Binding is
// synchronous so a bad address fails startup loudly; the serve loop itself
// runs for the process lifetime and logs (never kills the process) on
// failure. EXPERIMENTS.md documents the capture-and-analyze recipe.
func (p *Pprof) Start(logf func(format string, args ...any)) (string, error) {
	if p.Addr == "" {
		return "", nil
	}
	ln, err := net.Listen("tcp", p.Addr)
	if err != nil {
		return "", fmt.Errorf("cliflag: -pprof listen: %w", err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	go func() {
		if err := HTTPServer("", mux).Serve(ln); err != nil &&
			!errors.Is(err, http.ErrServerClosed) {
			if logf != nil {
				logf("pprof server: %v", err)
			}
		}
	}()
	addr := ln.Addr().String()
	if logf != nil {
		logf("pprof listening on http://%s/debug/pprof/", addr)
	}
	return addr, nil
}

// Targets is the shared -target flag: which prediction targets a command
// should train and report — any name in the core target registry, "all",
// or a comma list. The help text and parse errors derive the valid names
// from the registry, so a newly registered target shows up in every
// command's -help without touching this package.
type Targets struct {
	spec string
}

// Register installs the -target flag on fs.
func (t *Targets) Register(fs *flag.FlagSet) {
	if t.spec == "" {
		t.spec = "all"
	}
	names := core.TargetNames()
	quoted := make([]string, len(names))
	for i, n := range names {
		quoted[i] = `"` + n + `"`
	}
	fs.StringVar(&t.spec, "target", t.spec,
		fmt.Sprintf(`prediction target(s): %s, "all", or a comma list`,
			strings.Join(quoted, ", ")))
}

// List resolves the flag into targets in core.Targets() order semantics:
// "all" (the default) is every target; an explicit list keeps its order,
// deduplicated.
func (t *Targets) List() ([]core.Target, error) {
	if t.spec == "" || strings.EqualFold(t.spec, "all") {
		return core.Targets(), nil
	}
	seen := map[core.Target]bool{}
	var out []core.Target
	for _, part := range strings.Split(t.spec, ",") {
		tgt, err := core.ParseTarget(part)
		if err != nil {
			return nil, err
		}
		if !seen[tgt] {
			seen[tgt] = true
			out = append(out, tgt)
		}
	}
	return out, nil
}

// All reports whether the selection is the registry-wide default rather
// than an explicit list. Commands use this to skip targets the loaded
// dataset cannot serve (an explicit request for such a target stays an
// error).
func (t *Targets) All() bool {
	return t.spec == "" || strings.EqualFold(t.spec, "all")
}

// Has reports whether the selection includes tgt (false on a parse error;
// List surfaces that).
func (t *Targets) Has(tgt core.Target) bool {
	list, err := t.List()
	if err != nil {
		return false
	}
	for _, got := range list {
		if got == tgt {
			return true
		}
	}
	return false
}

// LoadGen holds the load-volume flags of a closed-loop generator: the
// target arrival rate plus either an exact query count (-n, deterministic
// replays) or a run length (-duration, wall-clock bursts).
type LoadGen struct {
	QPS      float64
	Duration time.Duration
	N        int
}

// Register installs the load-generator flags on fs, using the current
// field values as defaults (zero QPS gets the shared default of 100).
func (l *LoadGen) Register(fs *flag.FlagSet) {
	if l.QPS == 0 {
		l.QPS = 100
	}
	fs.Float64Var(&l.QPS, "qps", l.QPS, "target query arrival rate per second")
	fs.DurationVar(&l.Duration, "duration", l.Duration,
		"run length; issues qps*duration queries (exclusive with -n)")
	fs.IntVar(&l.N, "n", l.N,
		"exact query count for byte-identical replays (exclusive with -duration)")
}

// Ingest holds the streaming-ingest flags of an ingest-capable server
// (dramserve): whether the /v2/ingest + /v2/retrain loop is on, the
// bounded-queue capacity, and the retrain triggers.
type Ingest struct {
	Enabled        bool
	Capacity       int
	RetrainRows    int
	DriftThreshold float64
	DriftMinRows   int
}

// Register installs the ingest flags on fs.
func (i *Ingest) Register(fs *flag.FlagSet) {
	fs.BoolVar(&i.Enabled, "ingest", false,
		"enable streaming telemetry ingest and continuous retraining (POST /v2/ingest, /v2/retrain)")
	fs.IntVar(&i.Capacity, "ingest-capacity", 4096,
		"bounded ingest queue capacity in rows; a full queue answers 429")
	fs.IntVar(&i.RetrainRows, "retrain-rows", 0,
		"retrain when this many ingested rows are buffered (0 disables the row trigger)")
	fs.Float64Var(&i.DriftThreshold, "drift-threshold", 0,
		"retrain when the live telemetry drift score reaches this (0..1; 0 disables the drift trigger)")
	fs.IntVar(&i.DriftMinRows, "drift-min-rows", 64,
		"minimum ingested telemetry rows before the drift trigger may fire")
}

// Config resolves the flags into an ingest configuration, nil when the
// loop is disabled.
func (i *Ingest) Config() (*ingest.Config, error) {
	if !i.Enabled {
		return nil, nil
	}
	if i.Capacity <= 0 {
		return nil, fmt.Errorf("cliflag: -ingest-capacity %d out of range", i.Capacity)
	}
	if i.RetrainRows < 0 {
		return nil, fmt.Errorf("cliflag: -retrain-rows %d out of range", i.RetrainRows)
	}
	if i.DriftThreshold < 0 || i.DriftThreshold > 1 || math.IsNaN(i.DriftThreshold) {
		return nil, fmt.Errorf("cliflag: -drift-threshold %v out of range [0, 1]", i.DriftThreshold)
	}
	if i.DriftMinRows < 0 {
		return nil, fmt.Errorf("cliflag: -drift-min-rows %d out of range", i.DriftMinRows)
	}
	return &ingest.Config{
		Capacity:       i.Capacity,
		RetrainRows:    i.RetrainRows,
		DriftThreshold: i.DriftThreshold,
		MinDriftRows:   i.DriftMinRows,
	}, nil
}

// Queries resolves the flags into the number of queries to issue: -n
// verbatim, or -qps*-duration rounded up. Exactly one of the two must be
// set, and the rate must be usable for pacing.
func (l *LoadGen) Queries() (int, error) {
	if l.QPS <= 0 || math.IsNaN(l.QPS) || math.IsInf(l.QPS, 0) {
		return 0, fmt.Errorf("cliflag: -qps %v out of range", l.QPS)
	}
	switch {
	case l.N < 0:
		return 0, fmt.Errorf("cliflag: -n %d out of range", l.N)
	case l.Duration < 0:
		return 0, fmt.Errorf("cliflag: -duration %v out of range", l.Duration)
	case l.N > 0 && l.Duration > 0:
		return 0, fmt.Errorf("cliflag: -n and -duration are exclusive")
	case l.N > 0:
		return l.N, nil
	case l.Duration > 0:
		return int(math.Ceil(l.QPS * l.Duration.Seconds())), nil
	}
	return 0, fmt.Errorf("cliflag: one of -n or -duration is required")
}

// Campaign holds the shared flags. Set a field before Register to change
// that command's default (drampredict defaults Reps to 5, for example).
type Campaign struct {
	Scale   int
	Reps    int
	Quick   bool
	Seed    uint64
	Workers int
	Load    string
	Save    string
}

// Register installs the shared flags on fs, using the current field values
// as defaults (zero fields get the dramtrain defaults).
func (c *Campaign) Register(fs *flag.FlagSet) {
	if c.Scale == 0 {
		c.Scale = 8
	}
	if c.Reps == 0 {
		c.Reps = 10
	}
	if c.Workers == 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	fs.IntVar(&c.Scale, "scale", c.Scale, "simulation capacity divisor")
	fs.IntVar(&c.Reps, "reps", c.Reps, "repetitions per PUE experiment")
	fs.BoolVar(&c.Quick, "quick", c.Quick, "use test-size kernels")
	fs.Uint64Var(&c.Seed, "seed", c.Seed, "server and profiling seed")
	fs.IntVar(&c.Workers, "workers", c.Workers, "concurrent campaign jobs")
	fs.StringVar(&c.Load, "load", c.Load, "skip the campaign; load a saved dataset artifact")
	fs.StringVar(&c.Save, "save", c.Save, "write the campaign dataset artifact to this path")
}

// Size maps -quick to the workload size.
func (c *Campaign) Size() workload.Size {
	if c.Quick {
		return workload.SizeTest
	}
	return workload.SizeProfile
}

// Dataset resolves the flags into a training corpus: the artifact at -load
// when given, otherwise profiles + characterization campaigns over specs.
// The result is saved to -save when set. logf reports progress.
func (c *Campaign) Dataset(specs []workload.Spec, logf func(format string, args ...any)) (*core.Dataset, error) {
	ds, _, err := c.DatasetAndServer(specs, logf)
	return ds, err
}

// DatasetAndServer is Dataset, additionally returning the characterization
// server when a campaign was run (nil when the artifact was loaded) — for
// commands that validate predictions against a real run afterwards.
func (c *Campaign) DatasetAndServer(specs []workload.Spec, logf func(format string, args ...any)) (*core.Dataset, *xgene.Server, error) {
	var (
		ds  *core.Dataset
		srv *xgene.Server
	)
	if c.Load != "" {
		var err error
		ds, err = core.LoadDataset(c.Load)
		if err != nil {
			return nil, nil, err
		}
		logf("loaded dataset artifact %s", c.Load)
		// Adopt the artifact's build settings: query-workload profiling
		// must match how the training rows were profiled, or features are
		// silently incommensurate.
		if b := ds.Build; b.Known() {
			if c.Quick != b.Quick() || c.Seed != b.Seed {
				logf("adopting artifact build settings (quick=%v seed=%d)", b.Quick(), b.Seed)
			}
			c.Quick = b.Quick()
			c.Seed = b.Seed
		}
	} else {
		logf("profiling %d workloads...", len(specs))
		profiles, err := core.BuildProfiles(specs, c.Size(), c.Seed, c.Workers)
		if err != nil {
			return nil, nil, err
		}
		srv = xgene.MustNewServer(xgene.Config{Seed: c.Seed, Scale: c.Scale})
		logf("running characterization campaigns (%d workers)...", c.Workers)
		ds, err = core.BuildDataset(srv, profiles, specs, core.CampaignOptions{Reps: c.Reps, Workers: c.Workers})
		if err != nil {
			return nil, nil, err
		}
		ds.StampBuild(c.Size(), c.Seed)
	}
	if c.Save != "" {
		if err := ds.Save(c.Save); err != nil {
			return nil, nil, err
		}
		logf("saved dataset artifact to %s", c.Save)
	}
	return ds, srv, nil
}
