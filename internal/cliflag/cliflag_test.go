package cliflag

import (
	"flag"
	"path/filepath"
	"runtime"
	"testing"

	"repro/internal/core"
	"repro/internal/workload"
)

func testSpecs(t *testing.T) []workload.Spec {
	t.Helper()
	var specs []workload.Spec
	for _, l := range []string{"backprop", "random"} {
		s, err := workload.FindSpec(l)
		if err != nil {
			t.Fatal(err)
		}
		specs = append(specs, s)
	}
	return specs
}

func TestRegisterDefaults(t *testing.T) {
	var c Campaign
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	c.Register(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if c.Scale != 8 || c.Reps != 10 || c.Quick || c.Workers != runtime.GOMAXPROCS(0) {
		t.Fatalf("defaults: %+v", c)
	}
	if c.Size() != workload.SizeProfile {
		t.Fatal("default size not SizeProfile")
	}
}

func TestRegisterPresetDefaultsAndParse(t *testing.T) {
	c := Campaign{Reps: 5}
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	c.Register(fs)
	if err := fs.Parse([]string{"-quick", "-scale", "32", "-workers", "2", "-load", "x.gz"}); err != nil {
		t.Fatal(err)
	}
	if c.Reps != 5 {
		t.Fatalf("preset default lost: reps = %d", c.Reps)
	}
	if !c.Quick || c.Scale != 32 || c.Workers != 2 || c.Load != "x.gz" {
		t.Fatalf("parse: %+v", c)
	}
	if c.Size() != workload.SizeTest {
		t.Fatal("-quick size not SizeTest")
	}
}

func TestDatasetBuildSaveLoad(t *testing.T) {
	path := filepath.Join(t.TempDir(), "dfault.json.gz")
	build := Campaign{Scale: 32, Reps: 2, Quick: true, Workers: 2, Save: path}
	var msgs []string
	logf := func(format string, args ...any) { msgs = append(msgs, format) }

	ds, srv, err := build.DatasetAndServer(testSpecs(t), logf)
	if err != nil {
		t.Fatal(err)
	}
	if srv == nil {
		t.Fatal("campaign build returned no server")
	}
	if len(ds.WER) == 0 || len(ds.PUE) == 0 {
		t.Fatalf("empty dataset: %d/%d rows", len(ds.WER), len(ds.PUE))
	}
	if len(msgs) == 0 {
		t.Fatal("no progress logged")
	}

	load := Campaign{Load: path}
	back, srv2, err := load.DatasetAndServer(nil, logf)
	if err != nil {
		t.Fatal(err)
	}
	if srv2 != nil {
		t.Fatal("artifact load returned a server")
	}
	if len(back.WER) != len(ds.WER) || len(back.PUE) != len(ds.PUE) {
		t.Fatalf("loaded artifact shape %d/%d, want %d/%d",
			len(back.WER), len(back.PUE), len(ds.WER), len(ds.PUE))
	}
	// The loader adopts the artifact's build settings, so query-workload
	// profiling matches the training rows even when flags disagree.
	if !back.Build.Known() || !back.Build.Quick() {
		t.Fatalf("build info not persisted: %+v", back.Build)
	}
	if !load.Quick || load.Size() != workload.SizeTest {
		t.Fatalf("loader did not adopt -quick from artifact: %+v", load)
	}
}

func TestDatasetLoadMissing(t *testing.T) {
	c := Campaign{Load: filepath.Join(t.TempDir(), "missing.gz")}
	if _, err := c.Dataset(nil, func(string, ...any) {}); err == nil {
		t.Fatal("missing artifact accepted")
	}
}

func TestLoadGenFlag(t *testing.T) {
	cases := []struct {
		args []string
		want int
		ok   bool
	}{
		{[]string{"-n", "40"}, 40, true},
		{[]string{"-duration", "2s"}, 200, true}, // default -qps 100
		{[]string{"-qps", "150", "-duration", "2s"}, 300, true},
		{[]string{"-qps", "10", "-duration", "250ms"}, 3, true}, // rounds up
		{[]string{}, 0, false},                                  // neither -n nor -duration
		{[]string{"-n", "5", "-duration", "1s"}, 0, false},      // exclusive
		{[]string{"-n", "-1"}, 0, false},
		{[]string{"-duration", "-1s"}, 0, false},
		{[]string{"-qps", "0", "-n", "5"}, 0, false},
		{[]string{"-qps", "-3", "-n", "5"}, 0, false},
	}
	for _, tc := range cases {
		fs := flag.NewFlagSet("t", flag.ContinueOnError)
		var lg LoadGen
		lg.Register(fs)
		if err := fs.Parse(tc.args); err != nil {
			t.Fatalf("%v: parse: %v", tc.args, err)
		}
		got, err := lg.Queries()
		if tc.ok != (err == nil) {
			t.Fatalf("%v: Queries() error = %v, want ok=%v", tc.args, err, tc.ok)
		}
		if tc.ok && got != tc.want {
			t.Fatalf("%v: Queries() = %d, want %d", tc.args, got, tc.want)
		}
	}
	// A preset QPS default survives Register, like Campaign presets do.
	preset := LoadGen{QPS: 250}
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	preset.Register(fs)
	if err := fs.Parse([]string{"-duration", "1s"}); err != nil {
		t.Fatal(err)
	}
	if n, err := preset.Queries(); err != nil || n != 250 {
		t.Fatalf("preset default: Queries() = %d, %v", n, err)
	}
}

func TestTargetsFlag(t *testing.T) {
	cases := []struct {
		spec string
		want []core.Target
		ok   bool
	}{
		{"all", core.Targets(), true},
		{"ALL", core.Targets(), true},
		{"", core.Targets(), true},
		{"wer", []core.Target{core.TargetWER}, true},
		{"PUE", []core.Target{core.TargetPUE}, true},
		{"pue,wer", []core.Target{core.TargetPUE, core.TargetWER}, true},
		{"wer,wer", []core.Target{core.TargetWER}, true},
		{"mbe", nil, false},
		{"wer,doom", nil, false},
	}
	for _, tc := range cases {
		fs := flag.NewFlagSet("test", flag.ContinueOnError)
		var tf Targets
		tf.Register(fs)
		args := []string{}
		if tc.spec != "" {
			args = []string{"-target", tc.spec}
		}
		if err := fs.Parse(args); err != nil {
			t.Fatalf("%q: parse: %v", tc.spec, err)
		}
		got, err := tf.List()
		if tc.ok != (err == nil) {
			t.Fatalf("%q: List() error = %v", tc.spec, err)
		}
		if !tc.ok {
			continue
		}
		if len(got) != len(tc.want) {
			t.Fatalf("%q: List() = %v, want %v", tc.spec, got, tc.want)
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Fatalf("%q: List() = %v, want %v", tc.spec, got, tc.want)
			}
		}
		for _, tgt := range tc.want {
			if !tf.Has(tgt) {
				t.Fatalf("%q: Has(%s) = false", tc.spec, tgt)
			}
		}
	}
	// Has on an unparseable spec is false, never a panic.
	bad := Targets{spec: "doom"}
	if bad.Has(core.TargetWER) {
		t.Fatal("Has on a bad spec returned true")
	}
}
