package cliflag

import (
	"flag"
	"path/filepath"
	"runtime"
	"testing"

	"repro/internal/workload"
)

func testSpecs(t *testing.T) []workload.Spec {
	t.Helper()
	var specs []workload.Spec
	for _, l := range []string{"backprop", "random"} {
		s, err := workload.FindSpec(l)
		if err != nil {
			t.Fatal(err)
		}
		specs = append(specs, s)
	}
	return specs
}

func TestRegisterDefaults(t *testing.T) {
	var c Campaign
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	c.Register(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if c.Scale != 8 || c.Reps != 10 || c.Quick || c.Workers != runtime.GOMAXPROCS(0) {
		t.Fatalf("defaults: %+v", c)
	}
	if c.Size() != workload.SizeProfile {
		t.Fatal("default size not SizeProfile")
	}
}

func TestRegisterPresetDefaultsAndParse(t *testing.T) {
	c := Campaign{Reps: 5}
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	c.Register(fs)
	if err := fs.Parse([]string{"-quick", "-scale", "32", "-workers", "2", "-load", "x.gz"}); err != nil {
		t.Fatal(err)
	}
	if c.Reps != 5 {
		t.Fatalf("preset default lost: reps = %d", c.Reps)
	}
	if !c.Quick || c.Scale != 32 || c.Workers != 2 || c.Load != "x.gz" {
		t.Fatalf("parse: %+v", c)
	}
	if c.Size() != workload.SizeTest {
		t.Fatal("-quick size not SizeTest")
	}
}

func TestDatasetBuildSaveLoad(t *testing.T) {
	path := filepath.Join(t.TempDir(), "dfault.json.gz")
	build := Campaign{Scale: 32, Reps: 2, Quick: true, Workers: 2, Save: path}
	var msgs []string
	logf := func(format string, args ...any) { msgs = append(msgs, format) }

	ds, srv, err := build.DatasetAndServer(testSpecs(t), logf)
	if err != nil {
		t.Fatal(err)
	}
	if srv == nil {
		t.Fatal("campaign build returned no server")
	}
	if len(ds.WER) == 0 || len(ds.PUE) == 0 {
		t.Fatalf("empty dataset: %d/%d rows", len(ds.WER), len(ds.PUE))
	}
	if len(msgs) == 0 {
		t.Fatal("no progress logged")
	}

	load := Campaign{Load: path}
	back, srv2, err := load.DatasetAndServer(nil, logf)
	if err != nil {
		t.Fatal(err)
	}
	if srv2 != nil {
		t.Fatal("artifact load returned a server")
	}
	if len(back.WER) != len(ds.WER) || len(back.PUE) != len(ds.PUE) {
		t.Fatalf("loaded artifact shape %d/%d, want %d/%d",
			len(back.WER), len(back.PUE), len(ds.WER), len(ds.PUE))
	}
	// The loader adopts the artifact's build settings, so query-workload
	// profiling matches the training rows even when flags disagree.
	if !back.Build.Known() || !back.Build.Quick() {
		t.Fatalf("build info not persisted: %+v", back.Build)
	}
	if !load.Quick || load.Size() != workload.SizeTest {
		t.Fatalf("loader did not adopt -quick from artifact: %+v", load)
	}
}

func TestDatasetLoadMissing(t *testing.T) {
	c := Campaign{Load: filepath.Join(t.TempDir(), "missing.gz")}
	if _, err := c.Dataset(nil, func(string, ...any) {}); err == nil {
		t.Fatal("missing artifact accepted")
	}
}
