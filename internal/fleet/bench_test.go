package fleet

import (
	"net/http/httptest"
	"testing"

	"repro/internal/core"
	"repro/internal/serve"
)

// BenchmarkFleetDrive is the canonical end-to-end benchmark: one op drives
// a 64-query fleet stream through a live serve.Server over loopback HTTP
// (closed-loop, both targets per query). It measures the whole stack —
// generator, HTTP client pool, handler, predict path, JSON both ways.
// Tracked in BENCH_<machine-class>.json by scripts/bench.sh.
func BenchmarkFleetDrive(b *testing.B) {
	s := serve.New(testDataset(b), serve.Options{Quick: true, Seed: 3, Workers: 2})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	f, err := New(Config{Servers: 6, Seed: 11, Workloads: []string{"backprop", "random"}})
	if err != nil {
		b.Fatal(err)
	}
	qs := f.Take(64)
	opts := DriveOptions{
		BaseURL: ts.URL, QPS: 1e6, Workers: 4,
		Targets: core.Targets(), Client: ts.Client(),
	}
	// Warm: train/cache the models before timing.
	if _, err := Drive(qs[:4], opts); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		outs, err := Drive(qs, opts)
		if err != nil {
			b.Fatal(err)
		}
		for _, o := range outs {
			if o.Err != nil {
				b.Fatal(o.Err)
			}
		}
	}
}
