// Package fleet simulates a heterogeneous datacenter fleet running under
// relaxed DRAM refresh — the scenario the serving layer exists for. The
// paper characterizes one X-Gene2 server; fleet-scale memory-failure work
// (see PAPERS.md: "Investigating Memory Failure Prediction Across CPU
// Architectures", "DRAM Failure Prediction in AIOps") frames prediction as
// an online problem over a stream of telemetry from many machines that
// differ in silicon quality, operating point and workload. This package
// produces exactly that stream, deterministically:
//
//   - N simulated servers, each with its own per-DIMM weak-cell density
//     variation (lognormal jitter over the calibrated rank densities),
//     refresh-relaxation policy (a TREFP from the paper's campaign grid)
//     and pair frailty — all drawn from stats.RNG Split streams so the
//     whole fleet is a pure function of (Config, Seed);
//   - a per-server ambient-temperature schedule (a diurnal sinusoid with a
//     per-server phase, as racks see different airflow) driving a
//     thermal.Plant — the same first-order DIMM thermal model the
//     characterization testbed uses — with heater power standing in for
//     the running workload's dissipation;
//   - a rotating workload mix per server: every shift the server moves to
//     the next benchmark of its mix, so the stream interleaves programs
//     the way a scheduler does.
//
// Each tick every server emits one Query: the prediction request a
// telemetry agent would send to dramserve, paired with the fleet model's
// own ground-truth WER and PUE for that instant. The truth comes from the
// same calibrated laws as internal/dram (retention tail exponent,
// temperature halving, per-rank density, pair-retention cliff), evaluated
// in closed form so a million-query stream costs milliseconds, not
// simulated characterization hours.
//
// Determinism contract: the stream is a pure function of Config — the same
// seed yields the same servers, the same temperatures, the same workload
// rotations and the same truth values, byte for byte (Checksum pins it).
// cmd/dramfleet builds its replayable load runs on this contract.
package fleet

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/core"
	"repro/internal/dram"
	"repro/internal/profile"
	"repro/internal/stats"
	"repro/internal/thermal"
	"repro/internal/workload"
)

// Defaults for the zero Config fields.
const (
	DefaultServers     = 16
	DefaultMixSize     = 4
	DefaultShiftTicks  = 8
	DefaultTickSeconds = 900 // one telemetry interval: 15 minutes
)

// Ambient-schedule shape: a diurnal sinusoid around a datacenter setpoint.
const (
	ambientBaseC  = 26.0
	ambientSwingC = 4.0
	daySeconds    = 86400.0
)

// Config describes one simulated fleet. The emitted stream is a pure
// function of this struct: same Config, same stream.
type Config struct {
	// Servers is the fleet size (default DefaultServers).
	Servers int
	// Seed keys every random draw of the simulation.
	Seed uint64
	// Workloads are the benchmark labels servers draw their mixes from;
	// default: the full servable catalog (workload.ExtendedSet).
	Workloads []string
	// MixSize is how many workloads each server rotates through (default
	// DefaultMixSize, capped at len(Workloads)).
	MixSize int
	// ShiftTicks is the number of ticks a server stays on one workload
	// before rotating (default DefaultShiftTicks).
	ShiftTicks int
	// TickSeconds is the simulated time between telemetry queries per
	// server (default DefaultTickSeconds).
	TickSeconds float64
}

func (c *Config) setDefaults() error {
	if c.Servers == 0 {
		c.Servers = DefaultServers
	}
	if c.Servers < 0 {
		return fmt.Errorf("fleet: %d servers", c.Servers)
	}
	if len(c.Workloads) == 0 {
		c.Workloads = workload.Labels(workload.ExtendedSet())
	}
	for _, l := range c.Workloads {
		if _, err := workload.FindSpec(l); err != nil {
			return fmt.Errorf("fleet: %w", err)
		}
	}
	if c.MixSize == 0 {
		c.MixSize = DefaultMixSize
	}
	if c.MixSize < 0 {
		return fmt.Errorf("fleet: mix size %d", c.MixSize)
	}
	if c.MixSize > len(c.Workloads) {
		c.MixSize = len(c.Workloads)
	}
	if c.ShiftTicks == 0 {
		c.ShiftTicks = DefaultShiftTicks
	}
	if c.ShiftTicks < 0 {
		return fmt.Errorf("fleet: shift of %d ticks", c.ShiftTicks)
	}
	if c.TickSeconds == 0 {
		c.TickSeconds = DefaultTickSeconds
	}
	if c.TickSeconds < 0 || math.IsNaN(c.TickSeconds) || math.IsInf(c.TickSeconds, 0) {
		return fmt.Errorf("fleet: tick of %v seconds", c.TickSeconds)
	}
	return nil
}

// Query is one telemetry instant of one server: the prediction request a
// fleet agent would send, plus the simulation's own ground truth for it.
// The field order is the canonical stream encoding (JSON lines and the
// Checksum both follow it).
type Query struct {
	// Seq is the global 0-based position in the stream.
	Seq int `json:"seq"`
	// Server is the emitting server's fleet index.
	Server int `json:"server"`
	// Workload is the benchmark label the server is running this shift.
	Workload string `json:"workload"`
	// TREFP, VDD and TempC form the server's operating point this tick.
	TREFP float64 `json:"trefp"`
	VDD   float64 `json:"vdd"`
	TempC float64 `json:"temp_c"`
	// TruthWER and TruthPUE are the fleet model's ground truth: the
	// device-mean word error rate and the crash probability the simulated
	// server actually exhibits at this instant.
	TruthWER float64 `json:"truth_wer"`
	TruthPUE float64 `json:"truth_pue"`
	// CE is the tick's correctable-error telemetry window: the scrubbed
	// error log a fleet agent would report alongside the query,
	// time-ordered within the tick. Healthy servers emit sparse uniform
	// noise; latent-fault servers emit bursty logs concentrated on their
	// weak rows/columns (the spatial signature the UE-risk classifier
	// learns).
	CE []profile.CEEvent `json:"ce,omitempty"`
	// TruthUE is the ground-truth probability that this server suffers an
	// uncorrectable error within the prediction horizon — the closed-form
	// function of the server's latent fault severity that labels the
	// UE-risk training rows (label = TruthUE >= 0.5).
	TruthUE float64 `json:"truth_ue"`
}

// simServer is one machine of the fleet: immutable identity drawn at
// construction (silicon variation, refresh policy, schedule phase, mix)
// plus the mutable thermal state advanced every tick.
type simServer struct {
	id int
	// density is the per-rank weak-cell density: the calibrated paper
	// ranks scaled by this server's per-DIMM lognormal jitter.
	density [dram.NumRanks]float64
	// frailty scales how early this server's coupled pairs cross the UE
	// cliff (machine-to-machine PUE variation).
	frailty float64
	// trefp is the server's refresh-relaxation policy, from the campaign
	// grid.
	trefp float64
	// phase offsets the diurnal ambient schedule (rack position).
	phase float64
	// mix is the rotation of workload labels this server cycles through.
	mix []string

	// act is the mutable mitigation state the policy layer drives
	// (actuate.go); its zero value is "no mitigation".
	act actuation

	plant *thermal.Plant

	// telem is the server's CE-telemetry generator: its latent fault state
	// and the RNG stream its error logs are drawn from.
	telem telemetry
}

// Telemetry generative model (the scenario of "Exploring Error Bits for
// Memory Failure Prediction"): a fraction of servers carry a latent DRAM
// fault of some severity. Healthy servers log sparse, spatially uniform
// single-bit CEs — scrubbing noise. Faulty servers log more events,
// concentrated on a few weak rows/columns of one bank, arriving in bursts,
// with multi-bit corrections appearing as severity grows. The ground-truth
// UE probability is a closed-form logistic in the severity, so labels are
// exact and the stream stays a pure function of Config.
const (
	faultProb       = 0.35 // fraction of servers with a latent fault
	healthyCERate   = 0.8  // mean CE events per tick, healthy
	faultyCEBase    = 2.0  // faulty event-rate floor per tick
	faultyCEScale   = 18.0 // event-rate growth with severity
	ueKnee          = 0.40 // severity at which TruthUE crosses 0.5
	ueWidth         = 0.08 // logistic width of the UE cliff
	telemetryRows   = 1 << 15
	telemetryCols   = 1 << 10
	telemetryBanks  = 8
	weakRowChance   = 0.8 // faulty events land on a weak row this often
	weakColChance   = 0.6
	burstFraction   = 0.5  // faulty events arriving in one tight burst
	burstWindowFrac = 0.02 // burst width as a fraction of the tick
)

// telemetry is one server's CE-log generator.
type telemetry struct {
	rng      *stats.RNG
	severity float64 // 0 = healthy; (0, 1] = latent fault severity
	weakRows []int
	weakCols []int
	weakBank int
	weakRank int
}

// newTelemetry draws the server's latent fault state. All draws come from
// the dedicated stream, so adding telemetry leaves every other per-server
// draw untouched.
func newTelemetry(rng *stats.RNG) telemetry {
	tm := telemetry{rng: rng}
	if rng.Float64() < faultProb {
		tm.severity = 0.1 + 0.9*rng.Float64()
		nRows := 1 + rng.Intn(3)
		for i := 0; i < nRows; i++ {
			tm.weakRows = append(tm.weakRows, rng.Intn(telemetryRows))
		}
		nCols := 1 + rng.Intn(3)
		for i := 0; i < nCols; i++ {
			tm.weakCols = append(tm.weakCols, rng.Intn(telemetryCols))
		}
		tm.weakBank = rng.Intn(telemetryBanks)
		tm.weakRank = rng.Intn(dram.NumRanks)
	}
	return tm
}

// truthUE is the closed-form ground-truth UE probability for the server's
// latent severity: a logistic cliff — healthy servers sit near zero,
// severe faults near one.
func (tm *telemetry) truthUE() float64 {
	return 1 / (1 + math.Exp(-(tm.severity-ueKnee)/ueWidth))
}

// window emits one tick's CE log: event times drawn inside [0, dur), then
// sorted, then coordinates assigned in time order — a fixed draw sequence,
// so the log is a pure function of the telemetry stream state.
func (tm *telemetry) window(dur float64) []profile.CEEvent {
	var n int
	if tm.severity > 0 {
		n = int(tm.rng.Poisson(faultyCEBase + faultyCEScale*tm.severity))
	} else {
		n = int(tm.rng.Poisson(healthyCERate))
	}
	if n == 0 {
		return nil
	}
	times := make([]float64, n)
	if tm.severity > 0 {
		// A burst: a fraction of the events collapse into one tight
		// window around a random center, the rest spread uniformly.
		center := tm.rng.Float64() * dur
		for i := range times {
			if tm.rng.Float64() < burstFraction {
				t := center + (tm.rng.Float64()-0.5)*burstWindowFrac*dur
				if t < 0 {
					t = 0
				}
				if t >= dur {
					t = dur * (1 - 1e-9)
				}
				times[i] = t
			} else {
				times[i] = tm.rng.Float64() * dur
			}
		}
	} else {
		for i := range times {
			times[i] = tm.rng.Float64() * dur
		}
	}
	sort.Float64s(times)

	events := make([]profile.CEEvent, n)
	for i := range events {
		e := &events[i]
		e.T = times[i]
		if tm.severity > 0 {
			if tm.rng.Float64() < weakRowChance {
				e.Row = tm.weakRows[tm.rng.Intn(len(tm.weakRows))]
			} else {
				e.Row = tm.rng.Intn(telemetryRows)
			}
			if tm.rng.Float64() < weakColChance {
				e.Col = tm.weakCols[tm.rng.Intn(len(tm.weakCols))]
			} else {
				e.Col = tm.rng.Intn(telemetryCols)
			}
			e.Bank = tm.weakBank
			e.Rank = tm.weakRank
			if tm.rng.Float64() < tm.severity {
				e.Bits = 2 + tm.rng.Intn(3)
			} else {
				e.Bits = 1
			}
		} else {
			e.Row = tm.rng.Intn(telemetryRows)
			e.Col = tm.rng.Intn(telemetryCols)
			e.Bank = tm.rng.Intn(telemetryBanks)
			e.Rank = tm.rng.Intn(dram.NumRanks)
			e.Bits = 1
		}
	}
	return events
}

// newSimServer derives server id entirely from rng, in a fixed draw order:
// changing the order is a stream-format change.
func newSimServer(id int, rng *stats.RNG, cfg *Config) *simServer {
	sv := &simServer{id: id, frailty: rng.LogNormal(0, 0.15)}
	params := dram.DefaultParams()
	for d := 0; d < dram.NumDIMMs; d++ {
		jitter := rng.LogNormal(0, 0.6)
		for r := 0; r < dram.RanksPerDIMM; r++ {
			rank := d*dram.RanksPerDIMM + r
			sv.density[rank] = params.RankDensity[rank] * jitter
		}
	}
	sv.trefp = core.WERTrefps[rng.Intn(len(core.WERTrefps))]
	sv.phase = 2 * math.Pi * rng.Float64()
	perm := rng.Perm(len(cfg.Workloads))
	for _, i := range perm[:cfg.MixSize] {
		sv.mix = append(sv.mix, cfg.Workloads[i])
	}
	sv.plant = thermal.NewPlant(ambientAt(0, sv.phase), rng.Uint64())
	// Telemetry state is drawn LAST, from its own Split stream: every draw
	// above sees exactly the sequence it saw before telemetry existed, so
	// server identities (densities, policies, mixes) are unchanged.
	sv.telem = newTelemetry(rng.Split())
	return sv
}

// ambientAt is the inlet temperature of a server with the given schedule
// phase at simulated time t.
func ambientAt(t, phase float64) float64 {
	return ambientBaseC + ambientSwingC*math.Sin(2*math.Pi*t/daySeconds+phase)
}

// workloadFrac hashes a benchmark label into [0, 1) — the deterministic
// per-workload factors (heat dissipation, disturbance stress) come from
// distinct salts over this.
func workloadFrac(label string, salt uint64) float64 {
	h := salt ^ 0xcbf29ce484222325
	for i := 0; i < len(label); i++ {
		h ^= uint64(label[i])
		h *= 0x100000001b3
	}
	return float64(h>>11) / (1 << 53)
}

// heaterPowerW maps a workload to the DIMM heat load it imposes: busier
// kernels dissipate more into the module. The range keeps steady-state
// DIMM temperatures in the characterization band (≈35–75 °C).
func heaterPowerW(label string, max float64) float64 {
	return (0.15 + 0.40*workloadFrac(label, 0x9e37)) * max
}

// stress is the workload's disturbance/data-pattern aggressiveness: how
// much it shortens effective retention versus an idle pattern.
func stress(label string) float64 {
	return 0.8 + 0.5*workloadFrac(label, 0x51ed)
}

// step advances the server's thermal state by dt simulated seconds ending
// at time t, under the heat load of the running workload.
func (sv *simServer) step(label string, t, dt float64) {
	sv.plant.AmbientC = ambientAt(t, sv.phase)
	power := heaterPowerW(label, sv.plant.MaxPowerW)
	// Sub-step the plant: its time constant (tens of seconds) and its
	// per-step measurement noise both need a dt far below one tick.
	const sub = 5.0
	for remaining := dt; remaining > 0; remaining -= sub {
		step := sub
		if remaining < sub {
			step = remaining
		}
		sv.plant.Step(power, step)
	}
}

// truth evaluates the fleet model's ground truth for the server running
// label at DIMM temperature tempC: the closed-form macro view of the same
// calibrated laws internal/dram simulates mechanistically. The effective
// stress x folds the refresh period (after any policy retune), the
// retention-halving temperature dependence and the workload's disturbance
// aggressiveness into one equivalent refresh exposure. Offlined ranks
// contribute no errors: the WER averages over the in-service ranks only.
func (sv *simServer) truth(label string, tempC float64) (wer, pue float64) {
	params := dram.DefaultParams()
	tempFactor := math.Exp2((tempC - params.ReferenceTempC) / params.RetentionHalvingC)
	x := sv.effectiveTREFP() * tempFactor * stress(label)

	// WER: the retention-tail CDF per rank, F(t) = K·d·t^gamma, averaged
	// over the device like the serving layer's RankDevice mean.
	tail := math.Pow(x, params.RetentionGamma)
	sum, online := 0.0, 0
	for r := 0; r < dram.NumRanks; r++ {
		if sv.act.offline[r] {
			continue
		}
		w := params.RetentionK * sv.density[r] * tail
		if w > 1 {
			w = 1
		}
		sum += w
		online++
	}
	if online > 0 {
		wer = sum / float64(online)
	}

	// PUE: coupled pairs crash the machine once the effective exposure
	// approaches the pair-retention median; the narrow retention band
	// makes it a cliff (no crashes at 50/60 °C, certain crashes at the
	// longest TREFP at 70 °C), positioned per server by its frailty.
	const knee, width = 6.5, 0.7
	pue = 1 / (1 + math.Exp(-(x*sv.frailty-knee)/width))
	return wer, pue
}

// Fleet is one running simulation. It is not safe for concurrent use; the
// stream it emits is deterministic in its Config.
type Fleet struct {
	cfg     Config
	servers []*simServer
	tick    int
	seq     int
	pending []Query
}

// New builds the fleet. Every server's identity is drawn up front from a
// fixed sequence of stats.RNG Split streams, so the fleet (and everything
// it will ever emit) is a function of cfg alone.
func New(cfg Config) (*Fleet, error) {
	if err := cfg.setDefaults(); err != nil {
		return nil, err
	}
	f := &Fleet{cfg: cfg}
	root := stats.NewRNG(cfg.Seed ^ 0xf1ee7) // domain-separate from other seed users
	for i := 0; i < cfg.Servers; i++ {
		f.servers = append(f.servers, newSimServer(i, root.Split(), &cfg))
	}
	return f, nil
}

// Config returns the resolved configuration (defaults applied).
func (f *Fleet) Config() Config { return f.cfg }

// emitTick runs one tick: every server steps its thermal state and emits
// one query, in server order. The raw CE window is always generated before
// the offline filter is applied, so the RNG draw sequence is independent
// of the actuation state (the A/B lockstep contract of actuate.go).
func (f *Fleet) emitTick() []Query {
	f.tick++
	t := float64(f.tick) * f.cfg.TickSeconds
	shift := (f.tick / f.cfg.ShiftTicks) % max(1, f.cfg.MixSize)
	out := make([]Query, 0, len(f.servers))
	for _, sv := range f.servers {
		label := sv.mix[shift%len(sv.mix)]
		if sv.act.migrate != "" {
			label = sv.act.migrate
		}
		sv.step(label, t, f.cfg.TickSeconds)
		tempC := sv.plant.TempC()
		wer, pue := sv.truth(label, tempC)
		out = append(out, Query{
			Seq:      f.seq,
			Server:   sv.id,
			Workload: label,
			TREFP:    sv.effectiveTREFP(),
			VDD:      dram.MinVDD,
			TempC:    tempC,
			TruthWER: wer,
			TruthPUE: pue,
			CE:       sv.act.filterCE(sv.telem.window(f.cfg.TickSeconds)),
			TruthUE:  sv.truthUE(),
		})
		f.seq++
	}
	return out
}

// advance buffers one tick for the Next/Take stream interface.
func (f *Fleet) advance() {
	f.pending = append(f.pending, f.emitTick()...)
}

// Tick advances the simulation one tick and returns that tick's queries,
// one per server in server order — the synchronous interface the policy
// control loop runs on (observe the tick, decide, actuate, repeat).
// Actuations apply from the next tick. Tick and Next/Take must not be
// mixed on one Fleet: Tick bypasses the pending buffer.
func (f *Fleet) Tick() []Query {
	return f.emitTick()
}

// Next returns the next query of the infinite stream.
func (f *Fleet) Next() Query {
	for len(f.pending) == 0 {
		f.advance()
	}
	q := f.pending[0]
	f.pending = f.pending[1:]
	return q
}

// Take returns the next n queries of the stream.
func (f *Fleet) Take(n int) []Query {
	out := make([]Query, n)
	for i := range out {
		out[i] = f.Next()
	}
	return out
}

// BuildUESamples synthesizes the UE-risk training corpus from the fleet
// stream: one row per (server, tick) over the first windows ticks, each
// row the tick's CE log vectorized through the profile error-bit catalog
// with the closed-form ground-truth label attached. Deterministic in
// (cfg, windows); a leave-one-server-out evaluation needs cfg.Servers of
// at least 2.
func BuildUESamples(cfg Config, windows int) ([]core.UESample, error) {
	if windows <= 0 {
		return nil, fmt.Errorf("fleet: %d telemetry windows", windows)
	}
	f, err := New(cfg)
	if err != nil {
		return nil, err
	}
	if f.cfg.Servers < 2 {
		return nil, fmt.Errorf("fleet: %d servers cannot support leave-one-server-out evaluation", f.cfg.Servers)
	}
	qs := f.Take(windows * f.cfg.Servers)
	rows := make([]core.UESample, len(qs))
	for i := range qs {
		q := &qs[i]
		label := 0.0
		if q.TruthUE >= 0.5 {
			label = 1
		}
		rows[i] = core.UESample{
			Server:     fmt.Sprintf("server%02d", q.Server),
			TREFP:      q.TREFP,
			VDD:        q.VDD,
			TempC:      q.TempC,
			CEFeatures: profile.CEFeatures(q.CE),
			UE:         label,
		}
	}
	return rows, nil
}
