package fleet

import (
	"fmt"
	"math"

	"repro/internal/dram"
	"repro/internal/profile"
)

// The actuation path: the mitigation knobs a policy engine (internal/
// policy) turns on a running fleet. The RL-mitigation literature in
// PAPERS.md acts on exactly the levers this simulator already models —
// the refresh period (the paper's TREFP operating point), memory
// offlining, and job placement — so actuation is three mutators on the
// per-server state the truth laws and the telemetry generator read:
//
//   - SetTREFP overrides the server's deployed refresh-relaxation policy.
//     A tighter (smaller) TREFP reduces the effective refresh exposure x,
//     pulling both the WER and the crash cliff down, at a refresh-energy
//     cost proportional to the extra refresh rate.
//   - OfflineRank removes a DRAM rank from service: its weak cells stop
//     contributing errors (WER averages over the online ranks only), CE
//     events on it vanish from the telemetry stream, and a latent fault
//     whose weak rank is offlined no longer threatens an uncorrectable
//     error — at the capacity cost of the offlined fraction.
//   - Migrate replaces the server's scheduled workload with a designated
//     label (a job moved elsewhere; the slot runs the replacement), which
//     changes both the heat load driving the thermal plant and the
//     disturbance stress folded into x.
//
// Determinism under actuation is deliberate and load-bearing: every
// random draw of the simulation (server identities, thermal noise, CE
// event generation) is independent of the actuation state. Mitigation is
// applied as a pure transform over the same underlying draws — the CE
// window is generated raw and then filtered, the truth laws are
// re-parameterized, the thermal plant sees a different but draw-count-
// identical power input — so two fleets with the same Config stay in RNG
// lockstep no matter which policies drive them. That is what makes
// same-seed A/B policy comparison exact: policy A and policy B are judged
// on byte-identical underlying randomness, and an un-actuated shadow
// fleet replays the baseline alongside either one.

// actuation is one server's mutable mitigation state. The zero value is
// "no mitigation": the server runs its deployed TREFP, all ranks online,
// the scheduled workload mix.
type actuation struct {
	// trefp overrides the deployed refresh period when > 0.
	trefp float64
	// offline marks ranks removed from service.
	offline  [dram.NumRanks]bool
	offlined int // cached count of true entries
	// migrate overrides the scheduled workload label when non-empty.
	migrate string
}

// ServerState is the read view of one server's actuation state — what the
// policy loop may observe (deployed vs effective operating point, capacity
// and placement state), deliberately excluding the latent fault state the
// simulator knows but a real fleet controller would not.
type ServerState struct {
	// DeployedTREFP is the server's original refresh-relaxation policy.
	DeployedTREFP float64
	// TREFP is the effective refresh period (the deployed one unless
	// retuned).
	TREFP float64
	// OfflineRanks counts ranks currently removed from service.
	OfflineRanks int
	// Migrated is the workload label the server was migrated to; empty
	// when it runs its scheduled mix.
	Migrated string
}

func (f *Fleet) server(id int) (*simServer, error) {
	if id < 0 || id >= len(f.servers) {
		return nil, fmt.Errorf("fleet: server %d out of range [0, %d)", id, len(f.servers))
	}
	return f.servers[id], nil
}

// State returns the actuation view of one server.
func (f *Fleet) State(id int) (ServerState, error) {
	sv, err := f.server(id)
	if err != nil {
		return ServerState{}, err
	}
	return ServerState{
		DeployedTREFP: sv.trefp,
		TREFP:         sv.effectiveTREFP(),
		OfflineRanks:  sv.act.offlined,
		Migrated:      sv.act.migrate,
	}, nil
}

// SetTREFP retunes a server's refresh period. It reports whether the
// effective operating point actually changed (retuning to the current
// value is a no-op, not an error, so idempotent policies stay simple).
func (f *Fleet) SetTREFP(id int, trefp float64) (changed bool, err error) {
	sv, err := f.server(id)
	if err != nil {
		return false, err
	}
	if trefp <= 0 || math.IsNaN(trefp) || math.IsInf(trefp, 0) {
		return false, fmt.Errorf("fleet: server %d: trefp %v out of range", id, trefp)
	}
	if sv.effectiveTREFP() == trefp {
		return false, nil
	}
	sv.act.trefp = trefp
	return true, nil
}

// ResetTREFP returns a server to its deployed refresh policy.
func (f *Fleet) ResetTREFP(id int) (changed bool, err error) {
	sv, err := f.server(id)
	if err != nil {
		return false, err
	}
	changed = sv.act.trefp != 0 && sv.act.trefp != sv.trefp
	sv.act.trefp = 0
	return changed, nil
}

// OfflineRank removes a rank from service. Offlining an already-offline
// rank is a no-op.
func (f *Fleet) OfflineRank(id, rank int) (changed bool, err error) {
	sv, err := f.server(id)
	if err != nil {
		return false, err
	}
	if rank < 0 || rank >= dram.NumRanks {
		return false, fmt.Errorf("fleet: server %d: rank %d out of range [0, %d)", id, rank, dram.NumRanks)
	}
	if sv.act.offline[rank] {
		return false, nil
	}
	sv.act.offline[rank] = true
	sv.act.offlined++
	return true, nil
}

// OnlineRank returns an offlined rank to service.
func (f *Fleet) OnlineRank(id, rank int) (changed bool, err error) {
	sv, err := f.server(id)
	if err != nil {
		return false, err
	}
	if rank < 0 || rank >= dram.NumRanks {
		return false, fmt.Errorf("fleet: server %d: rank %d out of range [0, %d)", id, rank, dram.NumRanks)
	}
	if !sv.act.offline[rank] {
		return false, nil
	}
	sv.act.offline[rank] = false
	sv.act.offlined--
	return true, nil
}

// Migrate replaces the server's scheduled workload with label from the
// next tick on. The label must be in the fleet's workload catalog.
func (f *Fleet) Migrate(id int, label string) (changed bool, err error) {
	sv, err := f.server(id)
	if err != nil {
		return false, err
	}
	found := false
	for _, l := range f.cfg.Workloads {
		if l == label {
			found = true
			break
		}
	}
	if !found {
		return false, fmt.Errorf("fleet: server %d: workload %q not in the fleet catalog", id, label)
	}
	if sv.act.migrate == label {
		return false, nil
	}
	sv.act.migrate = label
	return true, nil
}

// ClearMigration returns a server to its scheduled workload mix.
func (f *Fleet) ClearMigration(id int) (changed bool, err error) {
	sv, err := f.server(id)
	if err != nil {
		return false, err
	}
	changed = sv.act.migrate != ""
	sv.act.migrate = ""
	return changed, nil
}

// effectiveTREFP is the refresh period the server actually runs.
func (sv *simServer) effectiveTREFP() float64 {
	if sv.act.trefp > 0 {
		return sv.act.trefp
	}
	return sv.trefp
}

// healthyTruthUE is the ground-truth UE probability of a fault-free
// server: the logistic cliff evaluated at severity zero.
var healthyTruthUE = 1 / (1 + math.Exp(ueKnee/ueWidth))

// truthUE is the server's ground-truth UE probability under mitigation:
// a latent fault whose weak rank is offlined no longer threatens the
// machine, so the probability collapses to the healthy floor.
func (sv *simServer) truthUE() float64 {
	if sv.telem.severity > 0 && sv.act.offline[sv.telem.weakRank] {
		return healthyTruthUE
	}
	return sv.telem.truthUE()
}

// filterCE drops events on offlined ranks. The raw window is always
// generated first (the RNG-lockstep contract); filtering is the visible
// effect of the mitigation. The filter reuses the raw slice — raw events
// are freshly allocated per tick and never shared.
func (a *actuation) filterCE(events []profile.CEEvent) []profile.CEEvent {
	if a.offlined == 0 || len(events) == 0 {
		return events
	}
	kept := events[:0]
	for _, e := range events {
		if !a.offline[e.Rank] {
			kept = append(kept, e)
		}
	}
	if len(kept) == 0 {
		return nil
	}
	return kept
}

// CoolestWorkload picks the migration destination a policy defaults to:
// the catalog label with the lowest combined disturbance stress and heat
// load — the deterministic stand-in for "move the job somewhere gentle".
// Ties break lexicographically; empty input returns "".
func CoolestWorkload(labels []string) string {
	best, bestScore := "", math.Inf(1)
	for _, l := range labels {
		score := stress(l) + heaterPowerW(l, 1)
		if score < bestScore || (score == bestScore && (best == "" || l < best)) {
			best, bestScore = l, score
		}
	}
	return best
}
