package fleet

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
	"sort"
	"strings"
	"time"

	"repro/internal/core"
)

// Checksum fingerprints a query stream: FNV-1a over the canonical binary
// encoding of every field of every query, in stream order. Two runs with
// the same Config produce the same checksum — the determinism contract
// smoke tests and regression benchmarks pin.
func Checksum(qs []Query) string {
	h := fnv.New64a()
	var buf [8]byte
	u64 := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	f64 := func(v float64) { u64(math.Float64bits(v)) }
	for i := range qs {
		q := &qs[i]
		u64(uint64(q.Seq))
		u64(uint64(q.Server))
		h.Write([]byte(q.Workload))
		f64(q.TREFP)
		f64(q.VDD)
		f64(q.TempC)
		f64(q.TruthWER)
		f64(q.TruthPUE)
		u64(uint64(len(q.CE)))
		for j := range q.CE {
			e := &q.CE[j]
			f64(e.T)
			u64(uint64(e.Row))
			u64(uint64(e.Col))
			u64(uint64(e.Bank))
			u64(uint64(e.Rank))
			u64(uint64(e.Bits))
		}
		f64(q.TruthUE)
	}
	return fmt.Sprintf("fnv64:%016x", h.Sum64())
}

// Outcome is the observation of one driven query: what the server
// answered and how long the round trip took. A zero Outcome (offline
// runs) carries no information.
type Outcome struct {
	// Latency is the wall-clock round trip of the HTTP request.
	Latency time.Duration
	// Err is non-nil when the query failed (transport error or non-200).
	Err error
	// Status is the HTTP status code (0 on transport errors).
	Status int
	// Predictions holds the server's answer per requested target.
	Predictions map[core.Target]float64
	// Fingerprint is the serving artifact's content hash at answer time —
	// queries answered before and after a mid-run retrain carry different
	// fingerprints, which is what lets the report split its online MAE
	// across model generations.
	Fingerprint string
	// Ingested reports whether the query's observation was accepted by
	// /v2/ingest (ingest-mode runs only).
	Ingested bool
}

// Report aggregates one dramfleet run: the deterministic stream statistics
// (always) plus the driven outcomes (when the run was online). Render
// separates the two so the deterministic part can be compared byte for
// byte across runs while wall-clock timing stays observable.
type Report struct {
	// Seed and Servers echo the generating Config.
	Seed    uint64
	Servers int
	// Targets are the targets each query requested, in request order.
	Targets []core.Target
	// Queries is the emitted stream.
	Queries []Query
	// Outcomes pairs with Queries on online runs; nil on offline runs.
	Outcomes []Outcome
	// Wall is the end-to-end wall time of the driven run (timing section
	// only; zero offline).
	Wall time.Duration
}

// Completed counts the queries the server answered successfully.
func (r *Report) Completed() int {
	n := 0
	for i := range r.Outcomes {
		if r.Outcomes[i].Err == nil {
			n++
		}
	}
	return n
}

// Failed counts the queries that errored.
func (r *Report) Failed() int { return len(r.Outcomes) - r.Completed() }

// Ingested counts the observations the server's ingest queue accepted.
func (r *Report) Ingested() int {
	n := 0
	for i := range r.Outcomes {
		if r.Outcomes[i].Ingested {
			n++
		}
	}
	return n
}

// MAE is the online prediction error per target over the completed
// queries: WER compared in log10 space (the rate spans decades, exactly
// why the paper regresses log10(WER)), PUE and UE risk as raw probability
// differences against their ground truths. The map is empty for offline
// runs.
func (r *Report) MAE() map[core.Target]float64 {
	sums := map[core.Target]float64{}
	counts := map[core.Target]int{}
	for i := range r.Outcomes {
		o := &r.Outcomes[i]
		if o.Err != nil {
			continue
		}
		q := &r.Queries[i]
		for t, pred := range o.Predictions {
			var err float64
			switch t {
			case core.TargetWER:
				err = math.Abs(logFloor(pred) - logFloor(q.TruthWER))
			case core.TargetPUE:
				err = math.Abs(pred - q.TruthPUE)
			case core.TargetUERisk:
				err = math.Abs(pred - q.TruthUE)
			default:
				continue
			}
			sums[t] += err
			counts[t]++
		}
	}
	out := make(map[core.Target]float64, len(sums))
	for t, s := range sums {
		out[t] = s / float64(counts[t])
	}
	return out
}

// FingerprintMAE is one artifact generation's slice of the online MAE: a
// mid-run retrain swaps the serving fingerprint, so splitting the error
// by fingerprint compares the model before and after it absorbed the
// ingested observations.
type FingerprintMAE struct {
	// Fingerprint identifies the artifact that answered these queries.
	Fingerprint string
	// Queries counts the completed queries it answered.
	Queries int
	// MAE is the per-target online MAE over exactly those queries.
	MAE map[core.Target]float64
}

// MAEByFingerprint splits the online MAE by the serving artifact
// fingerprint, in first-answered order. One entry when no retrain
// happened mid-run; empty for offline runs.
func (r *Report) MAEByFingerprint() []FingerprintMAE {
	idx := map[string]int{}
	var groups []FingerprintMAE
	sums := []map[core.Target]float64{}
	counts := []map[core.Target]int{}
	for i := range r.Outcomes {
		o := &r.Outcomes[i]
		if o.Err != nil {
			continue
		}
		j, ok := idx[o.Fingerprint]
		if !ok {
			j = len(groups)
			idx[o.Fingerprint] = j
			groups = append(groups, FingerprintMAE{Fingerprint: o.Fingerprint})
			sums = append(sums, map[core.Target]float64{})
			counts = append(counts, map[core.Target]int{})
		}
		groups[j].Queries++
		q := &r.Queries[i]
		for t, pred := range o.Predictions {
			var err float64
			switch t {
			case core.TargetWER:
				err = math.Abs(logFloor(pred) - logFloor(q.TruthWER))
			case core.TargetPUE:
				err = math.Abs(pred - q.TruthPUE)
			case core.TargetUERisk:
				err = math.Abs(pred - q.TruthUE)
			default:
				continue
			}
			sums[j][t] += err
			counts[j][t]++
		}
	}
	for j := range groups {
		groups[j].MAE = make(map[core.Target]float64, len(sums[j]))
		for t, s := range sums[j] {
			groups[j].MAE[t] = s / float64(counts[j][t])
		}
	}
	return groups
}

// logFloor is log10 with the campaign's observation floor, matching how
// the WER models are trained.
func logFloor(w float64) float64 {
	if w < core.WERFloor {
		w = core.WERFloor
	}
	return math.Log10(w)
}

// Latencies returns the completed queries' round-trip times.
func (r *Report) Latencies() []time.Duration {
	var out []time.Duration
	for i := range r.Outcomes {
		if r.Outcomes[i].Err == nil {
			out = append(out, r.Outcomes[i].Latency)
		}
	}
	return out
}

// Percentile is the nearest-rank percentile of lats (q in (0, 1]); zero
// when lats is empty.
func Percentile(lats []time.Duration, q float64) time.Duration {
	if len(lats) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), lats...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	rank := int(math.Ceil(q * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

// workloadRow is one per-workload aggregate of the stream.
type workloadRow struct {
	label                       string
	queries                     int
	tempSum, truthWER, truthPUE float64
}

// byWorkload aggregates the stream per label, sorted by label.
func (r *Report) byWorkload() []workloadRow {
	idx := map[string]int{}
	var rows []workloadRow
	for i := range r.Queries {
		q := &r.Queries[i]
		j, ok := idx[q.Workload]
		if !ok {
			j = len(rows)
			idx[q.Workload] = j
			rows = append(rows, workloadRow{label: q.Workload})
		}
		rows[j].queries++
		rows[j].tempSum += q.TempC
		rows[j].truthWER += q.TruthWER
		rows[j].truthPUE += q.TruthPUE
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].label < rows[j].label })
	return rows
}

// targetNames renders the requested targets in request order; an empty
// request means the server's own default selection answered.
func targetNames(targets []core.Target) string {
	if len(targets) == 0 {
		return "(server default)"
	}
	names := make([]string, len(targets))
	for i, t := range targets {
		names[i] = string(t)
	}
	return strings.Join(names, ",")
}

// Render formats the report. Everything above the timing marker is a pure
// function of (Config, the serving artifact): two runs with the same seed
// against the same server render identical bytes. The timing section
// (withTiming) is wall-clock and deliberately outside that contract.
func (r *Report) Render(withTiming bool) string {
	var b strings.Builder
	fmt.Fprintf(&b, "== fleet report ==\n")
	fmt.Fprintf(&b, "seed      %d\n", r.Seed)
	fmt.Fprintf(&b, "servers   %d\n", r.Servers)
	fmt.Fprintf(&b, "queries   %d\n", len(r.Queries))
	fmt.Fprintf(&b, "targets   %s\n", targetNames(r.Targets))
	fmt.Fprintf(&b, "stream    %s\n", Checksum(r.Queries))
	if r.Outcomes != nil {
		fmt.Fprintf(&b, "completed %d\n", r.Completed())
		fmt.Fprintf(&b, "failed    %d\n", r.Failed())
		if n := r.Ingested(); n > 0 {
			fmt.Fprintf(&b, "ingested  %d\n", n)
		}
	}

	fmt.Fprintf(&b, "%-16s %8s %7s %10s %14s %14s\n",
		"workload", "queries", "share", "mean temp", "mean truthWER", "mean truthPUE")
	total := float64(len(r.Queries))
	for _, row := range r.byWorkload() {
		n := float64(row.queries)
		fmt.Fprintf(&b, "%-16s %8d %6.1f%% %9.1fC %14.4g %14.4f\n",
			row.label, row.queries, 100*n/total,
			row.tempSum/n, row.truthWER/n, row.truthPUE/n)
	}

	if r.Outcomes != nil {
		// Render in request order, or catalog order when the run rode the
		// server's default selection.
		order := r.Targets
		if len(order) == 0 {
			order = core.Targets()
		}
		if parts := maeParts(order, r.MAE()); len(parts) > 0 {
			fmt.Fprintf(&b, "online MAE %s\n", strings.Join(parts, "  "))
		}
		// A mid-run retrain splits the sample across artifact generations;
		// the per-fingerprint breakdown shows the model improving (or not)
		// after absorbing the ingested observations. One fingerprint means
		// no retrain happened — the overall line already says everything.
		if groups := r.MAEByFingerprint(); len(groups) > 1 {
			for _, g := range groups {
				fmt.Fprintf(&b, "  artifact %s n=%d %s\n",
					shortFP(g.Fingerprint), g.Queries, strings.Join(maeParts(order, g.MAE), "  "))
			}
		}
	}

	if withTiming && r.Outcomes != nil {
		lats := r.Latencies()
		fmt.Fprintf(&b, "-- timing (wall-clock; outside the determinism contract) --\n")
		fmt.Fprintf(&b, "p50 %.3f ms\n", ms(Percentile(lats, 0.50)))
		fmt.Fprintf(&b, "p95 %.3f ms\n", ms(Percentile(lats, 0.95)))
		fmt.Fprintf(&b, "p99 %.3f ms\n", ms(Percentile(lats, 0.99)))
		if r.Wall > 0 {
			fmt.Fprintf(&b, "achieved qps %.1f\n",
				float64(r.Completed())/r.Wall.Seconds())
		}
	}
	return b.String()
}

// maeParts renders a per-target MAE map in target order.
func maeParts(order []core.Target, mae map[core.Target]float64) []string {
	var parts []string
	for _, t := range order {
		v, ok := mae[t]
		if !ok {
			continue
		}
		switch t {
		case core.TargetWER:
			parts = append(parts, fmt.Sprintf("wer(log10)=%.4f", v))
		default:
			parts = append(parts, fmt.Sprintf("%s=%.4f", t, v))
		}
	}
	return parts
}

// shortFP abbreviates an artifact fingerprint for display.
func shortFP(fp string) string {
	if fp == "" {
		return "(none)"
	}
	if i := strings.IndexByte(fp, ':'); i >= 0 && len(fp) > i+13 {
		return fp[:i+13]
	}
	if len(fp) > 12 {
		return fp[:12]
	}
	return fp
}

// ms renders a duration in fractional milliseconds.
func ms(d time.Duration) float64 { return float64(d.Microseconds()) / 1e3 }
