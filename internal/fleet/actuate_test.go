package fleet

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/profile"
)

// TestTickMatchesTake pins the emitTick refactor: the synchronous Tick
// interface and the Next/Take stream interface produce the same queries
// for the same Config when nothing is actuated.
func TestTickMatchesTake(t *testing.T) {
	cfg := Config{Servers: 6, Seed: 9}
	a, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var ticked []Query
	for i := 0; i < 5; i++ {
		ticked = append(ticked, a.Tick()...)
	}
	taken := b.Take(len(ticked))
	if !reflect.DeepEqual(ticked, taken) {
		t.Fatal("Tick and Take emit different streams for the same config")
	}
}

// TestActuationLockstep is the A/B contract of the actuation path: random
// draws are independent of mitigation state. A heavily actuated fleet
// whose retunes and offlines are later reverted re-converges byte for
// byte with an untouched shadow fleet — proof the two never diverged in
// RNG state, only in the deterministic transform over it.
func TestActuationLockstep(t *testing.T) {
	cfg := Config{Servers: 8, Seed: 4}
	primary, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	shadow, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}

	// Warm-up tick, identical on both.
	if !reflect.DeepEqual(primary.Tick(), shadow.Tick()) {
		t.Fatal("fleets diverged before any actuation")
	}

	// Actuate hard: retune and offline across the fleet.
	for sv := 0; sv < cfg.Servers; sv++ {
		if _, err := primary.SetTREFP(sv, core.WERTrefps[0]); err != nil {
			t.Fatal(err)
		}
		if _, err := primary.OfflineRank(sv, sv%2); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 4; i++ {
		pq, sq := primary.Tick(), shadow.Tick()
		for j := range pq {
			// The mitigated stream differs in the deterministic transform...
			if pq[j].TREFP == sq[j].TREFP && pq[j].TREFP != core.WERTrefps[0] {
				t.Fatalf("tick %d query %d: retune not visible in the stream", i, j)
			}
			// ...but never in identity or schedule.
			if pq[j].Server != sq[j].Server || pq[j].Workload != sq[j].Workload {
				t.Fatalf("tick %d query %d: actuation disturbed the schedule", i, j)
			}
		}
	}

	// Revert everything: the next ticks must be byte-identical again.
	for sv := 0; sv < cfg.Servers; sv++ {
		if _, err := primary.ResetTREFP(sv); err != nil {
			t.Fatal(err)
		}
		if _, err := primary.OnlineRank(sv, sv%2); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		pq, sq := primary.Tick(), shadow.Tick()
		if !reflect.DeepEqual(pq, sq) {
			t.Fatalf("tick %d after revert: fleets did not re-converge (RNG lockstep broken)", i)
		}
	}
}

// TestRetuneLowersExposure: tightening TREFP to the grid minimum lowers
// the truth WER and crash probability relative to the shadow baseline.
func TestRetuneLowersExposure(t *testing.T) {
	cfg := Config{Servers: 8, Seed: 2}
	primary, _ := New(cfg)
	shadow, _ := New(cfg)
	for sv := 0; sv < cfg.Servers; sv++ {
		if _, err := primary.SetTREFP(sv, core.WERTrefps[0]); err != nil {
			t.Fatal(err)
		}
	}
	loweredWER := false
	for i := 0; i < 6; i++ {
		pq, sq := primary.Tick(), shadow.Tick()
		for j := range pq {
			if pq[j].TruthWER > sq[j].TruthWER || pq[j].TruthPUE > sq[j].TruthPUE {
				t.Fatalf("tick %d query %d: tightening refresh raised the truth (wer %g>%g or pue %g>%g)",
					i, j, pq[j].TruthWER, sq[j].TruthWER, pq[j].TruthPUE, sq[j].TruthPUE)
			}
			if pq[j].TruthWER < sq[j].TruthWER {
				loweredWER = true
			}
		}
	}
	if !loweredWER {
		t.Fatal("grid-minimum retune never lowered any truth WER")
	}
}

// TestOfflineWeakRankDefusesUE: offlining the rank a faulty server's CE
// telemetry concentrates on (the busiest rank of the window — exactly the
// signal a policy has) collapses its ground-truth UE probability to the
// healthy floor and silences its telemetry.
func TestOfflineWeakRankDefusesUE(t *testing.T) {
	cfg := Config{Servers: 16, Seed: 1}
	primary, _ := New(cfg)
	shadow, _ := New(cfg)

	pq, _ := primary.Tick(), shadow.Tick()
	defused := 0
	for _, q := range pq {
		if q.TruthUE < 0.5 || len(q.CE) == 0 {
			continue
		}
		rank, ok := busiestRank(q.CE)
		if !ok {
			continue
		}
		if _, err := primary.OfflineRank(q.Server, rank); err != nil {
			t.Fatal(err)
		}
		defused++
	}
	if defused == 0 {
		t.Fatal("seed produced no at-risk servers to defuse")
	}

	for i := 0; i < 3; i++ {
		pq, sq := primary.Tick(), shadow.Tick()
		for j := range pq {
			st, err := primary.State(pq[j].Server)
			if err != nil {
				t.Fatal(err)
			}
			if st.OfflineRanks == 0 {
				continue
			}
			if sq[j].TruthUE >= 0.5 && pq[j].TruthUE >= 0.5 {
				t.Fatalf("tick %d server %d: offlining the busiest CE rank left TruthUE at %g",
					i, pq[j].Server, pq[j].TruthUE)
			}
			if pq[j].TruthUE > sq[j].TruthUE {
				t.Fatalf("tick %d server %d: offline raised TruthUE %g > %g",
					i, pq[j].Server, pq[j].TruthUE, sq[j].TruthUE)
			}
			for _, e := range pq[j].CE {
				if rank, _ := busiestRank(sq[j].CE); e.Rank == rank && st.OfflineRanks > 0 && len(sq[j].CE) > 0 &&
					sq[j].TruthUE >= 0.5 {
					t.Fatalf("tick %d server %d: offlined rank %d still emits CE events",
						i, pq[j].Server, e.Rank)
				}
			}
		}
	}
}

// busiestRank is the test-local copy of the policy heuristic: the rank
// carrying the most CE events in a window.
func busiestRank(events []profile.CEEvent) (int, bool) {
	if len(events) == 0 {
		return 0, false
	}
	var counts [16]int
	best, bestN := 0, 0
	for _, e := range events {
		if e.Rank < 0 || e.Rank >= len(counts) {
			continue
		}
		counts[e.Rank]++
		if counts[e.Rank] > bestN {
			best, bestN = e.Rank, counts[e.Rank]
		}
	}
	return best, bestN > 0
}

// TestMigrationChangesOperatingPoint: a migrated server runs the
// replacement label from the next tick, while its telemetry stream stays
// in RNG lockstep with the shadow fleet.
func TestMigrationChangesOperatingPoint(t *testing.T) {
	cfg := Config{Servers: 4, Seed: 6}
	primary, _ := New(cfg)
	shadow, _ := New(cfg)
	primary.Tick()
	shadow.Tick()

	cool := CoolestWorkload(primary.Config().Workloads)
	if cool == "" {
		t.Fatal("no coolest workload in the catalog")
	}
	if _, err := primary.Migrate(0, cool); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		pq, sq := primary.Tick(), shadow.Tick()
		if pq[0].Workload != cool {
			t.Fatalf("tick %d: migrated server runs %q, want %q", i, pq[0].Workload, cool)
		}
		// Telemetry stays in lockstep even though the workload changed.
		if !reflect.DeepEqual(pq[0].CE, sq[0].CE) {
			t.Fatalf("tick %d: migration disturbed the CE telemetry stream", i)
		}
		// The untouched servers stay byte-identical except for thermal
		// coupling, which migration of another server cannot cause.
		for j := 1; j < len(pq); j++ {
			if !reflect.DeepEqual(pq[j], sq[j]) {
				t.Fatalf("tick %d: migrating server 0 disturbed server %d", i, j)
			}
		}
	}
	if changed, err := primary.ClearMigration(0); err != nil || !changed {
		t.Fatalf("ClearMigration = (%v, %v), want (true, nil)", changed, err)
	}
}

// TestActuationValidation rejects out-of-range servers, ranks, refresh
// periods and unknown migration labels, and reports no-op idempotence.
func TestActuationValidation(t *testing.T) {
	f, err := New(Config{Servers: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.SetTREFP(9, 1); err == nil {
		t.Fatal("out-of-range server accepted")
	}
	if _, err := f.SetTREFP(0, -1); err == nil {
		t.Fatal("negative trefp accepted")
	}
	if _, err := f.SetTREFP(0, math.NaN()); err == nil {
		t.Fatal("NaN trefp accepted")
	}
	if _, err := f.OfflineRank(0, 99); err == nil {
		t.Fatal("out-of-range rank accepted")
	}
	if _, err := f.Migrate(0, "doom"); err == nil {
		t.Fatal("unknown migration label accepted")
	}
	if _, err := f.State(-1); err == nil {
		t.Fatal("out-of-range State accepted")
	}

	if changed, err := f.OfflineRank(1, 3); err != nil || !changed {
		t.Fatalf("first offline = (%v, %v)", changed, err)
	}
	if changed, err := f.OfflineRank(1, 3); err != nil || changed {
		t.Fatalf("repeat offline = (%v, %v), want no-op", changed, err)
	}
	st, err := f.State(1)
	if err != nil {
		t.Fatal(err)
	}
	if st.OfflineRanks != 1 {
		t.Fatalf("OfflineRanks = %d, want 1", st.OfflineRanks)
	}
	if changed, err := f.OnlineRank(1, 3); err != nil || !changed {
		t.Fatalf("online = (%v, %v)", changed, err)
	}
	if changed, err := f.OnlineRank(1, 3); err != nil || changed {
		t.Fatalf("repeat online = (%v, %v), want no-op", changed, err)
	}

	// Retune visibility in State: pick a grid value the server is not
	// already running.
	st, _ = f.State(0)
	target := core.WERTrefps[0]
	if st.TREFP == target {
		target = core.WERTrefps[1]
	}
	if changed, err := f.SetTREFP(0, target); err != nil || !changed {
		t.Fatalf("retune = (%v, %v)", changed, err)
	}
	st, _ = f.State(0)
	if st.TREFP != target {
		t.Fatalf("State.TREFP = %v after retune, want %v", st.TREFP, target)
	}
	if st.DeployedTREFP == 0 {
		t.Fatal("State.DeployedTREFP empty")
	}
}
