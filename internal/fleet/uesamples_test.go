package fleet

import (
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/profile"
)

func TestBuildUESamplesDeterministic(t *testing.T) {
	cfg := Config{Servers: 4, Seed: 2}
	a, err := BuildUESamples(cfg, 5)
	if err != nil {
		t.Fatal(err)
	}
	b, err := BuildUESamples(cfg, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same (cfg, windows) produced different corpora")
	}
	c, err := BuildUESamples(Config{Servers: 4, Seed: 3}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical corpora")
	}
}

func TestBuildUESamplesShape(t *testing.T) {
	const servers, windows = 6, 8
	rows, err := BuildUESamples(Config{Servers: servers, Seed: 2}, windows)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != servers*windows {
		t.Fatalf("%d rows, want %d", len(rows), servers*windows)
	}
	perServer := map[string]int{}
	pos := 0
	for _, r := range rows {
		if r.Server == "" {
			t.Fatal("row without server identity; LOGO folds need one")
		}
		perServer[r.Server]++
		if len(r.CEFeatures) != profile.NumCEFeatures {
			t.Fatalf("feature vector length %d, want %d", len(r.CEFeatures), profile.NumCEFeatures)
		}
		if r.UE != 0 && r.UE != 1 {
			t.Fatalf("label %g not binary", r.UE)
		}
		if r.UE == 1 {
			pos++
		}
	}
	if len(perServer) != servers {
		t.Fatalf("%d distinct servers, want %d", len(perServer), servers)
	}
	for sv, n := range perServer {
		if n != windows {
			t.Fatalf("server %s has %d windows, want %d", sv, n, windows)
		}
	}
	if pos == 0 || pos == len(rows) {
		t.Fatalf("degenerate corpus: %d/%d positive labels", pos, len(rows))
	}
}

func TestBuildUESamplesValidation(t *testing.T) {
	if _, err := BuildUESamples(Config{Servers: 4, Seed: 1}, 0); err == nil {
		t.Fatal("zero windows accepted")
	}
	if _, err := BuildUESamples(Config{Servers: 1, Seed: 1}, 3); err == nil {
		t.Fatal("single-server fleet accepted; LOGO evaluation needs two")
	}
}

// TestEvaluateUERiskWorkerInvariance is the acceptance bar for the
// classifier evaluation: the leave-one-server-out result — predictions
// included — is bit-identical no matter how many fold workers run.
func TestEvaluateUERiskWorkerInvariance(t *testing.T) {
	rows, err := BuildUESamples(Config{Servers: 4, Seed: 3}, 6)
	if err != nil {
		t.Fatal(err)
	}
	var ds core.Dataset
	ds.SetUER(rows)
	for _, kind := range []core.ModelKind{core.ModelRDF, core.ModelKNN} {
		one, err := core.EvaluateUERisk(&ds, kind, core.InputSet1, 1)
		if err != nil {
			t.Fatalf("%s workers=1: %v", kind, err)
		}
		four, err := core.EvaluateUERisk(&ds, kind, core.InputSet1, 4)
		if err != nil {
			t.Fatalf("%s workers=4: %v", kind, err)
		}
		if !reflect.DeepEqual(one, four) {
			t.Fatalf("%s: workers=1 eval %+v differs from workers=4 eval %+v", kind, one, four)
		}
		if one.AUC < 0 || one.AUC > 1 {
			t.Fatalf("%s: AUC %g outside [0,1]", kind, one.AUC)
		}
		if one.Positives == 0 {
			t.Fatalf("%s: evaluation saw no positive labels", kind)
		}
	}
}
