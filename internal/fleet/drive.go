package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/ingest"
	"repro/internal/serve"
)

// DefaultRequestTimeout bounds one query round trip when DriveOptions
// leaves Timeout zero. Far above any healthy prediction (the paper budget
// is 300 ms and a cold model fit on the test corpora is seconds), far
// below "forever" — the closed-loop driver's workers must never wedge on
// one hung backend.
const DefaultRequestTimeout = 30 * time.Second

// defaultClient replaces the old http.DefaultClient fallback, which has no
// timeout at all: a single backend that accepted a connection and went
// silent would pin a worker until process death. The transport-level
// timeout here is a backstop; the per-request deadline in doQuery is the
// primary bound.
var defaultClient = &http.Client{Timeout: DefaultRequestTimeout}

// DriveOptions configures one closed-loop run against a live dramserve.
type DriveOptions struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// QPS is the target request rate: query i is released at i/QPS after
	// the run starts. Zero or negative means as fast as the workers go.
	QPS float64
	// Workers bounds the in-flight requests (the closed loop: when the
	// server falls behind the schedule, at most Workers requests are
	// outstanding and the excess back-pressures). 0 means GOMAXPROCS.
	Workers int
	// Targets are the prediction targets each query requests. Empty means
	// request none explicitly: the server answers its own default target
	// selection for the artifact it serves (old artifacts answer wer+pue;
	// telemetry-bearing ones add ue_risk when the query carries CE
	// events), and the outcome records whatever came back.
	Targets []core.Target
	// Model selects the model kind; default the paper's published KNN.
	Model string
	// Client is the HTTP client; default a shared client with
	// DefaultRequestTimeout (never the timeout-less http.DefaultClient).
	Client *http.Client
	// Timeout is the per-request deadline on each query, applied even to a
	// caller-supplied Client; 0 means DefaultRequestTimeout, negative
	// disables the deadline.
	Timeout time.Duration
	// Context cancels the run; queries not yet issued fail with the
	// context's error.
	Context context.Context
	// Ingest closes the data loop: after each successful predict, the
	// query's ground-truth observation (operating point, CE window, UE
	// label, measured WER/PUE) is POSTed to /v2/ingest — the same rows a
	// fleet agent would report. Ingest failures (backpressure 429s
	// included) are recorded per outcome, never as query errors: the
	// predict succeeded, and the bounded queue refusing load is the
	// ingest contract working, not a fleet failure.
	Ingest bool
}

// Drive replays the query stream against the server: an open-loop arrival
// schedule (QPS) executed by a closed-loop bounded worker pool
// (engine.Map), the same substrate every campaign in this repository fans
// out on. The i-th outcome corresponds to the i-th query regardless of
// completion order. Request failures are recorded per outcome, never
// aborting the run; the returned error is reserved for context
// cancellation.
func Drive(qs []Query, opts DriveOptions) ([]Outcome, error) {
	ctx := opts.Context
	if ctx == nil {
		ctx = context.Background()
	}
	client := opts.Client
	if client == nil {
		client = defaultClient
	}
	timeout := opts.Timeout
	if timeout == 0 {
		timeout = DefaultRequestTimeout
	}
	targets := opts.Targets
	var names []string
	for _, t := range targets {
		names = append(names, string(t))
	}
	var interval time.Duration
	if opts.QPS > 0 {
		interval = time.Duration(float64(time.Second) / opts.QPS)
	}
	start := time.Now()
	return engine.Map(len(qs), func(i int) (Outcome, error) {
		// Pace: wait for this query's slot in the arrival schedule. When
		// the pool is saturated the slot is already past and the query
		// goes out immediately — the closed loop.
		if wait := time.Until(start.Add(time.Duration(i) * interval)); wait > 0 {
			select {
			case <-time.After(wait):
			case <-ctx.Done():
				return Outcome{Err: ctx.Err()}, nil
			}
		}
		out := doQuery(ctx, client, timeout, opts.BaseURL, opts.Model, names, targets, &qs[i])
		if opts.Ingest && out.Err == nil {
			// Predict first, then report the observation: the ingest round
			// trip never pollutes the predict latency sample.
			out.Ingested = ingestQuery(ctx, client, timeout, opts.BaseURL, &qs[i])
		}
		return out, nil
	}, engine.Options{Workers: opts.Workers, Context: ctx})
}

// doQuery issues one /v2/predict request under its own deadline and
// extracts the per-target answers.
func doQuery(ctx context.Context, client *http.Client, timeout time.Duration,
	baseURL, model string, targetNames []string, targets []core.Target, q *Query) Outcome {
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	body, err := json.Marshal(serve.PredictRequestV2{
		Workload: q.Workload,
		TREFP:    q.TREFP,
		TempC:    q.TempC,
		VDD:      q.VDD,
		Model:    model,
		Targets:  targetNames,
		CE:       q.CE,
	})
	if err != nil {
		return Outcome{Err: err}
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		baseURL+"/v2/predict", bytes.NewReader(body))
	if err != nil {
		return Outcome{Err: err}
	}
	req.Header.Set("Content-Type", "application/json")

	start := time.Now()
	resp, err := client.Do(req)
	lat := time.Since(start)
	if err != nil {
		return Outcome{Latency: lat, Err: err}
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return Outcome{Latency: lat, Status: resp.StatusCode, Err: err}
	}
	if resp.StatusCode != http.StatusOK {
		return Outcome{Latency: lat, Status: resp.StatusCode,
			Err: fmt.Errorf("fleet: query %d: %s: %s", q.Seq, resp.Status, data)}
	}
	var out serve.PredictResponseV2
	if err := json.Unmarshal(data, &out); err != nil {
		return Outcome{Latency: lat, Status: resp.StatusCode, Err: err}
	}
	var preds map[core.Target]float64
	if len(targets) == 0 {
		// Server-default selection: record whatever the server answered.
		preds = make(map[core.Target]float64, len(out.Predictions))
		for name, res := range out.Predictions {
			preds[core.Target(name)] = res.Value
		}
	} else {
		preds = make(map[core.Target]float64, len(targets))
		for _, t := range targets {
			res, ok := out.Predictions[string(t)]
			if !ok {
				return Outcome{Latency: lat, Status: resp.StatusCode,
					Err: fmt.Errorf("fleet: query %d: no %s prediction in response", q.Seq, t)}
			}
			preds[t] = res.Value
		}
	}
	return Outcome{Latency: lat, Status: resp.StatusCode, Predictions: preds,
		Fingerprint: out.Fingerprint}
}

// ingestQuery reports one query's ground-truth observation to /v2/ingest,
// returning whether the server accepted it. Failures are silent by design
// (the caller records the boolean): a 429 is the bounded queue refusing
// load, and a transport blip on the reporting path must not fail a query
// whose prediction already succeeded.
func ingestQuery(ctx context.Context, client *http.Client, timeout time.Duration,
	baseURL string, q *Query) bool {
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	ue := 0.0
	if q.TruthUE >= 0.5 {
		// The same thresholding BuildUESamples applies to label training rows.
		ue = 1
	}
	wer, pue := q.TruthWER, q.TruthPUE
	body, err := json.Marshal(serve.IngestRequestV2{Rows: []ingest.Row{{
		Server:   fmt.Sprintf("server%02d", q.Server),
		Workload: q.Workload,
		TREFP:    q.TREFP,
		VDD:      q.VDD,
		TempC:    q.TempC,
		CE:       q.CE,
		UE:       &ue,
		WER:      &wer,
		PUE:      &pue,
	}}})
	if err != nil {
		return false
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		baseURL+"/v2/ingest", bytes.NewReader(body))
	if err != nil {
		return false
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return false
	}
	defer resp.Body.Close()
	_, _ = io.Copy(io.Discard, resp.Body) // drain for connection reuse
	return resp.StatusCode == http.StatusOK
}
