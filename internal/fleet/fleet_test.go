package fleet

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dram"
	"repro/internal/serve"
	"repro/internal/workload"
	"repro/internal/xgene"
)

// TestStreamDeterminism pins the contract everything else builds on: the
// stream is a pure function of Config.
func TestStreamDeterminism(t *testing.T) {
	cfg := Config{Servers: 8, Seed: 1}
	a, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	qa, qb := a.Take(320), b.Take(320)
	if !reflect.DeepEqual(qa, qb) {
		t.Fatal("same config produced different streams")
	}
	if Checksum(qa) != Checksum(qb) {
		t.Fatal("checksums differ on identical streams")
	}

	// JSON (the -stream-out format) is byte-identical too.
	ja, _ := json.Marshal(qa)
	jb, _ := json.Marshal(qb)
	if string(ja) != string(jb) {
		t.Fatal("JSON encodings differ")
	}

	other, err := New(Config{Servers: 8, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if Checksum(other.Take(320)) == Checksum(qa) {
		t.Fatal("different seeds produced the same stream")
	}
}

// TestQueryValidity checks every emitted query is a servable request with
// physically sensible values.
func TestQueryValidity(t *testing.T) {
	f, err := New(Config{Servers: 12, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	grid := map[float64]bool{}
	for _, tr := range core.WERTrefps {
		grid[tr] = true
	}
	for i, q := range f.Take(600) {
		if q.Seq != i {
			t.Fatalf("query %d has seq %d", i, q.Seq)
		}
		if q.Server < 0 || q.Server >= 12 {
			t.Fatalf("query %d from server %d", i, q.Server)
		}
		if _, err := workload.FindSpec(q.Workload); err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		if !grid[q.TREFP] {
			t.Fatalf("query %d TREFP %v not on the campaign grid", i, q.TREFP)
		}
		if q.VDD != dram.MinVDD {
			t.Fatalf("query %d VDD %v", i, q.VDD)
		}
		if q.TempC < 10 || q.TempC > 95 {
			t.Fatalf("query %d temp %v out of band", i, q.TempC)
		}
		if q.TruthWER < 0 || q.TruthWER > 1 || q.TruthPUE < 0 || q.TruthPUE > 1 {
			t.Fatalf("query %d truth out of range: wer=%v pue=%v", i, q.TruthWER, q.TruthPUE)
		}
	}
}

// TestFleetHeterogeneity: servers must actually differ — in refresh
// policy, temperature and workload — and each server must rotate through
// its mix over time.
func TestFleetHeterogeneity(t *testing.T) {
	f, err := New(Config{Servers: 16, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	qs := f.Take(16 * DefaultShiftTicks * 5)
	trefps := map[float64]bool{}
	temps := map[int]map[float64]bool{}
	labels := map[int]map[string]bool{}
	for _, q := range qs {
		trefps[q.TREFP] = true
		if temps[q.Server] == nil {
			temps[q.Server] = map[float64]bool{}
			labels[q.Server] = map[string]bool{}
		}
		temps[q.Server][q.TempC] = true
		labels[q.Server][q.Workload] = true
	}
	if len(trefps) < 2 {
		t.Fatalf("fleet runs only %d distinct TREFPs", len(trefps))
	}
	rotated := 0
	for sv, ls := range labels {
		if len(ls) > 1 {
			rotated++
		}
		if len(temps[sv]) < 2 {
			t.Fatalf("server %d temperature never moved", sv)
		}
	}
	if rotated < 12 {
		t.Fatalf("only %d/16 servers rotated workloads", rotated)
	}
}

// TestConfigValidation rejects unknown workloads and nonsense shapes.
func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{Workloads: []string{"doom"}}); err == nil {
		t.Fatal("unknown workload accepted")
	}
	if _, err := New(Config{Servers: -1}); err == nil {
		t.Fatal("negative fleet accepted")
	}
	if _, err := New(Config{TickSeconds: -5}); err == nil {
		t.Fatal("negative tick accepted")
	}
	f, err := New(Config{MixSize: 99, Servers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if got := f.Config().MixSize; got != len(workload.Labels(workload.ExtendedSet())) {
		t.Fatalf("mix size not capped at the catalog: %d", got)
	}
}

func TestPercentile(t *testing.T) {
	lats := []time.Duration{5, 1, 4, 2, 3} // unsorted on purpose
	cases := []struct {
		q    float64
		want time.Duration
	}{{0.5, 3}, {0.95, 5}, {0.99, 5}, {0.2, 1}, {1, 5}}
	for _, tc := range cases {
		if got := Percentile(lats, tc.q); got != tc.want {
			t.Fatalf("Percentile(%v) = %v, want %v", tc.q, got, tc.want)
		}
	}
	if got := Percentile(nil, 0.99); got != 0 {
		t.Fatalf("Percentile(nil) = %v", got)
	}
}

// testDataset builds one small campaign corpus shared by the e2e tests.
var (
	dsOnce sync.Once
	dsVal  *core.Dataset
	dsErr  error
)

func testDataset(t testing.TB) *core.Dataset {
	t.Helper()
	dsOnce.Do(func() {
		var specs []workload.Spec
		for _, l := range []string{"backprop", "random"} {
			spec, err := workload.FindSpec(l)
			if err != nil {
				dsErr = err
				return
			}
			specs = append(specs, spec)
		}
		profiles, err := core.BuildProfiles(specs, workload.SizeTest, 3, 0)
		if err != nil {
			dsErr = err
			return
		}
		srv := xgene.MustNewServer(xgene.Config{Scale: 32})
		dsVal, dsErr = core.BuildDataset(srv, profiles, specs, core.CampaignOptions{Reps: 2})
		if dsErr != nil {
			return
		}
		// UE telemetry rows make the artifact serve every registered target,
		// so the drive test exercises ue_risk end to end.
		rows, err := BuildUESamples(Config{Servers: 4, Seed: 3}, 6)
		if err != nil {
			dsErr = err
			return
		}
		dsVal.SetUER(rows)
	})
	if dsErr != nil {
		t.Fatal(dsErr)
	}
	return dsVal
}

// TestDriveEndToEnd drives a real serve.Server with a fleet stream and
// cross-checks the generator's view (completed queries) against the
// server's own /v2/stats counters — the contract scripts/smoke.sh asserts
// over real HTTP in CI.
func TestDriveEndToEnd(t *testing.T) {
	s := serve.New(testDataset(t), serve.Options{Quick: true, Seed: 3, Workers: 2})
	t.Cleanup(func() { s.Close() })
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	cfg := Config{Servers: 6, Seed: 11, Workloads: []string{"backprop", "random"}}
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	qs := f.Take(24)
	outs, err := Drive(qs, DriveOptions{
		BaseURL: ts.URL, QPS: 2000, Workers: 4,
		Targets: core.Targets(), Client: ts.Client(),
	})
	if err != nil {
		t.Fatal(err)
	}
	rep := &Report{Seed: cfg.Seed, Servers: cfg.Servers, Targets: core.Targets(),
		Queries: qs, Outcomes: outs}
	if rep.Completed() != len(qs) || rep.Failed() != 0 {
		for i, o := range outs {
			if o.Err != nil {
				t.Logf("query %d: %v", i, o.Err)
			}
		}
		t.Fatalf("completed %d/%d", rep.Completed(), len(qs))
	}

	mae := rep.MAE()
	for _, tgt := range core.Targets() {
		v, ok := mae[tgt]
		if !ok || v < 0 {
			t.Fatalf("MAE[%s] = %v, %v", tgt, v, ok)
		}
	}

	// Server's view: each requested target answered exactly once per
	// completed query.
	resp, err := http.Get(ts.URL + "/v2/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st serve.StatsResponseV2
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	for _, tgt := range core.Targets() {
		if got := st.Targets[string(tgt)]; got != int64(rep.Completed()) {
			t.Fatalf("server counted %d %s queries, generator completed %d",
				got, tgt, rep.Completed())
		}
	}

	// The deterministic report half is byte-identical across replays of
	// the same seed against the same artifact.
	f2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	qs2 := f2.Take(24)
	outs2, err := Drive(qs2, DriveOptions{
		BaseURL: ts.URL, QPS: 2000, Workers: 2, // different worker count on purpose
		Targets: core.Targets(), Client: ts.Client(),
	})
	if err != nil {
		t.Fatal(err)
	}
	rep2 := &Report{Seed: cfg.Seed, Servers: cfg.Servers, Targets: core.Targets(),
		Queries: qs2, Outcomes: outs2}
	if a, b := rep.Render(false), rep2.Render(false); a != b {
		t.Fatalf("deterministic reports differ:\n--- first\n%s--- second\n%s", a, b)
	}
	// The timing section renders percentiles without disturbing the rest.
	timed := rep.Render(true)
	for _, want := range []string{"p50 ", "p95 ", "p99 ", "-- timing"} {
		if !strings.Contains(timed, want) {
			t.Fatalf("timing render missing %q:\n%s", want, timed)
		}
	}
	if !strings.HasPrefix(timed, rep.Render(false)) {
		t.Fatal("timing section does not append cleanly to the deterministic report")
	}
}

// TestReportOffline: an outcome-less report renders the stream summary
// and never a timing section.
func TestReportOffline(t *testing.T) {
	f, err := New(Config{Servers: 4, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	qs := f.Take(40)
	rep := &Report{Seed: 5, Servers: 4, Targets: core.Targets(), Queries: qs}
	out := rep.Render(true)
	if strings.Contains(out, "timing") || strings.Contains(out, "completed") {
		t.Fatalf("offline report leaked online sections:\n%s", out)
	}
	if !strings.Contains(out, "stream    fnv64:") {
		t.Fatalf("offline report missing checksum:\n%s", out)
	}
	if rep.Render(true) != out {
		t.Fatal("offline render not stable")
	}
}
