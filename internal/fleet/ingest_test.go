package fleet

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/ingest"
	"repro/internal/serve"
)

// TestMAEByFingerprintSplit pins the per-generation MAE split on a
// hand-built report: queries answered before and after a mid-run retrain
// carry different artifact fingerprints and must land in separate groups,
// in first-answered order, with the overall MAE unchanged.
func TestMAEByFingerprintSplit(t *testing.T) {
	fpA := "sha256:aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa"
	fpB := "sha256:bbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbb"
	qs := []Query{
		{Seq: 0, Workload: "nw", TruthPUE: 0.5},
		{Seq: 1, Workload: "nw", TruthPUE: 0.5},
		{Seq: 2, Workload: "nw", TruthPUE: 0.5},
		{Seq: 3, Workload: "nw", TruthPUE: 0.5},
	}
	outs := []Outcome{
		{Predictions: map[core.Target]float64{core.TargetPUE: 0.9}, Fingerprint: fpA, Ingested: true},
		{Predictions: map[core.Target]float64{core.TargetPUE: 0.7}, Fingerprint: fpA, Ingested: true},
		{Err: errFake{}, Fingerprint: fpB}, // failed queries never count
		{Predictions: map[core.Target]float64{core.TargetPUE: 0.6}, Fingerprint: fpB, Ingested: true},
	}
	rep := &Report{Seed: 1, Servers: 2, Targets: []core.Target{core.TargetPUE},
		Queries: qs, Outcomes: outs}

	groups := rep.MAEByFingerprint()
	if len(groups) != 2 {
		t.Fatalf("groups = %d, want 2", len(groups))
	}
	if groups[0].Fingerprint != fpA || groups[1].Fingerprint != fpB {
		t.Fatalf("group order = %q, %q; want first-answered order",
			groups[0].Fingerprint, groups[1].Fingerprint)
	}
	if groups[0].Queries != 2 || groups[1].Queries != 1 {
		t.Fatalf("group sizes = %d, %d; want 2, 1", groups[0].Queries, groups[1].Queries)
	}
	if got := groups[0].MAE[core.TargetPUE]; !close2(got, 0.3) {
		t.Fatalf("pre-retrain MAE = %g, want 0.3", got)
	}
	if got := groups[1].MAE[core.TargetPUE]; !close2(got, 0.1) {
		t.Fatalf("post-retrain MAE = %g, want 0.1", got)
	}
	// The split partitions the overall MAE: (0.4+0.2+0.1)/3.
	if got := rep.MAE()[core.TargetPUE]; !close2(got, 0.7/3) {
		t.Fatalf("overall MAE = %g, want %g", got, 0.7/3)
	}
	if got := rep.Ingested(); got != 3 {
		t.Fatalf("Ingested() = %d, want 3", got)
	}

	out := rep.Render(false)
	if !strings.Contains(out, "ingested  3\n") {
		t.Fatalf("render missing ingested line:\n%s", out)
	}
	if n := strings.Count(out, "  artifact sha256:"); n != 2 {
		t.Fatalf("render has %d artifact lines, want 2:\n%s", n, out)
	}
	if !strings.Contains(out, "artifact sha256:aaaaaaaaaaaa n=2") ||
		!strings.Contains(out, "artifact sha256:bbbbbbbbbbbb n=1") {
		t.Fatalf("artifact lines wrong:\n%s", out)
	}

	// A single-fingerprint run renders no split — the overall line already
	// says everything, and pre-ingest reports stay byte-identical.
	for i := range outs {
		outs[i].Fingerprint = fpA
	}
	if out := rep.Render(false); strings.Contains(out, "  artifact ") {
		t.Fatalf("single-generation report rendered a split:\n%s", out)
	}
}

// errFake is a trivial error for hand-built outcomes.
type errFake struct{}

func (errFake) Error() string { return "fake" }

func close2(a, b float64) bool {
	d := a - b
	return d < 1e-12 && d > -1e-12
}

// TestDriveIngest closes the data loop in-process: Drive in ingest mode
// against an ingest-enabled server must report every completed query's
// observation, and the server's queue must absorb exactly those rows.
func TestDriveIngest(t *testing.T) {
	s := serve.New(testDataset(t), serve.Options{
		Quick: true, Seed: 3, Workers: 2,
		Ingest: &ingest.Config{Capacity: 256},
	})
	t.Cleanup(func() { s.Close() })
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	f, err := New(Config{Servers: 6, Seed: 11, Workloads: []string{"backprop", "random"}})
	if err != nil {
		t.Fatal(err)
	}
	qs := f.Take(20)
	outs, err := Drive(qs, DriveOptions{
		BaseURL: ts.URL, Workers: 4,
		Targets: []core.Target{core.TargetWER, core.TargetPUE},
		Client:  ts.Client(), Ingest: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep := &Report{Seed: 11, Servers: 6,
		Targets: []core.Target{core.TargetWER, core.TargetPUE},
		Queries: qs, Outcomes: outs}
	if rep.Failed() != 0 {
		t.Fatalf("failed %d queries", rep.Failed())
	}
	if got := rep.Ingested(); got != len(qs) {
		t.Fatalf("ingested %d of %d observations", got, len(qs))
	}

	// The server agrees: every observation was accepted, none dropped.
	resp, err := http.Get(ts.URL + "/v2/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st serve.StatsResponseV2
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Ingest == nil {
		t.Fatal("stats missing ingest section")
	}
	if st.Ingest.Accepted != int64(len(qs)) || st.Ingest.Dropped != 0 {
		t.Fatalf("server ingest counters accepted=%d dropped=%d, want %d/0",
			st.Ingest.Accepted, st.Ingest.Dropped, len(qs))
	}
}
