package core

import (
	"fmt"

	"repro/internal/dram"
	"repro/internal/ml"
)

// WEREval holds the leave-one-workload-out accuracy of one (model, input
// set) combination — the data behind Fig. 11.
type WEREval struct {
	Kind ModelKind
	Set  InputSet
	// MPEByRank is the mean percentage error of WER estimates per
	// DIMM/rank (Fig. 11a-c), as a fraction.
	MPEByRank [dram.NumRanks]float64
	// MPEByWorkload is the per-application breakdown (Fig. 11d-f).
	MPEByWorkload map[string]float64
	// MPE is the grand average over all samples.
	MPE float64
	// Predictions holds the cross-validated estimate for each evaluated
	// row. Rows at the observation floor are excluded from evaluation, so
	// Predictions does NOT align with ds.WER index-for-index:
	// Predictions[k] predicts ds.WER[Rows[k]].
	Predictions []float64
	// Rows maps each prediction back to its dataset row: Rows[k] is the
	// index into ds.WER that Predictions[k] estimates.
	Rows []int
}

// EvaluateWER runs the paper's cross-validation (Fig. 3): for each
// workload, train on all other workloads' samples and test on the held-out
// one; aggregate mean percentage errors per rank and per application. Up
// to workers folds evaluate concurrently (0 = GOMAXPROCS); the result is
// identical for every worker count.
func EvaluateWER(ds *Dataset, kind ModelKind, set InputSet, workers int) (*WEREval, error) {
	if len(ds.WER) == 0 {
		return nil, fmt.Errorf("core: empty WER dataset")
	}
	// CV folds already fan out over workers; each fold's trainer stays
	// sequential so the workers knob bounds total parallelism.
	trainer, err := trainerFor(kind, 1)
	if err != nil {
		return nil, err
	}
	// Rows at the floor carry no rate information (the run observed no
	// errors on that rank); the model trains and is scored on observed
	// rates only, as a rate cannot be estimated from zero events.
	var rows []int
	for i := range ds.WER {
		if ds.WER[i].WER > WERFloor {
			rows = append(rows, i)
		}
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("core: no WER rows above the observation floor")
	}
	X := make([][]float64, len(rows))
	y := make([]float64, len(rows))
	groups := make([]string, len(rows))
	for k, i := range rows {
		X[k] = set.werVector(&ds.WER[i])
		y[k] = logWER(ds.WER[i].WER)
		groups[k] = ds.WER[i].Workload
	}
	logPreds, err := ml.LeaveOneGroupOut(trainer, X, y, groups, workers)
	if err != nil {
		return nil, err
	}

	ev := &WEREval{Kind: kind, Set: set, MPEByWorkload: map[string]float64{}}
	ev.Predictions = make([]float64, len(logPreds))
	ev.Rows = append([]int(nil), rows...)
	var rankSum, rankN [dram.NumRanks]float64
	wlSum := map[string]float64{}
	wlN := map[string]float64{}
	var totSum, totN float64
	for k, lp := range logPreds {
		i := rows[k]
		pred := unlogWER(lp)
		ev.Predictions[k] = pred
		actual := ds.WER[i].WER
		pe := absFrac(pred-actual) / actual
		rankSum[ds.WER[i].Rank] += pe
		rankN[ds.WER[i].Rank]++
		wlSum[groups[k]] += pe
		wlN[groups[k]]++
		totSum += pe
		totN++
	}
	for r := 0; r < dram.NumRanks; r++ {
		if rankN[r] > 0 {
			ev.MPEByRank[r] = rankSum[r] / rankN[r]
		}
	}
	for wl, s := range wlSum {
		ev.MPEByWorkload[wl] = s / wlN[wl]
	}
	ev.MPE = totSum / totN
	return ev, nil
}

// PUEEval holds the cross-validated PUE accuracy — the data behind Fig. 12.
type PUEEval struct {
	Kind ModelKind
	Set  InputSet
	// MAE is the mean absolute error of the predicted crash probability
	// in probability points (the paper reports 4.1 % for KNN / set 2).
	MAE float64
	// Predictions aligns with the dataset's PUE rows.
	Predictions []float64
}

// EvaluatePUE cross-validates a PUE predictor; up to workers folds run
// concurrently (0 = GOMAXPROCS).
func EvaluatePUE(ds *Dataset, kind ModelKind, set InputSet, workers int) (*PUEEval, error) {
	if len(ds.PUE) == 0 {
		return nil, fmt.Errorf("core: empty PUE dataset")
	}
	// CV folds already fan out over workers; each fold's trainer stays
	// sequential so the workers knob bounds total parallelism.
	trainer, err := trainerFor(kind, 1)
	if err != nil {
		return nil, err
	}
	X := make([][]float64, len(ds.PUE))
	y := make([]float64, len(ds.PUE))
	groups := make([]string, len(ds.PUE))
	for i := range ds.PUE {
		X[i] = set.pueVector(&ds.PUE[i])
		y[i] = ds.PUE[i].PUE
		groups[i] = ds.PUE[i].Workload
	}
	preds, err := ml.LeaveOneGroupOut(trainer, X, y, groups, workers)
	if err != nil {
		return nil, err
	}
	for i := range preds {
		if preds[i] < 0 {
			preds[i] = 0
		}
		if preds[i] > 1 {
			preds[i] = 1
		}
	}
	return &PUEEval{Kind: kind, Set: set, MAE: ml.MeanAbsoluteError(preds, y), Predictions: preds}, nil
}

func absFrac(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
