package core

import (
	"context"
	"testing"

	"repro/internal/engine"
)

// batchWorkerCounts are the pool sizes the equivalence tests sweep.
var batchWorkerCounts = []int{1, 2, 3, 8, 17}

func TestWERPredictBatchMatchesPredict(t *testing.T) {
	ds := testDataset(t)
	for _, kind := range ModelKinds() {
		pred, err := TrainWER(ds, kind, InputSet1, 0)
		if err != nil {
			t.Fatal(err)
		}
		var qs []WERQuery
		for i, s := range ds.WER {
			if i >= 64 {
				break
			}
			qs = append(qs, WERQuery{
				Features: s.Features, TREFP: s.TREFP, VDD: s.VDD,
				TempC: s.TempC, Rank: s.Rank,
			})
		}
		want := make([]float64, len(qs))
		for i, q := range qs {
			want[i] = pred.Predict(q.Features, q.TREFP, q.VDD, q.TempC, q.Rank)
		}
		for _, w := range batchWorkerCounts {
			got, err := pred.PredictBatch(qs, engine.Options{Workers: w})
			if err != nil {
				t.Fatalf("%s workers=%d: %v", kind, w, err)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("%s workers=%d query %d: batch %v != looped %v",
						kind, w, i, got[i], want[i])
				}
			}
		}
	}
}

func TestPUEPredictBatchMatchesPredict(t *testing.T) {
	ds := testDataset(t)
	pred, err := TrainPUE(ds, ModelKNN, InputSet2, 0)
	if err != nil {
		t.Fatal(err)
	}
	var qs []PUEQuery
	for _, s := range ds.PUE {
		qs = append(qs, PUEQuery{
			Features: s.Features, TREFP: s.TREFP, VDD: s.VDD, TempC: s.TempC,
		})
	}
	want := make([]float64, len(qs))
	for i, q := range qs {
		want[i] = pred.Predict(q.Features, q.TREFP, q.VDD, q.TempC)
	}
	for _, w := range batchWorkerCounts {
		got, err := pred.PredictBatch(qs, engine.Options{Workers: w})
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d query %d: batch %v != looped %v", w, i, got[i], want[i])
			}
		}
	}
}

func TestPredictBatchEmpty(t *testing.T) {
	ds := testDataset(t)
	pred, err := TrainWER(ds, ModelKNN, InputSet1, 0)
	if err != nil {
		t.Fatal(err)
	}
	got, err := pred.PredictBatch(nil, engine.Options{})
	if err != nil || len(got) != 0 {
		t.Fatalf("empty batch: %v, %v", got, err)
	}
}

func TestPredictBatchCancellation(t *testing.T) {
	ds := testDataset(t)
	pred, err := TrainWER(ds, ModelKNN, InputSet1, 0)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	qs := make([]WERQuery, 32)
	for i := range qs {
		qs[i] = WERQuery{Features: ds.WER[0].Features, TREFP: 1, VDD: 1.428, TempC: 60}
	}
	if _, err := pred.PredictBatch(qs, engine.Options{Workers: 2, Context: ctx}); err == nil {
		t.Fatal("canceled context accepted")
	}
}

func TestWithoutWorkload(t *testing.T) {
	ds := testDataset(t)
	label := ds.WER[0].Workload
	werBefore, pueBefore := len(ds.WER), len(ds.PUE)
	out := ds.WithoutWorkload(label)
	if len(out.WER) >= werBefore {
		t.Fatalf("no WER rows removed for %s", label)
	}
	for _, s := range out.WER {
		if s.Workload == label {
			t.Fatalf("WER row for %s survived", label)
		}
	}
	for _, s := range out.PUE {
		if s.Workload == label {
			t.Fatalf("PUE row for %s survived", label)
		}
	}
	if out.Profiles != nil && out.Profiles[label] != nil {
		t.Fatalf("profile for %s survived", label)
	}
	// The receiver is untouched.
	if len(ds.WER) != werBefore || len(ds.PUE) != pueBefore {
		t.Fatal("WithoutWorkload mutated its receiver")
	}
}
