package core

import (
	"context"
	"testing"
)

// batchWorkerCounts are the pool sizes the equivalence tests sweep.
var batchWorkerCounts = []int{1, 2, 3, 8, 17}

func TestWERPredictBatchMatchesPredict(t *testing.T) {
	ds := testDataset(t)
	for _, kind := range ModelKinds() {
		pred, err := Train(ds, TargetWER, kind, InputSet1, 0)
		if err != nil {
			t.Fatal(err)
		}
		var qs []Query
		for i, s := range ds.WER {
			if i >= 64 {
				break
			}
			rank := s.Rank
			if i%5 == 0 {
				rank = RankDevice // mix device-level queries into the batch
			}
			qs = append(qs, Query{
				Features: s.Features, TREFP: s.TREFP, VDD: s.VDD,
				TempC: s.TempC, Rank: rank,
			})
		}
		want := make([]Prediction, len(qs))
		for i, q := range qs {
			want[i], err = pred.Predict(q)
			if err != nil {
				t.Fatal(err)
			}
		}
		for _, w := range batchWorkerCounts {
			got, err := pred.PredictBatch(context.Background(), qs, w)
			if err != nil {
				t.Fatalf("%s workers=%d: %v", kind, w, err)
			}
			for i := range want {
				if got[i].Value != want[i].Value {
					t.Fatalf("%s workers=%d query %d: batch %v != looped %v",
						kind, w, i, got[i].Value, want[i].Value)
				}
				if len(got[i].ByRank) != len(want[i].ByRank) {
					t.Fatalf("%s workers=%d query %d: breakdown length differs", kind, w, i)
				}
				for r := range want[i].ByRank {
					if got[i].ByRank[r] != want[i].ByRank[r] {
						t.Fatalf("%s workers=%d query %d rank %d: batch != looped", kind, w, i, r)
					}
				}
			}
		}
	}
}

func TestPUEPredictBatchMatchesPredict(t *testing.T) {
	ds := testDataset(t)
	pred, err := Train(ds, TargetPUE, ModelKNN, InputSet2, 0)
	if err != nil {
		t.Fatal(err)
	}
	var qs []Query
	for _, s := range ds.PUE {
		qs = append(qs, Query{
			Features: s.Features, TREFP: s.TREFP, VDD: s.VDD, TempC: s.TempC,
		})
	}
	want := make([]Prediction, len(qs))
	for i, q := range qs {
		want[i], err = pred.Predict(q)
		if err != nil {
			t.Fatal(err)
		}
	}
	for _, w := range batchWorkerCounts {
		got, err := pred.PredictBatch(context.Background(), qs, w)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		for i := range want {
			if got[i].Value != want[i].Value {
				t.Fatalf("workers=%d query %d: batch %v != looped %v", w, i, got[i].Value, want[i].Value)
			}
		}
	}
}

func TestPredictBatchEmpty(t *testing.T) {
	ds := testDataset(t)
	pred, err := Train(ds, TargetWER, ModelKNN, InputSet1, 0)
	if err != nil {
		t.Fatal(err)
	}
	got, err := pred.PredictBatch(context.Background(), nil, 0)
	if err != nil || len(got) != 0 {
		t.Fatalf("empty batch: %v, %v", got, err)
	}
}

func TestPredictBatchCancellation(t *testing.T) {
	ds := testDataset(t)
	pred, err := Train(ds, TargetWER, ModelKNN, InputSet1, 0)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	qs := make([]Query, 32)
	for i := range qs {
		qs[i] = Query{Features: ds.WER[0].Features, TREFP: 1, VDD: 1.428, TempC: 60}
	}
	if _, err := pred.PredictBatch(ctx, qs, 2); err == nil {
		t.Fatal("canceled context accepted")
	}
}

func TestWithoutWorkload(t *testing.T) {
	ds := testDataset(t)
	label := ds.WER[0].Workload
	werBefore, pueBefore := len(ds.WER), len(ds.PUE)
	out := ds.WithoutWorkload(label)
	if len(out.WER) >= werBefore {
		t.Fatalf("no WER rows removed for %s", label)
	}
	for _, s := range out.WER {
		if s.Workload == label {
			t.Fatalf("WER row for %s survived", label)
		}
	}
	for _, s := range out.PUE {
		if s.Workload == label {
			t.Fatalf("PUE row for %s survived", label)
		}
	}
	if out.Profiles != nil && out.Profiles[label] != nil {
		t.Fatalf("profile for %s survived", label)
	}
	// The receiver is untouched.
	if len(ds.WER) != werBefore || len(ds.PUE) != pueBefore {
		t.Fatal("WithoutWorkload mutated its receiver")
	}
}
