package core

import (
	"compress/gzip"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/profile"
)

// The paper publishes its trained DRAM error behavioural model (the DFault
// artifact, "periodically updated based on new characterization results").
// This file provides the equivalent: the campaign dataset serializes to a
// versioned, compressed JSON artifact from which any of the predictors can
// be retrained in milliseconds (KNN and forests are cheap to fit, so the
// dataset *is* the model — and it additionally supports retraining with
// other methods or input sets).

// artifactVersion guards against loading incompatible layouts.
const artifactVersion = 1

// artifact is the serialized form of a Dataset.
type artifact struct {
	Version int       `json:"version"`
	Build   BuildInfo `json:"build"`
	// Fingerprint is the content hash of the rows and build settings
	// (Dataset.Fingerprint). Loaders re-derive it to detect corruption,
	// and the serving layer's hot reload uses it to skip swapping in an
	// unchanged artifact. Empty in artifacts predating the field.
	Fingerprint  string      `json:"fingerprint,omitempty"`
	FeatureNames []string    `json:"feature_names"`
	WER          []WERSample `json:"wer"`
	PUE          []PUESample `json:"pue"`
	// UER carries the UE-risk telemetry rows. The field is additive and
	// omitted when empty, so artifacts without telemetry are byte-
	// identical to those written before the target existed.
	UER []UESample `json:"uer,omitempty"`
	// Telemetry is the per-feature distribution summary of the UER rows
	// (see summary.go), persisted next to the fingerprint so the serving
	// layer's drift detector scores a live stream against exactly the
	// distribution this artifact was trained on. Derived data: it is not
	// part of the fingerprint, and loaders recompute it when absent or
	// shaped for an older feature catalog. Omitted (and the artifact
	// byte-identical to older writers) when there are no telemetry rows.
	Telemetry *TelemetrySummary `json:"telemetry_summary,omitempty"`
}

// Save writes the dataset to path as gzip-compressed JSON.
func (ds *Dataset) Save(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("core: save dataset: %w", err)
	}
	defer f.Close()
	if err := ds.Encode(f); err != nil {
		return err
	}
	return f.Close()
}

// Encode streams the artifact to w.
func (ds *Dataset) Encode(w io.Writer) error {
	zw := gzip.NewWriter(w)
	enc := json.NewEncoder(zw)
	art := artifact{
		Version:      artifactVersion,
		Build:        ds.Build,
		Fingerprint:  ds.Fingerprint(),
		FeatureNames: profile.FeatureNames(),
		WER:          ds.WER,
		PUE:          ds.PUE,
		UER:          ds.UER,
		Telemetry:    ds.TelemetrySummary(),
	}
	if err := enc.Encode(&art); err != nil {
		return fmt.Errorf("core: encode dataset: %w", err)
	}
	return zw.Close()
}

// LoadDataset reads a dataset artifact from path.
func LoadDataset(path string) (*Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("core: load dataset: %w", err)
	}
	defer f.Close()
	return ReadDataset(f)
}

// ReadDataset parses a dataset artifact from r and validates it against the
// current feature catalog.
func ReadDataset(r io.Reader) (*Dataset, error) {
	zr, err := gzip.NewReader(r)
	if err != nil {
		return nil, fmt.Errorf("core: read dataset: %w", err)
	}
	defer zr.Close()
	var art artifact
	if err := json.NewDecoder(zr).Decode(&art); err != nil {
		return nil, fmt.Errorf("core: decode dataset: %w", err)
	}
	if art.Version != artifactVersion {
		return nil, fmt.Errorf("core: dataset artifact version %d, want %d",
			art.Version, artifactVersion)
	}
	names := profile.FeatureNames()
	if len(art.FeatureNames) != len(names) {
		return nil, fmt.Errorf("core: artifact has %d features, catalog has %d",
			len(art.FeatureNames), len(names))
	}
	for i, n := range art.FeatureNames {
		if names[i] != n {
			return nil, fmt.Errorf("core: artifact feature %d is %q, catalog has %q",
				i, n, names[i])
		}
	}
	ds := &Dataset{WER: art.WER, PUE: art.PUE, UER: art.UER, Build: art.Build}
	for _, s := range ds.WER {
		if len(s.Features) != len(names) {
			return nil, fmt.Errorf("core: WER row for %s has %d features", s.Workload, len(s.Features))
		}
	}
	for _, s := range ds.UER {
		if len(s.CEFeatures) != profile.NumCEFeatures {
			return nil, fmt.Errorf("core: UE row for %s has %d CE features, want %d",
				s.Server, len(s.CEFeatures), profile.NumCEFeatures)
		}
	}
	// Hash the rows once and memoize: loaded datasets are immutable, and
	// the serving layer's reload path compares fingerprints on every poll.
	got := ds.computeFingerprint()
	if art.Fingerprint != "" && verifiableFingerprint(art.Fingerprint) && got != art.Fingerprint {
		return nil, fmt.Errorf("core: artifact fingerprint %s does not match its rows (%s): corrupt or hand-edited artifact",
			art.Fingerprint, got)
	}
	ds.fp = got
	// Adopt the persisted telemetry summary when its shape matches the
	// current catalog; otherwise leave it nil and TelemetrySummary
	// recomputes from the rows.
	if art.Telemetry.valid() {
		ds.summary = art.Telemetry
	}
	return ds, nil
}

// SaveAtomic writes the artifact through a temporary file in path's
// directory and renames it into place, so a reader polling path (the
// serving layer's -reload-interval watcher, another process) never
// observes a half-written artifact.
func (ds *Dataset) SaveAtomic(path string) error {
	dir, base := filepath.Dir(path), filepath.Base(path)
	f, err := os.CreateTemp(dir, base+".tmp*")
	if err != nil {
		return fmt.Errorf("core: save dataset: %w", err)
	}
	tmp := f.Name()
	if err := ds.Encode(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("core: save dataset: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("core: save dataset: %w", err)
	}
	return nil
}

// PeekFingerprint reads just the artifact's recorded fingerprint,
// without decoding, validating or hashing the row payload — the cheap
// "did the file change" probe behind the reload poll's stat-skip
// fallback. Returns "" (and no error) for artifacts predating the
// fingerprint field; callers must treat "" as "unknown, do the full
// load".
func PeekFingerprint(path string) (string, error) {
	f, err := os.Open(path)
	if err != nil {
		return "", fmt.Errorf("core: peek fingerprint: %w", err)
	}
	defer f.Close()
	zr, err := gzip.NewReader(f)
	if err != nil {
		return "", fmt.Errorf("core: peek fingerprint: %w", err)
	}
	defer zr.Close()
	dec := json.NewDecoder(zr)
	tok, err := dec.Token()
	if err != nil {
		return "", fmt.Errorf("core: peek fingerprint: %w", err)
	}
	if d, ok := tok.(json.Delim); !ok || d != '{' {
		return "", fmt.Errorf("core: peek fingerprint: artifact is not a JSON object")
	}
	for dec.More() {
		keyTok, err := dec.Token()
		if err != nil {
			return "", fmt.Errorf("core: peek fingerprint: %w", err)
		}
		key, _ := keyTok.(string)
		if key == "fingerprint" {
			var fp string
			if err := dec.Decode(&fp); err != nil {
				return "", fmt.Errorf("core: peek fingerprint: %w", err)
			}
			return fp, nil
		}
		// Skip this key's value. The fingerprint field precedes the row
		// arrays in every artifact this repo writes, so the skips before
		// the hit are single tokens; only a foreign artifact pays for a
		// full array parse here.
		var skip json.RawMessage
		if err := dec.Decode(&skip); err != nil {
			return "", fmt.Errorf("core: peek fingerprint: %w", err)
		}
	}
	return "", nil
}
