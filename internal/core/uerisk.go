package core

import (
	"context"
	"fmt"

	"repro/internal/engine"
	"repro/internal/ml"
	"repro/internal/profile"
	"repro/internal/stats"
)

// ue_risk: probability of an uncorrectable error within the observation
// horizon, classified from correctable-error telemetry. This is the
// post-2019 field-failure scenario ("Exploring Error Bits for Memory
// Failure Prediction", "DRAM Failure Prediction in AIOps"): instead of
// predicting characterization results from program features, predict
// whether a server's DIMM is about to fail from the spatial structure of
// its scrubbed CE log. This file is the target's entire core integration —
// sample type, vectorizer, trainer, predictor, evaluation and registry
// entry — demonstrating that target addition is a one-file operation.

// TargetUERisk is the uncorrectable-error-risk classifier target.
const TargetUERisk Target = "ue_risk"

func init() {
	registerTarget(TargetDescriptor{
		Name:           TargetUERisk,
		Doc:            "probability of uncorrectable error within the horizon, from CE telemetry (classification)",
		DefaultSet:     InputSet1,
		Classification: true,
		NeedsTelemetry: true,
		Train: func(ds *Dataset, kind ModelKind, set InputSet, workers int) (Predictor, error) {
			return trainUERisk(ds, kind, set, workers)
		},
		Available: func(ds *Dataset) bool { return len(ds.UER) > 0 },
	})
}

// UESample is one row of the UE-risk training set: a server's CE telemetry
// window, vectorized, with the ground-truth outcome label.
type UESample struct {
	// Server identifies the observed machine; it is the cross-validation
	// group (leave-one-server-out — a server's windows never split across
	// train and test).
	Server string `json:"server"`
	// TREFP, VDD, TempC are the operating point during the window.
	TREFP float64 `json:"trefp"`
	VDD   float64 `json:"vdd"`
	TempC float64 `json:"temp_c"`
	// CEFeatures is the profile.NumCEFeatures-entry error-bit vector
	// extracted from the window's CE log (profile.CEFeatures).
	CEFeatures []float64 `json:"ce_features"`
	// UE is the label: 1 if the server experienced an uncorrectable error
	// within the prediction horizon after the window, else 0.
	UE float64 `json:"ue"`
}

// SetUER replaces the dataset's UE-risk rows (typically synthesized from
// the fleet simulator's telemetry stream) and invalidates the memoized
// fingerprint: the rows are part of the content hash.
func (ds *Dataset) SetUER(rows []UESample) {
	ds.UER = rows
	ds.fp = ""
	ds.summary = nil // derived from the rows just replaced
}

// ueCompactFeatures is the input-set-2 subset of the CE catalog: the four
// strongest standalone signals (volume, row spread, row concentration,
// multi-bit fraction), mirroring how set 2 prunes the program features.
var ueCompactFeatures = []int{
	profile.CEFeatEvents,
	profile.CEFeatDistinctRows,
	profile.CEFeatMaxRowShare,
	profile.CEFeatMultibitFrac,
}

// ueVectorInto assembles the UE-risk model input into dst's storage:
// operating point plus the set's slice of the CE feature vector. Sets 1
// and 3 use the full error-bit catalog; set 2 the compact subset.
func (s InputSet) ueVectorInto(dst []float64, tempC, trefp, vdd float64, ce []float64) []float64 {
	out := append(dst[:0], tempC, trefp, vdd)
	if s == InputSet2 {
		for _, f := range ueCompactFeatures {
			out = append(out, ce[f])
		}
		return out
	}
	return append(out, ce...)
}

// ueVector is the allocating form of ueVectorInto.
func (s InputSet) ueVector(smp *UESample) []float64 {
	return s.ueVectorInto(nil, smp.TempC, smp.TREFP, smp.VDD, smp.CEFeatures)
}

// ueRiskPredictor classifies UE risk from telemetry. It implements
// Predictor for TargetUERisk.
type ueRiskPredictor struct {
	kind   ModelKind
	set    InputSet
	scaler *ml.Scaler
	model  ml.Regressor
}

// trainUERisk fits a UE-risk classifier on the dataset's telemetry rows.
func trainUERisk(ds *Dataset, kind ModelKind, set InputSet, workers int) (*ueRiskPredictor, error) {
	if len(ds.UER) == 0 {
		return nil, fmt.Errorf("core: empty UE-risk dataset (synthesize telemetry rows with dramtrain -ue-windows)")
	}
	trainer, err := classifierTrainerFor(kind, workers)
	if err != nil {
		return nil, err
	}
	X := make([][]float64, len(ds.UER))
	y := make([]float64, len(ds.UER))
	for i := range ds.UER {
		s := &ds.UER[i]
		if len(s.CEFeatures) != profile.NumCEFeatures {
			return nil, fmt.Errorf("core: UE row for %s has %d CE features, want %d",
				s.Server, len(s.CEFeatures), profile.NumCEFeatures)
		}
		X[i] = set.ueVector(s)
		y[i] = s.UE
	}
	scaler, err := ml.FitScaler(X)
	if err != nil {
		return nil, err
	}
	model, err := trainer.Train(scaler.TransformAll(X), y)
	if err != nil {
		return nil, err
	}
	return &ueRiskPredictor{kind: kind, set: set, scaler: scaler, model: model}, nil
}

func (p *ueRiskPredictor) Target() Target     { return TargetUERisk }
func (p *ueRiskPredictor) Kind() ModelKind    { return p.kind }
func (p *ueRiskPredictor) InputSet() InputSet { return p.set }

// Predict implements Predictor: the UE probability in [0, 1] for the
// query's telemetry window. An empty CE log is a valid (healthy)
// observation — it vectorizes to zeros; an out-of-order log is rejected.
// Rank and Features play no part.
func (p *ueRiskPredictor) Predict(q Query) (Prediction, error) {
	if err := checkTarget(TargetUERisk, q.Target); err != nil {
		return Prediction{}, err
	}
	if err := profile.ValidateCEEvents(q.CE); err != nil {
		return Prediction{}, err
	}
	var ce [profile.NumCEFeatures]float64
	profile.CEFeaturesInto(ce[:], q.CE)
	v := predictVec(p.scaler, p.model, func(dst []float64) []float64 {
		return p.set.ueVectorInto(dst, q.TempC, q.TREFP, q.VDD, ce[:])
	})
	return Prediction{
		Target: TargetUERisk, Kind: p.kind, Set: p.set,
		Value: stats.Clamp(v, 0, 1),
	}, nil
}

// PredictBatch implements Predictor; bit-identical to per-query Predict
// calls at every worker count.
func (p *ueRiskPredictor) PredictBatch(ctx context.Context, qs []Query, workers int) ([]Prediction, error) {
	return engine.Map(len(qs), func(i int) (Prediction, error) {
		return p.Predict(qs[i])
	}, batchOptions(ctx, workers))
}

// UERiskEval holds the leave-one-server-out accuracy of one (model, input
// set) classifier — precision/recall at the 0.5 decision threshold plus
// the threshold-free AUC, the metrics the failure-prediction literature
// reports.
type UERiskEval struct {
	Kind ModelKind
	Set  InputSet
	// Precision and Recall score positive calls at threshold 0.5.
	Precision float64
	Recall    float64
	// AUC is the area under the ROC curve (0.5 = no ranking information).
	AUC float64
	// Positives counts ground-truth UE labels in the evaluated rows.
	Positives int
	// Predictions aligns with the dataset's UER rows.
	Predictions []float64
}

// EvaluateUERisk cross-validates a UE-risk classifier with
// leave-one-server-out folds (a server's windows never split across train
// and test — the grouping the AIOps literature uses to avoid leaking
// machine identity). Up to workers folds run concurrently (0 =
// GOMAXPROCS); the result is identical for every worker count.
func EvaluateUERisk(ds *Dataset, kind ModelKind, set InputSet, workers int) (*UERiskEval, error) {
	if len(ds.UER) == 0 {
		return nil, fmt.Errorf("core: empty UE-risk dataset")
	}
	// CV folds already fan out over workers; each fold's trainer stays
	// sequential so the workers knob bounds total parallelism.
	trainer, err := classifierTrainerFor(kind, 1)
	if err != nil {
		return nil, err
	}
	X := make([][]float64, len(ds.UER))
	y := make([]float64, len(ds.UER))
	groups := make([]string, len(ds.UER))
	for i := range ds.UER {
		X[i] = set.ueVector(&ds.UER[i])
		y[i] = ds.UER[i].UE
		groups[i] = ds.UER[i].Server
	}
	preds, err := ml.LeaveOneGroupOut(trainer, X, y, groups, workers)
	if err != nil {
		return nil, err
	}
	for i := range preds {
		preds[i] = stats.Clamp(preds[i], 0, 1)
	}
	ev := &UERiskEval{Kind: kind, Set: set, AUC: ml.AUC(preds, y), Predictions: preds}
	ev.Precision, ev.Recall = ml.PrecisionRecall(preds, y, 0.5)
	for _, v := range y {
		if v > 0.5 {
			ev.Positives++
		}
	}
	return ev, nil
}
