package core

import (
	"fmt"

	"repro/internal/dram"
	"repro/internal/engine"
	"repro/internal/ml"
	"repro/internal/stats"
)

// ModelKind names one of the paper's three supervised methods.
type ModelKind string

// The three methods of the paper's comparison.
const (
	ModelSVM ModelKind = "SVM"
	ModelKNN ModelKind = "KNN"
	ModelRDF ModelKind = "RDF"
)

// ModelKinds lists them in the paper's order.
func ModelKinds() []ModelKind { return []ModelKind{ModelSVM, ModelKNN, ModelRDF} }

// trainerFor builds the ml.Trainer for a kind. workers bounds the
// trainer's own parallelism (forest tree fits); callers that already fan
// out (CV folds) pass 1 so one knob bounds the total.
func trainerFor(kind ModelKind, workers int) (ml.Trainer, error) {
	switch kind {
	case ModelSVM:
		return ml.SVR{}, nil
	case ModelKNN:
		return ml.KNN{K: 5}, nil
	case ModelRDF:
		return ml.Forest{Trees: 60, Seed: 42, Workers: workers}, nil
	}
	return nil, fmt.Errorf("core: unknown model kind %q", kind)
}

// WERPredictor is the trained workload-aware WER model: the deliverable the
// paper publishes (the KNN variant) — it predicts the word error rate of
// any workload on a specific DIMM/rank for a given operating point in
// well under a second.
type WERPredictor struct {
	Kind   ModelKind
	Set    InputSet
	scaler *ml.Scaler
	model  ml.Regressor
}

// TrainWER fits a WER predictor on the dataset. The regression target is
// log10(WER): the rate spans four decades. workers bounds the trainer's
// parallelism (0 = GOMAXPROCS); the fitted model is identical for every
// worker count.
func TrainWER(ds *Dataset, kind ModelKind, set InputSet, workers int) (*WERPredictor, error) {
	if len(ds.WER) == 0 {
		return nil, fmt.Errorf("core: empty WER dataset")
	}
	trainer, err := trainerFor(kind, workers)
	if err != nil {
		return nil, err
	}
	var X [][]float64
	var y []float64
	for i := range ds.WER {
		if ds.WER[i].WER <= WERFloor {
			continue // zero observed errors: no rate information
		}
		X = append(X, set.werVector(&ds.WER[i]))
		y = append(y, logWER(ds.WER[i].WER))
	}
	if len(X) == 0 {
		return nil, fmt.Errorf("core: no WER rows above the observation floor")
	}
	scaler, err := ml.FitScaler(X)
	if err != nil {
		return nil, err
	}
	model, err := trainer.Train(scaler.TransformAll(X), y)
	if err != nil {
		return nil, err
	}
	return &WERPredictor{Kind: kind, Set: set, scaler: scaler, model: model}, nil
}

// Predict returns the estimated WER for a workload with the given program
// features running under (trefp, vdd, tempC) on the given rank.
func (p *WERPredictor) Predict(features []float64, trefp, vdd, tempC float64, rank int) float64 {
	smp := WERSample{TREFP: trefp, VDD: vdd, TempC: tempC, Rank: rank, Features: features}
	x := p.scaler.Transform(p.Set.werVector(&smp))
	return unlogWER(p.model.Predict(x))
}

// PredictMean averages the per-rank predictions — the whole-device WER.
func (p *WERPredictor) PredictMean(features []float64, trefp, vdd, tempC float64) float64 {
	sum := 0.0
	for r := 0; r < dram.NumRanks; r++ {
		sum += p.Predict(features, trefp, vdd, tempC, r)
	}
	return sum / dram.NumRanks
}

// WERQuery is one WER prediction request: a workload's program features
// under an operating point on a specific rank.
type WERQuery struct {
	Features []float64
	TREFP    float64
	VDD      float64
	TempC    float64
	Rank     int
}

// PredictBatch evaluates the queries on a bounded worker pool and returns
// the predictions in query order. Each query is independent and the model
// is immutable after training, so the result is bit-identical to calling
// Predict per query, at every worker count. The options' context cancels
// outstanding queries (the serving layer threads shutdown through here).
func (p *WERPredictor) PredictBatch(qs []WERQuery, opts engine.Options) ([]float64, error) {
	return engine.Map(len(qs), func(i int) (float64, error) {
		q := &qs[i]
		return p.Predict(q.Features, q.TREFP, q.VDD, q.TempC, q.Rank), nil
	}, opts)
}

// PUEPredictor predicts the crash probability of a workload.
type PUEPredictor struct {
	Kind   ModelKind
	Set    InputSet
	scaler *ml.Scaler
	model  ml.Regressor
}

// TrainPUE fits a PUE predictor on the dataset; workers bounds the
// trainer's parallelism (0 = GOMAXPROCS).
func TrainPUE(ds *Dataset, kind ModelKind, set InputSet, workers int) (*PUEPredictor, error) {
	if len(ds.PUE) == 0 {
		return nil, fmt.Errorf("core: empty PUE dataset")
	}
	trainer, err := trainerFor(kind, workers)
	if err != nil {
		return nil, err
	}
	X := make([][]float64, len(ds.PUE))
	y := make([]float64, len(ds.PUE))
	for i := range ds.PUE {
		X[i] = set.pueVector(&ds.PUE[i])
		y[i] = ds.PUE[i].PUE
	}
	scaler, err := ml.FitScaler(X)
	if err != nil {
		return nil, err
	}
	model, err := trainer.Train(scaler.TransformAll(X), y)
	if err != nil {
		return nil, err
	}
	return &PUEPredictor{Kind: kind, Set: set, scaler: scaler, model: model}, nil
}

// Predict returns the estimated crash probability in [0, 1].
func (p *PUEPredictor) Predict(features []float64, trefp, vdd, tempC float64) float64 {
	smp := PUESample{TREFP: trefp, VDD: vdd, TempC: tempC, Features: features}
	x := p.scaler.Transform(p.Set.pueVector(&smp))
	return stats.Clamp(p.model.Predict(x), 0, 1)
}

// PUEQuery is one crash-probability prediction request.
type PUEQuery struct {
	Features []float64
	TREFP    float64
	VDD      float64
	TempC    float64
}

// PredictBatch evaluates the queries on a bounded worker pool and returns
// the predictions in query order, bit-identical to per-query Predict calls
// at every worker count.
func (p *PUEPredictor) PredictBatch(qs []PUEQuery, opts engine.Options) ([]float64, error) {
	return engine.Map(len(qs), func(i int) (float64, error) {
		q := &qs[i]
		return p.Predict(q.Features, q.TREFP, q.VDD, q.TempC), nil
	}, opts)
}
