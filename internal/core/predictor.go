package core

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/dram"
	"repro/internal/engine"
	"repro/internal/ml"
	"repro/internal/stats"
)

// vecPool recycles query feature-vector buffers across predictions. The
// raw vector is assembled into a pooled buffer, standardized in place, fed
// to the model (ml.Regressor.Predict reads its argument and never retains
// it) and returned — a warm single-rank prediction allocates nothing.
var vecPool = sync.Pool{New: func() any { return new([]float64) }}

// predictVec runs one standardized model evaluation: assemble the raw
// vector into a pooled buffer via into, standardize in place, predict.
func predictVec(scaler *ml.Scaler, model ml.Regressor, into func(dst []float64) []float64) float64 {
	bp := vecPool.Get().(*[]float64)
	x := into(*bp)
	scaler.TransformInto(x, x)
	v := model.Predict(x)
	*bp = x
	vecPool.Put(bp)
	return v
}

// ModelKind names one of the paper's three supervised methods.
type ModelKind string

// The three methods of the paper's comparison.
const (
	ModelSVM ModelKind = "SVM"
	ModelKNN ModelKind = "KNN"
	ModelRDF ModelKind = "RDF"
)

// ModelKinds lists them in the paper's order.
func ModelKinds() []ModelKind { return []ModelKind{ModelSVM, ModelKNN, ModelRDF} }

// ParseModelKind resolves a user-supplied model name against the catalog.
func ParseModelKind(s string) (ModelKind, error) {
	kind := ModelKind(s)
	for _, k := range ModelKinds() {
		if k == kind {
			return k, nil
		}
	}
	return "", fmt.Errorf("core: unknown model %q", s)
}

// trainerFor builds the ml.Trainer for a kind. workers bounds the
// trainer's own parallelism (forest tree fits); callers that already fan
// out (CV folds) pass 1 so one knob bounds the total.
func trainerFor(kind ModelKind, workers int) (ml.Trainer, error) {
	switch kind {
	case ModelSVM:
		return ml.SVR{}, nil
	case ModelKNN:
		return ml.KNN{K: 5}, nil
	case ModelRDF:
		return ml.Forest{Trees: 60, Seed: 42, Workers: workers}, nil
	}
	return nil, fmt.Errorf("core: unknown model kind %q", kind)
}

// classifierTrainerFor builds the ml.Trainer for a kind in classification
// mode (0/1 labels, probability output). The forest switches to majority
// voting; KNN and SVM regress on the labels and the predictor clamps to
// [0, 1] — the standard regression-as-classification reduction, keeping
// all three kinds available for every target.
func classifierTrainerFor(kind ModelKind, workers int) (ml.Trainer, error) {
	if kind == ModelRDF {
		return ml.ForestClassifier{Forest: ml.Forest{Trees: 60, Seed: 42, Workers: workers}}, nil
	}
	return trainerFor(kind, workers)
}

// batchOptions turns a Predictor.PredictBatch context/worker pair into the
// engine dispatch options shared by both implementations.
func batchOptions(ctx context.Context, workers int) engine.Options {
	return engine.Options{Workers: workers, Context: ctx}
}

// werPredictor is the trained workload-aware WER model: the deliverable
// the paper publishes (the KNN variant) — it predicts the word error rate
// of any workload on a specific DIMM/rank for a given operating point in
// well under a second. It implements Predictor for TargetWER; Train is the
// only way to build one.
type werPredictor struct {
	kind   ModelKind
	set    InputSet
	scaler *ml.Scaler
	model  ml.Regressor
}

// trainWER fits a WER predictor on the dataset. The regression target is
// log10(WER): the rate spans four decades.
func trainWER(ds *Dataset, kind ModelKind, set InputSet, workers int) (*werPredictor, error) {
	if len(ds.WER) == 0 {
		return nil, fmt.Errorf("core: empty WER dataset")
	}
	trainer, err := trainerFor(kind, workers)
	if err != nil {
		return nil, err
	}
	var X [][]float64
	var y []float64
	for i := range ds.WER {
		if ds.WER[i].WER <= WERFloor {
			continue // zero observed errors: no rate information
		}
		X = append(X, set.werVector(&ds.WER[i]))
		y = append(y, logWER(ds.WER[i].WER))
	}
	if len(X) == 0 {
		return nil, fmt.Errorf("core: no WER rows above the observation floor")
	}
	scaler, err := ml.FitScaler(X)
	if err != nil {
		return nil, err
	}
	model, err := trainer.Train(scaler.TransformAll(X), y)
	if err != nil {
		return nil, err
	}
	return &werPredictor{kind: kind, set: set, scaler: scaler, model: model}, nil
}

func (p *werPredictor) Target() Target     { return TargetWER }
func (p *werPredictor) Kind() ModelKind    { return p.kind }
func (p *werPredictor) InputSet() InputSet { return p.set }

// predictRank is the raw model evaluation for one rank.
func (p *werPredictor) predictRank(q *Query, rank int) float64 {
	smp := WERSample{TREFP: q.TREFP, VDD: q.VDD, TempC: q.TempC, Rank: rank, Features: q.Features}
	return unlogWER(predictVec(p.scaler, p.model, func(dst []float64) []float64 {
		return p.set.werVectorInto(dst, &smp)
	}))
}

// Predict implements Predictor. A RankDevice query returns the per-rank
// breakdown with the device mean as Value; a single-rank query returns
// that rank's rate alone.
func (p *werPredictor) Predict(q Query) (Prediction, error) {
	if err := checkTarget(TargetWER, q.Target); err != nil {
		return Prediction{}, err
	}
	if err := checkRank(q.Rank); err != nil {
		return Prediction{}, err
	}
	out := Prediction{Target: TargetWER, Kind: p.kind, Set: p.set}
	if q.Rank != RankDevice {
		out.Value = p.predictRank(&q, q.Rank)
		return out, nil
	}
	out.ByRank = make([]float64, dram.NumRanks)
	sum := 0.0
	for r := 0; r < dram.NumRanks; r++ {
		out.ByRank[r] = p.predictRank(&q, r)
		sum += out.ByRank[r]
	}
	out.Value = sum / dram.NumRanks
	return out, nil
}

// PredictBatch implements Predictor. Each query is independent and the
// model is immutable after training, so the result is bit-identical to
// calling Predict per query, at every worker count.
func (p *werPredictor) PredictBatch(ctx context.Context, qs []Query, workers int) ([]Prediction, error) {
	return engine.Map(len(qs), func(i int) (Prediction, error) {
		return p.Predict(qs[i])
	}, batchOptions(ctx, workers))
}

// puePredictor predicts the crash probability of a workload. It implements
// Predictor for TargetPUE.
type puePredictor struct {
	kind   ModelKind
	set    InputSet
	scaler *ml.Scaler
	model  ml.Regressor
}

// trainPUE fits a PUE predictor on the dataset.
func trainPUE(ds *Dataset, kind ModelKind, set InputSet, workers int) (*puePredictor, error) {
	if len(ds.PUE) == 0 {
		return nil, fmt.Errorf("core: empty PUE dataset")
	}
	trainer, err := trainerFor(kind, workers)
	if err != nil {
		return nil, err
	}
	X := make([][]float64, len(ds.PUE))
	y := make([]float64, len(ds.PUE))
	for i := range ds.PUE {
		X[i] = set.pueVector(&ds.PUE[i])
		y[i] = ds.PUE[i].PUE
	}
	scaler, err := ml.FitScaler(X)
	if err != nil {
		return nil, err
	}
	model, err := trainer.Train(scaler.TransformAll(X), y)
	if err != nil {
		return nil, err
	}
	return &puePredictor{kind: kind, set: set, scaler: scaler, model: model}, nil
}

func (p *puePredictor) Target() Target     { return TargetPUE }
func (p *puePredictor) Kind() ModelKind    { return p.kind }
func (p *puePredictor) InputSet() InputSet { return p.set }

// Predict implements Predictor: the estimated crash probability in [0, 1].
// PUE is system-level, so Rank (and ByRank) play no part.
func (p *puePredictor) Predict(q Query) (Prediction, error) {
	if err := checkTarget(TargetPUE, q.Target); err != nil {
		return Prediction{}, err
	}
	smp := PUESample{TREFP: q.TREFP, VDD: q.VDD, TempC: q.TempC, Features: q.Features}
	v := predictVec(p.scaler, p.model, func(dst []float64) []float64 {
		return p.set.pueVectorInto(dst, &smp)
	})
	return Prediction{
		Target: TargetPUE, Kind: p.kind, Set: p.set,
		Value: stats.Clamp(v, 0, 1),
	}, nil
}

// PredictBatch implements Predictor; bit-identical to per-query Predict
// calls at every worker count.
func (p *puePredictor) PredictBatch(ctx context.Context, qs []Query, workers int) ([]Prediction, error) {
	return engine.Map(len(qs), func(i int) (Prediction, error) {
		return p.Predict(qs[i])
	}, batchOptions(ctx, workers))
}
