// Package core implements the paper's primary contribution: a
// workload-aware DRAM error behavioural model. It assembles the training
// data from characterization campaigns (Section III-E), defines the input
// feature sets of Table III, trains the three supervised models (SVM, KNN,
// RDF) to predict the word error rate (WER) and crash probability (PUE),
// evaluates them with leave-one-workload-out cross validation (Fig. 3), and
// provides the conventional workload-unaware baseline the paper compares
// against (Section VI-C).
package core

import (
	"fmt"
	"math"

	"repro/internal/dram"
	"repro/internal/profile"
	"repro/internal/workload"
	"repro/internal/xgene"
)

// Campaign parameter grids (paper Section V).
var (
	// WERTrefps are the refresh periods of the WER characterization.
	WERTrefps = []float64{0.618, 1.173, 1.727, 2.283}
	// WERTemps are the DIMM temperatures of the WER characterization.
	WERTemps = []float64{50, 60, 70}
	// PUETrefps are the refresh periods of the PUE study (Fig. 9).
	PUETrefps = []float64{1.450, 1.727, 2.283}
	// PUETemp is the temperature at which UEs manifest.
	PUETemp = 70.0
)

// WERFloor replaces zero error counts when modeling log-rates: a run with
// no observed CEs is recorded at the resolution limit of the campaign.
const WERFloor = 1e-11

// WERSample is one row of the WER dataset: a workload observed on one rank
// under one operating point.
type WERSample struct {
	Workload string
	Threads  int
	TREFP    float64
	VDD      float64
	TempC    float64
	Rank     int
	Features []float64 // the 249 program features
	WER      float64
}

// PUESample is one row of the PUE dataset.
type PUESample struct {
	Workload string
	Threads  int
	TREFP    float64
	VDD      float64
	TempC    float64
	Features []float64
	PUE      float64
	// RankHits counts which rank produced the first UE in each crashed
	// repetition (Fig. 9b's per-DIMM/rank crash attribution).
	RankHits []int
}

// Dataset is the paper's full training corpus.
type Dataset struct {
	WER []WERSample
	PUE []PUESample
	// Profiles indexes the program profiles by workload label.
	Profiles map[string]*profile.Result
}

// CampaignOptions tunes dataset collection.
type CampaignOptions struct {
	// Reps is the number of repetitions per PUE experiment (paper: 10).
	Reps int
	// VDD is the supply voltage of the campaign (paper: 1.428 V).
	VDD float64
}

func (o *CampaignOptions) setDefaults() {
	if o.Reps == 0 {
		o.Reps = 10
	}
	if o.VDD == 0 {
		o.VDD = dram.MinVDD
	}
}

// BuildProfiles profiles every benchmark in specs at the given size.
func BuildProfiles(specs []workload.Spec, size workload.Size, seed uint64) (map[string]*profile.Result, error) {
	out := make(map[string]*profile.Result, len(specs))
	for _, spec := range specs {
		var (
			res *profile.Result
			err error
		)
		if size == workload.SizeTest {
			res, err = profile.BuildQuick(spec, seed)
		} else {
			res, err = profile.Build(spec, seed)
		}
		if err != nil {
			return nil, fmt.Errorf("core: profiling %s: %w", spec.Label, err)
		}
		out[spec.Label] = res
	}
	return out, nil
}

// BuildDataset runs the paper's characterization campaigns on the server
// for every profiled workload and assembles the dataset:
//
//   - WER rows for every (workload, TREFP, temperature, rank) combination
//     whose run completes (runs that crash — 70 °C at high TREFP — yield
//     no WER, as on the real platform);
//   - PUE rows for every (workload, TREFP) of the 70 °C crash study.
func BuildDataset(srv *xgene.Server, profiles map[string]*profile.Result, specs []workload.Spec, opts CampaignOptions) (*Dataset, error) {
	opts.setDefaults()
	if err := srv.SetVDD(opts.VDD); err != nil {
		return nil, err
	}
	ds := &Dataset{Profiles: profiles}
	for _, spec := range specs {
		prof, ok := profiles[spec.Label]
		if !ok {
			return nil, fmt.Errorf("core: no profile for %s", spec.Label)
		}
		// WER campaign.
		for _, temp := range WERTemps {
			for _, trefp := range WERTrefps {
				if err := srv.SetTREFP(trefp); err != nil {
					return nil, err
				}
				obs, err := srv.Run(prof.Access, xgene.Experiment{TempC: temp, RecordWER: true})
				if err != nil {
					return nil, err
				}
				if !obs.WERValid {
					continue // crashed: no WER measurement, as in the paper
				}
				for rank := 0; rank < dram.NumRanks; rank++ {
					wer := obs.WERByRank[rank]
					// Fewer than 3 observed error words cannot support
					// a rate estimate; record the observation floor
					// (such rows render as "no errors" and are skipped
					// by model training and scoring).
					if obs.CEWords[rank] < 3 {
						wer = WERFloor
					}
					ds.WER = append(ds.WER, WERSample{
						Workload: spec.Label,
						Threads:  spec.Threads,
						TREFP:    trefp,
						VDD:      opts.VDD,
						TempC:    temp,
						Rank:     rank,
						Features: prof.Features,
						WER:      wer,
					})
				}
			}
		}
		// PUE campaign at 70 °C.
		for _, trefp := range PUETrefps {
			if err := srv.SetTREFP(trefp); err != nil {
				return nil, err
			}
			pue, rankHits, err := srv.MeasurePUE(prof.Access, PUETemp, opts.Reps)
			if err != nil {
				return nil, err
			}
			ds.PUE = append(ds.PUE, PUESample{
				Workload: spec.Label,
				Threads:  spec.Threads,
				TREFP:    trefp,
				VDD:      opts.VDD,
				TempC:    PUETemp,
				Features: prof.Features,
				PUE:      pue,
				RankHits: rankHits,
			})
		}
	}
	if len(ds.WER) == 0 {
		return nil, fmt.Errorf("core: campaign produced no WER samples")
	}
	return ds, nil
}

// Workloads lists the distinct workload labels in the WER set.
func (ds *Dataset) Workloads() []string {
	seen := map[string]bool{}
	var out []string
	for _, s := range ds.WER {
		if !seen[s.Workload] {
			seen[s.Workload] = true
			out = append(out, s.Workload)
		}
	}
	return out
}

// MeanWERByWorkloadConfig averages WER over ranks for each (workload,
// TREFP, temp) triple; used for feature correlation (Fig. 10).
func (ds *Dataset) MeanWERByWorkloadConfig() (keys []WERSample, means []float64) {
	type cfg struct {
		w    string
		t, c float64
	}
	idx := map[cfg]int{}
	var sums []float64
	var counts []int
	for _, s := range ds.WER {
		k := cfg{s.Workload, s.TREFP, s.TempC}
		i, ok := idx[k]
		if !ok {
			i = len(keys)
			idx[k] = i
			keys = append(keys, s)
			sums = append(sums, 0)
			counts = append(counts, 0)
		}
		sums[i] += s.WER
		counts[i]++
	}
	means = make([]float64, len(sums))
	for i := range sums {
		means[i] = sums[i] / float64(counts[i])
	}
	return keys, means
}

// logWER maps a rate to the regression target space.
func logWER(w float64) float64 {
	if w < WERFloor {
		w = WERFloor
	}
	return math.Log10(w)
}

// unlogWER inverts logWER.
func unlogWER(lw float64) float64 { return math.Pow(10, lw) }
