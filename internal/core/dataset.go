// Package core implements the paper's primary contribution: a
// workload-aware DRAM error behavioural model. It assembles the training
// data from characterization campaigns (Section III-E), defines the input
// feature sets of Table III, trains the three supervised models (SVM, KNN,
// RDF) to predict the word error rate (WER) and crash probability (PUE),
// evaluates them with leave-one-workload-out cross validation (Fig. 3), and
// provides the conventional workload-unaware baseline the paper compares
// against (Section VI-C).
package core

import (
	"fmt"
	"math"

	"repro/internal/dram"
	"repro/internal/engine"
	"repro/internal/profile"
	"repro/internal/workload"
	"repro/internal/xgene"
)

// Campaign parameter grids (paper Section V).
var (
	// WERTrefps are the refresh periods of the WER characterization.
	WERTrefps = []float64{0.618, 1.173, 1.727, 2.283}
	// WERTemps are the DIMM temperatures of the WER characterization.
	WERTemps = []float64{50, 60, 70}
	// PUETrefps are the refresh periods of the PUE study (Fig. 9).
	PUETrefps = []float64{1.450, 1.727, 2.283}
	// PUETemp is the temperature at which UEs manifest.
	PUETemp = 70.0
)

// WERFloor replaces zero error counts when modeling log-rates: a run with
// no observed CEs is recorded at the resolution limit of the campaign.
const WERFloor = 1e-11

// WERSample is one row of the WER dataset: a workload observed on one rank
// under one operating point.
type WERSample struct {
	Workload string
	Threads  int
	TREFP    float64
	VDD      float64
	TempC    float64
	Rank     int
	Features []float64 // the 249 program features
	WER      float64
}

// PUESample is one row of the PUE dataset.
type PUESample struct {
	Workload string
	Threads  int
	TREFP    float64
	VDD      float64
	TempC    float64
	Features []float64
	PUE      float64
	// RankHits counts which rank produced the first UE in each crashed
	// repetition (Fig. 9b's per-DIMM/rank crash attribution).
	RankHits []int
}

// BuildInfo records how a corpus was produced. It travels with the saved
// artifact so loaders profile query workloads the same way the training
// rows were profiled — a size or seed mismatch yields silently
// incommensurate features, never an error.
type BuildInfo struct {
	// ProfileSize is "test" (built with -quick) or "profile"; empty in
	// artifacts predating the field.
	ProfileSize string `json:"profile_size,omitempty"`
	// Seed keyed the profiling and characterization runs.
	Seed uint64 `json:"seed"`
}

// Known reports whether the artifact declared its build settings.
func (b BuildInfo) Known() bool { return b.ProfileSize != "" }

// Quick reports whether the corpus was profiled at test size.
func (b BuildInfo) Quick() bool { return b.ProfileSize == "test" }

// Dataset is the paper's full training corpus.
type Dataset struct {
	WER []WERSample
	PUE []PUESample
	// UER holds the UE-risk telemetry rows (see uerisk.go); empty in
	// corpora that predate the target or never synthesized telemetry.
	UER []UESample
	// Profiles indexes the program profiles by workload label.
	Profiles map[string]*profile.Result
	// Build describes how the corpus was produced (persisted with the
	// artifact; zero when unknown).
	Build BuildInfo
	// fp memoizes Fingerprint for loaded (immutable) datasets; empty
	// means compute on demand. Never copied into derived datasets.
	fp string
	// summary memoizes TelemetrySummary (see summary.go); nil means
	// compute on demand. Never copied into derived datasets.
	summary *TelemetrySummary
}

// StampBuild records the corpus build settings for persistence.
func (ds *Dataset) StampBuild(size workload.Size, seed uint64) {
	name := "profile"
	if size == workload.SizeTest {
		name = "test"
	}
	ds.Build = BuildInfo{ProfileSize: name, Seed: seed}
	ds.fp = "" // the build settings are part of the fingerprint
}

// CampaignOptions tunes dataset collection.
type CampaignOptions struct {
	// Reps is the number of repetitions per PUE experiment (paper: 10).
	Reps int
	// VDD is the supply voltage of the campaign (paper: 1.428 V).
	VDD float64
	// Workers bounds the number of characterization runs in flight;
	// 0 means GOMAXPROCS. The assembled dataset is identical for every
	// worker count.
	Workers int
	// OnProgress, when non-nil, observes campaign completion (runs done,
	// runs total).
	OnProgress func(done, total int)
}

func (o *CampaignOptions) setDefaults() {
	if o.Reps == 0 {
		o.Reps = 10
	}
	if o.VDD == 0 {
		o.VDD = dram.MinVDD
	}
}

// BuildProfiles profiles every benchmark in specs at the given size,
// running up to workers profiling passes concurrently (0 = GOMAXPROCS).
// Each pass executes its kernel on a fresh engine deterministically keyed
// by (label, seed), so the resulting profiles are independent of the
// worker count.
func BuildProfiles(specs []workload.Spec, size workload.Size, seed uint64, workers int) (map[string]*profile.Result, error) {
	results, err := engine.Map(len(specs), func(i int) (*profile.Result, error) {
		res, err := profile.BuildAt(specs[i], size, seed)
		if err != nil {
			return nil, fmt.Errorf("core: profiling %s: %w", specs[i].Label, err)
		}
		return res, nil
	}, engine.Options{Workers: workers})
	if err != nil {
		return nil, err
	}
	out := make(map[string]*profile.Result, len(specs))
	for i, res := range results {
		out[specs[i].Label] = res
	}
	return out, nil
}

// BuildDataset runs the paper's characterization campaigns on the server
// for every profiled workload and assembles the dataset:
//
//   - WER rows for every (workload, TREFP, temperature, rank) combination
//     whose run completes (runs that crash — 70 °C at high TREFP — yield
//     no WER, as on the real platform);
//   - PUE rows for every (workload, TREFP) of the 70 °C crash study.
func BuildDataset(srv *xgene.Server, profiles map[string]*profile.Result, specs []workload.Spec, opts CampaignOptions) (*Dataset, error) {
	opts.setDefaults()

	// Flatten both campaigns into one request list — the unit of work the
	// engine schedules is a single simulated 2-hour run. pue marks the
	// crash-study runs; each PUE experiment contributes Reps requests that
	// are aggregated back into one sample during assembly.
	type runMeta struct {
		spec  workload.Spec
		temp  float64
		trefp float64
		pue   bool
	}
	var reqs []xgene.Request
	var metas []runMeta
	for _, spec := range specs {
		prof, ok := profiles[spec.Label]
		if !ok {
			return nil, fmt.Errorf("core: no profile for %s", spec.Label)
		}
		// WER campaign.
		for _, temp := range WERTemps {
			for _, trefp := range WERTrefps {
				reqs = append(reqs, xgene.Request{
					Profile: prof.Access,
					TREFP:   trefp,
					VDD:     opts.VDD,
					Exp:     xgene.Experiment{TempC: temp, RecordWER: true},
				})
				metas = append(metas, runMeta{spec: spec, temp: temp, trefp: trefp})
			}
		}
		// PUE campaign at 70 °C.
		for _, trefp := range PUETrefps {
			for rep := 0; rep < opts.Reps; rep++ {
				reqs = append(reqs, xgene.Request{
					Profile: prof.Access,
					TREFP:   trefp,
					VDD:     opts.VDD,
					Exp:     xgene.Experiment{TempC: PUETemp, Rep: rep},
				})
				metas = append(metas, runMeta{spec: spec, temp: PUETemp, trefp: trefp, pue: true})
			}
		}
	}

	observations, err := srv.Campaign(reqs, engine.Options{
		Workers:    opts.Workers,
		OnProgress: opts.OnProgress,
	})
	if err != nil {
		return nil, err
	}

	// Assemble the dataset in request order, so rows appear exactly as the
	// sequential campaign produced them regardless of worker count.
	ds := &Dataset{Profiles: profiles}
	var pueGroup []*xgene.Observation
	for i, obs := range observations {
		m := metas[i]
		prof := profiles[m.spec.Label]
		if !m.pue {
			if !obs.WERValid {
				continue // crashed: no WER measurement, as in the paper
			}
			for rank := 0; rank < dram.NumRanks; rank++ {
				wer := obs.WERByRank[rank]
				// Fewer than 3 observed error words cannot support
				// a rate estimate; record the observation floor
				// (such rows render as "no errors" and are skipped
				// by model training and scoring).
				if obs.CEWords[rank] < 3 {
					wer = WERFloor
				}
				ds.WER = append(ds.WER, WERSample{
					Workload: m.spec.Label,
					Threads:  m.spec.Threads,
					TREFP:    m.trefp,
					VDD:      opts.VDD,
					TempC:    m.temp,
					Rank:     rank,
					Features: prof.Features,
					WER:      wer,
				})
			}
			continue
		}
		// PUE repetitions of one (workload, TREFP) experiment are
		// consecutive requests; fold them into one sample (paper Eq. 3).
		pueGroup = append(pueGroup, obs)
		if len(pueGroup) == opts.Reps {
			crashes, rankHits := xgene.CrashStats(pueGroup)
			ds.PUE = append(ds.PUE, PUESample{
				Workload: m.spec.Label,
				Threads:  m.spec.Threads,
				TREFP:    m.trefp,
				VDD:      opts.VDD,
				TempC:    PUETemp,
				Features: prof.Features,
				PUE:      float64(crashes) / float64(opts.Reps),
				RankHits: rankHits,
			})
			pueGroup = pueGroup[:0]
		}
	}
	if len(ds.WER) == 0 {
		return nil, fmt.Errorf("core: campaign produced no WER samples")
	}
	return ds, nil
}

// WithoutWorkload returns a copy of the dataset with every row (and
// profile) of the labeled workload removed — the leave-one-out corpus used
// when predicting a workload that is present in a saved artifact.
func (ds *Dataset) WithoutWorkload(label string) *Dataset {
	out := &Dataset{Build: ds.Build}
	for _, s := range ds.WER {
		if s.Workload != label {
			out.WER = append(out.WER, s)
		}
	}
	for _, s := range ds.PUE {
		if s.Workload != label {
			out.PUE = append(out.PUE, s)
		}
	}
	// UE-risk rows are grouped by server, not workload; the leave-one-
	// workload-out corpus keeps them all.
	out.UER = append(out.UER, ds.UER...)
	if ds.Profiles != nil {
		out.Profiles = make(map[string]*profile.Result, len(ds.Profiles))
		for k, v := range ds.Profiles {
			if k != label {
				out.Profiles[k] = v
			}
		}
	}
	return out
}

// Append returns a copy of the dataset with the observation rows
// appended — the incremental-ingest seam. The receiver is unchanged
// (serving generations are immutable): row storage is reallocated at
// exact capacity so the two datasets never share growable backing
// arrays, while the profiles map (itself immutable) is carried over.
// The fingerprint and telemetry summary are recomputed on demand.
func (ds *Dataset) Append(wer []WERSample, pue []PUESample, uer []UESample) *Dataset {
	out := &Dataset{
		WER:      make([]WERSample, 0, len(ds.WER)+len(wer)),
		PUE:      make([]PUESample, 0, len(ds.PUE)+len(pue)),
		UER:      make([]UESample, 0, len(ds.UER)+len(uer)),
		Profiles: ds.Profiles,
		Build:    ds.Build,
	}
	out.WER = append(append(out.WER, ds.WER...), wer...)
	out.PUE = append(append(out.PUE, ds.PUE...), pue...)
	out.UER = append(append(out.UER, ds.UER...), uer...)
	return out
}

// Workloads lists the distinct workload labels in the WER set.
func (ds *Dataset) Workloads() []string {
	seen := map[string]bool{}
	var out []string
	for _, s := range ds.WER {
		if !seen[s.Workload] {
			seen[s.Workload] = true
			out = append(out, s.Workload)
		}
	}
	return out
}

// MeanWERByWorkloadConfig averages WER over ranks for each (workload,
// TREFP, temp) triple; used for feature correlation (Fig. 10).
func (ds *Dataset) MeanWERByWorkloadConfig() (keys []WERSample, means []float64) {
	type cfg struct {
		w    string
		t, c float64
	}
	idx := map[cfg]int{}
	var sums []float64
	var counts []int
	for _, s := range ds.WER {
		k := cfg{s.Workload, s.TREFP, s.TempC}
		i, ok := idx[k]
		if !ok {
			i = len(keys)
			idx[k] = i
			keys = append(keys, s)
			sums = append(sums, 0)
			counts = append(counts, 0)
		}
		sums[i] += s.WER
		counts[i]++
	}
	means = make([]float64, len(sums))
	for i := range sums {
		means[i] = sums[i] / float64(counts[i])
	}
	return keys, means
}

// logWER maps a rate to the regression target space.
func logWER(w float64) float64 {
	if w < WERFloor {
		w = WERFloor
	}
	return math.Log10(w)
}

// unlogWER inverts logWER.
func unlogWER(lw float64) float64 { return math.Pow(10, lw) }
