package core_test

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/dram"
	"repro/internal/profile"
)

// exampleDataset builds a tiny synthetic training corpus: two fake
// workloads observed on every rank over a few operating points. Real
// corpora come from characterization campaigns (core.BuildDataset) or a
// saved artifact (core.LoadDataset); a synthetic one keeps the examples
// fast and their output stable.
func exampleDataset() *core.Dataset {
	features := func(treuse, hdp, wait, mem float64) []float64 {
		f := make([]float64, profile.NumFeatures)
		f[profile.FeatTreuse] = treuse
		f[profile.FeatHDP] = hdp
		f[profile.FeatWaitCycles] = wait
		f[profile.FeatMemAccesses] = mem
		return f
	}
	workloads := []struct {
		label string
		feats []float64
		base  float64 // error-proneness of the workload's access pattern
	}{
		{"alpha", features(0.20, 12, 0.30, 60), 1e-7},
		{"beta", features(0.01, 28, 0.60, 220), 5e-7},
	}
	ds := &core.Dataset{}
	for _, w := range workloads {
		for _, trefp := range []float64{1.173, 2.283} {
			for _, temp := range []float64{60, 70} {
				for rank := 0; rank < dram.NumRanks; rank++ {
					ds.WER = append(ds.WER, core.WERSample{
						Workload: w.label, TREFP: trefp, VDD: dram.MinVDD,
						TempC: temp, Rank: rank, Features: w.feats,
						WER: w.base * trefp * trefp * (temp - 50) * float64(rank+1),
					})
				}
			}
		}
		for i, trefp := range []float64{1.450, 1.727, 2.283} {
			ds.PUE = append(ds.PUE, core.PUESample{
				Workload: w.label, TREFP: trefp, VDD: dram.MinVDD, TempC: 70,
				Features: w.feats, PUE: float64(i) / 2,
			})
		}
	}
	return ds
}

// ExampleTrain fits the paper's published model (KNN on the target's
// default input set) and answers one device-level query — the whole
// prediction API in four calls.
func ExampleTrain() {
	ds := exampleDataset()

	// Train(dataset, target, model kind, input set, workers): input set 0
	// selects the target's published default (set 1 for WER).
	pred, err := core.Train(ds, core.TargetWER, core.ModelKNN, 0, 1)
	if err != nil {
		panic(err)
	}

	// Rank selects one DIMM/rank; RankDevice asks for the whole device
	// (per-rank breakdown plus their mean as Value).
	p, err := pred.Predict(core.Query{
		Features: ds.WER[0].Features,
		TREFP:    2.283, VDD: dram.MinVDD, TempC: 70,
		Rank: core.RankDevice,
	})
	if err != nil {
		panic(err)
	}

	fmt.Println("model:", p.Kind, "for", p.Target, "on", p.Set)
	fmt.Println("device-mean WER in (0, 1]:", p.Value > 0 && p.Value <= 1)
	fmt.Println("per-rank breakdown entries:", len(p.ByRank))
	// Output:
	// model: KNN for wer on Input set 1
	// device-mean WER in (0, 1]: true
	// per-rank breakdown entries: 8
}

// ExamplePredictor_PredictBatch evaluates a batch on a bounded worker
// pool. The results are bit-identical to per-query Predict calls at every
// worker count — the property the serving layer's micro-batcher relies on.
func ExamplePredictor_PredictBatch() {
	ds := exampleDataset()
	pred, err := core.Train(ds, core.TargetPUE, core.ModelKNN, 0, 1)
	if err != nil {
		panic(err)
	}

	queries := make([]core.Query, 0, 3)
	for _, trefp := range []float64{1.450, 1.727, 2.283} {
		queries = append(queries, core.Query{
			Features: ds.PUE[0].Features,
			TREFP:    trefp, VDD: dram.MinVDD, TempC: 70,
		})
	}
	batch, err := pred.PredictBatch(context.Background(), queries, 2)
	if err != nil {
		panic(err)
	}

	inRange, matches := true, true
	for i, p := range batch {
		if p.Value < 0 || p.Value > 1 {
			inRange = false
		}
		single, err := pred.Predict(queries[i])
		if err != nil || single.Value != p.Value {
			matches = false
		}
	}
	fmt.Println("predictions:", len(batch))
	fmt.Println("crash probabilities in [0, 1]:", inRange)
	fmt.Println("batch bit-identical to sequential:", matches)
	// Output:
	// predictions: 3
	// crash probabilities in [0, 1]: true
	// batch bit-identical to sequential: true
}
