package core

import (
	"bytes"
	"compress/gzip"
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"
)

func TestDatasetSaveLoadRoundTrip(t *testing.T) {
	ds := testDataset(t)
	path := filepath.Join(t.TempDir(), "dfault.json.gz")
	if err := ds.Save(path); err != nil {
		t.Fatal(err)
	}
	back, err := LoadDataset(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.WER) != len(ds.WER) || len(back.PUE) != len(ds.PUE) {
		t.Fatalf("row counts changed: %d/%d vs %d/%d",
			len(back.WER), len(back.PUE), len(ds.WER), len(ds.PUE))
	}
	for i := range ds.WER {
		if back.WER[i].WER != ds.WER[i].WER || back.WER[i].Workload != ds.WER[i].Workload {
			t.Fatalf("WER row %d changed", i)
		}
	}
	// A model trained from the loaded artifact predicts identically.
	orig, err := Train(ds, TargetWER, ModelKNN, InputSet1, 0)
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := Train(back, TargetWER, ModelKNN, InputSet1, 0)
	if err != nil {
		t.Fatal(err)
	}
	smp := ds.WER[0]
	q := Query{Features: smp.Features, TREFP: smp.TREFP, VDD: smp.VDD, TempC: smp.TempC, Rank: smp.Rank}
	a, err := orig.Predict(q)
	if err != nil {
		t.Fatal(err)
	}
	b, err := loaded.Predict(q)
	if err != nil {
		t.Fatal(err)
	}
	if a.Value != b.Value {
		t.Fatalf("loaded-model prediction differs: %v vs %v", a.Value, b.Value)
	}
}

func TestLoadDatasetRejectsVersionMismatch(t *testing.T) {
	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	if err := json.NewEncoder(zw).Encode(map[string]any{"version": 99}); err != nil {
		t.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadDataset(&buf); err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("version mismatch accepted: %v", err)
	}
}

func TestLoadDatasetRejectsCatalogMismatch(t *testing.T) {
	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	if err := json.NewEncoder(zw).Encode(map[string]any{
		"version":       1,
		"feature_names": []string{"only_one"},
	}); err != nil {
		t.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadDataset(&buf); err == nil {
		t.Fatal("catalog mismatch accepted")
	}
}

func TestLoadDatasetRejectsGarbage(t *testing.T) {
	if _, err := ReadDataset(strings.NewReader("not gzip")); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := LoadDataset(filepath.Join(t.TempDir(), "missing.gz")); err == nil {
		t.Fatal("missing file accepted")
	}
}
