package core

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/profile"
)

func telemetryRows(n int, shift float64) []UESample {
	rows := make([]UESample, n)
	for i := range rows {
		ce := make([]float64, profile.NumCEFeatures)
		ce[0] = float64(i%5) + shift // event volume moves with shift
		ce[1] = 1
		rows[i] = UESample{
			Server:     "server00",
			TREFP:      1.8 + shift,
			VDD:        1.4,
			TempC:      60 + float64(i%3),
			CEFeatures: ce,
			UE:         float64(i % 2),
		}
	}
	return rows
}

func TestSummarizeTelemetry(t *testing.T) {
	if s := SummarizeTelemetry(nil); s != nil {
		t.Fatalf("summary of no rows = %+v, want nil", s)
	}
	rows := telemetryRows(40, 0)
	s := SummarizeTelemetry(rows)
	if s.Rows != 40 || len(s.Sketches) != NumTelemetryFeatures {
		t.Fatalf("rows %d, sketches %d; want 40, %d", s.Rows, len(s.Sketches), NumTelemetryFeatures)
	}
	if got := s.Names[0]; got != "trefp" {
		t.Errorf("first feature %q, want trefp", got)
	}
	// Same rows, zero drift; a shifted operating point drifts hard.
	if d, _ := s.Drift(SummarizeTelemetry(rows)); d != 0 {
		t.Errorf("self drift = %g, want 0", d)
	}
	d, feat := s.Drift(SummarizeTelemetry(telemetryRows(40, 10)))
	if d != 1 {
		t.Errorf("shifted drift = %g, want 1 (trefp distribution fully moved)", d)
	}
	if feat != "trefp" {
		t.Errorf("drift feature %q, want trefp", feat)
	}
	// Nil live = cannot compare = maximal drift.
	if d, _ := s.Drift(nil); d != 1 {
		t.Errorf("drift vs nil = %g, want 1", d)
	}
}

func TestDatasetAppend(t *testing.T) {
	base := &Dataset{
		WER:   []WERSample{{Workload: "nw", WER: 1e-9}},
		PUE:   []PUESample{{Workload: "nw", PUE: 0.1}},
		Build: BuildInfo{ProfileSize: "test", Seed: 3},
	}
	fp0 := base.Fingerprint()
	out := base.Append(
		[]WERSample{{Workload: "nw", WER: 2e-9}},
		nil,
		telemetryRows(4, 0),
	)
	if len(out.WER) != 2 || len(out.PUE) != 1 || len(out.UER) != 4 {
		t.Fatalf("appended sizes %d/%d/%d, want 2/1/4", len(out.WER), len(out.PUE), len(out.UER))
	}
	if len(base.WER) != 1 || len(base.UER) != 0 {
		t.Fatalf("receiver mutated: %d WER, %d UER rows", len(base.WER), len(base.UER))
	}
	if base.Fingerprint() != fp0 {
		t.Errorf("receiver fingerprint changed")
	}
	if out.Fingerprint() == fp0 {
		t.Errorf("appended dataset kept the old fingerprint")
	}
	if out.Build != base.Build {
		t.Errorf("build info not carried: %+v", out.Build)
	}
	// Appending into the copy must never write into the original's rows.
	out.WER[0].WER = 99
	if base.WER[0].WER == 99 {
		t.Errorf("append aliased WER storage")
	}
	// Appending nothing is an identity: same fingerprint.
	if same := base.Append(nil, nil, nil); same.Fingerprint() != fp0 {
		t.Errorf("empty append changed the fingerprint")
	}
}

func TestArtifactTelemetrySummaryRoundTrip(t *testing.T) {
	ds := &Dataset{
		WER: []WERSample{{Workload: "nw", Features: make([]float64, len(profile.FeatureNames())), WER: 1e-9}},
		PUE: []PUESample{{Workload: "nw", PUE: 0.1}},
	}
	ds.SetUER(telemetryRows(12, 0))
	var buf bytes.Buffer
	if err := ds.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadDataset(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	// The loaded dataset adopts the persisted summary (not a recompute):
	// drift against the original must be exactly zero.
	got := back.TelemetrySummary()
	if got == nil || got.Rows != 12 {
		t.Fatalf("loaded summary = %+v, want 12 rows", got)
	}
	if d, _ := ds.TelemetrySummary().Drift(got); d != 0 {
		t.Errorf("round-tripped summary drift = %g, want 0", d)
	}
	// A dataset without telemetry omits the field entirely, keeping the
	// artifact byte-identical to pre-summary writers.
	ds2 := &Dataset{WER: ds.WER, PUE: ds.PUE}
	var buf2 bytes.Buffer
	if err := ds2.Encode(&buf2); err != nil {
		t.Fatal(err)
	}
	back2, err := ReadDataset(bytes.NewReader(buf2.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if back2.summary != nil {
		t.Errorf("telemetry-less artifact produced a summary on load")
	}
}

func TestSaveAtomicAndPeekFingerprint(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ds.json.gz")
	ds := &Dataset{
		WER: []WERSample{{Workload: "nw", Features: make([]float64, len(profile.FeatureNames())), WER: 1e-9}},
		PUE: []PUESample{{Workload: "nw", PUE: 0.1}},
	}
	if err := ds.SaveAtomic(path); err != nil {
		t.Fatal(err)
	}
	// No temp litter after a successful save.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("directory holds %d entries after SaveAtomic, want 1", len(entries))
	}
	fp, err := PeekFingerprint(path)
	if err != nil {
		t.Fatal(err)
	}
	if fp != ds.Fingerprint() {
		t.Errorf("peeked %q, want %q", fp, ds.Fingerprint())
	}
	loaded, err := LoadDataset(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Fingerprint() != fp {
		t.Errorf("loaded fingerprint %q != peeked %q", loaded.Fingerprint(), fp)
	}
	if _, err := PeekFingerprint(filepath.Join(dir, "missing.json.gz")); err == nil {
		t.Errorf("peek of missing file did not error")
	}
}
