package core

import (
	"fmt"

	"repro/internal/dram"
)

// ConventionalModel is the workload-unaware baseline the paper compares
// against (Section VI-C): DRAM error rates measured once with the random
// data-pattern micro-benchmark are assumed to hold for every workload.
// This is how prior studies parameterize error models — and it is off by
// ~2.9x for real applications (Fig. 13).
type ConventionalModel struct {
	// werByConfig maps (TREFP, tempC, rank) to the micro-benchmark WER.
	werByConfig map[convKey]float64
	// BenchmarkLabel is the micro-benchmark the rates came from.
	BenchmarkLabel string
}

type convKey struct {
	trefp float64
	tempC float64
	rank  int
}

// NewConventionalModel builds the baseline from the dataset's rows for the
// given data-pattern micro-benchmark (the paper's "random").
func NewConventionalModel(ds *Dataset, benchmarkLabel string) (*ConventionalModel, error) {
	m := &ConventionalModel{
		werByConfig:    map[convKey]float64{},
		BenchmarkLabel: benchmarkLabel,
	}
	for _, s := range ds.WER {
		if s.Workload != benchmarkLabel {
			continue
		}
		m.werByConfig[convKey{s.TREFP, s.TempC, s.Rank}] = s.WER
	}
	if len(m.werByConfig) == 0 {
		return nil, fmt.Errorf("core: dataset has no rows for micro-benchmark %q", benchmarkLabel)
	}
	return m, nil
}

// Predict returns the constant micro-benchmark rate for the operating
// point, ignoring the workload entirely.
func (m *ConventionalModel) Predict(trefp, tempC float64, rank int) (float64, error) {
	if w, ok := m.werByConfig[convKey{trefp, tempC, rank}]; ok {
		return w, nil
	}
	return 0, fmt.Errorf("core: conventional model has no measurement at TREFP=%v temp=%v rank=%s",
		trefp, tempC, dram.RankName(rank))
}

// PredictMean averages the rate over ranks at an operating point.
func (m *ConventionalModel) PredictMean(trefp, tempC float64) (float64, error) {
	sum, n := 0.0, 0
	for r := 0; r < dram.NumRanks; r++ {
		if w, ok := m.werByConfig[convKey{trefp, tempC, r}]; ok {
			sum += w
			n++
		}
	}
	if n == 0 {
		return 0, fmt.Errorf("core: conventional model has no measurement at TREFP=%v temp=%v", trefp, tempC)
	}
	return sum / float64(n), nil
}
