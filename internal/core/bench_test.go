package core

import (
	"testing"

	"repro/internal/dram"
)

// benchQueries builds a mixed batch of warm queries covering both targets,
// several operating points and both rank modes — the shape of traffic the
// serving layer forwards here.
func benchQueries(ds *Dataset) (wer, pue []Query) {
	trefps := []float64{1.173, 1.727, 2.283}
	temps := []float64{55, 62, 70}
	feats := [][]float64{ds.WER[0].Features, ds.WER[len(ds.WER)/2].Features}
	for i := 0; i < 32; i++ {
		q := Query{
			Features: feats[i%len(feats)],
			TREFP:    trefps[i%len(trefps)],
			VDD:      dram.MinVDD,
			TempC:    temps[i%len(temps)],
			Rank:     i % dram.NumRanks,
		}
		if i%8 == 7 {
			q.Rank = RankDevice
		}
		wer = append(wer, q)
		q.Rank = 0
		pue = append(pue, q)
	}
	return wer, pue
}

// BenchmarkPredictBatch is the canonical core-layer benchmark: one op is a
// 64-query mixed batch (32 WER incl. device-level, 32 PUE) against warm KNN
// predictors. Tracked in BENCH_<machine-class>.json by scripts/bench.sh.
func BenchmarkPredictBatch(b *testing.B) {
	ds := hotpathDataset()
	wer, err := Train(ds, TargetWER, ModelKNN, 0, 1)
	if err != nil {
		b.Fatal(err)
	}
	pue, err := Train(ds, TargetPUE, ModelKNN, 0, 1)
	if err != nil {
		b.Fatal(err)
	}
	werQ, pueQ := benchQueries(ds)
	run := func() {
		for i := range werQ {
			if _, err := wer.Predict(werQ[i]); err != nil {
				b.Fatal(err)
			}
			if _, err := pue.Predict(pueQ[i]); err != nil {
				b.Fatal(err)
			}
		}
	}
	run() // warm the vector pool before measuring
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		run()
	}
}
