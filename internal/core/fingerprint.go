package core

import (
	"crypto/sha256"
	"encoding/binary"
	"hash"
	"math"
	"strings"
)

// The serving layer reloads its dataset artifact in place (dramserve's
// /v1/reload, SIGHUP and -reload-interval). A reload of an unchanged
// artifact must be a no-op — no retraining, no cache invalidation — so the
// dataset carries a cheap content fingerprint: a hash over every training
// row plus the build settings. The fingerprint is persisted inside the
// artifact and re-derived on load, which also catches a corrupt or
// hand-edited artifact before it poisons a serving generation.

// fingerprintScheme versions the hashing recipe. Loaders skip verification
// of fingerprints written under a scheme they do not know, so the recipe
// can evolve without breaking old artifacts.
const fingerprintScheme = "fp1"

// Fingerprint returns a deterministic content hash of the dataset: the
// build settings and every WER/PUE row, features included. Two datasets
// have equal fingerprints exactly when they would train identical models.
// Profiles are excluded: they are derived query-time state, not training
// rows, and artifacts do not carry them.
//
// Loaded datasets return the hash memoized by ReadDataset (their rows are
// immutable in every serving path), so reload checks do not re-hash the
// corpus; datasets built or mutated in process hash on each call.
func (ds *Dataset) Fingerprint() string {
	if ds.fp != "" {
		return ds.fp
	}
	return ds.computeFingerprint()
}

// computeFingerprint derives the hash from the current rows.
func (ds *Dataset) computeFingerprint() string {
	h := sha256.New()
	writeString(h, fingerprintScheme)
	writeString(h, ds.Build.ProfileSize)
	writeUint64(h, ds.Build.Seed)
	writeUint64(h, uint64(len(ds.WER)))
	for i := range ds.WER {
		s := &ds.WER[i]
		writeString(h, s.Workload)
		writeUint64(h, uint64(s.Threads))
		writeFloats(h, s.TREFP, s.VDD, s.TempC)
		writeUint64(h, uint64(s.Rank))
		writeFloats(h, s.Features...)
		writeFloats(h, s.WER)
	}
	writeUint64(h, uint64(len(ds.PUE)))
	for i := range ds.PUE {
		s := &ds.PUE[i]
		writeString(h, s.Workload)
		writeUint64(h, uint64(s.Threads))
		writeFloats(h, s.TREFP, s.VDD, s.TempC)
		writeFloats(h, s.Features...)
		writeFloats(h, s.PUE)
		writeUint64(h, uint64(len(s.RankHits)))
		for _, r := range s.RankHits {
			writeUint64(h, uint64(r))
		}
	}
	// The UER section is hashed only when present: a dataset with no
	// telemetry rows fingerprints exactly as it did before the target
	// existed, so old artifacts keep their recorded fingerprints.
	if len(ds.UER) > 0 {
		writeUint64(h, uint64(len(ds.UER)))
		for i := range ds.UER {
			s := &ds.UER[i]
			writeString(h, s.Server)
			writeFloats(h, s.TREFP, s.VDD, s.TempC)
			writeFloats(h, s.CEFeatures...)
			writeFloats(h, s.UE)
		}
	}
	sum := h.Sum(nil)
	const hexdigits = "0123456789abcdef"
	var b strings.Builder
	b.WriteString(fingerprintScheme)
	b.WriteByte(':')
	for _, c := range sum[:16] {
		b.WriteByte(hexdigits[c>>4])
		b.WriteByte(hexdigits[c&0xf])
	}
	return b.String()
}

// verifiableFingerprint reports whether fp was written under a scheme this
// build knows how to re-derive.
func verifiableFingerprint(fp string) bool {
	return strings.HasPrefix(fp, fingerprintScheme+":")
}

func writeString(h hash.Hash, s string) {
	writeUint64(h, uint64(len(s)))
	h.Write([]byte(s))
}

func writeUint64(h hash.Hash, v uint64) {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], v)
	h.Write(buf[:])
}

func writeFloats(h hash.Hash, vs ...float64) {
	var buf [8]byte
	for _, v := range vs {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
		h.Write(buf[:])
	}
}
