package core

import (
	"compress/gzip"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/profile"
)

// The golden fixtures pin the on-disk artifact format: a checked-in v1
// artifact must keep loading bit-for-bit across PRs (catalog or layout
// drift fails loudly here, not in a production reload), and an artifact
// with a bumped version must keep being rejected with a clear error.
//
// Regenerate after an *intentional* format change:
//
//	go test ./internal/core -run TestGoldenArtifact -update-golden

var updateGolden = flag.Bool("update-golden", false, "regenerate the golden artifact fixtures")

// goldenDataset is fully synthetic with fixed values: the fixture must not
// depend on simulator behaviour, only on the artifact format and the
// feature catalog.
func goldenDataset() *Dataset {
	feats := func(k int) []float64 {
		f := make([]float64, profile.NumFeatures)
		for i := range f {
			f[i] = float64((i*7+k*3)%13) / 13
		}
		return f
	}
	ds := &Dataset{Build: BuildInfo{ProfileSize: "test", Seed: 3}}
	for w, label := range []string{"golden-a", "golden-b"} {
		for rank := 0; rank < 2; rank++ {
			ds.WER = append(ds.WER, WERSample{
				Workload: label,
				Threads:  1 + w*7,
				TREFP:    0.618,
				VDD:      1.428,
				TempC:    60,
				Rank:     rank,
				Features: feats(w),
				WER:      1e-7 * float64(1+w+rank),
			})
		}
		ds.PUE = append(ds.PUE, PUESample{
			Workload: label,
			Threads:  1 + w*7,
			TREFP:    2.283,
			VDD:      1.428,
			TempC:    70,
			Features: feats(w),
			PUE:      0.5 * float64(w+1),
			RankHits: []int{w, 0, 0, 0, 1, 0, 0, 0},
		})
	}
	return ds
}

func goldenPath(t *testing.T, name string) string {
	t.Helper()
	return filepath.Join("testdata", name)
}

func writeBadVersionFixture(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	zw := gzip.NewWriter(f)
	if err := json.NewEncoder(zw).Encode(map[string]any{
		"version":       99,
		"feature_names": profile.FeatureNames(),
	}); err != nil {
		return err
	}
	if err := zw.Close(); err != nil {
		return err
	}
	return f.Close()
}

func TestGoldenArtifactRoundTrip(t *testing.T) {
	path := goldenPath(t, "golden_v1.json.gz")
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := goldenDataset().Save(path); err != nil {
			t.Fatal(err)
		}
		if err := writeBadVersionFixture(goldenPath(t, "golden_badversion.json.gz")); err != nil {
			t.Fatal(err)
		}
		t.Log("golden fixtures regenerated")
	}
	got, err := LoadDataset(path)
	if err != nil {
		t.Fatalf("golden artifact no longer loads: %v (after an intentional format change, regenerate with -update-golden and bump artifactVersion)", err)
	}
	want := goldenDataset()
	if !reflect.DeepEqual(got.WER, want.WER) {
		t.Fatal("golden WER rows drifted from the checked-in fixture")
	}
	if !reflect.DeepEqual(got.PUE, want.PUE) {
		t.Fatal("golden PUE rows drifted from the checked-in fixture")
	}
	if got.Build != want.Build {
		t.Fatalf("golden build info drifted: %+v != %+v", got.Build, want.Build)
	}
}

func TestGoldenArtifactRejectsBumpedVersion(t *testing.T) {
	_, err := LoadDataset(goldenPath(t, "golden_badversion.json.gz"))
	if err == nil {
		t.Fatal("bumped-version artifact accepted")
	}
	if !strings.Contains(err.Error(), "version") {
		t.Fatalf("version error not clear: %v", err)
	}
}
