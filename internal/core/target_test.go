package core

import (
	"strings"
	"testing"

	"repro/internal/dram"
)

func TestParseTarget(t *testing.T) {
	cases := []struct {
		in   string
		want Target
		ok   bool
	}{
		{"wer", TargetWER, true},
		{"WER", TargetWER, true},
		{" pue ", TargetPUE, true},
		{"Pue", TargetPUE, true},
		{"", "", false},
		{"mbe", "", false},
		{"all", "", false},
	}
	for _, tc := range cases {
		got, err := ParseTarget(tc.in)
		if tc.ok != (err == nil) || got != tc.want {
			t.Fatalf("ParseTarget(%q) = %q, %v", tc.in, got, err)
		}
	}
}

// TestTargetCatalog pins the registry: catalog order is part of the wire
// contract (healthz advertisements, stats rendering, CLI help all iterate
// it), so adding a target must extend the list, never reorder it.
func TestTargetCatalog(t *testing.T) {
	want := []Target{TargetWER, TargetPUE, TargetUERisk}
	got := Targets()
	if len(got) != len(want) {
		t.Fatalf("catalog = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("catalog = %v, want %v (order matters)", got, want)
		}
	}
	for i, name := range TargetNames() {
		if name != string(want[i]) {
			t.Fatalf("TargetNames()[%d] = %q, want %q", i, name, want[i])
		}
	}
	descs := Descriptors()
	for i, d := range descs {
		if d.Name != want[i] {
			t.Fatalf("Descriptors()[%d] = %q, want %q", i, d.Name, want[i])
		}
		byName, ok := Describe(d.Name)
		if !ok || byName.Doc != d.Doc {
			t.Fatalf("Describe(%q) disagrees with Descriptors()", d.Name)
		}
		if d.Doc == "" {
			t.Fatalf("target %q has no doc string", d.Name)
		}
	}
	if _, ok := Describe(Target("mbe")); ok {
		t.Fatal("Describe accepted an unregistered target")
	}

	// Semantics flags: exactly the telemetry target classifies.
	for _, d := range descs {
		if d.Classification != (d.Name == TargetUERisk) ||
			d.NeedsTelemetry != (d.Name == TargetUERisk) {
			t.Fatalf("target %q flags: classification=%v telemetry=%v",
				d.Name, d.Classification, d.NeedsTelemetry)
		}
	}

	// Availability tracks the dataset's rows for each target.
	ds := testDataset(t)
	for _, d := range descs {
		if !d.Available(ds) {
			t.Fatalf("target %q unavailable on the full test dataset", d.Name)
		}
	}
	empty := &Dataset{}
	for _, d := range descs {
		if d.Available(empty) {
			t.Fatalf("target %q claims availability on an empty dataset", d.Name)
		}
	}
}

func TestTargetDefaults(t *testing.T) {
	if got := TargetWER.DefaultInputSet(); got != InputSet1 {
		t.Fatalf("WER default set = %v", got)
	}
	if got := TargetPUE.DefaultInputSet(); got != InputSet2 {
		t.Fatalf("PUE default set = %v", got)
	}
	for _, tgt := range Targets() {
		if !tgt.Valid() {
			t.Fatalf("catalog target %q invalid", tgt)
		}
	}
	if Target("mbe").Valid() {
		t.Fatal("unknown target reported valid")
	}
}

func TestTrainFactory(t *testing.T) {
	ds := testDataset(t)
	for _, tgt := range Targets() {
		// set 0 resolves to the target's published default.
		pred, err := Train(ds, tgt, ModelKNN, 0, 0)
		if err != nil {
			t.Fatalf("%s: %v", tgt, err)
		}
		if pred.Target() != tgt || pred.Kind() != ModelKNN || pred.InputSet() != tgt.DefaultInputSet() {
			t.Fatalf("%s: identity (%s, %s, %v)", tgt, pred.Target(), pred.Kind(), pred.InputSet())
		}
	}
	if _, err := Train(ds, "mbe", ModelKNN, InputSet1, 0); err == nil {
		t.Fatal("unknown target accepted")
	}
	if _, err := Train(ds, TargetWER, "GPT", InputSet1, 0); err == nil {
		t.Fatal("unknown model kind accepted")
	}
	if _, err := Train(ds, TargetWER, ModelKNN, InputSet(7), 0); err == nil {
		t.Fatal("out-of-range input set accepted")
	}
}

func TestPredictQueryValidation(t *testing.T) {
	ds := testDataset(t)
	wer, err := Train(ds, TargetWER, ModelKNN, InputSet1, 0)
	if err != nil {
		t.Fatal(err)
	}
	pue, err := Train(ds, TargetPUE, ModelKNN, InputSet2, 0)
	if err != nil {
		t.Fatal(err)
	}
	feats := ds.WER[0].Features
	base := Query{Features: feats, TREFP: 1.173, VDD: 1.428, TempC: 60}

	// Cross-target queries are rejected, never silently mispredicted.
	q := base
	q.Target = TargetPUE
	if _, err := wer.Predict(q); err == nil || !strings.Contains(err.Error(), "predictor") {
		t.Fatalf("WER predictor accepted a PUE query: %v", err)
	}
	q.Target = TargetWER
	if _, err := pue.Predict(q); err == nil {
		t.Fatal("PUE predictor accepted a WER query")
	}

	// An empty target means the predictor's own.
	q.Target = ""
	if _, err := wer.Predict(q); err != nil {
		t.Fatalf("empty target rejected: %v", err)
	}

	// Rank bounds on WER queries.
	for _, rank := range []int{-2, dram.NumRanks} {
		q := base
		q.Rank = rank
		if _, err := wer.Predict(q); err == nil {
			t.Fatalf("rank %d accepted", rank)
		}
	}
}

func TestParseModelKind(t *testing.T) {
	for _, k := range ModelKinds() {
		got, err := ParseModelKind(string(k))
		if err != nil || got != k {
			t.Fatalf("ParseModelKind(%q) = %q, %v", k, got, err)
		}
	}
	if _, err := ParseModelKind("GPT"); err == nil {
		t.Fatal("unknown kind accepted")
	}
}
