package core

import (
	"repro/internal/profile"
	"repro/internal/stats"
)

// The streaming-ingest loop needs to know when the live telemetry no
// longer looks like the telemetry the serving model was trained on. This
// file defines that reference point: a per-feature summary (count, mean,
// variance, quantile histogram — stats.Sketch) over the dataset's
// telemetry feature space, persisted in the artifact next to the
// training fingerprint so a server can compare a live stream against
// exactly the distribution its artifact was fitted to.

// TelemetryFeatureNames is the canonical feature order of a
// TelemetrySummary: the operating point followed by the error-bit
// feature catalog. It matches the UE-risk model's input space.
func TelemetryFeatureNames() []string {
	return append([]string{"trefp", "vdd", "temp_c"}, profile.CEFeatureNames()...)
}

// NumTelemetryFeatures is the length of a telemetry feature vector.
const NumTelemetryFeatures = 3 + profile.NumCEFeatures

// TelemetryVectorInto assembles one telemetry observation into dst's
// storage in TelemetryFeatureNames order. ce must have
// profile.NumCEFeatures entries.
func TelemetryVectorInto(dst []float64, trefp, vdd, tempC float64, ce []float64) []float64 {
	dst = append(dst[:0], trefp, vdd, tempC)
	return append(dst, ce...)
}

// TelemetrySummary is the per-feature distribution summary of a
// telemetry row set. It is mergeable through the sketches and
// serialized inside the dataset artifact (telemetry_summary), making
// the artifact self-describing: any consumer can score a live stream's
// drift against the training distribution without the training rows.
type TelemetrySummary struct {
	Names    []string       `json:"names"`
	Sketches []stats.Sketch `json:"sketches"`
	// Rows is the number of telemetry rows summarized.
	Rows int64 `json:"rows"`
}

// NewTelemetrySummary returns an empty summary over the canonical
// telemetry feature space.
func NewTelemetrySummary() *TelemetrySummary {
	names := TelemetryFeatureNames()
	return &TelemetrySummary{Names: names, Sketches: make([]stats.Sketch, len(names))}
}

// Observe folds one telemetry vector (TelemetryVectorInto order) into
// the summary. Short vectors fold what they have; extra entries are
// ignored — the sketch set is fixed at construction.
func (ts *TelemetrySummary) Observe(vec []float64) {
	n := len(vec)
	if n > len(ts.Sketches) {
		n = len(ts.Sketches)
	}
	for i := 0; i < n; i++ {
		ts.Sketches[i].Add(vec[i])
	}
	ts.Rows++
}

// Drift scores a live summary against this baseline: the maximum
// total-variation distance across features, in [0, 1], and the name of
// the feature attaining it. A nil or shape-mismatched side is maximal
// drift — a stream that cannot be compared is by definition not the
// training distribution. Two empty summaries are identical (0).
func (ts *TelemetrySummary) Drift(live *TelemetrySummary) (score float64, feature string) {
	if live == nil || len(live.Sketches) != len(ts.Sketches) {
		return 1, ""
	}
	for i := range ts.Sketches {
		d := stats.Distance(&ts.Sketches[i], &live.Sketches[i])
		if d > score {
			score = d
			if i < len(ts.Names) {
				feature = ts.Names[i]
			}
		}
	}
	return score, feature
}

// valid reports whether a deserialized summary has the shape the current
// catalog expects; loaders drop invalid summaries and recompute.
func (ts *TelemetrySummary) valid() bool {
	return ts != nil && len(ts.Sketches) == NumTelemetryFeatures && len(ts.Names) == NumTelemetryFeatures
}

// SummarizeTelemetry builds the per-feature summary of the UE-risk
// telemetry rows; nil when there are none. Rows are folded in slice
// order, so the same row set always produces the identical summary.
func SummarizeTelemetry(rows []UESample) *TelemetrySummary {
	if len(rows) == 0 {
		return nil
	}
	ts := NewTelemetrySummary()
	var vec [NumTelemetryFeatures]float64
	for i := range rows {
		r := &rows[i]
		ts.Observe(TelemetryVectorInto(vec[:0], r.TREFP, r.VDD, r.TempC, r.CEFeatures))
	}
	return ts
}

// TelemetrySummary returns the dataset's telemetry distribution summary,
// computing and memoizing it on first use (loaded artifacts that carry
// one adopt it instead). nil when the dataset has no telemetry rows.
func (ds *Dataset) TelemetrySummary() *TelemetrySummary {
	if ds.summary == nil {
		ds.summary = SummarizeTelemetry(ds.UER)
	}
	return ds.summary
}
