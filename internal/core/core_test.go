package core

import (
	"fmt"
	"math"
	"sync"
	"testing"

	"repro/internal/dram"
	"repro/internal/profile"
	"repro/internal/workload"
	"repro/internal/xgene"
)

// testSpecs is a compact but diverse workload subset for core tests.
func testSpecs() []workload.Spec {
	labels := []string{"backprop", "backprop(par)", "nw", "srad(par)",
		"fmm(par)", "memcached", "pagerank", "random"}
	var out []workload.Spec
	for _, l := range labels {
		spec, err := workload.FindSpec(l)
		if err != nil {
			panic(err)
		}
		out = append(out, spec)
	}
	return out
}

// testUESamples fabricates a small deterministic UE-risk corpus without
// the fleet simulator (core cannot import it): half the servers are
// healthy (sparse single-bit events spread over the address space), half
// faulty (row-clustered multi-bit bursts), labeled accordingly. Four
// servers satisfy the leave-one-server-out evaluation's minimum.
func testUESamples() []UESample {
	var rows []UESample
	for s := 0; s < 4; s++ {
		faulty := s%2 == 1
		for w := 0; w < 6; w++ {
			n := 2 + (s+w)%3
			if faulty {
				n = 12 + w
			}
			events := make([]profile.CEEvent, n)
			for i := range events {
				e := profile.CEEvent{
					T:    float64(i) * (25 + float64(3*s+w)),
					Row:  (i*97 + w*13) % 512,
					Col:  (i*31 + s*7) % 128,
					Bank: i % 8,
					Rank: s % 4,
				}
				if faulty {
					e.Row = 42 + w%2 // weak-row clustering
					if i%3 == 0 {
						e.Bits = 2
					}
					if i > 0 {
						e.T = events[i-1].T + 0.5 // burst spacing
					}
				}
				events[i] = e
			}
			label := 0.0
			if faulty {
				label = 1
			}
			rows = append(rows, UESample{
				Server:     fmt.Sprintf("s%02d", s),
				TREFP:      0.6 + 0.1*float64(w%4),
				VDD:        1.428,
				TempC:      50 + float64(5*(w%3)),
				CEFeatures: profile.CEFeatures(events),
				UE:         label,
			})
		}
	}
	return rows
}

var (
	dsOnce sync.Once
	dsVal  *Dataset
	dsErr  error
)

// testDataset builds one shared dataset for the package's tests.
func testDataset(t *testing.T) *Dataset {
	t.Helper()
	dsOnce.Do(func() {
		specs := testSpecs()
		profiles, err := BuildProfiles(specs, workload.SizeTest, 3, 0)
		if err != nil {
			dsErr = err
			return
		}
		srv := xgene.MustNewServer(xgene.Config{Scale: 32})
		dsVal, dsErr = BuildDataset(srv, profiles, specs, CampaignOptions{Reps: 4, Workers: 0})
		if dsErr == nil {
			dsVal.SetUER(testUESamples())
		}
	})
	if dsErr != nil {
		t.Fatal(dsErr)
	}
	return dsVal
}

func TestDatasetShape(t *testing.T) {
	ds := testDataset(t)
	// 8 workloads x 8 ranks x (completed configs). At least the 50/60 °C
	// grid (8 configs) must be complete for every workload.
	minRows := len(testSpecs()) * 8 * 8
	if len(ds.WER) < minRows {
		t.Fatalf("WER rows = %d, want >= %d", len(ds.WER), minRows)
	}
	if len(ds.PUE) != len(testSpecs())*len(PUETrefps) {
		t.Fatalf("PUE rows = %d", len(ds.PUE))
	}
	for _, s := range ds.WER {
		if s.WER <= 0 {
			t.Fatal("non-positive WER row")
		}
		if len(s.Features) != profile.NumFeatures {
			t.Fatalf("row has %d features", len(s.Features))
		}
	}
	for _, s := range ds.PUE {
		if s.PUE < 0 || s.PUE > 1 {
			t.Fatalf("PUE %v outside [0,1]", s.PUE)
		}
	}
}

func TestDatasetExcludesCrashedConfigs(t *testing.T) {
	ds := testDataset(t)
	// At 70 °C / 2.283 s every run crashes (paper: PUE = 1.0 for all
	// benchmarks), so no WER rows can exist there. Intermediate TREFPs
	// crash probabilistically; surviving runs contribute WER rows, as in
	// the paper's Fig. 7e.
	for _, s := range ds.WER {
		if s.TempC == 70 && s.TREFP == 2.283 {
			t.Fatalf("WER row at 70°C TREFP=%v should have crashed", s.TREFP)
		}
	}
}

func TestPUECliff(t *testing.T) {
	ds := testDataset(t)
	// All workloads crash always at 2.283 s / 70 °C.
	for _, s := range ds.PUE {
		if s.TREFP == 2.283 && s.PUE != 1 {
			t.Fatalf("%s PUE at 2.283s = %v, want 1.0", s.Workload, s.PUE)
		}
	}
	// Mean PUE grows with TREFP.
	mean := map[float64]float64{}
	n := map[float64]float64{}
	for _, s := range ds.PUE {
		mean[s.TREFP] += s.PUE
		n[s.TREFP]++
	}
	if mean[1.450]/n[1.450] > mean[1.727]/n[1.727] {
		t.Fatal("PUE not increasing with TREFP")
	}
}

func TestWERGrowsWithTREFPInDataset(t *testing.T) {
	ds := testDataset(t)
	// Mean WER at 2.283 must dominate 0.618 at 60 °C (at the test
	// simulation scale the 50 °C runs see sub-single-count statistics).
	sum := map[float64]float64{}
	cnt := map[float64]float64{}
	for _, s := range ds.WER {
		if s.TempC != 60 {
			continue
		}
		sum[s.TREFP] += s.WER
		cnt[s.TREFP]++
	}
	lo := sum[0.618] / cnt[0.618]
	hi := sum[2.283] / cnt[2.283]
	if hi < 20*lo {
		t.Fatalf("WER growth 0.618->2.283 only %vx", hi/lo)
	}
}

func TestInputSetVectors(t *testing.T) {
	ds := testDataset(t)
	s := &ds.WER[0]
	if got := len(InputSet1.werVector(s)); got != 3+4+8 {
		t.Fatalf("set1 WER vector has %d entries", got)
	}
	if got := len(InputSet2.werVector(s)); got != 3+2+8 {
		t.Fatalf("set2 WER vector has %d entries", got)
	}
	if got := len(InputSet3.werVector(s)); got != 3+profile.NumFeatures+8 {
		t.Fatalf("set3 WER vector has %d entries", got)
	}
	p := &ds.PUE[0]
	if got := len(InputSet2.pueVector(p)); got != 3+2 {
		t.Fatalf("set2 PUE vector has %d entries", got)
	}
}

func TestTrainAndPredictWER(t *testing.T) {
	ds := testDataset(t)
	pred, err := Train(ds, TargetWER, ModelKNN, InputSet1, 0)
	if err != nil {
		t.Fatal(err)
	}
	// In-sample prediction must be close for KNN (the sample itself is a
	// neighbour). Pick a sample with observed errors.
	var smp WERSample
	for _, s := range ds.WER {
		if s.WER > WERFloor*10 {
			smp = s
			break
		}
	}
	if smp.Workload == "" {
		t.Skip("no observed-error rows at test scale")
	}
	got, err := pred.Predict(Query{
		Features: smp.Features, TREFP: smp.TREFP, VDD: smp.VDD,
		TempC: smp.TempC, Rank: smp.Rank,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got.Value <= 0 {
		t.Fatalf("non-positive WER prediction %v", got.Value)
	}
	if got.Target != TargetWER || got.Kind != ModelKNN || got.Set != InputSet1 {
		t.Fatalf("prediction metadata %+v", got)
	}
	if got.ByRank != nil {
		t.Fatalf("single-rank query returned a per-rank breakdown: %v", got.ByRank)
	}
	ratio := got.Value / smp.WER
	if ratio < 0.05 || ratio > 20 {
		t.Fatalf("in-sample prediction off by %vx", ratio)
	}
}

func TestDeviceQueryAveragesRanks(t *testing.T) {
	ds := testDataset(t)
	pred, err := Train(ds, TargetWER, ModelKNN, InputSet1, 0)
	if err != nil {
		t.Fatal(err)
	}
	smp := ds.WER[0]
	got, err := pred.Predict(Query{
		Features: smp.Features, TREFP: smp.TREFP, VDD: smp.VDD,
		TempC: smp.TempC, Rank: RankDevice,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got.Value <= 0 {
		t.Fatal("non-positive mean prediction")
	}
	if len(got.ByRank) != dram.NumRanks {
		t.Fatalf("%d per-rank predictions", len(got.ByRank))
	}
	// The device value is exactly the mean of the breakdown, and each
	// entry matches the corresponding single-rank query.
	sum := 0.0
	for r, v := range got.ByRank {
		sum += v
		single, err := pred.Predict(Query{
			Features: smp.Features, TREFP: smp.TREFP, VDD: smp.VDD,
			TempC: smp.TempC, Rank: r,
		})
		if err != nil {
			t.Fatal(err)
		}
		if single.Value != v {
			t.Fatalf("rank %d: device breakdown %v != single-rank query %v", r, v, single.Value)
		}
	}
	if got.Value != sum/float64(dram.NumRanks) {
		t.Fatalf("device value %v != mean of breakdown %v", got.Value, sum/float64(dram.NumRanks))
	}
}

func TestTrainPUEPredicts(t *testing.T) {
	ds := testDataset(t)
	pred, err := Train(ds, TargetPUE, ModelKNN, InputSet2, 0)
	if err != nil {
		t.Fatal(err)
	}
	smp := ds.PUE[0]
	got, err := pred.Predict(Query{Features: smp.Features, TREFP: 2.283, VDD: smp.VDD, TempC: 70})
	if err != nil {
		t.Fatal(err)
	}
	if got.Value < 0.5 {
		t.Fatalf("PUE at max TREFP predicted %v, want high", got.Value)
	}
	mid, err := pred.Predict(Query{Features: smp.Features, TREFP: 1.45, VDD: smp.VDD, TempC: 70})
	if err != nil {
		t.Fatal(err)
	}
	if mid.Value < 0 || mid.Value > 1 {
		t.Fatalf("PUE prediction %v outside [0,1]", mid.Value)
	}
}

func TestEvaluateWERAllModels(t *testing.T) {
	ds := testDataset(t)
	for _, kind := range ModelKinds() {
		ev, err := EvaluateWER(ds, kind, InputSet1, 0)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if ev.MPE <= 0 || math.IsNaN(ev.MPE) {
			t.Fatalf("%s: MPE = %v", kind, ev.MPE)
		}
		if len(ev.MPEByWorkload) != len(testSpecs()) {
			t.Fatalf("%s: %d workload entries", kind, len(ev.MPEByWorkload))
		}
		for r := 0; r < dram.NumRanks; r++ {
			if ev.MPEByRank[r] < 0 {
				t.Fatalf("%s: negative MPE for rank %d", kind, r)
			}
		}
	}
}

func TestEvaluatePUEAllModels(t *testing.T) {
	ds := testDataset(t)
	for _, kind := range ModelKinds() {
		ev, err := EvaluatePUE(ds, kind, InputSet2, 0)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if ev.MAE < 0 || ev.MAE > 1 {
			t.Fatalf("%s: MAE = %v", kind, ev.MAE)
		}
	}
}

func TestConventionalBaseline(t *testing.T) {
	ds := testDataset(t)
	conv, err := NewConventionalModel(ds, "random")
	if err != nil {
		t.Fatal(err)
	}
	w, err := conv.Predict(2.283, 50, 4)
	if err != nil {
		t.Fatal(err)
	}
	if w <= 0 {
		t.Fatal("baseline returned no rate")
	}
	if _, err := conv.Predict(9.9, 50, 0); err == nil {
		t.Fatal("unknown operating point accepted")
	}
	if _, err := NewConventionalModel(ds, "nonexistent"); err == nil {
		t.Fatal("missing micro-benchmark accepted")
	}
}

func TestConventionalOverestimatesTypicalWorkloads(t *testing.T) {
	ds := testDataset(t)
	conv, err := NewConventionalModel(ds, "random")
	if err != nil {
		t.Fatal(err)
	}
	// The random pattern should over-predict the WER of cache-friendly
	// workloads like memcached by a large factor.
	var ratios []float64
	for _, s := range ds.WER {
		if s.Workload != "memcached" || s.TempC != 60 {
			continue
		}
		base, err := conv.Predict(s.TREFP, s.TempC, s.Rank)
		if err != nil || s.WER <= WERFloor {
			continue
		}
		ratios = append(ratios, base/s.WER)
	}
	if len(ratios) == 0 {
		t.Skip("no comparable samples")
	}
	big := 0
	for _, r := range ratios {
		if r > 1.5 {
			big++
		}
	}
	if big*2 < len(ratios) {
		t.Fatalf("conventional model not pessimistic for memcached (%d/%d ratios > 1.5x)",
			big, len(ratios))
	}
}

func TestCorrelateFeatures(t *testing.T) {
	ds := testDataset(t)
	cors := CorrelateFeatures(ds)
	if len(cors) != profile.NumFeatures {
		t.Fatalf("%d correlations", len(cors))
	}
	for _, c := range cors {
		if c.RsWER < -1-1e-9 || c.RsWER > 1+1e-9 {
			t.Fatalf("%s rsWER = %v", c.Name, c.RsWER)
		}
	}
	// The access-rate feature must be present; its positive correlation
	// with WER (Fig. 10's headline) is asserted at experiment scale in
	// internal/exp, where the profiles are statistically meaningful.
	if _, ok := CorrelationOf(cors, "mem_accesses_per_kcycle"); !ok {
		t.Fatal("access-rate feature missing")
	}
	top := TopCorrelated(cors, 10)
	if len(top) != 10 {
		t.Fatalf("TopCorrelated returned %d", len(top))
	}
	if abs(top[0].RsWER) < abs(top[9].RsWER) {
		t.Fatal("TopCorrelated not sorted")
	}
}

func TestModelKindsAndSets(t *testing.T) {
	if len(ModelKinds()) != 3 || len(InputSets()) != 3 {
		t.Fatal("paper compares 3 models x 3 input sets")
	}
	if InputSet1.String() != "Input set 1" {
		t.Fatalf("set name %q", InputSet1.String())
	}
	if _, err := trainerFor(ModelKind("bogus"), 1); err == nil {
		t.Fatal("unknown model kind accepted")
	}
}

func TestLogWERRoundTrip(t *testing.T) {
	for _, w := range []float64{1e-10, 1e-7, 3.7e-5} {
		if got := unlogWER(logWER(w)); math.Abs(got-w)/w > 1e-9 {
			t.Fatalf("log round trip: %v -> %v", w, got)
		}
	}
	if unlogWER(logWER(0)) != WERFloor {
		t.Fatal("zero WER should floor")
	}
}

// TestEvaluateWERRowsAlignment pins the fixed Predictions indexing:
// Predictions is indexed by the floor-filtered row subset, and Rows maps
// each prediction back to its ds.WER index. A dataset with floor rows in
// front must yield Rows that skip them.
func TestEvaluateWERRowsAlignment(t *testing.T) {
	base := testDataset(t)
	// Force a few leading rows to the observation floor so the evaluated
	// subset provably diverges from 0..n-1 indexing.
	ds := &Dataset{Build: base.Build, PUE: base.PUE, Profiles: base.Profiles}
	ds.WER = append([]WERSample(nil), base.WER...)
	for i := 0; i < 3; i++ {
		ds.WER[i].WER = WERFloor
	}
	ev, err := EvaluateWER(ds, ModelKNN, InputSet1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(ev.Rows) != len(ev.Predictions) {
		t.Fatalf("Rows has %d entries for %d predictions", len(ev.Rows), len(ev.Predictions))
	}
	// Rows must be exactly the above-floor indices, in dataset order.
	var want []int
	for i := range ds.WER {
		if ds.WER[i].WER > WERFloor {
			want = append(want, i)
		}
	}
	if len(want) != len(ev.Rows) {
		t.Fatalf("Rows has %d entries, %d rows above the floor", len(ev.Rows), len(want))
	}
	for k := range want {
		if ev.Rows[k] != want[k] {
			t.Fatalf("Rows[%d] = %d, want %d", k, ev.Rows[k], want[k])
		}
	}
	if ev.Rows[0] < 3 {
		t.Fatalf("Rows[0] = %d points at a floored row", ev.Rows[0])
	}
	// Each prediction must be a plausible estimate of its mapped row (same
	// target space; floored rows excluded).
	for k, idx := range ev.Rows {
		if ds.WER[idx].WER <= WERFloor {
			t.Fatalf("prediction %d maps to floored row %d", k, idx)
		}
		if ev.Predictions[k] <= 0 || math.IsNaN(ev.Predictions[k]) {
			t.Fatalf("prediction %d = %v", k, ev.Predictions[k])
		}
	}
}
