//go:build race

package core

// raceEnabled reports whether the race detector is instrumenting this build.
// Under race, sync.Pool intentionally drops items to widen interleavings, so
// allocation-count assertions don't hold and are skipped.
const raceEnabled = true
