package core

import (
	"bytes"
	"compress/gzip"
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/workload"
)

func TestFingerprintDeterministicAndSensitive(t *testing.T) {
	ds := goldenDataset()
	fp := ds.Fingerprint()
	if !strings.HasPrefix(fp, "fp1:") {
		t.Fatalf("fingerprint %q not scheme-prefixed", fp)
	}
	if again := ds.Fingerprint(); again != fp {
		t.Fatalf("fingerprint not deterministic: %s vs %s", fp, again)
	}

	// Any row or build-setting change must move the fingerprint.
	perturb := []struct {
		name string
		mut  func(*Dataset)
	}{
		{"wer value", func(d *Dataset) { d.WER[0].WER *= 2 }},
		{"wer feature", func(d *Dataset) { d.WER[1].Features[3] += 0.25 }},
		{"pue value", func(d *Dataset) { d.PUE[0].PUE = 0.123 }},
		{"rank hits", func(d *Dataset) { d.PUE[0].RankHits[2]++ }},
		{"build seed", func(d *Dataset) { d.Build.Seed++ }},
		{"dropped workload", func(d *Dataset) { *d = *d.WithoutWorkload("golden-b") }},
	}
	for _, tc := range perturb {
		t.Run(tc.name, func(t *testing.T) {
			mod := cloneDataset(goldenDataset())
			tc.mut(mod)
			if mod.Fingerprint() == fp {
				t.Fatalf("fingerprint unchanged after mutating %s", tc.name)
			}
		})
	}
}

// cloneDataset deep-copies the rows so a perturbation cannot leak into the
// shared golden fixture.
func cloneDataset(ds *Dataset) *Dataset {
	out := &Dataset{Build: ds.Build}
	for _, s := range ds.WER {
		s.Features = append([]float64(nil), s.Features...)
		out.WER = append(out.WER, s)
	}
	for _, s := range ds.PUE {
		s.Features = append([]float64(nil), s.Features...)
		s.RankHits = append([]int(nil), s.RankHits...)
		out.PUE = append(out.PUE, s)
	}
	return out
}

func TestFingerprintSurvivesSaveLoad(t *testing.T) {
	ds := goldenDataset()
	path := filepath.Join(t.TempDir(), "fp.json.gz")
	if err := ds.Save(path); err != nil {
		t.Fatal(err)
	}
	back, err := LoadDataset(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Fingerprint() != ds.Fingerprint() {
		t.Fatalf("fingerprint changed across save/load: %s vs %s",
			back.Fingerprint(), ds.Fingerprint())
	}
}

// rewriteArtifact decodes an encoded artifact, applies mut to the raw JSON
// object, and re-encodes it.
func rewriteArtifact(t *testing.T, ds *Dataset, mut func(map[string]any)) *bytes.Buffer {
	t.Helper()
	var buf bytes.Buffer
	if err := ds.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	zr, err := gzip.NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var raw map[string]any
	if err := json.NewDecoder(zr).Decode(&raw); err != nil {
		t.Fatal(err)
	}
	mut(raw)
	var out bytes.Buffer
	zw := gzip.NewWriter(&out)
	if err := json.NewEncoder(zw).Encode(raw); err != nil {
		t.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	return &out
}

func TestLoadDatasetRejectsFingerprintMismatch(t *testing.T) {
	// Tamper with a row but keep the recorded fingerprint: the loader must
	// notice the rows no longer hash to it.
	tampered := rewriteArtifact(t, goldenDataset(), func(raw map[string]any) {
		wer := raw["wer"].([]any)
		row := wer[0].(map[string]any)
		row["WER"] = row["WER"].(float64) * 3
	})
	if _, err := ReadDataset(tampered); err == nil || !strings.Contains(err.Error(), "fingerprint") {
		t.Fatalf("tampered artifact accepted: %v", err)
	}
}

func TestLoadDatasetSkipsUnknownFingerprintScheme(t *testing.T) {
	// A future scheme this build cannot re-derive is skipped, not rejected.
	future := rewriteArtifact(t, goldenDataset(), func(raw map[string]any) {
		raw["fingerprint"] = "fp999:0000"
	})
	if _, err := ReadDataset(future); err != nil {
		t.Fatalf("unknown fingerprint scheme rejected: %v", err)
	}
}

func TestFingerprintMemoizedOnLoad(t *testing.T) {
	ds := goldenDataset()
	path := filepath.Join(t.TempDir(), "memo.json.gz")
	if err := ds.Save(path); err != nil {
		t.Fatal(err)
	}
	back, err := LoadDataset(path)
	if err != nil {
		t.Fatal(err)
	}
	// Loading hashes once and memoizes; the memo must match a recompute.
	if back.fp == "" {
		t.Fatal("loaded dataset did not memoize its fingerprint")
	}
	if back.fp != back.computeFingerprint() {
		t.Fatalf("memo %s != recompute %s", back.fp, back.computeFingerprint())
	}
	// Mutating the build settings invalidates the memo so the fingerprint
	// cannot go stale.
	back.StampBuild(workload.SizeProfile, 123)
	if back.fp != "" {
		t.Fatal("StampBuild left a stale fingerprint memo")
	}
	if back.Fingerprint() == ds.Fingerprint() {
		t.Fatal("restamped dataset kept the old fingerprint")
	}
}
