package core

import "repro/internal/profile"

// InputSet selects which parameters feed the model — the paper's Table III.
type InputSet int

const (
	// InputSet1 is TEMPDRAM, TREFP, wait cycles, memory accesses, HDP and
	// Treuse: the features most correlated with DRAM error behaviour.
	InputSet1 InputSet = 1
	// InputSet2 drops HDP and Treuse, keeping TEMPDRAM, TREFP, wait
	// cycles and memory accesses.
	InputSet2 InputSet = 2
	// InputSet3 is TEMPDRAM, TREFP and all 249 program features.
	InputSet3 InputSet = 3
)

// String names the set like the paper's tables.
func (s InputSet) String() string {
	switch s {
	case InputSet1:
		return "Input set 1"
	case InputSet2:
		return "Input set 2"
	case InputSet3:
		return "Input set 3"
	}
	return "Input set ?"
}

// InputSets lists all three in table order.
func InputSets() []InputSet { return []InputSet{InputSet1, InputSet2, InputSet3} }

// programFeatures returns the indices of the program features (into the
// 249-entry vector) included in the set.
func (s InputSet) programFeatures() []int {
	switch s {
	case InputSet1:
		return []int{
			profile.FeatWaitCycles,
			profile.FeatMemAccesses,
			profile.FeatHDP,
			profile.FeatTreuse,
		}
	case InputSet2:
		return []int{
			profile.FeatWaitCycles,
			profile.FeatMemAccesses,
		}
	default:
		all := make([]int, profile.NumFeatures)
		for i := range all {
			all[i] = i
		}
		return all
	}
}

// werVector assembles the model input for a WER sample: operating
// parameters, the set's program features, and a one-hot rank encoding (the
// paper's per-DIMM/rank device identity, Section III-A's Dev term).
func (s InputSet) werVector(smp *WERSample) []float64 {
	feats := s.programFeatures()
	out := make([]float64, 0, 3+len(feats)+8)
	out = append(out, smp.TempC, smp.TREFP, smp.VDD)
	for _, f := range feats {
		out = append(out, smp.Features[f])
	}
	var rank [8]float64
	rank[smp.Rank] = 1
	out = append(out, rank[:]...)
	return out
}

// pueVector assembles the model input for a PUE sample (system-level: no
// rank identity).
func (s InputSet) pueVector(smp *PUESample) []float64 {
	feats := s.programFeatures()
	out := make([]float64, 0, 3+len(feats))
	out = append(out, smp.TempC, smp.TREFP, smp.VDD)
	for _, f := range feats {
		out = append(out, smp.Features[f])
	}
	return out
}
