package core

import "repro/internal/profile"

// InputSet selects which parameters feed the model — the paper's Table III.
type InputSet int

const (
	// InputSet1 is TEMPDRAM, TREFP, wait cycles, memory accesses, HDP and
	// Treuse: the features most correlated with DRAM error behaviour.
	InputSet1 InputSet = 1
	// InputSet2 drops HDP and Treuse, keeping TEMPDRAM, TREFP, wait
	// cycles and memory accesses.
	InputSet2 InputSet = 2
	// InputSet3 is TEMPDRAM, TREFP and all 249 program features.
	InputSet3 InputSet = 3
)

// String names the set like the paper's tables.
func (s InputSet) String() string {
	switch s {
	case InputSet1:
		return "Input set 1"
	case InputSet2:
		return "Input set 2"
	case InputSet3:
		return "Input set 3"
	}
	return "Input set ?"
}

// InputSets lists all three in table order.
func InputSets() []InputSet { return []InputSet{InputSet1, InputSet2, InputSet3} }

// The per-set program feature index lists, built once: the vector
// assemblers on the serving hot path read these on every query, so they
// are shared package state rather than per-call allocations. Callers must
// treat them as immutable.
var (
	set1Features = []int{
		profile.FeatWaitCycles,
		profile.FeatMemAccesses,
		profile.FeatHDP,
		profile.FeatTreuse,
	}
	set2Features = []int{
		profile.FeatWaitCycles,
		profile.FeatMemAccesses,
	}
	set3Features = func() []int {
		all := make([]int, profile.NumFeatures)
		for i := range all {
			all[i] = i
		}
		return all
	}()
)

// programFeatures returns the indices of the program features (into the
// 249-entry vector) included in the set. The returned slice is shared and
// must not be mutated.
func (s InputSet) programFeatures() []int {
	switch s {
	case InputSet1:
		return set1Features
	case InputSet2:
		return set2Features
	default:
		return set3Features
	}
}

// werVector assembles the model input for a WER sample: operating
// parameters, the set's program features, and a one-hot rank encoding (the
// paper's per-DIMM/rank device identity, Section III-A's Dev term).
func (s InputSet) werVector(smp *WERSample) []float64 {
	return s.werVectorInto(nil, smp)
}

// werVectorInto assembles the WER model input into dst's storage (dst may
// be nil or any recycled buffer; its length is ignored). The serving hot
// path feeds pooled buffers through here so a warm query assembles its
// feature vector without allocating.
func (s InputSet) werVectorInto(dst []float64, smp *WERSample) []float64 {
	feats := s.programFeatures()
	out := append(dst[:0], smp.TempC, smp.TREFP, smp.VDD)
	for _, f := range feats {
		out = append(out, smp.Features[f])
	}
	var rank [8]float64
	rank[smp.Rank] = 1
	return append(out, rank[:]...)
}

// pueVector assembles the model input for a PUE sample (system-level: no
// rank identity).
func (s InputSet) pueVector(smp *PUESample) []float64 {
	return s.pueVectorInto(nil, smp)
}

// pueVectorInto is werVectorInto's PUE counterpart.
func (s InputSet) pueVectorInto(dst []float64, smp *PUESample) []float64 {
	feats := s.programFeatures()
	out := append(dst[:0], smp.TempC, smp.TREFP, smp.VDD)
	for _, f := range feats {
		out = append(out, smp.Features[f])
	}
	return out
}
