package core

import (
	"sort"

	"repro/internal/profile"
	"repro/internal/stats"
)

// FeatureCorrelation is one point of the paper's Fig. 10: a program
// feature's Spearman rank correlation with WER and with PUE.
type FeatureCorrelation struct {
	Name  string
	RsWER float64
	RsPUE float64
}

// CorrelateFeatures computes rs for all 249 program features against WER
// and PUE — the feature-selection analysis of Section VI-A. Because the
// operating parameters (TREFP, temperature) drive four decades of WER on
// their own, the workload-feature relationship is measured *within* each
// operating point and averaged across points (weighted by sample count);
// otherwise every program feature would drown in the parameter sweep.
func CorrelateFeatures(ds *Dataset) []FeatureCorrelation {
	keys, means := ds.MeanWERByWorkloadConfig()
	names := profile.FeatureNames()
	out := make([]FeatureCorrelation, len(names))

	// Group the rank-averaged WER measurements by operating point.
	type opPoint struct{ trefp, temp float64 }
	groups := map[opPoint][]int{}
	for i, k := range keys {
		p := opPoint{k.TREFP, k.TempC}
		groups[p] = append(groups[p], i)
	}
	puePoints := map[float64][]int{}
	for i, s := range ds.PUE {
		puePoints[s.TREFP] = append(puePoints[s.TREFP], i)
	}

	for f := range names {
		fc := FeatureCorrelation{Name: names[f]}
		var wSum, wN float64
		for _, idxs := range groups {
			if len(idxs) < 3 {
				continue
			}
			fv := make([]float64, len(idxs))
			wv := make([]float64, len(idxs))
			for j, i := range idxs {
				fv[j] = keys[i].Features[f]
				wv[j] = means[i]
			}
			w := float64(len(idxs))
			wSum += w * stats.Spearman(fv, wv)
			wN += w
		}
		if wN > 0 {
			fc.RsWER = wSum / wN
		}
		var pSum, pN float64
		for _, idxs := range puePoints {
			if len(idxs) < 3 {
				continue
			}
			fv := make([]float64, len(idxs))
			pv := make([]float64, len(idxs))
			for j, i := range idxs {
				fv[j] = ds.PUE[i].Features[f]
				pv[j] = ds.PUE[i].PUE
			}
			w := float64(len(idxs))
			pSum += w * stats.Spearman(fv, pv)
			pN += w
		}
		if pN > 0 {
			fc.RsPUE = pSum / pN
		}
		out[f] = fc
	}
	return out
}

// TopCorrelated returns the n features with the largest |rs| against WER,
// strongest first.
func TopCorrelated(correlations []FeatureCorrelation, n int) []FeatureCorrelation {
	sorted := append([]FeatureCorrelation(nil), correlations...)
	sort.Slice(sorted, func(i, j int) bool {
		return abs(sorted[i].RsWER) > abs(sorted[j].RsWER)
	})
	if n > len(sorted) {
		n = len(sorted)
	}
	return sorted[:n]
}

// CorrelationOf finds a named feature's entry.
func CorrelationOf(correlations []FeatureCorrelation, name string) (FeatureCorrelation, bool) {
	for _, c := range correlations {
		if c.Name == name {
			return c, true
		}
	}
	return FeatureCorrelation{}, false
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
