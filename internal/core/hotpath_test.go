package core

import (
	"testing"

	"repro/internal/dram"
	"repro/internal/profile"
)

// hotpathDataset is a small synthetic corpus for allocation tests (package
// core, unlike example_test's core_test twin, so it can reach the
// unexported predictors).
func hotpathDataset() *Dataset {
	features := func(treuse, hdp, wait, mem float64) []float64 {
		f := make([]float64, profile.NumFeatures)
		f[profile.FeatTreuse] = treuse
		f[profile.FeatHDP] = hdp
		f[profile.FeatWaitCycles] = wait
		f[profile.FeatMemAccesses] = mem
		return f
	}
	ds := &Dataset{}
	for wi, w := range []struct {
		label string
		feats []float64
		base  float64
	}{
		{"alpha", features(0.20, 12, 0.30, 60), 1e-7},
		{"beta", features(0.01, 28, 0.60, 220), 5e-7},
		{"gamma", features(0.10, 20, 0.45, 140), 2e-7},
	} {
		for _, trefp := range []float64{1.173, 1.727, 2.283} {
			for _, temp := range []float64{55, 70} {
				for rank := 0; rank < dram.NumRanks; rank++ {
					ds.WER = append(ds.WER, WERSample{
						Workload: w.label, TREFP: trefp, VDD: dram.MinVDD,
						TempC: temp, Rank: rank, Features: w.feats,
						WER: w.base * trefp * trefp * (temp - 50) * float64(rank+1),
					})
				}
				ds.PUE = append(ds.PUE, PUESample{
					Workload: w.label, TREFP: trefp, VDD: dram.MinVDD, TempC: temp,
					Features: w.feats, PUE: float64(wi) / 8 * trefp / 2.283,
				})
			}
		}
	}
	return ds
}

// TestPredictWarmAllocs pins the core layer's allocation contract on the
// serving hot path: a warm single-rank WER or PUE prediction allocates
// nothing (the feature vector comes from the pool), and a device-level
// query allocates exactly its ByRank result slice, which escapes to the
// caller by design.
func TestPredictWarmAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation defeats sync.Pool reuse; alloc counts unreliable")
	}
	ds := hotpathDataset()
	for _, kind := range []ModelKind{ModelKNN, ModelRDF} {
		wer, err := Train(ds, TargetWER, kind, 0, 1)
		if err != nil {
			t.Fatal(err)
		}
		pue, err := Train(ds, TargetPUE, kind, 0, 1)
		if err != nil {
			t.Fatal(err)
		}
		rankQ := Query{Features: ds.WER[0].Features, TREFP: 2.283, VDD: dram.MinVDD, TempC: 60, Rank: 2}
		devQ := rankQ
		devQ.Rank = RankDevice
		pueQ := Query{Features: ds.PUE[0].Features, TREFP: 1.727, VDD: dram.MinVDD, TempC: 60}

		predict := func(q Query, p Predictor) func() {
			return func() {
				if _, err := p.Predict(q); err != nil {
					t.Fatal(err)
				}
			}
		}
		predict(rankQ, wer)() // warm the pools before counting
		predict(pueQ, pue)()
		if allocs := testing.AllocsPerRun(200, predict(rankQ, wer)); allocs != 0 {
			t.Errorf("%s: warm single-rank WER predict allocates %.1f/op, want 0", kind, allocs)
		}
		if allocs := testing.AllocsPerRun(200, predict(pueQ, pue)); allocs != 0 {
			t.Errorf("%s: warm PUE predict allocates %.1f/op, want 0", kind, allocs)
		}
		if allocs := testing.AllocsPerRun(200, predict(devQ, wer)); allocs > 1 {
			t.Errorf("%s: warm device WER predict allocates %.1f/op, want <= 1 (the ByRank result)", kind, allocs)
		}
	}
}

// TestPooledVectorMatchesUnpooled proves the pooled in-place assembly and
// standardization produce bit-identical predictions to the historic
// allocate-and-transform path.
func TestPooledVectorMatchesUnpooled(t *testing.T) {
	ds := hotpathDataset()
	for _, set := range InputSets() {
		wer, err := Train(ds, TargetWER, ModelKNN, set, 1)
		if err != nil {
			t.Fatal(err)
		}
		wp := wer.(*werPredictor)
		q := Query{Features: ds.WER[0].Features, TREFP: 1.727, VDD: dram.MinVDD, TempC: 62, Rank: 3}
		got, err := wer.Predict(q)
		if err != nil {
			t.Fatal(err)
		}
		// The reference path: fresh vector, out-of-place transform.
		smp := WERSample{TREFP: q.TREFP, VDD: q.VDD, TempC: q.TempC, Rank: q.Rank, Features: q.Features}
		want := unlogWER(wp.model.Predict(wp.scaler.Transform(set.werVector(&smp))))
		if got.Value != want {
			t.Fatalf("set %v: pooled path %v != reference %v", set, got.Value, want)
		}
	}
}
