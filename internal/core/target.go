package core

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/dram"
	"repro/internal/profile"
)

// Target names one prediction target of the unified API. The paper's
// deliverable answers two of them from one trained artifact — the word
// error rate and the crash probability — and the registry below makes
// further targets (field-failure classifiers, mitigation scores) a
// one-file addition.
type Target string

const (
	// TargetWER is the word error rate: the fraction of 64-bit words that
	// experience at least one (correctable) error per rank per run.
	TargetWER Target = "wer"
	// TargetPUE is the probability of uncorrectable error: the chance a
	// run crashes the machine (the paper's Eq. 3 crash probability).
	TargetPUE Target = "pue"
)

// TargetDescriptor declares everything the stack needs to serve a target:
// its name, documentation, default input set, prediction semantics, the
// trainer seam and a dataset-availability probe. Every layer — cliflag
// help text, the serve resolve path, the cluster router, the cmds —
// consults the registry instead of switching on constants, so registering
// a descriptor is the whole integration.
type TargetDescriptor struct {
	// Name is the wire and CLI name of the target.
	Name Target
	// Doc is a one-line summary for help text and target catalogs.
	Doc string
	// DefaultSet is the input set used when a query or trainer does not
	// pick one explicitly.
	DefaultSet InputSet
	// Classification marks probability-classifier semantics: Value is a
	// class-1 probability in [0, 1]. False means regression.
	Classification bool
	// NeedsTelemetry marks targets answered from CE error telemetry
	// (Query.CE) rather than program features — the serving layer only
	// defaults such targets in when the query actually carries events.
	NeedsTelemetry bool
	// Train fits a predictor for the target; set arrives validated and
	// defaulted. Mirrors the package-level Train contract.
	Train func(ds *Dataset, kind ModelKind, set InputSet, workers int) (Predictor, error)
	// Available reports whether the dataset carries training rows for
	// this target (artifacts predate targets; old ones simply lack rows).
	Available func(ds *Dataset) bool
}

// The registry. Registration happens at init time, in source-file order
// (target.go registers the paper's pair before uerisk.go adds the
// telemetry classifier), which fixes the catalog order every layer
// surfaces: wer, pue, ue_risk, ...
var (
	targetOrder []Target
	targetIndex = map[Target]TargetDescriptor{}
)

// registerTarget adds a descriptor to the catalog. It panics on
// incomplete or duplicate registrations: a malformed catalog is a
// programming error, caught at process start.
func registerTarget(d TargetDescriptor) {
	if d.Name == "" || d.Train == nil || d.Available == nil {
		panic(fmt.Sprintf("core: incomplete target descriptor %q", d.Name))
	}
	if d.DefaultSet < InputSet1 || d.DefaultSet > InputSet3 {
		panic(fmt.Sprintf("core: target %q default input set %d out of range", d.Name, d.DefaultSet))
	}
	if _, dup := targetIndex[d.Name]; dup {
		panic(fmt.Sprintf("core: duplicate target %q", d.Name))
	}
	targetOrder = append(targetOrder, d.Name)
	targetIndex[d.Name] = d
}

func init() {
	registerTarget(TargetDescriptor{
		Name:       TargetWER,
		Doc:        "word error rate per DIMM/rank (regression)",
		DefaultSet: InputSet1, // the paper's most accurate WER set (Fig. 11)
		Train: func(ds *Dataset, kind ModelKind, set InputSet, workers int) (Predictor, error) {
			return trainWER(ds, kind, set, workers)
		},
		Available: func(ds *Dataset) bool { return len(ds.WER) > 0 },
	})
	registerTarget(TargetDescriptor{
		Name:       TargetPUE,
		Doc:        "probability of uncorrectable error / crash (regression)",
		DefaultSet: InputSet2, // the paper's most accurate PUE set (Fig. 12)
		Train: func(ds *Dataset, kind ModelKind, set InputSet, workers int) (Predictor, error) {
			return trainPUE(ds, kind, set, workers)
		},
		Available: func(ds *Dataset) bool { return len(ds.PUE) > 0 },
	})
}

// Targets lists every registered target in catalog order.
func Targets() []Target {
	out := make([]Target, len(targetOrder))
	copy(out, targetOrder)
	return out
}

// TargetNames lists the registered target names in catalog order — the
// list CLI help text and parse errors surface.
func TargetNames() []string {
	out := make([]string, len(targetOrder))
	for i, t := range targetOrder {
		out[i] = string(t)
	}
	return out
}

// Describe returns the descriptor of a registered target.
func Describe(t Target) (TargetDescriptor, bool) {
	d, ok := targetIndex[t]
	return d, ok
}

// Descriptors returns every registered descriptor in catalog order.
func Descriptors() []TargetDescriptor {
	out := make([]TargetDescriptor, len(targetOrder))
	for i, t := range targetOrder {
		out[i] = targetIndex[t]
	}
	return out
}

// targetNameList renders the catalog for error and help text:
// "wer, pue or ue_risk".
func targetNameList() string {
	names := TargetNames()
	switch len(names) {
	case 0:
		return ""
	case 1:
		return names[0]
	}
	return strings.Join(names[:len(names)-1], ", ") + " or " + names[len(names)-1]
}

// ParseTarget resolves a user-supplied target name, case-insensitively,
// against the registry.
func ParseTarget(s string) (Target, error) {
	t := Target(strings.ToLower(strings.TrimSpace(s)))
	if t.Valid() {
		return t, nil
	}
	return "", fmt.Errorf("core: unknown target %q (want %s)", s, targetNameList())
}

// Valid reports whether t is a registered target.
func (t Target) Valid() bool {
	_, ok := targetIndex[t]
	return ok
}

// DefaultInputSet is the registered default feature set for the target.
func (t Target) DefaultInputSet() InputSet {
	if d, ok := targetIndex[t]; ok {
		return d.DefaultSet
	}
	return InputSet1
}

// RankDevice, as a Query.Rank, requests the device-level WER: the
// prediction for every rank plus their mean.
const RankDevice = -1

// Query is one prediction request against the unified Predictor API.
type Query struct {
	// Target selects the prediction target. Empty means the predictor's
	// own target (convenient for callers that already hold the right
	// predictor); a non-empty mismatch is an error, never a silent
	// misprediction.
	Target Target
	// Features is the workload's program feature vector (profile.Result
	// Features), from which the input set slices what it needs. Telemetry
	// targets ignore it.
	Features []float64
	// TREFP, VDD and TempC form the operating point.
	TREFP float64
	VDD   float64
	TempC float64
	// Rank selects the DIMM/rank for WER queries: 0..dram.NumRanks-1
	// predicts a single rank, RankDevice the whole device (per-rank
	// breakdown plus mean). PUE is system-level; the field is ignored.
	Rank int
	// CE is the correctable-error telemetry window for NeedsTelemetry
	// targets (time-ordered; see profile.CEEvent). Regression targets
	// ignore it.
	CE []profile.CEEvent
}

// Prediction is the answer to one Query, carrying the model metadata the
// serving layer surfaces to clients.
type Prediction struct {
	// Target, Kind and Set identify the model that produced the value.
	Target Target
	Kind   ModelKind
	Set    InputSet
	// Value is the prediction: the WER of one rank, the device-mean WER
	// (Rank == RankDevice), a crash probability, or a classifier's
	// class-1 probability — [0, 1] for every Classification target.
	Value float64
	// ByRank is the per-rank WER breakdown of a RankDevice query; nil for
	// single-rank WER and for targets with no per-rank structure.
	ByRank []float64
}

// Predictor is the unified prediction interface: one trained model for one
// (target, kind, input set). Implementations are immutable after Train and
// safe for concurrent use; Predict is deterministic, and PredictBatch is
// bit-identical to per-query Predict calls at every worker count.
type Predictor interface {
	// Target, Kind and InputSet identify what the predictor was trained
	// for and on.
	Target() Target
	Kind() ModelKind
	InputSet() InputSet
	// Predict answers one query.
	Predict(Query) (Prediction, error)
	// PredictBatch evaluates the queries on a bounded worker pool and
	// returns the predictions in query order. ctx cancels outstanding
	// queries (the serving layer threads shutdown through here); workers
	// bounds the pool (0 = GOMAXPROCS).
	PredictBatch(ctx context.Context, qs []Query, workers int) ([]Prediction, error)
}

// Train fits a predictor for the target on the dataset — the one factory
// every cmd, example and serving handler goes through. set 0 selects the
// target's DefaultInputSet; workers bounds the trainer's own parallelism
// (forest tree fits; 0 = GOMAXPROCS). The fitted model is identical for
// every worker count.
func Train(ds *Dataset, target Target, kind ModelKind, set InputSet, workers int) (Predictor, error) {
	d, ok := targetIndex[target]
	if !ok {
		return nil, fmt.Errorf("core: unknown target %q", target)
	}
	if set == 0 {
		set = d.DefaultSet
	}
	if set < InputSet1 || set > InputSet3 {
		return nil, fmt.Errorf("core: input set %d out of range", set)
	}
	return d.Train(ds, kind, set, workers)
}

// checkTarget validates a query's target against the predictor's.
func checkTarget(want, got Target) error {
	if got != "" && got != want {
		return fmt.Errorf("core: %s query sent to a %s predictor", got, want)
	}
	return nil
}

// checkRank validates a WER query's rank selector.
func checkRank(rank int) error {
	if rank < RankDevice || rank >= dram.NumRanks {
		return fmt.Errorf("core: rank %d out of range [%d, %d)", rank, RankDevice, dram.NumRanks)
	}
	return nil
}
