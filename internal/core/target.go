package core

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/dram"
)

// Target names one regression target of the unified prediction API. The
// paper's deliverable answers two of them from one trained artifact — the
// word error rate and the crash probability — and the enum leaves room for
// more (fleet-scale memory-failure work predicts many error signals behind
// one query interface).
type Target string

const (
	// TargetWER is the word error rate: the fraction of 64-bit words that
	// experience at least one (correctable) error per rank per run.
	TargetWER Target = "wer"
	// TargetPUE is the probability of uncorrectable error: the chance a
	// run crashes the machine (the paper's Eq. 3 crash probability).
	TargetPUE Target = "pue"
)

// Targets lists every target in the paper's order.
func Targets() []Target { return []Target{TargetWER, TargetPUE} }

// ParseTarget resolves a user-supplied target name, case-insensitively.
func ParseTarget(s string) (Target, error) {
	t := Target(strings.ToLower(strings.TrimSpace(s)))
	if t.Valid() {
		return t, nil
	}
	return "", fmt.Errorf("core: unknown target %q (want %q or %q)", s, TargetWER, TargetPUE)
}

// Valid reports whether t is a known target.
func (t Target) Valid() bool { return t == TargetWER || t == TargetPUE }

// DefaultInputSet is the paper's most accurate feature set for the target:
// input set 1 for WER (Fig. 11), input set 2 for PUE (Fig. 12).
func (t Target) DefaultInputSet() InputSet {
	if t == TargetPUE {
		return InputSet2
	}
	return InputSet1
}

// RankDevice, as a Query.Rank, requests the device-level WER: the
// prediction for every rank plus their mean.
const RankDevice = -1

// Query is one prediction request against the unified Predictor API.
type Query struct {
	// Target selects the regression target. Empty means the predictor's
	// own target (convenient for callers that already hold the right
	// predictor); a non-empty mismatch is an error, never a silent
	// misprediction.
	Target Target
	// Features is the workload's program feature vector (profile.Result
	// Features), from which the input set slices what it needs.
	Features []float64
	// TREFP, VDD and TempC form the operating point.
	TREFP float64
	VDD   float64
	TempC float64
	// Rank selects the DIMM/rank for WER queries: 0..dram.NumRanks-1
	// predicts a single rank, RankDevice the whole device (per-rank
	// breakdown plus mean). PUE is system-level; the field is ignored.
	Rank int
}

// Prediction is the answer to one Query, carrying the model metadata the
// serving layer surfaces to clients.
type Prediction struct {
	// Target, Kind and Set identify the model that produced the value.
	Target Target
	Kind   ModelKind
	Set    InputSet
	// Value is the prediction: the WER of one rank, the device-mean WER
	// (Rank == RankDevice), or the crash probability in [0, 1].
	Value float64
	// ByRank is the per-rank WER breakdown of a RankDevice query; nil for
	// single-rank WER and for PUE (which has no per-rank structure).
	ByRank []float64
}

// Predictor is the unified prediction interface: one trained model for one
// (target, kind, input set). Implementations are immutable after Train and
// safe for concurrent use; Predict is deterministic, and PredictBatch is
// bit-identical to per-query Predict calls at every worker count.
type Predictor interface {
	// Target, Kind and InputSet identify what the predictor was trained
	// for and on.
	Target() Target
	Kind() ModelKind
	InputSet() InputSet
	// Predict answers one query.
	Predict(Query) (Prediction, error)
	// PredictBatch evaluates the queries on a bounded worker pool and
	// returns the predictions in query order. ctx cancels outstanding
	// queries (the serving layer threads shutdown through here); workers
	// bounds the pool (0 = GOMAXPROCS).
	PredictBatch(ctx context.Context, qs []Query, workers int) ([]Prediction, error)
}

// Train fits a predictor for the target on the dataset — the one factory
// every cmd, example and serving handler goes through. set 0 selects the
// target's DefaultInputSet; workers bounds the trainer's own parallelism
// (forest tree fits; 0 = GOMAXPROCS). The fitted model is identical for
// every worker count.
func Train(ds *Dataset, target Target, kind ModelKind, set InputSet, workers int) (Predictor, error) {
	if set == 0 {
		set = target.DefaultInputSet()
	}
	if set < InputSet1 || set > InputSet3 {
		return nil, fmt.Errorf("core: input set %d out of range", set)
	}
	switch target {
	case TargetWER:
		return trainWER(ds, kind, set, workers)
	case TargetPUE:
		return trainPUE(ds, kind, set, workers)
	}
	return nil, fmt.Errorf("core: unknown target %q", target)
}

// checkTarget validates a query's target against the predictor's.
func checkTarget(want, got Target) error {
	if got != "" && got != want {
		return fmt.Errorf("core: %s query sent to a %s predictor", got, want)
	}
	return nil
}

// checkRank validates a WER query's rank selector.
func checkRank(rank int) error {
	if rank < RankDevice || rank >= dram.NumRanks {
		return fmt.Errorf("core: rank %d out of range [%d, %d)", rank, RankDevice, dram.NumRanks)
	}
	return nil
}
