// Package engine is the campaign execution substrate of the reproduction:
// a generic, deterministic parallel job executor for campaign-shaped work —
// fixed sets of independent jobs (characterization runs, profiling passes,
// cross-validation folds, tree fits) whose results must not depend on how
// many workers execute them or in which order they finish.
//
// Determinism is achieved by construction rather than by locking:
//
//   - results are collected into a slice indexed by job, so output order is
//     the submission order regardless of completion order;
//   - any per-job randomness is derived *before* dispatch with SplitRNGs
//     (sequential stats.RNG Split calls), so job i sees the same stream
//     whether it runs first on one worker or last on sixteen;
//   - jobs receive no shared mutable state from the engine — callers hand
//     each job its own clone or immutable snapshot.
//
// Under those rules a campaign executed with Workers: 1 is bit-identical to
// the same campaign with Workers: N, which the exp package's determinism
// tests assert end to end.
package engine

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/stats"
)

// Options configures one parallel execution.
type Options struct {
	// Workers bounds the number of concurrently running jobs. Zero or
	// negative means runtime.GOMAXPROCS(0).
	Workers int
	// Context, when set, cancels outstanding work: jobs not yet started
	// are skipped and Map returns the context's error. In-flight jobs run
	// to completion (jobs are pure computations with no cancellation
	// points of their own).
	Context context.Context
	// OnProgress, when non-nil, is invoked after every completed job with
	// the number of jobs finished so far and the total. Invocations are
	// serialized; done is strictly increasing.
	OnProgress func(done, total int)
}

// EffectiveWorkers resolves the worker count: the configured value, or
// GOMAXPROCS when unset.
func (o Options) EffectiveWorkers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// Map executes fn(i) for every i in [0, n) on a bounded worker pool and
// returns the n results in job order. A job error stops the dispatch of
// not-yet-started jobs; Map waits for in-flight jobs and returns every
// error observed, wrapped with its job index and joined in index order.
// The partial result slice is returned alongside the error: results of
// jobs that completed successfully are valid, the rest are zero values.
func Map[T any](n int, fn func(i int) (T, error), opts Options) ([]T, error) {
	results := make([]T, n)
	if n == 0 {
		return results, nil
	}
	ctx := opts.Context
	if ctx == nil {
		ctx = context.Background()
	}
	workers := opts.EffectiveWorkers()
	if workers > n {
		workers = n
	}

	var (
		next   atomic.Int64 // next job index to dispatch
		failed atomic.Bool  // a job has errored: stop dispatching
		errs   = make([]error, n)
		progMu sync.Mutex
		done   int // completed job count; guarded by progMu
		wg     sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if failed.Load() || ctx.Err() != nil {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				res, err := fn(i)
				if err != nil {
					errs[i] = fmt.Errorf("engine: job %d: %w", i, err)
					failed.Store(true)
				} else {
					results[i] = res
				}
				if opts.OnProgress != nil {
					// Count and report under one lock so done is
					// strictly increasing across workers.
					progMu.Lock()
					done++
					opts.OnProgress(done, n)
					progMu.Unlock()
				}
			}
		}()
	}
	wg.Wait()

	if err := ctx.Err(); err != nil {
		return results, fmt.Errorf("engine: campaign canceled: %w", err)
	}
	var joined []error
	for _, e := range errs {
		if e != nil {
			joined = append(joined, e)
		}
	}
	if len(joined) > 0 {
		return results, errors.Join(joined...)
	}
	return results, nil
}

// ForEach is Map for jobs that produce no result.
func ForEach(n int, fn func(i int) error, opts Options) error {
	_, err := Map(n, func(i int) (struct{}, error) { return struct{}{}, fn(i) }, opts)
	return err
}

// SplitRNGs derives n independent random streams from seed, one per job.
// The derivation is a fixed sequence of stats.RNG Split calls performed
// up front, so rngs[i] is a function of (seed, i) alone — independent of
// worker count and completion order. Callers hand rngs[i] to job i.
func SplitRNGs(seed uint64, n int) []*stats.RNG {
	parent := stats.NewRNG(seed)
	out := make([]*stats.RNG, n)
	for i := range out {
		out[i] = parent.Split()
	}
	return out
}

// SplitSeeds is SplitRNGs for jobs that seed their own generators: it
// returns n per-job seeds derived deterministically from seed.
func SplitSeeds(seed uint64, n int) []uint64 {
	parent := stats.NewRNG(seed)
	out := make([]uint64, n)
	for i := range out {
		out[i] = parent.Split().Uint64()
	}
	return out
}
