package engine

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestMapOrderedResults verifies results land at their job index no matter
// how many workers race over the jobs.
func TestMapOrderedResults(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 16} {
		res, err := Map(100, func(i int) (int, error) { return i * i, nil },
			Options{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, r := range res {
			if r != i*i {
				t.Fatalf("workers=%d: result[%d] = %d, want %d", workers, i, r, i*i)
			}
		}
	}
}

// TestMapDeterministicWithJobRNG is the engine's core contract: jobs that
// draw from SplitRNGs produce bit-identical outputs at any worker count.
func TestMapDeterministicWithJobRNG(t *testing.T) {
	run := func(workers int) []uint64 {
		rngs := SplitRNGs(42, 64)
		res, err := Map(64, func(i int) (uint64, error) {
			// Several draws, so stream interleaving bugs would show.
			v := rngs[i].Uint64()
			for k := 0; k < 10; k++ {
				v ^= rngs[i].Uint64()
			}
			return v, nil
		}, Options{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	sequential := run(1)
	for _, workers := range []int{2, 4, 8} {
		parallel := run(workers)
		for i := range sequential {
			if parallel[i] != sequential[i] {
				t.Fatalf("workers=%d: job %d diverged from sequential", workers, i)
			}
		}
	}
}

// TestSplitRNGsIndependentOfCount verifies stream i does not depend on how
// many streams were derived after it.
func TestSplitRNGsIndependentOfCount(t *testing.T) {
	a := SplitRNGs(7, 4)
	b := SplitRNGs(7, 16)
	for i := 0; i < 4; i++ {
		if a[i].Uint64() != b[i].Uint64() {
			t.Fatalf("stream %d depends on total stream count", i)
		}
	}
	s1 := SplitSeeds(7, 4)
	s2 := SplitSeeds(7, 16)
	for i := 0; i < 4; i++ {
		if s1[i] != s2[i] {
			t.Fatalf("seed %d depends on total seed count", i)
		}
	}
}

// TestMapWorkerBound verifies concurrency never exceeds Options.Workers.
func TestMapWorkerBound(t *testing.T) {
	const workers = 3
	var inFlight, peak atomic.Int64
	_, err := Map(50, func(i int) (struct{}, error) {
		n := inFlight.Add(1)
		for {
			p := peak.Load()
			if n <= p || peak.CompareAndSwap(p, n) {
				break
			}
		}
		time.Sleep(time.Millisecond)
		inFlight.Add(-1)
		return struct{}{}, nil
	}, Options{Workers: workers})
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > workers {
		t.Fatalf("observed %d concurrent jobs, worker bound is %d", p, workers)
	}
}

// TestMapErrorPropagation verifies a failing job surfaces its error with
// the job index, stops dispatch of later jobs, and keeps earlier results.
func TestMapErrorPropagation(t *testing.T) {
	boom := errors.New("boom")
	var ran atomic.Int64
	res, err := Map(1000, func(i int) (int, error) {
		ran.Add(1)
		if i == 3 {
			return 0, boom
		}
		return i, nil
	}, Options{Workers: 2})
	if err == nil {
		t.Fatal("expected error")
	}
	if !errors.Is(err, boom) {
		t.Fatalf("error chain lost the job error: %v", err)
	}
	if !strings.Contains(err.Error(), "job 3") {
		t.Fatalf("error does not name the failing job: %v", err)
	}
	if n := ran.Load(); n == 1000 {
		t.Fatal("error did not stop dispatch: all jobs ran")
	}
	// Jobs claimed before the failing job was dispatched run to completion
	// and keep their results (with 2 workers, jobs 1 and 2 are both done
	// by the time job 3 is claimed).
	if res[1] != 1 || res[2] != 2 {
		t.Fatalf("partial results lost: %v", res[:4])
	}
}

// TestMapAggregatesMultipleErrors verifies concurrent failures are all
// reported, not just the first.
func TestMapAggregatesMultipleErrors(t *testing.T) {
	var gate sync.WaitGroup
	gate.Add(2)
	_, err := Map(2, func(i int) (int, error) {
		gate.Done()
		gate.Wait() // both jobs in flight before either fails
		return 0, fmt.Errorf("job-specific failure %d", i)
	}, Options{Workers: 2})
	if err == nil {
		t.Fatal("expected error")
	}
	for i := 0; i < 2; i++ {
		if !strings.Contains(err.Error(), fmt.Sprintf("job-specific failure %d", i)) {
			t.Fatalf("error lost failure %d: %v", i, err)
		}
	}
}

// TestMapCancellation verifies a canceled context stops dispatch and is
// reported to the caller.
func TestMapCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int64
	_, err := Map(1000, func(i int) (int, error) {
		if ran.Add(1) == 5 {
			cancel()
		}
		return i, nil
	}, Options{Workers: 2, Context: ctx})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if n := ran.Load(); n == 1000 {
		t.Fatal("cancellation did not stop dispatch")
	}
}

// TestMapPreCanceledContext verifies no job runs under an already-canceled
// context.
func TestMapPreCanceledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Int64
	_, err := Map(10, func(i int) (int, error) {
		ran.Add(1)
		return i, nil
	}, Options{Workers: 4, Context: ctx})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if ran.Load() != 0 {
		t.Fatalf("%d jobs ran under a pre-canceled context", ran.Load())
	}
}

// TestMapProgress verifies the progress hook sees every completion with a
// strictly increasing counter.
func TestMapProgress(t *testing.T) {
	var calls []int
	var totals []int
	_, err := Map(20, func(i int) (int, error) { return i, nil }, Options{
		Workers: 4,
		OnProgress: func(done, total int) {
			calls = append(calls, done)
			totals = append(totals, total)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(calls) != 20 {
		t.Fatalf("progress called %d times, want 20", len(calls))
	}
	for k, d := range calls {
		if d != k+1 {
			t.Fatalf("progress counter not strictly increasing: %v", calls)
		}
		if totals[k] != 20 {
			t.Fatalf("progress total = %d, want 20", totals[k])
		}
	}
}

// TestMapEmptyAndForEach covers the degenerate shapes.
func TestMapEmptyAndForEach(t *testing.T) {
	res, err := Map(0, func(i int) (int, error) { return i, nil }, Options{})
	if err != nil || len(res) != 0 {
		t.Fatalf("empty map: res=%v err=%v", res, err)
	}
	var sum atomic.Int64
	if err := ForEach(10, func(i int) error {
		sum.Add(int64(i))
		return nil
	}, Options{Workers: 3}); err != nil {
		t.Fatal(err)
	}
	if sum.Load() != 45 {
		t.Fatalf("ForEach sum = %d, want 45", sum.Load())
	}
}

// TestEffectiveWorkers verifies the default resolution.
func TestEffectiveWorkers(t *testing.T) {
	if (Options{Workers: 5}).EffectiveWorkers() != 5 {
		t.Fatal("explicit worker count not honored")
	}
	if (Options{}).EffectiveWorkers() < 1 {
		t.Fatal("default worker count must be at least 1")
	}
}
