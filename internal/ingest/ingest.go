// Package ingest is the streaming telemetry intake and continuous-
// retraining pipeline: the data loop the paper leaves open ("the model
// is periodically updated based on new characterization results")
// closed in process. Fielded servers push CE-telemetry windows and
// labeled WER/PUE observations into a bounded queue; a single consumer
// appends them to a pending buffer, tracks the live feature
// distribution against the serving artifact's training summary
// (core.TelemetrySummary), and — on a drift threshold, a row-count
// threshold, or a manual trigger — hands the buffered rows to a
// retrain callback that rebuilds, persists and republishes the
// dataset. The serving layer (internal/serve) supplies that callback
// and exposes the pipeline as POST /v2/ingest and POST /v2/retrain.
//
// Backpressure is explicit and bounded everywhere: Offer never blocks
// and never buffers beyond Capacity — when the queue is full the
// remainder of the batch is refused with ErrQueueFull (HTTP 429 +
// Retry-After upstream), and during a retrain the queue keeps
// absorbing up to its capacity while consumption pauses. Nothing in
// the pipeline allocates proportionally to the refused load.
package ingest

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/dram"
	"repro/internal/profile"
)

// Sentinel errors surfaced on the ingest endpoints.
var (
	// ErrQueueFull reports that the bounded queue had no room for part
	// of an offered batch (the accepted prefix is already queued).
	ErrQueueFull = errors.New("ingest: queue full")
	// ErrRetrainInProgress reports a manual retrain colliding with one
	// already running.
	ErrRetrainInProgress = errors.New("ingest: retrain already in progress")
	// ErrClosed reports an Offer or RetrainNow after Close.
	ErrClosed = errors.New("ingest: pipeline closed")
)

// Row is one ingested observation: an operating point plus at least one
// of a CE telemetry window with a UE outcome label, a measured WER, or
// a measured PUE. It is the same shape the fleet simulator's queries
// carry, so a fleet stream replays straight into the loop.
type Row struct {
	// Server identifies the observed machine; required with a UE label
	// (it is the leave-one-server-out cross-validation group).
	Server string `json:"server,omitempty"`
	// Workload labels the running benchmark; required with a WER or PUE
	// label (those rows need the workload's program features).
	Workload string `json:"workload,omitempty"`
	// TREFP, VDD, TempC are the operating point. VDD zero defaults to
	// the campaign voltage downstream, matching /v2/predict.
	TREFP float64 `json:"trefp"`
	VDD   float64 `json:"vdd,omitempty"`
	TempC float64 `json:"temp_c"`
	// Rank attributes a WER observation to a DRAM rank.
	Rank int `json:"rank,omitempty"`
	// CE is the correctable-error event window (profile.CEEvent).
	CE []profile.CEEvent `json:"ce,omitempty"`
	// UE labels the window's outcome (1: an uncorrectable error followed
	// within the horizon); WER and PUE are measured rates. Pointers so
	// "absent" and "zero" stay distinct under strict decoding.
	UE  *float64 `json:"ue,omitempty"`
	WER *float64 `json:"wer,omitempty"`
	PUE *float64 `json:"pue,omitempty"`
}

// Validate checks one row's shape and ranges, returning the offending
// field name alongside the error (the serving layer's structured-error
// contract). The workload label's existence is the caller's concern —
// this package does not depend on the benchmark registry.
func (r *Row) Validate() (field string, err error) {
	if r.TREFP <= 0 || math.IsNaN(r.TREFP) || math.IsInf(r.TREFP, 0) {
		return "trefp", fmt.Errorf("trefp %v out of range", r.TREFP)
	}
	if math.IsNaN(r.TempC) || math.IsInf(r.TempC, 0) {
		return "temp_c", fmt.Errorf("temp_c %v out of range", r.TempC)
	}
	if r.VDD < 0 || math.IsNaN(r.VDD) || math.IsInf(r.VDD, 0) {
		return "vdd", fmt.Errorf("vdd %v out of range", r.VDD)
	}
	if r.Rank < 0 || r.Rank >= dram.NumRanks {
		return "rank", fmt.Errorf("rank %d out of range [0, %d)", r.Rank, dram.NumRanks)
	}
	if err := profile.ValidateCEEvents(r.CE); err != nil {
		return "ce", err
	}
	if r.UE == nil && r.WER == nil && r.PUE == nil {
		return "", errors.New("row carries no label (one of ue, wer, pue required)")
	}
	if r.UE != nil {
		if v := *r.UE; v < 0 || v > 1 || math.IsNaN(v) {
			return "ue", fmt.Errorf("ue %v out of range [0, 1]", v)
		}
		if r.Server == "" {
			return "server", errors.New("server required with a ue label")
		}
	}
	if r.WER != nil {
		if v := *r.WER; v < 0 || v > 1 || math.IsNaN(v) {
			return "wer", fmt.Errorf("wer %v out of range [0, 1]", v)
		}
	}
	if r.PUE != nil {
		if v := *r.PUE; v < 0 || v > 1 || math.IsNaN(v) {
			return "pue", fmt.Errorf("pue %v out of range [0, 1]", v)
		}
	}
	if (r.WER != nil || r.PUE != nil) && r.Workload == "" {
		return "workload", errors.New("workload required with a wer or pue label")
	}
	return "", nil
}

// Config sizes the pipeline and its retrain triggers.
type Config struct {
	// Capacity bounds the intake queue in rows; an offer beyond it is
	// refused with ErrQueueFull. Default 4096.
	Capacity int
	// RetrainRows triggers a retrain when this many rows are buffered.
	// 0 disables the row-count trigger.
	RetrainRows int
	// DriftThreshold triggers a retrain when the live telemetry
	// distribution's drift score against the training baseline reaches
	// it (total-variation distance, in (0, 1]). 0 disables the drift
	// trigger.
	DriftThreshold float64
	// MinDriftRows is the minimum number of buffered telemetry rows
	// before the drift trigger may fire — small windows drift by
	// sampling noise alone. Default 64.
	MinDriftRows int
}

func (c Config) withDefaults() Config {
	if c.Capacity <= 0 {
		c.Capacity = 4096
	}
	if c.MinDriftRows <= 0 {
		c.MinDriftRows = 64
	}
	return c
}

// RetrainFunc rebuilds and republishes the serving dataset with the
// drained rows appended, returning the new telemetry baseline for the
// drift detector. reason is "rows", "drift" or "manual". An error
// leaves the rows owned by the pipeline (they return to the buffer for
// the next attempt).
type RetrainFunc func(rows []Row, reason string) (*core.TelemetrySummary, error)

// Stats is a point-in-time snapshot of the pipeline counters.
type Stats struct {
	// Accepted and Dropped count offered rows over the pipeline's
	// lifetime; QueueDepth is the rows currently queued ahead of the
	// consumer.
	Accepted   int64
	Dropped    int64
	QueueDepth int64
	// Buffered counts rows consumed but not yet folded into a retrain;
	// TelemetryRows is the UE-labeled subset driving the drift score.
	Buffered      int64
	TelemetryRows int64
	// DriftScore is the live distribution's drift against the training
	// baseline (0 when no baseline or no telemetry yet); DriftFeature
	// names the feature attaining it.
	DriftScore   float64
	DriftFeature string
	// Retrains and RetrainFailures count completed and failed retrain
	// attempts.
	Retrains        int64
	RetrainFailures int64
}

// Pipeline is the bounded-queue intake and retrain driver. One consumer
// goroutine owns the buffer; HTTP handlers call Offer, RetrainNow and
// Snapshot concurrently.
type Pipeline struct {
	cfg     Config
	retrain RetrainFunc

	ch       chan Row
	stop     chan struct{}
	done     chan struct{}
	stopOnce sync.Once
	closed   atomic.Bool

	accepted atomic.Int64
	dropped  atomic.Int64
	depth    atomic.Int64

	retrains        atomic.Int64
	retrainFailures atomic.Int64

	// retrainMu serializes retrains: the consumer's background triggers
	// and the manual RetrainNow contend on it, never stack.
	retrainMu sync.Mutex

	mu        sync.Mutex
	buf       []Row
	baseline  *core.TelemetrySummary
	live      *core.TelemetrySummary
	telemRows int64
	score     float64
	scoreFeat string
	vec       [core.NumTelemetryFeatures]float64
	ce        [profile.NumCEFeatures]float64
}

// New starts a pipeline. baseline is the serving artifact's training
// telemetry summary (nil when the artifact has no telemetry rows: the
// drift trigger stays dormant until the first retrain establishes one).
// retrain may be nil only if no trigger can ever fire.
func New(cfg Config, baseline *core.TelemetrySummary, retrain RetrainFunc) *Pipeline {
	cfg = cfg.withDefaults()
	p := &Pipeline{
		cfg:      cfg,
		retrain:  retrain,
		ch:       make(chan Row, cfg.Capacity),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
		baseline: baseline,
		live:     core.NewTelemetrySummary(),
	}
	go p.run()
	return p
}

// Close stops the consumer. Queued rows not yet consumed are dropped;
// buffered rows are abandoned with the pipeline.
func (p *Pipeline) Close() {
	p.closed.Store(true)
	p.stopOnce.Do(func() { close(p.stop) })
	<-p.done
}

// Offer enqueues rows without blocking. It returns how many rows were
// accepted; when the queue fills mid-batch the remainder is counted
// dropped and the error is ErrQueueFull — the caller answers 429 and
// retries later. Rows must already be validated.
func (p *Pipeline) Offer(rows []Row) (int, error) {
	if p.closed.Load() {
		return 0, ErrClosed
	}
	for i := range rows {
		select {
		case p.ch <- rows[i]:
			p.depth.Add(1)
			p.accepted.Add(1)
		default:
			p.dropped.Add(int64(len(rows) - i))
			return i, ErrQueueFull
		}
	}
	return len(rows), nil
}

// RetrainNow drains the buffered rows into a retrain immediately,
// returning the number of rows handed to it. A retrain already running
// answers ErrRetrainInProgress; a manual retrain with nothing buffered
// still runs (republishing is a no-op when the dataset is unchanged).
func (p *Pipeline) RetrainNow() (int, error) {
	if p.closed.Load() {
		return 0, ErrClosed
	}
	if !p.retrainMu.TryLock() {
		return 0, ErrRetrainInProgress
	}
	defer p.retrainMu.Unlock()
	return p.retrainHeld("manual")
}

// Snapshot reads the counters.
func (p *Pipeline) Snapshot() Stats {
	p.mu.Lock()
	st := Stats{
		Buffered:      int64(len(p.buf)),
		TelemetryRows: p.telemRows,
		DriftScore:    p.score,
		DriftFeature:  p.scoreFeat,
	}
	p.mu.Unlock()
	st.Accepted = p.accepted.Load()
	st.Dropped = p.dropped.Load()
	st.QueueDepth = p.depth.Load()
	st.Retrains = p.retrains.Load()
	st.RetrainFailures = p.retrainFailures.Load()
	return st
}

// run is the single consumer: it owns buffer growth and fires the
// background triggers. Running the retrain inline here is what pauses
// consumption during a rebuild — the channel keeps absorbing up to
// Capacity and overflow backpressures at Offer, exactly the bounded
// contract.
func (p *Pipeline) run() {
	defer close(p.done)
	for {
		select {
		case row := <-p.ch:
			p.depth.Add(-1)
			p.absorb(&row)
			if reason := p.trigger(); reason != "" {
				p.retrainMu.Lock()
				// Re-check under the lock: a manual retrain may have
				// drained the buffer while we waited.
				if p.trigger() == reason {
					// Failures are counted and the rows requeued; the
					// next consumed row re-fires the trigger.
					_, _ = p.retrainHeld(reason)
				}
				p.retrainMu.Unlock()
			}
		case <-p.stop:
			return
		}
	}
}

// absorb appends one consumed row to the pending buffer and folds
// UE-labeled telemetry into the live distribution sketch.
func (p *Pipeline) absorb(row *Row) {
	p.mu.Lock()
	p.buf = append(p.buf, *row)
	if row.UE != nil {
		p.observeTelemetry(row)
	}
	p.mu.Unlock()
}

// observeTelemetry folds one telemetry row into the live summary and
// refreshes the cached drift score. Caller holds p.mu.
func (p *Pipeline) observeTelemetry(row *Row) {
	vdd := row.VDD
	if vdd == 0 {
		// The same default the dataset conversion applies: a row omitting
		// vdd must not read as a voltage excursion to the drift detector.
		vdd = dram.MinVDD
	}
	profile.CEFeaturesInto(p.ce[:], row.CE)
	p.live.Observe(core.TelemetryVectorInto(p.vec[:0], row.TREFP, vdd, row.TempC, p.ce[:]))
	p.telemRows++
	if p.baseline != nil {
		p.score, p.scoreFeat = p.baseline.Drift(p.live)
	}
}

// trigger names the background retrain trigger currently satisfied, or
// "". The drift trigger needs a baseline and a minimum live sample.
func (p *Pipeline) trigger() string {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.cfg.RetrainRows > 0 && len(p.buf) >= p.cfg.RetrainRows {
		return "rows"
	}
	if p.cfg.DriftThreshold > 0 && p.baseline != nil &&
		p.telemRows >= int64(p.cfg.MinDriftRows) && p.score >= p.cfg.DriftThreshold {
		return "drift"
	}
	return ""
}

// retrainHeld runs one retrain with retrainMu held: drain the buffer,
// call the callback, then either adopt the new baseline or return the
// rows for the next attempt.
func (p *Pipeline) retrainHeld(reason string) (int, error) {
	p.mu.Lock()
	rows := p.buf
	p.buf = nil
	p.mu.Unlock()

	summary, err := p.retrain(rows, reason)
	if err != nil {
		p.mu.Lock()
		// Rows consumed during the failed attempt stay behind ours.
		p.buf = append(rows, p.buf...)
		p.mu.Unlock()
		p.retrainFailures.Add(1)
		return 0, err
	}
	p.retrains.Add(1)
	p.mu.Lock()
	p.baseline = summary
	// The published artifact now includes every drained telemetry row,
	// so the live window restarts from the rows that arrived since.
	p.live = core.NewTelemetrySummary()
	p.telemRows = 0
	p.score, p.scoreFeat = 0, ""
	remaining := p.buf
	p.mu.Unlock()
	for i := range remaining {
		if remaining[i].UE != nil {
			p.mu.Lock()
			p.observeTelemetry(&remaining[i])
			p.mu.Unlock()
		}
	}
	return len(rows), nil
}
