package ingest

import (
	"errors"
	"fmt"
	"math"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dram"
	"repro/internal/engine"
	"repro/internal/profile"
)

func ptr(v float64) *float64 { return &v }

// telemetryRow builds a valid UE-labeled row; shift moves the operating
// point to force drift against unshifted baselines.
func telemetryRow(i int, shift float64) Row {
	return Row{
		Server: fmt.Sprintf("server%02d", i%4),
		TREFP:  1.8 + shift,
		VDD:    1.4,
		TempC:  60 + float64(i%5),
		CE: []profile.CEEvent{
			{T: 1, Row: 10 + i%3, Col: 2, Bank: 0, Rank: 0, Bits: 1},
			{T: 2, Row: 10 + i%3, Col: 5, Bank: 1, Rank: 0, Bits: 1},
		},
		UE: ptr(float64(i % 2)),
	}
}

func baselineOver(n int, shift float64) *core.TelemetrySummary {
	rows := make([]core.UESample, n)
	for i := range rows {
		r := telemetryRow(i, shift)
		rows[i] = core.UESample{
			Server: r.Server, TREFP: r.TREFP, VDD: r.VDD, TempC: r.TempC,
			CEFeatures: profile.CEFeatures(r.CE), UE: *r.UE,
		}
	}
	return core.SummarizeTelemetry(rows)
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestRowValidate(t *testing.T) {
	good := telemetryRow(0, 0)
	if f, err := good.Validate(); err != nil {
		t.Fatalf("valid row rejected: field %q: %v", f, err)
	}
	cases := []struct {
		name  string
		mut   func(*Row)
		field string
	}{
		{"zero trefp", func(r *Row) { r.TREFP = 0 }, "trefp"},
		{"nan trefp", func(r *Row) { r.TREFP = math.NaN() }, "trefp"},
		{"inf temp", func(r *Row) { r.TempC = math.Inf(1) }, "temp_c"},
		{"negative vdd", func(r *Row) { r.VDD = -1 }, "vdd"},
		{"bad rank", func(r *Row) { r.Rank = 99 }, "rank"},
		{"unlabeled", func(r *Row) { r.UE = nil }, ""},
		{"ue range", func(r *Row) { r.UE = ptr(2) }, "ue"},
		{"ue without server", func(r *Row) { r.Server = "" }, "server"},
		{"wer range", func(r *Row) { r.WER = ptr(1.5) }, "wer"},
		{"wer without workload", func(r *Row) { r.WER = ptr(0.1); r.UE = nil; r.Server = "" }, "workload"},
		{"unordered ce", func(r *Row) { r.CE = []profile.CEEvent{{T: 5}, {T: 1}} }, "ce"},
	}
	for _, tc := range cases {
		r := telemetryRow(0, 0)
		tc.mut(&r)
		f, err := r.Validate()
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if f != tc.field {
			t.Errorf("%s: field %q, want %q", tc.name, f, tc.field)
		}
	}
}

func TestOfferBackpressure(t *testing.T) {
	// No retrain function: no trigger is configured, so the consumer
	// only drains. Stall it by never starting... instead use capacity 4
	// and a retrain callback that blocks so the consumer pauses.
	block := make(chan struct{})
	p := New(Config{Capacity: 4, RetrainRows: 1}, nil, func(rows []Row, reason string) (*core.TelemetrySummary, error) {
		<-block
		return nil, errors.New("aborted")
	})
	defer func() { close(block); p.Close() }()

	rows := make([]Row, 8)
	for i := range rows {
		rows[i] = telemetryRow(i, 0)
	}
	// First row is consumed and parks the consumer in the blocked
	// retrain; the queue then has full capacity free.
	if n, err := p.Offer(rows[:1]); n != 1 || err != nil {
		t.Fatalf("offer 1: %d, %v", n, err)
	}
	waitFor(t, "consumer to park in retrain", func() bool { return p.Snapshot().QueueDepth == 0 })

	n, err := p.Offer(rows)
	if !errors.Is(err, ErrQueueFull) {
		t.Fatalf("overflow offer: accepted %d, err %v, want ErrQueueFull", n, err)
	}
	if n != 4 {
		t.Errorf("accepted %d rows into a capacity-4 queue, want 4", n)
	}
	st := p.Snapshot()
	if st.Accepted != 5 || st.Dropped != 4 || st.QueueDepth != 4 {
		t.Errorf("accepted/dropped/depth = %d/%d/%d, want 5/4/4", st.Accepted, st.Dropped, st.QueueDepth)
	}
}

func TestRowCountTriggerAndBaselineAdoption(t *testing.T) {
	type call struct {
		rows   int
		reason string
	}
	calls := make(chan call, 4)
	p := New(Config{Capacity: 64, RetrainRows: 8}, nil, func(rows []Row, reason string) (*core.TelemetrySummary, error) {
		calls <- call{len(rows), reason}
		return baselineOver(len(rows), 0), nil
	})
	defer p.Close()

	rows := make([]Row, 8)
	for i := range rows {
		rows[i] = telemetryRow(i, 0)
	}
	if _, err := p.Offer(rows); err != nil {
		t.Fatal(err)
	}
	select {
	case c := <-calls:
		if c.rows != 8 || c.reason != "rows" {
			t.Fatalf("retrain(%d, %q), want (8, rows)", c.rows, c.reason)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("row-count trigger never fired")
	}
	waitFor(t, "buffer drain", func() bool {
		st := p.Snapshot()
		return st.Retrains == 1 && st.Buffered == 0 && st.TelemetryRows == 0
	})
}

func TestDriftTrigger(t *testing.T) {
	reasons := make(chan string, 4)
	// Baseline at shift 0; live rows at shift 10 — disjoint trefp bins,
	// drift score 1. MinDriftRows gates the trigger until 16 rows.
	p := New(Config{Capacity: 64, DriftThreshold: 0.5, MinDriftRows: 16}, baselineOver(32, 0),
		func(rows []Row, reason string) (*core.TelemetrySummary, error) {
			reasons <- reason
			return baselineOver(len(rows), 10), nil
		})
	defer p.Close()

	for i := 0; i < 15; i++ {
		if _, err := p.Offer([]Row{telemetryRow(i, 10)}); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, "15 rows buffered", func() bool { return p.Snapshot().Buffered == 15 })
	if st := p.Snapshot(); st.Retrains != 0 {
		t.Fatalf("drift trigger fired below MinDriftRows (score %g)", st.DriftScore)
	}
	if st := p.Snapshot(); st.DriftScore < 0.5 || st.DriftFeature != "trefp" {
		t.Fatalf("drift score %g on %q, want >= 0.5 on trefp", st.DriftScore, st.DriftFeature)
	}
	if _, err := p.Offer([]Row{telemetryRow(15, 10)}); err != nil {
		t.Fatal(err)
	}
	select {
	case reason := <-reasons:
		if reason != "drift" {
			t.Fatalf("retrain reason %q, want drift", reason)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("drift trigger never fired")
	}
	// The adopted baseline matches the live distribution now: score
	// resets and the trigger goes quiet.
	waitFor(t, "score reset", func() bool { return p.Snapshot().DriftScore == 0 })
	for i := 0; i < 32; i++ {
		if _, err := p.Offer([]Row{telemetryRow(i, 10)}); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, "32 rows buffered", func() bool { return p.Snapshot().Buffered == 32 })
	if st := p.Snapshot(); st.Retrains != 1 {
		t.Errorf("retrained again (%d) though live matches the new baseline (score %g)",
			st.Retrains, st.DriftScore)
	}
}

func TestRetrainFailureRequeuesRows(t *testing.T) {
	fail := errors.New("trainer exploded")
	p := New(Config{Capacity: 64}, nil, func(rows []Row, reason string) (*core.TelemetrySummary, error) {
		return nil, fail
	})
	defer p.Close()
	rows := make([]Row, 4)
	for i := range rows {
		rows[i] = telemetryRow(i, 0)
	}
	if _, err := p.Offer(rows); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "rows buffered", func() bool { return p.Snapshot().Buffered == 4 })
	if _, err := p.RetrainNow(); !errors.Is(err, fail) {
		t.Fatalf("manual retrain error = %v, want the trainer's", err)
	}
	st := p.Snapshot()
	if st.Buffered != 4 || st.RetrainFailures != 1 || st.Retrains != 0 {
		t.Errorf("after failure: buffered %d, failures %d, retrains %d; want 4/1/0",
			st.Buffered, st.RetrainFailures, st.Retrains)
	}
	// The telemetry window survives the failure: drift state intact.
	if st.TelemetryRows != 4 {
		t.Errorf("telemetry rows %d after failed retrain, want 4", st.TelemetryRows)
	}
}

func TestRetrainNowBusy(t *testing.T) {
	entered := make(chan struct{})
	release := make(chan struct{})
	p := New(Config{Capacity: 16}, nil, func(rows []Row, reason string) (*core.TelemetrySummary, error) {
		close(entered)
		<-release
		return nil, nil
	})
	defer p.Close()
	go func() { _, _ = p.RetrainNow() }() // parks in the callback
	<-entered
	if _, err := p.RetrainNow(); !errors.Is(err, ErrRetrainInProgress) {
		t.Errorf("concurrent manual retrain: %v, want ErrRetrainInProgress", err)
	}
	close(release)
}

func TestClosedPipeline(t *testing.T) {
	p := New(Config{Capacity: 4}, nil, nil)
	p.Close()
	if _, err := p.Offer([]Row{telemetryRow(0, 0)}); !errors.Is(err, ErrClosed) {
		t.Errorf("offer after close: %v, want ErrClosed", err)
	}
	if _, err := p.RetrainNow(); !errors.Is(err, ErrClosed) {
		t.Errorf("retrain after close: %v, want ErrClosed", err)
	}
}

// TestOmittedVDDDefaultsInSketch: a row omitting vdd (zero value) must
// sketch at the campaign default voltage — the same default the dataset
// conversion applies — not at 0, which would read as a maximal voltage
// excursion and fake drift on every default-voltage client.
func TestOmittedVDDDefaultsInSketch(t *testing.T) {
	// Baseline rows at the campaign voltage, live rows with vdd omitted.
	rows := make([]core.UESample, 16)
	for i := range rows {
		r := telemetryRow(i, 0)
		rows[i] = core.UESample{
			Server: r.Server, TREFP: r.TREFP, VDD: dram.MinVDD, TempC: r.TempC,
			CEFeatures: profile.CEFeatures(r.CE), UE: *r.UE,
		}
	}
	p := New(Config{Capacity: 64}, core.SummarizeTelemetry(rows),
		func([]Row, string) (*core.TelemetrySummary, error) {
			return nil, errors.New("no retrain expected")
		})
	defer p.Close()

	for i := 0; i < 16; i++ {
		row := telemetryRow(i, 0)
		row.VDD = 0 // omitted on the wire
		if _, err := p.Offer([]Row{row}); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, "rows buffered", func() bool { return p.Snapshot().Buffered == 16 })
	if st := p.Snapshot(); st.DriftFeature == "vdd" && st.DriftScore > 0.5 {
		t.Fatalf("omitted vdd read as drift: score %g on %q", st.DriftScore, st.DriftFeature)
	}
}

// TestDriftScoreDeterministicAcrossWorkers is the engine-workers half of
// the sketch determinism contract (the shard half lives in
// internal/stats): per-shard telemetry summaries built on the engine's
// pool at several worker counts, merged in shard order, must score the
// identical drift against a fixed baseline.
func TestDriftScoreDeterministicAcrossWorkers(t *testing.T) {
	const n, shards = 512, 16
	baseline := baselineOver(64, 0)
	build := func(workers int) *core.TelemetrySummary {
		parts, err := engine.Map(shards, func(sh int) (*core.TelemetrySummary, error) {
			sum := core.NewTelemetrySummary()
			var vec [core.NumTelemetryFeatures]float64
			for i := sh; i < n; i += shards {
				r := telemetryRow(i, 0.3)
				ce := profile.CEFeatures(r.CE)
				sum.Observe(core.TelemetryVectorInto(vec[:0], r.TREFP, r.VDD, r.TempC, ce))
			}
			return sum, nil
		}, engine.Options{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		merged := core.NewTelemetrySummary()
		for _, part := range parts {
			for i := range merged.Sketches {
				merged.Sketches[i].Merge(&part.Sketches[i])
			}
			merged.Rows += part.Rows
		}
		return merged
	}
	ref, _ := baseline.Drift(build(1))
	for _, workers := range []int{2, 4, 8} {
		got, _ := baseline.Drift(build(workers))
		if got != ref {
			t.Errorf("workers=%d: drift %v != %v at workers=1", workers, got, ref)
		}
	}
}

// BenchmarkIngestAppend measures the consumer's per-row cost: buffer
// append, live-sketch update and drift rescore — the ingest hot path
// between the HTTP handler and the retrain trigger.
func BenchmarkIngestAppend(b *testing.B) {
	p := New(Config{Capacity: 1}, baselineOver(256, 0), nil)
	defer p.Close()
	rows := make([]Row, 64)
	for i := range rows {
		rows[i] = telemetryRow(i, 0.1)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(p.buf) >= 4096 {
			p.buf = p.buf[:0] // bound memory; keeps the append warm
		}
		p.absorb(&rows[i%len(rows)])
	}
}
