package xgene

import (
	"testing"

	"repro/internal/dram"
)

func testProfile() *dram.AccessProfile {
	return &dram.AccessProfile{
		Name:           "xgene-test",
		Threads:        8,
		FootprintWords: 1 << 30,
		Regions: []dram.Region{
			{Name: "bulk", FootprintFrac: 1.0, AccessFrac: 1.0,
				ReuseSeconds: 2, RowReuseSeconds: 2, BitOneProb: 0.5, RewritesPerSec: 0.5},
		},
		DRAMAccessesPerSec:   2e8,
		RowActivationsPerSec: 6e7,
		ReadFrac:             0.7,
		HDP:                  16,
	}
}

func TestServerParameterLimits(t *testing.T) {
	s := MustNewServer(Config{Scale: 256})
	if err := s.SetTREFP(3.0); err == nil {
		t.Fatal("TREFP beyond register range accepted")
	}
	if err := s.SetTREFP(0.01); err == nil {
		t.Fatal("TREFP below nominal accepted")
	}
	if err := s.SetVDD(1.2); err == nil {
		t.Fatal("VDD below operational point accepted")
	}
	if err := s.SetVDD(1.6); err == nil {
		t.Fatal("VDD above nominal accepted")
	}
	if err := s.SetTREFP(2.283); err != nil {
		t.Fatal(err)
	}
	if err := s.SetVDD(1.428); err != nil {
		t.Fatal(err)
	}
	if s.TREFP() != 2.283 || s.VDD() != 1.428 {
		t.Fatal("programmed parameters not retained")
	}
}

func TestServerRejectsBadSetpoint(t *testing.T) {
	s := MustNewServer(Config{Scale: 256})
	if _, err := s.Run(testProfile(), Experiment{TempC: 90}); err == nil {
		t.Fatal("setpoint beyond DIMM spec accepted")
	}
	if _, err := s.Run(testProfile(), Experiment{TempC: 10}); err == nil {
		t.Fatal("setpoint below ambient accepted")
	}
}

func TestServerRunProducesObservation(t *testing.T) {
	s := MustNewServer(Config{Scale: 64})
	if err := s.SetTREFP(2.283); err != nil {
		t.Fatal(err)
	}
	if err := s.SetVDD(1.428); err != nil {
		t.Fatal(err)
	}
	obs, err := s.Run(testProfile(), Experiment{TempC: 60, RecordWER: true})
	if err != nil {
		t.Fatal(err)
	}
	if obs.SettleSeconds <= 0 {
		t.Fatal("no thermal settling recorded")
	}
	if !obs.WERValid {
		t.Fatal("WER invalid on a 60°C run")
	}
	if obs.WER <= 0 {
		t.Fatal("no errors at 2.283s/60°C")
	}
}

func TestMeasurePUEAtCrashPoint(t *testing.T) {
	s := MustNewServer(Config{Scale: 256})
	if err := s.SetTREFP(2.283); err != nil {
		t.Fatal(err)
	}
	if err := s.SetVDD(1.428); err != nil {
		t.Fatal(err)
	}
	pue, rankHits, err := s.MeasurePUE(testProfile(), 70, 5)
	if err != nil {
		t.Fatal(err)
	}
	if pue != 1.0 {
		t.Fatalf("PUE at 2.283s/70°C = %v, want 1.0 (paper: all runs crash)", pue)
	}
	total := 0
	for _, h := range rankHits {
		total += h
	}
	if total != 5 {
		t.Fatalf("crash ranks account for %d of 5 crashes", total)
	}
	if rankHits[7] != 0 {
		t.Fatal("DIMM3/rank1 crashed but has no UE pairs")
	}
}

func TestMeasurePUEValidation(t *testing.T) {
	s := MustNewServer(Config{Scale: 256})
	if _, _, err := s.MeasurePUE(testProfile(), 60, 0); err == nil {
		t.Fatal("zero reps accepted")
	}
}

func TestReportOnlySurvivesCrashPoint(t *testing.T) {
	s := MustNewServer(Config{Scale: 64})
	_ = s.SetTREFP(2.283)
	_ = s.SetVDD(1.428)
	obs, err := s.Run(testProfile(), Experiment{TempC: 70, RecordWER: true, ReportOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	if obs.Crashed {
		t.Fatal("report-only run crashed")
	}
	if obs.UECount == 0 {
		t.Fatal("expected UE reports at 2.283s/70°C")
	}
}

func TestPerDIMMExperiment(t *testing.T) {
	s := MustNewServer(Config{Scale: 16})
	if err := s.SetTREFP(2.283); err != nil {
		t.Fatal(err)
	}
	if err := s.SetVDD(1.428); err != nil {
		t.Fatal(err)
	}
	temps := [dram.NumDIMMs]float64{50, 65, 50, 50}
	obs, err := s.Run(testProfile(), Experiment{TempC: 50, DIMMTempC: &temps, RecordWER: true})
	if err != nil {
		t.Fatal(err)
	}
	hot := obs.WERByRank[2] + obs.WERByRank[3]  // DIMM1's ranks
	cold := obs.WERByRank[0] + obs.WERByRank[1] // DIMM0's ranks
	if hot <= cold {
		t.Fatalf("heated DIMM1 (%v) not above DIMM0 (%v)", hot, cold)
	}
	bad := [dram.NumDIMMs]float64{50, 90, 50, 50}
	if _, err := s.Run(testProfile(), Experiment{TempC: 50, DIMMTempC: &bad}); err == nil {
		t.Fatal("per-DIMM setpoint above vendor limit accepted")
	}
}
