// Package xgene models the experimental platform of the paper: an
// AppliedMicro X-Gene2 server-on-chip with eight ARMv8 cores, four DDR3
// MCUs (one Micron 8 GB DIMM each), the SLIMpro management core that
// configures MCU parameters (TREFP, VDD) and reports ECC errors, and the
// custom thermal testbed that holds each DIMM at a setpoint.
//
// A Server executes characterization experiments (Fig. 3's "DRAM
// characterization phase"): settle the DIMM temperature, program the MCU
// parameters, run the workload for two hours, and collect the SLIMpro
// error log. A detected UE crashes the platform, aborting the run.
package xgene

import (
	"fmt"

	"repro/internal/dram"
	"repro/internal/thermal"
)

// SLIMpro parameter limits of the platform (paper Section IV-B).
const (
	// MinTREFP and MaxTREFP bound the refresh period the MCU accepts.
	MinTREFP = dram.NominalTREFP
	MaxTREFP = dram.MaxTREFP
	// MinVDD is the lowest supply voltage at which the DRAM circuitry
	// still operates; below it the DIMMs stop responding.
	MinVDD = dram.MinVDD
	// MaxVDD is the nominal supply.
	MaxVDD = dram.NominalVDD
	// MaxDIMMTempC is the vendor's maximum operating temperature.
	MaxDIMMTempC = 70
	// AmbientC is the machine-room ambient temperature.
	AmbientC = 25
)

// Server is one X-Gene2 machine with its DRAM and thermal testbed.
type Server struct {
	device  *dram.Device
	testbed *thermal.Testbed

	trefp float64
	vdd   float64
}

// Config selects the physical machine and simulation fidelity.
type Config struct {
	// Seed selects the physical DIMM population (device seed).
	Seed uint64
	// Scale is the dram.Device capacity divisor (see dram.Config).
	Scale int
	// Params optionally overrides the DRAM physics.
	Params *dram.Params
}

// NewServer boots the platform with nominal DRAM parameters.
func NewServer(cfg Config) (*Server, error) {
	dev, err := dram.NewDevice(dram.Config{Seed: cfg.Seed, Scale: cfg.Scale, Params: cfg.Params})
	if err != nil {
		return nil, err
	}
	return &Server{
		device:  dev,
		testbed: thermal.NewTestbed(AmbientC, cfg.Seed^0xD6E8FEB86659FD93),
		trefp:   dram.NominalTREFP,
		vdd:     dram.NominalVDD,
	}, nil
}

// MustNewServer is NewServer for known-good configs.
func MustNewServer(cfg Config) *Server {
	s, err := NewServer(cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// Device exposes the underlying DRAM (for population inspection).
func (s *Server) Device() *dram.Device { return s.device }

// SetTREFP programs the refresh period through SLIMpro. The platform
// rejects values outside its register range.
func (s *Server) SetTREFP(seconds float64) error {
	if seconds < MinTREFP || seconds > MaxTREFP {
		return fmt.Errorf("xgene: TREFP %.3fs outside SLIMpro range [%.3f, %.3f]",
			seconds, MinTREFP, MaxTREFP)
	}
	s.trefp = seconds
	return nil
}

// SetVDD programs the DRAM supply voltage. Below MinVDD the memory stops
// working (the paper determined 1.428 V experimentally).
func (s *Server) SetVDD(volts float64) error {
	if volts < MinVDD || volts > MaxVDD {
		return fmt.Errorf("xgene: VDD %.3fV outside operational range [%.3f, %.3f]",
			volts, MinVDD, MaxVDD)
	}
	s.vdd = volts
	return nil
}

// TREFP returns the programmed refresh period.
func (s *Server) TREFP() float64 { return s.trefp }

// VDD returns the programmed supply voltage.
func (s *Server) VDD() float64 { return s.vdd }

// Experiment describes one characterization run request.
type Experiment struct {
	// TempC is the DIMM temperature setpoint.
	TempC float64
	// DIMMTempC optionally sets each DIMM's setpoint independently (the
	// testbed has one PID loop per module).
	DIMMTempC *[dram.NumDIMMs]float64
	// DurationSec defaults to the paper's 7200 s.
	DurationSec float64
	// Rep distinguishes repetitions (VRT state differs between runs).
	Rep int
	// RecordWER enables CE accounting (needed for WER campaigns).
	RecordWER bool
	// ReportOnly logs UEs without crashing (not available on the real
	// platform; used to look past the crash horizon, e.g. Fig. 2).
	ReportOnly bool
}

// Observation is the outcome of one experiment.
type Observation struct {
	*dram.RunResult
	// SettleSeconds is the thermal testbed's settling time.
	SettleSeconds float64
	// TempC is the achieved DIMM temperature.
	TempC float64
}

// Run performs one experiment with the currently programmed parameters.
func (s *Server) Run(profile *dram.AccessProfile, exp Experiment) (*Observation, error) {
	if exp.TempC < AmbientC || exp.TempC > MaxDIMMTempC {
		return nil, fmt.Errorf("xgene: DIMM setpoint %.1f°C outside testbed range [%d, %d]",
			exp.TempC, AmbientC, MaxDIMMTempC)
	}
	var settle float64
	var err error
	if exp.DIMMTempC != nil {
		for d, sp := range exp.DIMMTempC {
			if sp < AmbientC || sp > MaxDIMMTempC {
				return nil, fmt.Errorf("xgene: DIMM%d setpoint %.1f°C outside testbed range [%d, %d]",
					d, sp, AmbientC, MaxDIMMTempC)
			}
		}
		settle, err = s.testbed.SettleEach(*exp.DIMMTempC, 0.5, 3600)
	} else {
		settle, err = s.testbed.SettleAll(exp.TempC, 0.5, 3600)
	}
	if err != nil {
		return nil, err
	}
	res, err := s.device.Run(profile, dram.RunConfig{
		TREFP:        s.trefp,
		VDD:          s.vdd,
		TempC:        exp.TempC,
		DIMMTempC:    exp.DIMMTempC,
		DurationSec:  exp.DurationSec,
		Rep:          exp.Rep,
		RecordWER:    exp.RecordWER,
		DisableCrash: exp.ReportOnly,
	})
	if err != nil {
		return nil, err
	}
	return &Observation{RunResult: res, SettleSeconds: settle, TempC: exp.TempC}, nil
}

// MeasurePUE repeats a run reps times and returns the fraction that ended
// in a system crash (paper Eq. 3).
func (s *Server) MeasurePUE(profile *dram.AccessProfile, tempC float64, reps int) (float64, []int, error) {
	if reps <= 0 {
		return 0, nil, fmt.Errorf("xgene: MeasurePUE needs at least one repetition")
	}
	crashes := 0
	rankHits := make([]int, dram.NumRanks)
	for rep := 0; rep < reps; rep++ {
		obs, err := s.Run(profile, Experiment{TempC: tempC, Rep: rep})
		if err != nil {
			return 0, nil, err
		}
		if obs.Crashed {
			crashes++
			if obs.UERank >= 0 {
				rankHits[obs.UERank]++
			}
		}
	}
	return float64(crashes) / float64(reps), rankHits, nil
}
