// Package xgene models the experimental platform of the paper: an
// AppliedMicro X-Gene2 server-on-chip with eight ARMv8 cores, four DDR3
// MCUs (one Micron 8 GB DIMM each), the SLIMpro management core that
// configures MCU parameters (TREFP, VDD) and reports ECC errors, and the
// custom thermal testbed that holds each DIMM at a setpoint.
//
// A Server executes characterization experiments (Fig. 3's "DRAM
// characterization phase"): settle the DIMM temperature, program the MCU
// parameters, run the workload for two hours, and collect the SLIMpro
// error log. A detected UE crashes the platform, aborting the run.
package xgene

import (
	"fmt"

	"repro/internal/dram"
	"repro/internal/engine"
	"repro/internal/thermal"
)

// SLIMpro parameter limits of the platform (paper Section IV-B).
const (
	// MinTREFP and MaxTREFP bound the refresh period the MCU accepts.
	MinTREFP = dram.NominalTREFP
	MaxTREFP = dram.MaxTREFP
	// MinVDD is the lowest supply voltage at which the DRAM circuitry
	// still operates; below it the DIMMs stop responding.
	MinVDD = dram.MinVDD
	// MaxVDD is the nominal supply.
	MaxVDD = dram.NominalVDD
	// MaxDIMMTempC is the vendor's maximum operating temperature.
	MaxDIMMTempC = 70
	// AmbientC is the machine-room ambient temperature.
	AmbientC = 25
)

// Server is one X-Gene2 machine with its DRAM and thermal testbed.
//
// The machine identity (device populations, seed) is immutable after
// construction; the programmed parameters (TREFP, VDD) and the thermal
// testbed are the per-run mutable state of the sequential SetTREFP/SetVDD/
// Run protocol. Campaign bypasses that mutable state entirely: every job
// names its operating point explicitly and settles its own testbed, so
// campaign runs are independent jobs the engine may execute in any order.
type Server struct {
	device *dram.Device
	seed   uint64

	testbed *thermal.Testbed
	trefp   float64
	vdd     float64
}

// Config selects the physical machine and simulation fidelity.
type Config struct {
	// Seed selects the physical DIMM population (device seed).
	Seed uint64
	// Scale is the dram.Device capacity divisor (see dram.Config).
	Scale int
	// Params optionally overrides the DRAM physics.
	Params *dram.Params
}

// NewServer boots the platform with nominal DRAM parameters.
func NewServer(cfg Config) (*Server, error) {
	dev, err := dram.NewDevice(dram.Config{Seed: cfg.Seed, Scale: cfg.Scale, Params: cfg.Params})
	if err != nil {
		return nil, err
	}
	return &Server{
		device:  dev,
		seed:    cfg.Seed,
		testbed: thermal.NewTestbed(AmbientC, cfg.Seed^0xD6E8FEB86659FD93),
		trefp:   dram.NominalTREFP,
		vdd:     dram.NominalVDD,
	}, nil
}

// MustNewServer is NewServer for known-good configs.
func MustNewServer(cfg Config) *Server {
	s, err := NewServer(cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// Device exposes the underlying DRAM (for population inspection).
func (s *Server) Device() *dram.Device { return s.device }

// validateTREFP checks a refresh period against the SLIMpro register range.
func validateTREFP(seconds float64) error {
	if seconds < MinTREFP || seconds > MaxTREFP {
		return fmt.Errorf("xgene: TREFP %.3fs outside SLIMpro range [%.3f, %.3f]",
			seconds, MinTREFP, MaxTREFP)
	}
	return nil
}

// validateVDD checks a supply voltage against the operational range.
func validateVDD(volts float64) error {
	if volts < MinVDD || volts > MaxVDD {
		return fmt.Errorf("xgene: VDD %.3fV outside operational range [%.3f, %.3f]",
			volts, MinVDD, MaxVDD)
	}
	return nil
}

// SetTREFP programs the refresh period through SLIMpro. The platform
// rejects values outside its register range.
func (s *Server) SetTREFP(seconds float64) error {
	if err := validateTREFP(seconds); err != nil {
		return err
	}
	s.trefp = seconds
	return nil
}

// SetVDD programs the DRAM supply voltage. Below MinVDD the memory stops
// working (the paper determined 1.428 V experimentally).
func (s *Server) SetVDD(volts float64) error {
	if err := validateVDD(volts); err != nil {
		return err
	}
	s.vdd = volts
	return nil
}

// TREFP returns the programmed refresh period.
func (s *Server) TREFP() float64 { return s.trefp }

// VDD returns the programmed supply voltage.
func (s *Server) VDD() float64 { return s.vdd }

// Experiment describes one characterization run request.
type Experiment struct {
	// TempC is the DIMM temperature setpoint.
	TempC float64
	// DIMMTempC optionally sets each DIMM's setpoint independently (the
	// testbed has one PID loop per module).
	DIMMTempC *[dram.NumDIMMs]float64
	// DurationSec defaults to the paper's 7200 s.
	DurationSec float64
	// Rep distinguishes repetitions (VRT state differs between runs).
	Rep int
	// RecordWER enables CE accounting (needed for WER campaigns).
	RecordWER bool
	// ReportOnly logs UEs without crashing (not available on the real
	// platform; used to look past the crash horizon, e.g. Fig. 2).
	ReportOnly bool
}

// Observation is the outcome of one experiment.
type Observation struct {
	*dram.RunResult
	// SettleSeconds is the thermal testbed's settling time.
	SettleSeconds float64
	// TempC is the achieved DIMM temperature.
	TempC float64
}

// Run performs one experiment with the currently programmed parameters.
func (s *Server) Run(profile *dram.AccessProfile, exp Experiment) (*Observation, error) {
	return s.runOn(s.testbed, profile, exp, s.trefp, s.vdd)
}

// runOn executes one experiment on an explicit testbed and operating point;
// it touches no Server mutable state beyond the (concurrency-safe) device.
func (s *Server) runOn(tb *thermal.Testbed, profile *dram.AccessProfile, exp Experiment, trefp, vdd float64) (*Observation, error) {
	if exp.TempC < AmbientC || exp.TempC > MaxDIMMTempC {
		return nil, fmt.Errorf("xgene: DIMM setpoint %.1f°C outside testbed range [%d, %d]",
			exp.TempC, AmbientC, MaxDIMMTempC)
	}
	var settle float64
	var err error
	if exp.DIMMTempC != nil {
		for d, sp := range exp.DIMMTempC {
			if sp < AmbientC || sp > MaxDIMMTempC {
				return nil, fmt.Errorf("xgene: DIMM%d setpoint %.1f°C outside testbed range [%d, %d]",
					d, sp, AmbientC, MaxDIMMTempC)
			}
		}
		settle, err = tb.SettleEach(*exp.DIMMTempC, 0.5, 3600)
	} else {
		settle, err = tb.SettleAll(exp.TempC, 0.5, 3600)
	}
	if err != nil {
		return nil, err
	}
	res, err := s.device.Run(profile, dram.RunConfig{
		TREFP:        trefp,
		VDD:          vdd,
		TempC:        exp.TempC,
		DIMMTempC:    exp.DIMMTempC,
		DurationSec:  exp.DurationSec,
		Rep:          exp.Rep,
		RecordWER:    exp.RecordWER,
		DisableCrash: exp.ReportOnly,
	})
	if err != nil {
		return nil, err
	}
	return &Observation{RunResult: res, SettleSeconds: settle, TempC: exp.TempC}, nil
}

// Request is one campaign run: an experiment at an explicitly named
// operating point. Unlike the sequential SetTREFP/SetVDD/Run protocol, a
// Request carries everything the run needs, so a batch of Requests is a set
// of independent jobs.
type Request struct {
	Profile *dram.AccessProfile
	TREFP   float64 // refresh period in seconds
	VDD     float64 // supply voltage in volts; 0 means the paper's MinVDD
	Exp     Experiment
}

// Campaign executes the requests concurrently on the campaign engine and
// returns the observations in request order.
//
// Each job settles a private thermal testbed whose noise stream is derived
// from (server seed, request index) via the engine's job-keyed RNG split,
// so every observation — including its settling time — is a function of the
// request alone: a campaign at Workers: N is bit-identical to Workers: 1.
// The DRAM outcome itself is keyed by (device seed, profile, operating
// point, rep) inside dram.Run and shares the device's immutable weak-cell
// populations across jobs.
func (s *Server) Campaign(reqs []Request, opts engine.Options) ([]*Observation, error) {
	seeds := engine.SplitSeeds(s.seed^0xA3C59AC2E193AF9D, len(reqs))
	return engine.Map(len(reqs), func(i int) (*Observation, error) {
		req := reqs[i]
		vdd := req.VDD
		if vdd == 0 {
			vdd = MinVDD
		}
		if err := validateTREFP(req.TREFP); err != nil {
			return nil, err
		}
		if err := validateVDD(vdd); err != nil {
			return nil, err
		}
		tb := thermal.NewTestbed(AmbientC, seeds[i])
		return s.runOn(tb, req.Profile, req.Exp, req.TREFP, vdd)
	}, opts)
}

// CrashStats folds the crash outcomes of a set of repetitions into the
// paper's Eq. 3 quantities: the number of crashed runs and the per-rank
// attribution of each crash's first UE (Fig. 9b).
func CrashStats(observations []*Observation) (crashes int, rankHits []int) {
	rankHits = make([]int, dram.NumRanks)
	for _, obs := range observations {
		if obs.Crashed {
			crashes++
			if obs.UERank >= 0 {
				rankHits[obs.UERank]++
			}
		}
	}
	return crashes, rankHits
}

// MeasurePUE repeats a run reps times and returns the fraction that ended
// in a system crash (paper Eq. 3).
func (s *Server) MeasurePUE(profile *dram.AccessProfile, tempC float64, reps int) (float64, []int, error) {
	if reps <= 0 {
		return 0, nil, fmt.Errorf("xgene: MeasurePUE needs at least one repetition")
	}
	observations := make([]*Observation, reps)
	for rep := 0; rep < reps; rep++ {
		obs, err := s.Run(profile, Experiment{TempC: tempC, Rep: rep})
		if err != nil {
			return 0, nil, err
		}
		observations[rep] = obs
	}
	crashes, rankHits := CrashStats(observations)
	return float64(crashes) / float64(reps), rankHits, nil
}
