package xgene

import (
	"testing"

	"repro/internal/dram"
	"repro/internal/engine"
)

// campaignRequests builds a small mixed campaign over operating points and
// repetitions.
func campaignRequests(reps int) []Request {
	var reqs []Request
	for _, trefp := range []float64{1.727, 2.283} {
		for rep := 0; rep < reps; rep++ {
			reqs = append(reqs, Request{
				Profile: testProfile(),
				TREFP:   trefp,
				VDD:     dram.MinVDD,
				Exp:     Experiment{TempC: 60, RecordWER: true, Rep: rep},
			})
		}
	}
	return reqs
}

// TestCampaignWorkerInvariance verifies a parallel campaign is bit-identical
// to the same campaign on one worker, including the per-job thermal
// settling times.
func TestCampaignWorkerInvariance(t *testing.T) {
	s := MustNewServer(Config{Scale: 64})
	seq, err := s.Campaign(campaignRequests(2), engine.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := s.Campaign(campaignRequests(2), engine.Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := range seq {
		if seq[i].WER != par[i].WER || seq[i].Crashed != par[i].Crashed ||
			seq[i].SettleSeconds != par[i].SettleSeconds {
			t.Fatalf("request %d diverged between worker counts", i)
		}
		if seq[i].WERSeries != nil {
			for e := range seq[i].WERSeries {
				if seq[i].WERSeries[e] != par[i].WERSeries[e] {
					t.Fatalf("request %d epoch %d WER diverged", i, e)
				}
			}
		}
	}
}

// TestCampaignMatchesSequentialProtocol verifies the campaign path produces
// the same DRAM outcome as the legacy SetTREFP/SetVDD/Run protocol: the
// physical result is keyed by (device, profile, operating point, rep), not
// by which execution path requested it.
func TestCampaignMatchesSequentialProtocol(t *testing.T) {
	s := MustNewServer(Config{Scale: 64})
	if err := s.SetTREFP(2.283); err != nil {
		t.Fatal(err)
	}
	if err := s.SetVDD(dram.MinVDD); err != nil {
		t.Fatal(err)
	}
	legacy, err := s.Run(testProfile(), Experiment{TempC: 60, RecordWER: true})
	if err != nil {
		t.Fatal(err)
	}
	obs, err := s.Campaign([]Request{{
		Profile: testProfile(),
		TREFP:   2.283,
		VDD:     dram.MinVDD,
		Exp:     Experiment{TempC: 60, RecordWER: true},
	}}, engine.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if obs[0].WER != legacy.WER || obs[0].UECount != legacy.UECount {
		t.Fatalf("campaign WER %v / UE %d, sequential %v / %d",
			obs[0].WER, obs[0].UECount, legacy.WER, legacy.UECount)
	}
}

// TestCampaignRejectsBadOperatingPoint verifies SLIMpro range checks apply
// per request and name the failing job.
func TestCampaignRejectsBadOperatingPoint(t *testing.T) {
	s := MustNewServer(Config{Scale: 256})
	reqs := []Request{
		{Profile: testProfile(), TREFP: 2.283, Exp: Experiment{TempC: 60}},
		{Profile: testProfile(), TREFP: 9.9, Exp: Experiment{TempC: 60}},
	}
	if _, err := s.Campaign(reqs, engine.Options{Workers: 1}); err == nil {
		t.Fatal("out-of-range TREFP accepted")
	}
	reqs[1] = Request{Profile: testProfile(), TREFP: 2.283, VDD: 1.2, Exp: Experiment{TempC: 60}}
	if _, err := s.Campaign(reqs, engine.Options{Workers: 1}); err == nil {
		t.Fatal("out-of-range VDD accepted")
	}
}
