// Package benchmark parses `go test -bench` output into machine-classed
// snapshots and compares a fresh run against a checked-in baseline.
//
// The repo tracks a canonical benchmark set (kNN/forest predict, core batch
// predict, serve warm query, fleet drive) in BENCH_<goos>-<goarch>.json at
// the repo root. scripts/bench.sh records and checks those snapshots;
// cmd/benchgate is the thin CLI over this package that CI runs.
//
// The gate is asymmetric by design: allocation counts on the hand-tuned
// hot paths are compared exactly (reintroducing a per-op allocation is a
// structural regression, never noise), while wall-clock numbers get a
// generous slack factor because CI machines are noisy neighbours. A
// snapshot recorded on a different machine class is not comparable at all,
// so a class mismatch skips the gate instead of failing it.
package benchmark

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Result is one benchmark's per-op metrics.
type Result struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// Snapshot is a machine-classed set of benchmark results, keyed
// "<pkg>.<BenchmarkName[/sub]>" with the -GOMAXPROCS suffix stripped.
type Snapshot struct {
	MachineClass string            `json:"machine_class"`
	Benchmarks   map[string]Result `json:"benchmarks"`
}

// benchLine matches one result line of `go test -bench` output:
// name, iterations, ns/op, then optional B/op and allocs/op (printed when
// the benchmark calls ReportAllocs or -benchmem is set).
var benchLine = regexp.MustCompile(
	`^(Benchmark\S+)\s+\d+\s+([0-9.]+) ns/op(?:\s+([0-9.]+) B/op)?(?:\s+([0-9]+) allocs/op)?`)

// gomaxprocsSuffix is the trailing -N the bench runner appends to names.
var gomaxprocsSuffix = regexp.MustCompile(`-\d+$`)

// Parse reads `go test -bench` output (one or more package sections) into a
// Snapshot. The machine class is "<goos>-<goarch>" from the run's own
// header lines; results are keyed by the pkg line preceding them.
func Parse(r io.Reader) (*Snapshot, error) {
	s := &Snapshot{Benchmarks: map[string]Result{}}
	var goos, goarch, pkg string
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos: "):
			goos = strings.TrimSpace(strings.TrimPrefix(line, "goos: "))
		case strings.HasPrefix(line, "goarch: "):
			goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch: "))
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg: "))
		default:
			m := benchLine.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			if pkg == "" {
				return nil, fmt.Errorf("benchmark: result %q before any pkg: line", m[1])
			}
			name := gomaxprocsSuffix.ReplaceAllString(m[1], "")
			var res Result
			var err error
			if res.NsPerOp, err = strconv.ParseFloat(m[2], 64); err != nil {
				return nil, fmt.Errorf("benchmark: bad ns/op in %q: %v", line, err)
			}
			if m[3] != "" {
				// B/op is printed rounded to an integer but parse as float
				// defensively (very small values render fractional).
				bf, err := strconv.ParseFloat(m[3], 64)
				if err != nil {
					return nil, fmt.Errorf("benchmark: bad B/op in %q: %v", line, err)
				}
				res.BytesPerOp = int64(bf)
			}
			if m[4] != "" {
				if res.AllocsPerOp, err = strconv.ParseInt(m[4], 10, 64); err != nil {
					return nil, fmt.Errorf("benchmark: bad allocs/op in %q: %v", line, err)
				}
			}
			s.Benchmarks[pkg+"."+name] = res
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if goos == "" || goarch == "" {
		return nil, fmt.Errorf("benchmark: output has no goos/goarch header (not `go test -bench` output?)")
	}
	if len(s.Benchmarks) == 0 {
		return nil, fmt.Errorf("benchmark: no benchmark results in input")
	}
	s.MachineClass = goos + "-" + goarch
	return s, nil
}

// Load reads a snapshot JSON file.
func Load(path string) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var s Snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("benchmark: %s: %v", path, err)
	}
	if s.MachineClass == "" {
		return nil, fmt.Errorf("benchmark: %s: missing machine_class", path)
	}
	if len(s.Benchmarks) == 0 {
		return nil, fmt.Errorf("benchmark: %s: no benchmarks", path)
	}
	return &s, nil
}

// Write serializes the snapshot (keys sorted — encoding/json orders map
// keys — so refreshed baselines diff cleanly).
func (s *Snapshot) Write(path string) error {
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Options tunes Compare.
type Options struct {
	// TimeFactor is the slack multiplier on ns/op and B/op (and on
	// allocs/op above AllocExactMax): current > baseline*TimeFactor fails.
	// Zero means the default of 2.0 — generous on purpose; the gate exists
	// to catch structural regressions, not scheduler jitter.
	TimeFactor float64
	// AllocExactMax bounds the exact-allocation regime: a benchmark whose
	// baseline allocs/op is at or below this is a hand-tuned hot path, and
	// any increase fails. Above it (e.g. a whole-stack drive with thousands
	// of transport allocations) the TimeFactor slack applies instead.
	// Zero means the default of 16.
	AllocExactMax int64
}

func (o Options) timeFactor() float64 {
	if o.TimeFactor <= 0 {
		return 2.0
	}
	return o.TimeFactor
}

func (o Options) allocExactMax() int64 {
	if o.AllocExactMax <= 0 {
		return 16
	}
	return o.AllocExactMax
}

// Verdict is the outcome of one baseline/current comparison.
type Verdict struct {
	// Skipped is set when the two snapshots are from different machine
	// classes and therefore not comparable; Reason says so.
	Skipped bool
	Reason  string
	// Regressions are gate failures, one line each.
	Regressions []string
	// New lists benchmarks present in the current run but absent from the
	// baseline — a nudge to refresh the snapshot, never a failure.
	New []string
}

// OK reports whether the gate passes (a skip passes by definition).
func (v *Verdict) OK() bool { return len(v.Regressions) == 0 }

// Compare gates current against baseline. Missing benchmarks are
// regressions (a shrinking canonical set must be an explicit snapshot
// refresh, not silent); improvements never fail.
func Compare(baseline, current *Snapshot, opts Options) *Verdict {
	v := &Verdict{}
	if baseline.MachineClass != current.MachineClass {
		v.Skipped = true
		v.Reason = fmt.Sprintf("baseline machine class %q != current %q: not comparable, skipping",
			baseline.MachineClass, current.MachineClass)
		return v
	}
	factor := opts.timeFactor()
	exactMax := opts.allocExactMax()

	names := make([]string, 0, len(baseline.Benchmarks))
	for name := range baseline.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		base := baseline.Benchmarks[name]
		cur, ok := current.Benchmarks[name]
		if !ok {
			v.Regressions = append(v.Regressions,
				fmt.Sprintf("%s: missing from current run (canonical set shrank?)", name))
			continue
		}
		if base.AllocsPerOp <= exactMax {
			if cur.AllocsPerOp > base.AllocsPerOp {
				v.Regressions = append(v.Regressions,
					fmt.Sprintf("%s: allocs/op %d > baseline %d (exact gate: hot path reallocates)",
						name, cur.AllocsPerOp, base.AllocsPerOp))
			}
		} else if float64(cur.AllocsPerOp) > float64(base.AllocsPerOp)*factor {
			v.Regressions = append(v.Regressions,
				fmt.Sprintf("%s: allocs/op %d > baseline %d × %.2g",
					name, cur.AllocsPerOp, base.AllocsPerOp, factor))
		}
		if float64(cur.BytesPerOp) > float64(base.BytesPerOp)*factor {
			v.Regressions = append(v.Regressions,
				fmt.Sprintf("%s: B/op %d > baseline %d × %.2g",
					name, cur.BytesPerOp, base.BytesPerOp, factor))
		}
		if cur.NsPerOp > base.NsPerOp*factor {
			v.Regressions = append(v.Regressions,
				fmt.Sprintf("%s: ns/op %.0f > baseline %.0f × %.2g",
					name, cur.NsPerOp, base.NsPerOp, factor))
		}
	}
	for name := range current.Benchmarks {
		if _, ok := baseline.Benchmarks[name]; !ok {
			v.New = append(v.New, name)
		}
	}
	sort.Strings(v.New)
	return v
}
