package benchmark

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: repro/internal/ml
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkForestPredict-4   	   51262	     23310 ns/op	       0 B/op	       0 allocs/op
BenchmarkKNNPredict/select-4         	    4106	    290219 ns/op	       0 B/op	       0 allocs/op
PASS
ok  	repro/internal/ml	3.1s
pkg: repro/internal/fleet
BenchmarkFleetDrive-4 	     200	   5897369 ns/op	 1005840 B/op	   11391 allocs/op
PASS
ok  	repro/internal/fleet	2.2s
`

func TestParse(t *testing.T) {
	s, err := Parse(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if s.MachineClass != "linux-amd64" {
		t.Fatalf("machine class %q", s.MachineClass)
	}
	if len(s.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3: %v", len(s.Benchmarks), s.Benchmarks)
	}
	forest, ok := s.Benchmarks["repro/internal/ml.BenchmarkForestPredict"]
	if !ok || forest.NsPerOp != 23310 || forest.AllocsPerOp != 0 || forest.BytesPerOp != 0 {
		t.Fatalf("forest = %+v, %v", forest, ok)
	}
	// The -GOMAXPROCS suffix is stripped so keys are stable across runners.
	knn, ok := s.Benchmarks["repro/internal/ml.BenchmarkKNNPredict/select"]
	if !ok || knn.NsPerOp != 290219 {
		t.Fatalf("knn sub-benchmark = %+v, %v", knn, ok)
	}
	fleet := s.Benchmarks["repro/internal/fleet.BenchmarkFleetDrive"]
	if fleet.AllocsPerOp != 11391 || fleet.BytesPerOp != 1005840 {
		t.Fatalf("fleet = %+v", fleet)
	}
}

func TestParseRejectsGarbage(t *testing.T) {
	for name, input := range map[string]string{
		"empty":        "",
		"no header":    "BenchmarkX-4 10 5 ns/op\n",
		"no results":   "goos: linux\ngoarch: amd64\npkg: p\nPASS\n",
		"orphan bench": "goos: linux\ngoarch: amd64\nBenchmarkX-4 10 5 ns/op\n",
	} {
		if _, err := Parse(strings.NewReader(input)); err == nil {
			t.Errorf("%s: parsed without error", name)
		}
	}
}

func TestLoadMalformed(t *testing.T) {
	dir := t.TempDir()
	for name, body := range map[string]string{
		"truncated.json":  `{"machine_class": "linux-amd64", "benchmarks": {`,
		"no_class.json":   `{"benchmarks": {"p.BenchmarkX": {"ns_per_op": 1}}}`,
		"no_benches.json": `{"machine_class": "linux-amd64", "benchmarks": {}}`,
	} {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := Load(p); err == nil {
			t.Errorf("%s: loaded without error", name)
		}
	}
	if _, err := Load(filepath.Join(dir, "absent.json")); err == nil {
		t.Error("missing file loaded without error")
	}
}

func TestWriteRoundTrip(t *testing.T) {
	s, err := Parse(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	p := filepath.Join(t.TempDir(), "BENCH_linux-amd64.json")
	if err := s.Write(p); err != nil {
		t.Fatal(err)
	}
	got, err := Load(p)
	if err != nil {
		t.Fatal(err)
	}
	if got.MachineClass != s.MachineClass || len(got.Benchmarks) != len(s.Benchmarks) {
		t.Fatalf("round trip lost data: %+v", got)
	}
	if got.Benchmarks["repro/internal/fleet.BenchmarkFleetDrive"] != s.Benchmarks["repro/internal/fleet.BenchmarkFleetDrive"] {
		t.Fatal("round trip changed a result")
	}
}

func snap(class string, benches map[string]Result) *Snapshot {
	return &Snapshot{MachineClass: class, Benchmarks: benches}
}

func TestCompareMachineClassMismatchSkips(t *testing.T) {
	base := snap("linux-amd64", map[string]Result{"p.BenchmarkX": {NsPerOp: 100}})
	cur := snap("darwin-arm64", map[string]Result{"p.BenchmarkX": {NsPerOp: 900}})
	v := Compare(base, cur, Options{})
	if !v.Skipped || !v.OK() {
		t.Fatalf("class mismatch must skip and pass, got %+v", v)
	}
	if !strings.Contains(v.Reason, "linux-amd64") || !strings.Contains(v.Reason, "darwin-arm64") {
		t.Fatalf("reason does not name both classes: %q", v.Reason)
	}
}

func TestCompareToleranceMath(t *testing.T) {
	base := snap("linux-amd64", map[string]Result{
		"p.BenchmarkHot":   {NsPerOp: 100, BytesPerOp: 0, AllocsPerOp: 0},
		"p.BenchmarkDrive": {NsPerOp: 1000, BytesPerOp: 1000, AllocsPerOp: 1000},
	})
	cases := []struct {
		name string
		cur  map[string]Result
		opts Options
		want int // regression count
	}{
		{"identical", map[string]Result{
			"p.BenchmarkHot":   {NsPerOp: 100},
			"p.BenchmarkDrive": {NsPerOp: 1000, BytesPerOp: 1000, AllocsPerOp: 1000},
		}, Options{}, 0},
		{"at the factor boundary passes", map[string]Result{
			"p.BenchmarkHot":   {NsPerOp: 200},
			"p.BenchmarkDrive": {NsPerOp: 2000, BytesPerOp: 2000, AllocsPerOp: 2000},
		}, Options{}, 0},
		{"past the factor fails each metric", map[string]Result{
			"p.BenchmarkHot":   {NsPerOp: 201},
			"p.BenchmarkDrive": {NsPerOp: 2001, BytesPerOp: 2001, AllocsPerOp: 2001},
		}, Options{}, 4},
		{"single alloc on a zero-alloc path fails exactly", map[string]Result{
			"p.BenchmarkHot":   {NsPerOp: 100, BytesPerOp: 8, AllocsPerOp: 1},
			"p.BenchmarkDrive": {NsPerOp: 1000, BytesPerOp: 1000, AllocsPerOp: 1000},
		}, Options{}, 2}, // allocs exact + bytes (0 baseline allows 0)
		{"improvement never fails", map[string]Result{
			"p.BenchmarkHot":   {NsPerOp: 10},
			"p.BenchmarkDrive": {NsPerOp: 100, BytesPerOp: 10, AllocsPerOp: 10},
		}, Options{}, 0},
		{"custom factor tightens the gate", map[string]Result{
			"p.BenchmarkHot":   {NsPerOp: 160},
			"p.BenchmarkDrive": {NsPerOp: 1000, BytesPerOp: 1000, AllocsPerOp: 1000},
		}, Options{TimeFactor: 1.5}, 1},
		{"custom factor loosens the gate", map[string]Result{
			"p.BenchmarkHot":   {NsPerOp: 250},
			"p.BenchmarkDrive": {NsPerOp: 1000, BytesPerOp: 1000, AllocsPerOp: 1000},
		}, Options{TimeFactor: 3}, 0},
	}
	for _, tc := range cases {
		v := Compare(base, snap("linux-amd64", tc.cur), tc.opts)
		if v.Skipped {
			t.Errorf("%s: unexpectedly skipped", tc.name)
		}
		if len(v.Regressions) != tc.want {
			t.Errorf("%s: %d regressions, want %d: %v", tc.name, len(v.Regressions), tc.want, v.Regressions)
		}
	}
}

func TestCompareMissingAndNew(t *testing.T) {
	base := snap("linux-amd64", map[string]Result{
		"p.BenchmarkA": {NsPerOp: 100},
		"p.BenchmarkB": {NsPerOp: 100},
	})
	cur := snap("linux-amd64", map[string]Result{
		"p.BenchmarkA": {NsPerOp: 100},
		"p.BenchmarkC": {NsPerOp: 100},
	})
	v := Compare(base, cur, Options{})
	if len(v.Regressions) != 1 || !strings.Contains(v.Regressions[0], "p.BenchmarkB") {
		t.Fatalf("missing baseline benchmark must regress: %v", v.Regressions)
	}
	if len(v.New) != 1 || v.New[0] != "p.BenchmarkC" {
		t.Fatalf("new benchmark must be reported, not failed: %v", v.New)
	}
	if v.OK() {
		t.Fatal("verdict with regressions reports OK")
	}
}
