package memsys

// MCUStats counts the DRAM-side events of one memory-controller unit
// (one DDR3 channel with one DIMM on the X-Gene2).
type MCUStats struct {
	ReadCmds       uint64 // read column commands issued
	WriteCmds      uint64 // write column commands issued
	Activations    uint64 // row activations (row-buffer misses)
	RowBufferHits  uint64 // accesses served from the open row
	QueueStallsCyc uint64 // cycles lost to a saturated command queue
}

// Accesses returns the total command count.
func (s MCUStats) Accesses() uint64 { return s.ReadCmds + s.WriteCmds }

// RowHitRate returns the fraction of accesses hitting the open row.
func (s MCUStats) RowHitRate() float64 {
	a := s.Accesses()
	if a == 0 {
		return 0
	}
	return float64(s.RowBufferHits) / float64(a)
}

// mcuBank models the open-row state of one bank.
type mcuBank struct {
	openRow uint64
	valid   bool
}

// MCU models one DDR3 channel: per-bank open-row tracking and a simple
// bandwidth/queue model.
type MCU struct {
	banks [8]mcuBank
	Stats MCUStats
}

// rowBits is log2(row size in bytes): 8 KiB rows.
const rowBits = 13

// Access issues one line fill or writeback to the channel. It returns the
// service latency in core cycles.
func (m *MCU) Access(addr uint64, write bool) int {
	bank := (addr >> rowBits) & 7
	row := addr >> (rowBits + 3)
	b := &m.banks[bank]
	lat := dramCASLatency
	if b.valid && b.openRow == row {
		m.Stats.RowBufferHits++
	} else {
		m.Stats.Activations++
		lat += dramRASLatency
		b.openRow = row
		b.valid = true
	}
	if write {
		m.Stats.WriteCmds++
	} else {
		m.Stats.ReadCmds++
	}
	return lat
}

// Latency constants in 2.4 GHz core cycles (DDR3-1866 timings, rounded).
const (
	dramCASLatency        = 60  // CAS + transfer + controller overhead
	dramRASLatency        = 45  // additional precharge+activate on a row miss
	l2HitLatency          = 12  // L2 slice hit
	l1HitLatency          = 0   // folded into the base CPI
	mcuPeakLinesPerKCycle = 400 // per-channel line bandwidth cap (~61 GB/s total)
)
